/**
 * @file
 * Transactions on direct-access NVM with battery-backed caches
 * (Sec. 8.3): stage writes in a phantom range, commit with flushData,
 * and let onWriteback push committed lines straight to NVM — no journal
 * unless a line is evicted before commit. The example runs a small and
 * an oversized transaction to show both paths.
 *
 * Build & run:  ./build/examples/nvm_transactions
 */

#include <cstdio>

#include "workloads/nvm_tx.hh"

using namespace tako;

namespace
{

void
runSize(std::uint64_t tx_bytes)
{
    NvmTxConfig cfg;
    cfg.txBytes = tx_bytes;
    cfg.numTx = 8;
    SystemConfig sys = SystemConfig::forCores(16);

    RunMetrics journaling = runNvmTx(NvmVariant::Journaling, cfg, sys);
    RunMetrics tako = runNvmTx(NvmVariant::Tako, cfg, sys);

    std::printf("%6lluKB tx: journaling %10llu cy | tako %10llu cy "
                "(%.2fx) | journaled lines %.0f | %s\n",
                (unsigned long long)(tx_bytes / 1024),
                (unsigned long long)journaling.cycles,
                (unsigned long long)tako.cycles,
                tako.speedupOver(journaling),
                tako.extra["journaledLines"],
                tako.extra["correct"] == 1.0 ? "verified" : "WRONG");
}

} // namespace

int
main()
{
    setVerbose(false);
    std::printf("append-only NVM transactions (8 per size):\n\n");
    runSize(4 * 1024);   // fits the L2: the cache is the journal
    runSize(256 * 1024); // exceeds the L2: falls back to journaling
    std::printf("\nSmall transactions never touch the journal; oversized "
                "ones spill,\nare journaled by onWriteback, and replay at "
                "commit.\n");
    return 0;
}
