/**
 * @file
 * Memoization in the cache hierarchy (Sec. 3.1's memoize family
 * [8, 40, 153, 154]): a phantom table maps key -> collatzLength(key),
 * evaluated on the engine only on misses. A Zipfian request stream shows
 * the memo table absorbing the hot keys — compare engine evaluations to
 * total requests, and to recomputing on the core every time.
 *
 * Build & run:  ./build/examples/memoization
 */

#include <cstdio>

#include "morphs/memo_morph.hh"
#include "system/system.hh"

using namespace tako;

namespace
{

/** An "expensive" pure function: Collatz trajectory length. */
std::uint64_t
collatzLength(std::uint64_t key)
{
    std::uint64_t n = key + 3;
    std::uint64_t steps = 0;
    while (n != 1 && steps < 200) {
        n = (n % 2 == 0) ? n / 2 : 3 * n + 1;
        ++steps;
    }
    return steps;
}

} // namespace

int
main()
{
    setVerbose(false);
    constexpr std::uint64_t keys = 8192;
    constexpr std::uint64_t requests = 64 * 1024;
    constexpr unsigned instrsPerEval = 120; // ~40 iterations x 3 ops

    auto run = [&](bool memoized) -> std::pair<Tick, std::uint64_t> {
        System sys(SystemConfig::forCores(16));
        MemoMorph morph(collatzLength, keys, instrsPerEval, 24);
        std::uint64_t sum = 0;
        Tick cycles = 0;
        sys.addThread(0, [&](Guest &g) -> Task<> {
            const MorphBinding *b = nullptr;
            if (memoized) {
                b = co_await g.registerPhantom(morph, MorphLevel::Private,
                                               keys * 8);
                morph.bind(b);
            }
            Rng rng(7);
            ZipfianGenerator zipf(keys, 0.99);
            const Tick t0 = g.now();
            for (std::uint64_t i = 0; i < requests; ++i) {
                const std::uint64_t key = zipf(rng);
                if (memoized) {
                    sum += co_await g.load(b->base + key * 8);
                    co_await g.exec(2);
                } else {
                    co_await g.exec(instrsPerEval);
                    sum += collatzLength(key);
                }
            }
            cycles = g.now() - t0;
            if (b)
                co_await g.unregister(b);
        });
        sys.run();
        return {cycles, sum};
    };

    auto [base_cycles, base_sum] = run(false);
    auto [memo_cycles, memo_sum] = run(true);

    std::printf("requests              : %llu over %llu keys (Zipf .99)\n",
                (unsigned long long)requests, (unsigned long long)keys);
    std::printf("recompute on core     : %llu cycles\n",
                (unsigned long long)base_cycles);
    std::printf("tako memo table       : %llu cycles  (%.2fx)\n",
                (unsigned long long)memo_cycles,
                double(base_cycles) / memo_cycles);
    std::printf("results match         : %s\n",
                base_sum == memo_sum ? "yes" : "NO");
    return base_sum == memo_sum ? 0 : 1;
}
