/**
 * @file
 * Detecting cache side-channel attacks (Sec. 8.4): a victim registers an
 * eviction-guard Morph over its AES tables at the SHARED cache. A
 * prime+probe attacker on another core tries to recover the victim's
 * secret-dependent access pattern; the guard's onEviction interrupts the
 * victim at the first priming eviction, and the victim defends itself.
 *
 * Build & run:  ./build/examples/sidechannel_monitor
 */

#include <cstdio>

#include "workloads/prime_probe.hh"

using namespace tako;

int
main()
{
    setVerbose(false);
    PrimeProbeConfig cfg;
    cfg.rounds = 48;
    SystemConfig sys = SystemConfig::forCores(16);

    std::printf("prime+probe on AES tables, %u rounds\n\n", cfg.rounds);
    for (bool with_tako : {false, true}) {
        PrimeProbeResult r = runPrimeProbe(with_tako, cfg, sys);
        std::printf("%s:\n", with_tako ? "with täkō eviction guard"
                                       : "unprotected baseline");
        std::printf("  secret bits recovered by attacker : %u\n",
                    r.trueLeaks);
        std::printf("  attack accuracy                   : %.0f%%\n",
                    100.0 * r.metrics.extra["attackAccuracy"]);
        if (with_tako) {
            std::printf("  guard interrupts (evictions seen) : %zu\n",
                        r.evictionTrace.size());
            std::printf("  detected at cycle                 : %llu\n",
                        (unsigned long long)r.detectionTime);
        }
        std::printf("\n");
    }
    std::printf("The guard costs nothing until an eviction occurs — "
                "loads and stores\nto unmonitored addresses are "
                "unaffected (Sec. 4).\n");
    return 0;
}
