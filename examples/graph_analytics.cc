/**
 * @file
 * Graph analytics with PHI (Sec. 8.1): 16 threads run one PageRank push
 * iteration over a community-structured graph, with the vertex
 * accumulators living in a SHARED phantom range. Cores push relaxed
 * remote atomics; evicted lines are applied in place or binned by the
 * bank engines. Compares against the plain atomic-add baseline.
 *
 * Build & run:  ./build/examples/graph_analytics
 */

#include <cstdio>

#include "workloads/pagerank_push.hh"

using namespace tako;

int
main()
{
    setVerbose(false);
    PagerankPushConfig cfg;
    cfg.graph.numVertices = 1 << 14;
    cfg.graph.avgDegree = 10;
    cfg.graph.communitySize = 256;
    cfg.threads = 16;
    cfg.regionVertices = 2048;

    SystemConfig sys = SystemConfig::forCores(16);
    // Scale caches so the graph is memory-resident, like the paper's.
    sys.mem.l1Size = 2 * 1024;
    sys.mem.l2Size = 8 * 1024;
    sys.mem.l3BankSize = 16 * 1024;

    std::printf("PageRank push, %llu vertices / ~%u edges per vertex\n\n",
                (unsigned long long)cfg.graph.numVertices,
                cfg.graph.avgDegree);

    RunMetrics base = runPagerankPush(PushVariant::Baseline, cfg, sys);
    RunMetrics phi = runPagerankPush(PushVariant::Phi, cfg, sys);

    for (const RunMetrics *m : {&base, &phi}) {
        std::printf("%-10s %12llu cycles  %10llu DRAM accesses  (%s)\n",
                    m->label.c_str(), (unsigned long long)m->cycles,
                    (unsigned long long)m->dramAccesses(),
                    m->extra.at("correct") == 1.0 ? "verified" : "WRONG");
    }
    std::printf("\nPHI speedup: %.2fx   in-place lines: %.0f   "
                "binned updates: %.0f\n",
                phi.speedupOver(base), phi.extra["inPlaceLines"],
                phi.extra["binnedUpdates"]);
    return 0;
}
