/**
 * @file
 * Quickstart: define a Morph, register a phantom range, and watch the
 * cache hierarchy compute for you.
 *
 * This example builds a "virtual squares table": a phantom array whose
 * element i reads as i*i. No memory backs it — onMiss generates each
 * 64B line on the tile's engine the first time it is touched, and the
 * caches memoize the result. The second pass over the data runs at
 * cache-hit speed with zero engine work.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "system/system.hh"
#include "tako/morph.hh"

using namespace tako;

namespace
{

/** Phantom array of squares: element i reads as i*i. */
class SquaresMorph : public Morph
{
  public:
    SquaresMorph()
        : Morph(MorphTraits{
              .name = "squares",
              .hasMiss = true,
              .missKernel = {10, 3}, // 8 SIMD multiplies + addressing
          })
    {
    }

    void bind(const MorphBinding *b) { base_ = b->base; }

    Task<>
    onMiss(EngineCtx &ctx) override
    {
        ++misses;
        const std::uint64_t first = (ctx.addr() - base_) / 8;
        co_await ctx.compute(10, 3);
        for (unsigned i = 0; i < wordsPerLine; ++i)
            ctx.setLineWord(i, (first + i) * (first + i));
    }

    int misses = 0;

  private:
    Addr base_ = 0;
};

} // namespace

int
main()
{
    setVerbose(false);

    // A 16-core Table-3 system (cores, private L1/L2, banked L3, mesh,
    // engines) from one config line.
    System sys(SystemConfig::forCores(16));

    SquaresMorph morph;
    constexpr std::uint64_t n = 4096;
    std::uint64_t sum = 0;
    Tick first_pass = 0, second_pass = 0;

    sys.addThread(0, [&](Guest &g) -> Task<> {
        // Register the Morph over a fresh phantom range at the private
        // L2 (Fig. 8's registerPhantom).
        const MorphBinding *b =
            co_await g.registerPhantom(morph, MorphLevel::Private, n * 8);
        morph.bind(b);

        // First pass: every line miss runs onMiss on the engine.
        Tick t0 = g.now();
        for (std::uint64_t i = 0; i < n; ++i)
            sum += co_await g.load(b->base + i * 8);
        first_pass = g.now() - t0;

        // Second pass: pure cache hits; the engine stays idle.
        t0 = g.now();
        for (std::uint64_t i = 0; i < n; ++i)
            sum += co_await g.load(b->base + i * 8);
        second_pass = g.now() - t0;

        co_await g.unregister(b);
    });
    sys.run();

    std::uint64_t expected = 0;
    for (std::uint64_t i = 0; i < n; ++i)
        expected += 2 * i * i;

    std::printf("squares sum        : %llu (%s)\n",
                (unsigned long long)sum,
                sum == expected ? "correct" : "WRONG");
    std::printf("onMiss callbacks   : %d (= %llu lines)\n", morph.misses,
                (unsigned long long)(n / wordsPerLine));
    std::printf("first pass cycles  : %llu\n",
                (unsigned long long)first_pass);
    std::printf("second pass cycles : %llu  (memoized in-cache)\n",
                (unsigned long long)second_pass);
    return sum == expected ? 0 : 1;
}
