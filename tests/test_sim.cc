/**
 * @file
 * Unit tests for the simulation kernel: event queue ordering, coroutine
 * tasks, synchronization primitives, RNG distributions.
 */

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <vector>

#include "sim/arena.hh"
#include "sim/event_queue.hh"
#include "sim/interval_map.hh"
#include "sim/random.hh"
#include "sim/stats.hh"
#include "sim/task.hh"
#include "sim/trace.hh"

using namespace tako;

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&]() { order.push_back(3); });
    eq.schedule(10, [&]() { order.push_back(1); });
    eq.schedule(20, [&]() { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickFifoAndPriority)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&]() { order.push_back(1); });
    eq.schedule(5, [&]() { order.push_back(2); });
    eq.schedule(5, [&]() { order.push_back(0); }, EventPriority::High);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, NestedScheduling)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&]() {
        ++fired;
        eq.schedule(1, [&]() { ++fired; });
    });
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 2u);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&]() { ++fired; });
    eq.schedule(20, [&]() { ++fired; });
    eq.runUntil(15);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.pending(), 1u);
}

TEST(EventQueue, HighPriorityReentrantSameTick)
{
    // Documented contract: an event scheduled *during* tick T at delta 0
    // with EventPriority::High runs before already-queued Default events
    // at T, but after the currently-running one. Order must be A, C, B.
    EventQueue eq;
    std::vector<char> order;
    eq.schedule(5, [&]() {
        order.push_back('A');
        eq.schedule(0, [&]() { order.push_back('C'); },
                    EventPriority::High);
    });
    eq.schedule(5, [&]() { order.push_back('B'); });
    eq.run();
    EXPECT_EQ(order, (std::vector<char>{'A', 'C', 'B'}));
}

TEST(EventQueue, FarFutureOverflowOrdering)
{
    // Deltas past the 256-tick calendar window land in the overflow
    // heap, yet the global firing order must stay sorted by tick.
    EventQueue eq;
    std::vector<Tick> fired;
    for (Tick d : {Tick{10}, Tick{300}, Tick{5}, Tick{700}, Tick{260},
                   Tick{40}})
        eq.schedule(d, [&fired, d]() { fired.push_back(d); });
    EXPECT_EQ(eq.overflowPending(), 3u); // 300, 700, 260
    EXPECT_EQ(eq.pending(), 6u);
    eq.run();
    EXPECT_EQ(fired,
              (std::vector<Tick>{5, 10, 40, 260, 300, 700}));
    EXPECT_EQ(eq.overflowPending(), 0u);
}

TEST(EventQueue, MigrationPreservesFifoAtSameTick)
{
    // An event migrated from the overflow heap into the wheel must keep
    // its place ahead of a same-tick event scheduled directly into the
    // wheel later (lower sequence number fires first).
    EventQueue eq;
    std::vector<int> order;
    eq.scheduleAbs(500, [&]() { order.push_back(1); }); // via overflow
    eq.schedule(400, [&]() {
        order.push_back(0);
        // now == 400: abs 500 is inside the window, goes straight to
        // the wheel where the migrated event already waits.
        eq.schedule(100, [&]() { order.push_back(2); });
    });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, PoolGrowsAndRecyclesNodes)
{
    EventQueue eq;
    const std::size_t slabs0 = eq.pool().slabCount();
    int fired = 0;
    for (int i = 0; i < 600; ++i)
        eq.schedule(static_cast<Tick>(i % 11), [&]() { ++fired; });
    // 600 live events force extra slabs beyond the initial one.
    EXPECT_GT(eq.pool().slabCount(), slabs0);
    EXPECT_GE(eq.pool().capacity(), 600u);
    eq.run();
    EXPECT_EQ(fired, 600);
    // Drained: every node is back on the free list.
    EXPECT_EQ(eq.pool().freeCount(), eq.pool().capacity());
    // A second wave is served entirely from recycled nodes.
    const std::size_t cap = eq.pool().capacity();
    for (int i = 0; i < 600; ++i)
        eq.schedule(static_cast<Tick>(i % 11), [&]() { ++fired; });
    EXPECT_EQ(eq.pool().capacity(), cap);
    eq.run();
    EXPECT_EQ(fired, 1200);
}

TEST(EventQueue, ResetDropsPendingAndDestroysCallables)
{
    EventQueue eq;
    auto token = std::make_shared<int>(7);
    eq.schedule(1, [token]() { ADD_FAILURE() << "dropped event ran"; });
    eq.schedule(1000, [token]() { ADD_FAILURE() << "dropped event ran"; });
    EXPECT_EQ(token.use_count(), 3);
    eq.reset();
    // Both the wheel-resident and the overflow-resident callables were
    // destroyed, not leaked.
    EXPECT_EQ(token.use_count(), 1);
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.now(), 0u);
    int fired = 0;
    eq.schedule(3, [&]() { ++fired; });
    eq.run();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, OversizedCallableFallsBackToHeap)
{
    // Captures past the node's inline buffer take the heap-stub path;
    // the callable must still run and be destroyed exactly once.
    EventQueue eq;
    auto token = std::make_shared<int>(0);
    std::array<char, 128> payload{};
    payload[0] = 42;
    {
        eq.schedule(1, [token, payload]() { *token = payload[0]; });
    }
    EXPECT_EQ(token.use_count(), 2);
    eq.run();
    EXPECT_EQ(*token, 42);
    EXPECT_EQ(token.use_count(), 1);
}

namespace
{

Task<>
delayTwice(EventQueue &eq, Tick d, int &count)
{
    co_await Delay{eq, d};
    ++count;
    co_await Delay{eq, d};
    ++count;
}

Task<int>
addAsync(EventQueue &eq, int a, int b)
{
    co_await Delay{eq, 5};
    co_return a + b;
}

Task<>
caller(EventQueue &eq, int &result)
{
    result = co_await addAsync(eq, 2, 3);
}

} // namespace

TEST(Task, DelaysAdvanceTime)
{
    EventQueue eq;
    int count = 0;
    spawn(delayTwice(eq, 10, count));
    EXPECT_EQ(count, 0); // lazy until first event
    eq.run();
    EXPECT_EQ(count, 2);
    EXPECT_EQ(eq.now(), 20u);
}

TEST(Task, ValueTaskReturnsThroughAwait)
{
    EventQueue eq;
    int result = 0;
    spawn(caller(eq, result));
    eq.run();
    EXPECT_EQ(result, 5);
}

TEST(Task, SpawnOnDoneFires)
{
    EventQueue eq;
    int count = 0;
    bool done = false;
    spawn(delayTwice(eq, 1, count), [&]() { done = true; });
    eq.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(count, 2);
}

TEST(Task, FramesComeFromArenaAndAreReused)
{
    // Coroutine frames allocate through FrameArena (task.hh promise
    // operator new). After a warm-up batch the second batch must be
    // served from the free lists: reuse count grows, slab footprint
    // does not, and no frame stays live after the queue drains.
    EventQueue eq;
    int count = 0;
    for (int i = 0; i < 64; ++i)
        spawn(delayTwice(eq, 1, count));
    eq.run();
    const FrameArena::Stats s1 = FrameArena::stats();
    EXPECT_GE(s1.allocs, 64u);
    for (int i = 0; i < 64; ++i)
        spawn(delayTwice(eq, 1, count));
    eq.run();
    const FrameArena::Stats s2 = FrameArena::stats();
    EXPECT_EQ(count, 256);
    EXPECT_GE(s2.reuses - s1.reuses, 64u);
    EXPECT_EQ(s2.slabBytes, s1.slabBytes);
    EXPECT_EQ(s2.live, s1.live);
}

namespace
{

Task<>
acquireHold(EventQueue &eq, Semaphore &sem, Tick hold, int &active,
            int &max_active)
{
    co_await sem.acquire();
    ++active;
    max_active = std::max(max_active, active);
    co_await Delay{eq, hold};
    --active;
    sem.release();
}

} // namespace

TEST(Semaphore, BoundsConcurrency)
{
    EventQueue eq;
    Semaphore sem(eq, 2);
    int active = 0, max_active = 0;
    for (int i = 0; i < 8; ++i)
        spawn(acquireHold(eq, sem, 10, active, max_active));
    eq.run();
    EXPECT_EQ(active, 0);
    EXPECT_EQ(max_active, 2);
    EXPECT_EQ(eq.now(), 40u);
}

namespace
{

Task<>
joinUser(EventQueue &eq, bool &flag)
{
    Join join(eq);
    for (int i = 0; i < 4; ++i) {
        join.add();
        eq.schedule(10 + i, [&join]() { join.done(); });
    }
    co_await join.wait();
    flag = true;
}

} // namespace

TEST(Join, WaitsForAll)
{
    EventQueue eq;
    bool flag = false;
    spawn(joinUser(eq, flag));
    eq.run();
    EXPECT_TRUE(flag);
    EXPECT_EQ(eq.now(), 13u);
}

TEST(Rng, DeterministicAndUniform)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());

    Rng r(7);
    std::vector<int> buckets(10, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++buckets[r.below(10)];
    for (int v : buckets) {
        EXPECT_GT(v, n / 10 * 0.9);
        EXPECT_LT(v, n / 10 * 1.1);
    }
}

TEST(Zipfian, SkewsTowardHotItems)
{
    Rng r(3);
    ZipfianGenerator zipf(1024, 0.99);
    std::uint64_t hot = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        if (zipf(r) < 16)
            ++hot;
    }
    // With theta=0.99 the top 16 of 1024 items draw a large fraction.
    EXPECT_GT(hot, n / 4u);
    // But not everything.
    EXPECT_LT(hot, n * 9u / 10u);
}

TEST(IntervalMap, InsertFindEraseAndOverlap)
{
    IntervalMap<int> map;
    EXPECT_TRUE(map.insert(100, 50, 1));
    EXPECT_TRUE(map.insert(200, 10, 2));
    EXPECT_FALSE(map.insert(140, 20, 3)); // overlaps [100,150)
    EXPECT_FALSE(map.insert(90, 11, 4));  // overlaps start
    EXPECT_TRUE(map.insert(150, 50, 5));  // adjacent ok

    ASSERT_NE(map.find(100), nullptr);
    EXPECT_EQ(map.find(100)->value, 1);
    EXPECT_EQ(map.find(149)->value, 1);
    EXPECT_EQ(map.find(150)->value, 5);
    EXPECT_EQ(map.find(99), nullptr);
    EXPECT_EQ(map.find(210), nullptr);

    EXPECT_TRUE(map.erase(100));
    EXPECT_EQ(map.find(120), nullptr);
    EXPECT_FALSE(map.erase(100));
}

TEST(Stats, CountersAndPatterns)
{
    StatsRegistry stats;
    stats.counter("a.hits") += 3;
    stats.counter("b.hits") += 4;
    stats.counter("a.misses")++;
    EXPECT_DOUBLE_EQ(stats.get("a.hits"), 3);
    EXPECT_DOUBLE_EQ(stats.sumMatching("*.hits"), 7);
    EXPECT_DOUBLE_EQ(stats.sumMatching("a.*"), 4);
    stats.reset();
    EXPECT_DOUBLE_EQ(stats.get("a.hits"), 0);
}

TEST(Stats, HistogramMoments)
{
    StatsRegistry stats;
    auto &h = stats.histogram("lat", 8, 10);
    h.sample(5);
    h.sample(15);
    h.sample(1000); // overflow bucket
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.max(), 1000u);
    EXPECT_DOUBLE_EQ(h.mean(), (5 + 15 + 1000) / 3.0);
    EXPECT_EQ(h.buckets()[0], 1u);
    EXPECT_EQ(h.buckets()[1], 1u);
    EXPECT_EQ(h.buckets().back(), 1u);
}

TEST(Trace, MaskParsesOncePerProcess)
{
    // TAKO_TRACE is unset in the test environment: nothing enabled.
    EXPECT_FALSE(trace::enabled(trace::Flag::Cache));
    EXPECT_FALSE(trace::enabled(trace::Flag::Engine));
    // emit() is safe to call regardless (goes to stderr).
    trace::emit(trace::Flag::Cache, 5, "test %d", 1);
}
