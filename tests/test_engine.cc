/**
 * @file
 * Unit tests for the täkō engine layer: scheduler ordering, callback
 * buffer backpressure, fabric timing by engine kind, rTLB and bitstream
 * caches, interrupts, and the area model (Table 2).
 */

#include <gtest/gtest.h>

#include "system/system.hh"
#include "tako/area_model.hh"

using namespace tako;

namespace
{

SystemConfig
smallConfig()
{
    SystemConfig cfg = SystemConfig::forCores(4);
    cfg.mem.l1Size = 1024;
    cfg.mem.l2Size = 4 * 1024;
    cfg.mem.l3BankSize = 16 * 1024;
    cfg.mem.prefetchEnable = false;
    return cfg;
}

/** Morph recording callback order and timing. */
class OrderMorph : public Morph
{
  public:
    OrderMorph()
        : Morph(MorphTraits{
              .name = "order",
              .hasMiss = true,
              .hasEviction = true,
              .hasWriteback = true,
              .missKernel = {8, 3},
              .evictionKernel = {4, 2},
              .writebackKernel = {4, 2},
          })
    {
    }

    Task<>
    onMiss(EngineCtx &ctx) override
    {
        startOrder.push_back(ctx.addr());
        co_await ctx.compute(8, 3);
        for (unsigned i = 0; i < wordsPerLine; ++i)
            ctx.setLineWord(i, ctx.addr() + i);
        endOrder.push_back(ctx.addr());
    }

    Task<>
    onEviction(EngineCtx &ctx) override
    {
        evictions.push_back(ctx.addr());
        co_await ctx.compute(4, 2);
    }

    Task<>
    onWriteback(EngineCtx &ctx) override
    {
        co_await onEviction(ctx);
    }

    std::vector<Addr> startOrder;
    std::vector<Addr> endOrder;
    std::vector<Addr> evictions;
};

} // namespace

TEST(Engine, SameAddressCallbacksAreOrdered)
{
    System sys(smallConfig());
    OrderMorph morph;
    sys.addThread(0, [&](Guest &g) -> Task<> {
        const MorphBinding *b = co_await g.registerPhantom(
            morph, MorphLevel::Private, 1 << 20);
        // Load A, flush it (eviction), reload it: the engine must run
        // onMiss(A), onEviction(A), onMiss(A) in that order.
        co_await g.load(b->base);
        co_await g.flushData(b);
        co_await g.load(b->base);
        co_await g.flushData(b);
    });
    sys.run();
    ASSERT_EQ(morph.startOrder.size(), 2u);
    ASSERT_EQ(morph.evictions.size(), 2u);
}

TEST(Engine, ComputeLatencyByKind)
{
    SystemConfig cfg = smallConfig();
    System sys(cfg);
    Engine &eng = sys.engines().engine(0);
    // Dataflow 5x5: 15 int PEs; 30 instrs, depth 4 -> bounded by
    // throughput ceil(30/15)=2 vs depth 4 -> 4 cycles.
    EXPECT_EQ(eng.computeLatency(30, 4), 4u);
    // Throughput-bound: 60 instrs depth 2 -> ceil(60/15) = 4.
    EXPECT_EQ(eng.computeLatency(60, 2), 4u);

    cfg.engine.kind = EngineKind::Inorder;
    System sys2(cfg);
    EXPECT_EQ(sys2.engines().engine(0).computeLatency(30, 4), 60u);

    cfg.engine.kind = EngineKind::Ideal;
    System sys3(cfg);
    EXPECT_EQ(sys3.engines().engine(0).computeLatency(30, 4), 0u);
}

TEST(Engine, PeLatencyScalesDataflow)
{
    SystemConfig cfg = smallConfig();
    cfg.engine.peLatency = 4;
    System sys(cfg);
    EXPECT_EQ(sys.engines().engine(0).computeLatency(30, 4), 16u);
}

TEST(Engine, BitstreamLoadsOncePerMorph)
{
    System sys(smallConfig());
    OrderMorph morph;
    sys.addThread(0, [&](Guest &g) -> Task<> {
        const MorphBinding *b = co_await g.registerPhantom(
            morph, MorphLevel::Private, 1 << 20);
        for (int i = 0; i < 16; ++i)
            co_await g.load(b->base + i * lineBytes);
        co_await g.unregister(b);
    });
    sys.run();
    // One configuration load despite 16 misses.
    EXPECT_EQ(sys.stats().get("engine.bitstream.loads"), 1.0);
}

TEST(Engine, RtlbCapturesLocality)
{
    System sys(smallConfig());
    OrderMorph morph;
    sys.addThread(0, [&](Guest &g) -> Task<> {
        const MorphBinding *b = co_await g.registerPhantom(
            morph, MorphLevel::Private, 1 << 20);
        for (int i = 0; i < 64; ++i)
            co_await g.load(b->base + i * lineBytes);
        co_await g.unregister(b);
    });
    sys.run();
    // 2MB pages: all 64 lines in one page -> 1 miss, then hits.
    EXPECT_EQ(sys.stats().get("engine.rtlb.misses"), 1.0);
    EXPECT_GT(sys.stats().get("engine.rtlb.hits"), 32.0);
}

TEST(Engine, CallbackCountsByKind)
{
    System sys(smallConfig());
    OrderMorph morph;
    sys.addThread(0, [&](Guest &g) -> Task<> {
        const MorphBinding *b = co_await g.registerPhantom(
            morph, MorphLevel::Private, 1 << 20);
        co_await g.load(b->base);            // miss
        co_await g.store(b->base + 64, 42);  // miss (write)
        co_await g.flushData(b);             // evict clean A + dirty B
    });
    sys.run();
    EXPECT_EQ(sys.stats().get("engine.cb.miss"), 2.0);
    EXPECT_EQ(sys.stats().get("engine.cb.eviction"), 1.0);
    EXPECT_EQ(sys.stats().get("engine.cb.writeback"), 1.0);
}

TEST(Engine, CallbacksMayNotTouchMorphedData)
{
    // A callback accessing data morphed at the same level must panic;
    // covered via death test.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";

    class BadMorph : public Morph
    {
      public:
        BadMorph()
            : Morph(MorphTraits{.name = "bad",
                                .hasMiss = true,
                                .missKernel = {4, 2}})
        {
        }

        void bind(const MorphBinding *b) { self_ = b->base; }

        Task<>
        onMiss(EngineCtx &ctx) override
        {
            // Illegal: loads from its own phantom range.
            co_await ctx.load(self_ + 4096 * lineBytes);
        }

      private:
        Addr self_ = 0;
    };

    auto run = []() {
        System sys(smallConfig());
        BadMorph morph;
        sys.addThread(0, [&](Guest &g) -> Task<> {
            const MorphBinding *b = co_await g.registerPhantom(
                morph, MorphLevel::Private, 1 << 20);
            morph.bind(b);
            co_await g.load(b->base);
        });
        sys.run();
    };
    EXPECT_DEATH(run(), "morphed");
}

TEST(AreaModel, ReproducesTable2)
{
    SystemConfig cfg = SystemConfig::forCores(16);
    const AreaReport r = computeAreaReport(cfg.mem, cfg.engine);
    // Table 2 components.
    EXPECT_DOUBLE_EQ(r.l3TagBytes, 1024.0);                  // 1 KB
    EXPECT_DOUBLE_EQ(r.callbackBufferBytes, 512.0);          // 0.5 KB
    EXPECT_DOUBLE_EQ(r.tokenStoreBytes, 25 * 8 * 64.0);      // 12.5 KB
    EXPECT_DOUBLE_EQ(r.instrMemoryBytes, 25 * 16 * 4.0);     // 1.6 KB
    // Total ~5.3% of a 512KB bank (paper: 27.1KB / 512KB).
    EXPECT_NEAR(r.overheadFraction(), 0.053, 0.006);
}

TEST(EnergyModel, ComponentsAccumulate)
{
    StatsRegistry stats;
    EnergyModel e(stats);
    e.coreInstrs(10);
    e.engineInstrs(10);
    e.engineInstrs(10, true);
    e.l1Access();
    e.dramAccess();
    e.nocFlitHops(3);
    EXPECT_GT(stats.get("energy.core"), 0.0);
    EXPECT_GT(stats.get("energy.engine"), 0.0);
    EXPECT_GT(stats.get("energy.dram"), 0.0);
    EXPECT_DOUBLE_EQ(e.total(), stats.get("energy.total"));
    // In-order engines pay more per instruction than dataflow PEs.
    EXPECT_GT(e.params().inorderEngineInstr, e.params().engineInstr);
    // Engines are far cheaper per op than OOO cores.
    EXPECT_LT(e.params().engineInstr * 10, e.params().coreInstr);
}
