/**
 * @file
 * Unit tests for tag arrays and replacement policies, including the two
 * täkō-specific trrîp behaviors: distant insertion for engine fills and
 * the morph-reserve victim rule.
 */

#include <gtest/gtest.h>

#include "mem/backing_store.hh"
#include "mem/cache_array.hh"

using namespace tako;

namespace
{

Addr
lineInSet(const CacheArray &c, unsigned set, unsigned k)
{
    // k-th distinct line mapping to `set`.
    return (static_cast<Addr>(k) * c.numSets() + set) * lineBytes;
}

} // namespace

TEST(CacheArray, GeometryAndLookup)
{
    CacheArray c(8 * 1024, 4, ReplPolicy::Lru);
    EXPECT_EQ(c.numWays(), 4u);
    EXPECT_EQ(c.numSets(), 32u);
    EXPECT_EQ(c.sizeBytes(), 8u * 1024);

    const Addr a = lineInSet(c, 3, 0);
    EXPECT_EQ(c.lookup(a), nullptr);
    CacheWay *v = c.findVictim(a, false);
    ASSERT_NE(v, nullptr);
    EXPECT_FALSE(v->valid);
    c.fill(*v, a, false, 0, false);
    ASSERT_NE(c.lookup(a), nullptr);
    EXPECT_EQ(c.lookup(a)->lineAddr, a);
    // Different set: still absent.
    EXPECT_EQ(c.lookup(lineInSet(c, 4, 0)), nullptr);
}

TEST(CacheArray, LruEvictsLeastRecent)
{
    CacheArray c(4 * lineBytes, 4, ReplPolicy::Lru); // 1 set, 4 ways
    for (unsigned k = 0; k < 4; ++k) {
        CacheWay *v = c.findVictim(lineInSet(c, 0, k), false);
        c.fill(*v, lineInSet(c, 0, k), false, 0, false);
    }
    // Touch lines 0..2 so line 3 is LRU.
    for (unsigned k = 0; k < 3; ++k)
        c.touch(*c.lookup(lineInSet(c, 0, k)), false);
    CacheWay *v = c.findVictim(lineInSet(c, 0, 9), false);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->lineAddr, lineInSet(c, 0, 3));
}

TEST(CacheArray, SrripHitPromotion)
{
    CacheArray c(4 * lineBytes, 4, ReplPolicy::Srrip);
    for (unsigned k = 0; k < 4; ++k) {
        CacheWay *v = c.findVictim(lineInSet(c, 0, k), false);
        c.fill(*v, lineInSet(c, 0, k), false, 0, false);
    }
    // Promote line 0; it must survive the next eviction.
    c.touch(*c.lookup(lineInSet(c, 0, 0)), false);
    CacheWay *v = c.findVictim(lineInSet(c, 0, 9), false);
    ASSERT_NE(v, nullptr);
    EXPECT_NE(v->lineAddr, lineInSet(c, 0, 0));
}

TEST(CacheArray, TrripEngineLinesLoseToCoreReusedLines)
{
    CacheArray c(4 * lineBytes, 4, ReplPolicy::Trrip);
    // Three core fills, one engine fill.
    for (unsigned k = 0; k < 3; ++k) {
        CacheWay *v = c.findVictim(lineInSet(c, 0, k), false);
        c.fill(*v, lineInSet(c, 0, k), false, 0, false);
    }
    CacheWay *v = c.findVictim(lineInSet(c, 0, 3), false);
    c.fill(*v, lineInSet(c, 0, 3), false, 0, true); // engine fill
    // Core lines get reused (promote to rrpv 0); engine touches keep the
    // engine line at long priority, so it is the victim.
    for (unsigned k = 0; k < 3; ++k)
        c.touch(*c.lookup(lineInSet(c, 0, k)), false);
    c.touch(*c.lookup(lineInSet(c, 0, 3)), true); // engine re-touch
    CacheWay *victim = c.findVictim(lineInSet(c, 0, 9), false);
    ASSERT_NE(victim, nullptr);
    EXPECT_EQ(victim->lineAddr, lineInSet(c, 0, 3));
}

TEST(CacheArray, TrripCoreTouchPromotesEngineLine)
{
    CacheArray c(4 * lineBytes, 4, ReplPolicy::Trrip);
    for (unsigned k = 0; k < 3; ++k) {
        CacheWay *v = c.findVictim(lineInSet(c, 0, k), false);
        c.fill(*v, lineInSet(c, 0, k), false, 0, false);
    }
    CacheWay *v = c.findVictim(lineInSet(c, 0, 3), false);
    c.fill(*v, lineInSet(c, 0, 3), false, 0, true);
    c.demote(*c.lookup(lineInSet(c, 0, 3))); // use-once hint
    // A core touch promotes the line out of distant priority.
    c.touch(*c.lookup(lineInSet(c, 0, 3)), false);
    CacheWay *victim = c.findVictim(lineInSet(c, 0, 9), false);
    ASSERT_NE(victim, nullptr);
    EXPECT_NE(victim->lineAddr, lineInSet(c, 0, 3));
}

TEST(CacheArray, DemoteIsPolicyAware)
{
    CacheArray trrip(4 * lineBytes, 4, ReplPolicy::Trrip);
    CacheWay *v = trrip.findVictim(lineInSet(trrip, 0, 0), false);
    trrip.fill(*v, lineInSet(trrip, 0, 0), false, 0, false);
    trrip.demote(*v);
    EXPECT_EQ(v->rrpv, CacheArray::rrpvMax);

    CacheArray srrip(4 * lineBytes, 4, ReplPolicy::Srrip);
    CacheWay *w = srrip.findVictim(lineInSet(srrip, 0, 0), false);
    srrip.fill(*w, lineInSet(srrip, 0, 0), false, 0, false);
    const auto before = w->rrpv;
    srrip.demote(*w); // SRRIP ignores the hint (ablation baseline)
    EXPECT_EQ(w->rrpv, before);
}

TEST(CacheArray, TrripMorphReserveRule)
{
    CacheArray c(4 * lineBytes, 4, ReplPolicy::Trrip);
    // Fill 3 morph lines + 1 non-morph line.
    for (unsigned k = 0; k < 3; ++k) {
        CacheWay *v = c.findVictim(lineInSet(c, 0, k), true);
        c.fill(*v, lineInSet(c, 0, k), true, 1, false);
    }
    const Addr non_morph = lineInSet(c, 0, 3);
    CacheWay *v = c.findVictim(non_morph, false);
    c.fill(*v, non_morph, false, 0, false);

    // Inserting another morph line must never evict the last non-morph
    // line, regardless of RRPV ordering.
    for (int trial = 0; trial < 8; ++trial) {
        CacheWay *victim = c.findVictim(lineInSet(c, 0, 10 + trial), true);
        ASSERT_NE(victim, nullptr);
        EXPECT_NE(victim->lineAddr, non_morph) << "trial " << trial;
        c.fill(*victim, lineInSet(c, 0, 10 + trial), true, 1, false);
    }
    // A non-morph insertion may evict anything, including `non_morph`.
    CacheWay *victim = c.findVictim(lineInSet(c, 0, 50), false);
    ASSERT_NE(victim, nullptr);
}

TEST(CacheArray, VictimRespectsCanEvictPredicate)
{
    CacheArray c(4 * lineBytes, 4, ReplPolicy::Trrip);
    for (unsigned k = 0; k < 4; ++k) {
        CacheWay *v = c.findVictim(lineInSet(c, 0, k), false);
        c.fill(*v, lineInSet(c, 0, k), false, 0, false);
    }
    const Addr locked = lineInSet(c, 0, 1);
    for (int trial = 0; trial < 4; ++trial) {
        CacheWay *victim =
            c.findVictim(lineInSet(c, 0, 20 + trial), false,
                         [&](const CacheWay &w) {
                             return w.lineAddr != locked;
                         });
        ASSERT_NE(victim, nullptr);
        EXPECT_NE(victim->lineAddr, locked);
        c.fill(*victim, lineInSet(c, 0, 20 + trial), false, 0, false);
    }
}

TEST(CacheArray, ForEachValidVisitsAll)
{
    CacheArray c(8 * 1024, 8, ReplPolicy::Srrip);
    for (unsigned k = 0; k < 5; ++k) {
        const Addr a = lineInSet(c, k, k);
        CacheWay *v = c.findVictim(a, false);
        c.fill(*v, a, false, 0, false);
    }
    unsigned count = 0;
    c.forEachValid([&](CacheWay &) { ++count; });
    EXPECT_EQ(count, 5u);
}

TEST(BackingStore, ReadWriteWordsAndLines)
{
    BackingStore st;
    EXPECT_EQ(st.read64(0x1000), 0u);
    st.write64(0x1000, 42);
    EXPECT_EQ(st.read64(0x1000), 42u);
    EXPECT_EQ(st.fetchAdd64(0x1000, 8), 42u);
    EXPECT_EQ(st.read64(0x1000), 50u);
    EXPECT_EQ(st.swap64(0x1000, 7), 50u);
    EXPECT_EQ(st.read64(0x1000), 7u);

    LineData line;
    for (unsigned i = 0; i < wordsPerLine; ++i)
        line[i] = i * 100;
    st.writeLine(0x2000, line);
    EXPECT_EQ(st.read64(0x2000 + 3 * 8), 300u);
    LineData rd = st.readLine(0x2000);
    EXPECT_EQ(rd, line);
    st.zeroLine(0x2000);
    EXPECT_EQ(st.readLine(0x2000), LineData{});
}

TEST(BackingStore, SparseAllocation)
{
    BackingStore st;
    st.write64(0, 1);
    st.write64(1ull << 40, 2);
    EXPECT_EQ(st.allocatedPages(), 2u);
    EXPECT_EQ(st.read64(1ull << 30), 0u); // untouched page reads zero
    EXPECT_EQ(st.allocatedPages(), 2u);   // reads don't allocate
}
