/**
 * @file
 * Coroutine-lifetime stress tests. Built like any other test, but their
 * real job is under ASan/TSan (ctest -L sanfast): they hammer the
 * patterns takolint's L1/L2 rules exist for — frames completing out of
 * order, Join::completion() callables outliving loop iterations, frame
 * arena recycling under churn — so a lifetime regression turns into a
 * sanitizer report instead of a heisenbug in the quick suite.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/task.hh"

using namespace tako;

namespace
{

Task<>
delayed(EventQueue &eq, Tick d, int *out)
{
    co_await Delay{eq, d};
    ++*out;
}

/** A chain of nested awaits, each with its own frame. */
Task<>
chain(EventQueue &eq, int depth, int *out)
{
    if (depth > 0)
        co_await chain(eq, depth - 1, out);
    co_await Delay{eq, 1};
    ++*out;
}

} // namespace

TEST(Lifetime, JoinCompletionOutlivesLoopIteration)
{
    // The historical bug shape: completions created in a loop, run long
    // after the loop variable and iteration scope are gone. The Join
    // and counters live in the outer frame, which suspends on wait().
    EventQueue eq;
    int done = 0;
    bool finished = false;
    spawn(
        [](EventQueue *q, int *d, bool *fin) -> Task<> {
            Join join(*q);
            for (int i = 0; i < 64; ++i) {
                join.add();
                // Deliberately scattered completion ticks so frames
                // retire out of spawn order.
                spawn(delayed(*q, 1 + (i * 7) % 13, d),
                      join.completion());
            }
            co_await join.wait();
            *fin = true;
        }(&eq, &done, &finished),
        {});
    eq.run();
    EXPECT_TRUE(finished);
    EXPECT_EQ(done, 64);
}

TEST(Lifetime, NestedJoinsRecycleFramesUnderChurn)
{
    // Waves of spawn/complete cycles reuse arena frames and pooled
    // event nodes thousands of times; ASan catches any stale frame
    // access, TSan any unsynchronized reuse.
    EventQueue eq;
    int done = 0;
    for (int wave = 0; wave < 50; ++wave) {
        spawn(
            [](EventQueue *q, int *d) -> Task<> {
                Join join(*q);
                for (int i = 0; i < 16; ++i) {
                    join.add();
                    spawn(chain(*q, i % 4, d), join.completion());
                }
                co_await join.wait();
            }(&eq, &done),
            {});
        eq.run();
    }
    // Each chain(depth) increments once per frame: depth + 1 times.
    EXPECT_EQ(done, 50 * (16 + 4 * (0 + 1 + 2 + 3)));
}

TEST(Lifetime, CompletionAfterOwnerFrameWouldBeGoneIsSafe)
{
    // spawn()'s on_done fires from the *last* completing frame; make
    // sure a completion scheduled at the far future still finds a live
    // Join (the waiter frame keeps it alive across the whole span).
    EventQueue eq;
    int order = 0, first = 0, last = 0;
    bool finished = false;
    spawn(
        [](EventQueue *q, int *ord, int *f, int *l,
           bool *fin) -> Task<> {
            Join join(*q);
            join.add(2);
            spawn(delayed(*q, 1, f), join.completion());
            spawn(delayed(*q, 10000, l), join.completion());
            co_await join.wait();
            *fin = true;
            *ord = *f + *l;
        }(&eq, &order, &first, &last, &finished),
        {});
    eq.run();
    EXPECT_TRUE(finished);
    EXPECT_EQ(order, 2);
    EXPECT_GE(eq.now(), 10000u);
}

TEST(Lifetime, ValueCapturedEventsSurviveScopeExit)
{
    // The L1-clean pattern at the event layer: everything the deferred
    // callable needs is captured by value (pointers to stable storage).
    EventQueue eq;
    auto counters = std::make_unique<std::vector<std::uint64_t>>(8, 0);
    {
        // Scope with locals that die before the events run.
        for (std::size_t i = 0; i < counters->size(); ++i) {
            std::uint64_t *slot = &(*counters)[i];
            eq.schedule(100 + static_cast<Tick>(i),
                        [slot]() { ++*slot; });
        }
    }
    eq.run();
    for (auto v : *counters)
        EXPECT_EQ(v, 1u);
}
