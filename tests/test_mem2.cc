/**
 * @file
 * Second round of memory-system tests: bandwidth model, streaming
 * stores, RMO fallback, barriers, exec accounting, run control, and the
 * in-order engine's serialization.
 */

#include <gtest/gtest.h>

#include <set>

#include "mem/mem_ctrl.hh"
#include "system/system.hh"
#include "workloads/common.hh"

using namespace tako;

namespace
{

SystemConfig
smallConfig()
{
    SystemConfig cfg = SystemConfig::forCores(4);
    cfg.mem.l1Size = 1024;
    cfg.mem.l2Size = 4 * 1024;
    cfg.mem.l3BankSize = 16 * 1024;
    cfg.mem.prefetchEnable = false;
    return cfg;
}

} // namespace

TEST(MemCtrl, LatencyAndBandwidthQueueing)
{
    MemCtrl ctrl(100, 64.0 / 13.0); // ~13 cycles per line
    // Idle controller: fixed latency + service time.
    const Tick first = ctrl.access(1000);
    EXPECT_EQ(first, 100u + ctrl.serviceCycles());
    // Immediate second access queues behind the first.
    const Tick second = ctrl.access(1000);
    EXPECT_EQ(second, first + ctrl.serviceCycles());
    // After the channel drains, latency returns to baseline.
    const Tick later = ctrl.access(100000);
    EXPECT_EQ(later, first);
    EXPECT_EQ(ctrl.accesses(), 3u);
}

TEST(MemorySystem, StreamingStoresSkipMemoryReads)
{
    System sys(smallConfig());
    sys.addThread(0, [&](Guest &g) -> Task<> {
        std::vector<std::pair<Addr, std::uint64_t>> writes;
        for (unsigned i = 0; i < 64 * wordsPerLine; ++i)
            writes.emplace_back(0x800000 + i * 8, i);
        co_await g.streamStoreMulti(writes);
    });
    sys.run();
    // Write-combining allocation: no read-for-ownership fetches.
    EXPECT_EQ(sys.stats().get("dram.reads"), 0.0);
    // The data is functionally present.
    EXPECT_EQ(sys.mem().realStore().read64(0x800000 + 8), 1u);
}

TEST(MemorySystem, RegularStoresFetchForOwnership)
{
    System sys(smallConfig());
    sys.addThread(0, [&](Guest &g) -> Task<> {
        co_await g.store(0x900000, 5);
    });
    sys.run();
    EXPECT_EQ(sys.stats().get("dram.reads"), 1.0);
}

TEST(MemorySystem, RmoFallsBackToLocalAtomicWithoutMorph)
{
    System sys(smallConfig());
    sys.addThread(0, [&](Guest &g) -> Task<> {
        for (int i = 0; i < 10; ++i)
            co_await g.rmoAdd(0xa00000, 7);
        co_await g.rmoDrain();
    });
    sys.run();
    EXPECT_EQ(sys.mem().realStore().read64(0xa00000), 70u);
}

TEST(MemorySystem, AtomicSwapMultiReturnsOldValues)
{
    System sys(smallConfig());
    std::vector<std::uint64_t> old;
    sys.addThread(0, [&](Guest &g) -> Task<> {
        std::vector<std::pair<Addr, std::uint64_t>> init;
        std::vector<Addr> addrs;
        for (unsigned i = 0; i < 8; ++i) {
            init.emplace_back(0xb00000 + i * 8, 100 + i);
            addrs.push_back(0xb00000 + i * 8);
        }
        co_await g.storeMulti(init);
        co_await g.atomicSwapMulti(addrs, 999, &old);
    });
    sys.run();
    ASSERT_EQ(old.size(), 8u);
    for (unsigned i = 0; i < 8; ++i) {
        EXPECT_EQ(old[i], 100u + i);
        EXPECT_EQ(sys.mem().realStore().read64(0xb00000 + i * 8), 999u);
    }
}

TEST(SimBarrier, RendezvousRepeats)
{
    System sys(smallConfig());
    SimBarrier barrier(sys, 4);
    std::vector<int> phase_at_arrival;
    int phase = 0;
    for (unsigned c = 0; c < 4; ++c) {
        sys.addThread(static_cast<int>(c), [&, c](Guest &g) -> Task<> {
            for (int p = 0; p < 3; ++p) {
                co_await g.exec((c + 1) * 30); // skewed arrival
                co_await barrier.arrive();
                if (c == 0)
                    ++phase;
                co_await barrier.arrive();
                phase_at_arrival.push_back(phase);
            }
        });
    }
    sys.run();
    // Every thread observed each phase increment exactly once.
    ASSERT_EQ(phase_at_arrival.size(), 12u);
    for (std::size_t i = 0; i < phase_at_arrival.size(); ++i)
        EXPECT_EQ(phase_at_arrival[i], static_cast<int>(i / 4) + 1);
}

TEST(Core, ExecCarryAccumulatesFractionalSlots)
{
    System sys(smallConfig()); // issueWidth = 3
    Tick many_small = 0, one_big = 0;
    sys.addThread(0, [&](Guest &g) -> Task<> {
        Tick t0 = g.now();
        for (int i = 0; i < 300; ++i)
            co_await g.exec(1);
        many_small = g.now() - t0;
        t0 = g.now();
        co_await g.exec(300);
        one_big = g.now() - t0;
    });
    sys.run();
    EXPECT_EQ(many_small, 100u);
    EXPECT_EQ(one_big, 100u);
}

TEST(System, RunForStopsEarly)
{
    System sys(smallConfig());
    bool finished = false;
    sys.addThread(0, [&](Guest &g) -> Task<> {
        for (int i = 0; i < 1000; ++i)
            co_await g.exec(300);
        finished = true;
    });
    const Tick ran = sys.runFor(5000);
    EXPECT_LE(ran, 5001u);
    EXPECT_FALSE(finished);
}

TEST(Engine, InorderSerializesConcurrentCallbacks)
{
    // N concurrent phantom misses: the dataflow engine overlaps them,
    // the in-order engine runs one at a time (Sec. 9 / Fig. 22).
    class SlowMorph : public Morph
    {
      public:
        SlowMorph()
            : Morph(MorphTraits{.name = "slow",
                                .hasMiss = true,
                                .missKernel = {60, 4}})
        {
        }

        Task<>
        onMiss(EngineCtx &ctx) override
        {
            co_await ctx.compute(60, 4);
            for (unsigned i = 0; i < wordsPerLine; ++i)
                ctx.setLineWord(i, 1);
        }
    };

    auto run_kind = [](EngineKind kind) {
        SystemConfig cfg = smallConfig();
        cfg.engine.kind = kind;
        System sys(cfg);
        SlowMorph morph;
        Tick cycles = 0;
        sys.addThread(0, [&](Guest &g) -> Task<> {
            const MorphBinding *b = co_await g.registerPhantom(
                morph, MorphLevel::Private, 1 << 20);
            std::vector<Addr> addrs;
            for (int i = 0; i < 8; ++i)
                addrs.push_back(b->base + i * lineBytes);
            const Tick t0 = g.now();
            co_await g.loadMulti(addrs, nullptr);
            cycles = g.now() - t0;
        });
        sys.run();
        return cycles;
    };

    const Tick dataflow = run_kind(EngineKind::Dataflow);
    const Tick inorder = run_kind(EngineKind::Inorder);
    const Tick ideal = run_kind(EngineKind::Ideal);
    EXPECT_GT(inorder, 2 * dataflow);
    EXPECT_LE(ideal, dataflow);
}

TEST(MemorySystem, SharedMorphFlushWalksAllBanks)
{
    class CountMorph : public Morph
    {
      public:
        CountMorph()
            : Morph(MorphTraits{.name = "count",
                                .hasMiss = true,
                                .hasWriteback = true,
                                .missKernel = {2, 1},
                                .writebackKernel = {2, 1}})
        {
        }

        Task<>
        onMiss(EngineCtx &ctx) override
        {
            co_await ctx.compute(2, 1);
        }

        Task<>
        onWriteback(EngineCtx &ctx) override
        {
            banks.insert(ctx.tile());
            co_await ctx.compute(2, 1);
        }

        std::set<int> banks;
    };

    System sys(smallConfig());
    CountMorph morph;
    sys.addThread(0, [&](Guest &g) -> Task<> {
        const MorphBinding *b = co_await g.registerPhantom(
            morph, MorphLevel::Shared, 1 << 20);
        // RMOs to lines spread across every bank.
        for (unsigned i = 0; i < 64; ++i)
            co_await g.rmoAdd(b->base + i * lineBytes, 1);
        co_await g.rmoDrain();
        co_await g.flushData(b);
    });
    sys.run();
    // Writebacks ran on multiple bank engines (one view per bank).
    EXPECT_GE(morph.banks.size(), 3u);
}
