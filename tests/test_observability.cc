/**
 * @file
 * Tests for the observability layer: JSON stats export, the periodic
 * time-series sampler, per-transaction latency breakdowns, the Chrome
 * trace-event sink, and the event-queue/trace/stats fixes that came with
 * them (runUntil time advance, histogram parameter checking, trace-mask
 * parsing derived from Flag::NumFlags).
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstring>
#include <sstream>

#include "sim/sampler.hh"
#include "sim/tracesink.hh"
#include "system/system.hh"
#include "workloads/common.hh"

using namespace tako;

namespace
{

// -------------------------------------------------------------------
// Minimal recursive-descent JSON parser: validates syntax only. Enough
// to prove dumpJson() / the trace writer emit well-formed documents.
// -------------------------------------------------------------------

class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text) : s_(text) {}

    bool
    valid()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos_ == s_.size();
    }

  private:
    bool
    value()
    {
        if (pos_ >= s_.size())
            return false;
        switch (s_[pos_]) {
          case '{':
            return object();
          case '[':
            return array();
          case '"':
            return string();
          case 't':
            return literal("true");
          case 'f':
            return literal("false");
          case 'n':
            return literal("null");
          default:
            return number();
        }
    }

    bool
    object()
    {
        ++pos_; // '{'
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++pos_;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    array()
    {
        ++pos_; // '['
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    string()
    {
        if (peek() != '"')
            return false;
        ++pos_;
        while (pos_ < s_.size()) {
            const char c = s_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return false; // control chars must be escaped
            if (c == '\\') {
                ++pos_;
                if (pos_ >= s_.size())
                    return false;
                const char e = s_[pos_];
                if (e == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        ++pos_;
                        if (pos_ >= s_.size() ||
                            !std::isxdigit(
                                static_cast<unsigned char>(s_[pos_])))
                            return false;
                    }
                } else if (!std::strchr("\"\\/bfnrt", e)) {
                    return false;
                }
            }
            ++pos_;
        }
        return false;
    }

    bool
    number()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                s_[pos_] == '+' || s_[pos_] == '-'))
            ++pos_;
        return pos_ > start;
    }

    bool
    literal(const char *lit)
    {
        const std::size_t n = std::strlen(lit);
        if (s_.compare(pos_, n, lit) != 0)
            return false;
        pos_ += n;
        return true;
    }

    char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    const std::string &s_;
    std::size_t pos_ = 0;
};

SystemConfig
smallConfig()
{
    SystemConfig cfg = SystemConfig::forCores(4);
    cfg.mem.l1Size = 1024;
    cfg.mem.l2Size = 4 * 1024;
    cfg.mem.l3BankSize = 16 * 1024;
    cfg.mem.prefetchEnable = false;
    cfg.mem.latBreakdown = true;
    return cfg;
}

} // namespace

// -------------------------------------------------------------------
// EventQueue::runUntil regression: time must advance to the limit even
// when events remain pending beyond it.
// -------------------------------------------------------------------

TEST(EventQueue, RunUntilAdvancesPastPendingEvents)
{
    EventQueue eq;
    bool ran = false;
    eq.schedule(10, [&]() { ran = true; });
    eq.runUntil(5);
    EXPECT_EQ(eq.now(), 5u);
    EXPECT_FALSE(ran);
    EXPECT_EQ(eq.pending(), 1u);
    eq.runUntil(10);
    EXPECT_EQ(eq.now(), 10u);
    EXPECT_TRUE(ran);
}

TEST(EventQueue, RunUntilAdvancesWhenEmpty)
{
    EventQueue eq;
    eq.runUntil(100);
    EXPECT_EQ(eq.now(), 100u);
}

// -------------------------------------------------------------------
// StatsRegistry: histogram parameter checking and JSON export.
// -------------------------------------------------------------------

TEST(Stats, HistogramParamMismatchPanics)
{
    StatsRegistry stats;
    stats.histogram("lat", 16, 8);
    stats.histogram("lat", 16, 8); // same geometry: fine
    EXPECT_DEATH(stats.histogram("lat", 32, 8), "mismatched");
    EXPECT_DEATH(stats.histogram("lat", 16, 4), "mismatched");
}

TEST(Stats, DumpJsonParsesAndCarriesMetadata)
{
    StatsRegistry stats;
    stats.counter("l1.hits", "accesses", "demand hits") += 7;
    stats.counter("plain")++;
    Histogram &h = stats.histogram("lat", 4, 8, "cycles", "latency");
    h.sample(3);
    h.sample(100); // overflow bucket

    std::ostringstream os;
    stats.dumpJson(os);
    const std::string doc = os.str();

    EXPECT_TRUE(JsonChecker(doc).valid()) << doc;
    EXPECT_NE(doc.find("\"l1.hits\""), std::string::npos);
    EXPECT_NE(doc.find("\"unit\": \"accesses\""), std::string::npos);
    EXPECT_NE(doc.find("\"desc\": \"latency\""), std::string::npos);
    // No sampler installed: no time-series section.
    EXPECT_EQ(doc.find("\"timeseries\""), std::string::npos);
}

TEST(Stats, DumpJsonEscapesAwkwardNames)
{
    StatsRegistry stats;
    stats.counter("we\"ird\\name\ttab")++;
    std::ostringstream os;
    stats.dumpJson(os);
    EXPECT_TRUE(JsonChecker(os.str()).valid()) << os.str();
}

// -------------------------------------------------------------------
// Trace-mask parsing: bounds derived from Flag::NumFlags.
// -------------------------------------------------------------------

TEST(Trace, ParseSpecCoversAllDefinedFlags)
{
    EXPECT_EQ(trace::parseSpec("all"), trace::allFlagsMask());
    EXPECT_EQ(trace::parseSpec("cache"),
              static_cast<std::uint32_t>(trace::Flag::Cache));
    // "mem" sits above the old hardcoded 1u << 6 bound.
    EXPECT_EQ(trace::parseSpec("mem"),
              static_cast<std::uint32_t>(trace::Flag::Mem));
    EXPECT_EQ(trace::parseSpec("cache,dram"),
              static_cast<std::uint32_t>(trace::Flag::Cache) |
                  static_cast<std::uint32_t>(trace::Flag::Dram));
    EXPECT_EQ(trace::parseSpec("bogus"), 0u);
    EXPECT_EQ(trace::parseSpec(nullptr), 0u);
    // Every defined bit resolves to a real name (no "?" holes below
    // NumFlags).
    EXPECT_EQ(trace::allFlagsMask(),
              (1u << static_cast<std::uint32_t>(trace::Flag::NumFlags)) -
                  1);
}

// -------------------------------------------------------------------
// Sampler: deterministic snapshot count and values.
// -------------------------------------------------------------------

TEST(Sampler, SnapshotsAtIntervalBoundaries)
{
    EventQueue eq;
    StatsRegistry stats;
    Counter &c = stats.counter("c");
    StatsSampler sampler(eq, stats, 10);
    eq.schedule(7, [&]() { c += 1; });
    eq.schedule(25, [&]() { c += 2; });
    eq.schedule(35, [&]() {});
    eq.run();

    const StatsTimeSeries &ts = stats.timeSeries();
    ASSERT_EQ(ts.numSamples(), 3u);
    EXPECT_EQ(ts.ticks, (std::vector<Tick>{10, 20, 30}));
    // A sample at tick T sees everything that ran strictly before T.
    EXPECT_EQ(ts.samples[0][0], 1.0);
    EXPECT_EQ(ts.samples[1][0], 1.0);
    EXPECT_EQ(ts.samples[2][0], 3.0);
}

TEST(Sampler, RunUntilSamplesIdleTime)
{
    EventQueue eq;
    StatsRegistry stats;
    stats.counter("c");
    StatsSampler sampler(eq, stats, 10);
    eq.runUntil(50);
    EXPECT_EQ(stats.timeSeries().numSamples(), 5u);
}

TEST(Sampler, PatternSelectsCounters)
{
    EventQueue eq;
    StatsRegistry stats;
    stats.counter("l1.hits");
    stats.counter("l1.misses");
    stats.counter("dram.reads");
    StatsSampler sampler(eq, stats, 10, {"l1.*"});
    ASSERT_EQ(stats.timeSeries().names.size(), 2u);
    EXPECT_EQ(stats.timeSeries().names[0], "l1.hits");
    EXPECT_EQ(stats.timeSeries().names[1], "l1.misses");
}

// -------------------------------------------------------------------
// Latency breakdowns: components account for the whole transaction.
// -------------------------------------------------------------------

TEST(Breakdown, ComponentsSumToEndToEndLatency)
{
    System sys(smallConfig());
    sys.addThread(0, [&](Guest &g) -> Task<> {
        // A spread of lines: L1 hits, L2 misses, L3 misses -> DRAM.
        for (int rep = 0; rep < 2; ++rep) {
            for (Addr a = 0x40000; a < 0x48000; a += 256)
                co_await g.store(a, a);
            for (Addr a = 0x40000; a < 0x48000; a += 256)
                co_await g.load(a);
        }
    });
    sys.run();

    StatsRegistry &st = sys.stats();
    const Histogram &total = st.histogram("mem.breakdown.total");
    const double parts = st.histogram("mem.breakdown.cache").sum() +
                         st.histogram("mem.breakdown.noc").sum() +
                         st.histogram("mem.breakdown.lock_wait").sum() +
                         st.histogram("mem.breakdown.dram").sum() +
                         st.histogram("mem.breakdown.callback_wait").sum();
    ASSERT_GT(total.count(), 0u);
    EXPECT_GT(st.histogram("mem.breakdown.dram").sum(), 0.0);
    // Every co_await on the access path is charged to exactly one
    // component, so the parts must account for the total exactly.
    EXPECT_DOUBLE_EQ(parts, total.sum());
}

namespace
{

class FillMorph : public Morph
{
  public:
    FillMorph()
        : Morph(MorphTraits{.name = "fill",
                            .hasMiss = true,
                            .missKernel = {4, 2}})
    {
    }

    Task<>
    onMiss(EngineCtx &ctx) override
    {
        co_await ctx.compute(4, 2);
        for (unsigned i = 0; i < wordsPerLine; ++i)
            ctx.setLineWord(i, 42 + i);
    }
};

} // namespace

TEST(Breakdown, EngineComponentsRecorded)
{
    System sys(smallConfig());
    FillMorph morph;
    std::uint64_t got = 0;
    sys.addThread(0, [&](Guest &g) -> Task<> {
        const MorphBinding *b = co_await g.registerPhantom(
            morph, MorphLevel::Private, 1 << 20);
        got = co_await g.load(b->base);
    });
    sys.run();

    EXPECT_EQ(got, 42u);
    StatsRegistry &st = sys.stats();
    const Histogram &total = st.histogram("engine.breakdown.total");
    ASSERT_GT(total.count(), 0u);
    // dispatch includes the fixed scheduler latency, so it is nonzero
    // whenever a callback ran at all.
    EXPECT_GT(st.histogram("engine.breakdown.dispatch").sum(), 0.0);
    // The miss transaction waited on the callback.
    EXPECT_GT(st.histogram("mem.breakdown.callback_wait").sum(), 0.0);
}

// -------------------------------------------------------------------
// Chrome trace sink.
// -------------------------------------------------------------------

TEST(TraceSink, WriterEmitsValidJson)
{
    std::ostringstream os;
    {
        trace::ChromeTraceWriter w(os);
        w.ensureTrack(0, "memory", 3, "tile3");
        w.completeEvent("mem", "load", 0, 3, 100, 42,
                        "{\"addr\":\"0x1000\"}");
        w.instantEvent("mem", "marker", 0, 3, 150);
        EXPECT_EQ(w.eventsWritten(), 4u); // 2 metadata + 2 payload
        w.close();
    }
    const std::string doc = os.str();
    EXPECT_TRUE(JsonChecker(doc).valid()) << doc;
    EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(doc.find("\"process_name\""), std::string::npos);
    EXPECT_NE(doc.find("\"thread_name\""), std::string::npos);
    // One event per line between the brackets, so the file can also be
    // consumed line-at-a-time.
    std::istringstream lines(doc);
    std::string line;
    std::getline(lines, line);
    EXPECT_EQ(line, "[");
    unsigned payload = 0;
    while (std::getline(lines, line)) {
        if (line == "]" || line.empty())
            continue;
        std::string obj = line;
        if (!obj.empty() && obj.back() == ',')
            obj.pop_back();
        if (obj.front() == ',')
            obj.erase(0, 1);
        EXPECT_TRUE(JsonChecker(obj).valid()) << obj;
        ++payload;
    }
    EXPECT_EQ(payload, 4u);
}

TEST(TraceSink, SpanGatingIsMaskBased)
{
    EXPECT_FALSE(trace::spanEnabled(trace::Flag::Mem));
    std::ostringstream os;
    trace::ChromeTraceWriter w(os);
    trace::setSpanSink(&w,
                       static_cast<std::uint32_t>(trace::Flag::Cache));
    EXPECT_TRUE(trace::spanEnabled(trace::Flag::Cache));
    EXPECT_FALSE(trace::spanEnabled(trace::Flag::Dram));
    trace::setSpanSink(nullptr);
    EXPECT_FALSE(trace::spanEnabled(trace::Flag::Cache));
}

TEST(TraceSink, SystemRunProducesSpans)
{
    std::ostringstream os;
    {
        trace::ChromeTraceWriter w(os);
        trace::setSpanSink(&w);
        System sys(smallConfig());
        sys.addThread(0, [&](Guest &g) -> Task<> {
            for (Addr a = 0x40000; a < 0x41000; a += 64)
                co_await g.load(a);
        });
        sys.run();
        trace::setSpanSink(nullptr);
        EXPECT_GT(w.eventsWritten(), 0u);
        w.close();
    }
    EXPECT_TRUE(JsonChecker(os.str()).valid());
    // Memory spans and DRAM bursts both appear.
    EXPECT_NE(os.str().find("\"name\":\"load\""), std::string::npos);
    EXPECT_NE(os.str().find("\"name\":\"read\""), std::string::npos);
}

// -------------------------------------------------------------------
// RunMetrics carries a stats snapshot for the JSON exporters.
// -------------------------------------------------------------------

TEST(RunMetrics, CarriesStatsSnapshot)
{
    System sys(smallConfig());
    sys.addThread(0, [&](Guest &g) -> Task<> {
        for (Addr a = 0x40000; a < 0x41000; a += 64)
            co_await g.load(a);
    });
    const Tick cycles = sys.run();
    RunMetrics m = collectMetrics(sys, "test", cycles);
    ASSERT_TRUE(m.stats);
    EXPECT_GT(m.stats->get("l1.misses"), 0.0);
    // The snapshot is independent of the live registry.
    sys.stats().counter("l1.misses") += 1000;
    EXPECT_EQ(m.stats->get("l1.misses"), sys.stats().get("l1.misses") - 1000);

    std::ostringstream os;
    m.stats->dumpJson(os);
    EXPECT_TRUE(JsonChecker(os.str()).valid());
}

// -------------------------------------------------------------------
// Sampler wired through SystemConfig.
// -------------------------------------------------------------------

TEST(SystemSampling, ConfigDrivenTimeSeries)
{
    SystemConfig cfg = smallConfig();
    cfg.sampleInterval = 100;
    cfg.samplePatterns = {"l1.*", "dram.*"};
    System sys(cfg);
    sys.addThread(0, [&](Guest &g) -> Task<> {
        for (Addr a = 0x40000; a < 0x44000; a += 64)
            co_await g.load(a);
    });
    const Tick cycles = sys.run();

    const StatsTimeSeries &ts = sys.stats().timeSeries();
    ASSERT_TRUE(ts.enabled());
    EXPECT_EQ(ts.numSamples(), static_cast<std::size_t>(cycles / 100));
    ASSERT_FALSE(ts.names.empty());
    for (const std::string &n : ts.names)
        EXPECT_TRUE(n.rfind("l1.", 0) == 0 || n.rfind("dram.", 0) == 0)
            << n;
    // Sampled counters are monotone over the run.
    const std::size_t cols = ts.names.size();
    for (std::size_t j = 0; j < cols; ++j) {
        for (std::size_t i = 1; i < ts.numSamples(); ++i)
            EXPECT_GE(ts.samples[i][j], ts.samples[i - 1][j]);
    }
}
