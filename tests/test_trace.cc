/**
 * @file
 * takotrace tests: codec round-trips, loud failure on every corruption
 * class (truncation, bad magic, wrong version, CRC, reserved bits,
 * unclosed writer), text ingest, generators, and replay determinism.
 *
 * Labeled `sanfast`: the reader mmaps files and decodes records straight
 * out of the mapping, so ASan/TSan coverage of the open/next/rewind/
 * close lifetime is the point, not a nice-to-have.
 */

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "system/system.hh"
#include "trace/format.hh"
#include "trace/gen.hh"
#include "trace/reader.hh"
#include "trace/replay.hh"
#include "trace/textio.hh"
#include "trace/writer.hh"

using namespace tako;
using namespace tako::trace;

namespace
{

/** Unique-per-test scratch path, cleaned up on destruction. */
class ScratchFile
{
  public:
    explicit ScratchFile(const std::string &stem)
    {
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        path_ = ::testing::TempDir() + "tako_" + info->test_suite_name() +
                "_" + info->name() + "_" + stem;
    }
    ~ScratchFile() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

std::vector<std::uint8_t>
readAll(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

void
writeAll(const std::string &path, const std::vector<std::uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
}

/**
 * Deterministic record stream exercising every head-byte path: op
 * changes, size/tenant stickiness, address deltas in both directions,
 * timestamp plateaus. Plain LCG — no wall-clock randomness in tests.
 */
std::vector<TraceRecord>
sampleRecords(std::size_t n, bool timestamps)
{
    std::vector<TraceRecord> recs;
    std::uint64_t x = 0x9e3779b97f4a7c15ull;
    std::uint64_t ts = 0;
    for (std::size_t i = 0; i < n; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        TraceRecord r;
        r.op = static_cast<TraceOp>((x >> 16) % numTraceOps);
        // Mix of forward and backward address deltas.
        r.addr = 0x1000'0000ull + ((x >> 24) % 0xffff) * 8;
        r.size = (x & 1) ? 8 : 64 + static_cast<std::uint32_t>(x % 128);
        r.tenant = static_cast<std::uint32_t>((x >> 8) % 5);
        if (timestamps)
            ts += (x >> 32) % 3; // plateaus: equal timestamps are legal
        r.ts = timestamps ? ts : 0;
        recs.push_back(r);
    }
    return recs;
}

void
writeTrace(const std::string &path, const std::vector<TraceRecord> &recs,
           bool timestamps, std::uint32_t chunkRecords = 64)
{
    TraceWriter w;
    TraceWriter::Options opt;
    opt.timestamps = timestamps;
    opt.chunkRecords = chunkRecords;
    ASSERT_TRUE(w.open(path, opt)) << w.error();
    for (const TraceRecord &r : recs)
        w.append(r);
    ASSERT_TRUE(w.close()) << w.error();
}

} // namespace

// ---- primitives --------------------------------------------------------

TEST(TraceFormat, VarintRoundTripsEdgeValues)
{
    const std::uint64_t values[] = {0,    1,        0x7f,      0x80,
                                    0x3fff, 0x4000, 0xffffffffull,
                                    0xffffffffffffffffull};
    for (const std::uint64_t v : values) {
        std::vector<std::uint8_t> buf;
        putVarint(buf, v);
        const std::uint8_t *p = buf.data();
        std::uint64_t out = 0;
        ASSERT_TRUE(getVarint(p, buf.data() + buf.size(), out));
        EXPECT_EQ(out, v);
        EXPECT_EQ(p, buf.data() + buf.size());
    }
}

TEST(TraceFormat, VarintRejectsTruncation)
{
    std::vector<std::uint8_t> buf;
    putVarint(buf, 0x123456789abcdefull);
    for (std::size_t cut = 0; cut + 1 < buf.size(); ++cut) {
        const std::uint8_t *p = buf.data();
        std::uint64_t out;
        EXPECT_FALSE(getVarint(p, buf.data() + cut, out));
    }
}

TEST(TraceFormat, ZigzagRoundTripsSignedDeltas)
{
    const std::int64_t values[] = {0, 1, -1, 63, -64,
                                   INT64_MAX, INT64_MIN};
    for (const std::int64_t v : values)
        EXPECT_EQ(zigzagDecode(zigzagEncode(v)), v);
}

TEST(TraceFormat, Crc32MatchesIeeeReferenceVector)
{
    // The classic check value; also what Python's binascii.crc32
    // computes, which tools/validate_takotrace.py relies on.
    const char *s = "123456789";
    EXPECT_EQ(crc32(reinterpret_cast<const std::uint8_t *>(s), 9),
              0xcbf43926u);
    EXPECT_EQ(crc32(nullptr, 0), 0u);
}

// ---- writer/reader round-trips -----------------------------------------

TEST(TraceCodec, RoundTripsRecordsAcrossChunks)
{
    ScratchFile f("rt.takotrace");
    const auto recs = sampleRecords(1000, true);
    writeTrace(f.path(), recs, true, /*chunkRecords=*/64);

    TraceReader r;
    ASSERT_TRUE(r.open(f.path())) << r.error();
    EXPECT_TRUE(r.hasTimestamps());
    EXPECT_EQ(r.recordCount(), recs.size());
    EXPECT_GT(r.chunkCount(), 1u) << "test must span chunk boundaries";

    TraceRecord got;
    for (std::size_t i = 0; i < recs.size(); ++i) {
        ASSERT_TRUE(r.next(got)) << "at record " << i << ": "
                                 << r.error();
        EXPECT_EQ(got, recs[i]) << "at record " << i;
    }
    EXPECT_FALSE(r.next(got));
    EXPECT_TRUE(r.error().empty()) << r.error();

    // rewind() restarts cleanly from record 0.
    r.rewind();
    ASSERT_TRUE(r.next(got));
    EXPECT_EQ(got, recs[0]);
}

TEST(TraceCodec, RoundTripsWithoutTimestamps)
{
    ScratchFile f("nots.takotrace");
    auto recs = sampleRecords(200, false);
    writeTrace(f.path(), recs, false);

    TraceReader r;
    ASSERT_TRUE(r.open(f.path())) << r.error();
    EXPECT_FALSE(r.hasTimestamps());
    TraceRecord got;
    for (std::size_t i = 0; i < recs.size(); ++i) {
        ASSERT_TRUE(r.next(got));
        EXPECT_EQ(got, recs[i]) << "at record " << i;
        EXPECT_EQ(got.ts, 0u);
    }
    EXPECT_FALSE(r.next(got));
    EXPECT_TRUE(r.error().empty());
}

TEST(TraceCodec, WriterRejectsNonMonotonicTimestamps)
{
    ScratchFile f("mono.takotrace");
    TraceWriter w;
    TraceWriter::Options opt;
    opt.timestamps = true;
    ASSERT_TRUE(w.open(f.path(), opt));
    TraceRecord r;
    r.ts = 100;
    w.append(r);
    r.ts = 99; // goes backwards
    w.append(r);
    EXPECT_FALSE(w.close());
    EXPECT_NE(w.error().find("monoton"), std::string::npos)
        << w.error();
}

// ---- corruption classes all fail loudly --------------------------------

class TraceCorruption : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        file_ = std::make_unique<ScratchFile>("corrupt.takotrace");
        writeTrace(file_->path(), sampleRecords(300, true), true, 64);
        bytes_ = readAll(file_->path());
        ASSERT_GT(bytes_.size(), fileHeaderBytes + chunkHeaderBytes);
    }

    /** Expect open() (or, for lazy CRC checks, iteration) to fail with
     *  @p needle somewhere in the error. */
    void
    expectLoudFailure(const std::string &needle)
    {
        writeAll(file_->path(), bytes_);
        TraceReader r;
        if (r.open(file_->path())) {
            TraceRecord rec;
            while (r.next(rec)) {
            }
        }
        EXPECT_FALSE(r.error().empty())
            << "corruption was silently accepted";
        EXPECT_NE(r.error().find(needle), std::string::npos)
            << "error was: " << r.error();
    }

    std::unique_ptr<ScratchFile> file_;
    std::vector<std::uint8_t> bytes_;
};

TEST_F(TraceCorruption, TruncatedFileRejected)
{
    bytes_.resize(bytes_.size() - 7);
    expectLoudFailure("truncated");
}

TEST_F(TraceCorruption, TruncatedToMidDirectoryRejected)
{
    bytes_.resize(fileHeaderBytes + chunkHeaderBytes / 2);
    expectLoudFailure("truncated");
}

TEST_F(TraceCorruption, BadMagicRejected)
{
    bytes_[0] ^= 0x20;
    expectLoudFailure("bad magic");
}

TEST_F(TraceCorruption, VersionMismatchRejected)
{
    bytes_[8] = 2; // version u32 at offset 8
    expectLoudFailure("version");
}

TEST_F(TraceCorruption, UnknownFlagBitsRejected)
{
    bytes_[12] |= 0x80; // flags u32 at offset 12
    expectLoudFailure("flag");
}

TEST_F(TraceCorruption, PayloadBitFlipFailsCrc)
{
    // Flip one bit in the first chunk's payload: header walk still
    // passes (CRCs are lazy), the first next() into the chunk fails.
    bytes_[fileHeaderBytes + chunkHeaderBytes + 3] ^= 0x01;
    expectLoudFailure("CRC mismatch");
}

TEST_F(TraceCorruption, UnclosedWriterRejected)
{
    // A writer that died before close() leaves the placeholder record
    // count (0) in the header while chunk data sits on disk.
    for (std::size_t i = 16; i < 24; ++i)
        bytes_[i] = 0;
    expectLoudFailure("unclosed writer");
}

TEST_F(TraceCorruption, RecordCountMismatchRejected)
{
    bytes_[16] ^= 0x01; // recordCount u64 at offset 16
    expectLoudFailure("records");
}

TEST(TraceCodec, ReservedHeadBitsRejected)
{
    // Hand-build a one-chunk file whose single record sets a reserved
    // head bit. The CRC is correct, so only the decoder can catch it.
    std::vector<std::uint8_t> payload;
    payload.push_back(0x40); // reserved bit 6 + op=0
    putVarint(payload, zigzagEncode(0x1000));

    std::vector<std::uint8_t> bytes(fileHeaderBytes, 0);
    std::memcpy(bytes.data(), traceMagic.data(), traceMagic.size());
    bytes[8] = 1;  // version
    bytes[16] = 1; // recordCount
    bytes[24] = 1; // chunkCount
    std::vector<std::uint8_t> ch(chunkHeaderBytes, 0);
    const std::uint32_t magic = chunkMagic;
    const std::uint32_t crc = crc32(payload.data(), payload.size());
    std::memcpy(ch.data(), &magic, 4);
    ch[4] = 1; // records
    ch[8] = static_cast<std::uint8_t>(payload.size());
    std::memcpy(ch.data() + 12, &crc, 4);
    bytes.insert(bytes.end(), ch.begin(), ch.end());
    bytes.insert(bytes.end(), payload.begin(), payload.end());

    ScratchFile f("reserved.takotrace");
    writeAll(f.path(), bytes);
    TraceReader r;
    ASSERT_TRUE(r.open(f.path())) << r.error();
    TraceRecord rec;
    EXPECT_FALSE(r.next(rec));
    EXPECT_NE(r.error().find("reserved"), std::string::npos)
        << r.error();
}

// ---- text ingest / dump ------------------------------------------------

TEST(TraceText, ParsesOpsAndOptionalFields)
{
    std::uint32_t prevSize = 8;
    std::string err;
    TraceRecord r;

    ASSERT_EQ(parseTraceLine("R 0x1000", r, prevSize, err), 1) << err;
    EXPECT_EQ(r.op, TraceOp::Load);
    EXPECT_EQ(r.addr, 0x1000u);
    EXPECT_EQ(r.size, 8u);

    ASSERT_EQ(parseTraceLine("store 2000 64 3 77", r, prevSize, err), 1);
    EXPECT_EQ(r.op, TraceOp::Store);
    EXPECT_EQ(r.size, 64u);
    EXPECT_EQ(r.tenant, 3u);
    EXPECT_EQ(r.ts, 77u);

    // Size is sticky across lines.
    ASSERT_EQ(parseTraceLine("SW 0x40", r, prevSize, err), 1);
    EXPECT_EQ(r.op, TraceOp::StreamStore);
    EXPECT_EQ(r.size, 64u);

    // Pin's pinatrace format: leading ip column with a colon.
    ASSERT_EQ(parseTraceLine("0x7f00001234: W 0x2000 8", r, prevSize,
                             err),
              1);
    EXPECT_EQ(r.op, TraceOp::Store);
    EXPECT_EQ(r.addr, 0x2000u);

    EXPECT_EQ(parseTraceLine("# comment", r, prevSize, err), 0);
    EXPECT_EQ(parseTraceLine("", r, prevSize, err), 0);

    EXPECT_EQ(parseTraceLine("FROB 0x1000", r, prevSize, err), -1);
    EXPECT_FALSE(err.empty());
    err.clear();
    EXPECT_EQ(parseTraceLine("R 0x1 8 0 1 junk", r, prevSize, err), -1);
}

TEST(TraceText, IngestDumpRoundTripsByteIdentically)
{
    ScratchFile bin("ingest.takotrace");
    const std::string text = "# demo\n"
                             "load 0x1000 8 0 1\n"
                             "store 0x1040 64 1 2\n"
                             "sr 0x2000 64 1 2\n"
                             "a 0x3000 8 2 5\n";
    {
        TraceWriter w;
        TraceWriter::Options opt;
        opt.timestamps = true;
        ASSERT_TRUE(w.open(bin.path(), opt));
        std::istringstream in(text);
        const IngestResult res = ingestText(in, w);
        ASSERT_TRUE(res.ok) << res.error;
        EXPECT_EQ(res.records, 4u);
        EXPECT_EQ(res.skipped, 1u);
        ASSERT_TRUE(w.close()) << w.error();
    }
    TraceReader r;
    ASSERT_TRUE(r.open(bin.path())) << r.error();
    std::ostringstream dump;
    TraceRecord rec;
    while (r.next(rec))
        formatTraceLine(dump, rec, r.hasTimestamps());
    EXPECT_TRUE(r.error().empty()) << r.error();
    EXPECT_EQ(dump.str(), "load 0x1000 8 0 1\n"
                          "store 0x1040 64 1 2\n"
                          "stream-load 0x2000 64 1 2\n"
                          "atomic-add 0x3000 8 2 5\n");
}

// ---- generators --------------------------------------------------------

TEST(TraceGen, EmitsExactRecordCountForEveryKind)
{
    for (const std::string &kind : genKinds()) {
        ScratchFile f(kind + ".takotrace");
        GenParams p;
        p.kind = kind;
        p.records = 500;
        p.tenants = 6;
        TraceWriter w;
        TraceWriter::Options opt;
        opt.timestamps = true;
        ASSERT_TRUE(w.open(f.path(), opt));
        std::string err;
        ASSERT_TRUE(generateTrace(p, w, err)) << kind << ": " << err;
        ASSERT_TRUE(w.close()) << w.error();

        TraceReader r;
        ASSERT_TRUE(r.open(f.path())) << kind << ": " << r.error();
        EXPECT_EQ(r.recordCount(), 500u) << kind;
        TraceRecord rec;
        std::uint64_t n = 0, prevTs = 0;
        while (r.next(rec)) {
            ++n;
            EXPECT_GE(rec.ts, prevTs) << kind;
            prevTs = rec.ts;
            EXPECT_LT(rec.tenant, 6u) << kind;
        }
        EXPECT_TRUE(r.error().empty()) << kind << ": " << r.error();
        EXPECT_EQ(n, 500u) << kind;
    }
}

TEST(TraceGen, SameSeedSameBytesDifferentSeedDifferentBytes)
{
    auto gen = [](const std::string &path, std::uint64_t seed) {
        GenParams p;
        p.kind = "mix";
        p.records = 400;
        p.seed = seed;
        TraceWriter w;
        TraceWriter::Options opt;
        opt.timestamps = true;
        ASSERT_TRUE(w.open(path, opt));
        std::string err;
        ASSERT_TRUE(generateTrace(p, w, err)) << err;
        ASSERT_TRUE(w.close());
    };
    ScratchFile a("a.takotrace"), b("b.takotrace"), c("c.takotrace");
    gen(a.path(), 7);
    gen(b.path(), 7);
    gen(c.path(), 8);
    EXPECT_EQ(readAll(a.path()), readAll(b.path()));
    EXPECT_NE(readAll(a.path()), readAll(c.path()));
}

TEST(TraceGen, RejectsInvalidParams)
{
    ScratchFile f("bad.takotrace");
    TraceWriter w;
    ASSERT_TRUE(w.open(f.path()));
    std::string err;
    GenParams p;
    p.kind = "does-not-exist";
    EXPECT_FALSE(generateTrace(p, w, err));
    EXPECT_FALSE(err.empty());
}

// ---- replay ------------------------------------------------------------

namespace
{

SystemConfig
tinySystem(unsigned cores)
{
    SystemConfig cfg = SystemConfig::forCores(cores);
    cfg.mem.l1Size = 2 * 1024;
    cfg.mem.l2Size = 8 * 1024;
    cfg.mem.l3BankSize = 32 * 1024;
    return cfg;
}

} // namespace

TEST(TraceReplay, IsDeterministicAndCountsRecords)
{
    ScratchFile f("replay.takotrace");
    GenParams p;
    p.kind = "kv";
    p.records = 2000;
    p.tenants = 7;
    TraceWriter w;
    TraceWriter::Options opt;
    opt.timestamps = true;
    ASSERT_TRUE(w.open(f.path(), opt));
    std::string err;
    ASSERT_TRUE(generateTrace(p, w, err)) << err;
    ASSERT_TRUE(w.close());

    TraceReplayConfig cfg;
    cfg.path = f.path();
    const TraceReplayResult a = runTraceReplay(cfg, tinySystem(4));
    ASSERT_TRUE(a.ok) << a.error;
    EXPECT_EQ(a.records, 2000u);
    EXPECT_EQ(a.tenantsSeen, 7u);
    EXPECT_GT(a.metrics.cycles, 0u);

    const TraceReplayResult b = runTraceReplay(cfg, tinySystem(4));
    ASSERT_TRUE(b.ok) << b.error;
    EXPECT_EQ(a.metrics.cycles, b.metrics.cycles);
    EXPECT_EQ(a.metrics.dramReads, b.metrics.dramReads);
    EXPECT_EQ(a.metrics.coreInstrs, b.metrics.coreInstrs);
    // extras minus the wall-clock host.* keys must be bit-identical.
    auto nonHost = [](const std::map<std::string, double> &m) {
        std::map<std::string, double> out;
        for (const auto &[k, v] : m)
            if (k.rfind("host.", 0) != 0)
                out.emplace(k, v);
        return out;
    };
    EXPECT_EQ(nonHost(a.metrics.extra), nonHost(b.metrics.extra));
}

TEST(TraceReplay, RecorderRoundTripReplays)
{
    ScratchFile src("src.takotrace"), rec("rec.takotrace");
    GenParams p;
    p.kind = "scan";
    p.records = 1000;
    p.tenants = 4;
    TraceWriter w;
    TraceWriter::Options opt;
    opt.timestamps = true;
    ASSERT_TRUE(w.open(src.path(), opt));
    std::string err;
    ASSERT_TRUE(generateTrace(p, w, err)) << err;
    ASSERT_TRUE(w.close());

    TraceReplayConfig cfg;
    cfg.path = src.path();
    cfg.recordPath = rec.path();
    const TraceReplayResult first = runTraceReplay(cfg, tinySystem(4));
    ASSERT_TRUE(first.ok) << first.error;

    // The recorded (normalized) trace is itself a valid input: its
    // record count matches the replayed line ops, and replaying it
    // works end to end.
    std::uint64_t recorded = 0;
    {
        TraceReader check;
        ASSERT_TRUE(check.open(rec.path())) << check.error();
        EXPECT_TRUE(check.hasTimestamps());
        recorded = check.recordCount();
        EXPECT_GE(recorded, first.records);
    }

    TraceReplayConfig cfg2;
    cfg2.path = rec.path();
    const TraceReplayResult second = runTraceReplay(cfg2, tinySystem(4));
    ASSERT_TRUE(second.ok) << second.error;
    EXPECT_EQ(second.records, recorded);
}

TEST(TraceReplay, FoldsPhantomSpaceAddressesIntoRealSpace)
{
    // Pin captures carry 47-bit user-space addresses; anything at or
    // above the täkō phantom base (2^46) must fold into the real
    // address space instead of panicking on an unregistered phantom.
    ScratchFile f("high.takotrace");
    std::vector<TraceRecord> recs;
    for (int i = 0; i < 16; ++i) {
        TraceRecord r;
        r.addr = 0x7f00'0000'1000ull + static_cast<Addr>(i) * 64;
        r.op = (i & 1) ? TraceOp::Store : TraceOp::Load;
        r.tenant = static_cast<std::uint32_t>(i % 3);
        recs.push_back(r);
    }
    writeTrace(f.path(), recs, false);

    TraceReplayConfig cfg;
    cfg.path = f.path();
    const TraceReplayResult res = runTraceReplay(cfg, tinySystem(4));
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.records, 16u);
}

TEST(TraceReplay, MissingFileFailsWithError)
{
    TraceReplayConfig cfg;
    cfg.path = ::testing::TempDir() + "tako_no_such_file.takotrace";
    const TraceReplayResult res = runTraceReplay(cfg, tinySystem(2));
    EXPECT_FALSE(res.ok);
    EXPECT_FALSE(res.error.empty());
}
