/**
 * @file
 * Integration tests for the memory hierarchy + täkō trigger paths:
 * timing sanity, coherence, phantom morphs, eviction callbacks,
 * flushData, and RMOs.
 */

#include <gtest/gtest.h>

#include "system/system.hh"

using namespace tako;

namespace
{

SystemConfig
smallConfig()
{
    SystemConfig cfg = SystemConfig::forCores(4);
    cfg.mem.l1Size = 1024;       // 2 sets x 8 ways
    cfg.mem.l2Size = 4 * 1024;   // 8 sets x 8 ways
    cfg.mem.l3BankSize = 16 * 1024;
    cfg.mem.prefetchEnable = false;
    return cfg;
}

/** Morph that fills lines with addr+i and records callbacks. */
class TestMorph : public Morph
{
  public:
    explicit TestMorph(bool miss = true, bool evict = true, bool wb = true)
        : Morph(MorphTraits{
              .name = "test",
              .hasMiss = miss,
              .hasEviction = evict,
              .hasWriteback = wb,
              .missKernel = {10, 3},
              .evictionKernel = {6, 2},
              .writebackKernel = {8, 2},
          })
    {
    }

    Task<>
    onMiss(EngineCtx &ctx) override
    {
        ++missCount;
        co_await ctx.compute(10, 3);
        for (unsigned i = 0; i < wordsPerLine; ++i)
            ctx.setLineWord(i, ctx.addr() + i);
    }

    Task<>
    onEviction(EngineCtx &ctx) override
    {
        ++evictCount;
        lastEvicted = ctx.addr();
        co_await ctx.compute(6, 2);
    }

    Task<>
    onWriteback(EngineCtx &ctx) override
    {
        ++wbCount;
        lastEvicted = ctx.addr();
        captured = ctx.capturedLine();
        co_await ctx.compute(8, 2);
    }

    int missCount = 0;
    int evictCount = 0;
    int wbCount = 0;
    Addr lastEvicted = 0;
    LineData captured{};
};

} // namespace

TEST(MemorySystem, StoreLoadRoundTrip)
{
    System sys(smallConfig());
    std::uint64_t got = 0;
    sys.addThread(0, [&](Guest &g) -> Task<> {
        co_await g.store(0x10000, 1234);
        got = co_await g.load(0x10000);
    });
    sys.run();
    EXPECT_EQ(got, 1234u);
    sys.mem().checkInvariants();
}

TEST(MemorySystem, CacheHitsGetFaster)
{
    System sys(smallConfig());
    Tick first = 0, second = 0;
    sys.addThread(0, [&](Guest &g) -> Task<> {
        Tick t0 = g.now();
        co_await g.load(0x20000);
        first = g.now() - t0;
        t0 = g.now();
        co_await g.load(0x20000);
        second = g.now() - t0;
    });
    sys.run();
    // First access goes to DRAM (>=100 cycles); second hits the L1.
    EXPECT_GT(first, 100u);
    EXPECT_LE(second, 2 * sys.config().mem.l1Lat);
    EXPECT_EQ(sys.stats().get("dram.reads"), 1);
}

TEST(MemorySystem, ConcurrentAtomicAddsSumCorrectly)
{
    System sys(smallConfig());
    const Addr counter = 0x40000;
    for (unsigned c = 0; c < sys.numCores(); ++c) {
        sys.addThread(static_cast<int>(c), [&](Guest &g) -> Task<> {
            for (int i = 0; i < 50; ++i) {
                co_await g.atomicAdd(counter, 1);
                co_await g.exec(3);
            }
        });
    }
    sys.run();
    EXPECT_EQ(sys.mem().realStore().read64(counter),
              50u * sys.numCores());
    // Contention must have produced invalidations.
    EXPECT_GT(sys.stats().get("coherence.invalidations"), 0);
    sys.mem().checkInvariants();
}

TEST(MemorySystem, SharersSeeStoresAcrossTiles)
{
    System sys(smallConfig());
    const Addr flag = 0x50000;
    const Addr data = 0x51000;
    std::uint64_t observed = 0;
    sys.addThread(0, [&](Guest &g) -> Task<> {
        co_await g.store(data, 777);
        co_await g.store(flag, 1);
    });
    sys.addThread(1, [&](Guest &g) -> Task<> {
        // Spin on the flag (reads through coherence).
        while (co_await g.load(flag) == 0)
            co_await g.exec(16);
        observed = co_await g.load(data);
    });
    sys.run();
    EXPECT_EQ(observed, 777u);
    sys.mem().checkInvariants();
}

TEST(MemorySystem, PhantomMissCallbackFillsLine)
{
    System sys(smallConfig());
    TestMorph morph;
    std::uint64_t v0 = 0, v1 = 0, v0_again = 0;
    int misses_after_first = 0;
    sys.addThread(0, [&](Guest &g) -> Task<> {
        const MorphBinding *b = co_await g.registerPhantom(
            morph, MorphLevel::Private, 1 << 20);
        const Addr base = b->base;
        v0 = co_await g.load(base);
        v1 = co_await g.load(base + 8);
        misses_after_first = morph.missCount;
        v0_again = co_await g.load(base);
    });
    sys.run();
    EXPECT_EQ(morph.missCount, 1);
    EXPECT_EQ(misses_after_first, 1);
    EXPECT_EQ(v1, v0 + 1); // onMiss filled addr+i per word
    EXPECT_EQ(v0_again, v0);
    sys.mem().checkInvariants();
}

TEST(MemorySystem, PhantomEvictionsTriggerCallbacks)
{
    SystemConfig cfg = smallConfig();
    System sys(cfg);
    TestMorph morph;
    sys.addThread(0, [&](Guest &g) -> Task<> {
        const MorphBinding *b = co_await g.registerPhantom(
            morph, MorphLevel::Private, 1 << 20);
        // Touch far more lines than the L2 holds: evictions must fire.
        const unsigned lines =
            2 * cfg.mem.l2Size / lineBytes;
        for (unsigned i = 0; i < lines; ++i)
            co_await g.load(b->base + i * lineBytes);
        co_await g.flushData(b);
    });
    sys.run();
    const unsigned lines = 2 * cfg.mem.l2Size / lineBytes;
    EXPECT_EQ(morph.missCount, static_cast<int>(lines));
    // Every line eventually left the cache (capacity + flush), clean.
    EXPECT_EQ(morph.evictCount + morph.wbCount, static_cast<int>(lines));
    EXPECT_EQ(morph.wbCount, 0); // no stores -> onEviction only
    sys.mem().checkInvariants();
}

TEST(MemorySystem, DirtyPhantomLinesUseOnWriteback)
{
    System sys(smallConfig());
    TestMorph morph;
    sys.addThread(0, [&](Guest &g) -> Task<> {
        const MorphBinding *b = co_await g.registerPhantom(
            morph, MorphLevel::Private, 1 << 20);
        co_await g.store(b->base + 16, 99);
        co_await g.flushData(b);
    });
    sys.run();
    EXPECT_EQ(morph.wbCount, 1);
    EXPECT_EQ(morph.evictCount, 0);
    // Captured data: onMiss pattern with word 2 overwritten by the store.
    EXPECT_EQ(morph.captured[2], 99u);
    EXPECT_EQ(morph.captured[3], morph.lastEvicted + 3);
}

TEST(MemorySystem, FlushDataEmptiesTheRange)
{
    System sys(smallConfig());
    TestMorph morph;
    Addr base = 0;
    sys.addThread(0, [&](Guest &g) -> Task<> {
        const MorphBinding *b = co_await g.registerPhantom(
            morph, MorphLevel::Private, 1 << 20);
        base = b->base;
        for (unsigned i = 0; i < 8; ++i)
            co_await g.load(base + i * lineBytes);
        co_await g.flushData(b);
    });
    sys.run();
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_FALSE(sys.mem().cachedAnywhere(base + i * lineBytes));
    // Phantom store contents are gone too.
    EXPECT_EQ(sys.mem().phantomStore().read64(base), 0u);
}

TEST(MemorySystem, SharedPhantomRmoAccumulates)
{
    System sys(smallConfig());
    TestMorph morph(/*miss=*/true, /*evict=*/true, /*wb=*/true);
    Addr base = 0;
    // Register from core 0, then everyone pushes RMOs.
    sys.addThread(0, [&](Guest &g) -> Task<> {
        const MorphBinding *b = co_await g.registerPhantom(
            morph, MorphLevel::Shared, 1 << 20);
        base = b->base;
        for (unsigned c = 0; c < 4; ++c) {
            for (int i = 0; i < 32; ++i)
                co_await g.rmoAdd(base + (i % 4) * 8, 1);
        }
        co_await g.rmoDrain();
    });
    sys.run();
    // onMiss filled words with addr+i; RMOs added on top. All pushes to
    // word w of line 0: 32 adds spread over words 0..3 (8 each) x 4 reps.
    for (unsigned w = 0; w < 4; ++w) {
        EXPECT_EQ(sys.mem().phantomStore().read64(base + w * 8),
                  base + w + 32);
    }
    EXPECT_EQ(morph.missCount, 1);
    EXPECT_GT(sys.stats().get("rmo.ops"), 0);
}

TEST(MemorySystem, RealMorphEvictionObserved)
{
    SystemConfig cfg = smallConfig();
    System sys(cfg);
    // Eviction-only morph over real data at the shared L3.
    TestMorph morph(/*miss=*/false, /*evict=*/true, /*wb=*/false);
    const Addr guarded = 0x100000;
    sys.addThread(0, [&](Guest &g) -> Task<> {
        const MorphBinding *b = co_await g.registerReal(
            morph, MorphLevel::Shared, guarded, lineBytes);
        (void)b;
        co_await g.load(guarded);
        // Blow the L3 with conflicting lines to evict the guarded one.
        for (unsigned i = 1; i < 4096; ++i)
            co_await g.load(guarded + i * 64 * 1024);
    });
    sys.run();
    EXPECT_GE(morph.evictCount, 1);
    EXPECT_EQ(morph.lastEvicted, guarded);
}

TEST(MemorySystem, LoadMultiOverlapsLatency)
{
    SystemConfig cfg = smallConfig();
    System sys(cfg);
    Tick serial = 0, overlapped = 0;
    sys.addThread(0, [&](Guest &g) -> Task<> {
        // 8 dependent loads, spread over distinct DRAM lines.
        Tick t0 = g.now();
        for (int i = 0; i < 8; ++i)
            co_await g.load(0x200000 + i * 4096);
        serial = g.now() - t0;
        // 8 independent loads.
        std::vector<Addr> addrs;
        for (int i = 0; i < 8; ++i)
            addrs.push_back(0x400000 + i * 4096);
        t0 = g.now();
        co_await g.loadMulti(addrs, nullptr);
        overlapped = g.now() - t0;
    });
    sys.run();
    EXPECT_LT(overlapped * 2, serial); // MLP at least halves the time
}

TEST(MemorySystem, UnregisterReleasesRange)
{
    System sys(smallConfig());
    TestMorph morph;
    sys.addThread(0, [&](Guest &g) -> Task<> {
        const MorphBinding *b = co_await g.registerPhantom(
            morph, MorphLevel::Private, 1 << 20);
        co_await g.load(b->base);
        co_await g.unregister(b);
    });
    sys.run();
    EXPECT_EQ(sys.registry().numRegistered(), 0u);
    EXPECT_EQ(morph.evictCount, 1); // unregister flushes with callbacks
}

TEST(MemorySystem, EnergyAccumulates)
{
    System sys(smallConfig());
    sys.addThread(0, [&](Guest &g) -> Task<> {
        for (int i = 0; i < 64; ++i)
            co_await g.load(0x300000 + i * lineBytes);
        co_await g.exec(1000);
    });
    sys.run();
    EXPECT_GT(sys.totalEnergy(), 0.0);
    EXPECT_GT(sys.stats().get("energy.dram"), 0.0);
    EXPECT_GT(sys.stats().get("energy.core"), 0.0);
}
