/**
 * @file
 * Tests for the sharded conservative executor: plan partitioning and
 * quantum derivation, SPSC mailbox semantics, and — the load-bearing
 * property — bit-identical results at every worker-thread count, under
 * real host threads and real cross-shard traffic.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "sim/shard.hh"
#include "system/system.hh"
#include "workloads/decompress.hh"

using namespace tako;

// ------------------------------------------------------------ ShardPlan

TEST(ShardPlan, PartitionsColumnsContiguously)
{
    const ShardPlan p = ShardPlan::build(4, 4, 2, 1, 4);
    EXPECT_EQ(p.shards, 4u);
    EXPECT_EQ(p.columnShard, (std::vector<unsigned>{0, 1, 2, 3}));
    // 4x4 mesh with a tile per column band: tile 5 sits in column 1.
    EXPECT_EQ(p.shardOf(5), 1u);
    EXPECT_EQ(p.shardOf(12), 0u);
    // 3 vertical cuts x 4 rows x {E, W}.
    EXPECT_EQ(p.boundaryLinks, 3u * 4u * 2u);
}

TEST(ShardPlan, QuantumIsMinimumBoundaryCrossing)
{
    EXPECT_EQ(ShardPlan::build(4, 4, 2, 1, 4).quantum, Tick{3});
    EXPECT_EQ(ShardPlan::build(4, 4, 7, 5, 2).quantum, Tick{12});
    // Degenerate delays still give a usable (nonzero) window.
    EXPECT_EQ(ShardPlan::build(4, 4, 0, 0, 2).quantum, Tick{1});
}

TEST(ShardPlan, ClampsToColumns)
{
    // A 4-column mesh cannot split 8 ways; a request for 0 means 1.
    EXPECT_EQ(ShardPlan::build(4, 4, 2, 1, 8).shards, 4u);
    EXPECT_EQ(ShardPlan::build(4, 4, 2, 1, 0).shards, 1u);
    const ShardPlan two = ShardPlan::build(4, 2, 2, 1, 2);
    EXPECT_EQ(two.columnShard, (std::vector<unsigned>{0, 0, 1, 1}));
    EXPECT_EQ(two.boundaryLinks, 1u * 2u * 2u);
}

// ---------------------------------------------------------- SpscMailbox

TEST(SpscMailbox, FifoAcrossThreads)
{
    SpscMailbox<std::uint64_t> mb(1024);
    constexpr std::uint64_t kCount = 200000;
    std::thread producer([&mb] {
        for (std::uint64_t i = 0; i < kCount; ++i) {
            while (!mb.tryPush(i))
                std::this_thread::yield();
        }
    });
    std::uint64_t expect = 0;
    while (expect < kCount) {
        std::uint64_t v = 0;
        if (mb.tryPop(v)) {
            ASSERT_EQ(v, expect); // strict FIFO, nothing lost
            ++expect;
        }
    }
    producer.join();
    EXPECT_TRUE(mb.empty());
}

TEST(SpscMailbox, ReportsFullWithoutOverwriting)
{
    SpscMailbox<int> mb(4);
    EXPECT_EQ(mb.capacity(), 4u);
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(mb.tryPush(i));
    EXPECT_FALSE(mb.tryPush(99));
    int v = -1;
    EXPECT_TRUE(mb.tryPop(v));
    EXPECT_EQ(v, 0);
    EXPECT_TRUE(mb.tryPush(4)); // slot freed
}

// ------------------------------------------------- ShardedExecutor core

namespace
{

/**
 * Synthetic PDES workload: four domains in a ring, each running a local
 * event chain whose accumulator mixes (tick, payload, order), with every
 * third hop mailing a payload to the next domain one-or-more quanta
 * ahead. Any reordering — across threads, rounds, or merge batches —
 * changes the accumulators, so equality below is bit-level determinism.
 */
struct RingModel
{
    static constexpr unsigned kDomains = 4;
    static constexpr Tick kQuantum = 3;

    std::array<std::unique_ptr<EventQueue>, kDomains> queues;
    std::unique_ptr<ShardedExecutor> exec;
    std::array<std::uint64_t, kDomains> acc{};
    std::array<std::uint64_t, kDomains> received{};

    explicit RingModel(unsigned threads)
    {
        std::vector<EventQueue *> domains;
        for (auto &q : queues) {
            q = std::make_unique<EventQueue>();
            domains.push_back(q.get());
        }
        exec = std::make_unique<ShardedExecutor>(domains, kQuantum,
                                                 threads);
    }

    void
    mix(unsigned d, std::uint64_t v)
    {
        acc[d] = acc[d] * 6364136223846793005ULL + v + queues[d]->now();
    }

    void
    local(unsigned d, unsigned remaining)
    {
        mix(d, (std::uint64_t{d} << 32) + remaining);
        if (remaining == 0)
            return;
        if (remaining % 3 == 0) {
            const unsigned dst = (d + 1) % kDomains;
            const std::uint64_t payload = acc[d];
            // Conservative: at least one quantum ahead of "now".
            const Tick when =
                queues[d]->now() + kQuantum + (payload % (2 * kQuantum));
            exec->send(d, dst, when, EventPriority::Default,
                       [this, dst, payload] { recv(dst, payload, 2); });
        }
        queues[d]->schedule(1 + (acc[d] % 3),
                            [this, d, remaining] {
                                local(d, remaining - 1);
                            });
    }

    void
    recv(unsigned d, std::uint64_t payload, unsigned ttl)
    {
        ++received[d];
        mix(d, payload);
        if (ttl > 0 && payload % 2 == 0) {
            const unsigned dst = (d + 1) % kDomains;
            const std::uint64_t fwd = acc[d];
            exec->send(d, dst, queues[d]->now() + kQuantum,
                       EventPriority::High,
                       [this, dst, fwd, ttl] { recv(dst, fwd, ttl - 1); });
        }
    }

    void
    run(unsigned chainLength)
    {
        for (unsigned d = 0; d < kDomains; ++d) {
            queues[d]->scheduleAbs(d, [this, d, chainLength] {
                local(d, chainLength);
            });
        }
        exec->run();
    }
};

} // namespace

TEST(ShardedExecutor, RingIsBitIdenticalAtEveryThreadCount)
{
    RingModel ref(1);
    ref.run(60);
    // The ring must actually communicate for this test to mean
    // anything.
    std::uint64_t totalReceived = 0;
    for (const std::uint64_t r : ref.received)
        totalReceived += r;
    ASSERT_GT(totalReceived, 20u);
    ASSERT_GT(ref.exec->crossShardEvents(), 20u);

    for (const unsigned threads : {2u, 4u}) {
        // Several repetitions per thread count: scheduling jitter
        // across runs must never reach the results.
        for (int rep = 0; rep < 3; ++rep) {
            RingModel m(threads);
            m.run(60);
            EXPECT_EQ(m.acc, ref.acc)
                << "threads=" << threads << " rep=" << rep;
            EXPECT_EQ(m.received, ref.received);
            EXPECT_EQ(m.exec->crossShardEvents(),
                      ref.exec->crossShardEvents());
            for (unsigned d = 0; d < RingModel::kDomains; ++d) {
                EXPECT_EQ(m.queues[d]->now(), ref.queues[d]->now());
                EXPECT_EQ(m.queues[d]->eventsFired(),
                          ref.queues[d]->eventsFired());
            }
        }
    }
}

TEST(ShardedExecutor, SoloDomainMatchesMonolithicRun)
{
    // One busy domain among four idle ones: the executor's free-running
    // solo path must reproduce a plain EventQueue::run() exactly.
    auto chain = [](EventQueue &q, std::uint64_t &acc, auto &&self,
                    unsigned remaining) -> void {
        acc = acc * 6364136223846793005ULL + q.now() + remaining;
        if (remaining == 0)
            return;
        q.schedule(1 + (acc % 4), [&q, &acc, &self, remaining] {
            self(q, acc, self, remaining - 1);
        });
    };

    EventQueue mono;
    std::uint64_t monoAcc = 0;
    mono.scheduleAbs(0, [&] { chain(mono, monoAcc, chain, 200); });
    mono.run();

    std::array<std::unique_ptr<EventQueue>, 4> queues;
    std::vector<EventQueue *> domains;
    for (auto &q : queues) {
        q = std::make_unique<EventQueue>();
        domains.push_back(q.get());
    }
    std::uint64_t shardAcc = 0;
    queues[0]->scheduleAbs(
        0, [&] { chain(*queues[0], shardAcc, chain, 200); });
    ShardedExecutor exec(domains, 3, 4);
    exec.run();

    EXPECT_EQ(shardAcc, monoAcc);
    EXPECT_EQ(queues[0]->now(), mono.now());
    EXPECT_EQ(queues[0]->eventsFired(), mono.eventsFired());
    EXPECT_EQ(exec.crossShardEvents(), 0u);
}

TEST(ShardedExecutor, EmptyDomainsTerminate)
{
    std::array<std::unique_ptr<EventQueue>, 3> queues;
    std::vector<EventQueue *> domains;
    for (auto &q : queues) {
        q = std::make_unique<EventQueue>();
        domains.push_back(q.get());
    }
    ShardedExecutor exec(domains, 5);
    exec.run(); // must not hang
    EXPECT_EQ(exec.crossShardEvents(), 0u);
}

// ------------------------------------------------------------- runLanes

TEST(RunLanes, JobToLaneMapIsAFunctionOfIndexOnly)
{
    // Each job writes into its own slot; with any lane count the merged
    // (index-ordered) output is the same.
    auto runWith = [](unsigned lanes) {
        std::vector<std::uint64_t> out(17, 0);
        std::vector<std::function<void()>> jobs;
        for (std::size_t i = 0; i < out.size(); ++i) {
            jobs.push_back([&out, i] {
                std::uint64_t v = i + 1;
                for (int k = 0; k < 1000; ++k)
                    v = v * 2862933555777941757ULL + k;
                out[i] = v;
            });
        }
        runLanes(lanes, jobs);
        return out;
    };
    const auto ref = runWith(1);
    EXPECT_EQ(runWith(2), ref);
    EXPECT_EQ(runWith(4), ref);
    EXPECT_EQ(runWith(32), ref); // clamped to job count
}

// ------------------------------------- full System under --shards (16t)

namespace
{

/** Every counter from a 16-tile decompress run at a given shard count,
 *  minus the two namespaces that are exempt from cross-topology
 *  identity by contract: host.* (wall-clock gauges) and shard.* (the
 *  execution profile describes the topology itself — it is still
 *  deterministic across host thread counts at a fixed shard count,
 *  which test_mon.cc gates). */
std::map<std::string, double>
decompressCounters(unsigned shards)
{
    SystemConfig cfg = SystemConfig::forCores(16);
    cfg.mem.l1Size = 2 * 1024;
    cfg.mem.l2Size = 8 * 1024;
    cfg.mem.l3BankSize = 32 * 1024;
    cfg.shards = shards;
    DecompressConfig dc;
    dc.numValues = 2 * 1024;
    dc.numIndices = 4 * 1024;
    const RunMetrics m = runDecompress(DecompressVariant::Tako, dc, cfg);
    std::map<std::string, double> counters;
    for (const auto &[name, c] : m.stats->counters())
        if (name.rfind("host.", 0) != 0 && name.rfind("shard.", 0) != 0)
            counters.emplace(name, c.value());
    counters.emplace("__cycles", static_cast<double>(m.cycles));
    counters.emplace("__energy", m.energy);
    counters.emplace("__checksum", m.extra.at("checksum"));
    return counters;
}

} // namespace

TEST(ShardedSystem, SixteenTileRunIsBitIdenticalAcrossShardCounts)
{
    const auto ref = decompressCounters(1);
    ASSERT_FALSE(ref.empty());
    for (const unsigned shards : {2u, 4u}) {
        const auto got = decompressCounters(shards);
        ASSERT_EQ(got.size(), ref.size()) << "shards=" << shards;
        for (const auto &[name, value] : ref) {
            const auto it = got.find(name);
            ASSERT_NE(it, got.end()) << name;
            // Bit-identical, not approximately equal.
            EXPECT_EQ(it->second, value)
                << name << " differs at shards=" << shards;
        }
    }
}

TEST(ShardedSystem, ClampsShardRequestBeyondColumns)
{
    // An 8-core system is a 4x2 mesh: a request for 32 shards clamps to
    // the 4 columns, is reflected back into config().shards, and the
    // clamped system still runs to completion on the sharded executor.
    SystemConfig cfg = SystemConfig::forCores(8);
    cfg.shards = 32;
    System sys(cfg);
    EXPECT_EQ(sys.shardPlan().shards, 4u);
    EXPECT_EQ(sys.config().shards, 4u);
    sys.addThread(0, [](Guest &g) -> Task<> {
        for (int i = 0; i < 8; ++i)
            co_await g.load(0x1000 + i * lineBytes);
    });
    sys.addThread(7, [](Guest &g) -> Task<> {
        for (int i = 0; i < 8; ++i)
            co_await g.load(0x9000 + i * lineBytes);
    });
    const Tick cycles = sys.run();
    EXPECT_GT(cycles, 0u);
    EXPECT_EQ(sys.stats().get("shard.domains"), 4.0);
}

TEST(ShardedSystem, OneColumnMeshRunsMonolithic)
{
    // A 1-column mesh has no vertical cut to shard along: any shard
    // request degenerates to a monolithic run (and the plan says so).
    const ShardPlan p = ShardPlan::build(1, 4, 2, 1, 4);
    EXPECT_EQ(p.shards, 1u);
    EXPECT_EQ(p.boundaryLinks, 0u);

    SystemConfig cfg = SystemConfig::forCores(4);
    cfg.mesh.dimX = 1;
    cfg.mesh.dimY = 4;
    cfg.shards = 4;
    System sys(cfg);
    EXPECT_EQ(sys.shardPlan().shards, 1u);
    EXPECT_EQ(sys.config().shards, 1u);
    sys.addThread(0, [](Guest &g) -> Task<> {
        for (int i = 0; i < 16; ++i)
            co_await g.load(0x4000 + i * lineBytes);
    });
    const Tick cycles = sys.run();
    EXPECT_GT(cycles, 0u);
    EXPECT_EQ(sys.stats().get("shard.domains"), 1.0);
}

// --------------------------- cross-shard morph-callback ordering (16t)

namespace
{

/**
 * Morph logging the per-home-tile order of onMiss callbacks. A SHARED
 * binding homes each line's callback at its L3 slice, so loads from
 * cores in other mesh columns trigger callbacks across the shard cut.
 * Each tile's log is appended only by that tile's engine — i.e. only by
 * the domain that owns the tile — so the logs are race-free at every
 * partition and directly comparable across shard counts.
 */
class HomeOrderMorph : public Morph
{
  public:
    explicit HomeOrderMorph(unsigned tiles)
        : Morph(MorphTraits{
              .name = "home-order",
              .hasMiss = true,
              .missKernel = {4, 2},
          }),
          logs(tiles)
    {
    }

    Task<>
    onMiss(EngineCtx &ctx) override
    {
        logs[ctx.tile()].push_back(ctx.addr());
        co_await ctx.compute(4, 2);
        for (unsigned i = 0; i < wordsPerLine; ++i)
            ctx.setLineWord(i, ctx.addr() + i);
    }

    std::vector<std::vector<Addr>> logs;
};

/** Per-home-tile callback logs of a 16-core all-to-all shared-morph
 *  run at the given shard count. */
std::vector<std::vector<Addr>>
homeOrderLogs(unsigned shards)
{
    SystemConfig cfg = SystemConfig::forCores(16);
    cfg.mem.l1Size = 2 * 1024;
    cfg.mem.l2Size = 8 * 1024;
    cfg.shards = shards;
    System sys(cfg);
    HomeOrderMorph morph(sys.numCores());

    const MorphBinding *binding = nullptr;
    sys.addThread(0, [&](Guest &g) -> Task<> {
        binding = co_await g.registerPhantom(morph, MorphLevel::Shared,
                                             2 * 1024 * 1024);
        for (int i = 0; i < 24; ++i)
            co_await g.load(binding->base + i * 16 * lineBytes);
    });
    for (unsigned c = 1; c < sys.numCores(); ++c) {
        sys.addThread(static_cast<int>(c), [&, c](Guest &g) -> Task<> {
            // Deterministic, domain-local delay past core 0's
            // registration (rTLB broadcast round trip finishes around
            // tick 1100). A cross-core semaphore would wake waiters on
            // the releaser's domain — not partition-safe — whereas
            // exec() retires on this core's own queue at any shard
            // count, and the quantum barrier's release/acquire pair
            // orders the `binding` write before these reads.
            co_await g.exec(6000);
            // Stride the whole range so core c's misses home on L3
            // slices in every mesh column, not just its own.
            for (int i = 0; i < 24; ++i)
                co_await g.load(binding->base +
                                (c + i * 16) * lineBytes);
        });
    }
    sys.run();

    if (shards > 1) {
        // The run must exercise the cross-shard path for the ordering
        // comparison to mean anything: every domain executed events.
        for (unsigned d = 0; d < shards; ++d)
            EXPECT_GT(sys.stats().get("shard.d" + std::to_string(d) +
                                      ".events"),
                      0.0)
                << "domain " << d << " idle at shards=" << shards;
        EXPECT_GT(sys.stats().get("shard.cross_msgs"), 0.0);
    }
    return morph.logs;
}

} // namespace

TEST(ShardedSystem, CrossShardCallbackOrderIsPartitionInvariant)
{
    const auto ref = homeOrderLogs(1);
    std::size_t total = 0;
    for (const auto &log : ref)
        total += log.size();
    // The shared range interleaves across all 16 home slices.
    ASSERT_GT(total, 100u);
    for (const auto &log : ref)
        EXPECT_FALSE(log.empty());

    for (const unsigned shards : {2u, 4u}) {
        const auto got = homeOrderLogs(shards);
        ASSERT_EQ(got.size(), ref.size());
        for (std::size_t t = 0; t < ref.size(); ++t)
            EXPECT_EQ(got[t], ref[t])
                << "home tile " << t << " callback order differs at "
                << "shards=" << shards;
    }
}
