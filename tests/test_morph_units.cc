/**
 * @file
 * Unit tests for the case-study Morphs in isolation: decompression
 * correctness, PHI's in-place-vs-bin policy, HATS's exactly-once edge
 * emission, and the NVM morph's INVALID-word discipline.
 */

#include <gtest/gtest.h>

#include <map>

#include "morphs/decompress_morph.hh"
#include "morphs/hats_morph.hh"
#include "morphs/nvm_morph.hh"
#include "morphs/phi_morph.hh"
#include "system/system.hh"
#include "workloads/common.hh"
#include "workloads/graph.hh"

using namespace tako;

namespace
{

SystemConfig
smallConfig()
{
    SystemConfig cfg = SystemConfig::forCores(4);
    cfg.mem.l1Size = 1024;
    cfg.mem.l2Size = 4 * 1024;
    cfg.mem.l3BankSize = 16 * 1024;
    return cfg;
}

} // namespace

TEST(DecompressMorphUnit, ReconstructsBasePlusDelta)
{
    System sys(smallConfig());
    Arena arena;
    BackingStore &st = sys.mem().realStore();
    const Addr bases = arena.alloc(64 * 8);
    const Addr deltas = arena.alloc(64 * 8);
    // Group g: base 1000*g; deltas byte i = g + i.
    for (unsigned grp = 0; grp < 8; ++grp) {
        st.write64(bases + grp * 8, 1000 * grp);
        std::uint64_t packed = 0;
        for (unsigned i = 0; i < 8; ++i)
            packed |= std::uint64_t((grp + i) & 0xff) << (8 * i);
        st.write64(deltas + grp * 8, packed);
    }
    DecompressMorph morph(bases, deltas, 64);
    bool ok = true;
    sys.addThread(0, [&](Guest &g) -> Task<> {
        const MorphBinding *b = co_await g.registerPhantom(
            morph, MorphLevel::Private, 64 * 8);
        morph.bind(b);
        for (unsigned i = 0; i < 64; ++i) {
            const auto v = co_await g.load(b->base + i * 8);
            ok &= v == 1000 * (i / 8) + (i / 8 + i % 8);
        }
    });
    sys.run();
    EXPECT_TRUE(ok);
    EXPECT_EQ(morph.decompressions(), 64u);
}

TEST(PhiMorphUnit, DenseLinesApplyInPlaceSparseLinesBin)
{
    System sys(smallConfig());
    Arena arena;
    const Addr next = arena.allocWords(sys.mem().realStore(), 1024);
    const Addr bins = arena.alloc(1 << 20);
    PhiMorph morph(next, 1024, bins, 256, sys.numCores(), 1 << 16,
                   /*threshold=*/4);

    sys.addThread(0, [&](Guest &g) -> Task<> {
        const MorphBinding *b = co_await g.registerPhantom(
            morph, MorphLevel::Shared, 1024 * 8);
        morph.bind(b);
        // Dense line: 6 updates to line 0 (>= threshold).
        for (unsigned w = 0; w < 6; ++w)
            co_await g.rmoAdd(b->base + w * 8, 10 + w);
        // Sparse: 1 update to line 40.
        co_await g.rmoAdd(b->base + 40 * wordsPerLine * 8, 5);
        co_await g.rmoDrain();
        co_await g.flushData(b);
        // Drain staged leftovers like the workload does.
        auto staged = morph.takeStaged();
        std::vector<std::pair<Addr, std::uint64_t>> adds;
        for (const auto &[v, d] : staged)
            adds.emplace_back(next + v * 8, d);
        co_await g.atomicAddMulti(adds);
    });
    sys.run();

    EXPECT_EQ(morph.inPlaceLines(), 1u);
    EXPECT_EQ(morph.binnedUpdates(), 1u);
    // Dense applied in place by the engine.
    for (unsigned w = 0; w < 6; ++w)
        EXPECT_EQ(sys.mem().realStore().read64(next + w * 8), 10u + w);
    // Sparse recovered via the staged drain.
    EXPECT_EQ(sys.mem().realStore().read64(
                  next + 40 * wordsPerLine * 8),
              5u);
}

TEST(HatsMorphUnit, EmitsEveryEdgeExactlyOnce)
{
    System sys(smallConfig());
    GraphParams gp;
    gp.numVertices = 512;
    gp.avgDegree = 6;
    gp.communitySize = 64;
    Graph graph = makeCommunityGraph(gp);
    Arena arena;
    graph.materialize(sys.mem().realStore(), arena);
    const Addr visited =
        arena.allocWords(sys.mem().realStore(), divCeil(512, 64));
    const Addr log = arena.alloc(graph.numEdges * 8);

    HatsMorph morph(graph, visited, log, graph.numEdges);
    std::map<std::pair<std::uint64_t, std::uint64_t>, int> seen;

    sys.addThread(0, [&](Guest &g) -> Task<> {
        const std::uint64_t words =
            divCeil(graph.numEdges + wordsPerLine, wordsPerLine) *
            wordsPerLine;
        const MorphBinding *b = co_await g.registerPhantom(
            morph, MorphLevel::Private, words * 8);
        morph.bind(b);
        bool done = false;
        std::uint64_t ptr = 0;
        while (!done) {
            std::vector<Addr> saddr;
            for (unsigned k = 0; k < wordsPerLine; ++k)
                saddr.push_back(b->base + (ptr + k) * 8);
            std::vector<std::uint64_t> wordsv;
            co_await g.atomicSwapMulti(saddr, HatsMorph::invalidEdge,
                                       &wordsv);
            for (std::uint64_t w : wordsv) {
                if (w == HatsMorph::doneEdge) {
                    done = true;
                    break;
                }
                if (w == HatsMorph::invalidEdge)
                    continue;
                ++seen[{w >> 32, w & 0xffffffffu}];
            }
            ptr += wordsPerLine;
        }
        co_await g.flushData(b);
        // Logged edges (evicted unconsumed) count too.
        for (std::uint64_t i = 0; i < morph.edgesLogged(); ++i) {
            const auto w =
                sys.mem().realStore().read64(morph.logAddr() + i * 8);
            ++seen[{w >> 32, w & 0xffffffffu}];
        }
        co_await g.unregister(b);
    });
    sys.run();

    // Exactly-once delivery of the whole edge multiset (the generator
    // draws destinations with replacement, so parallel edges exist and
    // each copy must be delivered once).
    std::map<std::pair<std::uint64_t, std::uint64_t>, int> expected;
    for (std::uint64_t u = 0; u < graph.numVertices; ++u) {
        for (std::uint64_t e = graph.rowPtr[u]; e < graph.rowPtr[u + 1];
             ++e) {
            ++expected[{u, graph.colIdx[e]}];
        }
    }
    EXPECT_EQ(seen, expected);
    EXPECT_EQ(morph.edgesEmitted(), graph.numEdges);
}

TEST(NvmMorphUnit, InvalidWordsNeverReachHomeOrClobber)
{
    SystemConfig cfg = smallConfig();
    cfg.mem.l2Size = 2 * 1024; // force mid-transaction evictions
    System sys(cfg);
    Arena arena;
    const Addr home = arena.alloc(1 << 16);
    const Addr journal = arena.alloc(1 << 16);
    NvmTxMorph morph(home, journal, 256);

    sys.addThread(0, [&](Guest &g) -> Task<> {
        const MorphBinding *b = co_await g.registerPhantom(
            morph, MorphLevel::Private, 8 * 1024);
        morph.bind(b);
        morph.setCommitted(false);
        morph.setHomeBase(home);
        // Write only EVEN words of many lines: odd words stay INVALID.
        for (unsigned l = 0; l < 64; ++l) {
            for (unsigned w = 0; w < wordsPerLine; w += 2) {
                co_await g.store(b->base + l * lineBytes + w * 8,
                                 l * 16 + w);
            }
        }
        morph.setCommitted(true);
        co_await g.flushData(b);
        // Replay journal skipping sentinels (as the workload does).
        for (std::uint64_t j = 0; j < morph.journalEntries(); ++j) {
            const Addr entry = journal + j * (lineBytes + 8);
            const Addr off = sys.mem().realStore().read64(entry);
            std::vector<std::pair<Addr, std::uint64_t>> hw;
            for (unsigned k = 0; k < wordsPerLine; ++k) {
                const auto w =
                    sys.mem().realStore().read64(entry + 8 + k * 8);
                if (w != NvmTxMorph::invalidWord)
                    hw.emplace_back(home + off + k * 8, w);
            }
            co_await g.streamStoreMulti(hw);
        }
        co_await g.unregister(b);
    });
    sys.run();

    for (unsigned l = 0; l < 64; ++l) {
        for (unsigned w = 0; w < wordsPerLine; ++w) {
            const auto v = sys.mem().realStore().read64(
                home + l * lineBytes + w * 8);
            if (w % 2 == 0) {
                ASSERT_EQ(v, l * 16 + w) << l << ":" << w;
            } else {
                // Never written: stays zero, no sentinel leakage.
                ASSERT_EQ(v, 0u) << l << ":" << w;
            }
        }
    }
}

TEST(GraphGen, IntraProbShapesCommunities)
{
    GraphParams p;
    p.numVertices = 8192;
    p.communitySize = 128;
    p.avgDegree = 10;
    p.intraProb = 0.95;
    p.idScatter = 0.0; // communities exactly id-contiguous
    Graph g = makeCommunityGraph(p);
    std::uint64_t intra = 0;
    for (std::uint64_t u = 0; u < p.numVertices; ++u) {
        for (std::uint64_t e = g.rowPtr[u]; e < g.rowPtr[u + 1]; ++e) {
            if (g.colIdx[e] / p.communitySize == u / p.communitySize)
                ++intra;
        }
    }
    const double frac = double(intra) / g.numEdges;
    EXPECT_GT(frac, 0.90);
    EXPECT_LT(frac, 1.0);
}
