/**
 * @file
 * takolint unit tests: lexer behavior, suppression parsing, the rule
 * engine against inline snippets, and the golden fixtures under
 * tests/lint_fixtures/. Fixture files annotate every seeded violation
 * with `// takolint-expect: RULE` on the same line; the tests assert
 * the (rule, line) sets match exactly, so a takolint that goes blind
 * (or noisy) fails here before it fails in CI.
 */

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "lint.hh"

using takolint::Config;
using takolint::Report;
using takolint::Tok;

namespace
{

/** Lint one in-memory snippet as if it were model code. */
Report
lintSnippet(const std::string &src, Config cfg = {})
{
    cfg.assumeModelCode = true;
    std::vector<takolint::SourceFile> files{takolint::lex("snippet.cc",
                                                          src)};
    return takolint::lint(files, cfg);
}

std::set<std::string>
activeRules(const Report &r)
{
    std::set<std::string> out;
    for (const auto &f : r.findings)
        if (!f.suppressed)
            out.insert(f.rule);
    return out;
}

/** (rule, line) pairs promised by `takolint-expect:` fixture markers. */
std::set<std::pair<std::string, int>>
expectedMarks(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.is_open()) << path;
    std::set<std::pair<std::string, int>> out;
    std::string lineText;
    int line = 0;
    const std::string tag = "takolint-expect:";
    while (std::getline(in, lineText)) {
        ++line;
        auto pos = lineText.find(tag);
        if (pos == std::string::npos)
            continue;
        std::istringstream ss(lineText.substr(pos + tag.size()));
        std::string rule;
        while (ss >> rule)
            out.emplace(rule, line);
    }
    return out;
}

} // namespace

TEST(Lexer, StripsCommentsAndPreprocFromSignificantStream)
{
    auto sf = takolint::lex("x.cc",
                            "#include <unordered_map>\n"
                            "// unordered_map in a comment\n"
                            "int x; /* unordered_map */\n");
    for (int idx : sf.sig) {
        const auto &t = sf.tokens[idx];
        EXPECT_NE(t.text, "unordered_map");
        EXPECT_TRUE(t.kind != Tok::Comment && t.kind != Tok::Preproc);
    }
}

TEST(Lexer, KeepsMultiCharOperatorsWhole)
{
    auto sf = takolint::lex("x.cc", "a->b; c::d; e >>= 2;");
    std::set<std::string> ops;
    for (const auto &t : sf.tokens)
        if (t.kind == Tok::Punct)
            ops.insert(t.text);
    EXPECT_TRUE(ops.count("->"));
    EXPECT_TRUE(ops.count("::"));
    EXPECT_TRUE(ops.count(">>="));
}

TEST(Lexer, StringsAndRawStringsAreOpaque)
{
    auto sf = takolint::lex(
        "x.cc", "const char *s = \"rand() getenv\";\n"
                "const char *r = R\"(std::unordered_map)\";\n");
    for (int idx : sf.sig) {
        const auto &t = sf.tokens[idx];
        if (t.kind == Tok::Ident) {
            EXPECT_NE(t.text, "rand");
            EXPECT_NE(t.text, "getenv");
        }
    }
}

TEST(Lexer, DigitSeparatorsStayOneNumberToken)
{
    auto sf = takolint::lex("x.cc", "long n = 1'000'000;");
    int numbers = 0;
    for (const auto &t : sf.tokens) {
        if (t.kind == Tok::Number) {
            ++numbers;
            EXPECT_EQ(t.text, "1'000'000");
        }
    }
    EXPECT_EQ(numbers, 1);
}

TEST(Lexer, PrefixedRawStringsAreOpaque)
{
    auto sf = takolint::lex("x.cc",
                            "auto a = u8R\"(rand() getenv)\";\n"
                            "auto b = LR\"x(unordered_map)x\";\n"
                            "auto c = uR\"(static int bad;)\";\n");
    for (int idx : sf.sig) {
        const auto &t = sf.tokens[idx];
        if (t.kind == Tok::Ident) {
            EXPECT_NE(t.text, "rand");
            EXPECT_NE(t.text, "unordered_map");
            EXPECT_NE(t.text, "static");
            // The prefix must not split off as its own identifier.
            EXPECT_NE(t.text, "u8R");
            EXPECT_NE(t.text, "LR");
            EXPECT_NE(t.text, "uR");
        }
    }
}

TEST(Lexer, SpaceshipStaysWholeAndCoAwaitStaysAnIdent)
{
    auto sf = takolint::lex("x.cc", "bool b = (x<=>y) < 0; co_await*p;");
    bool sawSpaceship = false, sawCoAwait = false;
    for (std::size_t i = 0; i < sf.tokens.size(); ++i) {
        const auto &t = sf.tokens[i];
        if (t.kind == Tok::Punct && t.text == "<=>")
            sawSpaceship = true;
        if (t.kind == Tok::Ident && t.text == "co_await")
            sawCoAwait = true;
        // `<=>` must never decay into `<=` `>` (which would unbalance
        // template-argument matching).
        if (t.text == "<=") {
            EXPECT_NE(sf.tokens[i + 1].text, ">");
        }
    }
    EXPECT_TRUE(sawSpaceship);
    EXPECT_TRUE(sawCoAwait);
}

TEST(Lexer, ParsesSuppressionsWithReasons)
{
    auto sf = takolint::lex("x.cc",
                            "// takolint: ok(D1, sorted before use)\n"
                            "int x;\n"
                            "/* takolint: ok(L2) */\n");
    ASSERT_EQ(sf.suppressions.size(), 2u);
    EXPECT_EQ(sf.suppressions[0].rule, "D1");
    EXPECT_EQ(sf.suppressions[0].reason, "sorted before use");
    EXPECT_EQ(sf.suppressions[0].line, 1);
    EXPECT_EQ(sf.suppressions[1].rule, "L2");
    EXPECT_EQ(sf.suppressions[1].reason, "");
}

TEST(Rules, D2FlagsHostEntropy)
{
    auto r = lintSnippet("int f() { return rand(); }\n");
    EXPECT_EQ(activeRules(r), std::set<std::string>{"D2"});
}

TEST(Rules, D2IgnoresMemberFunctionsNamedLikeHostCalls)
{
    // `eq.time()` is a method call, not ::time(); only the bare call is
    // host entropy.
    auto r = lintSnippet("int f(Clock &eq) { return eq.time(); }\n");
    EXPECT_TRUE(activeRules(r).empty());
}

TEST(Rules, L1FlagsRefCaptureOnlyForDeferredCalls)
{
    auto flagged = lintSnippet(
        "void f(EventQueue &eq) { int n = 0;\n"
        "  eq.schedule(1, [&n]() { ++n; }); }\n");
    EXPECT_EQ(activeRules(flagged), std::set<std::string>{"L1"});

    // Immediate algorithms may capture by reference freely.
    auto clean = lintSnippet(
        "void f(std::vector<int> &v) { int n = 0;\n"
        "  std::for_each(v.begin(), v.end(), [&n](int) { ++n; }); }\n");
    EXPECT_FALSE(activeRules(clean).count("L1"));
}

TEST(Rules, SuppressionOnSameLineAndLineAboveBothApply)
{
    auto sameLine = lintSnippet(
        "int f() { return rand(); } // takolint: ok(D2, test)\n");
    ASSERT_EQ(sameLine.findings.size(), 1u);
    EXPECT_TRUE(sameLine.findings[0].suppressed);
    EXPECT_EQ(sameLine.findings[0].suppressReason, "test");
    EXPECT_EQ(sameLine.activeCount(), 0);

    auto lineAbove = lintSnippet("// takolint: ok(D2, test)\n"
                                 "int f() { return rand(); }\n");
    ASSERT_EQ(lineAbove.findings.size(), 1u);
    EXPECT_TRUE(lineAbove.findings[0].suppressed);
}

TEST(Rules, NoSuppressModeIgnoresSuppressions)
{
    Config cfg;
    cfg.honorSuppressions = false;
    auto r = lintSnippet(
        "int f() { return rand(); } // takolint: ok(D2, test)\n", cfg);
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_FALSE(r.findings[0].suppressed);
    EXPECT_EQ(r.activeCount(), 1);
}

TEST(Rules, UnusedSuppressionsAreReported)
{
    auto r = lintSnippet("// takolint: ok(D1, nothing here needs it)\n"
                         "int x;\n");
    ASSERT_EQ(r.unusedSuppressions.size(), 1u);
    EXPECT_EQ(r.unusedSuppressions[0].rule, "D1");
    EXPECT_EQ(r.unusedSuppressions[0].line, 1);
}

TEST(Rules, RuleFilterRestrictsChecking)
{
    Config cfg;
    cfg.rules.insert("L1");
    auto r = lintSnippet("int f() { return rand(); }\n", cfg);
    EXPECT_TRUE(r.findings.empty());
}

TEST(FlowRules, X2FlagsForeignQueueScheduleViaTrackedBinding)
{
    auto r = lintSnippet(
        "void f(Domains &dom, Tick when) {\n"
        "  EventQueue &fq = dom.queueOf(3);\n"
        "  fq.schedule(when, []() {});\n"
        "}\n");
    EXPECT_EQ(activeRules(r), std::set<std::string>{"X2"});
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings[0].line, 3);
    // The trace names the foreign-queue source.
    ASSERT_GE(r.findings[0].trace.size(), 2u);
    EXPECT_EQ(r.findings[0].trace[0].line, 2);
}

TEST(FlowRules, X2IgnoresHomeQueueAndRoutedPosts)
{
    auto r = lintSnippet(
        "void f(Domains &dom, EventQueue &eq, Tick when) {\n"
        "  homeQueue(eq).schedule(when, []() {});\n"
        "  dom.post(3, when, []() {});\n"
        "}\n");
    EXPECT_FALSE(activeRules(r).count("X2"));
}

TEST(FlowRules, H1TraceNamesTheSuspensionPoint)
{
    auto r = lintSnippet(
        "Task<> f(Domains &dom, Bank **banks, int tile, int bank) {\n"
        "  Bank &b = *banks[bank];\n"
        "  co_await dom.hopTo(bank);\n"
        "  b.touch();\n"
        "}\n");
    EXPECT_EQ(activeRules(r), std::set<std::string>{"H1"});
    ASSERT_EQ(r.findings.size(), 1u);
    const auto &f = r.findings[0];
    EXPECT_EQ(f.line, 4);
    ASSERT_EQ(f.trace.size(), 3u);
    EXPECT_EQ(f.trace[0].line, 2); // binding
    EXPECT_EQ(f.trace[1].line, 3); // suspension point
    EXPECT_NE(f.trace[1].note.find("hopTo"), std::string::npos);
    EXPECT_EQ(f.trace[2].line, 4); // stale use
}

TEST(FlowRules, H1KillsTaintOnRebindAndLoopRebind)
{
    auto clean = lintSnippet(
        "Task<> f(Domains &dom, Bank **banks, int bank) {\n"
        "  co_await dom.hopTo(bank);\n"
        "  Bank &b = *banks[bank];\n"
        "  b.touch();\n"
        "}\n");
    EXPECT_TRUE(activeRules(clean).empty());

    // A reference re-bound at the top of each loop iteration is clean
    // even though the body ends in a hop: the back-edge must see the
    // kill.
    auto loop = lintSnippet(
        "Task<> f(Domains &dom, Bank **banks, int n) {\n"
        "  for (int i = 0; i < n; ++i) {\n"
        "    Bank &b = *banks[i];\n"
        "    b.touch();\n"
        "    co_await dom.hopTo(i);\n"
        "  }\n"
        "}\n");
    EXPECT_TRUE(activeRules(loop).empty());
}

TEST(FlowRules, C1FlagsAnnotatedObjectCapturedIntoCrossDomainPost)
{
    auto r = lintSnippet(
        "// takolint: domain-local\n"
        "struct Sem { void release(); };\n"
        "void f(Domains &dom, Sem &sem, int bank) {\n"
        "  dom.post(bank, 8, [&sem]() { sem.release(); });\n"
        "}\n");
    EXPECT_EQ(activeRules(r), std::set<std::string>{"C1"});
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings[0].line, 4);
    EXPECT_FALSE(r.findings[0].trace.empty());
}

TEST(FlowRules, L3FlagsStackAddressEscapingIntoDeferredCallable)
{
    auto r = lintSnippet("void f(Domains &dom, int tile) {\n"
                         "  int n = 0;\n"
                         "  dom.post(tile, 8, [p = &n]() { *p = 1; });\n"
                         "}\n");
    EXPECT_EQ(activeRules(r), std::set<std::string>{"L3"});
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings[0].line, 3);
}

TEST(FlowRules, L3IgnoresValueCapturesAndMemberPointers)
{
    auto r = lintSnippet(
        "struct A { long t_;\n"
        "  void f(Domains &dom, int tile) {\n"
        "    int n = 0;\n"
        "    dom.post(tile, 8, [n]() { use(n); });\n"
        "    dom.post(tile, 8, [p = &t_]() { *p = 1; });\n"
        "  }\n"
        "};\n");
    EXPECT_TRUE(activeRules(r).empty());
}

TEST(FlowRules, SuppressionsApplyToFlowFindings)
{
    for (const char *src : {
             // X2 on line 3, suppressed on line 2.
             "void f(EventQueue **queues_, Tick w) {\n"
             "  // takolint: ok(X2, reviewed)\n"
             "  queues_[0]->scheduleKeyed(w, []() {}, 0, 1, 2);\n"
             "}\n",
             // H1 on line 4, suppressed same line.
             "Task<> f(Domains &dom, Bank **banks, int bank) {\n"
             "  Bank &b = *banks[bank];\n"
             "  co_await dom.hopTo(bank);\n"
             "  b.touch(); // takolint: ok(H1, reviewed)\n"
             "}\n",
             // C1 on line 4, suppressed on line 3.
             "// takolint: domain-local\n"
             "struct Sem2 { void release(); };\n"
             "void g(Domains &dom, Sem2 &gate, int bank) {\n"
             "  // takolint: ok(C1, reviewed)\n"
             "  dom.post(bank, 8, [&gate]() { gate.release(); });\n"
             "}\n",
             // L3 on line 3, suppressed same line.
             "void h(Domains &dom, int tile) {\n"
             "  int n = 0;\n"
             "  dom.post(tile, 8, [p = &n]() {}); // takolint: ok(L3, reviewed)\n"
             "}\n",
         }) {
        auto r = lintSnippet(src);
        EXPECT_EQ(r.activeCount(), 0) << src;
        EXPECT_FALSE(r.findings.empty()) << src;
        EXPECT_TRUE(r.unusedSuppressions.empty()) << src;
    }
}

TEST(FlowRules, UnusedSuppressionsReportedForEveryFlowRule)
{
    auto r = lintSnippet("// takolint: ok(X2, nothing here)\n"
                         "// takolint: ok(H1, nothing here)\n"
                         "// takolint: ok(C1, nothing here)\n"
                         "// takolint: ok(L3, nothing here)\n"
                         "int x;\n");
    ASSERT_EQ(r.unusedSuppressions.size(), 4u);
    std::set<std::string> rules;
    for (const auto &u : r.unusedSuppressions)
        rules.insert(u.rule);
    EXPECT_EQ(rules, (std::set<std::string>{"X2", "H1", "C1", "L3"}));
}

TEST(FlowRules, UnusedSuppressionsDedupedPerFileLineRule)
{
    // Two comments on one line carrying the same (rule) suppression:
    // still exactly one unused-suppression report.
    auto r = lintSnippet(
        "/* takolint: ok(D1, a) */ /* takolint: ok(D1, b) */\n"
        "int x;\n");
    ASSERT_EQ(r.unusedSuppressions.size(), 1u);
    EXPECT_EQ(r.unusedSuppressions[0].rule, "D1");
    EXPECT_EQ(r.unusedSuppressions[0].line, 1);
}

TEST(ModelPath, OnlyModelDirectoriesAreChecked)
{
    EXPECT_TRUE(takolint::isModelPath("src/mem/memory_system.cc"));
    EXPECT_TRUE(takolint::isModelPath("/repo/src/sim/event_queue.hh"));
    EXPECT_TRUE(takolint::isModelPath("src/tako/engine.cc"));
    EXPECT_FALSE(takolint::isModelPath("tools/takobench.cc"));
    EXPECT_FALSE(takolint::isModelPath("tests/test_sim.cc"));
}

TEST(ModelPath, PartitionScopeAddsWorkloadsAndSystem)
{
    // Flow rules run over everything that participates in the domain
    // decomposition: model dirs plus src/workloads and src/system.
    EXPECT_TRUE(takolint::isPartitionPath("src/sim/domains.hh"));
    EXPECT_TRUE(takolint::isPartitionPath("src/workloads/common.hh"));
    EXPECT_TRUE(takolint::isPartitionPath("/repo/src/system/system.cc"));
    EXPECT_FALSE(takolint::isPartitionPath("tools/takobench.cc"));
    EXPECT_FALSE(takolint::isPartitionPath("tests/test_sim.cc"));
}

/**
 * Golden fixtures: every `takolint-expect: RULE` marker in bad/ must
 * produce exactly one active finding at that (rule, line), and nothing
 * else may fire. ok/ must be completely clean.
 */
class Fixtures : public ::testing::Test
{
  protected:
    static std::string
    dir(const std::string &leaf)
    {
        return std::string(LINT_FIXTURES_DIR) + "/" + leaf;
    }
};

TEST_F(Fixtures, BadFilesProduceExactlyTheExpectedFindings)
{
    Config cfg;
    cfg.assumeModelCode = true;
    auto report = takolint::lintPaths({dir("bad")}, cfg);
    EXPECT_GT(report.filesScanned, 0);

    std::set<std::pair<std::string, int>> expected;
    for (const auto &path : takolint::collectSources({dir("bad")}))
        for (auto &[rule, line] : expectedMarks(path))
            expected.emplace(rule, line);
    ASSERT_FALSE(expected.empty());

    std::set<std::pair<std::string, int>> got;
    for (const auto &f : report.findings) {
        EXPECT_FALSE(f.suppressed)
            << f.file << ":" << f.line << " unexpectedly suppressed";
        got.emplace(f.rule, f.line);
    }

    for (const auto &e : expected)
        EXPECT_TRUE(got.count(e)) << "missing finding " << e.first
                                  << " at line " << e.second;
    for (const auto &g : got)
        EXPECT_TRUE(expected.count(g))
            << "unexpected finding " << g.first << " at line "
            << g.second;

    // Every rule must be exercised by the bad fixtures.
    EXPECT_EQ(activeRules(report),
              (std::set<std::string>{"D1", "D2", "L1", "L2", "S1",
                                     "X1", "X2", "H1", "C1", "L3"}));
}

TEST_F(Fixtures, SeededHopViolationCarriesAFlowTrace)
{
    // The acceptance case: a by-ref capture used after hopTo must be
    // caught with the right rule and line, and the finding's trace
    // must name the suspension point.
    Config cfg;
    cfg.assumeModelCode = true;
    auto report =
        takolint::lintPaths({dir("bad") + "/h1_use_after_hop.cc"}, cfg);
    int h1 = 0;
    for (const auto &f : report.findings) {
        if (f.rule != "H1")
            continue;
        ++h1;
        ASSERT_EQ(f.trace.size(), 3u) << takolint::format(f);
        EXPECT_NE(f.trace[1].note.find("hopTo"), std::string::npos)
            << "trace must name the suspension point";
        EXPECT_LT(f.trace[0].line, f.trace[1].line);
        EXPECT_LT(f.trace[1].line, f.trace[2].line);
        EXPECT_EQ(f.trace[2].line, f.line);
    }
    EXPECT_EQ(h1, 2); // the plain-reference and the by-ref-capture case
}

TEST_F(Fixtures, OkFilesAreCleanAndSuppressionsAllUsed)
{
    Config cfg;
    cfg.assumeModelCode = true;
    auto report = takolint::lintPaths({dir("ok")}, cfg);
    EXPECT_GT(report.filesScanned, 0);
    for (const auto &f : report.findings)
        EXPECT_TRUE(f.suppressed)
            << takolint::format(f) << " should be clean or suppressed";
    EXPECT_EQ(report.activeCount(), 0);
    for (const auto &u : report.unusedSuppressions)
        ADD_FAILURE() << u.file << ":" << u.line
                      << ": unused suppression for " << u.rule;
    // The ok fixtures must demonstrate real suppressions, not just
    // clean code.
    EXPECT_FALSE(report.findings.empty());
}
