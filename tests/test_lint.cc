/**
 * @file
 * takolint unit tests: lexer behavior, suppression parsing, the rule
 * engine against inline snippets, and the golden fixtures under
 * tests/lint_fixtures/. Fixture files annotate every seeded violation
 * with `// takolint-expect: RULE` on the same line; the tests assert
 * the (rule, line) sets match exactly, so a takolint that goes blind
 * (or noisy) fails here before it fails in CI.
 */

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "lint.hh"

using takolint::Config;
using takolint::Report;
using takolint::Tok;

namespace
{

/** Lint one in-memory snippet as if it were model code. */
Report
lintSnippet(const std::string &src, Config cfg = {})
{
    cfg.assumeModelCode = true;
    std::vector<takolint::SourceFile> files{takolint::lex("snippet.cc",
                                                          src)};
    return takolint::lint(files, cfg);
}

std::set<std::string>
activeRules(const Report &r)
{
    std::set<std::string> out;
    for (const auto &f : r.findings)
        if (!f.suppressed)
            out.insert(f.rule);
    return out;
}

/** (rule, line) pairs promised by `takolint-expect:` fixture markers. */
std::set<std::pair<std::string, int>>
expectedMarks(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.is_open()) << path;
    std::set<std::pair<std::string, int>> out;
    std::string lineText;
    int line = 0;
    const std::string tag = "takolint-expect:";
    while (std::getline(in, lineText)) {
        ++line;
        auto pos = lineText.find(tag);
        if (pos == std::string::npos)
            continue;
        std::istringstream ss(lineText.substr(pos + tag.size()));
        std::string rule;
        while (ss >> rule)
            out.emplace(rule, line);
    }
    return out;
}

} // namespace

TEST(Lexer, StripsCommentsAndPreprocFromSignificantStream)
{
    auto sf = takolint::lex("x.cc",
                            "#include <unordered_map>\n"
                            "// unordered_map in a comment\n"
                            "int x; /* unordered_map */\n");
    for (int idx : sf.sig) {
        const auto &t = sf.tokens[idx];
        EXPECT_NE(t.text, "unordered_map");
        EXPECT_TRUE(t.kind != Tok::Comment && t.kind != Tok::Preproc);
    }
}

TEST(Lexer, KeepsMultiCharOperatorsWhole)
{
    auto sf = takolint::lex("x.cc", "a->b; c::d; e >>= 2;");
    std::set<std::string> ops;
    for (const auto &t : sf.tokens)
        if (t.kind == Tok::Punct)
            ops.insert(t.text);
    EXPECT_TRUE(ops.count("->"));
    EXPECT_TRUE(ops.count("::"));
    EXPECT_TRUE(ops.count(">>="));
}

TEST(Lexer, StringsAndRawStringsAreOpaque)
{
    auto sf = takolint::lex(
        "x.cc", "const char *s = \"rand() getenv\";\n"
                "const char *r = R\"(std::unordered_map)\";\n");
    for (int idx : sf.sig) {
        const auto &t = sf.tokens[idx];
        if (t.kind == Tok::Ident) {
            EXPECT_NE(t.text, "rand");
            EXPECT_NE(t.text, "getenv");
        }
    }
}

TEST(Lexer, ParsesSuppressionsWithReasons)
{
    auto sf = takolint::lex("x.cc",
                            "// takolint: ok(D1, sorted before use)\n"
                            "int x;\n"
                            "/* takolint: ok(L2) */\n");
    ASSERT_EQ(sf.suppressions.size(), 2u);
    EXPECT_EQ(sf.suppressions[0].rule, "D1");
    EXPECT_EQ(sf.suppressions[0].reason, "sorted before use");
    EXPECT_EQ(sf.suppressions[0].line, 1);
    EXPECT_EQ(sf.suppressions[1].rule, "L2");
    EXPECT_EQ(sf.suppressions[1].reason, "");
}

TEST(Rules, D2FlagsHostEntropy)
{
    auto r = lintSnippet("int f() { return rand(); }\n");
    EXPECT_EQ(activeRules(r), std::set<std::string>{"D2"});
}

TEST(Rules, D2IgnoresMemberFunctionsNamedLikeHostCalls)
{
    // `eq.time()` is a method call, not ::time(); only the bare call is
    // host entropy.
    auto r = lintSnippet("int f(Clock &eq) { return eq.time(); }\n");
    EXPECT_TRUE(activeRules(r).empty());
}

TEST(Rules, L1FlagsRefCaptureOnlyForDeferredCalls)
{
    auto flagged = lintSnippet(
        "void f(EventQueue &eq) { int n = 0;\n"
        "  eq.schedule(1, [&n]() { ++n; }); }\n");
    EXPECT_EQ(activeRules(flagged), std::set<std::string>{"L1"});

    // Immediate algorithms may capture by reference freely.
    auto clean = lintSnippet(
        "void f(std::vector<int> &v) { int n = 0;\n"
        "  std::for_each(v.begin(), v.end(), [&n](int) { ++n; }); }\n");
    EXPECT_FALSE(activeRules(clean).count("L1"));
}

TEST(Rules, SuppressionOnSameLineAndLineAboveBothApply)
{
    auto sameLine = lintSnippet(
        "int f() { return rand(); } // takolint: ok(D2, test)\n");
    ASSERT_EQ(sameLine.findings.size(), 1u);
    EXPECT_TRUE(sameLine.findings[0].suppressed);
    EXPECT_EQ(sameLine.findings[0].suppressReason, "test");
    EXPECT_EQ(sameLine.activeCount(), 0);

    auto lineAbove = lintSnippet("// takolint: ok(D2, test)\n"
                                 "int f() { return rand(); }\n");
    ASSERT_EQ(lineAbove.findings.size(), 1u);
    EXPECT_TRUE(lineAbove.findings[0].suppressed);
}

TEST(Rules, NoSuppressModeIgnoresSuppressions)
{
    Config cfg;
    cfg.honorSuppressions = false;
    auto r = lintSnippet(
        "int f() { return rand(); } // takolint: ok(D2, test)\n", cfg);
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_FALSE(r.findings[0].suppressed);
    EXPECT_EQ(r.activeCount(), 1);
}

TEST(Rules, UnusedSuppressionsAreReported)
{
    auto r = lintSnippet("// takolint: ok(D1, nothing here needs it)\n"
                         "int x;\n");
    ASSERT_EQ(r.unusedSuppressions.size(), 1u);
    EXPECT_EQ(r.unusedSuppressions[0].rule, "D1");
    EXPECT_EQ(r.unusedSuppressions[0].line, 1);
}

TEST(Rules, RuleFilterRestrictsChecking)
{
    Config cfg;
    cfg.rules.insert("L1");
    auto r = lintSnippet("int f() { return rand(); }\n", cfg);
    EXPECT_TRUE(r.findings.empty());
}

TEST(ModelPath, OnlyModelDirectoriesAreChecked)
{
    EXPECT_TRUE(takolint::isModelPath("src/mem/memory_system.cc"));
    EXPECT_TRUE(takolint::isModelPath("/repo/src/sim/event_queue.hh"));
    EXPECT_TRUE(takolint::isModelPath("src/tako/engine.cc"));
    EXPECT_FALSE(takolint::isModelPath("tools/takobench.cc"));
    EXPECT_FALSE(takolint::isModelPath("tests/test_sim.cc"));
}

/**
 * Golden fixtures: every `takolint-expect: RULE` marker in bad/ must
 * produce exactly one active finding at that (rule, line), and nothing
 * else may fire. ok/ must be completely clean.
 */
class Fixtures : public ::testing::Test
{
  protected:
    static std::string
    dir(const std::string &leaf)
    {
        return std::string(LINT_FIXTURES_DIR) + "/" + leaf;
    }
};

TEST_F(Fixtures, BadFilesProduceExactlyTheExpectedFindings)
{
    Config cfg;
    cfg.assumeModelCode = true;
    auto report = takolint::lintPaths({dir("bad")}, cfg);
    EXPECT_GT(report.filesScanned, 0);

    std::set<std::pair<std::string, int>> expected;
    for (const auto &path : takolint::collectSources({dir("bad")}))
        for (auto &[rule, line] : expectedMarks(path))
            expected.emplace(rule, line);
    ASSERT_FALSE(expected.empty());

    std::set<std::pair<std::string, int>> got;
    for (const auto &f : report.findings) {
        EXPECT_FALSE(f.suppressed)
            << f.file << ":" << f.line << " unexpectedly suppressed";
        got.emplace(f.rule, f.line);
    }

    for (const auto &e : expected)
        EXPECT_TRUE(got.count(e)) << "missing finding " << e.first
                                  << " at line " << e.second;
    for (const auto &g : got)
        EXPECT_TRUE(expected.count(g))
            << "unexpected finding " << g.first << " at line "
            << g.second;

    // Every rule must be exercised by the bad fixtures.
    EXPECT_EQ(activeRules(report),
              (std::set<std::string>{"D1", "D2", "L1", "L2", "S1",
                                     "X1"}));
}

TEST_F(Fixtures, OkFilesAreCleanAndSuppressionsAllUsed)
{
    Config cfg;
    cfg.assumeModelCode = true;
    auto report = takolint::lintPaths({dir("ok")}, cfg);
    EXPECT_GT(report.filesScanned, 0);
    for (const auto &f : report.findings)
        EXPECT_TRUE(f.suppressed)
            << takolint::format(f) << " should be clean or suppressed";
    EXPECT_EQ(report.activeCount(), 0);
    for (const auto &u : report.unusedSuppressions)
        ADD_FAILURE() << u.file << ":" << u.line
                      << ": unused suppression for " << u.rule;
    // The ok fixtures must demonstrate real suppressions, not just
    // clean code.
    EXPECT_FALSE(report.findings.empty());
}
