/**
 * @file
 * Tests for takoprof: the ReuseStack oracle, miss classification on
 * synthetic access patterns with known compulsory/capacity/conflict
 * splits, the reuse-distance histogram, profiler output (takoprof-v1
 * JSON, folded stacks), occupancy/NoC invariants against independent
 * counters, and the load-bearing property that enabling profiling does
 * not change a single simulated stat.
 */

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>

#include "expt/json.hh"
#include "prof/miss_classifier.hh"
#include "prof/profiler.hh"
#include "system/system.hh"
#include "workloads/common.hh"

using namespace tako;
using tako::expt::Json;

namespace
{

Addr
lineAddr(std::uint64_t n)
{
    return n * lineBytes;
}

SystemConfig
smallConfig(bool profile)
{
    SystemConfig cfg = SystemConfig::forCores(4);
    cfg.mem.l1Size = 1024;
    cfg.mem.l2Size = 4 * 1024;
    cfg.mem.l3BankSize = 16 * 1024;
    cfg.mem.prefetchEnable = false;
    cfg.mem.latBreakdown = true;
    cfg.profile = profile;
    return cfg;
}

class FillMorph : public Morph
{
  public:
    FillMorph()
        : Morph(MorphTraits{.name = "fill",
                            .hasMiss = true,
                            .missKernel = {4, 2}})
    {
    }

    Task<>
    onMiss(EngineCtx &ctx) override
    {
        co_await ctx.compute(4, 2);
        for (unsigned i = 0; i < wordsPerLine; ++i)
            ctx.setLineWord(i, 42 + i);
    }
};

/** Mixed core + morph-callback workload exercising every prof hook. */
void
addProfWorkload(System &sys, FillMorph &morph)
{
    sys.addThread(0, [&](Guest &g) -> Task<> {
        const MorphBinding *b = co_await g.registerPhantom(
            morph, MorphLevel::Private, 1 << 20);
        for (Addr a = b->base; a < b->base + 64 * lineBytes; a += lineBytes)
            co_await g.load(a);
        for (int rep = 0; rep < 2; ++rep) {
            for (Addr a = 0x40000; a < 0x44000; a += lineBytes)
                co_await g.store(a, a);
        }
    });
    sys.addThread(1, [&](Guest &g) -> Task<> {
        for (int rep = 0; rep < 2; ++rep) {
            for (Addr a = 0x80000; a < 0x82000; a += lineBytes)
                co_await g.load(a);
        }
    });
}

} // namespace

// -------------------------------------------------------------------
// ReuseStack: the LRU stack-distance oracle.
// -------------------------------------------------------------------

TEST(ReuseStack, FirstTouchAndBasicDistances)
{
    prof::ReuseStack rs;
    EXPECT_EQ(rs.access(1), prof::ReuseStack::kFirstTouch);
    EXPECT_EQ(rs.access(1), 0u); // immediate re-reference
    EXPECT_EQ(rs.access(2), prof::ReuseStack::kFirstTouch);
    EXPECT_EQ(rs.access(3), prof::ReuseStack::kFirstTouch);
    // A B C A: two distinct lines between the As.
    EXPECT_EQ(rs.access(1), 2u);
    EXPECT_EQ(rs.distinctLines(), 3u);
}

TEST(ReuseStack, RepeatedAccessesDoNotInflateDistance)
{
    prof::ReuseStack rs;
    rs.access(1);
    rs.access(2);
    rs.access(2);
    rs.access(2); // re-references must not count as distinct lines
    EXPECT_EQ(rs.access(1), 1u);
}

TEST(ReuseStack, CompactionPreservesDistances)
{
    prof::ReuseStack rs;
    // Cycle over 8 lines far past the initial 1024-slot capacity: every
    // pass after the first must see distance 7 regardless of how many
    // compactions happened in between.
    for (std::uint64_t n = 0; n < 8; ++n)
        EXPECT_EQ(rs.access(n), prof::ReuseStack::kFirstTouch);
    for (int pass = 0; pass < 2000; ++pass) {
        for (std::uint64_t n = 0; n < 8; ++n)
            ASSERT_EQ(rs.access(n), 7u) << "pass " << pass;
    }
    EXPECT_EQ(rs.distinctLines(), 8u);
}

TEST(ReuseStack, ManyLiveLinesGrowTheSlotSpace)
{
    prof::ReuseStack rs;
    const std::uint64_t n = 5000; // > initial capacity, all live
    for (std::uint64_t i = 0; i < n; ++i)
        ASSERT_EQ(rs.access(i), prof::ReuseStack::kFirstTouch);
    // Touch them again in order: each saw n-1 distinct lines since.
    for (std::uint64_t i = 0; i < n; ++i)
        ASSERT_EQ(rs.access(i), n - 1);
}

// -------------------------------------------------------------------
// MissClassifier: synthetic patterns with known class splits.
// -------------------------------------------------------------------

TEST(MissClassifier, ColdStreamIsAllCompulsory)
{
    prof::MissClassifier mc("test");
    const unsigned s = mc.addStack(16);
    for (std::uint64_t n = 0; n < 100; ++n)
        mc.access(s, lineAddr(n), false);
    EXPECT_EQ(mc.counts().accesses, 100u);
    EXPECT_EQ(mc.counts().misses, 100u);
    EXPECT_EQ(mc.counts().compulsory, 100u);
    EXPECT_EQ(mc.counts().capacity, 0u);
    EXPECT_EQ(mc.counts().conflict, 0u);
    EXPECT_EQ(mc.firstTouches(), 100u);
}

TEST(MissClassifier, CyclicSweepBeyondCapacityIsCapacity)
{
    // Sweep C+4 lines cyclically through a C-line cache: pass 1 is
    // compulsory, every later miss sees reuse distance C+3 >= C.
    constexpr std::uint64_t C = 16;
    prof::MissClassifier mc("test");
    const unsigned s = mc.addStack(C);
    for (int pass = 0; pass < 3; ++pass) {
        for (std::uint64_t n = 0; n < C + 4; ++n)
            mc.access(s, lineAddr(n), false);
    }
    EXPECT_EQ(mc.counts().compulsory, C + 4);
    EXPECT_EQ(mc.counts().capacity, 2 * (C + 4));
    EXPECT_EQ(mc.counts().conflict, 0u);
}

TEST(MissClassifier, ShortDistanceMissIsConflict)
{
    // Two lines alternating: distance 1 << capacity 16, yet the cache
    // missed (set-index collision). Must classify as conflict.
    prof::MissClassifier mc("test");
    const unsigned s = mc.addStack(16);
    mc.access(s, lineAddr(0), false); // compulsory
    mc.access(s, lineAddr(1), false); // compulsory
    for (int i = 0; i < 10; ++i) {
        mc.access(s, lineAddr(0), false);
        mc.access(s, lineAddr(1), false);
    }
    EXPECT_EQ(mc.counts().compulsory, 2u);
    EXPECT_EQ(mc.counts().capacity, 0u);
    EXPECT_EQ(mc.counts().conflict, 20u);
}

TEST(MissClassifier, HitsNeverClassify)
{
    prof::MissClassifier mc("test");
    const unsigned s = mc.addStack(4);
    mc.access(s, lineAddr(0), false);
    for (int i = 0; i < 5; ++i)
        mc.access(s, lineAddr(0), true);
    EXPECT_EQ(mc.counts().hits, 5u);
    EXPECT_EQ(mc.counts().misses, 1u);
    EXPECT_EQ(mc.counts().compulsory, 1u);
}

TEST(MissClassifier, ClassesPartitionMisses)
{
    prof::MissClassifier mc("test");
    const unsigned s = mc.addStack(8);
    Rng rng(7);
    for (int i = 0; i < 5000; ++i)
        mc.access(s, lineAddr(rng.next() % 64), rng.next() % 3 == 0);
    const auto &c = mc.counts();
    EXPECT_EQ(c.hits + c.misses, c.accesses);
    EXPECT_EQ(c.compulsory + c.capacity + c.conflict, c.misses);
}

TEST(MissClassifier, ReuseHistogramGolden)
{
    prof::MissClassifier mc("test");
    const unsigned s = mc.addStack(1024);
    // Construct exact distances: 0, 1, 2, 3, and 5.
    mc.access(s, lineAddr(0), false); // first touch
    mc.access(s, lineAddr(0), true);  // dist 0 -> bucket 0
    mc.access(s, lineAddr(1), false); // first touch
    mc.access(s, lineAddr(0), true);  // dist 1 -> bucket 1
    mc.access(s, lineAddr(2), false); // first touch
    mc.access(s, lineAddr(3), false); // first touch
    mc.access(s, lineAddr(1), true);  // dist 3 -> bucket 2 ([2,4))
    mc.access(s, lineAddr(4), false); // first touch
    mc.access(s, lineAddr(5), false); // first touch
    mc.access(s, lineAddr(0), true);  // dist 5 -> bucket 3 ([4,8))

    EXPECT_EQ(mc.firstTouches(), 6u);
    const auto &h = mc.reuseHist();
    EXPECT_EQ(h[0], 1u);
    EXPECT_EQ(h[1], 1u);
    EXPECT_EQ(h[2], 1u);
    EXPECT_EQ(h[3], 1u);
    for (unsigned b = 4; b < prof::MissClassifier::kReuseBuckets; ++b)
        EXPECT_EQ(h[b], 0u) << "bucket " << b;
    std::uint64_t total = mc.firstTouches();
    for (std::uint64_t v : h)
        total += v;
    EXPECT_EQ(total, mc.counts().accesses);
}

// -------------------------------------------------------------------
// Profiler-on-a-System: classification, occupancy, NoC, JSON output.
// -------------------------------------------------------------------

TEST(Profiler, ClassifiedAccessesMatchCacheStats)
{
    System sys(smallConfig(true));
    FillMorph morph;
    addProfWorkload(sys, morph);
    sys.run();

    ASSERT_NE(sys.profiler(), nullptr);
    const prof::Profiler &p = *sys.profiler();
    StatsRegistry &st = sys.stats();

    // Every L3 probe site is profiled, so classified accesses must agree
    // exactly with the cache's own hit/miss accounting.
    EXPECT_EQ(static_cast<double>(p.l3().counts().accesses),
              st.get("l3.hits") + st.get("l3.misses"));

    // Demand L1/L2 activity was classified (engine + core traffic means
    // totals differ from the hit/miss stats' mix, but never zero here).
    EXPECT_GT(p.l1().counts().accesses, 0u);
    EXPECT_GT(p.l2().counts().accesses, 0u);
    for (const prof::MissClassifier *mc : {&p.l1(), &p.l2(), &p.l3()}) {
        const auto &c = mc->counts();
        EXPECT_EQ(c.hits + c.misses, c.accesses) << mc->level();
        EXPECT_EQ(c.compulsory + c.capacity + c.conflict, c.misses)
            << mc->level();
    }

    // prof.* counters were injected at finalize.
    EXPECT_GT(st.get("prof.cb.count"), 0.0);
    EXPECT_EQ(st.get("prof.miss.l3.compulsory"),
              static_cast<double>(p.l3().counts().compulsory));
}

TEST(Profiler, CallbackAggregatesMatchEngineCounters)
{
    System sys(smallConfig(true));
    FillMorph morph;
    addProfWorkload(sys, morph);
    sys.run();

    const prof::Profiler &p = *sys.profiler();
    StatsRegistry &st = sys.stats();

    std::uint64_t count = 0;
    for (const auto &[key, agg] : p.callbacks()) {
        const auto &[tile, name, kind] = key;
        EXPECT_EQ(name, "fill");
        EXPECT_EQ(kind, 0u); // phantom loads only trigger onMiss
        EXPECT_GT(agg.total, 0u);
        EXPECT_GE(agg.total, agg.body);
        count += agg.count;
    }
    EXPECT_GT(count, 0u);
    EXPECT_EQ(static_cast<double>(count),
              st.get("engine.cb.miss") + st.get("engine.cb.eviction") +
                  st.get("engine.cb.writeback"));
    // The profiler's body cycles come from the same measurements as the
    // engine.breakdown.body histogram.
    std::uint64_t body = 0;
    for (const auto &[key, agg] : p.callbacks())
        body += agg.body;
    EXPECT_EQ(static_cast<double>(body),
              st.histogram("engine.breakdown.body").sum());
}

TEST(Profiler, OccupancyTimelineInvariants)
{
    System sys(smallConfig(true));
    FillMorph morph;
    addProfWorkload(sys, morph);
    const Tick cycles = sys.run();

    const prof::Profiler &p = *sys.profiler();
    bool any_peak = false;
    for (unsigned t = 0; t < 4; ++t) {
        const prof::Profiler::EngineOcc &o = p.engineOcc(t);
        EXPECT_EQ(o.cur, 0u) << "tile " << t
                             << ": callbacks still in flight at drain";
        any_peak |= o.peak > 0;
        // Occupancy-level cycles tile the whole run exactly.
        Tick sum = 0;
        for (Tick c : o.levelCycles)
            sum += c;
        EXPECT_EQ(sum, cycles) << "tile " << t;
        // Timeline ticks are non-decreasing.
        for (std::size_t i = 1; i < o.timelineTicks.size(); ++i)
            EXPECT_GE(o.timelineTicks[i], o.timelineTicks[i - 1]);
    }
    EXPECT_TRUE(any_peak);
}

TEST(Profiler, NocLinkCountersMatchFlitHops)
{
    System sys(smallConfig(true));
    FillMorph morph;
    addProfWorkload(sys, morph);
    sys.run();

    // Each flit occupies one link per hop, so the per-link busy cycles
    // must sum to exactly the mesh's flit-hop count.
    std::uint64_t busy = 0;
    for (std::uint64_t b : sys.profiler()->linkBusyCycles())
        busy += b;
    EXPECT_EQ(busy, sys.noc().flitHops());
    EXPECT_GT(busy, 0u);
}

// -------------------------------------------------------------------
// The determinism contract: profiling observes, never perturbs.
// -------------------------------------------------------------------

TEST(Profiler, EnablingProfilingChangesNoSimulatedStat)
{
    std::map<std::string, double> counters[2];
    Tick cycles[2] = {0, 0};
    for (int run = 0; run < 2; ++run) {
        System sys(smallConfig(run == 1));
        FillMorph morph;
        addProfWorkload(sys, morph);
        cycles[run] = sys.run();
        for (const auto &[name, c] : sys.stats().counters()) {
            // prof.* exists only when profiled; host.* is wall-clock.
            if (name.rfind("prof.", 0) != 0 &&
                name.rfind("host.", 0) != 0)
                counters[run][name] = c.value();
        }
        // prof.* counters exist exactly when profiled.
        EXPECT_EQ(sys.stats().get("prof.cb.count") > 0, run == 1);
    }
    EXPECT_EQ(cycles[0], cycles[1]);
    EXPECT_EQ(counters[0], counters[1]);
}

// -------------------------------------------------------------------
// takoprof-v1 JSON and folded output.
// -------------------------------------------------------------------

TEST(Profiler, WriteJsonEmitsValidTakoprofV1)
{
    System sys(smallConfig(true));
    FillMorph morph;
    addProfWorkload(sys, morph);
    const Tick cycles = sys.run();

    std::ostringstream os;
    sys.profiler()->writeJson(os, {{"git_rev", "test"},
                                   {"workload", "synthetic"}});
    std::string err;
    Json doc = Json::parse(os.str(), &err);
    ASSERT_TRUE(err.empty()) << err << "\n" << os.str();

    EXPECT_EQ(doc["schema"].asString(), "takoprof-v1");
    EXPECT_EQ(doc["git_rev"].asString(), "test");
    EXPECT_EQ(doc["end_cycle"].asNumber(), static_cast<double>(cycles));

    ASSERT_TRUE(doc["callbacks"].isArray());
    ASSERT_FALSE(doc["callbacks"].asArray().empty());
    const Json &cb = doc["callbacks"].asArray()[0];
    EXPECT_EQ(cb["morph"].asString(), "fill");
    EXPECT_EQ(cb["kind"].asString(), "onMiss");
    EXPECT_GT(cb["cycles"]["total"].asNumber(), 0.0);

    for (const char *level : {"l1", "l2", "l3"}) {
        const Json &lv = doc["miss_class"][level];
        ASSERT_TRUE(lv.isObject()) << level;
        EXPECT_EQ(lv["hits"].asNumber() + lv["misses"].asNumber(),
                  lv["accesses"].asNumber());
        EXPECT_EQ(lv["compulsory"].asNumber() + lv["capacity"].asNumber() +
                      lv["conflict"].asNumber(),
                  lv["misses"].asNumber());
        EXPECT_EQ(lv["reuse_hist"]["log2_buckets"].asArray().size(),
                  static_cast<std::size_t>(
                      prof::MissClassifier::kReuseBuckets));
    }

    // 4 cores -> 4 engines, and a mesh heatmap with dim_y rows.
    EXPECT_EQ(doc["engines"].asArray().size(), 4u);
    const Json &noc = doc["noc"];
    const auto dimY = static_cast<std::size_t>(noc["dim_y"].asNumber());
    const auto dimX = static_cast<std::size_t>(noc["dim_x"].asNumber());
    EXPECT_EQ(dimX * dimY, 4u);
    ASSERT_EQ(noc["tile_busy"].asArray().size(), dimY);
    EXPECT_EQ(noc["tile_busy"].asArray()[0].asArray().size(), dimX);
    EXPECT_EQ(noc["links"].asArray().size(), 16u); // 4 tiles x 4 dirs

    // Set heat present for every level and sized by the arrays.
    for (const char *level : {"l1", "l2", "l3"})
        EXPECT_TRUE(doc["set_heat"][level].isArray()) << level;

    // Folded lines mirror the callbacks section.
    ASSERT_TRUE(doc["folded"].isArray());
    ASSERT_FALSE(doc["folded"].asArray().empty());
    const std::string line = doc["folded"].asArray()[0].asString();
    EXPECT_NE(line.find(";fill;onMiss;"), std::string::npos);
}

TEST(Profiler, WriteFoldedMatchesCallbackTotals)
{
    System sys(smallConfig(true));
    FillMorph morph;
    addProfWorkload(sys, morph);
    sys.run();

    std::ostringstream os;
    sys.profiler()->writeFolded(os);
    // Sum the folded counts per phase and compare against aggregates.
    std::uint64_t foldedBody = 0;
    std::istringstream in(os.str());
    std::string stack;
    std::uint64_t count;
    while (in >> stack >> count) {
        if (stack.find(";body") != std::string::npos)
            foldedBody += count;
    }
    std::uint64_t body = 0;
    for (const auto &[key, agg] : sys.profiler()->callbacks())
        body += agg.body;
    EXPECT_EQ(foldedBody, body);
    EXPECT_GT(foldedBody, 0u);
}

// -------------------------------------------------------------------
// Set heat: aggregated per level, sums to classified accesses.
// -------------------------------------------------------------------

TEST(Profiler, SetHeatAggregatesPerLevel)
{
    System sys(smallConfig(true));
    FillMorph morph;
    addProfWorkload(sys, morph);
    sys.run();

    // l2 heat: one counter per set, summing to every profiled l2 probe
    // (prefetch probes also bump heat, but prefetching is disabled here).
    const std::vector<std::uint64_t> heat = sys.mem().aggregateSetHeat(2);
    ASSERT_FALSE(heat.empty());
    std::uint64_t total = 0;
    for (std::uint64_t h : heat)
        total += h;
    EXPECT_EQ(total, sys.profiler()->l2().counts().accesses);
}

// -------------------------------------------------------------------
// RunMetrics carries the profiler.
// -------------------------------------------------------------------

TEST(Profiler, RunMetricsCarriesProfiler)
{
    System sys(smallConfig(true));
    FillMorph morph;
    addProfWorkload(sys, morph);
    const Tick cycles = sys.run();
    RunMetrics m = collectMetrics(sys, "test", cycles);
    ASSERT_TRUE(m.prof);
    EXPECT_TRUE(m.prof->finalized());
    EXPECT_GT(m.stats->get("prof.cb.count"), 0.0);

    System unprofiled(smallConfig(false));
    FillMorph morph2;
    addProfWorkload(unprofiled, morph2);
    const Tick c2 = unprofiled.run();
    RunMetrics m2 = collectMetrics(unprofiled, "test", c2);
    EXPECT_FALSE(m2.prof);
}
