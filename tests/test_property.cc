/**
 * @file
 * Property-based (parameterized) tests: randomized workloads checked
 * against reference models across many seeds.
 *
 *  - Memory consistency: random single-core op sequences match a flat
 *    reference memory exactly (values returned and final state).
 *  - Atomic conservation: concurrent random atomics from all cores sum
 *    exactly; tag/directory invariants hold afterwards.
 *  - Morph semantics: random loads/stores/flushes over a phantom range
 *    match a shadow model driven by the observed callbacks.
 *  - NVM crash consistency: executions cut at random points recover
 *    every committed transaction from home/journal/persistent cache.
 */

#include <gtest/gtest.h>

#include <map>

#include "morphs/nvm_morph.hh"
#include "system/system.hh"
#include "workloads/common.hh"

using namespace tako;

namespace
{

SystemConfig
tinySystem()
{
    SystemConfig cfg = SystemConfig::forCores(4);
    cfg.mem.l1Size = 1024;
    cfg.mem.l2Size = 4 * 1024;
    cfg.mem.l3BankSize = 8 * 1024;
    return cfg;
}

} // namespace

// ---------------------------------------------------------------------
// Single-core random ops vs. reference memory
// ---------------------------------------------------------------------

class MemRefProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(MemRefProperty, RandomOpsMatchReferenceModel)
{
    System sys(tinySystem());
    Rng rng(GetParam());
    std::map<Addr, std::uint64_t> ref;
    const Addr base = 0x100000;
    const unsigned span_lines = 96; // several sets, forces evictions
    bool ok = true;

    sys.addThread(0, [&](Guest &g) -> Task<> {
        for (int i = 0; i < 2000 && ok; ++i) {
            const Addr a =
                base + rng.below(span_lines * wordsPerLine) * 8;
            switch (rng.below(4)) {
              case 0: {
                const auto v = co_await g.load(a);
                ok &= v == (ref.count(a) ? ref[a] : 0);
                break;
              }
              case 1: {
                const std::uint64_t v = rng.next();
                co_await g.store(a, v);
                ref[a] = v;
                break;
              }
              case 2: {
                const auto old = co_await g.atomicAdd(a, i);
                ok &= old == (ref.count(a) ? ref[a] : 0);
                ref[a] += i;
                break;
              }
              default: {
                const auto old = co_await g.atomicSwap(a, i);
                ok &= old == (ref.count(a) ? ref[a] : 0);
                ref[a] = i;
                break;
              }
            }
        }
    });
    sys.run();
    EXPECT_TRUE(ok);
    for (const auto &[a, v] : ref)
        ASSERT_EQ(sys.mem().realStore().read64(a), v);
    sys.mem().checkInvariants();
}

INSTANTIATE_TEST_SUITE_P(Seeds, MemRefProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------------------------------------------------------------------
// Multi-core random atomics: conservation + invariants
// ---------------------------------------------------------------------

class AtomicProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(AtomicProperty, ConcurrentAtomicsConserveSum)
{
    System sys(tinySystem());
    const Addr base = 0x200000;
    const unsigned cells = 64; // shared, contended cells
    std::uint64_t expected = 0;

    for (unsigned c = 0; c < sys.numCores(); ++c) {
        sys.addThread(static_cast<int>(c), [&, c](Guest &g) -> Task<> {
            Rng rng(GetParam() * 100 + c);
            for (int i = 0; i < 400; ++i) {
                const Addr a = base + rng.below(cells) * 8;
                co_await g.atomicAdd(a, 3);
                if (rng.chance(0.2))
                    co_await g.exec(rng.below(20));
            }
        });
        expected += 400u * 3u;
    }
    sys.run();

    std::uint64_t sum = 0;
    for (unsigned i = 0; i < cells; ++i)
        sum += sys.mem().realStore().read64(base + i * 8);
    EXPECT_EQ(sum, expected);
    sys.mem().checkInvariants();
}

INSTANTIATE_TEST_SUITE_P(Seeds, AtomicProperty,
                         ::testing::Values(7, 11, 19, 23, 42));

// ---------------------------------------------------------------------
// Morph semantics vs. shadow model
// ---------------------------------------------------------------------

namespace
{

/** Fill-pattern morph whose eviction resets the line to the pattern. */
class ShadowMorph : public Morph
{
  public:
    ShadowMorph()
        : Morph(MorphTraits{
              .name = "shadow",
              .hasMiss = true,
              .hasEviction = true,
              .hasWriteback = true,
              .missKernel = {6, 2},
              .evictionKernel = {4, 2},
              .writebackKernel = {4, 2},
          })
    {
    }

    void bind(const MorphBinding *b) { base_ = b->base; }

    static std::uint64_t
    pattern(Addr word_addr)
    {
        return word_addr * 0x9e3779b97f4a7c15ULL;
    }

    Task<>
    onMiss(EngineCtx &ctx) override
    {
        missLines.push_back(ctx.addr());
        co_await ctx.compute(6, 2);
        for (unsigned i = 0; i < wordsPerLine; ++i)
            ctx.setLineWord(i, pattern(ctx.addr() + i * 8));
    }

    Task<>
    onEviction(EngineCtx &ctx) override
    {
        evictLines.push_back(ctx.addr());
        co_await ctx.compute(4, 2);
    }

    Task<>
    onWriteback(EngineCtx &ctx) override
    {
        co_await onEviction(ctx);
    }

    std::vector<Addr> missLines;
    std::vector<Addr> evictLines;

  private:
    Addr base_ = 0;
};

} // namespace

class MorphProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(MorphProperty, PhantomSemanticsMatchShadowModel)
{
    System sys(tinySystem());
    ShadowMorph morph;
    Rng rng(GetParam());
    // Shadow: words stored since the covering line's last (re)fill.
    std::map<Addr, std::uint64_t> dirty;
    std::size_t missCursor = 0;
    bool ok = true;

    sys.addThread(0, [&](Guest &g) -> Task<> {
        const MorphBinding *b = co_await g.registerPhantom(
            morph, MorphLevel::Private, 1 << 20);
        morph.bind(b);
        const unsigned lines = 128; // ~2x the tiny L2

        auto sync_shadow = [&]() {
            // Every fill since the last check resets its line's words.
            for (; missCursor < morph.missLines.size(); ++missCursor) {
                const Addr line = morph.missLines[missCursor];
                for (unsigned i = 0; i < wordsPerLine; ++i)
                    dirty.erase(line + i * 8);
            }
        };

        for (int i = 0; i < 3000 && ok; ++i) {
            const Addr a =
                b->base + rng.below(lines * wordsPerLine) * 8;
            if (rng.chance(0.6)) {
                const auto v = co_await g.load(a);
                sync_shadow();
                const auto expect = dirty.count(a)
                                        ? dirty[a]
                                        : ShadowMorph::pattern(a);
                if (v != expect)
                    ok = false;
            } else {
                co_await g.store(a, i);
                sync_shadow();
                dirty[a] = i;
            }
            if (rng.chance(0.01)) {
                co_await g.flushData(b);
                sync_shadow();
            }
        }
        co_await g.unregister(b);
    });
    sys.run();
    EXPECT_TRUE(ok);
    // Everything that was filled eventually left the cache.
    EXPECT_EQ(morph.missLines.size(), morph.evictLines.size());
    sys.mem().checkInvariants();
}

INSTANTIATE_TEST_SUITE_P(Seeds, MorphProperty,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

// ---------------------------------------------------------------------
// NVM crash consistency
// ---------------------------------------------------------------------

class NvmCrashProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(NvmCrashProperty, CommittedTransactionsSurviveCrashes)
{
    // Run the staging+flush transaction loop and "crash" at a random
    // point. With battery-backed caches (eADR) the persistence domain is
    // home memory + journal + the staged cache contents; every
    // transaction with a commit record must be fully recoverable.
    System sys(tinySystem());
    Arena arena;
    const std::uint64_t tx_bytes = 2048;
    const unsigned num_tx = 8;
    const Addr home = arena.alloc(num_tx * tx_bytes);
    const Addr journal = arena.alloc(1 << 20);
    const Addr commitRec = arena.alloc(lineBytes);

    NvmTxMorph morph(home, journal, 1024);
    auto payload = [](unsigned tx, std::uint64_t w) {
        return (std::uint64_t(tx) << 32) ^ (w * 31) ^ 0x77;
    };

    sys.addThread(0, [&](Guest &g) -> Task<> {
        const MorphBinding *b = co_await g.registerPhantom(
            morph, MorphLevel::Private, tx_bytes);
        morph.bind(b);
        for (unsigned tx = 0; tx < num_tx; ++tx) {
            morph.setCommitted(false);
            morph.setHomeBase(home + tx * tx_bytes);
            morph.resetJournal();
            for (std::uint64_t w = 0; w < tx_bytes / 8; ++w)
                co_await g.store(b->base + w * 8, payload(tx, w));
            morph.setCommitted(true);
            co_await g.flushData(b);
            // Replay journaled lines before declaring commit.
            for (std::uint64_t j = 0; j < morph.journalEntries(); ++j) {
                const Addr entry = journal + j * (lineBytes + 8);
                const Addr off =
                    sys.mem().realStore().read64(entry);
                std::vector<std::pair<Addr, std::uint64_t>> hw;
                for (unsigned k = 0; k < wordsPerLine; ++k) {
                    const std::uint64_t w =
                        sys.mem().realStore().read64(entry + 8 + k * 8);
                    if (w != NvmTxMorph::invalidWord) {
                        hw.emplace_back(
                            home + tx * tx_bytes + off + k * 8, w);
                    }
                }
                co_await g.streamStoreMulti(hw);
            }
            co_await g.store(commitRec, tx + 1);
        }
    });

    // Crash at a pseudo-random point in the run.
    const Tick cut = 20000 + (GetParam() * 77773) % 400000;
    sys.runFor(cut);

    // Recovery: committed transactions must be intact. (The staged
    // cache contents are persistent under eADR, so data still cached is
    // visible through the functional store.)
    const std::uint64_t committed =
        sys.mem().realStore().read64(commitRec);
    ASSERT_LE(committed, num_tx);
    for (std::uint64_t tx = 0; tx < committed; ++tx) {
        for (std::uint64_t w = 0; w < tx_bytes / 8; ++w) {
            ASSERT_EQ(sys.mem().realStore().read64(home + tx * tx_bytes +
                                                   w * 8),
                      payload(static_cast<unsigned>(tx), w))
                << "tx " << tx << " word " << w << " cut " << cut;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Cuts, NvmCrashProperty,
                         ::testing::Range<std::uint64_t>(1, 11));

// ---------------------------------------------------------------------
// trrîp reserve-rule invariant under random churn
// ---------------------------------------------------------------------

class TrripProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(TrripProperty, MorphReserveInvariantHolds)
{
    CacheArray cache(64 * lineBytes, 8, ReplPolicy::Trrip); // 8 sets
    Rng rng(GetParam());
    for (int i = 0; i < 5000; ++i) {
        const Addr line = rng.below(1024) * lineBytes;
        if (cache.lookup(line)) {
            cache.touch(*cache.lookup(line), rng.chance(0.3));
            continue;
        }
        const bool morph = rng.chance(0.7);
        CacheWay *v = cache.findVictim(line, morph);
        ASSERT_NE(v, nullptr);
        if (v->valid)
            v->invalidate();
        cache.fill(*v, line, morph, morph ? 1 : 0, rng.chance(0.3));

        // Invariant: every set keeps >= 1 safe (invalid or non-morph)
        // way, so an eviction without callbacks is always possible.
        for (unsigned s = 0; s < cache.numSets(); ++s) {
            bool safe = false;
            for (const CacheWay &w : cache.set(s)) {
                if (!w.valid || !w.morph)
                    safe = true;
            }
            ASSERT_TRUE(safe) << "set " << s << " iteration " << i;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrripProperty,
                         ::testing::Values(3, 14, 15, 92, 65, 35));
