/**
 * @file
 * Unit tests for Morph registration (Sec. 4.1-4.2): phantom allocation,
 * range exclusivity, flush-on-(un)register semantics, and the
 * phantom-address-space rules.
 */

#include <gtest/gtest.h>

#include "system/system.hh"
#include "tako/registry.hh"

using namespace tako;

namespace
{

SystemConfig
smallConfig()
{
    SystemConfig cfg = SystemConfig::forCores(4);
    cfg.mem.l1Size = 1024;
    cfg.mem.l2Size = 4 * 1024;
    cfg.mem.l3BankSize = 16 * 1024;
    return cfg;
}

class NopMorph : public Morph
{
  public:
    NopMorph()
        : Morph(MorphTraits{.name = "nop",
                            .hasMiss = true,
                            .missKernel = {2, 1}})
    {
    }

    Task<>
    onMiss(EngineCtx &ctx) override
    {
        co_await ctx.compute(2, 1);
    }
};

class CountingMorph : public Morph
{
  public:
    CountingMorph()
        : Morph(MorphTraits{.name = "count",
                            .hasMiss = true,
                            .missKernel = {2, 1}})
    {
    }

    Task<>
    onMiss(EngineCtx &ctx) override
    {
        ++misses;
        co_await ctx.compute(2, 1);
    }

    int misses = 0;
};

} // namespace

TEST(Registry, PhantomRangesAreDisjointAndPageAligned)
{
    System sys(smallConfig());
    NopMorph m1, m2;
    const MorphBinding *b1 = nullptr;
    const MorphBinding *b2 = nullptr;
    sys.addThread(0, [&](Guest &g) -> Task<> {
        b1 = co_await g.registerPhantom(m1, MorphLevel::Private, 1000);
        b2 = co_await g.registerPhantom(m2, MorphLevel::Shared, 1 << 22);
    });
    sys.run();
    ASSERT_NE(b1, nullptr);
    ASSERT_NE(b2, nullptr);
    EXPECT_GE(b1->base, MorphRegistry::phantomBase);
    EXPECT_EQ(b1->base % (2 * 1024 * 1024), 0u);
    EXPECT_FALSE(rangesOverlap(b1->base, b1->length, b2->base,
                               b2->length));
    EXPECT_EQ(sys.registry().numRegistered(), 2u);
    EXPECT_TRUE(sys.registry().isPhantomAddr(b1->base));
    EXPECT_FALSE(sys.registry().isPhantomAddr(0x1000));
}

TEST(Registry, ResolveFindsCoveringBinding)
{
    System sys(smallConfig());
    NopMorph m;
    const MorphBinding *b = nullptr;
    sys.addThread(0, [&](Guest &g) -> Task<> {
        b = co_await g.registerPhantom(m, MorphLevel::Private, 4096);
    });
    sys.run();
    EXPECT_EQ(sys.registry().resolve(b->base), b);
    EXPECT_EQ(sys.registry().resolve(b->base + b->length - 1), b);
    EXPECT_EQ(sys.registry().resolve(b->base + b->length), nullptr);
    EXPECT_EQ(sys.registry().resolve(0x5000), nullptr);
}

TEST(Registry, RealRegistrationFlushesCachedLines)
{
    System sys(smallConfig());
    NopMorph guard; // miss-only, but flush semantics are what we test
    const Addr data = 0x40000;
    bool cached_before = false, cached_after = false;
    sys.addThread(0, [&](Guest &g) -> Task<> {
        co_await g.store(data, 7);
        cached_before = sys.mem().cachedAnywhere(data);
        const MorphBinding *b = co_await g.registerReal(
            guard, MorphLevel::Shared, data, lineBytes);
        cached_after = sys.mem().cachedAnywhere(data);
        (void)b;
    });
    sys.run();
    EXPECT_TRUE(cached_before);
    EXPECT_FALSE(cached_after);
    // Data survived the flush (writeback happened).
    EXPECT_EQ(sys.mem().realStore().read64(data), 7u);
}

TEST(Registry, MorphBitsTagFilledLines)
{
    System sys(smallConfig());
    NopMorph m;
    sys.addThread(0, [&](Guest &g) -> Task<> {
        const MorphBinding *b = co_await g.registerPhantom(
            m, MorphLevel::Private, 1 << 20);
        co_await g.load(b->base);
        EXPECT_TRUE(sys.mem().cachedInL2(0, b->base));
    });
    sys.run();
    sys.mem().checkInvariants();
}

TEST(Registry, ReRegisterSameRangeInvalidatesResolveCache)
{
    // The per-tile MRU in front of the registry's interval map is keyed
    // by the registry generation: unregister + re-register over the
    // same range must route the next miss to the *new* Morph, never a
    // stale cached binding.
    System sys(smallConfig());
    CountingMorph m1, m2;
    const Addr data = 0x40000;
    int m1_after_first = -1;
    sys.addThread(0, [&](Guest &g) -> Task<> {
        const MorphBinding *b1 = co_await g.registerReal(
            m1, MorphLevel::Shared, data, lineBytes);
        co_await g.load(data);
        co_await g.unregister(b1);
        m1_after_first = m1.misses;
        const MorphBinding *b2 = co_await g.registerReal(
            m2, MorphLevel::Shared, data, lineBytes);
        co_await g.load(data);
        co_await g.unregister(b2);
    });
    sys.run();
    EXPECT_GE(m1_after_first, 1);
    EXPECT_EQ(m1.misses, m1_after_first); // no stale-cache dispatch
    EXPECT_GE(m2.misses, 1);
}

TEST(Registry, OverlappingRealRegistrationDies)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    auto run = []() {
        System sys(smallConfig());
        NopMorph m1, m2;
        sys.addThread(0, [&](Guest &g) -> Task<> {
            co_await g.registerReal(m1, MorphLevel::Shared, 0x10000,
                                    4096);
            co_await g.registerReal(m2, MorphLevel::Shared, 0x10800,
                                    4096);
        });
        sys.run();
    };
    EXPECT_DEATH(run(), "overlaps");
}

TEST(Registry, AccessAfterUnregisterDies)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    auto run = []() {
        System sys(smallConfig());
        NopMorph m;
        sys.addThread(0, [&](Guest &g) -> Task<> {
            const MorphBinding *b = co_await g.registerPhantom(
                m, MorphLevel::Private, 4096);
            const Addr stale = b->base;
            co_await g.unregister(b);
            co_await g.load(stale);
        });
        sys.run();
    };
    EXPECT_DEATH(run(), "unregistered phantom");
}

TEST(Registry, ManyConcurrentMorphs)
{
    System sys(smallConfig());
    std::vector<std::unique_ptr<NopMorph>> morphs;
    for (int i = 0; i < 8; ++i)
        morphs.push_back(std::make_unique<NopMorph>());
    std::uint64_t touched = 0;
    sys.addThread(0, [&](Guest &g) -> Task<> {
        std::vector<const MorphBinding *> bindings;
        for (auto &m : morphs) {
            bindings.push_back(co_await g.registerPhantom(
                *m, MorphLevel::Private, 1 << 16));
        }
        for (auto *b : bindings) {
            co_await g.load(b->base);
            ++touched;
        }
        for (auto *b : bindings)
            co_await g.unregister(b);
    });
    sys.run();
    EXPECT_EQ(touched, 8u);
    EXPECT_EQ(sys.registry().numRegistered(), 0u);
}
