/**
 * @file
 * Unit tests for the mesh NoC model: hop counts, zero-load latency,
 * serialization, link contention, and energy accounting.
 */

#include <gtest/gtest.h>

#include "noc/mesh.hh"

using namespace tako;

namespace
{

struct MeshFixture : ::testing::Test
{
    MeshFixture() : energy(stats), mesh(MeshParams{}, stats, energy) {}

    StatsRegistry stats;
    EnergyModel energy;
    Mesh mesh; // 4x4 default
};

} // namespace

TEST_F(MeshFixture, HopCounts)
{
    EXPECT_EQ(mesh.hops(0, 0), 0u);
    EXPECT_EQ(mesh.hops(0, 1), 1u);
    EXPECT_EQ(mesh.hops(0, 3), 3u);
    EXPECT_EQ(mesh.hops(0, 4), 1u);  // one row down
    EXPECT_EQ(mesh.hops(0, 15), 6u); // corner to corner
    EXPECT_EQ(mesh.hops(5, 10), 2u);
    EXPECT_EQ(mesh.hops(10, 5), 2u); // symmetric
}

TEST_F(MeshFixture, ZeroLoadLatencyScalesWithDistance)
{
    // Single-flit message: hops * (router + link) + final router.
    const Tick one = mesh.traverse(0, 0, 1, 8);
    EXPECT_EQ(one, 1 * (2 + 1) + 2);
    const Tick far = mesh.traverse(1000, 0, 15, 8);
    EXPECT_EQ(far, 6 * (2 + 1) + 2);
}

TEST_F(MeshFixture, LocalDeliveryCrossesRouterOnce)
{
    EXPECT_EQ(mesh.traverse(0, 5, 5, 72), MeshParams{}.routerDelay);
}

TEST_F(MeshFixture, LocalDeliveriesCountedSeparately)
{
    mesh.enableLinkProfiling();
    mesh.traverse(0, 5, 5, 72); // local: no link, no flit-hops
    mesh.traverse(0, 0, 3, 8);  // remote: 3 hops
    mesh.traverse(10, 7, 7, 8); // local again
    EXPECT_EQ(stats.get("noc.messages"), 3.0);
    EXPECT_EQ(stats.get("noc.localMessages"), 2.0);
    // Reconciliation invariant takoprof validates: per-link message
    // totals cover exactly the remote traverses (once per hop).
    std::uint64_t linkMsgs = 0;
    for (const std::uint64_t m : mesh.linkMessages())
        linkMsgs += m;
    EXPECT_EQ(linkMsgs, 3u); // one remote message x 3 hops
    EXPECT_EQ(mesh.flitHops(), 3u);
}

TEST_F(MeshFixture, AllLocalTrafficTouchesNoLink)
{
    mesh.enableLinkProfiling();
    for (int t = 0; t < 16; ++t)
        mesh.traverse(0, t, t, 64);
    EXPECT_EQ(stats.get("noc.messages"), 16.0);
    EXPECT_EQ(stats.get("noc.localMessages"), 16.0);
    EXPECT_EQ(mesh.flitHops(), 0u);
    for (const std::uint64_t m : mesh.linkMessages())
        EXPECT_EQ(m, 0u);
}

TEST_F(MeshFixture, SerializationAddsTailLatency)
{
    // 72B = 5 flits: 4 extra cycles for the tail.
    const Tick small = mesh.traverse(0, 0, 1, 8);
    const Tick big = mesh.traverse(10000, 0, 1, 72);
    EXPECT_EQ(big, small + 4);
}

TEST_F(MeshFixture, ContentionQueuesOnSharedLinks)
{
    // Two 5-flit messages on the same link at the same time: the second
    // waits for the first's serialization.
    const Tick first = mesh.traverse(500, 0, 1, 72);
    const Tick second = mesh.traverse(500, 0, 1, 72);
    EXPECT_GT(second, first);
    // A message on a different link is unaffected.
    const Tick other = mesh.traverse(500, 4, 5, 72);
    EXPECT_EQ(other, first);
}

TEST_F(MeshFixture, ContentionDrainsOverTime)
{
    const Tick base = mesh.traverse(0, 0, 3, 72);
    // Much later, the link is free again.
    const Tick later = mesh.traverse(100000, 0, 3, 72);
    EXPECT_EQ(base, later);
}

TEST_F(MeshFixture, FlitHopAccounting)
{
    mesh.reset();
    mesh.traverse(0, 0, 3, 72); // 5 flits x 3 hops
    EXPECT_EQ(mesh.flitHops(), 15u);
    EXPECT_GT(stats.get("noc.flitHops"), 0.0);
    EXPECT_GT(stats.get("energy.noc"), 0.0);
}

TEST(Mesh, RectangularTopology)
{
    StatsRegistry stats;
    EnergyModel energy(stats);
    MeshParams p;
    p.dimX = 4;
    p.dimY = 2;
    Mesh mesh(p, stats, energy);
    EXPECT_EQ(mesh.numTiles(), 8u);
    EXPECT_EQ(mesh.hops(0, 7), 4u); // 3 east + 1 south
}
