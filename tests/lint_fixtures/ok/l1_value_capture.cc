// L1-clean patterns: deferred callables capture by value (or a stable
// `this`), so they stay valid however late the event queue runs them.
// The one by-reference capture is suppressed with its lifetime proof.
struct EventQueue
{
    template <typename F> void schedule(long when, F f);
};

struct Task
{
};
template <typename F> void spawn(Task t, F f);

struct Join
{
    void done();
    auto completion()
    {
        Join *self = this;
        return [self]() { self->done(); };
    }
};

struct Bank
{
    EventQueue *eq;
    int pending = 0;

    void
    issue(Task t, Join &join)
    {
        eq->schedule(5, [this]() { --pending; });
        spawn(t, join.completion());
        // takolint: ok(L1, frame suspends on join.wait() until this runs)
        eq->schedule(9, [&join]() { join.done(); });
    }
};
