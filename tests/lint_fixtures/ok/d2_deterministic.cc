// D2-clean patterns: simulated time comes from the event queue, random
// numbers from a seeded PRNG owned by the model, and the one legitimate
// host read (startup configuration) carries a suppression.
#include <cstdint>
#include <cstdlib>

struct EventQueue
{
    std::uint64_t now() const;
};

struct Xoroshiro
{
    std::uint64_t s0 = 0x9e3779b97f4a7c15ull, s1 = 0xbf58476d1ce4e5b9ull;
    std::uint64_t next();
};

std::uint64_t
tickSeed(const EventQueue &eq, Xoroshiro &prng)
{
    return eq.now() ^ prng.next();
}

bool
tracingEnabled()
{
    // takolint: ok(D2, one-time config read at startup, not simulated path)
    static const bool on = getenv("TRACE") != nullptr;
    return on;
}
