// D1-clean patterns: ordered containers for anything iterated in model
// code, plus a suppressed unordered map whose hash order provably never
// reaches simulated state (drained through std::sort before use).
#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

struct TileModel
{
    std::map<std::uint64_t, int> streams;
    std::set<std::uint64_t> inflight;
    // takolint: ok(D1, drained via sorted snapshot in drainSorted only)
    std::unordered_map<std::uint64_t, int> scratch;

    int
    victimScan()
    {
        int best = 0;
        for (auto &kv : streams)
            best += kv.second;
        return best;
    }

    std::vector<std::uint64_t>
    drainSorted()
    {
        std::vector<std::uint64_t> keys;
        // takolint: ok(D1, snapshot is sorted before any simulated use)
        for (auto &kv : scratch)
            keys.push_back(kv.first);
        std::sort(keys.begin(), keys.end());
        return keys;
    }
};
