// Domain-local objects used correctly: same-tile waits, anchor-tile
// funneling for cross-tile coordination, and one reviewed hand-off
// (suppressed with a reason).

// takolint: domain-local
struct GateSem
{
    int count = 0;
    void acquire() {}
    void release() {}
};

// Same-tile producer/consumer: the gate never leaves its domain.
Task<>
portedAccess(EventQueue &eq, GateSem &gate)
{
    gate.acquire();
    co_await Delay{eq, 4};
    gate.release();
    co_return;
}

// The anchor-tile funnel: work is posted *to* the owning tile and the
// callable carries only values, like workloads' SimBarrier.
void
funnelThroughAnchor(Domains &dom, int ownerTile, Tick delta, int seq)
{
    dom.post(ownerTile, delta, [seq]() { noteArrival(seq); });
}

Task<>
reviewedHandoff(Domains &dom, GateSem &gate, int bank)
{
    co_await dom.hopTo(bank);
    // takolint: ok(C1, bank is gate's owner tile on every call path)
    gate.release();
    co_return;
}
