// Shard-safe static-duration patterns: immutable tables, per-thread
// state, plain static functions, and one reasoned suppression.
#include <cstdint>
#include <map>
#include <string>

static const int kLaneWidth = 4;
static constexpr std::uint64_t kMixer = 6364136223846793005ULL;

const std::map<std::string, int> &
opcodeTable()
{
    static const std::map<std::string, int> table = {
        {"load", 0},
        {"store", 1},
    };
    return table;
}

std::uint64_t
perThreadScratch()
{
    static thread_local std::uint64_t scratch = 0;
    return ++scratch;
}

static std::uint64_t
mix(std::uint64_t v)
{
    return v * kMixer + kLaneWidth;
}

std::uint64_t
debugRunTally(std::uint64_t v)
{
    // takolint: ok(X1, debug-only tally, never read on the simulated path)
    static std::uint64_t tally = 0;
    tally += mix(v);
    return tally;
}
