// The partition-safe ways to move work across domains, plus the one
// reviewed direct-delivery site (suppressed with a reason).

// Cross-domain work goes through the router: it draws the key and
// routes through the executor mailbox.
void
crossDomainSignal(Domains &dom, int dstTile, Tick delta)
{
    dom.post(dstTile, delta, []() {});
}

// Scheduling on the *home* queue is same-domain work, not a bypass.
void
localWork(EventQueue &eq, Tick when)
{
    homeQueue(eq).schedule(when, []() {});
}

// The router's own delivery path lands directly on the destination
// queue once the key is drawn; reviewed and blessed.
void
routerInternal(EventQueue **queues_, int d, Tick when)
{
    // takolint: ok(X2, the router's own delivery path, the key is already drawn)
    queues_[d]->scheduleKeyed(when, []() {}, 0, 1, 2);
}
