// S1-clean pattern: string lookups happen once, in the constructor
// (takolint's stats-ok context); the per-access path bumps cached
// handle() pointers only.
#include <cstdint>
#include <string>

struct StatsRegistry
{
    std::uint64_t *counter(const std::string &name);
    std::uint64_t *handle(const std::string &name);
};

struct Bank
{
    std::uint64_t *accesses_;
    std::uint64_t *misses_;

    explicit Bank(StatsRegistry &stats)
        : accesses_(stats.handle("bank.accesses")),
          misses_(stats.handle("bank.misses"))
    {
    }

    void
    access(bool miss)
    {
        ++*accesses_;
        if (miss)
            ++*misses_;
    }
};
