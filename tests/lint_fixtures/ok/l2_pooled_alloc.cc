// L2-clean patterns: EventNodes come from the pool's free list; only
// the pool itself touches the heap, under a suppression naming why.
#include <memory>
#include <vector>

struct EventNode
{
    EventNode *next;
};

struct EventPool
{
    EventNode *free_ = nullptr;
    std::vector<std::unique_ptr<EventNode[]>> slabs_;

    EventNode *
    get()
    {
        if (!free_)
            grow();
        EventNode *n = free_;
        free_ = n->next;
        return n;
    }

    void
    put(EventNode *n)
    {
        n->next = free_;
        free_ = n;
    }

    void
    grow()
    {
        // takolint: ok(L2, the pool's own slab allocation)
        slabs_.push_back(std::make_unique<EventNode[]>(256));
        EventNode *slab = slabs_.back().get();
        for (int i = 255; i >= 0; --i)
            put(&slab[i]);
    }
};
