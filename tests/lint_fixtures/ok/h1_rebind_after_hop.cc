// Hop-safe reference discipline: bind after the hop, re-bind after
// hopping back, re-bind at the top of every loop iteration. The one
// deliberate pre-hop binding is suppressed with a reason.

Task<>
fetchLine(Domains &dom, BankState **banks, int tile, int bank)
{
    co_await dom.hopTo(bank);
    BankState &b = *banks[bank]; // bound after the hop: clean
    b.lines += 1;
    co_await dom.hopTo(tile);
    BankState &t = *banks[tile]; // re-bound after hopping back
    t.lines += 1;
    co_return;
}

Task<>
walkBanks(Domains &dom, BankState **banks, int n)
{
    for (int i = 0; i < n; ++i) {
        BankState &b = *banks[i]; // re-bound every iteration
        b.lines += 1;
        co_await dom.hopTo(i);
    }
    co_return;
}

Task<>
provablyStable(Domains &dom, BankState **banks, int bank)
{
    BankState &pinned = *banks[bank];
    co_await dom.hopTo(bank);
    // takolint: ok(H1, the hop lands in pinned's own domain so the binding stays valid)
    pinned.lines += 1;
    co_return;
}
