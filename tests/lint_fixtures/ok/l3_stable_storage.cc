// Deferred callables done right: copy values in, or point at storage
// that outlives the frame (owner members). One reviewed frame-address
// hand-off is suppressed with a reason.

// Copying values into deferred callables: nothing frame-bound escapes.
void
deferredCount(Domains &dom, int tile)
{
    int pending = 3;
    dom.post(tile, 8, [pending]() { consume(pending); });
}

struct Accum
{
    long total_ = 0;

    // Pointing into long-lived owner state (a member), not the frame.
    void
    bump(Domains &dom, int tile)
    {
        dom.post(tile, 8, [p = &total_]() { *p += 1; });
    }

    void
    bumpReviewed(Domains &dom, int tile)
    {
        long staged = 1;
        // takolint: ok(L3, the quantum-zero post drains before this frame unwinds)
        dom.post(tile, 0, [p = &staged]() { *p += 1; });
        consume(staged);
    }
};
