// Seeded D1 violations: unordered containers in model code, iterated in
// hash order. takolint must flag the declarations and the iteration.
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

struct TileModel
{
    std::unordered_map<std::uint64_t, int> streams; // takolint-expect: D1
    std::unordered_set<std::uint64_t> inflight;     // takolint-expect: D1

    int
    victimScan()
    {
        int best = 0;
        for (auto &kv : streams) // takolint-expect: D1
            best += kv.second;
        return best;
    }

    bool
    drain()
    {
        bool any = false;
        for (auto it = inflight.begin(); // takolint-expect: D1
             it != inflight.end(); ++it)
            any = true;
        return any;
    }
};
