// Seeded D2 violations: wall-clock, rand(), and getenv() on what would
// be the simulated path. Any of these makes runs non-reproducible.
#include <chrono>
#include <cstdlib>
#include <ctime>

unsigned long long
tickSeed()
{
    return static_cast<unsigned long long>(
        std::chrono::steady_clock::now() // takolint-expect: D2
            .time_since_epoch()
            .count());
}

int
randomBank(int banks)
{
    return rand() % banks; // takolint-expect: D2
}

bool
tracingEnabled()
{
    return getenv("TRACE") != nullptr; // takolint-expect: D2
}

long
wallSeconds()
{
    return time(nullptr); // takolint-expect: D2
}
