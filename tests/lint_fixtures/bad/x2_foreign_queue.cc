// Seeded X2 violations: direct EventQueue::schedule* on a foreign
// domain's queue, bypassing Domains::post/postAbs and the executor's
// sendKeyed mailbox — the event would not merge in the
// partition-invariant (tick, priority, key) order.

void
bypassViaTrackedBinding(Domains &dom, Tick when)
{
    EventQueue &fq = dom.queueOf(3);
    fq.schedule(when, []() {}); // takolint-expect: X2
}

void
bypassViaDirectChain(Domains &dom, Tick when)
{
    dom.queueOfDomain(1).scheduleAbs(when, []() {}); // takolint-expect: X2
}

void
bypassViaQueueTable(EventQueue **queues_, int d, Tick when)
{
    queues_[d]->scheduleKeyed(when, []() {}, 0, 1, 2); // takolint-expect: X2
}
