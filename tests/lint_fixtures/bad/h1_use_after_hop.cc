// Seeded H1 violations: references bound before a migrating
// `co_await hopTo(...)` and used after it. The coroutine resumes in
// another domain, so every pre-hop binding is stale; takolint must
// report each use with a flow trace naming the suspension point.

Task<>
fetchLine(Domains &dom, BankState **banks, int tile, int bank)
{
    BankState &b = *banks[bank];
    co_await dom.hopTo(bank);
    b.lines += 1; // takolint-expect: H1
    co_return;
}

void
spawnPrefetch(Domains &dom, int tile, int bank)
{
    int credits = 4;
    auto worker = [&credits, bank](Domains &d) -> Task<> {
        co_await d.hopTo(bank);
        credits -= 1; // takolint-expect: H1
        co_return;
    };
    (void)worker;
}
