// Seeded L2 violations: raw new/delete (and unique_ptr construction) of
// pooled types. EventNodes must come from the EventPool free list, not
// the general heap, or the pool's recycling invariants break.
#include <memory>

struct EventNode
{
    EventNode *next;
};

EventNode *
leakNode()
{
    return new EventNode{nullptr}; // takolint-expect: L2
}

void
dropNode(EventNode *n)
{
    delete n; // takolint-expect: L2
}

std::unique_ptr<EventNode>
ownNode()
{
    return std::make_unique<EventNode>(); // takolint-expect: L2
}
