// Seeded C1 violations: a `// takolint: domain-local` annotated object
// crossing a domain boundary — captured into a cross-domain post, or
// used after the coroutine hopped to another domain. Such objects
// (Semaphore, Join, per-tile state) mutate on whichever queue touches
// them, so they must stay with their owning domain.

// takolint: domain-local
struct PortSem
{
    int count = 0;
    void release() {}
};

Task<>
crossDomainRelease(Domains &dom, EventQueue &eq, int bank)
{
    PortSem psem;
    dom.post(bank, 8, [&psem]() { psem.release(); }); // takolint-expect: C1
    co_return;
}

Task<>
useAfterHop(Domains &dom, PortSem &gate, int bank)
{
    gate.count += 1;
    co_await dom.hopTo(bank);
    gate.release(); // takolint-expect: C1
    co_return;
}
