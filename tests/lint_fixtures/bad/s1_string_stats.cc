// Seeded S1 violations: stats looked up by string in per-access code.
// Each call re-hashes the name; hot paths must hold a handle() pointer
// resolved once at construction.
#include <cstdint>
#include <string>

struct StatsRegistry
{
    std::uint64_t *counter(const std::string &name);
    std::uint64_t *handle(const std::string &name);
    void histogram(const std::string &name, std::uint64_t v);
};

struct Bank
{
    StatsRegistry *stats;

    void
    access(std::uint64_t lat)
    {
        ++*stats->counter("bank.accesses"); // takolint-expect: S1
        stats->histogram("bank.latency", lat); // takolint-expect: S1
    }
};
