// Seeded X1 violations: static-duration mutable state in model code.
// Under sharded execution these are written by several host threads at
// once, outside the mailbox API — a data race and a determinism leak.
#include <cstdint>
#include <map>
#include <vector>

static std::uint64_t bootstrapCount = 0; // takolint-expect: X1

std::uint64_t
nextRequestId()
{
    static std::uint64_t counter = 0; // takolint-expect: X1
    return ++counter;
}

const std::map<int, int> &
routeCache()
{
    static std::map<int, int> cache; // takolint-expect: X1
    return cache;
}

int
scratchSlot()
{
    static std::vector<int> scratch{0, 0, 0}; // takolint-expect: X1
    return scratch[0];
}
