// Seeded L1 violations: by-reference lambda captures handed to deferred
// execution (EventQueue::schedule*, spawn). The frame holding the
// captured locals can be gone by the time the callable runs.
struct EventQueue
{
    template <typename F> void schedule(long when, F f);
    template <typename F> void scheduleAbs(long when, F f);
};

struct Task
{
};
template <typename F> void spawn(Task t, F f);

void
issue(EventQueue &eq, Task t)
{
    int pending = 2;
    eq.schedule(5, [&pending]() { --pending; }); // takolint-expect: L1
    eq.scheduleAbs(9, [&]() { --pending; });     // takolint-expect: L1
    spawn(t, [&pending]() { --pending; });       // takolint-expect: L1
}
