// Seeded L3 violations: the address of a stack local escaping into a
// deferred callable, via an init-capture and via `&local` in the body.
// The callable runs at a later tick, after the frame is gone.

void
escapeViaInitCapture(Domains &dom, int tile)
{
    int pending = 0;
    dom.post(tile, 8, [p = &pending]() { *p += 1; }); // takolint-expect: L3
}

void
escapeViaBodyAddress(Domains &dom, int tile, Tick when)
{
    long total = 0;
    dom.postAbs(tile, when, [=]() { accumulate(&total); }); // takolint-expect: L3
}
