/**
 * @file
 * Tests for the extension morphs built on the täkō interface beyond the
 * paper's five case studies: in-cache memoization and Tvarak-style
 * integrity checking — both use cases the paper names (Secs. 3.1, 8.3).
 */

#include <gtest/gtest.h>

#include "morphs/integrity_morph.hh"
#include "morphs/memo_morph.hh"
#include "system/system.hh"
#include "workloads/common.hh"

using namespace tako;

namespace
{

SystemConfig
smallConfig()
{
    SystemConfig cfg = SystemConfig::forCores(4);
    cfg.mem.l1Size = 1024;
    cfg.mem.l2Size = 4 * 1024;
    cfg.mem.l3BankSize = 16 * 1024;
    return cfg;
}

std::uint64_t
square(std::uint64_t k)
{
    return k * k + 1;
}

} // namespace

TEST(MemoMorph, MemoizesAndMatchesFunction)
{
    System sys(smallConfig());
    MemoMorph morph(square, 512, 20, 5);
    bool ok = true;
    sys.addThread(0, [&](Guest &g) -> Task<> {
        const MorphBinding *b = co_await g.registerPhantom(
            morph, MorphLevel::Private, 512 * 8);
        morph.bind(b);
        Rng rng(3);
        ZipfianGenerator zipf(512, 0.99);
        for (int i = 0; i < 4096; ++i) {
            const std::uint64_t key = zipf(rng);
            const auto v = co_await g.load(b->base + key * 8);
            ok &= v == square(key);
        }
        co_await g.unregister(b);
    });
    sys.run();
    EXPECT_TRUE(ok);
    // Far fewer evaluations than requests: the caches memoize.
    EXPECT_LT(morph.evaluations(), 4096u / 2);
    EXPECT_GE(morph.evaluations(), 1u);
}

TEST(MemoMorph, ColdDomainEvaluatesOncePerKey)
{
    SystemConfig cfg = smallConfig();
    cfg.mem.l2Size = 64 * 1024; // everything fits
    System sys(cfg);
    MemoMorph morph(square, 256, 20, 5);
    sys.addThread(0, [&](Guest &g) -> Task<> {
        const MorphBinding *b = co_await g.registerPhantom(
            morph, MorphLevel::Private, 256 * 8);
        morph.bind(b);
        for (int pass = 0; pass < 3; ++pass) {
            for (std::uint64_t k = 0; k < 256; ++k)
                co_await g.load(b->base + k * 8);
        }
        co_await g.unregister(b);
    });
    sys.run();
    // Three passes, but one evaluation per key.
    EXPECT_EQ(morph.evaluations(), 256u);
}

TEST(IntegrityMorph, ChecksumsWrittenBackLines)
{
    System sys(smallConfig());
    Arena arena;
    const Addr data = arena.alloc(64 * lineBytes);
    const Addr shadow = arena.allocWords(sys.mem().realStore(), 64);
    IntegrityMorph morph(data, shadow);

    sys.addThread(0, [&](Guest &g) -> Task<> {
        const MorphBinding *b = co_await g.registerReal(
            morph, MorphLevel::Private, data, 64 * lineBytes);
        // Dirty a few lines, then force them out.
        for (unsigned l = 0; l < 16; ++l) {
            for (unsigned w = 0; w < wordsPerLine; ++w) {
                co_await g.store(data + l * lineBytes + w * 8,
                                 l * 100 + w);
            }
        }
        co_await g.flushData(b);
        (void)b;
    });
    sys.run();

    EXPECT_GE(morph.checksummedLines(), 16u);
    // Verify pass: shadow checksums match recomputed line checksums.
    for (unsigned l = 0; l < 16; ++l) {
        const LineData line =
            sys.mem().realStore().readLine(data + l * lineBytes);
        EXPECT_EQ(sys.mem().realStore().read64(shadow + l * 8),
                  IntegrityMorph::checksum(line))
            << "line " << l;
    }
}

TEST(IntegrityMorph, DetectsCorruption)
{
    System sys(smallConfig());
    Arena arena;
    const Addr data = arena.alloc(8 * lineBytes);
    const Addr shadow = arena.allocWords(sys.mem().realStore(), 8);
    IntegrityMorph morph(data, shadow);

    sys.addThread(0, [&](Guest &g) -> Task<> {
        const MorphBinding *b = co_await g.registerReal(
            morph, MorphLevel::Private, data, 8 * lineBytes);
        co_await g.store(data, 1234);
        co_await g.flushData(b);
        (void)b;
    });
    sys.run();

    // Silently corrupt the in-memory copy (e.g., NVM bit rot).
    sys.mem().realStore().write64(data + 8, 0xbad);
    const LineData line = sys.mem().realStore().readLine(data);
    EXPECT_NE(sys.mem().realStore().read64(shadow),
              IntegrityMorph::checksum(line));
}
