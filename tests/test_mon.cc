/**
 * @file
 * takomon tests: writer/reader codec round-trips, loud failure on every
 * corruption class, TimeSeriesSink sampling and heartbeat determinism,
 * and the System-level contracts — telemetry cannot perturb the model,
 * takomon files are byte-identical across shard counts, and the shard.*
 * observability counters are bit-identical at any worker thread count.
 *
 * Labeled `sanfast`: the reader mmaps files and the sharded profile
 * counters are written from real worker threads, so ASan/TSan coverage
 * is the point.
 */

#include <array>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include <gtest/gtest.h>

#include "mon/format.hh"
#include "mon/reader.hh"
#include "mon/sink.hh"
#include "mon/writer.hh"
#include "sim/sampler.hh"
#include "sim/shard.hh"
#include "system/system.hh"
#include "workloads/decompress.hh"

using namespace tako;
using namespace tako::mon;

namespace
{

/** Unique-per-test scratch path, cleaned up on destruction. */
class ScratchFile
{
  public:
    explicit ScratchFile(const std::string &stem)
    {
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        path_ = ::testing::TempDir() + "tako_" + info->test_suite_name() +
                "_" + info->name() + "_" + stem;
    }
    ~ScratchFile() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

std::vector<std::uint8_t>
readAll(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

void
writeAll(const std::string &path, const std::vector<std::uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
}

std::uint32_t
load32(const std::vector<std::uint8_t> &b, std::size_t off)
{
    return static_cast<std::uint32_t>(b[off]) |
           static_cast<std::uint32_t>(b[off + 1]) << 8 |
           static_cast<std::uint32_t>(b[off + 2]) << 16 |
           static_cast<std::uint32_t>(b[off + 3]) << 24;
}

void
store32(std::vector<std::uint8_t> &b, std::size_t off, std::uint32_t v)
{
    b[off] = static_cast<std::uint8_t>(v);
    b[off + 1] = static_cast<std::uint8_t>(v >> 8);
    b[off + 2] = static_cast<std::uint8_t>(v >> 16);
    b[off + 3] = static_cast<std::uint8_t>(v >> 24);
}

/** Deterministic two-series sample set: one integral-valued column
 *  (large magnitudes, both directions) and one fractional column. */
std::vector<std::pair<Tick, std::vector<double>>>
sampleRows(std::size_t n)
{
    std::vector<std::pair<Tick, std::vector<double>>> rows;
    std::uint64_t x = 0x9e3779b97f4a7c15ull;
    std::int64_t big = 0;
    Tick t = 0;
    for (std::size_t i = 0; i < n; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        t += 1 + (x >> 60);
        // Integral column swings by up to ~2^52 in both directions.
        big += static_cast<std::int64_t>(x >> 12) -
               static_cast<std::int64_t>(1ull << 51);
        const double frac = static_cast<double>(x >> 32) / 3.0;
        rows.push_back({t, {static_cast<double>(big), frac}});
    }
    return rows;
}

void
writeMon(const std::string &path,
         const std::vector<std::pair<Tick, std::vector<double>>> &rows,
         std::uint32_t chunkSamples = 64)
{
    MonWriter w;
    MonWriter::Options opt;
    opt.chunkSamples = chunkSamples;
    std::vector<SeriesDesc> series{
        {"a.ints", SeriesKind::Counter},
        {"b.fracs", SeriesKind::HistSum},
    };
    ASSERT_TRUE(w.open(path, 500, std::move(series), opt)) << w.error();
    for (const auto &[tick, vals] : rows)
        w.addSample(tick, vals);
    ASSERT_TRUE(w.close()) << w.error();
}

/**
 * Open @p path and drain it, asserting the reader fails loudly with
 * @p expect somewhere in the error. Chunk-payload problems only surface
 * once the chunk is entered, so a successful open must be followed by
 * next() returning false *with* an error, never a clean EOF.
 */
void
expectLoudFailure(const std::string &path, const std::string &expect)
{
    MonReader r;
    if (r.open(path)) {
        Tick t;
        std::vector<double> vals;
        while (r.next(t, vals)) {
        }
    }
    EXPECT_FALSE(r.error().empty()) << "silent success for " << expect;
    EXPECT_NE(r.error().find(expect), std::string::npos) << r.error();
}

} // namespace

// ---- codec round-trip --------------------------------------------------

TEST(MonCodec, RoundTripsIntegersAndDoublesAcrossChunks)
{
    ScratchFile f("roundtrip.takomon");
    const auto rows = sampleRows(1000); // ~16 chunks of 64
    writeMon(f.path(), rows);

    MonReader r;
    ASSERT_TRUE(r.open(f.path())) << r.error();
    EXPECT_EQ(r.interval(), Tick{500});
    ASSERT_EQ(r.series().size(), 2u);
    EXPECT_EQ(r.series()[0].name, "a.ints");
    EXPECT_EQ(r.series()[0].kind, SeriesKind::Counter);
    EXPECT_EQ(r.series()[1].name, "b.fracs");
    EXPECT_EQ(r.series()[1].kind, SeriesKind::HistSum);
    EXPECT_EQ(r.sampleCount(), rows.size());

    Tick t;
    std::vector<double> vals;
    for (const auto &[wantTick, wantVals] : rows) {
        ASSERT_TRUE(r.next(t, vals)) << r.error();
        EXPECT_EQ(t, wantTick);
        ASSERT_EQ(vals.size(), 2u);
        // Bit-exact, not approximately equal: the integral column
        // round-trips through wrapping int64 deltas, the fractional one
        // through raw IEEE-754 bytes.
        EXPECT_EQ(vals[0], wantVals[0]);
        EXPECT_EQ(vals[1], wantVals[1]);
    }
    EXPECT_FALSE(r.next(t, vals));
    EXPECT_TRUE(r.error().empty()) << r.error();

    r.rewind();
    ASSERT_TRUE(r.next(t, vals)) << r.error();
    EXPECT_EQ(t, rows[0].first);
    EXPECT_EQ(vals[0], rows[0].second[0]);
}

TEST(MonCodec, EmptyFileRoundTrips)
{
    ScratchFile f("empty.takomon");
    MonWriter w;
    ASSERT_TRUE(
        w.open(f.path(), 100, {{"only", SeriesKind::Counter}}));
    ASSERT_TRUE(w.close()) << w.error();

    MonReader r;
    ASSERT_TRUE(r.open(f.path())) << r.error();
    EXPECT_EQ(r.sampleCount(), 0u);
    Tick t;
    std::vector<double> vals;
    EXPECT_FALSE(r.next(t, vals));
    EXPECT_TRUE(r.error().empty()) << r.error();
}

// ---- corruption classes ------------------------------------------------

TEST(MonCorruption, EveryClassFailsLoudly)
{
    ScratchFile f("corrupt.takomon");
    const auto rows = sampleRows(100);
    writeMon(f.path(), rows);
    const std::vector<std::uint8_t> good = readAll(f.path());
    ASSERT_GT(good.size(), monFileHeaderBytes + 4u);
    const std::uint32_t dirBytes = load32(good, 28);
    const std::size_t chunk0 = monFileHeaderBytes + dirBytes + 4;
    ASSERT_LT(chunk0 + monChunkHeaderBytes, good.size());

    auto mutate = [&](const char *what,
                      const std::function<void(
                          std::vector<std::uint8_t> &)> &fn,
                      const std::string &expect) {
        SCOPED_TRACE(what);
        std::vector<std::uint8_t> bad = good;
        fn(bad);
        writeAll(f.path(), bad);
        expectLoudFailure(f.path(), expect);
    };

    mutate("short file",
           [](auto &b) { b.resize(monFileHeaderBytes - 5); },
           "shorter than a file header");
    mutate("bad magic", [](auto &b) { b[0] ^= 0xff; }, "bad magic");
    mutate("future version", [](auto &b) { b[8] = 9; },
           "format version 9");
    mutate("reserved flags", [](auto &b) { b[12] = 1; },
           "unknown flag bits");
    mutate("zero interval",
           [](auto &b) { std::fill(b.begin() + 16, b.begin() + 24, 0); },
           "zero sample interval");
    mutate("directory truncated",
           [&](auto &b) { b.resize(monFileHeaderBytes + 2); },
           "truncated in the series directory");
    mutate("directory bit flip",
           [](auto &b) { b[monFileHeaderBytes + 1] ^= 0x40; },
           "directory CRC mismatch");
    mutate("sample count mismatch",
           [](auto &b) { b[32] ^= 1; },
           "samples, chunks hold");
    mutate("unclosed writer",
           [](auto &b) {
               std::fill(b.begin() + 32, b.begin() + 40, 0xff);
           },
           "(unclosed writer?)");
    mutate("chunk bad magic", [&](auto &b) { b[chunk0] ^= 0xff; },
           "bad magic");
    mutate("chunk header truncated",
           [&](auto &b) { b.resize(chunk0 + monChunkHeaderBytes - 3); },
           "truncated at chunk");
    mutate("chunk payload truncated",
           [&](auto &b) { b.resize(b.size() - 7); },
           "truncated");
    mutate("chunk payload bit flip",
           [&](auto &b) { b[chunk0 + monChunkHeaderBytes + 2] ^= 0x10; },
           "CRC mismatch");
    mutate("trailing garbage",
           [](auto &b) { b.insert(b.end(), {1, 2, 3}); },
           "truncated at chunk");
}

TEST(MonCorruption, UnclosedWriterFileIsRejected)
{
    ScratchFile f("abandoned.takomon");
    {
        MonWriter w;
        ASSERT_TRUE(
            w.open(f.path(), 10, {{"c", SeriesKind::Counter}}));
        for (Tick t = 10; t <= 1000; t += 10)
            w.addSample(t, {static_cast<double>(t)});
        // No close(): the destructor abandons the file, leaving the
        // placeholder sampleCount = 0 in the header.
    }
    expectLoudFailure(f.path(), "(unclosed writer?)");
}

TEST(MonCorruption, HandcraftedPayloadDefectsAreCaught)
{
    // Hand-build a one-series file so the payload bytes are under full
    // control (writer output is always well-formed). Layout: header,
    // directory ("a", Counter) + CRC, one chunk of two samples.
    auto build = [](const std::vector<std::uint8_t> &payload,
                    std::uint32_t samples) {
        std::vector<std::uint8_t> b;
        auto u32 = [&b](std::uint32_t v) {
            for (int i = 0; i < 4; ++i)
                b.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
        };
        auto u64 = [&b](std::uint64_t v) {
            for (int i = 0; i < 8; ++i)
                b.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
        };
        for (const char ch : monMagic)
            b.push_back(static_cast<std::uint8_t>(ch));
        u32(monVersion);
        u32(0);        // flags
        u64(5);        // interval
        u32(1);        // seriesCount
        u32(3);        // dirBytes: kind + nameLen + 'a'
        u64(samples);  // sampleCount
        const std::size_t dir = b.size();
        b.push_back(0); // kind = Counter
        b.push_back(1); // nameLen
        b.push_back('a');
        u32(crc32(b.data() + dir, 3));
        u32(monChunkMagic);
        u32(samples);
        u32(static_cast<std::uint32_t>(payload.size()));
        u32(crc32(payload.data(), payload.size()));
        u64(0); // firstIndex
        b.insert(b.end(), payload.begin(), payload.end());
        return b;
    };

    ScratchFile f("handcrafted.takomon");

    // Sanity: a well-formed hand-built file decodes.
    writeAll(f.path(), build({5, 3, colIntDeltas, 2, 4}, 2));
    {
        MonReader r;
        ASSERT_TRUE(r.open(f.path())) << r.error();
        Tick t;
        std::vector<double> vals;
        ASSERT_TRUE(r.next(t, vals)) << r.error();
        EXPECT_EQ(t, Tick{5});
        EXPECT_EQ(vals[0], 1.0); // zigzag(2) = +1
        ASSERT_TRUE(r.next(t, vals)) << r.error();
        EXPECT_EQ(t, Tick{8});
        EXPECT_EQ(vals[0], 3.0); // +zigzag(4) = +2
    }

    // Unknown column encoding tag.
    writeAll(f.path(), build({5, 3, 9, 2, 4}, 2));
    expectLoudFailure(f.path(), "unknown column encoding");

    // Zero tick delta within a chunk = repeated sample tick.
    writeAll(f.path(), build({5, 0, colIntDeltas, 2, 4}, 2));
    expectLoudFailure(f.path(), "non-increasing sample tick");

    // Payload bytes left over after the last column.
    writeAll(f.path(), build({5, 3, colIntDeltas, 2, 4, 0, 0}, 2));
    expectLoudFailure(f.path(), "payload bytes left");
}

// ---- TimeSeriesSink ----------------------------------------------------

TEST(TimeSeriesSink, TakomonFileMatchesInMemorySeries)
{
    ScratchFile f("sink.takomon");
    EventQueue eq;
    StatsRegistry stats;
    Counter &c = stats.counter("c");
    Histogram &h = stats.histogram("lat");
    stats.counter("host.fake"); // must be skipped by namespace

    TimeSeriesSink::Options opt;
    opt.sampleEvery = 10;
    opt.monPath = f.path();
    TimeSeriesSink sink(eq, stats, opt);

    eq.schedule(7, [&] {
        c += 1;
        h.sample(3);
    });
    eq.schedule(25, [&] {
        c += 2;
        h.sample(9);
    });
    eq.schedule(35, [] {});
    eq.run();
    ASSERT_TRUE(sink.finish()) << sink.error();

    // Derived histogram series ride along with the counter.
    ASSERT_EQ(sink.seriesDescs().size(), 4u);
    EXPECT_EQ(sink.seriesDescs()[0].name, "c");
    EXPECT_EQ(sink.seriesDescs()[1].name, "lat.count");
    EXPECT_EQ(sink.seriesDescs()[2].name, "lat.sum");
    EXPECT_EQ(sink.seriesDescs()[3].name, "lat.max");

    const StatsTimeSeries &ts = stats.timeSeries();
    ASSERT_EQ(ts.numSamples(), 3u);
    EXPECT_EQ(ts.ticks, (std::vector<Tick>{10, 20, 30}));

    MonReader r;
    ASSERT_TRUE(r.open(f.path())) << r.error();
    EXPECT_EQ(r.sampleCount(), ts.numSamples());
    ASSERT_EQ(r.series().size(), ts.names.size());
    Tick t;
    std::vector<double> vals;
    for (std::size_t i = 0; i < ts.numSamples(); ++i) {
        ASSERT_TRUE(r.next(t, vals)) << r.error();
        EXPECT_EQ(t, ts.ticks[i]);
        EXPECT_EQ(vals, ts.samples[i]);
    }
    EXPECT_FALSE(r.next(t, vals));
    EXPECT_TRUE(r.error().empty()) << r.error();

    // Spot-check semantics: a sample at tick T sees everything strictly
    // before T; the histogram contributes count/sum/max columns.
    EXPECT_EQ(ts.samples[0], (std::vector<double>{1, 1, 3, 3}));
    EXPECT_EQ(ts.samples[2], (std::vector<double>{3, 2, 12, 9}));
}

TEST(TimeSeriesSink, HeartbeatsFireAtDeterministicTicks)
{
    EventQueue eq;
    StatsRegistry stats;
    Counter &c = stats.counter("c");

    std::vector<Tick> beatTicks;
    std::vector<std::uint64_t> beatEvents;
    TimeSeriesSink::Options opt;
    opt.progressEvery = 10;
    opt.onBeat = [&](const ProgressBeat &b) {
        beatTicks.push_back(b.tick);
        beatEvents.push_back(b.events);
        EXPECT_LT(b.fractionDone, 0); // unknown unless provided
    };
    TimeSeriesSink sink(eq, stats, opt);
    sink.setFractionDone(nullptr);

    for (Tick t = 1; t <= 34; ++t)
        eq.schedule(t, [&] { c += 1; });
    eq.run();

    // Beat ticks are simulation state; event counts at those ticks are
    // too (events strictly before the boundary).
    EXPECT_EQ(beatTicks, (std::vector<Tick>{10, 20, 30}));
    EXPECT_EQ(beatEvents,
              (std::vector<std::uint64_t>{9, 19, 29}));
    EXPECT_EQ(sink.samplesTaken(), 0u); // no series cadence requested
}

TEST(TimeSeriesSink, StatsSamplerAliasStillCompiles)
{
    // PR-1 compatibility: StatsSampler is this sink (sim/sampler.hh).
    static_assert(std::is_same_v<StatsSampler, mon::TimeSeriesSink>);
    EventQueue eq;
    StatsRegistry stats;
    stats.counter("c");
    StatsSampler sampler(eq, stats, 10, {"c*"});
    eq.runUntil(25);
    EXPECT_EQ(stats.timeSeries().numSamples(), 2u);
}

// ---- shard.* profile determinism --------------------------------------

namespace
{

/**
 * Four-domain chain model on the raw executor: each domain runs a
 * self-rescheduling event chain of different lengths (load imbalance by
 * construction), mailing work to the next domain every third hop. All
 * profile fields must be a pure function of this structure, never of
 * the worker thread count.
 */
struct ChainModel
{
    static constexpr unsigned kDomains = 4;
    static constexpr Tick kQuantum = 3;

    std::array<std::unique_ptr<EventQueue>, kDomains> queues;
    std::unique_ptr<ShardedExecutor> exec;

    explicit ChainModel(unsigned threads)
    {
        std::vector<EventQueue *> domains;
        for (auto &q : queues) {
            q = std::make_unique<EventQueue>();
            domains.push_back(q.get());
        }
        exec = std::make_unique<ShardedExecutor>(domains, kQuantum,
                                                 threads);
    }

    void
    hop(unsigned d, unsigned left)
    {
        if (left == 0)
            return;
        if (left % 3 == 0) {
            const unsigned nxt = (d + 1) % kDomains;
            exec->send(d, nxt, queues[d]->now() + kQuantum,
                       EventPriority::Default,
                       [this, nxt, left] { hop(nxt, left - 1); });
            return;
        }
        queues[d]->schedule(1 + left % 5,
                            [this, d, left] { hop(d, left - 1); });
    }
};

struct ProfileSnap
{
    std::vector<ShardedExecutor::DomainProfile> profiles;
    std::vector<std::uint64_t> sent;
    std::uint64_t rounds = 0;
    std::uint64_t soloRounds = 0;
    std::uint64_t cross = 0;

    bool
    operator==(const ProfileSnap &o) const
    {
        if (rounds != o.rounds || soloRounds != o.soloRounds ||
            cross != o.cross || sent != o.sent ||
            profiles.size() != o.profiles.size())
            return false;
        for (std::size_t i = 0; i < profiles.size(); ++i) {
            const auto &a = profiles[i];
            const auto &b = o.profiles[i];
            if (a.executed != b.executed ||
                a.maxRoundEvents != b.maxRoundEvents ||
                a.idleRounds != b.idleRounds ||
                a.received != b.received ||
                a.maxInboxDepth != b.maxInboxDepth)
                return false;
        }
        return true;
    }
};

ProfileSnap
runChains(unsigned threads)
{
    ChainModel m(threads);
    for (unsigned d = 0; d < ChainModel::kDomains; ++d) {
        const unsigned len = 20 + d * 17; // deliberately unbalanced
        m.queues[d]->schedule(d + 1, [&m, d, len] { m.hop(d, len); });
    }
    m.exec->run();

    ProfileSnap s;
    s.profiles = m.exec->domainProfiles();
    for (unsigned d = 0; d < ChainModel::kDomains; ++d)
        s.sent.push_back(m.exec->eventsSent(d));
    s.rounds = m.exec->rounds();
    s.soloRounds = m.exec->soloRounds();
    s.cross = m.exec->crossShardEvents();
    return s;
}

} // namespace

TEST(ShardProfile, BitIdenticalAtEveryThreadCount)
{
    const ProfileSnap ref = runChains(1);
    // The model did real work and the profile saw it.
    std::uint64_t executed = 0, received = 0;
    for (const auto &p : ref.profiles)
        executed += p.executed, received += p.received;
    EXPECT_GT(executed, 0u);
    EXPECT_GT(received, 0u);
    EXPECT_EQ(received, ref.cross);

    for (const unsigned threads : {2u, 4u}) {
        const ProfileSnap got = runChains(threads);
        EXPECT_TRUE(got == ref) << "threads=" << threads;
    }
}

// ---- System-level contracts -------------------------------------------

namespace
{

struct MonRunResult
{
    std::map<std::string, double> counters; ///< all but host.*
    Tick cycles = 0;
    double energy = 0;
    double checksum = 0;
    std::vector<std::uint8_t> monBytes;
};

MonRunResult
runDecompressMon(unsigned shards, const std::string &monPath,
                 Tick sampleEvery)
{
    SystemConfig cfg = SystemConfig::forCores(16);
    cfg.mem.l1Size = 2 * 1024;
    cfg.mem.l2Size = 8 * 1024;
    cfg.mem.l3BankSize = 32 * 1024;
    cfg.shards = shards;
    cfg.sampleInterval = sampleEvery;
    cfg.monPath = monPath;
    DecompressConfig dc;
    dc.numValues = 2 * 1024;
    dc.numIndices = 4 * 1024;
    const RunMetrics m = runDecompress(DecompressVariant::Tako, dc, cfg);

    MonRunResult r;
    for (const auto &[name, c] : m.stats->counters())
        if (name.rfind("host.", 0) != 0)
            r.counters.emplace(name, c.value());
    r.cycles = m.cycles;
    r.energy = m.energy;
    r.checksum = m.extra.at("checksum");
    if (!monPath.empty())
        r.monBytes = readAll(monPath);
    return r;
}

} // namespace

TEST(MonSystem, TelemetryChangesNoModelMetric)
{
    ScratchFile f("telemetry.takomon");
    const MonRunResult off = runDecompressMon(1, "", 0);
    const MonRunResult on = runDecompressMon(1, f.path(), 500);

    EXPECT_EQ(on.cycles, off.cycles);
    EXPECT_EQ(on.energy, off.energy);
    EXPECT_EQ(on.checksum, off.checksum);
    ASSERT_EQ(on.counters.size(), off.counters.size());
    for (const auto &[name, value] : off.counters) {
        const auto it = on.counters.find(name);
        ASSERT_NE(it, on.counters.end()) << name;
        EXPECT_EQ(it->second, value) << name;
    }

    // The run produced a valid, non-empty takomon file.
    MonReader r;
    ASSERT_TRUE(r.open(f.path())) << r.error();
    EXPECT_GT(r.sampleCount(), 0u);
    EXPECT_EQ(r.interval(), Tick{500});
}

TEST(MonSystem, TakomonBytesIdenticalAcrossShardCounts)
{
    ScratchFile f1("s1.takomon"), f2("s2.takomon"), f4("s4.takomon");
    const MonRunResult s1 = runDecompressMon(1, f1.path(), 500);
    const MonRunResult s2 = runDecompressMon(2, f2.path(), 500);
    const MonRunResult s4 = runDecompressMon(4, f4.path(), 500);

    ASSERT_FALSE(s1.monBytes.empty());
    EXPECT_EQ(s1.monBytes, s2.monBytes);
    EXPECT_EQ(s1.monBytes, s4.monBytes);

    // The post-run shard.* namespace describes each topology.
    EXPECT_EQ(s1.counters.at("shard.domains"), 1.0);
    EXPECT_EQ(s2.counters.at("shard.domains"), 2.0);
    EXPECT_EQ(s4.counters.at("shard.domains"), 4.0);
    EXPECT_GT(s4.counters.at("shard.d0.events"), 0.0);
    EXPECT_GE(s4.counters.at("shard.load_imbalance"), 1.0);
    EXPECT_GT(s4.counters.at("shard.events_mean"), 0.0);
    // events_max is the max over domains, so max/mean >= 1 holds by
    // construction; the checksum ties all three runs to one answer.
    EXPECT_EQ(s2.checksum, s1.checksum);
    EXPECT_EQ(s4.checksum, s1.checksum);
}
