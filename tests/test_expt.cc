/**
 * @file
 * Tests for the experiment-orchestration subsystem (src/expt): the JSON
 * reader, the spec parser's strict validation, golden-metric checking,
 * the multi-process runner (timeouts, retries, crash surfacing), and
 * end-to-end determinism of aggregated metrics across -j levels.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>

#include <cerrno>

#include <limits.h>
#include <sys/wait.h>
#include <unistd.h>

#include "expt/json.hh"
#include "expt/report.hh"
#include "expt/runner.hh"
#include "expt/spec.hh"

using namespace tako::expt;

namespace
{

/** Unique scratch dir per test, under TMPDIR. */
std::string
makeScratch()
{
    char tmpl[] = "/tmp/tako_expt_test_XXXXXX";
    const char *dir = ::mkdtemp(tmpl);
    EXPECT_NE(dir, nullptr);
    return dir;
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path);
    out << content;
}

RunCommand
shCommand(const std::string &name, const std::string &script,
          const std::string &scratch, double timeoutSec = 30,
          unsigned retries = 0)
{
    RunCommand cmd;
    cmd.name = name;
    cmd.argv = {"/bin/sh", "-c", script};
    cmd.outputJson = scratch + "/" + name + ".json";
    cmd.logPath = scratch + "/" + name + ".log";
    cmd.timeoutSec = timeoutSec;
    cmd.retries = retries;
    return cmd;
}

// ---------------------------------------------------------------- Json

TEST(ExptJson, ParsesNestedDocument)
{
    std::string err;
    Json doc = Json::parse(
        R"({"a": 1, "b": [true, null, "x\n"], "c": {"d": -2.5e2}})",
        &err);
    EXPECT_TRUE(err.empty()) << err;
    ASSERT_TRUE(doc.isObject());
    EXPECT_EQ(doc["a"].asNumber(), 1.0);
    ASSERT_TRUE(doc["b"].isArray());
    EXPECT_EQ(doc["b"].asArray().size(), 3u);
    EXPECT_TRUE(doc["b"].asArray()[0].asBool());
    EXPECT_TRUE(doc["b"].asArray()[1].isNull());
    EXPECT_EQ(doc["b"].asArray()[2].asString(), "x\n");
    EXPECT_EQ(doc["c"]["d"].asNumber(), -250.0);
    EXPECT_TRUE(doc["missing"].isNull());
}

TEST(ExptJson, RoundTripsThroughWriter)
{
    std::string err;
    Json doc = Json::parse(
        R"({"s": "q\"uote", "n": 0.5, "arr": [1, 2], "obj": {}})", &err);
    ASSERT_TRUE(err.empty()) << err;
    Json again = Json::parse(doc.str(), &err);
    EXPECT_TRUE(err.empty()) << err;
    EXPECT_EQ(doc.str(), again.str());
    EXPECT_EQ(again["s"].asString(), "q\"uote");
}

TEST(ExptJson, ReportsErrorsWithLineNumbers)
{
    std::string err;
    EXPECT_TRUE(Json::parse("{\n  \"a\": 1,\n  bad\n}", &err).isNull());
    EXPECT_NE(err.find("line 3"), std::string::npos) << err;

    EXPECT_TRUE(Json::parse("{\"a\": 1} trailing", &err).isNull());
    EXPECT_NE(err.find("trailing"), std::string::npos);

    EXPECT_TRUE(Json::parse(R"({"a": 1, "a": 2})", &err).isNull());
    EXPECT_NE(err.find("duplicate"), std::string::npos);

    EXPECT_TRUE(Json::parse(R"({"a": )", &err).isNull());
    EXPECT_FALSE(err.empty());

    EXPECT_TRUE(Json::parse("", &err).isNull());
    EXPECT_FALSE(err.empty());
}

// ---------------------------------------------------------------- Spec

const char *kValidSpec = R"({
  "suite": "demo",
  "defaults": {"timeout_sec": 45, "retries": 2, "quick": true},
  "runs": [
    {"name": "f6", "bench": "fig06_decompression",
     "golden": {"tako.speedup": {"value": 2.5, "rel_tol": 0.2},
                "tako.correct": 1}},
    {"name": "sim", "takosim": {"workload": "decompress",
                                "variant": "tako", "seed": 7},
     "timeout_sec": 90, "quick": false}
  ]
})";

TEST(ExptSpec, ParsesValidSuite)
{
    std::string err;
    SuiteSpec spec;
    ASSERT_TRUE(SuiteSpec::parse(Json::parse(kValidSpec), spec, err))
        << err;
    EXPECT_EQ(spec.suite, "demo");
    ASSERT_EQ(spec.runs.size(), 2u);

    const RunSpec &f6 = spec.runs[0];
    EXPECT_EQ(f6.kind, RunKind::Bench);
    EXPECT_EQ(f6.target, "fig06_decompression");
    EXPECT_TRUE(f6.quick);             // inherited from defaults
    EXPECT_EQ(f6.timeoutSec, 45.0);    // inherited
    EXPECT_EQ(f6.retries, 2u);         // inherited
    ASSERT_EQ(f6.golden.size(), 2u);
    EXPECT_EQ(f6.golden.at("tako.speedup").value, 2.5);
    EXPECT_EQ(f6.golden.at("tako.speedup").relTol, 0.2);
    EXPECT_EQ(f6.golden.at("tako.correct").value, 1.0);
    EXPECT_EQ(f6.golden.at("tako.correct").relTol, 0.0);

    const RunSpec &sim = spec.runs[1];
    EXPECT_EQ(sim.kind, RunKind::Takosim);
    EXPECT_EQ(sim.target, "decompress");
    EXPECT_FALSE(sim.quick);           // per-run override
    EXPECT_EQ(sim.timeoutSec, 90.0);   // per-run override
    // workload is the target, not a duplicated argument.
    for (const auto &[k, v] : sim.args)
        EXPECT_NE(k, "workload");
    bool saw_variant = false;
    for (const auto &[k, v] : sim.args)
        saw_variant |= (k == "variant" && v == "tako");
    EXPECT_TRUE(saw_variant);
}

TEST(ExptSpec, RejectsMalformedSpecs)
{
    auto fails = [](const std::string &text, const std::string &expect) {
        std::string err;
        SuiteSpec spec;
        EXPECT_FALSE(
            SuiteSpec::parse(Json::parse("{\"suite\": \"s\", " + text +
                                         "}"),
                             spec, err))
            << text;
        EXPECT_NE(err.find(expect), std::string::npos)
            << "error was: " << err;
    };

    // Misspelled key at run scope.
    fails(R"("runs": [{"name": "a", "bench": "x", "timeout_secs": 9}])",
          "unknown key \"timeout_secs\"");
    // Neither bench nor takosim.
    fails(R"("runs": [{"name": "a"}])", "exactly one");
    // Both bench and takosim.
    fails(R"("runs": [{"name": "a", "bench": "x",
                       "takosim": {"workload": "w"}}])",
          "exactly one");
    // Duplicate run names.
    fails(R"("runs": [{"name": "a", "bench": "x"},
                      {"name": "a", "bench": "y"}])",
          "duplicate");
    // Missing workload.
    fails(R"("runs": [{"name": "a", "takosim": {"variant": "t"}}])",
          "workload");
    // Bad golden tolerance.
    fails(R"("runs": [{"name": "a", "bench": "x",
                       "golden": {"m": {"value": 1, "rel_tol": -1}}}])",
          ">= 0");
    // Golden without a value.
    fails(R"("runs": [{"name": "a", "bench": "x",
                       "golden": {"m": {"rel_tol": 0.5}}}])",
          "value");
    // Empty runs array.
    fails(R"("runs": [])", "non-empty");

    std::string err;
    SuiteSpec spec;
    EXPECT_FALSE(SuiteSpec::parse(Json::parse(R"({"runs": []})"), spec,
                                  err));
    EXPECT_FALSE(SuiteSpec::parse(Json::parse("[1, 2]"), spec, err));
    // Top-level typo.
    EXPECT_FALSE(SuiteSpec::parse(
        Json::parse(R"({"suite": "s", "run": []})"), spec, err));
    EXPECT_NE(err.find("unknown key"), std::string::npos);
}

TEST(ExptSpec, ParsesExtrasAndRejectsBadShapes)
{
    std::string err;
    SuiteSpec spec;
    ASSERT_TRUE(SuiteSpec::parse(
        Json::parse(R"({
          "suite": "s",
          "runs": [{"name": "a", "bench": "x",
                    "extras": ["prof.cb.count", "prof.noc.link.busy_max"]}]
        })"),
        spec, err))
        << err;
    ASSERT_EQ(spec.runs[0].extras.size(), 2u);
    EXPECT_EQ(spec.runs[0].extras[0], "prof.cb.count");

    // Not an array.
    EXPECT_FALSE(SuiteSpec::parse(
        Json::parse(R"({"suite": "s",
          "runs": [{"name": "a", "bench": "x", "extras": "m"}]})"),
        spec, err));
    EXPECT_NE(err.find("extras"), std::string::npos);
    // Non-string entry.
    EXPECT_FALSE(SuiteSpec::parse(
        Json::parse(R"({"suite": "s",
          "runs": [{"name": "a", "bench": "x", "extras": [1]}]})"),
        spec, err));
    EXPECT_NE(err.find("extras"), std::string::npos);
}

TEST(ExptSpec, GoldenToleranceSemantics)
{
    GoldenMetric exact{4.0, 0, 0};
    EXPECT_TRUE(exact.accepts(4.0));
    EXPECT_FALSE(exact.accepts(4.0001));

    GoldenMetric rel{100.0, 0.1, 0};
    EXPECT_TRUE(rel.accepts(109.9));
    EXPECT_TRUE(rel.accepts(90.1));
    EXPECT_FALSE(rel.accepts(111.0));

    GoldenMetric abs{0.0, 0.5, 2.0}; // rel slack of 0 value -> abs wins
    EXPECT_TRUE(abs.accepts(1.9));
    EXPECT_FALSE(abs.accepts(2.1));
}

// -------------------------------------------------------------- Report

TEST(ExptReport, ExtractsBothChildFormats)
{
    Json bench = Json::parse(
        R"({"bench": "f", "metrics": {"a.speedup": 2, "a.cycles": 10},
            "rows": []})");
    auto m1 = extractMetrics(bench);
    EXPECT_EQ(m1.size(), 2u);
    EXPECT_EQ(m1.at("a.speedup"), 2.0);

    Json stats = Json::parse(
        R"({"counters": {"core.instrs": {"value": 42, "unit": "instr"},
                         "dram.reads": {"value": 7}},
            "histograms": {"lat": {"count": 3, "sum": 30, "mean": 10,
                                   "max": 20, "bucket_width": 8,
                                   "buckets": [1, 2]}}})");
    auto m2 = extractMetrics(stats);
    EXPECT_EQ(m2.at("core.instrs"), 42.0);
    EXPECT_EQ(m2.at("dram.reads"), 7.0);
    EXPECT_EQ(m2.at("lat.mean"), 10.0);
    EXPECT_EQ(m2.at("lat.count"), 3.0);
}

TEST(ExptReport, JudgesGoldenAndSurfacesFailures)
{
    const std::string scratch = makeScratch();
    SuiteSpec spec;
    std::string err;
    ASSERT_TRUE(SuiteSpec::parse(
        Json::parse(R"({
          "suite": "s",
          "runs": [
            {"name": "good", "bench": "b1",
             "golden": {"m": {"value": 10, "rel_tol": 0.2}}},
            {"name": "drifted", "bench": "b2",
             "golden": {"m": {"value": 10, "rel_tol": 0.05}}},
            {"name": "absent", "bench": "b3", "golden": {"nope": 1}},
            {"name": "crashed", "bench": "b4"}
          ]})"),
        spec, err))
        << err;

    std::vector<std::string> outputs;
    for (const char *name : {"good", "drifted", "absent", "crashed"})
        outputs.push_back(scratch + "/" + name + ".json");
    writeFile(outputs[0], R"({"metrics": {"m": 11}})");   // within 20%
    writeFile(outputs[1], R"({"metrics": {"m": 11}})");   // outside 5%
    writeFile(outputs[2], R"({"metrics": {"m": 11}})");   // key missing

    std::vector<RunOutcome> outcomes(4);
    for (std::size_t i = 0; i < 4; ++i) {
        outcomes[i].name = spec.runs[i].name;
        outcomes[i].status = RunStatus::Ok;
        outcomes[i].attempts = 1;
    }
    outcomes[3].status = RunStatus::Crashed;
    outcomes[3].exitCode = 11;

    SuiteReport rep = buildReport(spec, outcomes, outputs, 4, 1.0, "rev");
    ASSERT_EQ(rep.runs.size(), 4u);
    EXPECT_TRUE(rep.runs[0].pass);
    EXPECT_FALSE(rep.runs[1].pass);
    EXPECT_FALSE(rep.runs[2].pass);
    EXPECT_TRUE(rep.runs[2].checks[0].missing);
    EXPECT_FALSE(rep.runs[3].pass);
    EXPECT_NE(rep.runs[3].error.find("crashed"), std::string::npos);
    EXPECT_EQ(rep.numPassed(), 1u);
    EXPECT_FALSE(rep.pass()); // => takobench exits nonzero

    // The report document carries the verdicts.
    Json doc = rep.toJson();
    EXPECT_EQ(doc["schema"].asString(), "takobench-v1");
    EXPECT_EQ(doc["failed"].asNumber(), 3.0);
    EXPECT_EQ(doc["runs"].asArray().size(), 4u);
    EXPECT_EQ(doc["runs"].asArray()[1]["golden"]
                  .asArray()[0]["pass"]
                  .asBool(),
              false);
}

TEST(ExptReport, ExtrasRecordedButNeverGate)
{
    const std::string scratch = makeScratch();
    SuiteSpec spec;
    std::string err;
    ASSERT_TRUE(SuiteSpec::parse(
        Json::parse(R"({
          "suite": "s",
          "runs": [{"name": "r", "bench": "b",
                    "golden": {"m": 10},
                    "extras": ["prof.cb.count", "prof.absent"]}]})"),
        spec, err))
        << err;

    const std::string out = scratch + "/r.json";
    writeFile(out, R"({"metrics": {"m": 10, "prof.cb.count": 7}})");
    std::vector<RunOutcome> outcomes(1);
    outcomes[0].name = "r";
    outcomes[0].status = RunStatus::Ok;
    outcomes[0].attempts = 1;

    SuiteReport rep = buildReport(spec, outcomes, {out}, 1, 1.0, "rev");
    ASSERT_EQ(rep.runs.size(), 1u);
    // Missing extra does not fail the run.
    EXPECT_TRUE(rep.runs[0].pass);
    EXPECT_EQ(rep.runs[0].extras.at("prof.cb.count"), 7.0);
    ASSERT_EQ(rep.runs[0].extrasMissing.size(), 1u);
    EXPECT_EQ(rep.runs[0].extrasMissing[0], "prof.absent");

    Json doc = rep.toJson();
    const Json &run = doc["runs"].asArray()[0];
    EXPECT_EQ(run["extras"]["prof.cb.count"].asNumber(), 7.0);
    EXPECT_EQ(run["extras_missing"].asArray()[0].asString(),
              "prof.absent");
}

// -------------------------------------------------------------- Runner

TEST(ExptRunner, RunsChildrenAndCapturesOutput)
{
    const std::string scratch = makeScratch();
    std::vector<RunCommand> cmds = {
        shCommand("ok", "echo '{\"metrics\": {\"x\": 1}}' > " + scratch +
                            "/ok.json; echo hello",
                  scratch),
        shCommand("fails", "exit 3", scratch),
    };
    auto outcomes = runAll(cmds, 2);
    ASSERT_EQ(outcomes.size(), 2u);
    EXPECT_EQ(outcomes[0].status, RunStatus::Ok);
    EXPECT_EQ(outcomes[0].attempts, 1u);
    EXPECT_EQ(outcomes[1].status, RunStatus::Failed);
    EXPECT_EQ(outcomes[1].exitCode, 3);

    // stdout went to the log file.
    std::ifstream log(scratch + "/ok.log");
    std::string line;
    std::getline(log, line);
    EXPECT_EQ(line, "hello");
}

TEST(ExptRunner, UnknownBinaryIsMissingNotFatal)
{
    const std::string scratch = makeScratch();
    RunCommand cmd;
    cmd.name = "ghost";
    cmd.argv = {"/no/such/bench_binary"};
    cmd.timeoutSec = 5;
    auto outcomes = runAll({cmd}, 1);
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_EQ(outcomes[0].status, RunStatus::MissingBinary);
}

TEST(ExptRunner, CrashIsReportedWithSignal)
{
    const std::string scratch = makeScratch();
    auto outcomes =
        runAll({shCommand("sig", "kill -SEGV $$", scratch)}, 1);
    EXPECT_EQ(outcomes[0].status, RunStatus::Crashed);
    EXPECT_EQ(outcomes[0].exitCode, SIGSEGV);
    EXPECT_EQ(outcomes[0].attempts, 1u); // retries=0 in shCommand
}

TEST(ExptRunner, TimeoutFiresAndKills)
{
    const std::string scratch = makeScratch();
    auto cmd = shCommand("slow", "sleep 30", scratch, /*timeout=*/0.3);
    const auto t0 = std::chrono::steady_clock::now();
    auto outcomes = runAll({cmd}, 1);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    EXPECT_EQ(outcomes[0].status, RunStatus::TimedOut);
    EXPECT_LT(wall, 10.0); // killed, not waited out
}

TEST(ExptRunner, RetriesCrashThenSucceeds)
{
    const std::string scratch = makeScratch();
    // First attempt: no marker -> create it and die. Second: succeed.
    const std::string script =
        "if [ -e " + scratch + "/marker ]; then echo '{\"metrics\":{}}' "
        "> " + scratch + "/retry.json; else touch " + scratch +
        "/marker; kill -KILL $$; fi";
    auto cmd = shCommand("retry", script, scratch, 30, /*retries=*/2);
    auto outcomes = runAll({cmd}, 1);
    EXPECT_EQ(outcomes[0].status, RunStatus::Ok);
    EXPECT_EQ(outcomes[0].attempts, 2u);
}

TEST(ExptRunner, CleanFailureIsNotRetried)
{
    const std::string scratch = makeScratch();
    auto cmd = shCommand("nope", "exit 1", scratch, 30, /*retries=*/3);
    auto outcomes = runAll({cmd}, 1);
    EXPECT_EQ(outcomes[0].status, RunStatus::Failed);
    EXPECT_EQ(outcomes[0].attempts, 1u);
}

/** Clears the spawn-failure seam even when an assertion bails out. */
struct SpawnHookGuard
{
    ~SpawnHookGuard() { setSpawnFailureHook({}); }
};

TEST(ExptRunner, SpawnFailureIsRetriedThenSucceeds)
{
    const std::string scratch = makeScratch();
    SpawnHookGuard guard;
    // First fork "fails" with EAGAIN; the retry path must pick the run
    // back up instead of reporting a code-0 crash.
    setSpawnFailureHook([](const RunCommand &, unsigned attempt) {
        return attempt == 1 ? EAGAIN : 0;
    });
    auto cmd = shCommand("spawnretry", "exit 0", scratch, 30,
                         /*retries=*/2);
    auto outcomes = runAll({cmd}, 1);
    EXPECT_EQ(outcomes[0].status, RunStatus::Ok);
    EXPECT_EQ(outcomes[0].attempts, 2u);
}

TEST(ExptRunner, SpawnFailureExhaustsRetriesWithErrno)
{
    const std::string scratch = makeScratch();
    SpawnHookGuard guard;
    setSpawnFailureHook(
        [](const RunCommand &, unsigned) { return EAGAIN; });
    auto cmd = shCommand("spawnfail", "exit 0", scratch, 30,
                         /*retries=*/2);
    auto outcomes = runAll({cmd}, 1);
    EXPECT_EQ(outcomes[0].status, RunStatus::Crashed);
    EXPECT_EQ(outcomes[0].exitCode, EAGAIN); // errno, not 0
    EXPECT_EQ(outcomes[0].attempts, 3u);     // 1 + retries
}

TEST(ExptRunner, StrayChildIsReapedWithoutDisturbingRuns)
{
    const std::string scratch = makeScratch();
    // A child the runner never spawned: its pid is not in the run
    // table, so the pool's waitpid(-1) sees it as a stray.
    const pid_t stray = ::fork();
    if (stray == 0)
        ::_exit(0);
    ASSERT_GT(stray, 0);
    // Keep the real run alive long enough that the stray is reaped
    // mid-loop rather than after the pool drains.
    auto cmd = shCommand("real", "sleep 0.3; exit 0", scratch);
    auto outcomes = runAll({cmd}, 1);
    EXPECT_EQ(outcomes[0].status, RunStatus::Ok);
    EXPECT_EQ(outcomes[0].attempts, 1u);
    // The runner consumed (and logged) the stray: it is gone.
    int wstatus = 0;
    EXPECT_EQ(::waitpid(stray, &wstatus, WNOHANG), -1);
    EXPECT_EQ(errno, ECHILD);
}

TEST(ExptRunner, WallTimeAccumulatesAcrossAttempts)
{
    const std::string scratch = makeScratch();
    // First attempt burns the full 0.4s timeout; the retry finishes in
    // milliseconds. Total wall must cover both, not just the final try.
    const std::string script =
        "if [ -e " + scratch + "/marker ]; then exit 0; "
        "else touch " + scratch + "/marker; sleep 30; fi";
    auto cmd = shCommand("wall", script, scratch, /*timeout=*/0.4,
                         /*retries=*/1);
    auto outcomes = runAll({cmd}, 1);
    EXPECT_EQ(outcomes[0].status, RunStatus::Ok);
    EXPECT_EQ(outcomes[0].attempts, 2u);
    EXPECT_GE(outcomes[0].wallSec, 0.4);
}

TEST(ExptRunner, ParallelismPreservesOrderAndResults)
{
    const std::string scratch = makeScratch();
    // 8 children writing distinct metrics; outcomes and aggregated
    // metrics must be identical (and in submission order) at any -j.
    auto make = [&](const std::string &suffix) {
        std::vector<RunCommand> cmds;
        for (int i = 0; i < 8; ++i) {
            const std::string name =
                "r" + std::to_string(i) + suffix;
            cmds.push_back(shCommand(
                name,
                "echo '{\"metrics\": {\"v\": " + std::to_string(i * 11) +
                    "}}' > " + scratch + "/" + name + ".json",
                scratch));
        }
        return cmds;
    };

    auto seq_cmds = make("_seq");
    auto par_cmds = make("_par");
    auto seq = runAll(seq_cmds, 1);
    auto par = runAll(par_cmds, 8);
    ASSERT_EQ(seq.size(), par.size());
    for (std::size_t i = 0; i < seq.size(); ++i) {
        EXPECT_EQ(seq[i].status, par[i].status);
        std::string e1, e2;
        Json s = Json::parseFile(seq_cmds[i].outputJson, &e1);
        Json p = Json::parseFile(par_cmds[i].outputJson, &e2);
        ASSERT_TRUE(e1.empty() && e2.empty()) << e1 << e2;
        EXPECT_EQ(s["metrics"]["v"].asNumber(),
                  p["metrics"]["v"].asNumber());
    }
}

// -------------------------------------- end-to-end with real binaries

/** build/tests/<this binary> -> build/tools/takosim, if built. */
std::string
siblingTakosim()
{
    char buf[PATH_MAX];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n <= 0)
        return "";
    buf[n] = '\0';
    std::string dir(buf);
    const auto slash = dir.rfind('/');
    dir = slash == std::string::npos ? "." : dir.substr(0, slash);
    const std::string candidate = dir + "/../tools/takosim";
    return ::access(candidate.c_str(), X_OK) == 0 ? candidate : "";
}

TEST(ExptEndToEnd, SameSpecSameSeedIdenticalMetricsAcrossJobLevels)
{
    const std::string takosim = siblingTakosim();
    if (takosim.empty())
        GTEST_SKIP() << "takosim binary not found next to tests";

    const std::string scratch = makeScratch();
    auto makeCmds = [&](const std::string &suffix) {
        std::vector<RunCommand> cmds;
        for (const char *variant : {"baseline", "tako"}) {
            RunCommand cmd;
            cmd.name = std::string("decompress-") + variant + suffix;
            cmd.outputJson = scratch + "/" + cmd.name + ".json";
            cmd.logPath = scratch + "/" + cmd.name + ".log";
            cmd.timeoutSec = 120;
            cmd.argv = {takosim, "--workload=decompress",
                        std::string("--variant=") + variant, "--seed=3",
                        "--stats-json=" + cmd.outputJson};
            cmds.push_back(cmd);
        }
        return cmds;
    };

    auto j1_cmds = makeCmds("_j1");
    auto j8_cmds = makeCmds("_j8");
    auto j1 = runAll(j1_cmds, 1);
    auto j8 = runAll(j8_cmds, 8);
    for (std::size_t i = 0; i < j1.size(); ++i) {
        ASSERT_EQ(j1[i].status, RunStatus::Ok)
            << "run " << j1[i].name << " failed";
        ASSERT_EQ(j8[i].status, RunStatus::Ok)
            << "run " << j8[i].name << " failed";
        std::string e1, e2;
        Json a = Json::parseFile(j1_cmds[i].outputJson, &e1);
        Json b = Json::parseFile(j8_cmds[i].outputJson, &e2);
        ASSERT_TRUE(e1.empty() && e2.empty()) << e1 << e2;
        // Byte-identical metric extraction: parallel fan-out must not
        // perturb the (single-process, seeded) simulations. host.*
        // gauges are wall-clock-derived and exempt by contract.
        auto ma = extractMetrics(a);
        auto mb = extractMetrics(b);
        auto dropHost = [](std::map<std::string, double> &m) {
            for (auto it = m.begin(); it != m.end();) {
                if (it->first.rfind("host.", 0) == 0)
                    it = m.erase(it);
                else
                    ++it;
            }
        };
        dropHost(ma);
        dropHost(mb);
        EXPECT_EQ(ma, mb);
        EXPECT_FALSE(ma.empty());
    }
}

} // namespace
