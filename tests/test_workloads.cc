/**
 * @file
 * End-to-end correctness tests for every case-study workload: each
 * variant must compute the same (host-verified) result, and the täkō
 * mechanisms (callbacks, flush, journal fallback, eviction guard) must
 * behave per the paper's semantics.
 */

#include <gtest/gtest.h>

#include "workloads/aos_soa.hh"
#include "workloads/decompress.hh"
#include "workloads/graph.hh"
#include "workloads/nvm_tx.hh"
#include "workloads/pagerank_pull.hh"
#include "workloads/pagerank_push.hh"
#include "workloads/prime_probe.hh"

using namespace tako;

namespace
{

/** Scaled-down system so small test inputs stress the hierarchy. */
SystemConfig
tinySystem(unsigned cores)
{
    SystemConfig cfg = SystemConfig::forCores(cores);
    cfg.mem.l1Size = 2 * 1024;
    cfg.mem.l2Size = 8 * 1024;
    cfg.mem.l3BankSize = 32 * 1024;
    return cfg;
}

} // namespace

TEST(GraphGen, StructureIsConsistent)
{
    GraphParams p;
    p.numVertices = 4096;
    p.avgDegree = 8;
    p.communitySize = 128;
    Graph g = makeCommunityGraph(p);
    EXPECT_EQ(g.rowPtr.size(), p.numVertices + 1);
    EXPECT_EQ(g.rowPtr.back(), g.numEdges);
    EXPECT_EQ(g.colIdx.size(), g.numEdges);
    for (std::uint64_t v : g.colIdx)
        EXPECT_LT(v, p.numVertices);
    // Average degree in the right ballpark.
    const double avg =
        static_cast<double>(g.numEdges) / p.numVertices;
    EXPECT_GT(avg, p.avgDegree * 0.5);
    EXPECT_LT(avg, p.avgDegree * 1.5);
    // Determinism.
    Graph g2 = makeCommunityGraph(p);
    EXPECT_EQ(g.colIdx, g2.colIdx);
}

TEST(Decompress, AllVariantsAgree)
{
    DecompressConfig cfg;
    cfg.numValues = 512;
    cfg.numIndices = 2048;
    const auto variants = {
        DecompressVariant::Baseline, DecompressVariant::Precompute,
        DecompressVariant::Ndc, DecompressVariant::Tako,
        DecompressVariant::TakoIdeal};
    double checksum = -1;
    for (auto v : variants) {
        RunMetrics m = runDecompress(v, cfg, tinySystem(4));
        EXPECT_EQ(m.extra["correct"], 1.0) << name(v);
        if (checksum < 0)
            checksum = m.extra["checksum"];
        EXPECT_EQ(m.extra["checksum"], checksum) << name(v);
        EXPECT_GT(m.cycles, 0u) << name(v);
    }
}

TEST(Decompress, RepeatRunsAreBitIdentical)
{
    // Kernel determinism gate: two in-process runs of the same seeded
    // workload must produce identical simulation stats. Only host.*
    // gauges (wall-clock derived) may differ; they must still exist.
    DecompressConfig cfg;
    cfg.numValues = 512;
    cfg.numIndices = 2048;
    RunMetrics a =
        runDecompress(DecompressVariant::Tako, cfg, tinySystem(4));
    RunMetrics b =
        runDecompress(DecompressVariant::Tako, cfg, tinySystem(4));
    ASSERT_TRUE(a.stats && b.stats);
    std::size_t compared = 0, host = 0;
    for (const auto &[name, c] : a.stats->counters()) {
        auto it = b.stats->counters().find(name);
        ASSERT_NE(it, b.stats->counters().end()) << name;
        if (name.rfind("host.", 0) == 0) {
            ++host;
            continue;
        }
        EXPECT_EQ(c.value(), it->second.value()) << name;
        ++compared;
    }
    EXPECT_EQ(a.stats->counters().size(), b.stats->counters().size());
    EXPECT_GE(host, 3u); // host.seconds, host.sim_events, host.events_per_sec
    EXPECT_GT(compared, 10u);
    for (const auto &[name, h] : a.stats->histograms()) {
        auto it = b.stats->histograms().find(name);
        ASSERT_NE(it, b.stats->histograms().end()) << name;
        EXPECT_EQ(h.count(), it->second.count()) << name;
        EXPECT_EQ(h.sum(), it->second.sum()) << name;
    }
}

TEST(Decompress, TakoMemoizesHotLines)
{
    DecompressConfig cfg;
    cfg.numValues = 512;
    cfg.numIndices = 4096;
    RunMetrics base =
        runDecompress(DecompressVariant::Baseline, cfg, tinySystem(4));
    RunMetrics tako =
        runDecompress(DecompressVariant::Tako, cfg, tinySystem(4));
    // Baseline decompresses per access; täkō only per miss (Fig. 7).
    EXPECT_EQ(base.extra["decompressions"], 4096.0);
    EXPECT_LT(tako.extra["decompressions"],
              base.extra["decompressions"] / 2);
}

TEST(PagerankPush, AllVariantsMatchReference)
{
    PagerankPushConfig cfg;
    cfg.graph.numVertices = 4096;
    cfg.graph.avgDegree = 8;
    cfg.graph.communitySize = 128;
    cfg.threads = 4;
    cfg.regionVertices = 512;
    for (auto v : {PushVariant::Baseline, PushVariant::UpdateBatching,
                   PushVariant::Phi, PushVariant::PhiIdeal}) {
        RunMetrics m = runPagerankPush(v, cfg, tinySystem(4));
        EXPECT_EQ(m.extra["correct"], 1.0) << name(v);
    }
}

TEST(PagerankPush, PhiBuffersAndBins)
{
    PagerankPushConfig cfg;
    cfg.graph.numVertices = 8192;
    cfg.graph.avgDegree = 8;
    cfg.graph.communitySize = 256;
    cfg.threads = 4;
    cfg.regionVertices = 1024;
    RunMetrics m = runPagerankPush(PushVariant::Phi, cfg, tinySystem(4));
    ASSERT_EQ(m.extra["correct"], 1.0);
    // The phantom accumulators exceed the tiny L3: the writeback policy
    // must have exercised both paths.
    EXPECT_GT(m.extra["inPlaceLines"] + m.extra["binnedUpdates"], 0.0);
}

TEST(PagerankPull, AllVariantsMatchReference)
{
    PagerankPullConfig cfg;
    cfg.graph.numVertices = 2048;
    cfg.graph.avgDegree = 6;
    cfg.graph.communitySize = 128;
    for (auto v :
         {PullVariant::VertexOrdered, PullVariant::SoftwareBdfs,
          PullVariant::Hats, PullVariant::HatsIdeal}) {
        RunMetrics m = runPagerankPull(v, cfg, tinySystem(4));
        EXPECT_EQ(m.extra["correct"], 1.0) << name(v);
    }
}

TEST(PagerankPull, HatsRecoversEvictedEdges)
{
    // Tiny caches + a larger graph: stream lines will be evicted before
    // consumption, exercising the lost-edge log (Table 5).
    PagerankPullConfig cfg;
    cfg.graph.numVertices = 8192;
    cfg.graph.avgDegree = 8;
    cfg.graph.communitySize = 128;
    SystemConfig sys = tinySystem(4);
    sys.mem.l2Size = 4 * 1024;
    RunMetrics m = runPagerankPull(PullVariant::Hats, cfg, sys);
    EXPECT_EQ(m.extra["correct"], 1.0)
        << "edges logged: " << m.extra["edgesLogged"];
}

TEST(NvmTx, BothVariantsPersistAllTransactions)
{
    NvmTxConfig cfg;
    cfg.txBytes = 2048;
    cfg.numTx = 6;
    for (auto v :
         {NvmVariant::Journaling, NvmVariant::Tako, NvmVariant::TakoIdeal}) {
        RunMetrics m = runNvmTx(v, cfg, tinySystem(4));
        EXPECT_EQ(m.extra["correct"], 1.0) << name(v);
    }
}

TEST(NvmTx, SmallTxAvoidsJournaling)
{
    NvmTxConfig cfg;
    cfg.txBytes = 1024; // fits the tiny L2
    cfg.numTx = 4;
    SystemConfig sys = tinySystem(4);
    RunMetrics m = runNvmTx(NvmVariant::Tako, cfg, sys);
    EXPECT_EQ(m.extra["correct"], 1.0);
    EXPECT_EQ(m.extra["journaledLines"], 0.0);
    EXPECT_GT(m.extra["directLines"], 0.0);
}

TEST(NvmTx, OversizedTxFallsBackToJournal)
{
    NvmTxConfig cfg;
    cfg.txBytes = 32 * 1024; // >> tiny 8KB L2
    cfg.numTx = 3;
    RunMetrics m = runNvmTx(NvmVariant::Tako, cfg, tinySystem(4));
    EXPECT_EQ(m.extra["correct"], 1.0);
    EXPECT_GT(m.extra["journaledLines"], 0.0);
}

TEST(PrimeProbe, BaselineLeaksTakoDetects)
{
    PrimeProbeConfig cfg;
    cfg.rounds = 32;
    SystemConfig sys = tinySystem(4);

    PrimeProbeResult base = runPrimeProbe(false, cfg, sys);
    EXPECT_FALSE(base.detected);
    // The attacker recovers the victim's secret access pattern.
    EXPECT_GT(base.metrics.extra["attackAccuracy"], 0.8);
    EXPECT_GT(base.trueLeaks, cfg.rounds / 4);

    PrimeProbeResult tako = runPrimeProbe(true, cfg, sys);
    EXPECT_TRUE(tako.detected);
    EXPECT_FALSE(tako.evictionTrace.empty());
    // Detection fires at the first leak attempt: at most a couple of
    // secret bits escape before the victim defends itself (Fig. 21).
    EXPECT_LE(tako.trueLeaks, 2u);
    EXPECT_LT(tako.trueLeaks, base.trueLeaks);
}

TEST(AosSoa, GatherIsCorrectUnderBothPolicies)
{
    AosSoaConfig cfg;
    cfg.numElems = 2048;
    cfg.hotBytes = 2048;
    for (bool low : {true, false}) {
        RunMetrics m = runAosSoa(low, cfg, tinySystem(4));
        EXPECT_EQ(m.extra["correct"], 1.0) << (low ? "trrip" : "srrip");
    }
}

TEST(AosSoa, LowPriorityInsertionHelps)
{
    AosSoaConfig cfg;
    cfg.numElems = 8 * 1024;
    cfg.hotBytes = 4096;
    cfg.hotAccessesPerLine = 24;
    SystemConfig sys = tinySystem(4);
    sys.mem.l2Size = 8 * 1024;   // hot set fits only without pollution
    sys.mem.l3BankSize = 4 * 1024;
    RunMetrics trrip = runAosSoa(true, cfg, sys);
    RunMetrics srrip = runAosSoa(false, cfg, sys);
    EXPECT_LT(trrip.cycles, srrip.cycles);
}
