/**
 * @file
 * Fig. 23: HATS sensitivity to arithmetic-PE execution latency on the
 * 5x5 fabric. Paper: with 8-cycle PEs the HATS speedup only drops from
 * 43% to ~30% — memory-level parallelism, not arithmetic throughput, is
 * what matters for täkō (Sec. 5.3).
 */

#include "bench/bench_common.hh"
#include "workloads/pagerank_pull.hh"

using namespace tako;

int
main(int argc, char **argv)
{
    setVerbose(false);
    bench::Reporter rep(argc, argv, "fig23_pe_latency");
    PagerankPullConfig cfg;
    cfg.graph.numVertices = bench::quickMode() ? (1 << 12) : (1 << 14);
    cfg.graph.avgDegree = 20;
    cfg.graph.communitySize = 128;
    cfg.graph.intraProb = 0.95;

    SystemConfig base_sys = bench::hatsSystem();
    RunMetrics baseline =
        runPagerankPull(PullVariant::VertexOrdered, cfg, base_sys);

    rep.title("Fig. 23: HATS vs. PE latency (5x5 fabric)");
    std::printf("%-12s %14s %10s\n", "peLatency", "cycles",
                "speedup vs vertex-ordered");
    for (Tick lat : {1, 2, 4, 8}) {
        SystemConfig sys = bench::hatsSystem();
        sys.engine.peLatency = lat;
        RunMetrics m = runPagerankPull(PullVariant::Hats, cfg, sys);
        std::printf("%-12llu %14llu %9.2fx\n", (unsigned long long)lat,
                    (unsigned long long)m.cycles, m.speedupOver(baseline));
        rep.row("pe" + std::to_string(lat),
                {{"cycles", static_cast<double>(m.cycles)},
                 {"speedup", m.speedupOver(baseline)}});
    }
    std::printf("\npaper: speedup 1.43x at 1 cycle, ~1.30x at 8 cycles\n");
    return 0;
}
