/**
 * @file
 * Fig. 19: NVM journaling microbenchmark at transaction sizes from 1KB
 * to 128KB. Paper: täkō up to 2.1x / -47% energy while transactions fit
 * the L2 (the cache is the journal); at 128KB the staging data spills
 * and onWriteback falls back to journaling, approaching the baseline
 * (but still ahead: the journal fills off the critical path).
 */

#include "bench/bench_common.hh"
#include "workloads/nvm_tx.hh"

using namespace tako;

int
main(int argc, char **argv)
{
    setVerbose(false);
    bench::Reporter rep(argc, argv, "fig19_nvm_tx");
    SystemConfig sys = SystemConfig::forCores(16);

    rep.title("Fig. 19: NVM transactions (speedup vs. journaling)");
    std::printf("%-10s %14s %14s %8s %8s %14s\n", "txBytes", "journaling",
                "tako", "speedup", "energy", "journaledLines");

    std::vector<std::uint64_t> sizes = {1024,         4 * 1024,
                                        16 * 1024,    32 * 1024,
                                        64 * 1024,    128 * 1024};
    if (bench::quickMode())
        sizes = {1024, 16 * 1024};

    for (std::uint64_t tx : sizes) {
        NvmTxConfig cfg;
        cfg.txBytes = tx;
        cfg.numTx = bench::quickMode() ? 4 : 16;
        RunMetrics base = runNvmTx(NvmVariant::Journaling, cfg, sys);
        RunMetrics tako = runNvmTx(NvmVariant::Tako, cfg, sys);
        std::printf("%-10llu %14llu %14llu %8.2f %8.2f %14.0f\n",
                    (unsigned long long)tx,
                    (unsigned long long)base.cycles,
                    (unsigned long long)tako.cycles,
                    tako.speedupOver(base), tako.energyVs(base),
                    tako.extra["journaledLines"]);
        if (base.extra["correct"] != 1.0 || tako.extra["correct"] != 1.0)
            std::printf("  !! RESULT MISMATCH at tx=%llu\n",
                        (unsigned long long)tx);
        rep.row("tx" + std::to_string(tx),
                {{"journaling_cycles", static_cast<double>(base.cycles)},
                 {"tako_cycles", static_cast<double>(tako.cycles)},
                 {"speedup", tako.speedupOver(base)},
                 {"energy", tako.energyVs(base)},
                 {"journaled_lines", tako.extra["journaledLines"]},
                 {"correct", base.extra["correct"] == 1.0 &&
                                     tako.extra["correct"] == 1.0
                                 ? 1.0
                                 : 0.0}});
    }
    std::printf("\npaper: up to 2.1x while tx fits L2 (128KB); "
                "fallback to journaling beyond\n");
    return 0;
}
