#include "bench/bench_common.hh"

#include <cstdlib>
#include <fstream>
#include <iostream>

#include "sim/stats.hh"

namespace tako::bench
{

namespace
{

/** Process-wide quick switch; env is parsed exactly once. */
bool &
quickFlag()
{
    static bool quick = [] {
        const char *q = std::getenv("TAKO_QUICK");
        return q && q[0] == '1';
    }();
    return quick;
}

[[noreturn]] void
usage(const std::string &bench, int code)
{
    std::fprintf(code ? stderr : stdout,
                 "usage: %s [--quick] [--json=FILE]\n"
                 "\n"
                 "  --quick       smoke-sized inputs (same as "
                 "TAKO_QUICK=1)\n"
                 "  --json=FILE   also write metrics as JSON "
                 "('-' for stdout)\n",
                 bench.c_str());
    std::exit(code);
}

void
writeRowValues(
    std::ostream &os,
    const std::vector<std::pair<std::string, double>> &values)
{
    for (const auto &[k, v] : values) {
        os << ", ";
        json::writeString(os, k);
        os << ": ";
        json::writeNumber(os, v);
    }
}

} // namespace

bool
quickMode()
{
    return quickFlag();
}

Reporter::Reporter(int argc, char **argv, std::string benchName)
    : bench_(std::move(benchName))
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            quickFlag() = true;
            // Keep the env var in sync for any code (or child) that
            // still looks at it.
            ::setenv("TAKO_QUICK", "1", 1);
        } else if (arg.rfind("--json=", 0) == 0) {
            jsonPath_ = arg.substr(7);
        } else if (arg == "--help" || arg == "-h") {
            usage(bench_, 0);
        } else {
            std::fprintf(stderr, "%s: unknown option '%s'\n\n",
                         bench_.c_str(), arg.c_str());
            usage(bench_, 2);
        }
    }
}

Reporter::~Reporter()
{
    if (!jsonPath_.empty())
        writeJson();
}

void
Reporter::title(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
    section_ = title;
}

void
Reporter::table(const std::vector<RunMetrics> &rows,
                const std::vector<std::string> &extras, std::size_t base)
{
    std::printf("%-16s %14s %8s %8s %12s %12s %12s", "variant", "cycles",
                "speedup", "energy", "dram", "coreInstr", "engInstr");
    for (const auto &e : extras)
        std::printf(" %14s", e.c_str());
    std::printf("\n");
    for (const auto &m : rows) {
        std::printf("%-16s %14llu %8.2f %8.2f %12llu %12llu %12llu",
                    m.label.c_str(), (unsigned long long)m.cycles,
                    m.speedupOver(rows[base]), m.energyVs(rows[base]),
                    (unsigned long long)m.dramAccesses(),
                    (unsigned long long)m.coreInstrs,
                    (unsigned long long)m.engineInstrs);
        for (const auto &e : extras) {
            auto it = m.extra.find(e);
            std::printf(" %14.3f", it == m.extra.end() ? 0.0 : it->second);
        }
        std::printf("\n");
        if (auto it = m.extra.find("correct");
            it != m.extra.end() && it->second != 1.0) {
            std::printf("  !! %s: RESULT MISMATCH\n", m.label.c_str());
        }

        // Record the row's full metric set, displayed or not.
        std::vector<std::pair<std::string, double>> vals = {
            {"cycles", static_cast<double>(m.cycles)},
            {"speedup", m.speedupOver(rows[base])},
            {"energy", m.energyVs(rows[base])},
            {"dram", static_cast<double>(m.dramAccesses())},
            {"core_instrs", static_cast<double>(m.coreInstrs)},
            {"engine_instrs", static_cast<double>(m.engineInstrs)},
        };
        for (const auto &[k, v] : m.extra)
            vals.emplace_back(k, v);
        row(m.label, vals);
    }
}

void
Reporter::row(const std::string &label,
              const std::vector<std::pair<std::string, double>> &values)
{
    rows_.push_back(Row{section_, label, values});
    for (const auto &[k, v] : values)
        metrics_[label + "." + k] = v;
}

void
Reporter::metric(const std::string &key, double value)
{
    metrics_[key] = value;
}

void
Reporter::writeJson() const
{
    std::ofstream file;
    const bool to_stdout = jsonPath_ == "-";
    if (!to_stdout) {
        file.open(jsonPath_);
        if (!file) {
            std::fprintf(stderr, "%s: cannot open '%s'\n", bench_.c_str(),
                         jsonPath_.c_str());
            // Destructor context: report and carry on; the aggregator
            // notices the missing file.
            return;
        }
    }
    std::ostream &os = to_stdout ? std::cout : file;

    os << "{\n  \"bench\": ";
    json::writeString(os, bench_);
    os << ",\n  \"quick\": " << (quickMode() ? "true" : "false");
    os << ",\n  \"metrics\": {";
    bool first = true;
    for (const auto &[k, v] : metrics_) {
        os << (first ? "\n" : ",\n") << "    ";
        first = false;
        json::writeString(os, k);
        os << ": ";
        json::writeNumber(os, v);
    }
    os << "\n  },\n  \"rows\": [";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
        const Row &r = rows_[i];
        os << (i ? ",\n    " : "\n    ") << "{\"section\": ";
        json::writeString(os, r.section);
        os << ", \"variant\": ";
        json::writeString(os, r.label);
        writeRowValues(os, r.values);
        os << "}";
    }
    os << "\n  ]\n}\n";
}

} // namespace tako::bench
