/**
 * @file
 * Fig. 7: number of decompressions executed by each implementation of
 * the Sec. 3 example. Baseline and NDC decompress on every access;
 * precompute decompresses every value (including never-accessed ones);
 * täkō decompresses only on phantom misses, memoizing hot lines.
 */

#include "bench/bench_common.hh"
#include "workloads/decompress.hh"

using namespace tako;

int
main(int argc, char **argv)
{
    setVerbose(false);
    bench::Reporter rep(argc, argv, "fig07_decompressions");
    DecompressConfig cfg;
    if (bench::quickMode()) {
        cfg.numValues = 2048;
        cfg.numIndices = 4096;
    }
    SystemConfig sys = SystemConfig::forCores(16);

    rep.title("Fig. 7: number of decompressions");
    std::printf("%-16s %16s %16s\n", "variant", "decompressions",
                "per-access");
    for (auto v : {DecompressVariant::Baseline,
                   DecompressVariant::Precompute, DecompressVariant::Ndc,
                   DecompressVariant::Tako}) {
        RunMetrics m = runDecompress(v, cfg, sys);
        const double per_access =
            m.extra["decompressions"] /
            static_cast<double>(cfg.numIndices);
        std::printf("%-16s %16.0f %16.3f\n", m.label.c_str(),
                    m.extra["decompressions"], per_access);
        rep.row(m.label, {{"decompressions", m.extra["decompressions"]},
                          {"per_access", per_access}});
    }
    std::printf("\npaper: tako well below baseline (memoization); "
                "precompute = all %llu values\n",
                (unsigned long long)cfg.numValues);
    return 0;
}
