/**
 * @file
 * Fig. 14: DRAM accesses per PageRank phase (edge / bin / vertex) for
 * the PHI case study. Paper: UB reduces total accesses by 43% via
 * binning; täkō by 60% by buffering updates in-cache and binning only
 * on poor spatial locality.
 */

#include "bench/bench_common.hh"
#include "workloads/pagerank_push.hh"

using namespace tako;

int
main(int argc, char **argv)
{
    setVerbose(false);
    bench::Reporter rep(argc, argv, "fig14_phi_dram");
    PagerankPushConfig cfg;
    cfg.graph.numVertices = bench::quickMode() ? (1 << 13) : (1 << 16);
    cfg.graph.avgDegree = 10;
    cfg.graph.communitySize = 512;
    cfg.threads = 16;
    cfg.regionVertices = 256;
    SystemConfig sys = bench::scaledGraphSystem(16);

    rep.title("Fig. 14: DRAM accesses per phase (PHI PageRank)");
    std::printf("%-16s %12s %12s %12s %12s %10s\n", "variant", "edge",
                "bin", "vertex", "total", "vs base");
    double base_total = 0;
    for (auto v : {PushVariant::Baseline, PushVariant::UpdateBatching,
                   PushVariant::Phi}) {
        RunMetrics m = runPagerankPush(v, cfg, sys);
        const double total = m.extra["dram.edge"] + m.extra["dram.bin"] +
                             m.extra["dram.vertex"];
        if (base_total == 0)
            base_total = total;
        const double vs_base_pct = 100.0 * (total / base_total - 1.0);
        std::printf("%-16s %12.0f %12.0f %12.0f %12.0f %9.0f%%\n",
                    m.label.c_str(), m.extra["dram.edge"],
                    m.extra["dram.bin"], m.extra["dram.vertex"], total,
                    vs_base_pct);
        rep.row(m.label, {{"dram.edge", m.extra["dram.edge"]},
                          {"dram.bin", m.extra["dram.bin"]},
                          {"dram.vertex", m.extra["dram.vertex"]},
                          {"dram.total", total},
                          {"vs_base_pct", vs_base_pct}});
    }
    std::printf("\npaper: UB -43%%, tako -60%% total DRAM accesses\n");
    return 0;
}
