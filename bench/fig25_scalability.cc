/**
 * @file
 * Fig. 25: PHI vs. update batching across core counts (8/16/36, memory
 * bandwidth scaling with cores) and graph sizes. Paper: täkō
 * outperforms UB by ~34% / 32% / 21% at 8 / 16 / 36 cores and improves
 * with data size.
 */

#include "bench/bench_common.hh"
#include "workloads/pagerank_push.hh"

using namespace tako;

namespace
{

void
runRow(bench::Reporter &rep, const char *label, unsigned cores,
       std::uint64_t vertices)
{
    PagerankPushConfig cfg;
    cfg.graph.numVertices = vertices;
    cfg.graph.avgDegree = 10;
    cfg.graph.communitySize = 512;
    cfg.threads = cores;
    cfg.regionVertices = 256;
    SystemConfig sys = bench::scaledGraphSystem(cores);

    RunMetrics ub =
        runPagerankPush(PushVariant::UpdateBatching, cfg, sys);
    RunMetrics phi = runPagerankPush(PushVariant::Phi, cfg, sys);
    const double vs_ub_pct = 100.0 * (phi.speedupOver(ub) - 1.0);
    std::printf("%-20s %14llu %14llu %13.0f%%\n", label,
                (unsigned long long)ub.cycles,
                (unsigned long long)phi.cycles, vs_ub_pct);
    rep.row(label, {{"ub_cycles", static_cast<double>(ub.cycles)},
                    {"tako_cycles", static_cast<double>(phi.cycles)},
                    {"tako_vs_ub_pct", vs_ub_pct}});
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    bench::Reporter rep(argc, argv, "fig25_scalability");
    const bool quick = tako::bench::quickMode();
    const std::uint64_t base_v = quick ? (1 << 13) : (1 << 14);

    rep.title("Fig. 25: PHI vs. UB across cores and data sizes");
    std::printf("%-20s %14s %14s %14s\n", "config", "UB cycles",
                "tako cycles", "tako vs UB");
    runRow(rep, "8 cores", 8, base_v);
    runRow(rep, "16 cores", 16, base_v);
    runRow(rep, "36 cores", 36, base_v);
    runRow(rep, "16c, edges/4", 16, base_v / 4);
    runRow(rep, "16c, edges x2", 16, quick ? base_v : base_v * 2);
    std::printf("\npaper: tako ahead of UB by ~34%%/32%%/21%% at "
                "8/16/36 cores; gap grows with data size\n");
    return 0;
}
