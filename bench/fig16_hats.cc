/**
 * @file
 * Fig. 16: HATS results for one PageRank iteration, single thread, on a
 * community-structured graph (standing in for uk-2002; see
 * EXPERIMENTS.md). Paper: software BDFS gives minimal benefit; täkō
 * +43% speedup / -17% energy; ideal +46% / -22%.
 */

#include "bench/bench_common.hh"
#include "workloads/pagerank_pull.hh"

using namespace tako;

int
main(int argc, char **argv)
{
    setVerbose(false);
    bench::Reporter rep(argc, argv, "fig16_hats");
    PagerankPullConfig cfg;
    cfg.graph.numVertices = bench::quickMode() ? (1 << 12) : (1 << 16);
    cfg.graph.avgDegree = 20;
    cfg.graph.communitySize = 128;
    cfg.graph.intraProb = 0.95;
    SystemConfig sys = bench::hatsSystem();

    std::vector<RunMetrics> rows;
    for (auto v : {PullVariant::VertexOrdered, PullVariant::SoftwareBdfs,
                   PullVariant::Hats, PullVariant::HatsIdeal}) {
        rows.push_back(runPagerankPull(v, cfg, sys));
    }

    rep.title("Fig. 16: HATS graph traversal (1 thread)");
    rep.table(rows, {"edgesLogged"});

    std::printf("\npaper: sw-bdfs ~1.0x, tako 1.43x, ideal 1.46x; "
                "energy -17%% (tako)\n");
    std::printf("here : sw-bdfs %.2fx, tako %.2fx, ideal %.2fx; "
                "energy %+.0f%% (tako)\n",
                rows[1].speedupOver(rows[0]), rows[2].speedupOver(rows[0]),
                rows[3].speedupOver(rows[0]),
                (rows[2].energyVs(rows[0]) - 1.0) * 100);
    return 0;
}
