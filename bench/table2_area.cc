/**
 * @file
 * Table 2: hardware overhead — täkō state added per L3 bank as a
 * fraction of the bank's capacity. Paper total: 27.1 KB / 512 KB = 5.3%.
 */

#include "bench/bench_common.hh"
#include "tako/area_model.hh"

#include <iostream>

using namespace tako;

int
main(int argc, char **argv)
{
    bench::Reporter rep(argc, argv, "table2_area");
    SystemConfig sys = SystemConfig::forCores(16);
    const AreaReport r = computeAreaReport(sys.mem, sys.engine);

    rep.title("Table 2: hardware overhead (state per L3 bank)");
    printAreaReport(std::cout, r);
    rep.row("area",
            {{"l3_tags_kb", r.l3TagBytes / 1024.0},
             {"engine_sram_kb", r.engineSramBytes / 1024.0},
             {"callback_buffer_kb", r.callbackBufferBytes / 1024.0},
             {"token_store_kb", r.tokenStoreBytes / 1024.0},
             {"instr_memory_kb", r.instrMemoryBytes / 1024.0},
             {"total_kb", r.totalBytes / 1024.0},
             {"overhead_pct", r.overheadFraction() * 100.0}});
    std::printf("\npaper: 27.1 KB / 512 KB = 5.3%%\n");
    return 0;
}
