/**
 * @file
 * Table 2: hardware overhead — täkō state added per L3 bank as a
 * fraction of the bank's capacity. Paper total: 27.1 KB / 512 KB = 5.3%.
 */

#include "bench/bench_common.hh"
#include "tako/area_model.hh"

#include <iostream>

using namespace tako;

int
main()
{
    SystemConfig sys = SystemConfig::forCores(16);
    const AreaReport r = computeAreaReport(sys.mem, sys.engine);

    bench::printTitle("Table 2: hardware overhead (state per L3 bank)");
    printAreaReport(std::cout, r);
    std::printf("\npaper: 27.1 KB / 512 KB = 5.3%%\n");
    return 0;
}
