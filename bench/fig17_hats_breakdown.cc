/**
 * @file
 * Fig. 17: HATS performance breakdown — DRAM accesses split by phase,
 * core branch mispredictions per edge, and core load latency. Paper:
 * BDFS-order traversals cut vertex-data misses in the edge phase; the
 * software BDFS pays heavily in mispredictions; täkō keeps core control
 * flow regular and load latency low.
 */

#include "bench/bench_common.hh"
#include "workloads/pagerank_pull.hh"

using namespace tako;

int
main(int argc, char **argv)
{
    setVerbose(false);
    bench::Reporter rep(argc, argv, "fig17_hats_breakdown");
    PagerankPullConfig cfg;
    cfg.graph.numVertices = bench::quickMode() ? (1 << 12) : (1 << 15);
    cfg.graph.avgDegree = 20;
    cfg.graph.communitySize = 128;
    cfg.graph.intraProb = 0.95;
    SystemConfig sys = bench::hatsSystem();

    rep.title("Fig. 17: HATS breakdown");
    std::printf("%-16s %12s %12s %16s %16s\n", "variant", "dram.edge",
                "dram.vertex", "mispredict/edge", "mean load lat");
    for (auto v : {PullVariant::VertexOrdered, PullVariant::SoftwareBdfs,
                   PullVariant::Hats}) {
        RunMetrics m = runPagerankPull(v, cfg, sys);
        std::printf("%-16s %12.0f %12.0f %16.3f %16.1f\n",
                    m.label.c_str(), m.extra["dram.edge"],
                    m.extra["dram.vertex"], m.extra["mispredictsPerEdge"],
                    m.extra["meanLoadLatency"]);
        rep.row(m.label,
                {{"dram.edge", m.extra["dram.edge"]},
                 {"dram.vertex", m.extra["dram.vertex"]},
                 {"mispredicts_per_edge", m.extra["mispredictsPerEdge"]},
                 {"mean_load_latency", m.extra["meanLoadLatency"]}});
    }
    std::printf("\npaper: BDFS/tako cut edge-phase DRAM accesses; "
                "sw-bdfs high mispredicts; tako lowest load latency\n");
    return 0;
}
