/**
 * @file
 * Fig. 6: execution time and dynamic energy of the Sec. 3 decompression
 * example — software baseline, software pre-computation, near-data
 * computing (NDC), täkō, and the idealized engine. 32K Zipfian indices
 * over 16K compressed values (Sec. 3.3). Paper: täkō -55% time / -61%
 * energy vs. baseline, -50% / -52% vs. precompute; NDC *hurts*; täkō
 * within 1.1% / 1.3% of ideal.
 */

#include "bench/bench_common.hh"
#include "workloads/decompress.hh"

using namespace tako;

int
main(int argc, char **argv)
{
    setVerbose(false);
    bench::Reporter rep(argc, argv, "fig06_decompression");
    DecompressConfig cfg;
    if (bench::quickMode()) {
        cfg.numValues = 2048;
        cfg.numIndices = 4096;
    }
    SystemConfig sys = SystemConfig::forCores(16);

    std::vector<RunMetrics> rows;
    for (auto v : {DecompressVariant::Baseline,
                   DecompressVariant::Precompute, DecompressVariant::Ndc,
                   DecompressVariant::Tako, DecompressVariant::TakoIdeal}) {
        rows.push_back(runDecompress(v, cfg, sys));
    }

    rep.title(
        "Fig. 6: in-cache decompression (speedup/energy vs. baseline)");
    rep.table(rows, {"decompressions"});

    const double tako_vs_base = rows[3].speedupOver(rows[0]);
    const double tako_vs_ideal =
        static_cast<double>(rows[3].cycles) / rows[4].cycles - 1.0;
    rep.metric("tako_vs_ideal_pct", 100.0 * tako_vs_ideal);
    std::printf("\npaper: tako 2.2x vs baseline, within 1.1%% of ideal; "
                "NDC below baseline\n");
    std::printf("here : tako %.2fx vs baseline, %.1f%% from ideal, "
                "NDC %.2fx\n",
                tako_vs_base, 100.0 * tako_vs_ideal,
                rows[2].speedupOver(rows[0]));
    return 0;
}
