/**
 * @file
 * Shared harness for the figure/table benches. Every bench routes its
 * paper-rows (speedup over the named baseline, normalized energy, the
 * figure-specific metric) through a Reporter, which emits the familiar
 * text tables on stdout and, when asked, a structured JSON row file
 * that takobench aggregates into BENCH_<suite>.json.
 *
 * Command line (parsed by the Reporter constructor):
 *   --quick        shrink inputs for smoke runs; equivalent to (and
 *                  kept in sync with) the TAKO_QUICK=1 environment
 *                  variable, so child-of-takobench and hand-run
 *                  invocations behave identically
 *   --json=FILE    write {bench, quick, metrics, rows} JSON to FILE
 *                  ('-' for stdout)
 */

#ifndef TAKO_BENCH_BENCH_COMMON_HH
#define TAKO_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "workloads/common.hh"

namespace tako::bench
{

/**
 * True when inputs should be smoke-sized. The TAKO_QUICK environment
 * variable is parsed once (not per call); a --quick flag seen by any
 * Reporter also turns this on for the whole process.
 */
bool quickMode();

/**
 * Table 3 system with caches scaled down 8x for the graph benches, so
 * the (scaled-down) graphs stand in the same footprint-to-LLC regime as
 * the paper's 16M-vertex graphs vs. an 8MB LLC (see EXPERIMENTS.md).
 */
inline SystemConfig
scaledGraphSystem(unsigned cores)
{
    SystemConfig cfg = SystemConfig::forCores(cores);
    cfg.mem.l1Size = 2 * 1024;
    cfg.mem.l2Size = 8 * 1024;
    cfg.mem.l3BankSize = 16 * 1024;
    return cfg;
}

/**
 * Scaling for the single-threaded HATS study: the LLC is scaled so the
 * vertex data exceeds it (the locality battleground), while the private
 * caches stay large enough to hold one community's working set —
 * matching the paper's regime (128KB L2 vs. ~tens-of-KB communities).
 */
inline SystemConfig
hatsSystem()
{
    SystemConfig cfg = SystemConfig::forCores(16);
    cfg.mem.l1Size = 16 * 1024;
    cfg.mem.l2Size = 64 * 1024;
    cfg.mem.l3BankSize = 8 * 1024; // 128KB: vertex data >> LLC
    return cfg;
}

/**
 * Per-bench output channel: text tables on stdout (unchanged from the
 * pre-takobench format) plus an optional structured JSON file.
 *
 * Metrics are flat "label.key" doubles ("tako.speedup",
 * "ideal.cycles", ...); golden entries in experiment specs reference
 * them by these names. The JSON file is written on destruction.
 */
class Reporter
{
  public:
    /** Parses --quick / --json / --help; exits 2 on unknown flags. */
    Reporter(int argc, char **argv, std::string benchName);
    ~Reporter();

    Reporter(const Reporter &) = delete;
    Reporter &operator=(const Reporter &) = delete;

    /** Begin a section: prints "=== title ===" like the old benches. */
    void title(const std::string &title);

    /**
     * Print one row per variant — cycles, speedup vs. rows[base],
     * energy normalized to rows[base], DRAM accesses, instructions,
     * plus any extra metrics named in @p extras — and record every
     * row's full metric set (including extras not displayed).
     */
    void table(const std::vector<RunMetrics> &rows,
               const std::vector<std::string> &extras = {},
               std::size_t base = 0);

    /**
     * Record one row of a bench-specific table (the caller prints its
     * own text). Values become metrics "<label>.<key>".
     */
    void row(const std::string &label,
             const std::vector<std::pair<std::string, double>> &values);

    /** Record one standalone headline metric. */
    void metric(const std::string &key, double value);

  private:
    void writeJson() const;

    std::string bench_;
    std::string jsonPath_;
    std::map<std::string, double> metrics_;
    /** (section, label, values) per recorded row, in emission order. */
    struct Row
    {
        std::string section;
        std::string label;
        std::vector<std::pair<std::string, double>> values;
    };
    std::vector<Row> rows_;
    std::string section_;
};

} // namespace tako::bench

#endif // TAKO_BENCH_BENCH_COMMON_HH
