/**
 * @file
 * Shared output helpers for the figure/table benches. Every bench prints
 * the same rows/series the paper reports: speedup over the named
 * baseline, normalized energy, and the figure-specific metric.
 *
 * Environment:
 *   TAKO_QUICK=1  shrink inputs for smoke runs (CI); default sizes are
 *                 chosen to finish in about a minute per bench.
 */

#ifndef TAKO_BENCH_BENCH_COMMON_HH
#define TAKO_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "workloads/common.hh"

namespace tako::bench
{

inline bool
quickMode()
{
    const char *q = std::getenv("TAKO_QUICK");
    return q && q[0] == '1';
}

/**
 * Table 3 system with caches scaled down 8x for the graph benches, so
 * the (scaled-down) graphs stand in the same footprint-to-LLC regime as
 * the paper's 16M-vertex graphs vs. an 8MB LLC (see EXPERIMENTS.md).
 */
inline SystemConfig
scaledGraphSystem(unsigned cores)
{
    SystemConfig cfg = SystemConfig::forCores(cores);
    cfg.mem.l1Size = 2 * 1024;
    cfg.mem.l2Size = 8 * 1024;
    cfg.mem.l3BankSize = 16 * 1024;
    return cfg;
}

/**
 * Scaling for the single-threaded HATS study: the LLC is scaled so the
 * vertex data exceeds it (the locality battleground), while the private
 * caches stay large enough to hold one community's working set —
 * matching the paper's regime (128KB L2 vs. ~tens-of-KB communities).
 */
inline SystemConfig
hatsSystem()
{
    SystemConfig cfg = SystemConfig::forCores(16);
    cfg.mem.l1Size = 16 * 1024;
    cfg.mem.l2Size = 64 * 1024;
    cfg.mem.l3BankSize = 8 * 1024; // 128KB: vertex data >> LLC
    return cfg;
}

inline void
printTitle(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

/**
 * Print one row per variant: cycles, speedup vs. rows[base], energy
 * normalized to rows[base], DRAM accesses, instructions, plus any extra
 * metrics named in @p extras.
 */
inline void
printMetricsTable(const std::vector<RunMetrics> &rows,
                  const std::vector<std::string> &extras = {},
                  std::size_t base = 0)
{
    std::printf("%-16s %14s %8s %8s %12s %12s %12s", "variant", "cycles",
                "speedup", "energy", "dram", "coreInstr", "engInstr");
    for (const auto &e : extras)
        std::printf(" %14s", e.c_str());
    std::printf("\n");
    for (const auto &m : rows) {
        std::printf("%-16s %14llu %8.2f %8.2f %12llu %12llu %12llu",
                    m.label.c_str(), (unsigned long long)m.cycles,
                    m.speedupOver(rows[base]), m.energyVs(rows[base]),
                    (unsigned long long)m.dramAccesses(),
                    (unsigned long long)m.coreInstrs,
                    (unsigned long long)m.engineInstrs);
        for (const auto &e : extras) {
            auto it = m.extra.find(e);
            std::printf(" %14.3f", it == m.extra.end() ? 0.0 : it->second);
        }
        std::printf("\n");
        if (auto it = m.extra.find("correct");
            it != m.extra.end() && it->second != 1.0) {
            std::printf("  !! %s: RESULT MISMATCH\n", m.label.c_str());
        }
    }
}

} // namespace tako::bench

#endif // TAKO_BENCH_BENCH_COMMON_HH
