/**
 * @file
 * Fig. 22: HATS sensitivity to the engine microarchitecture — dataflow
 * fabrics from 2x2 to 6x6, an in-order core, and the ideal engine.
 * Paper: dataflow vastly outperforms in-order; performance plateaus
 * with small fabrics; 5x5 is within 1.8% of ideal.
 */

#include "bench/bench_common.hh"
#include "workloads/pagerank_pull.hh"

using namespace tako;

int
main(int argc, char **argv)
{
    setVerbose(false);
    bench::Reporter rep(argc, argv, "fig22_fabric_size");
    PagerankPullConfig cfg;
    cfg.graph.numVertices = bench::quickMode() ? (1 << 12) : (1 << 14);
    cfg.graph.avgDegree = 20;
    cfg.graph.communitySize = 128;
    cfg.graph.intraProb = 0.95;

    rep.title("Fig. 22: HATS vs. engine fabric");
    std::printf("%-12s %14s %10s\n", "engine", "cycles", "vs 5x5");

    auto run_with = [&](EngineKind kind, unsigned dim) {
        SystemConfig sys = bench::hatsSystem();
        sys.engine.kind = kind;
        if (kind == EngineKind::Dataflow) {
            sys.engine.fabricDim = dim;
            // Keep the paper's ~40% memory-PE share.
            sys.engine.memPEs = std::max(1u, dim * dim * 2 / 5);
        }
        return runPagerankPull(PullVariant::Hats, cfg, sys);
    };

    const RunMetrics ref = run_with(EngineKind::Dataflow, 5);
    RunMetrics inorder = run_with(EngineKind::Inorder, 0);
    std::printf("%-12s %14llu %9.2fx\n", "in-order",
                (unsigned long long)inorder.cycles,
                ref.speedupOver(inorder));
    rep.row("inorder",
            {{"cycles", static_cast<double>(inorder.cycles)},
             {"vs_5x5", ref.speedupOver(inorder)}});
    for (unsigned dim : {2u, 3u, 4u, 5u, 6u}) {
        RunMetrics m =
            dim == 5 ? ref : run_with(EngineKind::Dataflow, dim);
        std::printf("%ux%-10u %14llu %9.2fx\n", dim, dim,
                    (unsigned long long)m.cycles, ref.speedupOver(m));
        rep.row(std::to_string(dim) + "x" + std::to_string(dim),
                {{"cycles", static_cast<double>(m.cycles)},
                 {"vs_5x5", ref.speedupOver(m)}});
    }
    RunMetrics ideal = run_with(EngineKind::Ideal, 0);
    std::printf("%-12s %14llu %9.2fx\n", "ideal",
                (unsigned long long)ideal.cycles, ref.speedupOver(ideal));
    rep.row("ideal", {{"cycles", static_cast<double>(ideal.cycles)},
                      {"vs_5x5", ref.speedupOver(ideal)}});

    const double ref_vs_ideal_pct =
        100.0 *
        (static_cast<double>(ref.cycles) / ideal.cycles - 1.0);
    rep.metric("5x5_vs_ideal_pct", ref_vs_ideal_pct);
    std::printf("\npaper: in-order far behind; 5x5 within 1.8%% of "
                "ideal\nhere : 5x5 is %.1f%% from ideal\n",
                ref_vs_ideal_pct);
    return 0;
}
