/**
 * @file
 * Fig. 20: instructions executed per 8 bytes written by the application,
 * split between cores and engines. Paper: täkō executes ~50% fewer core
 * instructions and ~36% fewer total instructions than journaling.
 */

#include "bench/bench_common.hh"
#include "workloads/nvm_tx.hh"

using namespace tako;

int
main(int argc, char **argv)
{
    setVerbose(false);
    bench::Reporter rep(argc, argv, "fig20_nvm_instructions");
    SystemConfig sys = SystemConfig::forCores(16);
    NvmTxConfig cfg;
    cfg.txBytes = 16 * 1024;
    cfg.numTx = bench::quickMode() ? 4 : 16;

    rep.title("Fig. 20: instructions per 8B written (16KB tx)");
    std::printf("%-12s %12s %12s %12s\n", "variant", "core/8B",
                "engine/8B", "total/8B");
    RunMetrics base = runNvmTx(NvmVariant::Journaling, cfg, sys);
    RunMetrics tako = runNvmTx(NvmVariant::Tako, cfg, sys);
    for (const RunMetrics *m : {&base, &tako}) {
        std::printf("%-12s %12.2f %12.2f %12.2f\n", m->label.c_str(),
                    m->extra.at("coreInstrsPer8B"),
                    m->extra.at("totalInstrsPer8B") -
                        m->extra.at("coreInstrsPer8B"),
                    m->extra.at("totalInstrsPer8B"));
        rep.row(m->label,
                {{"core_instrs_per_8b", m->extra.at("coreInstrsPer8B")},
                 {"engine_instrs_per_8b",
                  m->extra.at("totalInstrsPer8B") -
                      m->extra.at("coreInstrsPer8B")},
                 {"total_instrs_per_8b",
                  m->extra.at("totalInstrsPer8B")}});
    }
    const double core_delta_pct =
        100.0 * (tako.extra["coreInstrsPer8B"] /
                     base.extra["coreInstrsPer8B"] -
                 1.0);
    const double total_delta_pct =
        100.0 * (tako.extra["totalInstrsPer8B"] /
                     base.extra["totalInstrsPer8B"] -
                 1.0);
    rep.metric("core_instr_delta_pct", core_delta_pct);
    rep.metric("total_instr_delta_pct", total_delta_pct);
    std::printf("\npaper: tako ~-50%% core instrs, ~-36%% total\n");
    std::printf("here : tako %+.0f%% core instrs, %+.0f%% total\n",
                core_delta_pct, total_delta_pct);
    return 0;
}
