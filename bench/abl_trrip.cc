/**
 * @file
 * Sec. 5.2 ablation: trrîp's low-priority insertion for engine
 * accesses, on the AoS->SoA gather Morph. Without it, the dead real
 * lines the engine gathers evict the core's working set and the phantom
 * stream. Paper: "we have observed speedup of > 4x" from the policy.
 */

#include "bench/bench_common.hh"
#include "workloads/aos_soa.hh"

using namespace tako;

int
main(int argc, char **argv)
{
    setVerbose(false);
    bench::Reporter rep(argc, argv, "abl_trrip");
    AosSoaConfig cfg;
    cfg.numElems = bench::quickMode() ? (8 << 10) : (64 << 10);
    cfg.hotBytes = 16 * 1024;
    SystemConfig sys = SystemConfig::forCores(16);
    // Tighten the hierarchy so gather pollution has something to evict:
    // the hot set fits the L2 only if the engine's dead gather lines
    // insert at low priority.
    sys.mem.l1Size = 4 * 1024;
    sys.mem.l2Size = 32 * 1024;
    sys.mem.l3BankSize = 8 * 1024;

    rep.title("Ablation: trrîp low-priority insertion (AoS->SoA)");
    RunMetrics trrip = runAosSoa(true, cfg, sys);
    RunMetrics srrip = runAosSoa(false, cfg, sys);
    std::vector<RunMetrics> rows{srrip, trrip};
    rep.table(rows, {"l2missRate"});
    std::printf("\npaper: > 4x from low-priority insertion\n");
    std::printf("here : %.2fx\n", trrip.speedupOver(srrip));
    return 0;
}
