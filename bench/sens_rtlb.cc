/**
 * @file
 * Sec. 9 sensitivity: engine rTLB size and page size. Paper: sweeping
 * 256-1024 entries with 4KB and 2MB pages changes performance by at
 * most 2.1%; 256 entries with 2MB pages are used.
 */

#include "bench/bench_common.hh"
#include "workloads/pagerank_pull.hh"

using namespace tako;

int
main(int argc, char **argv)
{
    setVerbose(false);
    bench::Reporter rep(argc, argv, "sens_rtlb");
    PagerankPullConfig cfg;
    cfg.graph.numVertices = bench::quickMode() ? (1 << 12) : (1 << 14);
    cfg.graph.avgDegree = 20;
    cfg.graph.communitySize = 128;
    cfg.graph.intraProb = 0.95;

    rep.title("Sensitivity: engine rTLB (HATS)");
    std::printf("%-10s %-10s %14s %10s\n", "entries", "page", "cycles",
                "vs ref");
    Tick ref = 0;
    for (std::uint64_t page : {2ull << 20, 4096ull}) {
        for (unsigned entries : {256u, 512u, 1024u}) {
            SystemConfig sys = bench::hatsSystem();
            sys.engine.rtlbEntries = entries;
            sys.engine.pageBytes = page;
            RunMetrics m = runPagerankPull(PullVariant::Hats, cfg, sys);
            if (ref == 0)
                ref = m.cycles;
            const char *page_name = page == 4096 ? "4KB" : "2MB";
            std::printf("%-10u %-10s %14llu %9.3fx\n", entries,
                        page_name, (unsigned long long)m.cycles,
                        static_cast<double>(m.cycles) / ref);
            rep.row("rtlb" + std::to_string(entries) + "_" + page_name,
                    {{"cycles", static_cast<double>(m.cycles)},
                     {"vs_ref", static_cast<double>(m.cycles) / ref}});
        }
    }
    std::printf("\npaper: at most 2.1%% variation\n");
    return 0;
}
