/**
 * @file
 * Sec. 9 sensitivity: callback-buffer size. The NVM benchmark invokes
 * many concurrent onWritebacks when flushing a transaction, stressing
 * the buffer. Paper: performance plateaus at 4 entries; 8 are used in
 * the evaluation.
 */

#include "bench/bench_common.hh"
#include "workloads/nvm_tx.hh"

using namespace tako;

int
main(int argc, char **argv)
{
    setVerbose(false);
    bench::Reporter rep(argc, argv, "sens_callback_buffer");
    NvmTxConfig cfg;
    cfg.txBytes = 64 * 1024;
    cfg.numTx = bench::quickMode() ? 4 : 12;

    rep.title("Sensitivity: callback-buffer entries (NVM flush)");
    std::printf("%-10s %14s %10s\n", "entries", "cycles", "vs 8");
    Tick ref = 0;
    std::vector<std::pair<unsigned, Tick>> results;
    for (unsigned entries : {1u, 2u, 4u, 8u, 16u, 64u}) {
        SystemConfig sys = SystemConfig::forCores(16);
        sys.engine.callbackBuffer = entries;
        sys.engine.maxConcurrent = entries;
        RunMetrics m = runNvmTx(NvmVariant::Tako, cfg, sys);
        results.emplace_back(entries, m.cycles);
        if (entries == 8)
            ref = m.cycles;
    }
    for (auto [entries, cycles] : results) {
        std::printf("%-10u %14llu %9.2fx\n", entries,
                    (unsigned long long)cycles,
                    static_cast<double>(cycles) / ref);
        rep.row("cb" + std::to_string(entries),
                {{"cycles", static_cast<double>(cycles)},
                 {"vs_8", static_cast<double>(cycles) / ref}});
    }
    std::printf("\npaper: plateau at 4 entries\n");
    return 0;
}
