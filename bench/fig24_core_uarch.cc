/**
 * @file
 * Fig. 24: PHI PageRank with different core microarchitectures. Paper:
 * PageRank is memory-bound, so täkō's speedup over the baseline is
 * essentially unchanged from little in-order-ish cores to wide OOO.
 */

#include "bench/bench_common.hh"
#include "workloads/pagerank_push.hh"

using namespace tako;

int
main(int argc, char **argv)
{
    setVerbose(false);
    bench::Reporter rep(argc, argv, "fig24_core_uarch");
    PagerankPushConfig cfg;
    cfg.graph.numVertices = bench::quickMode() ? (1 << 13) : (1 << 14);
    cfg.graph.avgDegree = 10;
    cfg.graph.communitySize = 512;
    cfg.threads = 16;
    cfg.regionVertices = 256;

    struct Uarch
    {
        const char *name;
        unsigned width;
        unsigned mlp;
    };
    const Uarch uarches[] = {
        {"little(1w)", 1, 4},
        {"goldmont(3w)", 3, 10},
        {"big(5w)", 5, 24},
    };

    rep.title("Fig. 24: PHI speedup across core uarches");
    std::printf("%-14s %14s %14s %10s\n", "core", "baseline", "tako",
                "speedup");
    for (const Uarch &u : uarches) {
        SystemConfig sys = bench::scaledGraphSystem(16);
        sys.core.issueWidth = u.width;
        sys.core.maxOutstandingLoads = u.mlp;
        RunMetrics base = runPagerankPush(PushVariant::Baseline, cfg, sys);
        RunMetrics phi = runPagerankPush(PushVariant::Phi, cfg, sys);
        std::printf("%-14s %14llu %14llu %9.2fx\n", u.name,
                    (unsigned long long)base.cycles,
                    (unsigned long long)phi.cycles,
                    phi.speedupOver(base));
        rep.row(u.name,
                {{"baseline_cycles", static_cast<double>(base.cycles)},
                 {"tako_cycles", static_cast<double>(phi.cycles)},
                 {"speedup", phi.speedupOver(base)}});
    }
    std::printf("\npaper: speedup roughly constant across uarches\n");
    return 0;
}
