/**
 * @file
 * google-benchmark microbenchmarks for the simulator's own primitives:
 * event-queue throughput, coroutine context switches, tag-array lookups
 * and victim selection, NoC traversal, Zipfian sampling, and a small
 * end-to-end simulated access. These track the *simulator's* host-side
 * performance (events/sec), which bounds how large the figure benches
 * can scale.
 */

#include <benchmark/benchmark.h>

#include "mem/cache_array.hh"
#include "noc/mesh.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "sim/task.hh"
#include "system/system.hh"

using namespace tako;

namespace
{

void
BM_EventQueueSchedule(benchmark::State &state)
{
    EventQueue eq;
    std::uint64_t count = 0;
    for (auto _ : state) {
        for (int i = 0; i < 1024; ++i)
            eq.schedule(static_cast<Tick>(i % 7), [&count]() { ++count; });
        eq.run();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(count));
}
BENCHMARK(BM_EventQueueSchedule);

Task<>
pingPong(EventQueue &eq, int rounds)
{
    for (int i = 0; i < rounds; ++i)
        co_await Delay{eq, 1};
}

void
BM_CoroutineResume(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        spawn(pingPong(eq, 1024));
        eq.run();
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_CoroutineResume);

void
BM_CacheLookup(benchmark::State &state)
{
    CacheArray cache(512 * 1024, 16, ReplPolicy::Trrip);
    Rng rng(1);
    // Pre-fill.
    for (unsigned i = 0; i < 8192; ++i) {
        const Addr a = rng.next() % (1 << 26) * lineBytes;
        if (CacheWay *v = cache.findVictim(a, false))
            cache.fill(*v, a, false, 0, false);
    }
    std::uint64_t hits = 0;
    for (auto _ : state) {
        const Addr a = rng.next() % (1 << 26) * lineBytes;
        if (cache.lookup(a))
            ++hits;
        benchmark::DoNotOptimize(hits);
    }
}
BENCHMARK(BM_CacheLookup);

void
BM_VictimSelection(benchmark::State &state)
{
    CacheArray cache(512 * 1024, 16, ReplPolicy::Trrip);
    Rng rng(2);
    for (auto _ : state) {
        const Addr a = rng.next() % (1 << 26) * lineBytes;
        CacheWay *v = cache.findVictim(a, (rng.next() & 1) != 0);
        if (v)
            cache.fill(*v, a, false, 0, false);
        benchmark::DoNotOptimize(v);
    }
}
BENCHMARK(BM_VictimSelection);

void
BM_MeshTraverse(benchmark::State &state)
{
    StatsRegistry stats;
    EnergyModel energy(stats);
    Mesh mesh(MeshParams{}, stats, energy);
    Rng rng(3);
    Tick now = 0;
    for (auto _ : state) {
        const int src = static_cast<int>(rng.below(16));
        const int dst = static_cast<int>(rng.below(16));
        benchmark::DoNotOptimize(mesh.traverse(now, src, dst, 72));
        now += 2;
    }
}
BENCHMARK(BM_MeshTraverse);

void
BM_ZipfianSample(benchmark::State &state)
{
    Rng rng(4);
    ZipfianGenerator zipf(16384, 0.99);
    for (auto _ : state)
        benchmark::DoNotOptimize(zipf(rng));
}
BENCHMARK(BM_ZipfianSample);

void
BM_SimulatedAccess(benchmark::State &state)
{
    // End-to-end: one simulated core load per iteration batch, including
    // the full transaction machinery (host cost per simulated access).
    for (auto _ : state) {
        state.PauseTiming();
        SystemConfig cfg = SystemConfig::forCores(4);
        System sys(cfg);
        state.ResumeTiming();
        sys.addThread(0, [&](Guest &g) -> Task<> {
            for (int i = 0; i < 4096; ++i)
                co_await g.load(0x100000 + (i % 512) * lineBytes);
        });
        sys.run();
    }
    state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_SimulatedAccess);

} // namespace
