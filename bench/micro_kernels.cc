/**
 * @file
 * google-benchmark microbenchmarks for the simulator's own primitives:
 * event-queue throughput, coroutine context switches, tag-array lookups
 * and victim selection, NoC traversal, Zipfian sampling, and a small
 * end-to-end simulated access. These track the *simulator's* host-side
 * performance (events/sec), which bounds how large the figure benches
 * can scale.
 */

#include <benchmark/benchmark.h>

#include <functional>
#include <queue>
#include <vector>

#include "mem/cache_array.hh"
#include "noc/mesh.hh"
#include "sim/arena.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "sim/task.hh"
#include "system/system.hh"

using namespace tako;

namespace
{

/**
 * The pre-calendar-queue kernel, kept verbatim as the baseline the
 * BM_EventQueueSchedule* comparison is measured against: std::function
 * entries (heap-allocating for captures past the SBO) in a binary heap.
 */
class LegacyEventQueue
{
  public:
    using Callback = std::function<void()>;

    void
    schedule(Tick delta, Callback fn,
             EventPriority prio = EventPriority::Default)
    {
        events_.push(Entry{now_ + delta, static_cast<int>(prio),
                           nextSeq_++, std::move(fn)});
    }

    bool
    step()
    {
        if (events_.empty())
            return false;
        Entry e = std::move(const_cast<Entry &>(events_.top()));
        events_.pop();
        now_ = e.when;
        e.fn();
        return true;
    }

    void
    run()
    {
        while (step()) {}
    }

  private:
    struct Entry
    {
        Tick when;
        int priority;
        std::uint64_t seq;
        Callback fn;

        bool
        operator>(const Entry &o) const
        {
            if (when != o.when)
                return when > o.when;
            if (priority != o.priority)
                return priority > o.priority;
            return seq > o.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>>
        events_;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
};

void
BM_EventQueueSchedule(benchmark::State &state)
{
    EventQueue eq;
    std::uint64_t count = 0;
    for (auto _ : state) {
        for (int i = 0; i < 1024; ++i)
            eq.schedule(static_cast<Tick>(i % 7), [&count]() { ++count; });
        eq.run();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(count));
}
BENCHMARK(BM_EventQueueSchedule);

void
BM_EventQueueScheduleLegacy(benchmark::State &state)
{
    LegacyEventQueue eq;
    std::uint64_t count = 0;
    for (auto _ : state) {
        for (int i = 0; i < 1024; ++i)
            eq.schedule(static_cast<Tick>(i % 7), [&count]() { ++count; });
        eq.run();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(count));
}
BENCHMARK(BM_EventQueueScheduleLegacy);

void
BM_EventQueueFarFuture(benchmark::State &state)
{
    // Deltas straddling the calendar window so the overflow heap and the
    // migrate-on-advance path stay on the profile.
    EventQueue eq;
    std::uint64_t count = 0;
    for (auto _ : state) {
        for (int i = 0; i < 1024; ++i) {
            const Tick delta =
                (i & 3) == 0 ? static_cast<Tick>(1000 + i * 17)
                             : static_cast<Tick>(i % 7);
            eq.schedule(delta, [&count]() { ++count; });
        }
        eq.run();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(count));
}
BENCHMARK(BM_EventQueueFarFuture);

Task<>
pingPong(EventQueue &eq, int rounds)
{
    for (int i = 0; i < rounds; ++i)
        co_await Delay{eq, 1};
}

void
BM_CoroutineResume(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        spawn(pingPong(eq, 1024));
        eq.run();
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_CoroutineResume);

Task<>
tinyTask(EventQueue &eq)
{
    co_await Delay{eq, 1};
}

void
BM_CoroutineSpawn(benchmark::State &state)
{
    // Frame allocation cost: many short-lived coroutines per batch.
    // After the first batch every frame comes from the arena free list.
    EventQueue eq;
    for (auto _ : state) {
        for (int i = 0; i < 1024; ++i)
            spawn(tinyTask(eq));
        eq.run();
    }
    state.SetItemsProcessed(state.iterations() * 1024);
    state.counters["arena_reuse_pct"] = benchmark::Counter(
        FrameArena::stats().allocs
            ? 100.0 * static_cast<double>(FrameArena::stats().reuses) /
                  static_cast<double>(FrameArena::stats().allocs)
            : 0.0);
}
BENCHMARK(BM_CoroutineSpawn);

void
BM_CacheLookup(benchmark::State &state)
{
    CacheArray cache(512 * 1024, 16, ReplPolicy::Trrip);
    Rng rng(1);
    // Pre-fill.
    for (unsigned i = 0; i < 8192; ++i) {
        const Addr a = rng.next() % (1 << 26) * lineBytes;
        if (CacheWay *v = cache.findVictim(a, false))
            cache.fill(*v, a, false, 0, false);
    }
    std::uint64_t hits = 0;
    for (auto _ : state) {
        const Addr a = rng.next() % (1 << 26) * lineBytes;
        if (cache.lookup(a))
            ++hits;
        benchmark::DoNotOptimize(hits);
    }
}
BENCHMARK(BM_CacheLookup);

void
BM_VictimSelection(benchmark::State &state)
{
    CacheArray cache(512 * 1024, 16, ReplPolicy::Trrip);
    Rng rng(2);
    for (auto _ : state) {
        const Addr a = rng.next() % (1 << 26) * lineBytes;
        CacheWay *v = cache.findVictim(a, (rng.next() & 1) != 0);
        if (v)
            cache.fill(*v, a, false, 0, false);
        benchmark::DoNotOptimize(v);
    }
}
BENCHMARK(BM_VictimSelection);

void
BM_MeshTraverse(benchmark::State &state)
{
    StatsRegistry stats;
    EnergyModel energy(stats);
    Mesh mesh(MeshParams{}, stats, energy);
    Rng rng(3);
    Tick now = 0;
    for (auto _ : state) {
        const int src = static_cast<int>(rng.below(16));
        const int dst = static_cast<int>(rng.below(16));
        benchmark::DoNotOptimize(mesh.traverse(now, src, dst, 72));
        now += 2;
    }
}
BENCHMARK(BM_MeshTraverse);

void
BM_ZipfianSample(benchmark::State &state)
{
    Rng rng(4);
    ZipfianGenerator zipf(16384, 0.99);
    for (auto _ : state)
        benchmark::DoNotOptimize(zipf(rng));
}
BENCHMARK(BM_ZipfianSample);

void
BM_SimulatedAccess(benchmark::State &state)
{
    // End-to-end: one simulated core load per iteration batch, including
    // the full transaction machinery (host cost per simulated access).
    for (auto _ : state) {
        state.PauseTiming();
        SystemConfig cfg = SystemConfig::forCores(4);
        System sys(cfg);
        state.ResumeTiming();
        sys.addThread(0, [&](Guest &g) -> Task<> {
            for (int i = 0; i < 4096; ++i)
                co_await g.load(0x100000 + (i % 512) * lineBytes);
        });
        sys.run();
    }
    state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_SimulatedAccess);

} // namespace
