/**
 * @file
 * Fig. 13: PHI results for PageRank push on a synthetic community graph,
 * 16 threads pushing to a single Morph registered at SHARED. Paper: UB
 * (update batching) 3.2x, täkō 4.2x over the software baseline; energy
 * -27% (UB) and -36% (täkō); täkō within a hair of the ideal engine.
 */

#include "bench/bench_common.hh"
#include "workloads/pagerank_push.hh"

using namespace tako;

int
main(int argc, char **argv)
{
    setVerbose(false);
    bench::Reporter rep(argc, argv, "fig13_phi_pagerank");
    PagerankPushConfig cfg;
    cfg.graph.numVertices = bench::quickMode() ? (1 << 13) : (1 << 16);
    cfg.graph.avgDegree = 10;
    cfg.graph.communitySize = 512;
    cfg.threads = 16;
    cfg.regionVertices = 256;
    SystemConfig sys = bench::scaledGraphSystem(16);

    std::vector<RunMetrics> rows;
    for (auto v : {PushVariant::Baseline, PushVariant::UpdateBatching,
                   PushVariant::Phi, PushVariant::PhiIdeal}) {
        rows.push_back(runPagerankPush(v, cfg, sys));
    }

    rep.title("Fig. 13: PHI PageRank push (16 threads)");
    rep.table(rows, {"inPlaceLines", "binnedUpdates"});

    std::printf("\npaper: UB 3.2x, tako 4.2x, energy -27%% / -36%%\n");
    std::printf("here : UB %.2fx, tako %.2fx, energy %+.0f%% / %+.0f%%\n",
                rows[1].speedupOver(rows[0]), rows[2].speedupOver(rows[0]),
                (rows[1].energyVs(rows[0]) - 1.0) * 100,
                (rows[2].energyVs(rows[0]) - 1.0) * 100);
    return 0;
}
