/**
 * @file
 * Fig. 21: prime+probe attack on AES tables at the shared L3. Without
 * täkō the attacker tracks the victim's secret-dependent accesses; with
 * the eviction-guard Morph the victim is interrupted at the first
 * priming eviction and defends itself before the pattern leaks.
 */

#include "bench/bench_common.hh"
#include "workloads/prime_probe.hh"

using namespace tako;

int
main(int argc, char **argv)
{
    setVerbose(false);
    bench::Reporter rep(argc, argv, "fig21_sidechannel");
    PrimeProbeConfig cfg;
    cfg.rounds = bench::quickMode() ? 16 : 64;
    SystemConfig sys = SystemConfig::forCores(16);

    rep.title("Fig. 21: prime+probe on AES tables at the L3");
    std::printf("%-10s %8s %10s %10s %12s %12s %10s\n", "variant",
                "rounds", "leaked", "bits", "accuracy", "detected",
                "trace len");
    for (bool with_tako : {false, true}) {
        PrimeProbeResult r = runPrimeProbe(with_tako, cfg, sys);
        std::printf("%-10s %8u %10u %10u %12.2f %12s %10zu\n",
                    with_tako ? "tako" : "baseline", r.roundsRun,
                    r.leakedRounds, r.trueLeaks,
                    r.metrics.extra["attackAccuracy"],
                    r.detected ? "yes" : "no", r.evictionTrace.size());
        rep.row(with_tako ? "tako" : "baseline",
                {{"rounds", static_cast<double>(r.roundsRun)},
                 {"leaked_rounds", static_cast<double>(r.leakedRounds)},
                 {"bits_recovered", static_cast<double>(r.trueLeaks)},
                 {"attack_accuracy", r.metrics.extra["attackAccuracy"]},
                 {"detected", r.detected ? 1.0 : 0.0},
                 {"trace_len",
                  static_cast<double>(r.evictionTrace.size())}});
        if (with_tako && !r.evictionTrace.empty()) {
            std::printf("  eviction trace (first 5): ");
            for (std::size_t i = 0;
                 i < std::min<std::size_t>(5, r.evictionTrace.size()); ++i)
                std::printf("t=%llu ",
                            (unsigned long long)r.evictionTrace[i].first);
            std::printf("-> victim interrupted, defense engaged\n");
        }
    }
    std::printf("\npaper: attack succeeds in baseline, detected "
                "immediately with tako\n");
    return 0;
}
