/**
 * @file
 * takobench — batch experiment driver for the paper's evaluation.
 *
 * Reads a declarative suite spec (specs/quick.json, ...), fans the runs out
 * across a pool of child processes (figure benches and takosim), merges
 * every child's machine-readable output into one BENCH_<suite>.json,
 * and exits nonzero iff any run fails or misses a golden tolerance.
 *
 *   takobench specs/quick.json -j8
 *   takobench specs/nightly.json -j4 --out results/BENCH_nightly.json
 *   takobench specs/quick.json --list
 */

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <limits.h>
#include <sys/stat.h>
#include <unistd.h>

#include "expt/report.hh"
#include "expt/runner.hh"
#include "expt/spec.hh"

using namespace tako::expt;

namespace
{

struct Options
{
    std::string specPath;
    unsigned jobs = 0; ///< 0 = hardware concurrency
    std::string outPath;
    std::string binDir;
    std::string scratchDir;
    bool list = false;
    bool verbose = false;
    /** Extra argv appended to every takosim-kind run (repeatable);
     *  bench-kind runs never see them. */
    std::vector<std::string> takosimArgs;
    /** Heartbeat cadence passed to takosim-kind runs (--progress=N);
     *  0 = no heartbeats. The runner tails the children's logs and
     *  reprints every beat tagged with its run name. */
    std::uint64_t progressEvery = 0;
};

[[noreturn]] void
usage(int code)
{
    std::fprintf(
        code ? stderr : stdout,
        "usage: takobench SPEC.json [options]\n"
        "\n"
        "  -j N, -jN          run up to N children in parallel\n"
        "                     (default: number of CPUs)\n"
        "  --out=FILE         suite report path\n"
        "                     (default: BENCH_<suite>.json)\n"
        "  --bin-dir=DIR      where the bench/takosim binaries live\n"
        "                     (default: derived from this executable,\n"
        "                     e.g. build/tools -> build/bench)\n"
        "  --scratch=DIR      per-run outputs and logs\n"
        "                     (default: takobench.scratch/<suite>)\n"
        "  --takosim-arg=ARG  append ARG verbatim to every takosim-kind\n"
        "                     run's command line (repeatable; bench-kind\n"
        "                     runs are untouched). Example:\n"
        "                     --takosim-arg=--shards=4\n"
        "  --progress[=N]     ask takosim-kind runs for a heartbeat\n"
        "                     every N cycles (default 1000000) and\n"
        "                     reprint each beat live, tagged with its\n"
        "                     run name\n"
        "  --list             print the suite's runs and exit\n"
        "  --verbose          echo each child command line\n"
        "  --help             this text\n");
    std::exit(code);
}

Options
parse(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto eq = arg.find('=');
        const std::string key = arg.substr(0, eq);
        const std::string val =
            eq == std::string::npos ? "" : arg.substr(eq + 1);
        if (arg == "--help" || arg == "-h") {
            usage(0);
        } else if (arg == "--list") {
            o.list = true;
        } else if (arg == "--verbose") {
            o.verbose = true;
        } else if (key == "--out") {
            o.outPath = val;
        } else if (key == "--bin-dir") {
            o.binDir = val;
        } else if (key == "--scratch") {
            o.scratchDir = val;
        } else if (key == "--takosim-arg") {
            if (val.empty()) {
                std::fprintf(stderr,
                             "takobench: --takosim-arg needs a value\n\n");
                usage(2);
            }
            o.takosimArgs.push_back(val);
        } else if (key == "--progress") {
            o.progressEvery =
                val.empty() ? 1000000 : std::strtoull(val.c_str(),
                                                      nullptr, 0);
            if (o.progressEvery == 0)
                o.progressEvery = 1000000;
        } else if (arg == "-j") {
            if (i + 1 >= argc)
                usage(2);
            o.jobs = static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (arg.rfind("-j", 0) == 0 && arg.size() > 2) {
            o.jobs = static_cast<unsigned>(std::atoi(arg.c_str() + 2));
        } else if (arg.rfind("-", 0) == 0) {
            std::fprintf(stderr, "takobench: unknown option '%s'\n\n",
                         arg.c_str());
            usage(2);
        } else if (o.specPath.empty()) {
            o.specPath = arg;
        } else {
            std::fprintf(stderr, "takobench: more than one spec given\n");
            usage(2);
        }
    }
    if (o.specPath.empty()) {
        std::fprintf(stderr, "takobench: no spec file given\n\n");
        usage(2);
    }
    return o;
}

std::string
dirName(const std::string &path)
{
    const auto slash = path.rfind('/');
    return slash == std::string::npos ? "." : path.substr(0, slash);
}

/** Directory holding this executable (for sibling-binary lookup). */
std::string
exeDir()
{
    char buf[PATH_MAX];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n <= 0)
        return ".";
    buf[n] = '\0';
    return dirName(buf);
}

bool
fileExists(const std::string &path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

/**
 * Find the binary for @p run. With --bin-dir, candidates are relative
 * to it; otherwise to this executable's own build tree (takobench sits
 * in build/tools next to takosim, with the benches in build/bench).
 */
std::string
resolveBinary(const RunSpec &run, const std::string &binDir)
{
    const std::string name =
        run.kind == RunKind::Takosim ? "takosim" : run.target;
    std::vector<std::string> candidates;
    if (!binDir.empty()) {
        candidates = {binDir + "/" + name, binDir + "/bench/" + name,
                      binDir + "/tools/" + name};
    } else {
        const std::string here = exeDir();
        candidates = {here + "/" + name, here + "/../bench/" + name,
                      here + "/../tools/" + name};
    }
    for (const std::string &c : candidates) {
        if (fileExists(c))
            return c;
    }
    return candidates.front(); // runner reports it as missing-binary
}

bool
makeDirs(const std::string &path)
{
    std::string partial;
    for (std::size_t i = 0; i <= path.size(); ++i) {
        if (i == path.size() || path[i] == '/') {
            if (!partial.empty() && ::mkdir(partial.c_str(), 0755) != 0 &&
                errno != EEXIST)
                return false;
        }
        if (i < path.size())
            partial += path[i];
    }
    return true;
}

/** Current git revision, best effort ("unknown" outside a checkout). */
std::string
gitRev()
{
    std::string rev = "unknown";
    if (std::FILE *p = ::popen(
            "git rev-parse --short HEAD 2>/dev/null", "r")) {
        char buf[64];
        if (std::fgets(buf, sizeof(buf), p)) {
            rev = buf;
            while (!rev.empty() &&
                   (rev.back() == '\n' || rev.back() == '\r'))
                rev.pop_back();
        }
        ::pclose(p);
        if (rev.empty())
            rev = "unknown";
    }
    return rev;
}

RunCommand
buildCommand(const RunSpec &run, const Options &o,
             const std::string &scratch)
{
    RunCommand cmd;
    cmd.name = run.name;
    cmd.outputJson = scratch + "/" + run.name + ".json";
    cmd.logPath = scratch + "/" + run.name + ".log";
    cmd.timeoutSec = run.timeoutSec;
    cmd.retries = run.retries;

    cmd.argv.push_back(resolveBinary(run, o.binDir));
    if (run.kind == RunKind::Takosim) {
        cmd.argv.push_back(
            (run.traceRun ? "--trace=" : "--workload=") + run.target);
        for (const auto &[k, v] : run.args)
            cmd.argv.push_back("--" + k + "=" + v);
        // Pass-throughs go after the spec's own args so a sweep (e.g.
        // --shards=4 for the CI determinism gate) wins on conflicts.
        for (const std::string &extra : o.takosimArgs)
            cmd.argv.push_back(extra);
        if (o.progressEvery > 0)
            cmd.argv.push_back("--progress=" +
                               std::to_string(o.progressEvery));
        cmd.argv.push_back("--stats-json=" + cmd.outputJson);
    } else {
        if (run.quick)
            cmd.argv.push_back("--quick");
        for (const auto &[k, v] : run.args)
            cmd.argv.push_back("--" + k + "=" + v);
        cmd.argv.push_back("--json=" + cmd.outputJson);
    }
    return cmd;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options o = parse(argc, argv);

    SuiteSpec spec;
    std::string err;
    if (!SuiteSpec::parseFile(o.specPath, spec, err)) {
        std::fprintf(stderr, "takobench: %s\n", err.c_str());
        return 2;
    }

    if (o.list) {
        std::printf("suite %s: %zu runs\n", spec.suite.c_str(),
                    spec.runs.size());
        for (const RunSpec &r : spec.runs) {
            std::printf("  %-24s %s %s%s  timeout=%gs retries=%u "
                        "golden=%zu\n",
                        r.name.c_str(),
                        r.kind == RunKind::Bench ? "bench  " : "takosim",
                        r.target.c_str(), r.quick ? " (quick)" : "",
                        r.timeoutSec, r.retries, r.golden.size());
        }
        return 0;
    }

    unsigned jobs = o.jobs;
    if (jobs == 0) {
        const long n = ::sysconf(_SC_NPROCESSORS_ONLN);
        jobs = n > 0 ? static_cast<unsigned>(n) : 1;
    }

    const std::string scratch = o.scratchDir.empty()
                                    ? "takobench.scratch/" + spec.suite
                                    : o.scratchDir;
    if (!makeDirs(scratch)) {
        std::fprintf(stderr, "takobench: cannot create scratch dir %s\n",
                     scratch.c_str());
        return 2;
    }

    std::vector<RunCommand> cmds;
    std::vector<std::string> outputPaths;
    for (const RunSpec &r : spec.runs) {
        cmds.push_back(buildCommand(r, o, scratch));
        outputPaths.push_back(cmds.back().outputJson);
        // Logs append across retries within one invocation; start each
        // invocation clean.
        ::unlink(cmds.back().logPath.c_str());
        if (o.verbose) {
            std::fprintf(stderr, "takobench: %s:", r.name.c_str());
            for (const std::string &a : cmds.back().argv)
                std::fprintf(stderr, " %s", a.c_str());
            std::fprintf(stderr, "\n");
        }
    }

    std::printf("takobench: suite %s, %zu runs, -j%u\n",
                spec.suite.c_str(), cmds.size(), jobs);
    const auto t0 = std::chrono::steady_clock::now();
    // Heartbeat multiplexing: children beat into their own log files
    // and the runner tails them, so concurrent runs' progress lines
    // arrive whole and tagged instead of interleaved mid-line.
    std::function<void(const std::string &, const std::string &)> pulse;
    if (o.progressEvery > 0) {
        pulse = [](const std::string &name, const std::string &line) {
            std::printf("  [%s] %s\n", name.c_str(), line.c_str());
            std::fflush(stdout);
        };
    }
    std::vector<RunOutcome> outcomes = runAll(
        cmds, jobs,
        [](const RunOutcome &out, unsigned done, unsigned total) {
            std::printf("[%u/%u] %-24s %s (%.1fs%s)\n", done, total,
                        out.name.c_str(), runStatusName(out.status),
                        out.wallSec,
                        out.attempts > 1 ? ", retried" : "");
            std::fflush(stdout);
        },
        pulse);
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();

    SuiteReport report =
        buildReport(spec, outcomes, outputPaths, jobs, wall, gitRev());

    const std::string outPath = o.outPath.empty()
                                    ? "BENCH_" + spec.suite + ".json"
                                    : o.outPath;
    std::ofstream out(outPath);
    if (!out) {
        std::fprintf(stderr, "takobench: cannot write %s\n",
                     outPath.c_str());
        return 2;
    }
    report.toJson().write(out);

    printSummary(report, stdout);
    std::printf("report: %s  (logs: %s)\n", outPath.c_str(),
                scratch.c_str());
    return report.pass() ? 0 : 1;
}
