#!/usr/bin/env python3
"""Independent takomon-v1 schema and invariant checker.

A second, stdlib-only implementation of the decoder (see DESIGN.md
Sec. 4.10 and src/mon/format.hh) so CI catches format drift between the
C++ codec and the documented spec. Checks, per file:

  - file header: magic, version, zero flags, nonzero interval;
  - series directory: known kinds, exact dirBytes coverage, CRC-32;
  - chunk walk: magics, firstIndex continuity, exact coverage of the
    file (no trailing bytes), header sample count == sum of chunks;
  - every chunk payload: CRC-32 (binascii.crc32 — same IEEE polynomial
    as the C++ table), full column decode (tick column strictly
    increasing file-wide, known column tags, no bytes left over).

Exit 0 iff every file validates. Usage:

  validate_takomon.py run.takomon [more.takomon ...]
"""

import argparse
import binascii
import struct
import sys

MAGIC = b"takomon1"
VERSION = 1
CHUNK_MAGIC = 0x31484D54
FILE_HEADER = struct.Struct("<8sIIQIIQ")
CHUNK_HEADER = struct.Struct("<IIIIQ")
NUM_KINDS = 4  # counter, hist count, hist sum, hist max
COL_INT_DELTAS = 0
COL_RAW_DOUBLES = 1
MASK64 = (1 << 64) - 1


class MonError(Exception):
    pass


def get_varint(data, pos, end):
    """Decode one LEB128 value; returns (value, new_pos)."""
    value = 0
    shift = 0
    while pos < end and shift < 64:
        byte = data[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7
    raise MonError("truncated or over-long varint")


def zigzag_decode(v):
    return (v >> 1) ^ -(v & 1)


def read_directory(data, start, dir_bytes, series_count):
    """Decode the series directory; returns the series list."""
    pos = start
    end = start + dir_bytes
    series = []
    for i in range(series_count):
        if pos >= end:
            raise MonError(f"directory ends mid-entry at series {i}")
        kind = data[pos]
        pos += 1
        if kind >= NUM_KINDS:
            raise MonError(f"series {i}: unknown kind {kind}")
        name_len, pos = get_varint(data, pos, end)
        if pos + name_len > end:
            raise MonError(f"series {i}: name overruns the directory")
        name = data[pos:pos + name_len].decode("utf-8", "replace")
        pos += name_len
        series.append((name, kind))
    if pos != end:
        raise MonError(
            f"{end - pos} directory bytes left after the last series")
    return series


def check_chunk(data, start, end, samples, series_count, last_tick,
                first_chunk, ticks, columns):
    """Decode one chunk payload into @p ticks / @p columns; returns the
    last tick seen."""
    pos = start
    # Tick column: LEB128 deltas, context resets per chunk (first value
    # absolute). Ticks are strictly increasing file-wide.
    tick = 0
    for i in range(samples):
        delta, pos = get_varint(data, pos, end)
        if i == 0:
            tick = delta
            if not first_chunk and tick <= last_tick:
                raise MonError(
                    f"first tick {tick} does not advance past the "
                    f"previous chunk's last tick {last_tick}")
        else:
            if delta == 0:
                raise MonError(f"sample {i}: repeated tick {tick}")
            tick += delta
        ticks.append(tick)
    last = tick
    # Value columns, one per series, each led by its encoding tag.
    for s in range(series_count):
        if pos >= end:
            raise MonError(f"payload ends before column {s}")
        tag = data[pos]
        pos += 1
        col = columns[s]
        if tag == COL_INT_DELTAS:
            # Zigzag LEB128 of wrapping int64 diffs; context resets per
            # chunk (prev = 0, so the first delta is the value itself).
            prev = 0
            for _ in range(samples):
                raw, pos = get_varint(data, pos, end)
                prev = (prev + zigzag_decode(raw)) & MASK64
                v = prev - (1 << 64) if prev >= (1 << 63) else prev
                col.append(float(v))
        elif tag == COL_RAW_DOUBLES:
            need = 8 * samples
            if pos + need > end:
                raise MonError(f"column {s}: truncated double column")
            col.extend(struct.unpack_from(f"<{samples}d", data, pos))
            pos += need
        else:
            raise MonError(f"column {s}: unknown encoding tag {tag}")
    if pos != end:
        raise MonError(
            f"{end - pos} payload bytes left after the last column")
    return last


def decode(path):
    """Validate @p path fully and materialize its contents.

    Returns (series, ticks, columns, chunks): series is
    [(name, kind), ...], ticks the sample ticks, columns one list of
    floats per series (aligned with ticks). Raises MonError on any spec
    violation — importers (tools/plot_results.py) get the same
    strictness as the CLI checker.
    """
    with open(path, "rb") as f:
        data = f.read()
    if len(data) < FILE_HEADER.size:
        raise MonError("shorter than a file header")
    (magic, version, flags, interval, series_count, dir_bytes,
     sample_count) = FILE_HEADER.unpack_from(data, 0)
    if magic != MAGIC:
        raise MonError("bad magic (not a takomon file)")
    if version != VERSION:
        raise MonError(f"format version {version}, expected {VERSION}")
    if flags != 0:
        raise MonError(f"unknown flag bits {flags:#x}")
    if interval == 0:
        raise MonError("zero sampling interval")

    dir_end = FILE_HEADER.size + dir_bytes
    if dir_end + 4 > len(data):
        raise MonError("truncated in the series directory")
    series = read_directory(data, FILE_HEADER.size, dir_bytes,
                            series_count)
    (stored_crc,) = struct.unpack_from("<I", data, dir_end)
    got_crc = binascii.crc32(data[FILE_HEADER.size:dir_end])
    if got_crc != stored_crc:
        raise MonError(
            f"directory CRC mismatch (stored {stored_crc:#010x}, "
            f"computed {got_crc:#010x})")

    pos = dir_end + 4
    total = 0
    chunks = 0
    last_tick = 0
    ticks = []
    columns = [[] for _ in range(series_count)]
    while pos < len(data):
        if pos + CHUNK_HEADER.size > len(data):
            raise MonError(f"truncated at chunk {chunks} header")
        cmagic, samples, payload_bytes, crc, first_index = (
            CHUNK_HEADER.unpack_from(data, pos))
        if cmagic != CHUNK_MAGIC:
            raise MonError(f"chunk {chunks}: bad magic {cmagic:#x}")
        if samples == 0:
            raise MonError(f"chunk {chunks}: empty chunk")
        if first_index != total:
            raise MonError(
                f"chunk {chunks}: firstIndex {first_index} != running "
                f"count {total}")
        start = pos + CHUNK_HEADER.size
        end = start + payload_bytes
        if end > len(data):
            raise MonError(f"truncated in chunk {chunks} payload")
        got = binascii.crc32(data[start:end])
        if got != crc:
            raise MonError(
                f"chunk {chunks}: CRC mismatch (stored {crc:#010x}, "
                f"computed {got:#010x})")
        try:
            last_tick = check_chunk(data, start, end, samples,
                                    series_count, last_tick,
                                    chunks == 0, ticks, columns)
        except MonError as e:
            raise MonError(f"chunk {chunks}: {e}") from None
        total += samples
        chunks += 1
        pos = end
    if total != sample_count:
        if sample_count == MASK64:
            raise MonError("unpatched sample count (unclosed writer?)")
        raise MonError(
            f"header says {sample_count} samples, chunks hold {total}")
    return series, ticks, columns, chunks


def validate(path):
    """Full check of one file; returns (series, samples, chunks)."""
    series, ticks, _, chunks = decode(path)
    return len(series), len(ticks), chunks


def main():
    ap = argparse.ArgumentParser(
        description="validate takomon-v1 files against the spec")
    ap.add_argument("files", nargs="+", help=".takomon files")
    args = ap.parse_args()

    failures = 0
    for path in args.files:
        try:
            nseries, samples, chunks = validate(path)
        except (MonError, OSError) as e:
            print(f"FAIL {path}: {e}")
            failures += 1
        else:
            print(f"ok   {path}: {nseries} series, {samples} samples, "
                  f"{chunks} chunks")
    if failures:
        print(f"validate_takomon: {failures} of {len(args.files)} "
              f"file(s) invalid")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
