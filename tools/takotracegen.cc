/**
 * @file
 * takotracegen — produce, ingest, and inspect takotrace-v1 files.
 *
 * Three modes:
 *
 *   generate  (--kind=kv|scan|embed|mix --out=FILE): emit a synthetic
 *             production-shaped trace from the workload zoo generators
 *             (deterministic in all parameters, including --seed);
 *   ingest    (--ingest=TEXT --out=FILE): convert a Pin-style text
 *             trace ('-' reads stdin) to takotrace-v1;
 *   dump      (--dump=FILE): print records as canonical text lines
 *             (the inverse of ingest; '--limit' caps the output).
 *
 *   takotracegen --kind=kv --records=200000 --tenants=16 --out=kv.tt
 *   takotracegen --ingest=pinatrace.out --out=app.tt
 *   takotracegen --dump=app.tt --limit=10
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "trace/gen.hh"
#include "trace/reader.hh"
#include "trace/textio.hh"
#include "trace/writer.hh"

using namespace tako;

namespace
{

struct Options
{
    trace::GenParams gen;
    std::string out;
    std::string ingest;
    std::string dump;
    std::uint64_t dumpLimit = 0; ///< 0 = all
    std::uint32_t chunkRecords = 4096;
};

[[noreturn]] void
usage(int code)
{
    std::string kinds;
    for (const std::string &k : trace::genKinds())
        kinds += (kinds.empty() ? "" : "|") + k;
    std::fprintf(
        code ? stderr : stdout,
        "usage: takotracegen --kind=%s --out=FILE [gen options]\n"
        "       takotracegen --ingest=TEXT --out=FILE   ('-' = stdin)\n"
        "       takotracegen --dump=FILE [--limit=N]\n"
        "\n"
        "generator options (all deterministic, including --seed):\n"
        "  --records=N        records to emit (default 100000)\n"
        "  --tenants=N        tenant population (default 8)\n"
        "  --seed=N           generator seed (default 1)\n"
        "  --theta=F          Zipf skew in (0,1) (default 0.99)\n"
        "  kv:    --keys=N --value-bytes=N --store-frac=F\n"
        "  scan:  --nodes=N (pow2) --leaf-frac=F\n"
        "  embed: --rows=N --row-bytes=N --batch=N\n"
        "\n"
        "encoding options:\n"
        "  --no-timestamps    drop per-record timestamps\n"
        "  --chunk-records=N  records per CRC'd chunk (default 4096)\n",
        kinds.c_str());
    std::exit(code);
}

std::uint64_t
parseNum(const std::string &v)
{
    return std::strtoull(v.c_str(), nullptr, 0);
}

double
parseFrac(const std::string &v)
{
    return std::strtod(v.c_str(), nullptr);
}

Options
parse(int argc, char **argv)
{
    Options o;
    bool kindSet = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto eq = arg.find('=');
        const std::string key = arg.substr(0, eq);
        const std::string val =
            eq == std::string::npos ? "" : arg.substr(eq + 1);
        if (key == "--help" || key == "-h")
            usage(0);
        else if (key == "--kind") {
            o.gen.kind = val;
            kindSet = true;
        } else if (key == "--out")
            o.out = val;
        else if (key == "--ingest")
            o.ingest = val;
        else if (key == "--dump")
            o.dump = val;
        else if (key == "--limit")
            o.dumpLimit = parseNum(val);
        else if (key == "--records")
            o.gen.records = parseNum(val);
        else if (key == "--tenants")
            o.gen.tenants = static_cast<std::uint32_t>(parseNum(val));
        else if (key == "--seed")
            o.gen.seed = parseNum(val);
        else if (key == "--theta")
            o.gen.theta = parseFrac(val);
        else if (key == "--keys")
            o.gen.keys = parseNum(val);
        else if (key == "--value-bytes")
            o.gen.valueBytes = static_cast<std::uint32_t>(parseNum(val));
        else if (key == "--store-frac")
            o.gen.storeFraction = parseFrac(val);
        else if (key == "--nodes")
            o.gen.nodes = parseNum(val);
        else if (key == "--leaf-frac")
            o.gen.leafFraction = parseFrac(val);
        else if (key == "--rows")
            o.gen.rows = parseNum(val);
        else if (key == "--row-bytes")
            o.gen.rowBytes = static_cast<std::uint32_t>(parseNum(val));
        else if (key == "--batch")
            o.gen.batch = static_cast<std::uint32_t>(parseNum(val));
        else if (key == "--no-timestamps")
            o.gen.timestamps = false;
        else if (key == "--chunk-records")
            o.chunkRecords = static_cast<std::uint32_t>(parseNum(val));
        else {
            std::fprintf(stderr,
                         "takotracegen: unknown option '%s' (valid "
                         "options listed below)\n\n",
                         arg.c_str());
            usage(2);
        }
    }
    const int modes = (!o.dump.empty()) + (!o.ingest.empty()) + kindSet;
    if (modes > 1) {
        std::fprintf(stderr,
                     "takotracegen: --kind, --ingest, and --dump are "
                     "mutually exclusive\n");
        std::exit(2);
    }
    if (o.dump.empty() && o.out.empty()) {
        std::fprintf(stderr, "takotracegen: --out=FILE required\n\n");
        usage(2);
    }
    return o;
}

int
doDump(const Options &o)
{
    trace::TraceReader reader;
    if (!reader.open(o.dump)) {
        std::fprintf(stderr, "takotracegen: %s\n",
                     reader.error().c_str());
        return 1;
    }
    trace::TraceRecord rec;
    std::uint64_t n = 0;
    while (reader.next(rec)) {
        trace::formatTraceLine(std::cout, rec, reader.hasTimestamps());
        if (o.dumpLimit && ++n >= o.dumpLimit)
            break;
    }
    if (!reader.error().empty()) {
        std::fprintf(stderr, "takotracegen: %s\n",
                     reader.error().c_str());
        return 1;
    }
    return 0;
}

int
doIngest(const Options &o, trace::TraceWriter &writer)
{
    std::ifstream file;
    if (o.ingest != "-") {
        file.open(o.ingest);
        if (!file) {
            std::fprintf(stderr, "takotracegen: cannot open '%s'\n",
                         o.ingest.c_str());
            return 1;
        }
    }
    std::istream &in = o.ingest == "-" ? std::cin : file;
    const trace::IngestResult res = trace::ingestText(in, writer);
    if (!res.ok) {
        std::fprintf(stderr, "takotracegen: %s: %s\n", o.ingest.c_str(),
                     res.error.c_str());
        return 1;
    }
    std::fprintf(stderr,
                 "takotracegen: ingested %llu records (%llu lines "
                 "skipped)\n",
                 (unsigned long long)res.records,
                 (unsigned long long)res.skipped);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options o = parse(argc, argv);
    if (!o.dump.empty())
        return doDump(o);

    trace::TraceWriter writer;
    trace::TraceWriter::Options wopt;
    wopt.timestamps = o.gen.timestamps;
    wopt.chunkRecords = o.chunkRecords;
    if (!writer.open(o.out, wopt)) {
        std::fprintf(stderr, "takotracegen: %s\n",
                     writer.error().c_str());
        return 1;
    }

    int rc = 0;
    if (!o.ingest.empty()) {
        rc = doIngest(o, writer);
    } else {
        std::string err;
        if (!trace::generateTrace(o.gen, writer, err)) {
            std::string kinds;
            for (const std::string &k : trace::genKinds())
                kinds += (kinds.empty() ? "" : " ") + k;
            std::fprintf(stderr, "takotracegen: %s (kinds: %s)\n",
                         err.c_str(), kinds.c_str());
            rc = 1;
        }
    }
    if (rc != 0) {
        writer.close();
        return rc;
    }
    const std::uint64_t written = writer.recordsWritten();
    if (!writer.close()) {
        std::fprintf(stderr, "takotracegen: %s\n",
                     writer.error().c_str());
        return 1;
    }
    std::fprintf(stderr, "takotracegen: wrote %llu records to %s\n",
                 (unsigned long long)written, o.out.c_str());
    return 0;
}
