# Stamp the current git revision into a generated header. Runs at build
# time (custom target), so the rev tracks HEAD without reconfiguring;
# writes only when the content changes to avoid spurious rebuilds.
#
# Inputs: -DGIT_DIR=<repo root> -DOUT=<header path>

execute_process(
    COMMAND git -C "${GIT_DIR}" rev-parse --short HEAD
    OUTPUT_VARIABLE rev
    OUTPUT_STRIP_TRAILING_WHITESPACE
    ERROR_QUIET
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0 OR rev STREQUAL "")
    set(rev "unknown")
endif()

execute_process(
    COMMAND git -C "${GIT_DIR}" status --porcelain
    OUTPUT_VARIABLE dirty
    ERROR_QUIET)
if(NOT dirty STREQUAL "")
    set(rev "${rev}-dirty")
endif()

set(content "#define TAKO_GIT_REV \"${rev}\"\n")

if(EXISTS "${OUT}")
    file(READ "${OUT}" old)
else()
    set(old "")
endif()

if(NOT content STREQUAL old)
    file(WRITE "${OUT}" "${content}")
endif()
