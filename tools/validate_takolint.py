#!/usr/bin/env python3
"""Validate a takolint-v1 report (takolint --json output).

Usage: tools/validate_takolint.py takolint.json

Checks the structural schema and the internal invariants a correct lint
run must satisfy (counts match the findings list, exit_code agrees with
the active-finding count, suppressed findings carry reasons). Exits 0
when valid, 1 with a message on the first violation. Stdlib only, so CI
can run it anywhere.
"""
import json
import sys

RULES = ("D1", "D2", "L1", "L2", "S1")


class Invalid(Exception):
    pass


def need(cond, msg):
    if not cond:
        raise Invalid(msg)


def is_uint(v):
    return isinstance(v, int) and not isinstance(v, bool) and v >= 0


def check_rules(doc):
    rules = doc.get("rules")
    need(isinstance(rules, list), "\"rules\" missing")
    ids = []
    for i, r in enumerate(rules):
        where = f"rules[{i}]"
        need(isinstance(r, dict), f"{where}: must be an object")
        need(r.get("id") in RULES, f"{where}: id must be one of {RULES}")
        need(isinstance(r.get("description"), str) and r["description"],
             f"{where}: missing description")
        ids.append(r["id"])
    need(sorted(ids) == sorted(set(ids)), "rules: duplicate ids")
    need(set(ids) == set(RULES), f"rules must cover exactly {RULES}")


def check_findings(doc):
    findings = doc.get("findings")
    need(isinstance(findings, list), "\"findings\" missing")
    active = {r: 0 for r in RULES}
    for i, f in enumerate(findings):
        where = f"findings[{i}]"
        need(isinstance(f, dict), f"{where}: must be an object")
        need(f.get("rule") in RULES,
             f"{where}: rule must be one of {RULES}")
        need(isinstance(f.get("file"), str) and f["file"],
             f"{where}: missing file")
        need(is_uint(f.get("line")) and f["line"] > 0,
             f"{where}: line must be a positive integer")
        need(isinstance(f.get("message"), str) and f["message"],
             f"{where}: missing message")
        need(isinstance(f.get("suppressed"), bool),
             f"{where}: missing suppressed flag")
        if f["suppressed"]:
            need(isinstance(f.get("reason"), str),
                 f"{where}: suppressed finding without a reason")
        else:
            active[f["rule"]] += 1
    return active


def check_unused(doc):
    unused = doc.get("unused_suppressions")
    need(isinstance(unused, list), "\"unused_suppressions\" missing")
    for i, u in enumerate(unused):
        where = f"unused_suppressions[{i}]"
        need(isinstance(u, dict), f"{where}: must be an object")
        need(isinstance(u.get("file"), str) and u["file"],
             f"{where}: missing file")
        need(is_uint(u.get("line")) and u["line"] > 0,
             f"{where}: bad line")
        need(isinstance(u.get("rule"), str) and u["rule"],
             f"{where}: missing rule")


def validate(doc):
    need(doc.get("schema") == "takolint-v1",
         "\"schema\" must be \"takolint-v1\"")
    roots = doc.get("roots")
    need(isinstance(roots, list) and roots and
         all(isinstance(r, str) and r for r in roots),
         "\"roots\" must be a non-empty string array")
    need(is_uint(doc.get("files_scanned")) and doc["files_scanned"] > 0,
         "\"files_scanned\" must be positive")
    check_rules(doc)
    active = check_findings(doc)
    check_unused(doc)

    counts = doc.get("counts")
    need(isinstance(counts, dict), "\"counts\" missing")
    need(set(counts) == set(RULES), f"counts must cover exactly {RULES}")
    for rule in RULES:
        need(is_uint(counts[rule]), f"counts.{rule} must be a uint")
        need(counts[rule] == active[rule],
             f"counts.{rule}={counts[rule]} but findings list has "
             f"{active[rule]} active {rule} findings")

    total = sum(active.values())
    need(doc.get("exit_code") in (0, 1), "\"exit_code\" must be 0 or 1")
    need(doc["exit_code"] == (1 if total else 0),
         f"exit_code={doc['exit_code']} disagrees with {total} active "
         "findings")


def main():
    if len(sys.argv) != 2:
        print(__doc__.strip().splitlines()[2].strip(), file=sys.stderr)
        return 2
    path = sys.argv[1]
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"{path}: {e}", file=sys.stderr)
        return 1
    try:
        validate(doc)
    except Invalid as e:
        print(f"{path}: invalid takolint-v1: {e}", file=sys.stderr)
        return 1
    total = sum(1 for f in doc["findings"] if not f["suppressed"])
    suppressed = len(doc["findings"]) - total
    print(f"{path}: valid takolint-v1 ({doc['files_scanned']} files, "
          f"{total} active findings, {suppressed} suppressed)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
