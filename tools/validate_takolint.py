#!/usr/bin/env python3
"""Validate a takolint-v2 report (takolint --json output).

Usage: tools/validate_takolint.py takolint.json

Checks the structural schema and the internal invariants a correct lint
run must satisfy: counts match the findings list, exit_code agrees with
the active-finding count and the warn_only flag, suppressed findings
carry reasons, and flow-rule findings (X2/H1/C1/L3) carry well-formed
witness traces whose steps land on positive lines in source order.
Exits 0 when valid, 1 with a message on the first violation. Stdlib
only, so CI can run it anywhere.
"""
import json
import sys

TOKEN_RULES = ("D1", "D2", "L1", "L2", "S1", "X1")
FLOW_RULES = ("X2", "H1", "C1", "L3")
RULES = TOKEN_RULES + FLOW_RULES


class Invalid(Exception):
    pass


def need(cond, msg):
    if not cond:
        raise Invalid(msg)


def is_uint(v):
    return isinstance(v, int) and not isinstance(v, bool) and v >= 0


def check_rules(doc):
    rules = doc.get("rules")
    need(isinstance(rules, list), "\"rules\" missing")
    ids = []
    for i, r in enumerate(rules):
        where = f"rules[{i}]"
        need(isinstance(r, dict), f"{where}: must be an object")
        need(r.get("id") in RULES, f"{where}: id must be one of {RULES}")
        need(isinstance(r.get("description"), str) and r["description"],
             f"{where}: missing description")
        ids.append(r["id"])
    need(sorted(ids) == sorted(set(ids)), "rules: duplicate ids")
    need(set(ids) == set(RULES), f"rules must cover exactly {RULES}")


def check_trace(f, where):
    trace = f.get("trace")
    if trace is None:
        # Traces are mandatory for flow rules: a flow finding without
        # its witness path cannot be reviewed.
        need(f["rule"] not in FLOW_RULES,
             f"{where}: {f['rule']} finding has no flow trace")
        return
    need(f["rule"] in FLOW_RULES,
         f"{where}: token rule {f['rule']} must not carry a trace")
    need(isinstance(trace, list) and trace,
         f"{where}: trace must be a non-empty array")
    prev = 0
    for j, step in enumerate(trace):
        swhere = f"{where}.trace[{j}]"
        need(isinstance(step, dict), f"{swhere}: must be an object")
        need(is_uint(step.get("line")) and step["line"] > 0,
             f"{swhere}: line must be a positive integer")
        need(isinstance(step.get("note"), str) and step["note"],
             f"{swhere}: missing note")
        need(step["line"] >= prev,
             f"{swhere}: trace lines must be in source order")
        prev = step["line"]
    need(trace[-1]["line"] == f["line"],
         f"{where}: trace must end at the finding line {f['line']}, "
         f"got {trace[-1]['line']}")


def check_findings(doc):
    findings = doc.get("findings")
    need(isinstance(findings, list), "\"findings\" missing")
    active = {r: 0 for r in RULES}
    for i, f in enumerate(findings):
        where = f"findings[{i}]"
        need(isinstance(f, dict), f"{where}: must be an object")
        need(f.get("rule") in RULES,
             f"{where}: rule must be one of {RULES}")
        need(isinstance(f.get("file"), str) and f["file"],
             f"{where}: missing file")
        need(is_uint(f.get("line")) and f["line"] > 0,
             f"{where}: line must be a positive integer")
        need(isinstance(f.get("message"), str) and f["message"],
             f"{where}: missing message")
        need(isinstance(f.get("suppressed"), bool),
             f"{where}: missing suppressed flag")
        if f["suppressed"]:
            need(isinstance(f.get("reason"), str),
                 f"{where}: suppressed finding without a reason")
        else:
            active[f["rule"]] += 1
        check_trace(f, where)
    return active


def check_unused(doc):
    unused = doc.get("unused_suppressions")
    need(isinstance(unused, list), "\"unused_suppressions\" missing")
    seen = set()
    for i, u in enumerate(unused):
        where = f"unused_suppressions[{i}]"
        need(isinstance(u, dict), f"{where}: must be an object")
        need(isinstance(u.get("file"), str) and u["file"],
             f"{where}: missing file")
        need(is_uint(u.get("line")) and u["line"] > 0,
             f"{where}: bad line")
        need(isinstance(u.get("rule"), str) and u["rule"],
             f"{where}: missing rule")
        key = (u["file"], u["line"], u["rule"])
        need(key not in seen,
             f"{where}: duplicate unused-suppression entry for "
             f"{u['file']}:{u['line']} ({u['rule']})")
        seen.add(key)


def validate(doc):
    need(doc.get("schema") == "takolint-v2",
         "\"schema\" must be \"takolint-v2\"")
    roots = doc.get("roots")
    need(isinstance(roots, list) and roots and
         all(isinstance(r, str) and r for r in roots),
         "\"roots\" must be a non-empty string array")
    need(is_uint(doc.get("files_scanned")) and doc["files_scanned"] > 0,
         "\"files_scanned\" must be positive")
    need(isinstance(doc.get("warn_only"), bool),
         "\"warn_only\" must be a boolean")
    check_rules(doc)
    active = check_findings(doc)
    check_unused(doc)

    counts = doc.get("counts")
    need(isinstance(counts, dict), "\"counts\" missing")
    need(set(counts) == set(RULES), f"counts must cover exactly {RULES}")
    for rule in RULES:
        need(is_uint(counts[rule]), f"counts.{rule} must be a uint")
        need(counts[rule] == active[rule],
             f"counts.{rule}={counts[rule]} but findings list has "
             f"{active[rule]} active {rule} findings")

    total = sum(active.values())
    need(doc.get("exit_code") in (0, 1), "\"exit_code\" must be 0 or 1")
    expect = 1 if (total and not doc["warn_only"]) else 0
    need(doc["exit_code"] == expect,
         f"exit_code={doc['exit_code']} disagrees with {total} active "
         f"findings (warn_only={doc['warn_only']})")


def main():
    if len(sys.argv) != 2:
        print(__doc__.strip().splitlines()[2].strip(), file=sys.stderr)
        return 2
    path = sys.argv[1]
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"{path}: {e}", file=sys.stderr)
        return 1
    try:
        validate(doc)
    except Invalid as e:
        print(f"{path}: invalid takolint-v2: {e}", file=sys.stderr)
        return 1
    total = sum(1 for f in doc["findings"] if not f["suppressed"])
    suppressed = len(doc["findings"]) - total
    mode = " [warn-only]" if doc["warn_only"] else ""
    print(f"{path}: valid takolint-v2 ({doc['files_scanned']} files, "
          f"{total} active findings, {suppressed} suppressed{mode})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
