#!/usr/bin/env python3
"""Independent takotrace-v1 schema and invariant checker.

A second, stdlib-only implementation of the decoder (see DESIGN.md
Sec. 4.9 and src/trace/format.hh) so CI catches format drift between
the C++ codec and the documented spec. Checks, per file:

  - file header: magic, version, known flag bits;
  - chunk directory: magics, firstIndex continuity, exact coverage of
    the file (no trailing bytes), header record count == sum of chunks;
  - every chunk payload: CRC-32 (binascii.crc32 — same IEEE polynomial
    as the C++ table), full record decode with no reserved head bits,
    valid ops, in-range sizes/tenants, and no bytes left over;
  - timestamps non-decreasing file-wide when the flag is set.

Exit 0 iff every file validates. Usage:

  validate_takotrace.py zoo/*.takotrace
"""

import argparse
import binascii
import struct
import sys

MAGIC = b"takotrc1"
VERSION = 1
CHUNK_MAGIC = 0x314B4843
FLAG_TIMESTAMPS = 1 << 0
FILE_HEADER = struct.Struct("<8sIIQQ")
CHUNK_HEADER = struct.Struct("<IIIIQ")
NUM_OPS = 6
HEAD_HAS_SIZE = 1 << 3
HEAD_HAS_TENANT = 1 << 4
HEAD_HAS_TS = 1 << 5
HEAD_RESERVED = 0xC0


class TraceError(Exception):
    pass


def get_varint(data, pos, end):
    """Decode one LEB128 value; returns (value, new_pos)."""
    value = 0
    shift = 0
    while pos < end and shift < 64:
        byte = data[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7
    raise TraceError("truncated or over-long varint")


def zigzag_decode(v):
    return (v >> 1) ^ -(v & 1)


def check_chunk(data, start, end, nrecords, timestamps, last_ts):
    """Decode one chunk payload; returns the last timestamp seen."""
    pos = start
    prev_addr, prev_size, prev_tenant, prev_ts = 0, 8, 0, 0
    for i in range(nrecords):
        if pos >= end:
            raise TraceError(f"payload ends mid-record at record {i}")
        head = data[pos]
        pos += 1
        if head & HEAD_RESERVED:
            raise TraceError(f"record {i}: reserved head bits set")
        if (head & 0x07) >= NUM_OPS:
            raise TraceError(f"record {i}: invalid op {head & 0x07}")
        if head & HEAD_HAS_TS and not timestamps:
            raise TraceError(
                f"record {i}: timestamp in an untimestamped file")
        delta, pos = get_varint(data, pos, end)
        prev_addr = (prev_addr + zigzag_decode(delta)) & (2**64 - 1)
        if head & HEAD_HAS_SIZE:
            prev_size, pos = get_varint(data, pos, end)
            if prev_size == 0 or prev_size > 2**32 - 1:
                raise TraceError(f"record {i}: bad size {prev_size}")
        if head & HEAD_HAS_TENANT:
            prev_tenant, pos = get_varint(data, pos, end)
            if prev_tenant > 2**32 - 1:
                raise TraceError(
                    f"record {i}: bad tenant {prev_tenant}")
        if head & HEAD_HAS_TS:
            dt, pos = get_varint(data, pos, end)
            prev_ts += dt
        if timestamps:
            # The per-chunk delta context starts at 0, so prev_ts is the
            # record's absolute timestamp; it may never go backwards
            # anywhere in the file.
            if prev_ts < last_ts:
                raise TraceError(
                    f"record {i}: timestamp {prev_ts} goes backwards "
                    f"(previous {last_ts})")
            last_ts = prev_ts
    if pos != end:
        raise TraceError(
            f"{end - pos} payload bytes left after the last record")
    return last_ts


def validate(path):
    with open(path, "rb") as f:
        data = f.read()
    if len(data) < FILE_HEADER.size:
        raise TraceError("shorter than a file header")
    magic, version, flags, record_count, chunk_count = (
        FILE_HEADER.unpack_from(data, 0))
    if magic != MAGIC:
        raise TraceError("bad magic (not a takotrace file)")
    if version != VERSION:
        raise TraceError(f"format version {version}, expected {VERSION}")
    if flags & ~FLAG_TIMESTAMPS:
        raise TraceError(f"unknown flag bits {flags:#x}")
    timestamps = bool(flags & FLAG_TIMESTAMPS)

    pos = FILE_HEADER.size
    total = 0
    last_ts = 0
    for ci in range(chunk_count):
        if pos + CHUNK_HEADER.size > len(data):
            raise TraceError(f"truncated at chunk {ci} header")
        cmagic, crecords, payload_bytes, crc, first_index = (
            CHUNK_HEADER.unpack_from(data, pos))
        if cmagic != CHUNK_MAGIC:
            raise TraceError(f"chunk {ci}: bad magic {cmagic:#x}")
        if crecords == 0:
            raise TraceError(f"chunk {ci}: empty chunk")
        if first_index != total:
            raise TraceError(
                f"chunk {ci}: firstIndex {first_index} != running "
                f"count {total}")
        start = pos + CHUNK_HEADER.size
        end = start + payload_bytes
        if end > len(data):
            raise TraceError(f"truncated in chunk {ci} payload")
        got = binascii.crc32(data[start:end])
        if got != crc:
            raise TraceError(
                f"chunk {ci}: CRC mismatch (stored {crc:#010x}, "
                f"computed {got:#010x})")
        try:
            last_ts = check_chunk(data, start, end, crecords,
                                  timestamps, last_ts)
        except TraceError as e:
            raise TraceError(f"chunk {ci}: {e}") from None
        total += crecords
        pos = end
    if pos != len(data):
        raise TraceError(
            f"{len(data) - pos} trailing bytes after the last chunk")
    if total != record_count:
        hint = " (unclosed writer?)" if record_count == 0 else ""
        raise TraceError(
            f"header says {record_count} records, chunks hold "
            f"{total}{hint}")
    return record_count, chunk_count, timestamps


def main():
    ap = argparse.ArgumentParser(
        description="validate takotrace-v1 files against the spec")
    ap.add_argument("files", nargs="+", help=".takotrace files")
    args = ap.parse_args()

    failures = 0
    for path in args.files:
        try:
            records, chunks, ts = validate(path)
        except (TraceError, OSError) as e:
            print(f"FAIL {path}: {e}")
            failures += 1
        else:
            stamp = "ts" if ts else "no-ts"
            print(f"ok   {path}: {records} records, {chunks} chunks, "
                  f"{stamp}")
    if failures:
        print(f"validate_takotrace: {failures} of {len(args.files)} "
              f"file(s) invalid")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
