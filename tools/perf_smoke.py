#!/usr/bin/env python3
"""Kernel perf smoke: microbench + one profiled takosim run -> BENCH_perf.json.

Usage: tools/perf_smoke.py [--bin-dir build] [--out BENCH_perf.json]
                           [--quick]

Runs the kernel microbenchmarks (schedule/fire throughput old vs. new,
coroutine spawn/resume) and one end-to-end profiled takosim run, then
merges both into a single "takoperf-v1" JSON artifact. CI uploads the
artifact per commit so events/sec has a trajectory; feed one or more of
these files to tools/plot_results.py to render the trend.

Exit status is non-zero if either child fails or if the new event queue
fails to beat the legacy baseline by at least MIN_SPEEDUP (the PR's
regression gate).
"""
import argparse
import json
import os
import subprocess
import sys

MIN_SPEEDUP = 2.0
KERNEL_FILTER = "BM_EventQueue|BM_Coroutine"


def run_microbench(bin_dir, quick):
    exe = os.path.join(bin_dir, "bench", "micro_kernels")
    out = os.path.join(bin_dir, "micro_kernels_perf.json")
    cmd = [
        exe,
        f"--benchmark_filter={KERNEL_FILTER}",
        "--benchmark_format=json",
        f"--benchmark_out={out}",
        "--benchmark_out_format=json",
    ]
    if not quick:
        # Plain double: this google-benchmark build rejects "0.2s".
        cmd.append("--benchmark_min_time=0.2")
    subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)
    doc = json.load(open(out))
    benches = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        benches[b["name"]] = {
            "items_per_second": b.get("items_per_second", 0.0),
            "cpu_time_ns": b.get("cpu_time", 0.0),
        }
    return doc.get("context", {}), benches


def run_takosim(bin_dir, quick):
    exe = os.path.join(bin_dir, "tools", "takosim")
    stats = os.path.join(bin_dir, "perf_smoke_stats.json")
    prof = os.path.join(bin_dir, "perf_smoke_prof.json")
    cmd = [
        exe,
        "--workload=decompress",
        "--variant=tako",
        f"--stats-json={stats}",
        f"--profile={prof}",
    ]
    env = dict(os.environ)
    if quick:
        env["TAKO_QUICK"] = "1"
    subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL, env=env)
    doc = json.load(open(stats))
    return {
        "workload": "decompress",
        "variant": "tako",
        "host_seconds": doc.get("host_seconds", 0.0),
        "sim_events": doc.get("sim_events", 0.0),
        "events_per_sec": doc.get("events_per_sec", 0.0),
        "git_rev": doc.get("git_rev", "unknown"),
    }, prof


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--bin-dir", default="build")
    ap.add_argument("--out", default="BENCH_perf.json")
    ap.add_argument("--quick", action="store_true",
                    help="short benchmark reps + quick-mode takosim")
    args = ap.parse_args()

    context, benches = run_microbench(args.bin_dir, args.quick)
    takosim, prof_path = run_takosim(args.bin_dir, args.quick)

    new = benches.get("BM_EventQueueSchedule", {}).get("items_per_second", 0)
    old = benches.get("BM_EventQueueScheduleLegacy", {}) \
                 .get("items_per_second", 0)
    speedup = new / old if old else 0.0

    report = {
        "schema": "takoperf-v1",
        "git_rev": takosim["git_rev"],
        "host": {
            "cpu": context.get("host_name", ""),
            "num_cpus": context.get("num_cpus", 0),
            "mhz_per_cpu": context.get("mhz_per_cpu", 0),
            "build_type": context.get("library_build_type", ""),
        },
        "benchmarks": benches,
        "event_queue_speedup_vs_legacy": speedup,
        "takosim": takosim,
    }
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")

    print(f"perf_smoke: schedule/fire {new / 1e6:.1f} M/s "
          f"(legacy {old / 1e6:.1f} M/s, {speedup:.1f}x), "
          f"takosim {takosim['events_per_sec'] / 1e6:.2f} M events/s "
          f"-> {args.out}")
    if os.path.exists(prof_path):
        print(f"perf_smoke: profiled run wrote {prof_path}")
    if speedup < MIN_SPEEDUP:
        print(f"perf_smoke: FAIL: event-queue speedup {speedup:.2f}x "
              f"< required {MIN_SPEEDUP}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
