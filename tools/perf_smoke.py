#!/usr/bin/env python3
"""Kernel perf smoke: microbench + one profiled takosim run -> BENCH_perf.json.

Usage: tools/perf_smoke.py [--bin-dir build] [--out BENCH_perf.json]
                           [--quick]

Runs the kernel microbenchmarks (schedule/fire throughput old vs. new,
coroutine spawn/resume) and one end-to-end profiled takosim run, then
merges both into a single "takoperf-v1" JSON artifact. CI uploads the
artifact per commit so events/sec has a trajectory; feed one or more of
these files to tools/plot_results.py to render the trend.

Exit status is non-zero if either child fails or if the new event queue
fails to beat the legacy baseline by at least MIN_SPEEDUP (the PR's
regression gate).

Perf numbers are only comparable between trusted artifacts: a Release
build of a clean (committed) tree. Anything else — a Debug/RelWithDebInfo
binary, a ``-dirty`` working tree — is refused by default; pass
``--allow-untrusted`` to emit the artifact anyway, loudly tagged with
``"untrusted": true`` and the reasons, with every perf gate skipped so
meaningless numbers can neither pass nor fail a gate (and so
plot_results.py / future regression tooling can exclude them).
"""
import argparse
import json
import os
import subprocess
import sys
import time

MIN_SPEEDUP = 2.0
# Required wall-clock speedup of a --replicate ensemble at --shards=4
# over --shards=1 (4 independent replicas across 4 host lanes). Only
# enforced when the host actually has >= 4 CPUs: on smaller runners the
# lanes time-share and the measurement is meaningless.
MIN_SHARD_SPEEDUP = 2.0
# Required wall-clock speedup of ONE 16-tile run at --shards=4 over
# --shards=1: the decomposed model executing a single simulation across
# four shard-domain workers (not an ensemble). Same host-CPU guard as
# the ensemble gate.
MIN_SINGLE_RUN_SPEEDUP = 1.8
KERNEL_FILTER = "BM_EventQueue|BM_Coroutine"


def trust_problems(build_type, git_rev):
    """Why this artifact's numbers are not comparable (empty = trusted)."""
    problems = []
    if build_type.lower() != "release":
        problems.append(
            f"build_type is {build_type or 'unknown'!r}, not a Release "
            "build")
    if git_rev.endswith("-dirty") or git_rev == "unknown":
        problems.append(f"git rev {git_rev!r} is not a clean commit")
    return problems


def run_microbench(bin_dir, quick):
    exe = os.path.join(bin_dir, "bench", "micro_kernels")
    out = os.path.join(bin_dir, "micro_kernels_perf.json")
    cmd = [
        exe,
        f"--benchmark_filter={KERNEL_FILTER}",
        "--benchmark_format=json",
        f"--benchmark_out={out}",
        "--benchmark_out_format=json",
    ]
    if not quick:
        # Plain double: this google-benchmark build rejects "0.2s".
        cmd.append("--benchmark_min_time=0.2")
    subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)
    doc = json.load(open(out))
    benches = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        benches[b["name"]] = {
            "items_per_second": b.get("items_per_second", 0.0),
            "cpu_time_ns": b.get("cpu_time", 0.0),
        }
    return doc.get("context", {}), benches


def run_takosim(bin_dir, quick):
    exe = os.path.join(bin_dir, "tools", "takosim")
    stats = os.path.join(bin_dir, "perf_smoke_stats.json")
    prof = os.path.join(bin_dir, "perf_smoke_prof.json")
    cmd = [
        exe,
        "--workload=decompress",
        "--variant=tako",
        f"--stats-json={stats}",
        f"--profile={prof}",
    ]
    env = dict(os.environ)
    if quick:
        env["TAKO_QUICK"] = "1"
    subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL, env=env)
    doc = json.load(open(stats))
    return {
        "workload": "decompress",
        "variant": "tako",
        "host_seconds": doc.get("host_seconds", 0.0),
        "sim_events": doc.get("sim_events", 0.0),
        "events_per_sec": doc.get("events_per_sec", 0.0),
        "git_rev": doc.get("git_rev", "unknown"),
    }, prof


def run_shard_ensemble(bin_dir, quick):
    """Wall-time a 16-tile nightly-sized ensemble at 1 vs. 4 lanes.

    Determinism is gated elsewhere (test_shard, the quick-suite
    diff_metrics gates); this measures the parallelism payoff:
    --shards=N is the host-parallelism budget, spent on ensemble lanes
    under --replicate.
    """
    exe = os.path.join(bin_dir, "tools", "takosim")
    # phi at 16k vertices is the nightly-sized 16-tile run: long enough
    # (~seconds per replica) that lane scheduling, not process startup,
    # dominates the measurement.
    base = [
        exe,
        "--workload=phi",
        "--variant=tako",
        "--cores=16",
        "--vertices=16384",
        "--replicate=4",
    ]
    env = dict(os.environ)
    if quick:
        env["TAKO_QUICK"] = "1"
    walls = {}
    for shards in (1, 4):
        start = time.monotonic()
        subprocess.run(base + [f"--shards={shards}"], check=True,
                       stdout=subprocess.DEVNULL, env=env)
        walls[shards] = time.monotonic() - start
    return {
        "workload": "phi",
        "variant": "tako",
        "cores": 16,
        "vertices": 16384,
        "replicas": 4,
        "wall_sec_shards1": walls[1],
        "wall_sec_shards4": walls[4],
        "speedup": walls[1] / walls[4] if walls[4] > 0 else 0.0,
        "host_cpus": os.cpu_count() or 1,
    }


def run_shard_single(bin_dir, quick):
    """Wall-time ONE 16-tile run at --shards=1 vs. --shards=4.

    Unlike run_shard_ensemble (4 independent replicas spread across
    lanes), this is a single simulation decomposed across shard domains:
    each domain owns its tiles' cores, caches, engines, and routers and
    drains its own event queue under quantum barriers. Bit-identity of
    the result is gated elsewhere (test_shard, the CI quick-suite
    diffs); this measures the parallel payoff of the decomposition
    itself.
    """
    exe = os.path.join(bin_dir, "tools", "takosim")
    base = [
        exe,
        "--workload=phi",
        "--variant=tako",
        "--cores=16",
        "--vertices=16384",
    ]
    env = dict(os.environ)
    if quick:
        env["TAKO_QUICK"] = "1"
    walls = {}
    for shards in (1, 4):
        start = time.monotonic()
        subprocess.run(base + [f"--shards={shards}"], check=True,
                       stdout=subprocess.DEVNULL, env=env)
        walls[shards] = time.monotonic() - start
    return {
        "workload": "phi",
        "variant": "tako",
        "cores": 16,
        "vertices": 16384,
        "wall_sec_shards1": walls[1],
        "wall_sec_shards4": walls[4],
        "speedup": walls[1] / walls[4] if walls[4] > 0 else 0.0,
        "host_cpus": os.cpu_count() or 1,
    }


def run_trace_codec(bin_dir, quick):
    """Trace-frontend throughput: takotracegen encode, decode (dump to
    /dev/null), and full replay through the memory hierarchy, all in
    records/sec on a generated kv trace. Informational — the artifact
    gives the decoder a trajectory; no gate, since the codec is nowhere
    near the simulation bottleneck.
    """
    gen = os.path.join(bin_dir, "tools", "takotracegen")
    sim = os.path.join(bin_dir, "tools", "takosim")
    trace = os.path.join(bin_dir, "perf_smoke_trace.takotrace")
    records = 50_000 if quick else 500_000

    start = time.monotonic()
    subprocess.run(
        [gen, "--kind=kv", f"--records={records}", "--tenants=16",
         f"--out={trace}"],
        check=True, stderr=subprocess.DEVNULL)
    encode_sec = time.monotonic() - start

    start = time.monotonic()
    subprocess.run([gen, f"--dump={trace}"], check=True,
                   stdout=subprocess.DEVNULL)
    decode_sec = time.monotonic() - start

    stats = os.path.join(bin_dir, "perf_smoke_trace_stats.json")
    start = time.monotonic()
    subprocess.run(
        [sim, f"--trace={trace}", f"--stats-json={stats}"],
        check=True, stdout=subprocess.DEVNULL)
    replay_sec = time.monotonic() - start

    return {
        "kind": "kv",
        "records": records,
        "file_bytes": os.path.getsize(trace),
        "encode_records_per_sec":
            records / encode_sec if encode_sec > 0 else 0.0,
        "decode_records_per_sec":
            records / decode_sec if decode_sec > 0 else 0.0,
        "replay_records_per_sec":
            records / replay_sec if replay_sec > 0 else 0.0,
    }


def run_lint_cold(bin_dir):
    """Wall-time one cold takolint run over src/ (all ten rules, full
    cross-file symbol index). Informational — no gate; the artifact
    gives the analyzer's cost a per-commit trajectory so a quadratic
    slip in the flow pass shows up as a trend, not a CI timeout.
    Returns None when the binary isn't in this build (e.g. --quick
    bench-only trees).
    """
    exe = os.path.join(bin_dir, "tools", "takolint", "takolint")
    if not os.path.exists(exe):
        return None
    start = time.monotonic()
    proc = subprocess.run([exe, "src"], capture_output=True, text=True)
    wall = time.monotonic() - start
    files = 0
    for tok in proc.stdout.split():
        if tok.isdigit():
            files = int(tok)
            break
    return {
        "wall_sec": wall,
        "files_scanned": files,
        "files_per_sec": files / wall if wall > 0 else 0.0,
        "exit_code": proc.returncode,
    }


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--bin-dir", default="build")
    ap.add_argument("--out", default="BENCH_perf.json")
    ap.add_argument("--quick", action="store_true",
                    help="short benchmark reps + quick-mode takosim")
    ap.add_argument("--allow-untrusted", action="store_true",
                    help="emit an artifact even from a non-Release "
                    "build or a -dirty tree, tagged untrusted and with "
                    "every perf gate skipped")
    args = ap.parse_args()

    context, benches = run_microbench(args.bin_dir, args.quick)
    takosim, prof_path = run_takosim(args.bin_dir, args.quick)

    problems = trust_problems(context.get("library_build_type", ""),
                              takosim["git_rev"])
    if problems and not args.allow_untrusted:
        for p in problems:
            print(f"perf_smoke: REFUSED: {p}", file=sys.stderr)
        print("perf_smoke: perf numbers from such a build are not "
              "comparable; rebuild with -DCMAKE_BUILD_TYPE=Release on "
              "a clean commit, or pass --allow-untrusted to emit a "
              "tagged artifact with the gates skipped", file=sys.stderr)
        return 1

    shard = run_shard_ensemble(args.bin_dir, args.quick)
    single = run_shard_single(args.bin_dir, args.quick)
    trace = run_trace_codec(args.bin_dir, args.quick)
    lint = run_lint_cold(args.bin_dir)

    new = benches.get("BM_EventQueueSchedule", {}).get("items_per_second", 0)
    old = benches.get("BM_EventQueueScheduleLegacy", {}) \
                 .get("items_per_second", 0)
    speedup = new / old if old else 0.0

    report = {
        "schema": "takoperf-v1",
        "git_rev": takosim["git_rev"],
        "host": {
            "cpu": context.get("host_name", ""),
            "num_cpus": context.get("num_cpus", 0),
            "mhz_per_cpu": context.get("mhz_per_cpu", 0),
            "build_type": context.get("library_build_type", ""),
        },
        "benchmarks": benches,
        "event_queue_speedup_vs_legacy": speedup,
        "takosim": takosim,
        "shard_ensemble": shard,
        "shard_single_run": single,
        "trace_codec": trace,
    }
    if lint is not None:
        report["lint_cold_run"] = lint
    if problems:
        report["untrusted"] = True
        report["untrusted_reasons"] = problems
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")

    print(f"perf_smoke: schedule/fire {new / 1e6:.1f} M/s "
          f"(legacy {old / 1e6:.1f} M/s, {speedup:.1f}x), "
          f"takosim {takosim['events_per_sec'] / 1e6:.2f} M events/s "
          f"-> {args.out}")
    if os.path.exists(prof_path):
        print(f"perf_smoke: profiled run wrote {prof_path}")
    print(f"perf_smoke: shard ensemble 4x16-tile replicas "
          f"{shard['wall_sec_shards1']:.2f}s at 1 lane, "
          f"{shard['wall_sec_shards4']:.2f}s at 4 lanes "
          f"({shard['speedup']:.2f}x, {shard['host_cpus']} host CPUs)")
    print(f"perf_smoke: single 16-tile run "
          f"{single['wall_sec_shards1']:.2f}s at --shards=1, "
          f"{single['wall_sec_shards4']:.2f}s at --shards=4 "
          f"({single['speedup']:.2f}x, {single['host_cpus']} host CPUs)")
    print(f"perf_smoke: trace codec ({trace['records']} kv records) "
          f"encode {trace['encode_records_per_sec'] / 1e6:.1f} M/s, "
          f"decode {trace['decode_records_per_sec'] / 1e6:.1f} M/s, "
          f"replay {trace['replay_records_per_sec'] / 1e3:.0f} K/s")
    if lint is not None:
        print(f"perf_smoke: takolint cold run over src/ "
              f"{lint['wall_sec']:.2f}s ({lint['files_scanned']} files, "
              f"{lint['files_per_sec']:.0f} files/s)")
    if problems:
        for p in problems:
            print(f"perf_smoke: UNTRUSTED: {p}", file=sys.stderr)
        print(f"perf_smoke: artifact {args.out} tagged untrusted; perf "
              f"gates skipped", file=sys.stderr)
        return 0
    if speedup < MIN_SPEEDUP:
        print(f"perf_smoke: FAIL: event-queue speedup {speedup:.2f}x "
              f"< required {MIN_SPEEDUP}x", file=sys.stderr)
        return 1
    if shard["host_cpus"] >= 4 and shard["speedup"] < MIN_SHARD_SPEEDUP:
        print(f"perf_smoke: FAIL: shard-ensemble speedup "
              f"{shard['speedup']:.2f}x < required {MIN_SHARD_SPEEDUP}x "
              f"on a {shard['host_cpus']}-CPU host", file=sys.stderr)
        return 1
    if (single["host_cpus"] >= 4
            and single["speedup"] < MIN_SINGLE_RUN_SPEEDUP):
        print(f"perf_smoke: FAIL: single-run shard speedup "
              f"{single['speedup']:.2f}x < required "
              f"{MIN_SINGLE_RUN_SPEEDUP}x "
              f"on a {single['host_cpus']}-CPU host", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
