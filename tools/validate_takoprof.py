#!/usr/bin/env python3
"""Validate a takoprof-v1 profile (takosim --profile output).

Usage: tools/validate_takoprof.py prof.json

Checks the structural schema and the internal invariants that a correct
profiler run must satisfy (miss classes partition misses, timeline
arrays are parallel, the NoC heatmap matches the mesh dimensions).
Exits 0 when valid, 1 with a message on the first violation. Stdlib
only, so CI can run it anywhere.
"""
import json
import sys

KIND_NAMES = ("onMiss", "onEviction", "onWriteback")
CYCLE_PHASES = ("admission_wait", "addr_wait", "dispatch", "xlate",
                "body", "total")
MISS_LEVELS = ("l1", "l2", "l3")


class Invalid(Exception):
    pass


def need(cond, msg):
    if not cond:
        raise Invalid(msg)


def is_uint(v):
    return isinstance(v, int) and not isinstance(v, bool) and v >= 0


def check_callbacks(doc):
    need(isinstance(doc.get("callbacks"), list), "\"callbacks\" missing")
    for i, cb in enumerate(doc["callbacks"]):
        where = f"callbacks[{i}]"
        need(isinstance(cb.get("morph"), str) and cb["morph"],
             f"{where}: missing morph name")
        need(cb.get("kind") in KIND_NAMES,
             f"{where}: kind must be one of {KIND_NAMES}")
        need(is_uint(cb.get("tile")), f"{where}: missing tile")
        need(is_uint(cb.get("count")) and cb["count"] > 0,
             f"{where}: count must be a positive integer")
        cycles = cb.get("cycles")
        need(isinstance(cycles, dict), f"{where}: missing cycles object")
        for phase in CYCLE_PHASES:
            need(is_uint(cycles.get(phase)),
                 f"{where}: cycles.{phase} missing or negative")
        parts = sum(cycles[p] for p in CYCLE_PHASES if p != "total")
        need(parts <= cycles["total"],
             f"{where}: phase cycles exceed total")


def check_miss_class(doc):
    mc = doc.get("miss_class")
    need(isinstance(mc, dict), "\"miss_class\" missing")
    for level in MISS_LEVELS:
        lv = mc.get(level)
        where = f"miss_class.{level}"
        need(isinstance(lv, dict), f"{where} missing")
        for k in ("accesses", "hits", "misses", "compulsory", "capacity",
                  "conflict"):
            need(is_uint(lv.get(k)), f"{where}.{k} missing or negative")
        need(lv["hits"] + lv["misses"] == lv["accesses"],
             f"{where}: hits + misses != accesses")
        need(lv["compulsory"] + lv["capacity"] + lv["conflict"] ==
             lv["misses"],
             f"{where}: classes do not partition misses")
        hist = lv.get("reuse_hist")
        need(isinstance(hist, dict), f"{where}.reuse_hist missing")
        need(is_uint(hist.get("first_touch")),
             f"{where}.reuse_hist.first_touch missing")
        buckets = hist.get("log2_buckets")
        need(isinstance(buckets, list) and all(is_uint(b) for b in buckets),
             f"{where}.reuse_hist.log2_buckets must be a uint array")
        need(hist["first_touch"] + sum(buckets) == lv["accesses"],
             f"{where}.reuse_hist does not sum to accesses")


def check_engines(doc):
    need(isinstance(doc.get("engines"), list), "\"engines\" missing")
    for i, e in enumerate(doc["engines"]):
        where = f"engines[{i}]"
        need(is_uint(e.get("tile")), f"{where}: missing tile")
        need(is_uint(e.get("peak_occupancy")),
             f"{where}: missing peak_occupancy")
        occ = e.get("occupancy_cycles")
        need(isinstance(occ, list) and all(is_uint(c) for c in occ),
             f"{where}: occupancy_cycles must be a uint array")
        tl = e.get("timeline")
        need(isinstance(tl, dict), f"{where}: missing timeline")
        ticks, levels = tl.get("ticks"), tl.get("occupancy")
        need(isinstance(ticks, list) and isinstance(levels, list) and
             len(ticks) == len(levels),
             f"{where}: timeline ticks/occupancy must be parallel arrays")
        need(is_uint(tl.get("dropped")), f"{where}: timeline.dropped")
        need(ticks == sorted(ticks),
             f"{where}: timeline ticks must be non-decreasing")


def check_noc(doc):
    noc = doc.get("noc")
    need(isinstance(noc, dict), "\"noc\" missing")
    need(is_uint(noc.get("dim_x")) and noc["dim_x"] > 0,
         "noc.dim_x missing")
    need(is_uint(noc.get("dim_y")) and noc["dim_y"] > 0,
         "noc.dim_y missing")
    tiles = noc["dim_x"] * noc["dim_y"]
    links = noc.get("links")
    need(isinstance(links, list), "noc.links missing")
    need(len(links) == tiles * 4,
         f"noc.links must have {tiles * 4} entries (4 per tile)")
    for i, ln in enumerate(links):
        where = f"noc.links[{i}]"
        need(is_uint(ln.get("tile")) and ln["tile"] < tiles,
             f"{where}: bad tile")
        need(ln.get("dir") in ("E", "W", "N", "S"), f"{where}: bad dir")
        need(is_uint(ln.get("busy_cycles")), f"{where}: busy_cycles")
        need(is_uint(ln.get("messages")), f"{where}: messages")
    heat = noc.get("tile_busy")
    need(isinstance(heat, list) and len(heat) == noc["dim_y"],
         f"noc.tile_busy must have dim_y={noc['dim_y']} rows")
    for y, row in enumerate(heat):
        need(isinstance(row, list) and len(row) == noc["dim_x"],
             f"noc.tile_busy[{y}] must have dim_x={noc['dim_x']} columns")
        need(all(is_uint(v) for v in row),
             f"noc.tile_busy[{y}]: entries must be uints")
    # The heatmap is derived from the links: each cell sums its tile's
    # four outgoing links.
    for y, row in enumerate(heat):
        for x, v in enumerate(row):
            t = y * noc["dim_x"] + x
            s = sum(ln["busy_cycles"] for ln in links if ln["tile"] == t)
            need(v == s,
                 f"noc.tile_busy[{y}][{x}] != sum of tile {t} links")
    # Message reconciliation: every traverse is either a local delivery
    # (src == dst, touches no link) or a remote one that crosses between
    # 1 and (dim_x-1)+(dim_y-1) links under XY routing; each link counts
    # a message once per hop.
    need(is_uint(noc.get("messages")), "noc.messages missing")
    need(is_uint(noc.get("local_messages")), "noc.local_messages missing")
    need(noc["local_messages"] <= noc["messages"],
         "noc.local_messages exceeds noc.messages")
    remote = noc["messages"] - noc["local_messages"]
    link_msgs = sum(ln["messages"] for ln in links)
    need(link_msgs >= remote,
         f"per-link message totals ({link_msgs}) cannot cover "
         f"{remote} remote messages")
    max_hops = (noc["dim_x"] - 1) + (noc["dim_y"] - 1)
    need(link_msgs <= remote * max_hops,
         f"per-link message totals ({link_msgs}) exceed {remote} remote "
         f"messages x {max_hops} max XY hops")
    if remote == 0:
        need(link_msgs == 0,
             "links carry messages but every traverse was local")


def check_set_heat(doc):
    heat = doc.get("set_heat")
    need(isinstance(heat, dict), "\"set_heat\" missing")
    for level, arr in heat.items():
        need(isinstance(arr, list) and all(is_uint(v) for v in arr),
             f"set_heat.{level} must be a uint array")


def check_folded(doc):
    folded = doc.get("folded")
    need(isinstance(folded, list), "\"folded\" missing")
    for i, line in enumerate(folded):
        where = f"folded[{i}]"
        need(isinstance(line, str), f"{where}: must be a string")
        stack, _, count = line.rpartition(" ")
        need(stack and count.isdigit(), f"{where}: not 'stack count'")
        need(len(stack.split(";")) == 4,
             f"{where}: stack must be tile;morph;kind;phase")


def validate(doc):
    need(doc.get("schema") == "takoprof-v1",
         "\"schema\" must be \"takoprof-v1\"")
    need(is_uint(doc.get("end_cycle")), "\"end_cycle\" missing")
    check_callbacks(doc)
    check_engines(doc)
    check_miss_class(doc)
    check_noc(doc)
    check_set_heat(doc)
    check_folded(doc)


def main():
    if len(sys.argv) != 2:
        print(__doc__.strip().splitlines()[2].strip(), file=sys.stderr)
        return 2
    path = sys.argv[1]
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"{path}: {e}", file=sys.stderr)
        return 1
    try:
        validate(doc)
    except Invalid as e:
        print(f"{path}: invalid takoprof-v1: {e}", file=sys.stderr)
        return 1
    print(f"{path}: valid takoprof-v1 "
          f"({len(doc['callbacks'])} callback rows, "
          f"{len(doc['engines'])} engines, "
          f"{doc['noc']['dim_x']}x{doc['noc']['dim_y']} mesh)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
