/**
 * @file
 * takolint's flow layer: the pieces that turn the lexer's token stream
 * into something the partition-safety rules (X2/H1/C1/L3) can reason
 * about.
 *
 *  - Cursor: a bounds-checked view over a file's significant tokens,
 *    shared with the token-level rule engine (rules.cc).
 *  - parse.cc: a lightweight function-body parser that recovers
 *    statements, lambda captures, and `co_await` suspension points
 *    into a per-function CFG of basic blocks. It is not a compiler:
 *    control flow is approximated (switch bodies are linear-plus-skip,
 *    gotos are path terminators) and declarations are matched by
 *    pattern, with the suppression syntax as the release valve.
 *  - symbols.cc: a two-pass cross-file symbol index — pass A records
 *    class definitions and `// takolint: domain-local` annotations,
 *    pass B records every identifier declared with an annotated type
 *    (members in a .hh are captured/posted from a .cc, so the index is
 *    global and over-approximating, exactly like the D1 index).
 *  - flow_rules.cc: the X2/H1/C1/L3 checks, reporting each finding
 *    with a flow trace of the witness path.
 */

#ifndef TAKO_TOOLS_TAKOLINT_FLOW_HH
#define TAKO_TOOLS_TAKOLINT_FLOW_HH

#include <functional>
#include <utility>

#include "lint.hh"

namespace takolint
{

/** Cursor over a file's significant tokens. */
class Cursor
{
  public:
    explicit Cursor(const SourceFile &f) : f_(f) {}

    int size() const { return static_cast<int>(f_.sig.size()); }

    const Token &
    tok(int i) const
    {
        static const Token none{Tok::Punct, "", 0};
        if (i < 0 || i >= size())
            return none;
        return f_.tokens[static_cast<std::size_t>(f_.sig[i])];
    }

    const std::string &text(int i) const { return tok(i).text; }
    int line(int i) const { return tok(i).line; }
    bool is(int i, const char *t) const { return text(i) == t; }
    bool isIdent(int i) const { return tok(i).kind == Tok::Ident; }

    /** Index of the matcher for the opener at @p i ("(" / "[" / "{"),
     *  or size() when unbalanced. */
    int
    match(int i, const char *open, const char *close) const
    {
        int depth = 0;
        for (int j = i; j < size(); ++j) {
            if (is(j, open))
                ++depth;
            else if (is(j, close) && --depth == 0)
                return j;
        }
        return size();
    }

    /** Index of the opener for the closer at @p i (")" / "]" / "}"),
     *  or -1 when unbalanced. */
    int
    matchBack(int i, const char *open, const char *close) const
    {
        int depth = 0;
        for (int j = i; j >= 0; --j) {
            if (is(j, close))
                ++depth;
            else if (is(j, open) && --depth == 0)
                return j;
        }
        return -1;
    }

    /**
     * Skip a template argument list starting at "<" (index @p i);
     * returns the index just past the matching ">". ">>" counts twice.
     */
    int
    skipTemplateArgs(int i) const
    {
        int depth = 0;
        for (int j = i; j < size(); ++j) {
            const std::string &t = text(j);
            if (t == "<")
                ++depth;
            else if (t == ">") {
                if (--depth == 0)
                    return j + 1;
            } else if (t == ">>") {
                depth -= 2;
                if (depth <= 0)
                    return j + 1;
            } else if (t == ";" || t == "{") {
                break; // not actually a template argument list
            }
        }
        return i + 1;
    }

  private:
    const SourceFile &f_;
};

/** A lambda expression found inside a function body. */
struct Lambda
{
    int intro = -1;     ///< sig index of the `[` introducer
    int bodyBegin = -1; ///< sig index of the body `{`
    int bodyEnd = -1;   ///< sig index of the matching `}`
    bool refDefault = false; ///< `[&, ...]`
    bool valDefault = false; ///< `[=, ...]`
    bool capturesThis = false;
    /** `&name` captures: (name, line of the capture). */
    std::vector<std::pair<std::string, int>> refCaptures;
    /** Plain `name` value captures (the name refers to an enclosing
     *  binding). */
    std::vector<std::pair<std::string, int>> valCaptures;
    /** `name = expr` init-captures: the name is *fresh*, so it must
     *  not be matched against enclosing or indexed bindings. */
    std::vector<std::pair<std::string, int>> initCaptures;
    /** `name = &local` init-captures: (local, line). */
    std::vector<std::pair<std::string, int>> addrInitCaptures;
};

/** A `co_await` whose awaited call migrates the coroutine's domain. */
struct Suspension
{
    int at = -1; ///< sig index of the co_await token
    int line = 0;
    std::string callee; ///< hopTo / hopToAbs / hop
};

/** One basic block: token ranges [begin, end) plus successor edges. */
struct Block
{
    std::vector<std::pair<int, int>> ranges;
    std::vector<int> succs;
};

/** A parsed function (or lambda) body with its recovered CFG. */
struct Func
{
    std::string name;    ///< qualified name, or "<lambda>"
    int paramBegin = -1; ///< sig index of the parameter-list `(`
    int paramEnd = -1;   ///< sig index of the matching `)`
    int bodyBegin = -1;  ///< sig index of the body `{`
    int bodyEnd = -1;    ///< sig index of the matching `}`
    bool isLambda = false;
    Lambda lam; ///< capture info; valid when isLambda
    std::vector<Block> blocks; ///< block 0 is the entry
    std::vector<Suspension> suspensions; ///< outside nested lambdas
    std::vector<Lambda> lambdas; ///< directly nested lambdas
};

/**
 * Parse every function body in @p f — free functions, member
 * functions, and (recursively) every lambda, each as its own Func with
 * its own CFG. Lambda bodies are excluded from the enclosing
 * function's blocks and suspension list: the lambda executes on some
 * other frame at some other time, so its tokens are not part of the
 * enclosing flow.
 */
std::vector<Func> parseFunctions(const SourceFile &f);

/** The cross-file symbol index the flow rules consult. */
struct SymbolIndex
{
    /** Classes annotated `// takolint: domain-local`. */
    std::set<std::string> domainLocalClasses;
    /** Identifiers declared anywhere with an annotated type. */
    std::set<std::string> domainLocalVars;
    /** var -> the annotated class it was declared with (diagnostics). */
    std::map<std::string, std::string> varClass;
    /** class -> members declared in its definition (class membership;
     *  members of annotated types feed domainLocalVars). */
    std::map<std::string, std::vector<std::string>> classMembers;
};

/** Pass A: record class definitions + domain-local annotations. */
void indexClasses(const SourceFile &f, SymbolIndex &idx);

/** Pass B: record identifiers declared with annotated types. Requires
 *  every file's pass A to have run (the index is cross-file). */
void indexAnnotatedVars(const SourceFile &f, SymbolIndex &idx);

/** Sink for flow findings; rules.cc adapts this onto its dedupe +
 *  suppression machinery. */
using FlowSink = std::function<void(const std::string &rule, int line,
                                    std::string msg,
                                    std::vector<TraceStep> trace)>;

/** Run X2/H1/C1/L3 over @p f (already determined to be partition
 *  code), reporting through @p sink. */
void checkFlowRules(const SourceFile &f, const SymbolIndex &sym,
                    const Config &cfg, const FlowSink &sink);

} // namespace takolint

#endif // TAKO_TOOLS_TAKOLINT_FLOW_HH
