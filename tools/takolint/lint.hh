/**
 * @file
 * takolint: a determinism & lifetime static-analysis pass for tako-sim.
 *
 * A compiled C++20 linter with its own lexer and lightweight parser (no
 * libclang, no external deps) that enforces the project invariants the
 * quick suite's bit-identity gate depends on:
 *
 *   D1  no unordered-container state or iteration in model code
 *       (src/mem, src/tako, src/noc, src/sim, src/morphs, src/prof):
 *       hash order leaks into simulated behavior the moment anyone
 *       iterates, so model-side tables must be ordered containers or
 *       sorted drains.
 *   D2  no wall-clock, rand(), or getenv() reads on the simulated path:
 *       host state must never influence simulated time.
 *   L1  no by-reference lambda captures in callables passed to
 *       EventQueue::schedule/scheduleAbs or spawn(): the callable runs
 *       at a later tick, after the capturing frame is gone (PR 4's
 *       inline-storage EventQueue made this a silent use-after-scope).
 *   L2  no raw new/delete (or make_unique) of pooled types (EventNode):
 *       nodes must cycle through EventPool's free list.
 *   S1  stats resolved via cached handle() pointers at construction,
 *       not string lookups inside per-access code: registry calls are
 *       only allowed in constructors/destructors and finalize().
 *   X1  no static-duration mutable state in model code: sharded runs
 *       (SystemConfig::shards > 1) execute shards on concurrent host
 *       threads, so anything shared must either be immutable
 *       (const/constexpr/constinit), per-thread (thread_local), or go
 *       through the ShardedExecutor::send() mailbox API. Heuristic on
 *       the `static` keyword; unmarked namespace-scope globals are a
 *       known blind spot.
 *
 * Flow-sensitive partition-safety rules (v2) run over partition code
 * (the model directories plus src/workloads and src/system) on a
 * per-function CFG recovered by the lightweight parser (flow.hh):
 *
 *   X2  no direct EventQueue::schedule* on a foreign domain's queue
 *       (obtained via Domains::queueOf/queueOfDomain/queues or the
 *       queues_ table): cross-domain work must go through
 *       Domains::post/postAbs or ShardedExecutor::sendKeyed so it
 *       lands in the partition-invariant (tick, priority, key) order.
 *   H1  no use of a pre-hop reference (or, in a lambda, a by-ref
 *       capture or explicit `this`) after a migrating suspension point
 *       (`co_await hopTo/hopToAbs/hop`): the coroutine resumes in
 *       another domain, so references bound before the hop are stale;
 *       re-bind after each hop. Findings carry a flow trace naming the
 *       binding, the suspension point, and the stale use.
 *   C1  no `// takolint: domain-local` annotated object (Semaphore,
 *       Join, per-tile state) captured into a cross-domain callable
 *       (post/postAbs/sendKeyed) or used after a migrating hop: such
 *       objects must only ever be touched from the domain that owns
 *       them (funnel through an anchor tile, like SimBarrier).
 *   L3  no address of a stack local escaping into a deferred callable
 *       (schedule*, spawn, post, postAbs, sendKeyed) via `p = &local`
 *       init-captures or `&local` in the body: the callable outlives
 *       the frame.
 *
 * Any site can opt out with an explicit, reasoned suppression on the
 * same line or the line above:
 *
 *     // takolint: ok(D1, drained into a sorted vector below)
 *
 * Diagnostics are GCC-style `file:line: rule: message`; the driver also
 * emits a `takolint-v2` JSON report (see tools/validate_takolint.py)
 * whose flow-rule findings carry the witness path as a `trace` array.
 */

#ifndef TAKO_TOOLS_TAKOLINT_LINT_HH
#define TAKO_TOOLS_TAKOLINT_LINT_HH

#include <map>
#include <set>
#include <string>
#include <vector>

namespace takolint
{

/** Token kinds; Comment/Preproc are off the significant stream. */
enum class Tok
{
    Ident,
    Number,
    String,
    CharLit,
    Punct,
    Comment,
    Preproc,
};

struct Token
{
    Tok kind;
    std::string text;
    int line = 0;
};

/** One `takolint: ok(RULE, reason)` comment. */
struct Suppression
{
    std::string rule;
    std::string reason;
    int line = 0;   ///< line of the comment itself
    bool used = false;
};

/** A lexed source file plus its suppression comments. */
struct SourceFile
{
    std::string path;            ///< as passed (used in diagnostics)
    std::vector<Token> tokens;   ///< full stream, comments included
    std::vector<int> sig;        ///< indices of significant tokens
    std::vector<Suppression> suppressions;
    /** Lines carrying a `// takolint: domain-local` annotation; the
     *  class definition on the same or the next line is domain-local
     *  by contract (rule C1). */
    std::vector<int> domainLocalMarks;
};

/** Lex @p source (contents of @p path) into tokens + suppressions. */
SourceFile lex(const std::string &path, const std::string &source);

/** Read and lex a file; throws std::runtime_error on I/O failure. */
SourceFile lexFile(const std::string &path);

/** One hop of a flow-rule witness path (takolint-v2 `trace`). */
struct TraceStep
{
    int line = 0;
    std::string note;
};

struct Finding
{
    std::string rule;
    std::string file;
    int line = 0;
    std::string message;
    bool suppressed = false;
    std::string suppressReason; ///< set when suppressed
    /** Witness path for flow rules (X2/H1/C1/L3): binding site,
     *  suspension point, stale use — empty for token-level rules. */
    std::vector<TraceStep> trace;
};

struct UnusedSuppression
{
    std::string file;
    int line = 0;
    std::string rule;
};

struct Config
{
    /** Treat every scanned file as model code (fixture runs). */
    bool assumeModelCode = false;
    /** Honor `takolint: ok(...)` comments (off to audit them). */
    bool honorSuppressions = true;
    /** Restrict to these rule ids; empty = all rules. */
    std::set<std::string> rules;
};

struct Report
{
    std::vector<Finding> findings; ///< active + suppressed, file order
    std::vector<UnusedSuppression> unusedSuppressions;
    int filesScanned = 0;

    /** Findings that are not suppressed (what gates the exit code). */
    int
    activeCount() const
    {
        int n = 0;
        for (const auto &f : findings)
            n += f.suppressed ? 0 : 1;
        return n;
    }
};

/** Rule id -> one-line description, for --list-rules and the report. */
const std::map<std::string, std::string> &ruleDescriptions();

/** True when @p path lies in a model-code directory (see D1 above). */
bool isModelPath(const std::string &path);

/**
 * True when @p path participates in the domain decomposition: the model
 * directories plus src/workloads (SimBarrier, guest threads) and
 * src/system (the shard planner). The flow rules (X2/H1/C1/L3) run
 * here; the token rules keep their original model scope.
 */
bool isPartitionPath(const std::string &path);

/**
 * Expand files/directories into a sorted list of .hh/.cc sources.
 * Directories are walked recursively; build/ trees are skipped.
 */
std::vector<std::string> collectSources(const std::vector<std::string> &paths);

/** Run every enabled rule over @p files (two passes: index, check). */
Report lint(const std::vector<SourceFile> &files, const Config &cfg);

/** Convenience: lexFile() each path, then lint(). */
Report lintPaths(const std::vector<std::string> &paths, const Config &cfg);

/** GCC-style one-line rendering of @p f (no trailing newline). */
std::string format(const Finding &f);

} // namespace takolint

#endif // TAKO_TOOLS_TAKOLINT_LINT_HH
