/**
 * @file
 * takolint: a determinism & lifetime static-analysis pass for tako-sim.
 *
 * A compiled C++20 linter with its own lexer and lightweight parser (no
 * libclang, no external deps) that enforces the project invariants the
 * quick suite's bit-identity gate depends on:
 *
 *   D1  no unordered-container state or iteration in model code
 *       (src/mem, src/tako, src/noc, src/sim, src/morphs, src/prof):
 *       hash order leaks into simulated behavior the moment anyone
 *       iterates, so model-side tables must be ordered containers or
 *       sorted drains.
 *   D2  no wall-clock, rand(), or getenv() reads on the simulated path:
 *       host state must never influence simulated time.
 *   L1  no by-reference lambda captures in callables passed to
 *       EventQueue::schedule/scheduleAbs or spawn(): the callable runs
 *       at a later tick, after the capturing frame is gone (PR 4's
 *       inline-storage EventQueue made this a silent use-after-scope).
 *   L2  no raw new/delete (or make_unique) of pooled types (EventNode):
 *       nodes must cycle through EventPool's free list.
 *   S1  stats resolved via cached handle() pointers at construction,
 *       not string lookups inside per-access code: registry calls are
 *       only allowed in constructors/destructors and finalize().
 *   X1  no static-duration mutable state in model code: sharded runs
 *       (SystemConfig::shards > 1) execute shards on concurrent host
 *       threads, so anything shared must either be immutable
 *       (const/constexpr/constinit), per-thread (thread_local), or go
 *       through the ShardedExecutor::send() mailbox API. Heuristic on
 *       the `static` keyword; unmarked namespace-scope globals are a
 *       known blind spot.
 *
 * Any site can opt out with an explicit, reasoned suppression on the
 * same line or the line above:
 *
 *     // takolint: ok(D1, drained into a sorted vector below)
 *
 * Diagnostics are GCC-style `file:line: rule: message`; the driver also
 * emits a `takolint-v1` JSON report (see tools/validate_takolint.py).
 */

#ifndef TAKO_TOOLS_TAKOLINT_LINT_HH
#define TAKO_TOOLS_TAKOLINT_LINT_HH

#include <map>
#include <set>
#include <string>
#include <vector>

namespace takolint
{

/** Token kinds; Comment/Preproc are off the significant stream. */
enum class Tok
{
    Ident,
    Number,
    String,
    CharLit,
    Punct,
    Comment,
    Preproc,
};

struct Token
{
    Tok kind;
    std::string text;
    int line = 0;
};

/** One `takolint: ok(RULE, reason)` comment. */
struct Suppression
{
    std::string rule;
    std::string reason;
    int line = 0;   ///< line of the comment itself
    bool used = false;
};

/** A lexed source file plus its suppression comments. */
struct SourceFile
{
    std::string path;            ///< as passed (used in diagnostics)
    std::vector<Token> tokens;   ///< full stream, comments included
    std::vector<int> sig;        ///< indices of significant tokens
    std::vector<Suppression> suppressions;
};

/** Lex @p source (contents of @p path) into tokens + suppressions. */
SourceFile lex(const std::string &path, const std::string &source);

/** Read and lex a file; throws std::runtime_error on I/O failure. */
SourceFile lexFile(const std::string &path);

struct Finding
{
    std::string rule;
    std::string file;
    int line = 0;
    std::string message;
    bool suppressed = false;
    std::string suppressReason; ///< set when suppressed
};

struct UnusedSuppression
{
    std::string file;
    int line = 0;
    std::string rule;
};

struct Config
{
    /** Treat every scanned file as model code (fixture runs). */
    bool assumeModelCode = false;
    /** Honor `takolint: ok(...)` comments (off to audit them). */
    bool honorSuppressions = true;
    /** Restrict to these rule ids; empty = all rules. */
    std::set<std::string> rules;
};

struct Report
{
    std::vector<Finding> findings; ///< active + suppressed, file order
    std::vector<UnusedSuppression> unusedSuppressions;
    int filesScanned = 0;

    /** Findings that are not suppressed (what gates the exit code). */
    int
    activeCount() const
    {
        int n = 0;
        for (const auto &f : findings)
            n += f.suppressed ? 0 : 1;
        return n;
    }
};

/** Rule id -> one-line description, for --list-rules and the report. */
const std::map<std::string, std::string> &ruleDescriptions();

/** True when @p path lies in a model-code directory (see D1 above). */
bool isModelPath(const std::string &path);

/**
 * Expand files/directories into a sorted list of .hh/.cc sources.
 * Directories are walked recursively; build/ trees are skipped.
 */
std::vector<std::string> collectSources(const std::vector<std::string> &paths);

/** Run every enabled rule over @p files (two passes: index, check). */
Report lint(const std::vector<SourceFile> &files, const Config &cfg);

/** Convenience: lexFile() each path, then lint(). */
Report lintPaths(const std::vector<std::string> &paths, const Config &cfg);

/** GCC-style one-line rendering of @p f (no trailing newline). */
std::string format(const Finding &f);

} // namespace takolint

#endif // TAKO_TOOLS_TAKOLINT_LINT_HH
