/**
 * @file
 * takolint command-line driver.
 *
 *   takolint [options] PATH...
 *
 * PATHs are files or directories (recursed for .hh/.cc). Prints
 * GCC-style `file:line: rule: message` diagnostics for every active
 * finding and exits 1 when any exist, 0 on a clean tree, 2 on usage or
 * I/O errors. `--warn-only` reports but always exits 0 (advisory scans
 * over tools/ and bench/). `--json=FILE` additionally writes a
 * `takolint-v2` report (schema checked by tools/validate_takolint.py);
 * flow-rule findings carry their witness path as a `trace` array.
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hh"

namespace
{

constexpr const char *kUsage = R"(usage: takolint [options] PATH...

  PATH                file or directory (recursed for .hh/.cc sources)
  --json=FILE         write a takolint-v2 JSON report
  --rules=D1,D2,...   check only these rules (default: all)
  --assume-model-code treat every file as model code (fixture runs)
  --warn-only         report findings but exit 0 (advisory scans)
  --no-suppress       ignore takolint: ok(...) comments (audit mode)
  --show-suppressed   also print suppressed findings (as notes)
  --list-rules        print the rule table and exit
  --help              this text

exit status: 0 clean, 1 findings, 2 bad invocation / unreadable input
)";

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
writeJson(std::ostream &os, const takolint::Report &report,
          const std::vector<std::string> &roots, bool warnOnly)
{
    os << "{\n  \"schema\": \"takolint-v2\",\n";
    os << "  \"roots\": [";
    for (std::size_t i = 0; i < roots.size(); ++i)
        os << (i ? ", " : "") << '"' << jsonEscape(roots[i]) << '"';
    os << "],\n";
    os << "  \"files_scanned\": " << report.filesScanned << ",\n";
    os << "  \"warn_only\": " << (warnOnly ? "true" : "false") << ",\n";

    os << "  \"rules\": [";
    bool first = true;
    for (const auto &[id, desc] : takolint::ruleDescriptions()) {
        os << (first ? "" : ", ") << "\n    {\"id\": \"" << id
           << "\", \"description\": \"" << jsonEscape(desc) << "\"}";
        first = false;
    }
    os << "\n  ],\n";

    os << "  \"findings\": [";
    first = true;
    std::map<std::string, int> counts;
    for (const auto &[id, desc] : takolint::ruleDescriptions())
        counts[id] = 0;
    for (const auto &f : report.findings) {
        if (!f.suppressed)
            ++counts[f.rule];
        os << (first ? "" : ",") << "\n    {\"rule\": \"" << f.rule
           << "\", \"file\": \"" << jsonEscape(f.file)
           << "\", \"line\": " << f.line << ", \"message\": \""
           << jsonEscape(f.message) << "\", \"suppressed\": "
           << (f.suppressed ? "true" : "false");
        if (f.suppressed)
            os << ", \"reason\": \"" << jsonEscape(f.suppressReason)
               << '"';
        if (!f.trace.empty()) {
            os << ", \"trace\": [";
            for (std::size_t i = 0; i < f.trace.size(); ++i)
                os << (i ? ", " : "") << "{\"line\": " << f.trace[i].line
                   << ", \"note\": \"" << jsonEscape(f.trace[i].note)
                   << "\"}";
            os << "]";
        }
        os << "}";
        first = false;
    }
    os << "\n  ],\n";

    os << "  \"unused_suppressions\": [";
    first = true;
    for (const auto &u : report.unusedSuppressions) {
        os << (first ? "" : ",") << "\n    {\"file\": \""
           << jsonEscape(u.file) << "\", \"line\": " << u.line
           << ", \"rule\": \"" << u.rule << "\"}";
        first = false;
    }
    os << "\n  ],\n";

    os << "  \"counts\": {";
    first = true;
    for (const auto &[id, n] : counts) {
        os << (first ? "" : ", ") << '"' << id << "\": " << n;
        first = false;
    }
    os << "},\n";
    os << "  \"exit_code\": "
       << (report.activeCount() && !warnOnly ? 1 : 0) << "\n";
    os << "}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    takolint::Config cfg;
    std::vector<std::string> paths;
    std::string jsonPath;
    bool showSuppressed = false;
    bool warnOnly = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help") {
            std::cout << kUsage;
            return 0;
        } else if (arg == "--list-rules") {
            for (const auto &[id, desc] : takolint::ruleDescriptions())
                std::cout << id << "  " << desc << "\n";
            return 0;
        } else if (arg == "--assume-model-code") {
            cfg.assumeModelCode = true;
        } else if (arg == "--warn-only") {
            warnOnly = true;
        } else if (arg == "--no-suppress") {
            cfg.honorSuppressions = false;
        } else if (arg == "--show-suppressed") {
            showSuppressed = true;
        } else if (arg.rfind("--json=", 0) == 0) {
            jsonPath = arg.substr(7);
        } else if (arg.rfind("--rules=", 0) == 0) {
            std::stringstream ss(arg.substr(8));
            std::string id;
            while (std::getline(ss, id, ',')) {
                if (!takolint::ruleDescriptions().count(id)) {
                    std::cerr << "takolint: unknown rule '" << id
                              << "' (see --list-rules)\n";
                    return 2;
                }
                cfg.rules.insert(id);
            }
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "takolint: unknown option '" << arg << "'\n"
                      << kUsage;
            return 2;
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.empty()) {
        std::cerr << kUsage;
        return 2;
    }

    takolint::Report report;
    try {
        report = takolint::lintPaths(paths, cfg);
    } catch (const std::exception &e) {
        std::cerr << "takolint: " << e.what() << "\n";
        return 2;
    }
    if (report.filesScanned == 0) {
        std::cerr << "takolint: no .hh/.cc sources under given paths\n";
        return 2;
    }

    for (const auto &f : report.findings) {
        if (f.suppressed && !showSuppressed)
            continue;
        (f.suppressed ? std::cout : std::cerr)
            << takolint::format(f) << "\n";
    }
    for (const auto &u : report.unusedSuppressions)
        std::cout << u.file << ":" << u.line << ": note: unused "
                  << "suppression for " << u.rule << "\n";

    if (!jsonPath.empty()) {
        std::ofstream out(jsonPath);
        if (!out) {
            std::cerr << "takolint: cannot write " << jsonPath << "\n";
            return 2;
        }
        writeJson(out, report, paths, warnOnly);
    }

    const int active = report.activeCount();
    const int suppressed =
        static_cast<int>(report.findings.size()) - active;
    std::cout << "takolint: " << report.filesScanned << " files, "
              << active << " finding" << (active == 1 ? "" : "s");
    if (suppressed)
        std::cout << " (+" << suppressed << " suppressed)";
    if (warnOnly && active)
        std::cout << " [warn-only]";
    std::cout << "\n";
    return active && !warnOnly ? 1 : 0;
}
