/**
 * @file
 * takolint's lightweight function-body parser (flow layer, pass 1 of
 * the flow rules). Recovers, per function:
 *
 *  - a CFG of basic blocks over significant-token ranges, with real
 *    loop back-edges (the H1 dataflow needs them: a reference re-bound
 *    at the top of each loop iteration is clean even though a hop sits
 *    at the bottom of the body);
 *  - lambda expressions with their parsed capture lists, each also
 *    emitted as its own Func so by-ref captures get hop-analyzed in
 *    the lambda's own flow;
 *  - migrating suspension points: `co_await` expressions whose awaited
 *    call is named hopTo/hopToAbs/hop (Domains' awaitables and
 *    MemorySystem's internal hop helper).
 *
 * Approximations, by design: `switch` bodies are parsed linearly with
 * an extra skip edge; return/co_return/break/continue/goto terminate
 * the current path (losing a `continue` back-edge under-approximates
 * loop taint — acceptable, the fixtures pin the supported shapes); a
 * statement is "whatever runs to the next top-level `;`".
 */

#include "flow.hh"

namespace takolint
{

namespace
{

const std::set<std::string> kMigratingCallees = {"hopTo", "hopToAbs",
                                                 "hop"};

bool
isLambdaIntro(const Cursor &c, int i)
{
    if (!c.is(i, "["))
        return false;
    // Lambda introducer vs. subscript: a lambda's `[` cannot follow an
    // identifier / `)` / `]` (those are subscripts) or a literal.
    const Token &prev = c.tok(i - 1);
    if (prev.kind == Tok::Ident || prev.kind == Tok::Number ||
        prev.text == ")" || prev.text == "]")
        return false;
    return true;
}

/** Parse the capture list + find the body braces of the lambda whose
 *  `[` is at @p intro. Returns false when no body follows (it was an
 *  attribute like [[nodiscard]] or an aggregate init). */
bool
parseLambda(const Cursor &c, int intro, Lambda &out)
{
    const int capEnd = c.match(intro, "[", "]");
    if (capEnd >= c.size())
        return false;

    // Find the body `{`: optional (params), then specifiers/trailing
    // return type, then `{`. Bail out fast on anything that cannot be
    // part of a lambda declarator.
    int j = capEnd + 1;
    int paramBegin = -1, paramEnd = -1;
    if (c.is(j, "(")) {
        paramBegin = j;
        paramEnd = c.match(j, "(", ")");
        j = paramEnd + 1;
    }
    for (int guard = 0; guard < 64 && j < c.size(); ++guard) {
        const std::string &t = c.text(j);
        if (t == "{")
            break;
        if (t == "mutable" || t == "constexpr" || t == "noexcept" ||
            t == "const") {
            ++j;
            if (c.is(j, "("))
                j = c.match(j, "(", ")") + 1;
            continue;
        }
        if (t == "->") { // trailing return type, e.g. -> Task<>
            ++j;
            while (j < c.size() && !c.is(j, "{") && !c.is(j, ";") &&
                   !c.is(j, ")") && !c.is(j, ",")) {
                if (c.is(j, "<")) {
                    j = c.skipTemplateArgs(j);
                    continue;
                }
                ++j;
            }
            continue;
        }
        return false; // `[x]` was a subscript-ish construct after all
    }
    if (!c.is(j, "{"))
        return false;

    out.intro = intro;
    out.bodyBegin = j;
    out.bodyEnd = c.match(j, "{", "}");

    // Capture list: `&`, `=`, `this`, `&name`, `name`, `name = expr`.
    for (int k = intro + 1; k < capEnd; ++k) {
        const std::string &t = c.text(k);
        if (t == "this" || t == "*") { // `this` / `*this`
            out.capturesThis = true;
            continue;
        }
        if (t == "&") {
            if (c.isIdent(k + 1)) {
                out.refCaptures.emplace_back(c.text(k + 1),
                                             c.line(k + 1));
                ++k;
            } else {
                out.refDefault = true;
            }
            continue;
        }
        if (t == "=") {
            out.valDefault = true;
            continue;
        }
        if (c.isIdent(k)) {
            const std::string name = t;
            const int line = c.line(k);
            if (c.is(k + 1, "=")) { // init-capture
                out.initCaptures.emplace_back(name, line);
                if (c.is(k + 2, "&") && c.isIdent(k + 3)) {
                    out.addrInitCaptures.emplace_back(c.text(k + 3),
                                                      c.line(k + 3));
                }
                // Skip the initializer up to the next top-level comma.
                k += 2;
                int depth = 0;
                while (k < capEnd) {
                    const std::string &e = c.text(k);
                    if (e == "(" || e == "[" || e == "{")
                        ++depth;
                    else if (e == ")" || e == "]" || e == "}")
                        --depth;
                    else if (e == "," && depth == 0)
                        break;
                    ++k;
                }
            } else {
                out.valCaptures.emplace_back(name, line);
            }
        }
    }
    return true;
}

/** Builds one Func's CFG; nested lambdas are recorded and skipped. */
class BodyParser
{
  public:
    BodyParser(const Cursor &c, Func &fn) : c_(c), fn_(fn) {}

    void
    run()
    {
        const int entry = newBlock();
        const int exit =
            parseSeq(fn_.bodyBegin + 1, fn_.bodyEnd, entry);
        (void)exit;
    }

  private:
    int
    newBlock()
    {
        fn_.blocks.push_back({});
        return static_cast<int>(fn_.blocks.size()) - 1;
    }

    void edge(int a, int b) { fn_.blocks[a].succs.push_back(b); }

    void
    addRange(int blk, int begin, int end)
    {
        if (begin < end)
            fn_.blocks[blk].ranges.emplace_back(begin, end);
    }

    /** Record migrating co_awaits and nested lambdas in [begin, end);
     *  lambda interiors are skipped (they are their own Func). */
    void
    scanRange(int begin, int end)
    {
        for (int i = begin; i < end; ++i) {
            if (isLambdaIntro(c_, i)) {
                Lambda lam;
                if (parseLambda(c_, i, lam)) {
                    fn_.lambdas.push_back(lam);
                    i = lam.bodyEnd; // interior belongs to the lambda
                    continue;
                }
            }
            if (c_.is(i, "co_await")) {
                // The awaited expression runs to the statement end;
                // a hopTo/hopToAbs/hop call anywhere in it migrates.
                for (int j = i + 1; j < end && j < i + 48; ++j) {
                    const std::string &t = c_.text(j);
                    if (t == ";" || t == "{")
                        break;
                    if (c_.isIdent(j) && kMigratingCallees.count(t) &&
                        c_.is(j + 1, "(")) {
                        fn_.suspensions.push_back(
                            {i, c_.line(j), t});
                        break;
                    }
                }
            }
        }
    }

    /** Parse statements in [i, end) starting in block @p cur; returns
     *  the exit block. */
    int
    parseSeq(int i, int end, int cur)
    {
        while (i < end) {
            auto [next, exit] = parseStmt(i, end, cur);
            if (next <= i)
                ++next; // never stall on unexpected tokens
            i = next;
            cur = exit;
        }
        return cur;
    }

    /** One statement at @p i; returns (index past it, exit block). */
    std::pair<int, int>
    parseStmt(int i, int end, int cur)
    {
        const std::string &t = c_.text(i);

        if (t == "{") {
            const int close = c_.match(i, "{", "}");
            const int exit = parseSeq(i + 1, close, cur);
            return {close + 1, exit};
        }
        if (t == "if") {
            int j = i + 1;
            if (c_.is(j, "constexpr"))
                ++j;
            const int condClose = c_.match(j, "(", ")");
            emitStmt(cur, i, condClose + 1);
            const int thenB = newBlock();
            edge(cur, thenB);
            auto [afterThen, thenExit] =
                parseStmt(condClose + 1, end, thenB);
            if (c_.is(afterThen, "else")) {
                const int elseB = newBlock();
                edge(cur, elseB);
                auto [afterElse, elseExit] =
                    parseStmt(afterThen + 1, end, elseB);
                const int join = newBlock();
                edge(thenExit, join);
                edge(elseExit, join);
                return {afterElse, join};
            }
            const int join = newBlock();
            edge(cur, join);
            edge(thenExit, join);
            return {afterThen, join};
        }
        if (t == "while" || t == "for") {
            const int condClose = c_.match(i + 1, "(", ")");
            const int header = newBlock();
            edge(cur, header);
            emitStmt(header, i, condClose + 1);
            const int body = newBlock();
            edge(header, body);
            auto [after, bodyExit] =
                parseStmt(condClose + 1, end, body);
            edge(bodyExit, header); // loop back-edge
            const int afterB = newBlock();
            edge(header, afterB);
            return {after, afterB};
        }
        if (t == "do") {
            const int body = newBlock();
            edge(cur, body);
            auto [after, bodyExit] = parseStmt(i + 1, end, body);
            // `while ( cond ) ;`
            int j = after;
            if (c_.is(j, "while")) {
                const int condClose = c_.match(j + 1, "(", ")");
                emitStmt(bodyExit, j, condClose + 1);
                j = condClose + 1;
                if (c_.is(j, ";"))
                    ++j;
            }
            edge(bodyExit, body); // loop back-edge
            const int afterB = newBlock();
            edge(bodyExit, afterB);
            return {j, afterB};
        }
        if (t == "switch") {
            const int condClose = c_.match(i + 1, "(", ")");
            emitStmt(cur, i, condClose + 1);
            const int body = newBlock();
            edge(cur, body);
            int bodyExit = body;
            int j = condClose + 1;
            if (c_.is(j, "{")) {
                const int close = c_.match(j, "{", "}");
                bodyExit = parseSeq(j + 1, close, body);
                j = close + 1;
            }
            const int afterB = newBlock();
            edge(bodyExit, afterB);
            edge(cur, afterB); // all cases may be skipped
            return {j, afterB};
        }
        if (t == "case") {
            int j = i;
            while (j < end && !c_.is(j, ":"))
                ++j;
            emitStmt(cur, i, j + 1);
            return {j + 1, cur};
        }
        if (t == "default" && c_.is(i + 1, ":")) {
            return {i + 2, cur};
        }
        if (t == "return" || t == "co_return" || t == "break" ||
            t == "continue" || t == "goto") {
            const int semi = findStmtEnd(i, end);
            emitStmt(cur, i, semi + 1);
            return {semi + 1, newBlock()}; // path terminator
        }
        if (t == "else") { // stray else (shouldn't happen): skip token
            return {i + 1, cur};
        }

        const int semi = findStmtEnd(i, end);
        emitStmt(cur, i, semi + 1);
        return {semi + 1, cur};
    }

    /** Index of the `;` ending the simple statement at @p i (skipping
     *  nested parens/brackets/braces, so lambdas and brace-inits stay
     *  inside one statement); @p end - 1 when none. */
    int
    findStmtEnd(int i, int end)
    {
        for (int j = i; j < end; ++j) {
            const std::string &t = c_.text(j);
            if (t == "(")
                j = c_.match(j, "(", ")");
            else if (t == "[")
                j = c_.match(j, "[", "]");
            else if (t == "{")
                j = c_.match(j, "{", "}");
            else if (t == ";")
                return j;
            else if (t == "}")
                return j - 1; // ran off the enclosing block
        }
        return end - 1;
    }

    void
    emitStmt(int blk, int begin, int end)
    {
        addRange(blk, begin, end);
        scanRange(begin, end);
    }

    const Cursor &c_;
    Func &fn_;
};

const std::set<std::string> kNotFunctionNames = {
    "if",     "for",    "while",   "switch", "catch", "return",
    "sizeof", "static_assert", "alignof", "decltype", "co_await",
    "co_return", "co_yield", "new", "delete", "throw", "assert",
    "noexcept", "operator", "alignas", "panic", "panic_if",
    "defined",
};

/**
 * Starting just after a function's `)` at @p close, skip specifiers,
 * a trailing return type, and a constructor init-list; returns the sig
 * index of the body `{`, or -1 when this is a declaration.
 */
int
findFunctionBody(const Cursor &c, int close)
{
    int j = close + 1;
    static const std::set<std::string> kSpecifiers = {
        "const", "noexcept", "override", "final", "mutable",
        "volatile", "&", "&&", "try",
    };
    for (int guard = 0; guard < 128 && j < c.size(); ++guard) {
        const std::string &s = c.text(j);
        if (kSpecifiers.count(s)) {
            ++j;
            if (s == "noexcept" && c.is(j, "("))
                j = c.match(j, "(", ")") + 1;
            continue;
        }
        if (s == "->") { // trailing return type
            ++j;
            while (j < c.size() && !c.is(j, "{") && !c.is(j, ";") &&
                   !c.is(j, "=")) {
                if (c.is(j, "<")) {
                    j = c.skipTemplateArgs(j);
                    continue;
                }
                ++j;
            }
            continue;
        }
        if (s == ":") {
            // Constructor init-list: `name(args)` / `name{args}`
            // members separated by commas, then the body `{`.
            ++j;
            for (int g2 = 0; g2 < 128 && j < c.size(); ++g2) {
                while (c.isIdent(j) || c.is(j, "::"))
                    ++j;
                if (c.is(j, "<"))
                    j = c.skipTemplateArgs(j);
                if (c.is(j, "("))
                    j = c.match(j, "(", ")") + 1;
                else if (c.is(j, "{"))
                    j = c.match(j, "{", "}") + 1;
                else
                    return -1; // not an init-list after all
                if (c.is(j, ",")) {
                    ++j;
                    continue;
                }
                break;
            }
            continue;
        }
        break;
    }
    return c.is(j, "{") ? j : -1;
}

/** Parse @p lam (and, recursively, its nested lambdas) into Funcs. */
void
emitLambdaFuncs(const Cursor &c, const Lambda &lam,
                std::vector<Func> &out)
{
    Func fn;
    fn.name = "<lambda>";
    fn.isLambda = true;
    fn.lam = lam;
    fn.bodyBegin = lam.bodyBegin;
    fn.bodyEnd = lam.bodyEnd;
    const int capEnd = c.match(lam.intro, "[", "]");
    if (c.is(capEnd + 1, "(")) {
        fn.paramBegin = capEnd + 1;
        fn.paramEnd = c.match(capEnd + 1, "(", ")");
    }
    BodyParser(c, fn).run();
    std::vector<Lambda> nested = fn.lambdas;
    out.push_back(std::move(fn));
    for (const Lambda &inner : nested)
        emitLambdaFuncs(c, inner, out);
}

} // namespace

std::vector<Func>
parseFunctions(const SourceFile &f)
{
    Cursor c(f);
    std::vector<Func> out;

    for (int i = 0; i < c.size(); ++i) {
        // Namespace-scope lambdas (rare) still deserve analysis.
        if (isLambdaIntro(c, i)) {
            Lambda lam;
            if (parseLambda(c, i, lam)) {
                emitLambdaFuncs(c, lam, out);
                i = lam.bodyEnd;
                continue;
            }
        }
        if (!c.isIdent(i) || !c.is(i + 1, "(") ||
            kNotFunctionNames.count(c.text(i)))
            continue;
        // `name(...)` — possibly a function head. Reject obvious call
        // sites: a call is preceded by `.`, `->`, or an operator that
        // cannot end a declaration's type.
        const std::string &prev = c.text(i - 1);
        if (prev == "." || prev == "->" || prev == "(" || prev == "," ||
            prev == "=" || prev == "return" || prev == "co_await" ||
            prev == "co_return" || prev == "!" || prev == "<")
            continue;
        const int close = c.match(i + 1, "(", ")");
        if (close >= c.size())
            continue;
        const int body = findFunctionBody(c, close);
        if (body < 0)
            continue;

        Func fn;
        // Qualified name: walk back over `A ::` pairs.
        int b = i;
        fn.name = c.text(b);
        while (c.is(b - 1, "::") && c.isIdent(b - 2)) {
            b -= 2;
            fn.name = c.text(b) + "::" + fn.name;
        }
        fn.paramBegin = i + 1;
        fn.paramEnd = close;
        fn.bodyBegin = body;
        fn.bodyEnd = c.match(body, "{", "}");
        BodyParser(c, fn).run();
        std::vector<Lambda> lams = fn.lambdas;
        const int resume = fn.bodyEnd;
        out.push_back(std::move(fn));
        for (const Lambda &lam : lams)
            emitLambdaFuncs(c, lam, out);
        i = resume;
    }
    return out;
}

} // namespace takolint
