/**
 * @file
 * takolint's C++ lexer. Deliberately small: it produces exactly the
 * token stream the rules need (identifiers, literals, punctuation) and
 * keeps comments/preprocessor lines on a side channel so `#include
 * <unordered_map>` never looks like container usage and suppression
 * comments stay attached to their lines.
 */

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "lint.hh"

namespace takolint
{

namespace
{

/** Multi-char operators the rules care about keeping whole ("->" must
 *  not decay into '-' '>' or template-argument balancing breaks). */
const char *const kMultiOps[] = {
    "->*", "<<=", ">>=", "<=>", "...", "::", "->", "++", "--", "<<",
    ">>",  "<=",  ">=",  "==",  "!=",  "&&", "||", "+=", "-=", "*=",
    "/=",  "%=",  "&=",  "|=",  "^=",
};

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/**
 * Length of a raw-string prefix (`R"`, `u8R"`, `uR"`, `UR"`, `LR"`)
 * starting at @p i, up to and including the quote; 0 when @p i does not
 * start a raw string literal.
 */
std::size_t
rawStringPrefix(const std::string &src, std::size_t i)
{
    static const char *const prefixes[] = {"u8R\"", "uR\"", "UR\"",
                                           "LR\"", "R\""};
    for (const char *p : prefixes) {
        const std::size_t len = std::char_traits<char>::length(p);
        if (src.compare(i, len, p) == 0)
            return len;
    }
    return 0;
}

/** Parse `takolint: ok(RULE, reason)` out of a comment's text. */
void
parseSuppressions(const std::string &text, int line,
                  std::vector<Suppression> &out)
{
    const std::string tag = "takolint: ok(";
    std::size_t pos = 0;
    while ((pos = text.find(tag, pos)) != std::string::npos) {
        std::size_t p = pos + tag.size();
        std::size_t close = text.find(')', p);
        if (close == std::string::npos)
            break;
        // Reasons may themselves contain '(' ... ')': take the last ')'.
        std::size_t last = text.rfind(')');
        if (last != std::string::npos && last > close)
            close = last;
        std::string body = text.substr(p, close - p);
        Suppression s;
        s.line = line;
        std::size_t comma = body.find(',');
        if (comma == std::string::npos) {
            s.rule = body;
        } else {
            s.rule = body.substr(0, comma);
            std::size_t r = body.find_first_not_of(" \t", comma + 1);
            if (r != std::string::npos)
                s.reason = body.substr(r);
        }
        // Trim the rule id.
        while (!s.rule.empty() && std::isspace(static_cast<unsigned char>(
                                      s.rule.back())))
            s.rule.pop_back();
        while (!s.rule.empty() && std::isspace(static_cast<unsigned char>(
                                      s.rule.front())))
            s.rule.erase(s.rule.begin());
        if (!s.rule.empty())
            out.push_back(std::move(s));
        pos = close + 1;
    }
}

} // namespace

SourceFile
lex(const std::string &path, const std::string &src)
{
    SourceFile out;
    out.path = path;

    std::size_t i = 0;
    const std::size_t n = src.size();
    int line = 1;
    bool atLineStart = true;

    auto push = [&](Tok kind, std::string text, int tline) {
        if (kind != Tok::Comment && kind != Tok::Preproc)
            out.sig.push_back(static_cast<int>(out.tokens.size()));
        out.tokens.push_back(Token{kind, std::move(text), tline});
    };

    while (i < n) {
        const char c = src[i];
        if (c == '\n') {
            ++line;
            ++i;
            atLineStart = true;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }

        // Preprocessor directive: swallow to end of line, honoring
        // backslash continuations, as one opaque token.
        if (c == '#' && atLineStart) {
            const int start = line;
            std::string text;
            while (i < n) {
                if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
                    i += 2;
                    ++line;
                    continue;
                }
                if (src[i] == '\n')
                    break;
                text += src[i++];
            }
            push(Tok::Preproc, std::move(text), start);
            continue;
        }
        atLineStart = false;

        // Comments (kept: suppressions and annotations live here).
        if (c == '/' && i + 1 < n && src[i + 1] == '/') {
            const int start = line;
            std::size_t e = src.find('\n', i);
            if (e == std::string::npos)
                e = n;
            std::string text = src.substr(i, e - i);
            parseSuppressions(text, start, out.suppressions);
            if (text.find("takolint: domain-local") != std::string::npos)
                out.domainLocalMarks.push_back(start);
            push(Tok::Comment, std::move(text), start);
            i = e;
            continue;
        }
        if (c == '/' && i + 1 < n && src[i + 1] == '*') {
            const int start = line;
            std::size_t e = src.find("*/", i + 2);
            if (e == std::string::npos)
                e = n;
            else
                e += 2;
            std::string text = src.substr(i, e - i);
            for (char ch : text)
                if (ch == '\n')
                    ++line;
            // Attach a block comment's suppressions to its *last* line,
            // so `/* takolint: ok(...) */` above a statement works.
            parseSuppressions(text, line, out.suppressions);
            if (text.find("takolint: domain-local") != std::string::npos)
                out.domainLocalMarks.push_back(line);
            push(Tok::Comment, std::move(text), start);
            i = e;
            continue;
        }

        // Raw string literal: [u8|u|U|L]R"delim( ... )delim". Must win
        // over the identifier branch or `u8R"(...)"` mis-lexes as the
        // identifier `u8R` followed by a broken normal string.
        if (const std::size_t plen = rawStringPrefix(src, i)) {
            const int start = line;
            std::size_t p = i + plen;
            std::string delim;
            while (p < n && src[p] != '(')
                delim += src[p++];
            const std::string close = ")" + delim + "\"";
            std::size_t e = src.find(close, p);
            e = (e == std::string::npos) ? n : e + close.size();
            std::string text = src.substr(i, e - i);
            for (char ch : text)
                if (ch == '\n')
                    ++line;
            push(Tok::String, std::move(text), start);
            i = e;
            continue;
        }

        // String / char literals with escapes.
        if (c == '"' || c == '\'') {
            const int start = line;
            std::size_t p = i + 1;
            while (p < n && src[p] != c) {
                if (src[p] == '\\' && p + 1 < n)
                    ++p;
                else if (src[p] == '\n')
                    ++line;
                ++p;
            }
            if (p < n)
                ++p;
            push(c == '"' ? Tok::String : Tok::CharLit,
                 src.substr(i, p - i), start);
            i = p;
            continue;
        }

        if (identStart(c)) {
            std::size_t p = i + 1;
            while (p < n && identChar(src[p]))
                ++p;
            push(Tok::Ident, src.substr(i, p - i), line);
            i = p;
            continue;
        }

        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t p = i + 1;
            while (p < n && (identChar(src[p]) || src[p] == '.' ||
                             src[p] == '\''))
                ++p;
            push(Tok::Number, src.substr(i, p - i), line);
            i = p;
            continue;
        }

        // Punctuation: longest-match the multi-char operators.
        std::string op(1, c);
        for (const char *m : kMultiOps) {
            const std::size_t len = std::char_traits<char>::length(m);
            if (src.compare(i, len, m) == 0) {
                op = m;
                break;
            }
        }
        push(Tok::Punct, op, line);
        i += op.size();
    }
    return out;
}

SourceFile
lexFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error(path + ": cannot open");
    std::ostringstream ss;
    ss << in.rdbuf();
    return lex(path, ss.str());
}

} // namespace takolint
