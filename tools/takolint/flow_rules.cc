/**
 * @file
 * takolint's flow-sensitive partition-safety rules (X2/H1/C1/L3) over
 * the per-function CFGs recovered by parse.cc and the cross-file
 * symbol index from symbols.cc.
 *
 * H1 and C1's use-after-hop half run a forward may-dataflow with
 * bind-kill semantics: a tracked binding is UNBOUND until its
 * declaration, CLEAN from the declaration on, and TAINTED once any
 * path crosses a migrating suspension point — until a re-declaration
 * kills the taint. The kill matters: `Tick &free = linkFree_[li]`
 * re-bound at the top of each loop iteration is clean even though the
 * loop body ends in a hop, and only a CFG with real back-edges can see
 * that.
 *
 * Deliberate blind spots (documented, fixture-pinned): H1 tracks
 * reference-typed *locals* only — reference parameters follow the
 * awaiting caller's frame and are safe by contract (e.g. LatBreakdown
 * accumulators), and pointer locals are left to review; member access
 * through the implicit `this` is exempt (components span domains and
 * re-acquire context); C1 does not chase domain-local objects passed
 * as plain arguments into spawned coroutines (single-tile engine
 * plumbing does this legitimately — the rule keys on *capture into a
 * cross-domain callable* and *use after a hop*).
 */

#include <algorithm>

#include "flow.hh"

namespace takolint
{

namespace
{

/** Foreign-queue sources (X2): grabbing another domain's queue. */
const std::set<std::string> kForeignQueueSources = {
    "queueOf", "queueOfDomain", "queues", "queues_",
};

/** EventQueue entry points that enqueue work (X2 receivers). */
const std::set<std::string> kScheduleFamily = {
    "schedule", "scheduleAbs", "scheduleKeyed", "spawn",
};

/** Deferred sinks whose callables outlive the calling frame (L3). */
const std::set<std::string> kDeferredSinks = {
    "schedule", "scheduleAbs", "scheduleKeyed", "spawn",
    "post",     "postAbs",     "sendKeyed",
};

/** Sinks whose callables run in another domain (C1). */
const std::set<std::string> kCrossDomainSinks = {
    "post", "postAbs", "sendKeyed",
};

const std::set<std::string> kDeclContextBreakers = {
    "return", "co_return", "co_await", "co_yield", "throw", "case",
    "new", "delete", "sizeof", "typedef", "using", "goto", "else",
};

/** What a tracked binding is, for rule routing and messages. */
enum class VarKind
{
    Ref,            ///< reference-typed local (H1)
    RefCapture,     ///< by-ref lambda capture (H1)
    ThisCapture,    ///< captured `this`, explicit uses only (H1)
    DomainLocal,    ///< annotated-type local/param, value or ref (C1)
};

struct TrackedVar
{
    std::string name;
    VarKind kind;
    std::string cls;  ///< annotated class, for C1 messages
    int declLine = 0; ///< binding site (capture line for captures)
};

enum class TaintState
{
    Unbound,
    Clean,
    Tainted,
};

struct VarState
{
    TaintState s = TaintState::Unbound;
    int declLine = 0;
    int hopLine = 0;
    std::string hopCallee;

    bool
    mergeFrom(const VarState &o)
    {
        if (static_cast<int>(o.s) <= static_cast<int>(s))
            return false;
        *this = o;
        return true;
    }
};

/** Per-function analysis driver for H1 + C1's use-after-hop half. */
class FuncFlow
{
  public:
    FuncFlow(const Cursor &c, const Func &fn, const SymbolIndex &sym,
             const FlowSink &sink)
        : c_(c), fn_(fn), sym_(sym), sink_(sink)
    {
        for (const Lambda &l : fn.lambdas)
            lambdaAt_[l.intro] = &l;
        for (const Suspension &s : fn.suspensions)
            suspAt_[s.at] = &s;
    }

    void
    run()
    {
        collectVars();
        if (vars_.empty() || fn_.suspensions.empty())
            return;
        solve();
        for (std::size_t b = 0; b < fn_.blocks.size(); ++b) {
            std::vector<VarState> st = in_[b];
            walkBlock(static_cast<int>(b), st, /*report=*/true);
        }
    }

    /** Tracked annotated locals/params, for C1's capture check. */
    const std::vector<TrackedVar> &
    trackedVars() const
    {
        return vars_;
    }

  private:
    int
    varIdOf(const std::string &name) const
    {
        for (std::size_t v = 0; v < vars_.size(); ++v)
            if (vars_[v].name == name)
                return static_cast<int>(v);
        return -1;
    }

    void
    track(TrackedVar v)
    {
        if (varIdOf(v.name) < 0)
            vars_.push_back(std::move(v));
    }

    /** Is the ident at @p i part of a member chain (`x.t`, `a::t`)? */
    bool
    memberContext(int i) const
    {
        const std::string &p = c_.text(i - 1);
        return p == "." || p == "->" || p == "::";
    }

    void
    collectVars()
    {
        // Reference-typed local declarations in the body (outside
        // nested lambdas): `Type &name =` / `auto &name :`.
        forEachBodyToken([&](int i) {
            if (!c_.is(i, "&") || !c_.isIdent(i + 1))
                return;
            const std::string &after = c_.text(i + 2);
            if (after != "=" && after != ":")
                return;
            // The token before `&` must look like the end of a type.
            int t = i - 1;
            if (c_.is(t, "const"))
                --t;
            const std::string &tt = c_.text(t);
            if (!c_.isIdent(t) && tt != ">" && tt != ">>")
                return;
            if (kDeclContextBreakers.count(tt))
                return;
            std::string typeName;
            if (c_.isIdent(t))
                typeName = tt;
            else if (int open = findTemplateOpen(t); open >= 0)
                typeName = c_.text(open - 1);
            TrackedVar v;
            v.name = c_.text(i + 1);
            v.declLine = c_.line(i + 1);
            if (sym_.domainLocalClasses.count(typeName)) {
                v.kind = VarKind::DomainLocal;
                v.cls = typeName;
            } else {
                v.kind = VarKind::Ref;
            }
            declAt_[i + 1] = -1; // resolved to an id below
            track(std::move(v));
            declAt_[i + 1] = varIdOf(c_.text(i + 1));
        });

        // Annotated-type *value* locals: `Semaphore s(...)` etc. (C1).
        forEachBodyToken([&](int i) {
            if (!c_.isIdent(i) ||
                !sym_.domainLocalClasses.count(c_.text(i)) ||
                memberContext(i))
                return;
            int j = i + 1;
            if (c_.is(j, "<"))
                j = c_.skipTemplateArgs(j);
            if (!c_.isIdent(j))
                return;
            const std::string &after = c_.text(j + 1);
            if (after != "(" && after != "{" && after != ";" &&
                after != "=")
                return;
            TrackedVar v;
            v.name = c_.text(j);
            v.declLine = c_.line(j);
            v.kind = VarKind::DomainLocal;
            v.cls = c_.text(i);
            track(std::move(v));
            declAt_[j] = varIdOf(c_.text(j));
        });

        // Annotated-type parameters (value or reference): they are
        // bound to the awaiting caller's objects, so using them after
        // a hop touches another domain's state (C1). Plain reference
        // params stay exempt from H1.
        if (fn_.paramBegin >= 0) {
            for (int i = fn_.paramBegin + 1; i < fn_.paramEnd; ++i) {
                if (!c_.isIdent(i) ||
                    !sym_.domainLocalClasses.count(c_.text(i)))
                    continue;
                int j = i + 1;
                while (c_.is(j, "&") || c_.is(j, "*") ||
                       c_.is(j, "const"))
                    ++j;
                if (!c_.isIdent(j))
                    continue;
                const std::string &after = c_.text(j + 1);
                if (after != "," && after != ")" && after != "=")
                    continue;
                TrackedVar v;
                v.name = c_.text(j);
                v.declLine = c_.line(j);
                v.kind = VarKind::DomainLocal;
                v.cls = c_.text(i);
                track(std::move(v));
                params_.push_back(varIdOf(c_.text(j)));
            }
        }

        // Lambda bodies: by-ref captures and captured `this` are
        // references into the enclosing frame/object; after the
        // *lambda's own* migrating hop they are stale (H1).
        if (fn_.isLambda) {
            for (const auto &[name, line] : fn_.lam.refCaptures) {
                TrackedVar v;
                v.name = name;
                v.declLine = line;
                v.kind = VarKind::RefCapture;
                track(std::move(v));
                params_.push_back(varIdOf(name));
            }
            if (fn_.lam.capturesThis) {
                TrackedVar v;
                v.name = "this";
                v.declLine = c_.line(fn_.lam.intro);
                v.kind = VarKind::ThisCapture;
                track(std::move(v));
                params_.push_back(varIdOf("this"));
            }
        }
    }

    /** Call @p fun for every body sig index outside nested lambdas. */
    template <typename F>
    void
    forEachBodyToken(F fun)
    {
        for (int i = fn_.bodyBegin + 1; i < fn_.bodyEnd; ++i) {
            auto it = lambdaAt_.find(i);
            if (it != lambdaAt_.end()) {
                i = it->second->bodyEnd;
                continue;
            }
            fun(i);
        }
    }

    /** Sig index of the `<` opening the template list closing at
     *  @p closeTok (a ">" / ">>"), or -1. */
    int
    findTemplateOpen(int closeTok) const
    {
        int depth = 0;
        for (int j = closeTok; j >= 0 && closeTok - j < 64; --j) {
            const std::string &t = c_.text(j);
            if (t == ">")
                ++depth;
            else if (t == ">>")
                depth += 2;
            else if (t == "<" && --depth == 0)
                return j;
        }
        return -1;
    }

    std::vector<VarState>
    entryState() const
    {
        std::vector<VarState> st(vars_.size());
        for (int p : params_) {
            st[static_cast<std::size_t>(p)].s = TaintState::Clean;
            st[static_cast<std::size_t>(p)].declLine =
                vars_[static_cast<std::size_t>(p)].declLine;
        }
        return st;
    }

    void
    solve()
    {
        const std::size_t n = fn_.blocks.size();
        in_.assign(n, std::vector<VarState>(vars_.size()));
        in_[0] = entryState();
        bool changed = true;
        for (int iter = 0; changed && iter < 64; ++iter) {
            changed = false;
            for (std::size_t b = 0; b < n; ++b) {
                std::vector<VarState> out = in_[b];
                walkBlock(static_cast<int>(b), out, /*report=*/false);
                for (int s : fn_.blocks[b].succs) {
                    auto &dst = in_[static_cast<std::size_t>(s)];
                    for (std::size_t v = 0; v < vars_.size(); ++v)
                        changed |= dst[v].mergeFrom(out[v]);
                }
            }
        }
    }

    void
    walkBlock(int b, std::vector<VarState> &st, bool report)
    {
        for (const auto &[begin, end] :
             fn_.blocks[static_cast<std::size_t>(b)].ranges) {
            for (int i = begin; i < end; ++i) {
                auto lit = lambdaAt_.find(i);
                if (lit != lambdaAt_.end()) {
                    visitLambda(*lit->second, st, report);
                    i = lit->second->bodyEnd;
                    continue;
                }
                auto dit = declAt_.find(i);
                if (dit != declAt_.end() && dit->second >= 0) {
                    auto &vs = st[static_cast<std::size_t>(dit->second)];
                    vs.s = TaintState::Clean;
                    vs.declLine = c_.line(i);
                    continue;
                }
                auto sit = suspAt_.find(i);
                if (sit != suspAt_.end()) {
                    for (auto &vs : st) {
                        if (vs.s == TaintState::Clean) {
                            vs.s = TaintState::Tainted;
                            vs.hopLine = sit->second->line;
                            vs.hopCallee = sit->second->callee;
                        }
                    }
                    continue;
                }
                if (!c_.isIdent(i) && !c_.is(i, "this"))
                    continue;
                if (memberContext(i))
                    continue;
                const int v = varIdOf(c_.text(i));
                if (v < 0)
                    continue;
                if (report &&
                    st[static_cast<std::size_t>(v)].s ==
                        TaintState::Tainted)
                    reportUse(v, st[static_cast<std::size_t>(v)],
                              c_.line(i));
            }
        }
    }

    /** Capturing a tracked binding *is* a use at creation time. */
    void
    visitLambda(const Lambda &lam, std::vector<VarState> &st,
                bool report)
    {
        if (!report)
            return;
        auto useIfTainted = [&](const std::string &name, int line) {
            const int v = varIdOf(name);
            if (v >= 0 && st[static_cast<std::size_t>(v)].s ==
                              TaintState::Tainted)
                reportUse(v, st[static_cast<std::size_t>(v)], line);
        };
        for (const auto &[name, line] : lam.refCaptures)
            useIfTainted(name, line);
        for (const auto &[name, line] : lam.valCaptures)
            useIfTainted(name, line);
        if (lam.refDefault || lam.valDefault) {
            for (int i = lam.bodyBegin + 1; i < lam.bodyEnd; ++i) {
                if (c_.isIdent(i) && !memberContext(i) &&
                    varIdOf(c_.text(i)) >= 0)
                    useIfTainted(c_.text(i), c_.line(lam.intro));
            }
        }
    }

    void
    reportUse(int v, const VarState &vs, int useLine)
    {
        const TrackedVar &tv = vars_[static_cast<std::size_t>(v)];
        std::vector<TraceStep> trace;
        std::string bindNote;
        switch (tv.kind) {
        case VarKind::Ref:
            bindNote = "reference '" + tv.name + "' bound here, "
                       "before the hop";
            break;
        case VarKind::RefCapture:
            bindNote = "'" + tv.name + "' captured by reference here";
            break;
        case VarKind::ThisCapture:
            bindNote = "lambda captures `this` here";
            break;
        case VarKind::DomainLocal:
            bindNote = "domain-local " + tv.cls + " '" + tv.name +
                       "' bound here";
            break;
        }
        trace.push_back({vs.declLine ? vs.declLine : tv.declLine,
                         bindNote});
        trace.push_back({vs.hopLine,
                         "co_await " + vs.hopCallee +
                             "(...) suspension point: the coroutine "
                             "resumes in another domain"});
        const bool h1 = tv.kind != VarKind::DomainLocal;
        trace.push_back({useLine, h1 ? "stale use after the hop"
                                     : "cross-domain use after the "
                                       "hop"});
        if (h1) {
            sink_("H1", useLine,
                  "'" + tv.name + "' was bound before a migrating "
                  "co_await " + vs.hopCallee + "(...) and used after "
                  "it: the coroutine resumed in another domain, so the "
                  "pre-hop reference is stale — re-bind it after the "
                  "hop",
                  std::move(trace));
        } else {
            sink_("C1", useLine,
                  "domain-local " + tv.cls + " '" + tv.name + "' used "
                  "after a migrating co_await " + vs.hopCallee +
                  "(...): the object belongs to the pre-hop domain; "
                  "funnel the work back through Domains::post (anchor "
                  "tile) instead",
                  std::move(trace));
        }
    }

    const Cursor &c_;
    const Func &fn_;
    const SymbolIndex &sym_;
    const FlowSink &sink_;

    std::vector<TrackedVar> vars_;
    std::vector<int> params_; ///< var ids live at entry
    std::map<int, const Lambda *> lambdaAt_;
    std::map<int, const Suspension *> suspAt_;
    std::map<int, int> declAt_; ///< sig index of a decl's name -> id
    std::vector<std::vector<VarState>> in_;
};

/** A stack local of the enclosing function (for L3/C1 checks). */
struct LocalDecl
{
    std::string name;
    int line = 0;
};

/** Collect parameter + local-variable names of @p fn (pattern-based,
 *  outside nested lambdas). */
std::vector<LocalDecl>
collectLocals(const Cursor &c, const Func &fn)
{
    std::vector<LocalDecl> out;
    auto add = [&](const std::string &name, int line) {
        for (const auto &d : out)
            if (d.name == name)
                return;
        out.push_back({name, line});
    };

    if (fn.paramBegin >= 0) {
        for (int i = fn.paramBegin + 1; i < fn.paramEnd; ++i) {
            if (!c.isIdent(i))
                continue;
            const std::string &after = c.text(i + 1);
            const std::string &prev = c.text(i - 1);
            if ((after == "," || after == ")" || after == "=") &&
                (c.isIdent(i - 1) || prev == "&" || prev == "*" ||
                 prev == ">" || prev == ">>"))
                add(c.text(i), c.line(i));
        }
    }

    std::map<int, const Lambda *> lambdaAt;
    for (const Lambda &l : fn.lambdas)
        lambdaAt[l.intro] = &l;
    for (int i = fn.bodyBegin + 1; i < fn.bodyEnd; ++i) {
        auto it = lambdaAt.find(i);
        if (it != lambdaAt.end()) {
            i = it->second->bodyEnd;
            continue;
        }
        if (c.is(i, "struct") || c.is(i, "class") || c.is(i, "union")) {
            // Local record definition (awaiter structs): its members
            // are not frame storage — skip the body.
            int j = i + 1;
            while (j < fn.bodyEnd && !c.is(j, "{") && !c.is(j, ";"))
                ++j;
            if (c.is(j, "{")) {
                i = c.match(j, "{", "}");
                continue;
            }
        }
        if (!c.isIdent(i) || kDeclContextBreakers.count(c.text(i)))
            continue;
        const std::string &prev = c.text(i - 1);
        if (!(prev == ";" || prev == "{" || prev == "}" ||
              prev == "(" || prev == "const" || prev == "constexpr"))
            continue;
        int j = i + 1;
        if (c.is(j, "<"))
            j = c.skipTemplateArgs(j);
        while (c.is(j, "&") || c.is(j, "*"))
            ++j;
        if (!c.isIdent(j))
            continue;
        const std::string &after = c.text(j + 1);
        if (after == "=" || after == ";" || after == "{" ||
            after == "(" || after == ":")
            add(c.text(j), c.line(j));
    }
    return out;
}

const LocalDecl *
findLocal(const std::vector<LocalDecl> &locals, const std::string &n)
{
    for (const auto &d : locals)
        if (d.name == n)
            return &d;
    return nullptr;
}

/** Does the lambda re-declare @p name — an init-capture or a local in
 *  the body — shadowing the enclosing binding? */
bool
redeclaredInLambda(const Cursor &c, const Lambda &lam,
                   const std::string &name)
{
    for (const auto &[n, line] : lam.initCaptures)
        if (n == name)
            return true;
    for (int i = lam.bodyBegin + 1; i < lam.bodyEnd; ++i) {
        if (!c.isIdent(i) || c.text(i) != name)
            continue;
        // A declaration is `Type name` or `Type &name` / `Type *name`;
        // a bare `&name` (address-of) or `*name` (deref) is a use.
        const std::string &prev = c.text(i - 1);
        if (c.isIdent(i - 1))
            return true;
        if ((prev == "&" || prev == "*") && c.isIdent(i - 2))
            return true;
    }
    return false;
}

/**
 * The deferred call a lambda is an argument of: scan back from the
 * introducer for `name (` whose close spans past the lambda body.
 * Returns the sig index of the sink's name, or -1.
 */
int
enclosingSink(const Cursor &c, const Func &fn, const Lambda &lam,
              const std::set<std::string> &sinks)
{
    const int lo = std::max(fn.bodyBegin, lam.intro - 96);
    for (int k = lam.intro - 1; k >= lo; --k) {
        if (!c.isIdent(k) || !sinks.count(c.text(k)) ||
            !c.is(k + 1, "("))
            continue;
        if (c.match(k + 1, "(", ")") > lam.bodyEnd)
            return k;
    }
    return -1;
}

/** X2 + the lambda-capture halves of C1/L3 for one function. */
class FuncSiteChecks
{
  public:
    FuncSiteChecks(const Cursor &c, const Func &fn,
                   const SymbolIndex &sym, const FlowSink &sink)
        : c_(c), fn_(fn), sym_(sym), sink_(sink),
          locals_(collectLocals(c, fn))
    {
        for (const Lambda &l : fn.lambdas)
            lambdaAt_[l.intro] = &l;
    }

    void
    run()
    {
        collectForeignQueueVars();
        checkScheduleSites();
        for (const Lambda &l : fn_.lambdas) {
            checkL3(l);
            checkC1Capture(l);
        }
    }

  private:
    struct ForeignQueue
    {
        std::string name;
        int declLine = 0;
        std::string source; ///< queueOf / queues_ / ...
        int sourceLine = 0;
    };

    void
    forEachBodyToken(const std::function<void(int)> &fun)
    {
        for (int i = fn_.bodyBegin + 1; i < fn_.bodyEnd; ++i) {
            auto it = lambdaAt_.find(i);
            if (it != lambdaAt_.end()) {
                i = it->second->bodyEnd;
                continue;
            }
            fun(i);
        }
    }

    /** `EventQueue &q = ...foreign source...` style bindings. */
    void
    collectForeignQueueVars()
    {
        forEachBodyToken([&](int i) {
            if (!c_.isIdent(i))
                return;
            const std::string &ty = c_.text(i);
            if (ty != "EventQueue" && ty != "auto")
                return;
            int j = i + 1;
            bool indirect = false;
            while (c_.is(j, "&") || c_.is(j, "*") || c_.is(j, "const")) {
                indirect = true;
                ++j;
            }
            if (!indirect || !c_.isIdent(j))
                return;
            const std::string &after = c_.text(j + 1);
            if (after != "=" && after != ":")
                return;
            // Scan the initializer for a foreign-queue source.
            for (int k = j + 2; k < fn_.bodyEnd && k < j + 40; ++k) {
                const std::string &t = c_.text(k);
                if (t == ";" || t == "{")
                    break;
                if (c_.isIdent(k) && kForeignQueueSources.count(t) &&
                    (c_.is(k + 1, "(") || c_.is(k + 1, "["))) {
                    foreign_.push_back({c_.text(j), c_.line(j), t,
                                        c_.line(k)});
                    break;
                }
            }
        });
    }

    /** Direct `recv.schedule*(...)` sites whose receiver traces to a
     *  foreign-domain queue. */
    void
    checkScheduleSites()
    {
        forEachBodyToken([&](int i) {
            if (!c_.isIdent(i) || !kScheduleFamily.count(c_.text(i)) ||
                !c_.is(i + 1, "("))
                return;
            const std::string &prev = c_.text(i - 1);
            if (prev != "." && prev != "->")
                return;
            // Walk the receiver's postfix chain backwards.
            std::vector<int> recvIdents;
            int k = i - 2;
            while (k > fn_.bodyBegin) {
                const std::string &t = c_.text(k);
                if (t == ")") {
                    k = c_.matchBack(k, "(", ")") - 1;
                    continue;
                }
                if (t == "]") {
                    k = c_.matchBack(k, "[", "]") - 1;
                    continue;
                }
                if (c_.isIdent(k)) {
                    recvIdents.push_back(k);
                    const std::string &p = c_.text(k - 1);
                    if (p == "." || p == "->" || p == "::") {
                        k -= 2;
                        continue;
                    }
                }
                break;
            }
            for (int r : recvIdents) {
                const std::string &name = c_.text(r);
                if (kForeignQueueSources.count(name)) {
                    emitX2(i, c_.line(r),
                           "queue obtained from " + name +
                               " (a foreign domain's queue)");
                    return;
                }
                for (const ForeignQueue &fq : foreign_) {
                    if (fq.name == name) {
                        emitX2(i, fq.declLine,
                               "'" + fq.name + "' bound from " +
                                   fq.source +
                                   " (a foreign domain's queue)");
                        return;
                    }
                }
            }
        });
    }

    void
    emitX2(int callTok, int srcLine, std::string srcNote)
    {
        std::vector<TraceStep> trace;
        trace.push_back({srcLine, std::move(srcNote)});
        trace.push_back({c_.line(callTok),
                         "direct " + c_.text(callTok) +
                             "() bypasses Domains::post/sendKeyed"});
        sink_("X2", c_.line(callTok),
              "direct EventQueue::" + c_.text(callTok) + "() on a "
              "foreign domain's queue: cross-domain work must go "
              "through Domains::post/postAbs or "
              "ShardedExecutor::sendKeyed so it merges in the "
              "partition-invariant (tick, priority, key) order",
              std::move(trace));
    }

    /** L3: address of a stack local escaping into a deferred
     *  callable. */
    void
    checkL3(const Lambda &lam)
    {
        const int sinkTok =
            enclosingSink(c_, fn_, lam, kDeferredSinks);
        if (sinkTok < 0)
            return;
        auto report = [&](const LocalDecl &d, int escapeLine) {
            std::vector<TraceStep> trace;
            trace.push_back({d.line, "stack local '" + d.name +
                                         "' declared here"});
            trace.push_back({escapeLine,
                             "address of '" + d.name + "' escapes "
                             "into the deferred callable"});
            trace.push_back({c_.line(sinkTok),
                             "callable outlives the frame (handed "
                             "to " + c_.text(sinkTok) + ")"});
            sink_("L3", escapeLine,
                  "address of stack local '" + d.name + "' escapes "
                  "into a callable handed to " + c_.text(sinkTok) +
                  "(): the callable runs after the frame is gone — "
                  "copy the value, or hand over owning/stable "
                  "storage",
                  std::move(trace));
        };
        for (const auto &[name, line] : lam.addrInitCaptures) {
            if (const LocalDecl *d = findLocal(locals_, name))
                report(*d, line);
        }
        // `&local` in the body (arguments, assignments, returns).
        for (int i = lam.bodyBegin + 1; i < lam.bodyEnd; ++i) {
            if (!c_.is(i, "&") || !c_.isIdent(i + 1))
                continue;
            const std::string &p = c_.text(i - 1);
            if (!(p == "(" || p == "," || p == "=" || p == "{" ||
                  p == ";" || p == "return"))
                continue;
            const LocalDecl *d = findLocal(locals_, c_.text(i + 1));
            if (d && !redeclaredInLambda(c_, lam, d->name))
                report(*d, c_.line(i + 1));
        }
    }

    /** C1: a domain-local object captured into a cross-domain
     *  callable. */
    void
    checkC1Capture(const Lambda &lam)
    {
        const int sinkTok =
            enclosingSink(c_, fn_, lam, kCrossDomainSinks);
        if (sinkTok < 0)
            return;
        auto report = [&](const std::string &name, int capLine) {
            auto cit = sym_.varClass.find(name);
            const std::string cls =
                cit == sym_.varClass.end() ? "object" : cit->second;
            std::vector<TraceStep> trace;
            if (const LocalDecl *d = findLocal(locals_, name))
                trace.push_back({d->line, "domain-local " + cls +
                                              " '" + name +
                                              "' declared here"});
            trace.push_back({capLine, "'" + name + "' captured into "
                                      "the callable"});
            trace.push_back({c_.line(sinkTok),
                             "callable crosses a domain boundary "
                             "(handed to " + c_.text(sinkTok) + ")"});
            sink_("C1", capLine,
                  "domain-local " + cls + " '" + name + "' captured "
                  "into a callable handed to " + c_.text(sinkTok) +
                  "(): it would be touched from another domain — "
                  "domain-local objects (Semaphore, Join, per-tile "
                  "state) must stay in their owning domain; funnel "
                  "through an anchor tile like SimBarrier",
                  std::move(trace));
        };
        for (const auto &[name, line] : lam.refCaptures)
            if (sym_.domainLocalVars.count(name))
                report(name, line);
        for (const auto &[name, line] : lam.valCaptures)
            if (sym_.domainLocalVars.count(name))
                report(name, line);
        if (lam.refDefault || lam.valDefault) {
            for (int i = lam.bodyBegin + 1; i < lam.bodyEnd; ++i) {
                const std::string &t = c_.text(i);
                if (!c_.isIdent(i) || !sym_.domainLocalVars.count(t))
                    continue;
                const std::string &p = c_.text(i - 1);
                if (p == "." || p == "->" || p == "::")
                    continue;
                if (!findLocal(locals_, t) ||
                    redeclaredInLambda(c_, lam, t))
                    continue;
                report(t, c_.line(i));
            }
        }
    }

    const Cursor &c_;
    const Func &fn_;
    const SymbolIndex &sym_;
    const FlowSink &sink_;
    std::vector<LocalDecl> locals_;
    std::map<int, const Lambda *> lambdaAt_;
    std::vector<ForeignQueue> foreign_;
};

} // namespace

void
checkFlowRules(const SourceFile &f, const SymbolIndex &sym,
               const Config &cfg, const FlowSink &sink)
{
    const bool anyFlow =
        cfg.rules.empty() || cfg.rules.count("X2") ||
        cfg.rules.count("H1") || cfg.rules.count("C1") ||
        cfg.rules.count("L3");
    if (!anyFlow)
        return;
    Cursor c(f);
    const std::vector<Func> fns = parseFunctions(f);
    for (const Func &fn : fns) {
        FuncFlow(c, fn, sym, sink).run();
        FuncSiteChecks(c, fn, sym, sink).run();
    }
}

} // namespace takolint
