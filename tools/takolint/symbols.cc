/**
 * @file
 * takolint's cross-file symbol index (flow layer, pass A/B). Two
 * passes over the whole scanned set, because the facts are cross-file:
 * `Semaphore` is annotated in src/sim/task.hh, while the member that
 * gets captured into a cross-domain post may be declared in a .hh and
 * misused from a .cc three directories away.
 *
 *  - Pass A (indexClasses): class/struct definitions, their member
 *    declarations (class membership), and the
 *    `// takolint: domain-local` annotation contract — an annotation
 *    on the class-definition line or the line above marks the type as
 *    owned by exactly one domain at a time.
 *  - Pass B (indexAnnotatedVars): every identifier declared *directly*
 *    with an annotated type (`Semaphore s`, `Join &j`, `TileState *t`
 *    — but not template-nested uses like vector<unique_ptr<TileState>>,
 *    which keeps container members out of the over-approximation).
 *
 * Like the D1 unordered-var index, the result is deliberately global
 * and over-approximating: any identifier ever declared domain-local is
 * treated as domain-local everywhere, and the release valve for a
 * reviewed site is a reasoned suppression.
 */

#include "flow.hh"

namespace takolint
{

namespace
{

bool
isTypeDeclKeyword(const std::string &t)
{
    return t == "class" || t == "struct";
}

/** Does any annotation mark sit on @p line or the line above? */
bool
annotated(const SourceFile &f, int line)
{
    for (int m : f.domainLocalMarks)
        if (m == line || m == line - 1)
            return true;
    return false;
}

} // namespace

void
indexClasses(const SourceFile &f, SymbolIndex &idx)
{
    Cursor c(f);
    for (int i = 0; i < c.size(); ++i) {
        if (!isTypeDeclKeyword(c.text(i)) || !c.isIdent(i + 1))
            continue;
        const std::string &name = c.text(i + 1);
        // Definition, not elaborated use / fwd decl: the name is
        // followed by `{`, `:` (base clause), or `final`.
        int j = i + 2;
        if (c.is(j, "final"))
            ++j;
        if (!c.is(j, "{") && !c.is(j, ":"))
            continue;
        if (annotated(f, c.line(i)))
            idx.domainLocalClasses.insert(name);

        // Member declarations inside the definition body: record
        // `Type name ;/=/{` pairs one level deep (class membership).
        while (j < c.size() && !c.is(j, "{"))
            ++j;
        const int close = c.match(j, "{", "}");
        int depth = 0;
        for (int k = j + 1; k < close; ++k) {
            const std::string &t = c.text(k);
            if (t == "{" || t == "(" || t == "[") {
                ++depth;
                continue;
            }
            if (t == "}" || t == ")" || t == "]") {
                --depth;
                continue;
            }
            if (depth != 0 || !c.isIdent(k))
                continue;
            int m = k + 1;
            if (c.is(m, "<"))
                m = c.skipTemplateArgs(m);
            while (c.is(m, "&") || c.is(m, "*") || c.is(m, "const"))
                ++m;
            if (c.isIdent(m) &&
                (c.is(m + 1, ";") || c.is(m + 1, "=") ||
                 c.is(m + 1, "{")))
                idx.classMembers[name].push_back(c.text(m));
        }
    }
}

void
indexAnnotatedVars(const SourceFile &f, SymbolIndex &idx)
{
    if (idx.domainLocalClasses.empty())
        return;
    Cursor c(f);
    for (int i = 0; i < c.size(); ++i) {
        if (!c.isIdent(i) || !idx.domainLocalClasses.count(c.text(i)))
            continue;
        // Skip the definition itself (`class Semaphore { ... }`).
        if (isTypeDeclKeyword(c.text(i - 1)))
            continue;
        const std::string &cls = c.text(i);
        int j = i + 1;
        if (c.is(j, "<"))
            j = c.skipTemplateArgs(j);
        while (c.is(j, "&") || c.is(j, "*") || c.is(j, "const"))
            ++j;
        if (!c.isIdent(j))
            continue;
        // Direct declaration only: `Semaphore name` followed by an
        // initializer, terminator, or parameter separator. `::` after
        // the name means a qualified definition (`Semaphore
        // &Engine::memPortSem()`), not a variable.
        const std::string &after = c.text(j + 1);
        if (after == ";" || after == "=" || after == "{" ||
            after == "(" || after == "," || after == ")" ||
            after == ":") {
            idx.domainLocalVars.insert(c.text(j));
            idx.varClass.emplace(c.text(j), cls);
        }
    }
}

} // namespace takolint
