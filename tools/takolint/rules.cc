/**
 * @file
 * takolint's rule engine: a lightweight parser over the lexer's token
 * stream. Two passes over the file set:
 *
 *  1. index — collect identifiers declared with unordered-container
 *     types anywhere in the scanned set (members declared in a .hh are
 *     iterated from the .cc, so this index is global), and per-file
 *     EventNode* variables (delete sites are local to their file).
 *  2. check — walk each file's significant tokens once, running D1,
 *     D2, L1, L2 and S1. S1 tracks enclosing class/function scopes with
 *     a small brace/paren machine so registry lookups in constructor
 *     init-lists and finalize() stay legal.
 *
 * This is intentionally not a compiler: it over-approximates (every
 * identifier that was *ever* declared unordered is treated as unordered
 * everywhere), and the release valve for a deliberate, reviewed site is
 * a reasoned `// takolint: ok(RULE, why)` suppression.
 */

#include <algorithm>
#include <array>
#include <filesystem>

#include "flow.hh"

namespace takolint
{

namespace
{

const std::set<std::string> kUnorderedTypes = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset",
};

/** Host-state reads that must never steer the simulated path (D2). */
const std::set<std::string> kHostCalls = {
    "rand",        "srand",     "random",        "drand48",
    "lrand48",     "rand_r",    "getenv",        "gettimeofday",
    "clock_gettime", "time",    "clock",         "localtime",
    "gmtime",      "mktime",
};

/** Chrono clocks whose ::now() is a wall-clock read (D2). */
const std::set<std::string> kHostClocks = {
    "system_clock", "steady_clock", "high_resolution_clock",
};

/** Entry points whose callables outlive the caller's frame (L1). */
const std::set<std::string> kDeferredCalls = {
    "schedule", "scheduleAbs", "spawn",
};

/** Types that must only be allocated through their pool (L2). */
const std::set<std::string> kPooledTypes = {"EventNode"};

/** StatsRegistry string-lookup members (S1). */
const std::set<std::string> kStatsLookups = {
    "counter", "histogram", "handle", "histogramHandle",
};

/** Setup/teardown functions where string-lookup stats are fine (S1). */
const std::set<std::string> kStatsOkFunctions = {"finalize"};

const std::set<std::string> kKeywordsNotFunctions = {
    "if",     "for",    "while",   "switch", "catch", "return",
    "sizeof", "static_assert", "alignof", "decltype", "co_await",
    "co_return", "co_yield", "new", "delete", "throw", "assert",
    "noexcept", "operator", "alignas", "panic", "panic_if",
};

struct Index
{
    /** Identifiers declared with an unordered container type. */
    std::set<std::string> unorderedVars;
    /** Per file: identifiers declared as EventNode*. */
    std::map<std::string, std::set<std::string>> nodePtrVars;
};

/** The per-file checker (pass 2). The token-stream Cursor lives in
 *  flow.hh, shared with the flow layer. */
class Checker
{
  public:
    Checker(const SourceFile &f, const Index &idx, const Config &cfg,
            bool model, Report &report)
        : f_(f), c_(f), idx_(idx), cfg_(cfg), model_(model),
          report_(report)
    {
        auto it = idx.nodePtrVars.find(f.path);
        if (it != idx.nodePtrVars.end())
            nodePtrs_ = &it->second;
    }

    void
    run()
    {
        for (int i = 0; i < c_.size(); ++i) {
            trackScopes(i);
            if (model_) {
                checkD1(i);
                checkD2(i);
                checkS1(i);
                checkX1(i);
            }
            checkL1(i);
            checkL2(i);
        }
    }

  private:
    // ---- scope tracking (for S1 contexts) --------------------------
    struct Scope
    {
        enum Kind { Namespace, Class, Function, Block } kind;
        std::string name;
        bool statsOk = false; ///< ctor/dtor/finalize body
    };

    bool
    ruleEnabled(const std::string &rule) const
    {
        return cfg_.rules.empty() || cfg_.rules.count(rule);
    }

    void
    emit(const std::string &rule, int line, std::string msg,
         std::vector<TraceStep> trace = {})
    {
        if (!ruleEnabled(rule))
            return;
        // One finding per (rule, line): min_element(x.begin(), x.end())
        // is one defect, not two.
        for (const auto &prev : report_.findings)
            if (prev.rule == rule && prev.file == f_.path &&
                prev.line == line)
                return;
        Finding f;
        f.rule = rule;
        f.file = f_.path;
        f.line = line;
        f.message = std::move(msg);
        f.trace = std::move(trace);
        if (cfg_.honorSuppressions) {
            for (auto &s : suppressions_) {
                if (s->rule == rule &&
                    (s->line == line || s->line == line - 1)) {
                    f.suppressed = true;
                    f.suppressReason = s->reason;
                    s->used = true;
                    break;
                }
            }
        }
        report_.findings.push_back(std::move(f));
    }

    std::string
    currentClass() const
    {
        for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it)
            if (it->kind == Scope::Class)
                return it->name;
        return "";
    }

    bool
    inStatsOkContext() const
    {
        if (pendingInitList_)
            return pendingStatsOk_;
        for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it)
            if (it->kind == Scope::Function)
                return it->statsOk;
        // Namespace-scope initializers run once at startup: fine.
        return true;
    }

    bool
    inFunction() const
    {
        if (pendingInitList_ || bodyAt_ >= 0)
            return true;
        for (const auto &s : scopes_)
            if (s.kind == Scope::Function)
                return true;
        return false;
    }

    /**
     * Is the function whose qualified name components are @p parts a
     * context where S1 string lookups are legal (ctor/dtor/finalize)?
     */
    bool
    statsOkFunction(const std::vector<std::string> &parts) const
    {
        if (parts.empty())
            return false;
        const std::string &last = parts.back();
        if (kStatsOkFunctions.count(last))
            return true;
        if (last.size() > 1 && last[0] == '~')
            return true;
        if (parts.size() >= 2 && parts[parts.size() - 2] == last)
            return true; // A::A — out-of-line constructor
        const std::string cls = currentClass();
        return !cls.empty() && last == cls; // inline constructor
    }

    void
    trackScopes(int i)
    {
        const std::string &t = c_.text(i);

        if (t == "{") {
            if (i == bodyAt_) {
                // The `{` detectFunction already resolved as this
                // function's body.
                bodyAt_ = -1;
                scopes_.push_back(
                    {Scope::Function, pendingName_, pendingStatsOk_});
                return;
            }
            if (pendingInitList_) {
                // Member brace-init (`x_{0}`) follows an identifier or
                // a template close; the ctor body follows `)` or `}`.
                const std::string &prev = c_.text(i - 1);
                if (initBraceDepth_ > 0 || c_.isIdent(i - 1) ||
                    prev == ">" || prev == ">>") {
                    ++initBraceDepth_;
                    return;
                }
                pendingInitList_ = false;
                scopes_.push_back(
                    {Scope::Function, pendingName_, pendingStatsOk_});
                return;
            }
            if (pendingKind_ != Scope::Block) {
                scopes_.push_back({pendingKind_, pendingName_, false});
                pendingKind_ = Scope::Block;
                pendingName_.clear();
            } else {
                scopes_.push_back({Scope::Block, "", false});
            }
            return;
        }
        if (t == "}") {
            if (pendingInitList_ && initBraceDepth_ > 0) {
                --initBraceDepth_;
                return;
            }
            if (!scopes_.empty())
                scopes_.pop_back();
            return;
        }
        if (t == ";") {
            // `class X;` / `struct X x;` — elaborated use, no scope.
            pendingKind_ = Scope::Block;
            pendingName_.clear();
            return;
        }

        if (t == "namespace" && !inFunction()) {
            int j = i + 1;
            std::string name;
            while (c_.isIdent(j) || c_.is(j, "::")) {
                name += c_.text(j);
                ++j;
            }
            if (!c_.is(j, "="))  { // not a namespace alias
                pendingKind_ = Scope::Namespace;
                pendingName_ = name.empty() ? "<anon>" : name;
            }
            return;
        }
        if ((t == "class" || t == "struct" || t == "union") &&
            !inFunction() && !c_.is(i - 1, "enum")) {
            int j = i + 1;
            while (c_.is(j, "[") || c_.is(j, "alignas")) // attributes
                j = c_.match(j, "[", "]") + 1;
            if (c_.isIdent(j)) {
                pendingKind_ = Scope::Class;
                pendingName_ = c_.text(j);
            }
            return;
        }
        if (t == "enum" && !inFunction()) {
            pendingKind_ = Scope::Class; // close enough: a named scope
            pendingName_ = "<enum>";
            return;
        }

        // Function definition detection, only outside any function.
        if (!inFunction() && c_.isIdent(i) && c_.is(i + 1, "(") &&
            !kKeywordsNotFunctions.count(t)) {
            detectFunction(i);
        }
        if (!inFunction() && t == "~" && c_.isIdent(i + 1) &&
            c_.is(i + 2, "(")) {
            detectFunction(i + 1, /*dtor=*/true);
        }
    }

    void
    detectFunction(int i, bool dtor = false)
    {
        // Qualified name: walk back over `A ::` pairs.
        std::vector<std::string> parts;
        int b = i;
        parts.insert(parts.begin(), (dtor ? "~" : "") + c_.text(b));
        while (c_.is(b - 1, "::") && c_.isIdent(b - 2)) {
            b -= 2;
            parts.insert(parts.begin(), c_.text(b));
        }
        const int close = c_.match(i + 1, "(", ")");
        if (close >= c_.size())
            return;
        // Skip trailing specifiers up to the body/init-list/terminator.
        int j = close + 1;
        static const std::set<std::string> kSpecifiers = {
            "const", "noexcept", "override", "final", "mutable",
            "volatile", "&", "&&", "try",
        };
        while (j < c_.size()) {
            const std::string &s = c_.text(j);
            if (kSpecifiers.count(s)) {
                ++j;
                if (s == "noexcept" && c_.is(j, "("))
                    j = c_.match(j, "(", ")") + 1;
                continue;
            }
            if (s == "->") { // trailing return type
                ++j;
                while (j < c_.size() && !c_.is(j, "{") && !c_.is(j, ";") &&
                       !c_.is(j, "="))
                    ++j;
                continue;
            }
            break;
        }
        const bool ok = statsOkFunction(parts);
        std::string name;
        for (const auto &p : parts)
            name += (name.empty() ? "" : "::") + p;
        if (c_.is(j, "{")) {
            bodyAt_ = j; // the exact `{` that opens this body
            pendingName_ = name;
            pendingStatsOk_ = ok;
        } else if (c_.is(j, ":")) {
            pendingInitList_ = true; // ctor init-list region
            initBraceDepth_ = 0;
            pendingName_ = name;
            pendingStatsOk_ = ok;
        }
        // `;` / `=` (declaration, deleted, pure) — nothing to do.
    }

    // ---- D1: unordered containers in model code --------------------
    void
    checkD1(int i)
    {
        const std::string &t = c_.text(i);
        if (kUnorderedTypes.count(t) && c_.isIdent(i)) {
            emit("D1", c_.line(i),
                 "std::" + t + " in model code: hash order becomes "
                 "simulated behavior the moment anyone iterates; use an "
                 "ordered container or a sorted drain");
            return;
        }
        // Range-for over a known-unordered identifier, including
        // member chains (`for (auto &kv : t.streams)`).
        if (t == ":" && c_.isIdent(i + 1)) {
            int j = i + 1;
            while ((c_.is(j + 1, ".") || c_.is(j + 1, "->")) &&
                   c_.isIdent(j + 2))
                j += 2;
            if (c_.is(j + 1, ")") &&
                idx_.unorderedVars.count(c_.text(j)) &&
                looksLikeRangeFor(i)) {
                emit("D1", c_.line(j),
                     "range-for over unordered container '" +
                         c_.text(j) + "': iteration order is hash order");
                return;
            }
        }
        // Iterator walk over a known-unordered identifier.
        if ((t == "begin" || t == "cbegin" || t == "end" ||
             t == "cend") &&
            c_.is(i + 1, "(") && (c_.is(i - 1, ".") || c_.is(i - 1, "->")) &&
            c_.isIdent(i - 2) &&
            idx_.unorderedVars.count(c_.text(i - 2)) &&
            !erasePattern(i)) {
            emit("D1", c_.line(i),
                 "iterator walk over unordered container '" +
                 c_.text(i - 2) + "': visit order is hash order");
        }
    }

    /** `it == X.end()` / `X.find(k) != X.end()` are lookups, not
     *  walks: an `end()` compared against or assigned from find() is
     *  fine. We flag begin()/end() only when both appear as a pair in
     *  the same expression (e.g. std::min_element(X.begin(), X.end())),
     *  or a bare begin() dereference. */
    bool
    erasePattern(int i) const
    {
        const std::string &t = c_.text(i);
        if (t != "end" && t != "cend")
            return false;
        // end() used in a comparison or initializer -> lookup idiom.
        const int after = c_.match(i + 1, "(", ")") + 1;
        static const std::set<std::string> cmp = {"==", "!=", ";", ")",
                                                  "?", ":"};
        const std::string &prevExpr = prevSignificantBefore(i);
        return cmp.count(c_.text(after)) ||
               prevExpr == "==" || prevExpr == "!=" || prevExpr == "=";
    }

    /** Significant token just before the `X.end(` chain at @p i. */
    const std::string &
    prevSignificantBefore(int i) const
    {
        // i is `end`; i-1 is `.`; i-2 is the identifier.
        return c_.text(i - 3);
    }

    bool
    looksLikeRangeFor(int colon) const
    {
        // Walk back to the enclosing `(`; its predecessor must be `for`.
        int depth = 0;
        for (int j = colon - 1; j >= 0 && colon - j < 64; --j) {
            const std::string &t = c_.text(j);
            if (t == ")")
                ++depth;
            else if (t == "(") {
                if (depth == 0)
                    return c_.is(j - 1, "for");
                --depth;
            }
        }
        return false;
    }

    // ---- D2: host state on the simulated path ----------------------
    void
    checkD2(int i)
    {
        const std::string &t = c_.text(i);
        if (!c_.isIdent(i))
            return;
        if (kHostCalls.count(t) && c_.is(i + 1, "(")) {
            // Member calls (`x.time(...)`) are not the libc function;
            // `std::time(...)` and bare calls are.
            const std::string &prev = c_.text(i - 1);
            if (prev == "." || prev == "->")
                return;
            if (prev == "::" && !c_.is(i - 2, "std"))
                return;
            emit("D2", c_.line(i),
                 "host call '" + t + "()' on the simulated path: "
                 "wall-clock/rng/env reads break replay determinism "
                 "(use sim/random.hh or pass config in)");
            return;
        }
        if (kHostClocks.count(t) && c_.is(i + 1, "::") &&
            c_.is(i + 2, "now")) {
            emit("D2", c_.line(i),
                 "std::chrono::" + t + "::now() in model code: host "
                 "time must never steer simulated time");
        }
    }

    // ---- L1: by-ref captures in deferred callables -----------------
    void
    checkL1(int i)
    {
        if (!c_.isIdent(i) || !kDeferredCalls.count(c_.text(i)) ||
            !c_.is(i + 1, "("))
            return;
        // Skip definitions/declarations of the entry points themselves:
        // a call site is preceded by `.`, `->`, `(`, `,`, `;`, `{`, `=`
        // or similar — not by a type name.
        const int close = c_.match(i + 1, "(", ")");
        for (int j = i + 2; j < close; ++j) {
            if (!c_.is(j, "["))
                continue;
            // Lambda introducer vs. subscript: a lambda's `[` cannot
            // follow an identifier / `)` / `]` (those are subscripts).
            const std::string &prev = c_.text(j - 1);
            if (c_.isIdent(j - 1) || prev == ")" || prev == "]")
                continue;
            const int cap = c_.match(j, "[", "]");
            for (int k = j + 1; k < cap; ++k) {
                if (c_.is(k, "&") || c_.is(k, "&&")) {
                    emit("L1", c_.line(k),
                         "by-reference lambda capture passed to '" +
                             c_.text(i) + "': the callable runs at a "
                             "later tick, after the capturing frame is "
                             "gone — capture by value");
                    break;
                }
            }
            j = cap;
        }
    }

    // ---- L2: raw allocation of pooled types ------------------------
    void
    checkL2(int i)
    {
        const std::string &t = c_.text(i);
        if (t == "new") {
            int j = i + 1;
            if (c_.is(j, "(")) // placement new: the pool's own business
                return;
            while (c_.isIdent(j) && c_.is(j + 1, "::"))
                j += 2;
            if (c_.isIdent(j) && kPooledTypes.count(c_.text(j))) {
                emit("L2", c_.line(i),
                     "raw new of pooled type " + c_.text(j) +
                         ": allocate through EventPool so nodes recycle "
                         "through the free list");
            }
            return;
        }
        if (t == "make_unique" || t == "make_shared") {
            if (!c_.is(i + 1, "<"))
                return;
            const int end = c_.skipTemplateArgs(i + 1);
            for (int j = i + 2; j < end; ++j) {
                if (c_.isIdent(j) && kPooledTypes.count(c_.text(j))) {
                    emit("L2", c_.line(i),
                         "std::" + t + " of pooled type " + c_.text(j) +
                             ": allocate through EventPool");
                    return;
                }
            }
            return;
        }
        if (t == "delete" && nodePtrs_) {
            int j = i + 1;
            if (c_.is(j, "[")) // delete[]
                j = c_.match(j, "[", "]") + 1;
            if (c_.isIdent(j) && nodePtrs_->count(c_.text(j))) {
                emit("L2", c_.line(i),
                     "raw delete of EventNode* '" + c_.text(j) +
                         "': return nodes with EventPool::release()");
            }
        }
    }

    // ---- S1: string-lookup stats in per-access code ----------------
    void
    checkS1(int i)
    {
        if (!c_.isIdent(i) || !kStatsLookups.count(c_.text(i)) ||
            !c_.is(i + 1, "("))
            return;
        const std::string &prev = c_.text(i - 1);
        if (prev != "." && prev != "->")
            return; // our own definitions / unrelated free functions
        if (inStatsOkContext())
            return;
        emit("S1", c_.line(i),
             "stats string lookup '" + c_.text(i) + "()' outside a "
             "constructor/finalize: resolve a Counter*/Histogram* "
             "handle at construction and increment through it");
    }

    // ---- X1: static-duration mutable state in model code -----------
    /**
     * Sharded runs execute model code on several host threads at once:
     * any `static` (function-local or namespace/class scope) that is
     * neither immutable (`const`/`constexpr`/`constinit`) nor
     * per-thread (`thread_local`) is shared mutable state that bypasses
     * the mailbox API and breaks both thread-safety and determinism.
     *
     * Heuristic, as everywhere in this linter: a `(` before the
     * declarator ends means a function declaration (skipped), and
     * namespace-scope globals declared *without* the `static` keyword
     * are not seen at all — a known under-approximation.
     */
    void
    checkX1(int i)
    {
        if (!c_.is(i, "static"))
            return;
        for (int j = i + 1; j < c_.size() && j < i + 40;) {
            const std::string &t = c_.text(j);
            if (t == "const" || t == "constexpr" || t == "constinit" ||
                t == "thread_local")
                return; // immutable or shard-private: fine
            if (t == "<") {
                j = c_.skipTemplateArgs(j);
                continue;
            }
            if (t == "(")
                return; // function (or constructor-style init): skip
            if (t == ";" || t == "=" || t == "{") {
                emit("X1", c_.line(i),
                     "static-duration mutable state in model code: "
                     "shards run concurrently, so cross-shard "
                     "communication must go through "
                     "ShardedExecutor::send() mailboxes; make this "
                     "const/constexpr, thread_local, or per-instance");
                return;
            }
            ++j;
        }
    }

    const SourceFile &f_;
    Cursor c_;
    const Index &idx_;
    const Config &cfg_;
    bool model_;
    Report &report_;
    const std::set<std::string> *nodePtrs_ = nullptr;
    std::vector<Suppression *> suppressions_;

    std::vector<Scope> scopes_;
    Scope::Kind pendingKind_ = Scope::Block;
    std::string pendingName_;
    bool pendingInitList_ = false;
    bool pendingStatsOk_ = false;
    int initBraceDepth_ = 0;
    int bodyAt_ = -1; ///< sig index of a detected function's body `{`

  public:
    void
    bindSuppressions(std::vector<Suppression> &supps)
    {
        for (auto &s : supps)
            suppressions_.push_back(&s);
    }

    /** Flow-rule adapter: routes X2/H1/C1/L3 findings through the same
     *  dedupe + suppression machinery as the token rules, so one
     *  suppression list covers the whole multi-rule pass. */
    void
    emitFlow(const std::string &rule, int line, std::string msg,
             std::vector<TraceStep> trace)
    {
        emit(rule, line, std::move(msg), std::move(trace));
    }
};

/** Pass 1: harvest declared-identifier facts from one file. */
void
indexFile(const SourceFile &f, Index &idx)
{
    Cursor c(f);
    for (int i = 0; i < c.size(); ++i) {
        if (c.isIdent(i) && kUnorderedTypes.count(c.text(i)) &&
            c.is(i + 1, "<")) {
            int j = c.skipTemplateArgs(i + 1);
            while (c.is(j, "*") || c.is(j, "&"))
                ++j;
            if (c.isIdent(j))
                idx.unorderedVars.insert(c.text(j));
            continue;
        }
        if (c.isIdent(i) && kPooledTypes.count(c.text(i)) &&
            c.is(i + 1, "*") && c.isIdent(i + 2)) {
            idx.nodePtrVars[f.path].insert(c.text(i + 2));
        }
    }
}

} // namespace

const std::map<std::string, std::string> &
ruleDescriptions()
{
    static const std::map<std::string, std::string> rules = {
        {"D1", "no unordered-container state/iteration in model code"},
        {"D2", "no wall-clock, rand() or getenv() on the simulated path"},
        {"L1", "no by-reference lambda captures in deferred callables"},
        {"L2", "no raw new/delete of pooled types (EventNode)"},
        {"S1", "stats via cached handles, not string lookups, in "
               "per-access code"},
        {"X1", "no static-duration mutable state in model code "
               "(cross-shard state outside the mailbox API)"},
        {"X2", "no direct EventQueue::schedule* on a foreign domain's "
               "queue (use Domains::post/postAbs or sendKeyed)"},
        {"H1", "no use of a pre-hop reference, `this`, or by-ref "
               "capture after a migrating co_await hopTo/hop"},
        {"C1", "no domain-local annotated object (Semaphore, Join, "
               "per-tile state) crossing a domain boundary"},
        {"L3", "no stack-local address escaping into a deferred "
               "callable (schedule*/spawn/post/sendKeyed)"},
    };
    return rules;
}

bool
isModelPath(const std::string &path)
{
    static const std::array<const char *, 8> dirs = {
        "src/mem/", "src/tako/", "src/noc/",
        "src/sim/", "src/morphs/", "src/prof/",
        "src/trace/", "src/mon/",
    };
    std::string p = path;
    std::replace(p.begin(), p.end(), '\\', '/');
    for (const char *d : dirs)
        if (p.find(d) != std::string::npos)
            return true;
    return false;
}

bool
isPartitionPath(const std::string &path)
{
    if (isModelPath(path))
        return true;
    std::string p = path;
    std::replace(p.begin(), p.end(), '\\', '/');
    return p.find("src/workloads/") != std::string::npos ||
           p.find("src/system/") != std::string::npos;
}

std::vector<std::string>
collectSources(const std::vector<std::string> &paths)
{
    namespace fs = std::filesystem;
    std::vector<std::string> out;
    for (const auto &p : paths) {
        if (fs::is_directory(p)) {
            for (auto it = fs::recursive_directory_iterator(p);
                 it != fs::recursive_directory_iterator(); ++it) {
                if (it->is_directory() &&
                    it->path().filename() == "build") {
                    it.disable_recursion_pending();
                    continue;
                }
                if (!it->is_regular_file())
                    continue;
                const std::string ext = it->path().extension().string();
                if (ext == ".hh" || ext == ".cc" || ext == ".hpp" ||
                    ext == ".cpp" || ext == ".h")
                    out.push_back(it->path().string());
            }
        } else {
            out.push_back(p);
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

Report
lint(const std::vector<SourceFile> &files, const Config &cfg)
{
    Index idx;
    for (const auto &f : files)
        indexFile(f, idx);

    // Flow symbol index (cross-file, two passes: pass B needs every
    // file's annotated classes from pass A).
    SymbolIndex sym;
    for (const auto &f : files)
        indexClasses(f, sym);
    for (const auto &f : files)
        indexAnnotatedVars(f, sym);

    Report report;
    report.filesScanned = static_cast<int>(files.size());
    // `lint` takes files by const&, but suppressions carry a `used`
    // flag; track usage in a mutable copy per file. The copy is shared
    // by the token pass and the flow pass, so a suppression used by
    // either is not reported unused.
    for (const auto &f : files) {
        std::vector<Suppression> supps = f.suppressions;
        const bool model = cfg.assumeModelCode || isModelPath(f.path);
        Checker checker(f, idx, cfg, model, report);
        checker.bindSuppressions(supps);
        checker.run();
        if (cfg.assumeModelCode || isPartitionPath(f.path)) {
            checkFlowRules(f, sym, cfg,
                           [&](const std::string &rule, int line,
                               std::string msg,
                               std::vector<TraceStep> trace) {
                               checker.emitFlow(rule, line,
                                                std::move(msg),
                                                std::move(trace));
                           });
        }
        // Unused suppressions, deduplicated per (line, rule): a line
        // carrying the same ok(...) twice — or one seen by several
        // rule passes — is still one stale suppression.
        std::set<std::pair<int, std::string>> reported;
        for (const auto &s : supps) {
            if (s.used || !cfg.honorSuppressions)
                continue;
            if (!cfg.rules.empty() && !cfg.rules.count(s.rule))
                continue;
            if (!reported.insert({s.line, s.rule}).second)
                continue;
            report.unusedSuppressions.push_back({f.path, s.line, s.rule});
        }
    }
    std::stable_sort(report.findings.begin(), report.findings.end(),
                     [](const Finding &a, const Finding &b) {
                         if (a.file != b.file)
                             return a.file < b.file;
                         return a.line < b.line;
                     });
    return report;
}

Report
lintPaths(const std::vector<std::string> &paths, const Config &cfg)
{
    std::vector<SourceFile> files;
    for (const auto &p : collectSources(paths))
        files.push_back(lexFile(p));
    return lint(files, cfg);
}

std::string
format(const Finding &f)
{
    std::string out =
        f.file + ":" + std::to_string(f.line) + ": " + f.rule + ": " +
        f.message;
    if (f.suppressed)
        out += " [suppressed: " +
               (f.suppressReason.empty() ? "no reason" : f.suppressReason) +
               "]";
    // Flow findings append their witness path as GCC-style notes, one
    // line per step, so the bind -> suspension -> stale-use chain reads
    // straight off the terminal.
    for (const auto &step : f.trace)
        out += "\n" + f.file + ":" + std::to_string(step.line) +
               ": note: " + step.note;
    return out;
}

} // namespace takolint
