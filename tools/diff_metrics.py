#!/usr/bin/env python3
"""Diff the per-run metrics of two takobench suite reports.

Usage: diff_metrics.py BASELINE.json CANDIDATE.json
       diff_metrics.py --series A.takomon B.takomon

Compares every run the two reports share, metric by metric, and exits
nonzero if any non-host metric differs *at all* — the simulator's
determinism contract is bit-identity, so there is no tolerance knob.
Host-side throughput gauges (the ``host.*`` counter namespace and the
``host_*`` report headers) are exempt by contract: they measure the
machine, not the model.

``--exempt-prefix=P`` (repeatable) additionally exempts every metric
whose dotted path starts with P. CI's cross-topology gates pass
``--exempt-prefix=shard.``: the shard.* observability counters are
deterministic for a fixed topology but describe the topology itself
(domain count, per-domain event shares), so a shards=4 run legitimately
differs from the monolithic baseline there. The same-topology gate
(-j8 vs -j1) passes no exemption — shard.* must be thread-count-exact.

``--require-nonempty-domains`` additionally asserts, for every candidate
run that reports a sharded topology (``shard.domains`` > 1), that every
domain actually executed events (``shard.d<i>.events`` > 0). This is how
CI proves the cross-topology gates exercised real decomposed execution:
a bit-identical report from a run whose remote domains sat idle would
pass the diff while testing nothing.

``--series A B`` switches to takomon mode: the two telemetry files must
be byte-identical (the format is canonical — same samples => same
bytes), and on mismatch both are decoded to report the first diverging
series/sample instead of a bare "files differ".

This is the CI gate behind ``--takosim-arg=--shards=4``: a sharded
sweep's report must carry exactly the same simulated metrics as the
monolithic baseline.
"""

import argparse
import json
import os
import sys


def is_host_metric(name: str) -> bool:
    # Host counters appear bare in takosim runs ("host.seconds") and
    # label-prefixed in bench runs ("srrip.host.seconds"): match the
    # namespace anywhere in the dotted path.
    return (
        "host" in name.split(".")
        or name.startswith("host_")
        or name == "events_per_sec"
    )


def run_metrics(report: dict, exempt_prefixes) -> dict:
    """name -> {metric -> value} for every completed run."""
    out = {}
    for run in report.get("runs", []):
        metrics = run.get("metrics")
        if not isinstance(metrics, dict):
            continue
        out[run["name"]] = {
            k: v
            for k, v in metrics.items()
            if not is_host_metric(k)
            and not any(k.startswith(p) for p in exempt_prefixes)
        }
    return out


def empty_domain_failures(report: dict) -> list:
    """Sharded runs whose domains executed nothing (see module doc)."""
    failures = []
    for run in report.get("runs", []):
        metrics = run.get("metrics")
        if not isinstance(metrics, dict):
            continue
        domains = int(metrics.get("shard.domains", 0))
        if domains <= 1:
            continue
        for d in range(domains):
            key = f"shard.d{d}.events"
            if metrics.get(key, 0) <= 0:
                failures.append(
                    f"{run['name']}: {key} = {metrics.get(key)!r} "
                    f"(domain {d} of {domains} executed nothing)"
                )
    return failures


def diff_series(a_path: str, b_path: str) -> int:
    """Byte-identity gate for two takomon telemetry files."""
    with open(a_path, "rb") as f:
        a = f.read()
    with open(b_path, "rb") as f:
        b = f.read()
    if a == b:
        print(
            f"diff_metrics: OK — {a_path} and {b_path} byte-identical "
            f"({len(a)} bytes)"
        )
        return 0

    print(f"diff_metrics: takomon files differ ({len(a)} vs {len(b)} bytes)")
    # Decode both to say *what* diverged, not just that bytes did.
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from validate_takomon import MonError, decode

    try:
        a_series, a_ticks, a_cols, _ = decode(a_path)
        b_series, b_ticks, b_cols, _ = decode(b_path)
    except MonError as e:
        print(f"  (cannot decode for detail: {e})")
        return 1
    if a_series != b_series:
        print(f"  series directories differ: {len(a_series)} vs "
              f"{len(b_series)} series")
        return 1
    if a_ticks != b_ticks:
        print(f"  sample ticks differ ({len(a_ticks)} vs "
              f"{len(b_ticks)} samples)")
        return 1
    for s, (name, _kind) in enumerate(a_series):
        for i, (va, vb) in enumerate(zip(a_cols[s], b_cols[s])):
            if va != vb:
                print(f"  first divergence: {name} at tick "
                      f"{a_ticks[i]}: {va!r} != {vb!r}")
                return 1
    print("  (identical decoded content; difference is in encoding)")
    return 1


def main() -> int:
    ap = argparse.ArgumentParser(
        description="bit-identity diff of two takobench reports"
    )
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument(
        "--require-runs",
        type=int,
        default=1,
        metavar="N",
        help="fail unless at least N runs were comparable (default 1; "
        "guards against two empty reports trivially matching)",
    )
    ap.add_argument(
        "--exempt-prefix",
        action="append",
        default=[],
        metavar="PREFIX",
        help="also exempt metrics starting with PREFIX (repeatable); "
        "CI's cross-topology gates pass shard. here",
    )
    ap.add_argument(
        "--series",
        action="store_true",
        help="treat the two inputs as takomon files and require "
        "byte-identity",
    )
    ap.add_argument(
        "--require-nonempty-domains",
        action="store_true",
        help="fail if any candidate run reporting shard.domains > 1 "
        "has a domain with shard.d<i>.events <= 0 (proves the gate "
        "exercised real decomposed execution)",
    )
    args = ap.parse_args()

    if args.series:
        return diff_series(args.baseline, args.candidate)

    with open(args.baseline) as f:
        base = run_metrics(json.load(f), args.exempt_prefix)
    with open(args.candidate) as f:
        cand_report = json.load(f)
    cand = run_metrics(cand_report, args.exempt_prefix)

    shared = sorted(set(base) & set(cand))
    only_base = sorted(set(base) - set(cand))
    only_cand = sorted(set(cand) - set(base))

    failures = []
    compared_runs = 0
    compared_metrics = 0
    for name in shared:
        b, c = base[name], cand[name]
        compared_runs += 1
        for metric in sorted(set(b) | set(c)):
            if metric not in b:
                failures.append(f"{name}: {metric} only in candidate")
                continue
            if metric not in c:
                failures.append(f"{name}: {metric} only in baseline")
                continue
            compared_metrics += 1
            if b[metric] != c[metric]:
                failures.append(
                    f"{name}: {metric} {b[metric]!r} != {c[metric]!r}"
                )

    for name in only_base:
        failures.append(f"run '{name}' missing from candidate")
    for name in only_cand:
        failures.append(f"run '{name}' missing from baseline")

    if compared_runs < args.require_runs:
        failures.append(
            f"only {compared_runs} comparable run(s), "
            f"need {args.require_runs}"
        )

    sharded_runs = 0
    if args.require_nonempty_domains:
        failures.extend(empty_domain_failures(cand_report))
        sharded_runs = sum(
            1
            for run in cand_report.get("runs", [])
            if isinstance(run.get("metrics"), dict)
            and run["metrics"].get("shard.domains", 0) > 1
        )
        if sharded_runs == 0:
            failures.append(
                "no candidate run reports shard.domains > 1; the "
                "non-empty-domain assertion checked nothing"
            )

    if failures:
        print(f"diff_metrics: {len(failures)} difference(s):")
        for f in failures:
            print(f"  {f}")
        return 1

    exempt = ["host.*"] + [p + "*" for p in args.exempt_prefix]
    tail = ""
    if args.require_nonempty_domains:
        tail = (
            f"; all domains non-empty across {sharded_runs} sharded "
            f"run(s)"
        )
    print(
        f"diff_metrics: OK — {compared_metrics} metrics across "
        f"{compared_runs} runs bit-identical ({', '.join(exempt)} "
        f"exempt){tail}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
