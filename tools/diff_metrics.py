#!/usr/bin/env python3
"""Diff the per-run metrics of two takobench suite reports.

Usage: diff_metrics.py BASELINE.json CANDIDATE.json

Compares every run the two reports share, metric by metric, and exits
nonzero if any non-host metric differs *at all* — the simulator's
determinism contract is bit-identity, so there is no tolerance knob.
Host-side throughput gauges (the ``host.*`` counter namespace and the
``host_*`` report headers) are exempt by contract: they measure the
machine, not the model.

This is the CI gate behind ``--takosim-arg=--shards=4``: a sharded
sweep's report must carry exactly the same simulated metrics as the
monolithic baseline.
"""

import argparse
import json
import sys


def is_host_metric(name: str) -> bool:
    # Host counters appear bare in takosim runs ("host.seconds") and
    # label-prefixed in bench runs ("srrip.host.seconds"): match the
    # namespace anywhere in the dotted path.
    return (
        "host" in name.split(".")
        or name.startswith("host_")
        or name == "events_per_sec"
    )


def run_metrics(report: dict) -> dict:
    """name -> {metric -> value} for every completed run."""
    out = {}
    for run in report.get("runs", []):
        metrics = run.get("metrics")
        if not isinstance(metrics, dict):
            continue
        out[run["name"]] = {
            k: v for k, v in metrics.items() if not is_host_metric(k)
        }
    return out


def main() -> int:
    ap = argparse.ArgumentParser(
        description="bit-identity diff of two takobench reports"
    )
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument(
        "--require-runs",
        type=int,
        default=1,
        metavar="N",
        help="fail unless at least N runs were comparable (default 1; "
        "guards against two empty reports trivially matching)",
    )
    args = ap.parse_args()

    with open(args.baseline) as f:
        base = run_metrics(json.load(f))
    with open(args.candidate) as f:
        cand = run_metrics(json.load(f))

    shared = sorted(set(base) & set(cand))
    only_base = sorted(set(base) - set(cand))
    only_cand = sorted(set(cand) - set(base))

    failures = []
    compared_runs = 0
    compared_metrics = 0
    for name in shared:
        b, c = base[name], cand[name]
        compared_runs += 1
        for metric in sorted(set(b) | set(c)):
            if metric not in b:
                failures.append(f"{name}: {metric} only in candidate")
                continue
            if metric not in c:
                failures.append(f"{name}: {metric} only in baseline")
                continue
            compared_metrics += 1
            if b[metric] != c[metric]:
                failures.append(
                    f"{name}: {metric} {b[metric]!r} != {c[metric]!r}"
                )

    for name in only_base:
        failures.append(f"run '{name}' missing from candidate")
    for name in only_cand:
        failures.append(f"run '{name}' missing from baseline")

    if compared_runs < args.require_runs:
        failures.append(
            f"only {compared_runs} comparable run(s), "
            f"need {args.require_runs}"
        )

    if failures:
        print(f"diff_metrics: {len(failures)} difference(s):")
        for f in failures:
            print(f"  {f}")
        return 1

    print(
        f"diff_metrics: OK — {compared_metrics} metrics across "
        f"{compared_runs} runs bit-identical (host.* exempt)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
