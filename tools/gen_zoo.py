#!/usr/bin/env python3
"""Generate the canonical takotrace workload zoo.

The zoo is the fixed set of synthetic production-shaped traces that
specs/zoo.json (and the trace runs in specs/quick.json) replay. Every
trace is a pure function of the parameters pinned below — regenerating
on any machine yields byte-identical files, so goldens stay valid
without checking trace binaries into the repo.

Usage: gen_zoo.py [--gen build/tools/takotracegen] [--out-dir zoo]
"""

import argparse
import pathlib
import subprocess
import sys

# name -> takotracegen arguments. Names are load-bearing: specs refer to
# zoo/<name>.takotrace. Append new entries; never re-seed existing ones
# without re-harvesting every golden pinned against them.
ZOO = [
    ("kv", ["--kind=kv", "--records=100000", "--tenants=16",
            "--seed=7"]),
    ("scan", ["--kind=scan", "--records=100000", "--tenants=12",
              "--seed=11"]),
    ("embed", ["--kind=embed", "--records=100000", "--tenants=8",
               "--seed=13"]),
    ("mix", ["--kind=mix", "--records=100000", "--tenants=24",
             "--seed=17"]),
]


def main() -> int:
    ap = argparse.ArgumentParser(
        description="generate the canonical takotrace workload zoo"
    )
    ap.add_argument(
        "--gen",
        default="build/tools/takotracegen",
        help="takotracegen binary (default: %(default)s)",
    )
    ap.add_argument(
        "--out-dir",
        default="zoo",
        help="directory for the .takotrace files (default: %(default)s)",
    )
    args = ap.parse_args()

    out_dir = pathlib.Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    for name, flags in ZOO:
        out = out_dir / f"{name}.takotrace"
        cmd = [args.gen, *flags, f"--out={out}"]
        proc = subprocess.run(cmd)
        if proc.returncode != 0:
            print(f"gen_zoo: '{' '.join(cmd)}' failed", file=sys.stderr)
            return 1
        print(f"gen_zoo: {out} ({out.stat().st_size} bytes)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
