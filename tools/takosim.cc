/**
 * @file
 * takosim — command-line driver for the tako-sim workloads.
 *
 * Runs any case-study workload on a configurable system and prints the
 * headline metrics (optionally every counter). Useful for parameter
 * exploration without writing a bench binary.
 *
 *   takosim --workload=decompress --variant=tako
 *   takosim --workload=phi --variant=baseline --cores=8 --l2=16384
 *   takosim --workload=hats --variant=ideal --vertices=16384 --stats
 *   takosim --workload=nvm --variant=tako --txbytes=32768
 *   takosim --workload=primeprobe --variant=tako
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <string>

#include "workloads/aos_soa.hh"
#include "workloads/decompress.hh"
#include "workloads/nvm_tx.hh"
#include "workloads/pagerank_pull.hh"
#include "workloads/pagerank_push.hh"
#include "workloads/prime_probe.hh"

using namespace tako;

namespace
{

struct Options
{
    std::string workload = "decompress";
    std::string variant = "tako";
    unsigned cores = 16;
    std::uint64_t l1 = 0, l2 = 0, l3bank = 0; // 0 = default
    std::uint64_t vertices = 1 << 14;
    std::uint64_t txBytes = 16 * 1024;
    std::uint64_t seed = 1;
    bool dumpStats = false;
};

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: takosim [--workload=decompress|phi|hats|nvm|primeprobe|"
        "aossoa]\n"
        "               [--variant=baseline|...|tako|ideal] [--cores=N]\n"
        "               [--l1=BYTES] [--l2=BYTES] [--l3bank=BYTES]\n"
        "               [--vertices=N] [--txbytes=N] [--seed=N] "
        "[--stats]\n");
    std::exit(2);
}

std::uint64_t
parseNum(const std::string &v)
{
    return std::strtoull(v.c_str(), nullptr, 0);
}

Options
parse(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto eq = arg.find('=');
        const std::string key = arg.substr(0, eq);
        const std::string val =
            eq == std::string::npos ? "" : arg.substr(eq + 1);
        if (key == "--workload")
            o.workload = val;
        else if (key == "--variant")
            o.variant = val;
        else if (key == "--cores")
            o.cores = static_cast<unsigned>(parseNum(val));
        else if (key == "--l1")
            o.l1 = parseNum(val);
        else if (key == "--l2")
            o.l2 = parseNum(val);
        else if (key == "--l3bank")
            o.l3bank = parseNum(val);
        else if (key == "--vertices")
            o.vertices = parseNum(val);
        else if (key == "--txbytes")
            o.txBytes = parseNum(val);
        else if (key == "--seed")
            o.seed = parseNum(val);
        else if (key == "--stats")
            o.dumpStats = true;
        else
            usage();
    }
    return o;
}

void
report(const RunMetrics &m)
{
    std::printf("variant      : %s\n", m.label.c_str());
    std::printf("cycles       : %llu\n", (unsigned long long)m.cycles);
    std::printf("energy (pJ)  : %.0f\n", m.energy);
    std::printf("dram accesses: %llu\n",
                (unsigned long long)m.dramAccesses());
    std::printf("core instrs  : %llu\n",
                (unsigned long long)m.coreInstrs);
    std::printf("engine instrs: %llu\n",
                (unsigned long long)m.engineInstrs);
    for (const auto &[k, v] : m.extra)
        std::printf("%-13s: %.3f\n", k.c_str(), v);
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    const Options o = parse(argc, argv);

    SystemConfig sys = SystemConfig::forCores(o.cores);
    sys.seed = o.seed;
    if (o.l1)
        sys.mem.l1Size = o.l1;
    if (o.l2)
        sys.mem.l2Size = o.l2;
    if (o.l3bank)
        sys.mem.l3BankSize = o.l3bank;

    RunMetrics m;
    if (o.workload == "decompress") {
        DecompressConfig cfg;
        cfg.seed = o.seed;
        std::map<std::string, DecompressVariant> v{
            {"baseline", DecompressVariant::Baseline},
            {"precompute", DecompressVariant::Precompute},
            {"ndc", DecompressVariant::Ndc},
            {"tako", DecompressVariant::Tako},
            {"ideal", DecompressVariant::TakoIdeal}};
        if (!v.count(o.variant))
            usage();
        m = runDecompress(v[o.variant], cfg, sys);
    } else if (o.workload == "phi") {
        PagerankPushConfig cfg;
        cfg.graph.numVertices = o.vertices;
        cfg.graph.seed = o.seed;
        cfg.threads = o.cores;
        cfg.regionVertices = 256;
        std::map<std::string, PushVariant> v{
            {"baseline", PushVariant::Baseline},
            {"ub", PushVariant::UpdateBatching},
            {"tako", PushVariant::Phi},
            {"ideal", PushVariant::PhiIdeal}};
        if (!v.count(o.variant))
            usage();
        m = runPagerankPush(v[o.variant], cfg, sys);
    } else if (o.workload == "hats") {
        PagerankPullConfig cfg;
        cfg.graph.numVertices = o.vertices;
        cfg.graph.seed = o.seed;
        std::map<std::string, PullVariant> v{
            {"baseline", PullVariant::VertexOrdered},
            {"sw-bdfs", PullVariant::SoftwareBdfs},
            {"tako", PullVariant::Hats},
            {"ideal", PullVariant::HatsIdeal}};
        if (!v.count(o.variant))
            usage();
        m = runPagerankPull(v[o.variant], cfg, sys);
    } else if (o.workload == "nvm") {
        NvmTxConfig cfg;
        cfg.txBytes = o.txBytes;
        std::map<std::string, NvmVariant> v{
            {"baseline", NvmVariant::Journaling},
            {"tako", NvmVariant::Tako},
            {"ideal", NvmVariant::TakoIdeal}};
        if (!v.count(o.variant))
            usage();
        m = runNvmTx(v[o.variant], cfg, sys);
    } else if (o.workload == "primeprobe") {
        PrimeProbeConfig cfg;
        cfg.seed = o.seed;
        PrimeProbeResult r = runPrimeProbe(o.variant == "tako", cfg, sys);
        std::printf("detected      : %s\n", r.detected ? "yes" : "no");
        std::printf("bits recovered: %u\n", r.trueLeaks);
        m = r.metrics;
    } else if (o.workload == "aossoa") {
        AosSoaConfig cfg;
        cfg.seed = o.seed;
        m = runAosSoa(o.variant != "srrip", cfg, sys);
    } else {
        usage();
    }

    report(m);
    if (o.dumpStats) {
        // Re-run with a dump is unnecessary: metrics carry the headline
        // numbers; for full counters use the workload tests/benches.
        std::printf("\n(extra counters are included above; per-component "
                    "stats live in StatsRegistry dumps of the benches)\n");
    }
    return 0;
}
