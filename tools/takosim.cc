/**
 * @file
 * takosim — command-line driver for the tako-sim workloads.
 *
 * Runs any case-study workload on a configurable system and prints the
 * headline metrics (optionally every counter). Useful for parameter
 * exploration without writing a bench binary.
 *
 *   takosim --workload=decompress --variant=tako
 *   takosim --workload=phi --variant=baseline --cores=8 --l2=16384
 *   takosim --workload=hats --variant=ideal --vertices=16384 --stats
 *   takosim --workload=nvm --variant=tako --txbytes=32768
 *   takosim --workload=primeprobe --variant=tako
 *   takosim --trace=zoo/kv.takotrace --stats
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>

#include "gitrev.hh"
#include "prof/profiler.hh"
#include "sim/shard.hh"
#include "sim/tracesink.hh"
#include "workloads/registry.hh"

using namespace tako;

namespace
{

struct Options
{
    std::string workload = "decompress";
    std::string variant = "tako";
    bool workloadSet = false; ///< --workload given explicitly
    bool variantSet = false;  ///< --variant given explicitly
    std::string trace;        ///< takotrace file to replay
    std::string traceRecord;  ///< re-record the replayed stream here
    unsigned cores = 16;
    std::uint64_t l1 = 0, l2 = 0, l3bank = 0; // 0 = default
    std::uint64_t vertices = 1 << 14;
    std::uint64_t txBytes = 16 * 1024;
    std::uint64_t seed = 1;
    bool dumpStats = false;
    std::string statsJson;
    std::string profile;
    bool profileSet = false;
    std::string folded;
    std::string traceOut;
    std::string traceMask = "all";
    Tick sampleEvery = 0;
    std::vector<std::string> samplePatterns;
    std::string monOut;   ///< takomon-v1 binary series output
    Tick progressEvery = 0; ///< heartbeat cadence (0 = off)
    std::string logJson;  ///< structured JSONL run log
    /** SystemConfig::shards: quantum-barrier sharded execution (and the
     *  ensemble lane count under --replicate). */
    unsigned shards = 1;
    /** Run N seed-offset replicas (seed, seed+1, ...) across
     *  min(shards, N) lanes; report replica 0 plus ens.* aggregates. */
    unsigned replicate = 1;
};

[[noreturn]] void
usage(int code)
{
    std::fprintf(
        code ? stderr : stdout,
        "usage: takosim [--workload=decompress|phi|hats|nvm|primeprobe|"
        "aossoa]\n"
        "               [--variant=baseline|...|tako|ideal] [--cores=N]\n"
        "               [--trace=FILE] [--trace-record=FILE]\n"
        "               [--l1=BYTES] [--l2=BYTES] [--l3bank=BYTES]\n"
        "               [--vertices=N] [--txbytes=N] [--seed=N]\n"
        "               [--stats] [--stats-json=FILE] [--profile=FILE]\n"
        "               [--folded=FILE]\n"
        "               [--trace-out=FILE] [--trace-mask=CAT[,CAT...]]\n"
        "               [--mon-every=N] [--mon-sample=PAT[,PAT...]]\n"
        "               [--mon-out=FILE] [--progress[=N]]\n"
        "               [--log-json=FILE]\n"
        "               [--shards=N] [--replicate=N]\n"
        "\n"
        "  --trace=FILE       replay a takotrace-v1 binary memory trace\n"
        "                     through the full memory system (selects\n"
        "                     the trace frontend; incompatible with an\n"
        "                     explicit --workload/--variant)\n"
        "  --trace-record=FILE\n"
        "                     while replaying, re-record the normalized\n"
        "                     stream as a fresh takotrace file\n"
        "                     (requires --trace)\n"
        "  --stats            dump every counter and histogram as text\n"
        "  --stats-json=FILE  write counters, histograms, and the sampled\n"
        "                     time series as JSON ('-' for stdout)\n"
        "  --profile=FILE     enable takoprof (per-Morph callback cycles,\n"
        "                     miss classification, NoC link heat) and\n"
        "                     write takoprof-v1 JSON ('-' for stdout;\n"
        "                     empty value: collect, export only via\n"
        "                     --stats-json prof.* counters)\n"
        "  --folded=FILE      write folded-stack callback profile lines\n"
        "                     (flamegraph.pl input; implies profiling)\n"
        "  --trace-out=FILE   write a Chrome trace-event JSON file\n"
        "                     (loadable in Perfetto / chrome://tracing)\n"
        "  --trace-mask=SPEC  span categories for --trace-out; same names\n"
        "                     as TAKO_TRACE (default: all)\n"
        "  --mon-every=N      sample counters/histograms every N cycles\n"
        "                     into the time series exported by\n"
        "                     --stats-json and --mon-out\n"
        "  --mon-sample=PATS  comma-separated stat name patterns to\n"
        "                     sample ('*' wildcards; default: all\n"
        "                     non-host.* stats)\n"
        "  --mon-out=FILE     write the sampled series as a takomon-v1\n"
        "                     binary file (requires --mon-every;\n"
        "                     bit-identical across -jN and --shards=N)\n"
        "  --progress[=N]     heartbeat every N cycles (default 1000000):\n"
        "                     sim ticks done, events/s, ETA when the\n"
        "                     frontend knows the work fraction (stderr,\n"
        "                     plus the --log-json log when enabled)\n"
        "  --log-json=FILE    mirror warnings/errors/progress as\n"
        "                     severity-tagged JSON lines (one object\n"
        "                     per line; tail-able during long runs)\n"
        "  --sample-every=N   deprecated alias of --mon-every\n"
        "  --sample=PATS      deprecated alias of --mon-sample\n"
        "  --shards=N         run on the sharded conservative executor\n"
        "                     (quantum barriers from the mesh's minimum\n"
        "                     cross-shard latency); every non-host.*\n"
        "                     stat is bit-identical to --shards=1\n"
        "  --replicate=N      run N replicas at seeds seed..seed+N-1\n"
        "                     across min(shards, N) host lanes; output\n"
        "                     is replica 0 plus ens.* aggregates and is\n"
        "                     identical at any lane count (incompatible\n"
        "                     with --profile/--folded/--trace-out/\n"
        "                     --sample-every/--sample)\n"
        "  --list-workloads   print workloads and their variants\n"
        "  --version          print the embedded git revision\n"
        "  --help             this text\n");
    std::exit(code);
}

[[noreturn]] void
listWorkloads(int code = 0)
{
    std::FILE *out = code ? stderr : stdout;
    for (const WorkloadEntry &e : workloadRegistry()) {
        if (e.variants.empty())
            std::fprintf(out, "%-12s (no variants; give the file via "
                              "--trace=FILE)\n",
                         e.name.c_str());
        else
            std::fprintf(out, "%-12s variants: %s\n", e.name.c_str(),
                         e.variantHelp().c_str());
    }
    std::exit(code);
}

std::uint64_t
parseNum(const std::string &v)
{
    return std::strtoull(v.c_str(), nullptr, 0);
}

Options
parse(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto eq = arg.find('=');
        const std::string key = arg.substr(0, eq);
        const std::string val =
            eq == std::string::npos ? "" : arg.substr(eq + 1);
        if (key == "--help" || key == "-h")
            usage(0);
        else if (key == "--version") {
            std::printf("takosim %s\n", TAKO_GIT_REV);
            std::exit(0);
        } else if (key == "--list-workloads")
            listWorkloads();
        else if (key == "--workload") {
            o.workload = val;
            o.workloadSet = true;
        } else if (key == "--variant") {
            o.variant = val;
            o.variantSet = true;
        } else if (key == "--trace")
            o.trace = val;
        else if (key == "--trace-record")
            o.traceRecord = val;
        else if (key == "--cores")
            o.cores = static_cast<unsigned>(parseNum(val));
        else if (key == "--l1")
            o.l1 = parseNum(val);
        else if (key == "--l2")
            o.l2 = parseNum(val);
        else if (key == "--l3bank")
            o.l3bank = parseNum(val);
        else if (key == "--vertices")
            o.vertices = parseNum(val);
        else if (key == "--txbytes")
            o.txBytes = parseNum(val);
        else if (key == "--seed")
            o.seed = parseNum(val);
        else if (key == "--stats")
            o.dumpStats = true;
        else if (key == "--stats-json")
            o.statsJson = val;
        else if (key == "--profile") {
            o.profile = val;
            o.profileSet = true;
        } else if (key == "--folded")
            o.folded = val;
        else if (key == "--trace-out")
            o.traceOut = val;
        else if (key == "--trace-mask")
            o.traceMask = val;
        else if (key == "--sample-every" || key == "--mon-every")
            o.sampleEvery = parseNum(val);
        else if (key == "--mon-out")
            o.monOut = val;
        else if (key == "--progress")
            o.progressEvery = val.empty() ? 1000000 : parseNum(val);
        else if (key == "--log-json")
            o.logJson = val;
        else if (key == "--shards") {
            o.shards = static_cast<unsigned>(parseNum(val));
            if (o.shards == 0)
                o.shards = 1;
        } else if (key == "--replicate") {
            o.replicate = static_cast<unsigned>(parseNum(val));
            if (o.replicate == 0)
                o.replicate = 1;
        } else if (key == "--sample" || key == "--mon-sample") {
            std::size_t pos = 0;
            while (pos <= val.size()) {
                const std::size_t comma = val.find(',', pos);
                const std::string pat = val.substr(
                    pos, comma == std::string::npos ? std::string::npos
                                                    : comma - pos);
                if (!pat.empty())
                    o.samplePatterns.push_back(pat);
                if (comma == std::string::npos)
                    break;
                pos = comma + 1;
            }
        } else {
            // A misspelled flag must fail loudly: batch drivers
            // (takobench) rely on bad argv being an error, not a
            // silently-default run.
            std::fprintf(stderr,
                         "takosim: unknown option '%s' (valid options "
                         "listed below)\n\n",
                         arg.c_str());
            usage(2);
        }
    }

    // Flag hygiene: the trace file *is* the workload, so combining it
    // with an explicit --workload/--variant is a contradiction, not a
    // precedence puzzle.
    if (!o.trace.empty() && (o.workloadSet || o.variantSet)) {
        std::fprintf(stderr,
                     "takosim: --trace=FILE selects the trace-replay "
                     "frontend and cannot be combined with an explicit "
                     "--workload/--variant\n");
        std::exit(2);
    }
    if (!o.traceRecord.empty() && o.trace.empty()) {
        std::fprintf(stderr,
                     "takosim: --trace-record=FILE requires --trace=FILE "
                     "(it re-records the replayed stream)\n");
        std::exit(2);
    }
    if (!o.trace.empty())
        o.workload = "trace";
    return o;
}

/**
 * Run one replica of the selected workload at @p seed on a copy of
 * @p sys. Builds its own System and touches no process-global state,
 * so ensemble lanes may call it concurrently (main() forbids the
 * global-sink features — tracing, profiling, sampling — whenever more
 * than one replica runs).
 */
RunMetrics
runOne(const Options &o, SystemConfig sys, std::uint64_t seed)
{
    sys.seed = seed;
    const WorkloadEntry *w = findWorkload(o.workload);
    if (!w) {
        std::fprintf(stderr, "takosim: unknown workload '%s'\n\n",
                     o.workload.c_str());
        listWorkloads(2);
    }
    if (!w->variants.empty() &&
        std::find(w->variants.begin(), w->variants.end(), o.variant) ==
            w->variants.end()) {
        std::fprintf(stderr,
                     "takosim: unknown variant '%s' for workload '%s' "
                     "(valid: %s)\n",
                     o.variant.c_str(), o.workload.c_str(),
                     w->variantHelp().c_str());
        std::exit(2);
    }

    WorkloadRequest req;
    req.variant = o.variant;
    req.seed = seed;
    req.cores = o.cores;
    req.vertices = o.vertices;
    req.txBytes = o.txBytes;
    req.tracePath = o.trace;
    req.traceRecordPath = o.traceRecord;
    std::string err;
    RunMetrics m = w->run(req, sys, err);
    if (!err.empty()) {
        std::fprintf(stderr, "takosim: %s\n", err.c_str());
        std::exit(1);
    }
    return m;
}

void
report(const RunMetrics &m, std::FILE *out)
{
    std::fprintf(out, "variant      : %s\n", m.label.c_str());
    std::fprintf(out, "cycles       : %llu\n",
                 (unsigned long long)m.cycles);
    std::fprintf(out, "energy (pJ)  : %.0f\n", m.energy);
    std::fprintf(out, "dram accesses: %llu\n",
                 (unsigned long long)m.dramAccesses());
    std::fprintf(out, "core instrs  : %llu\n",
                 (unsigned long long)m.coreInstrs);
    std::fprintf(out, "engine instrs: %llu\n",
                 (unsigned long long)m.engineInstrs);
    for (const auto &[k, v] : m.extra)
        std::fprintf(out, "%-13s: %.3f\n", k.c_str(), v);
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    const Options o = parse(argc, argv);

    SystemConfig sys = SystemConfig::forCores(o.cores);
    sys.seed = o.seed;
    if (o.l1)
        sys.mem.l1Size = o.l1;
    if (o.l2)
        sys.mem.l2Size = o.l2;
    if (o.l3bank)
        sys.mem.l3BankSize = o.l3bank;
    sys.sampleInterval = o.sampleEvery;
    sys.samplePatterns = o.samplePatterns;
    sys.monPath = o.monOut;
    sys.progressEvery = o.progressEvery;
    if (!o.monOut.empty() && o.sampleEvery == 0) {
        std::fprintf(stderr,
                     "takosim: --mon-out=FILE requires --mon-every=N "
                     "(the file holds the sampled series)\n");
        return 2;
    }
    if (!o.logJson.empty()) {
        if (!setJsonLog(o.logJson)) {
            std::fprintf(stderr, "takosim: cannot open '%s'\n",
                         o.logJson.c_str());
            return 1;
        }
        jsonLogEvent("run",
                     {{"tool", "takosim"},
                      {"workload", o.workload},
                      {"variant", o.variant},
                      {"git_rev", TAKO_GIT_REV}},
                     {{"cores", static_cast<double>(o.cores)},
                      {"seed", static_cast<double>(o.seed)},
                      {"shards", static_cast<double>(o.shards)}});
        if (o.progressEvery > 0) {
            // Beats go to the human stderr line AND the structured log.
            sys.onBeat = [](const mon::ProgressBeat &b) {
                mon::printProgressBeat(b);
                jsonLogEvent(
                    "progress", {},
                    {{"tick", static_cast<double>(b.tick)},
                     {"events", static_cast<double>(b.events)},
                     {"host_seconds", b.hostSeconds},
                     {"events_per_sec", b.eventsPerSec},
                     {"fraction_done", b.fractionDone}});
            };
        }
    }
    // takosim exists to inspect runs; always collect the mem.breakdown.*
    // latency attribution (benches leave it off to keep the hot path
    // lean — see MemParams::latBreakdown).
    sys.mem.latBreakdown = true;
    sys.profile = o.profileSet || !o.folded.empty();
    sys.shards = o.shards;
    if (o.replicate > 1 &&
        (sys.profile || !o.traceOut.empty() || o.sampleEvery > 0 ||
         !o.samplePatterns.empty() || !o.traceRecord.empty() ||
         !o.monOut.empty() || o.progressEvery > 0)) {
        std::fprintf(stderr,
                     "takosim: --replicate=%u is incompatible with "
                     "--profile/--folded/--trace-out/--mon-every/"
                     "--mon-sample/--mon-out/--progress/--trace-record "
                     "(they write through process-global or "
                     "single-file sinks; replicas run concurrently)\n",
                     o.replicate);
        return 2;
    }

    // Open output files up front so a bad path fails before the run,
    // not after minutes of simulation.
    std::ofstream statsJsonFile;
    if (!o.statsJson.empty() && o.statsJson != "-") {
        statsJsonFile.open(o.statsJson);
        if (!statsJsonFile) {
            std::fprintf(stderr, "takosim: cannot open '%s'\n",
                         o.statsJson.c_str());
            return 1;
        }
    }
    std::ofstream profileFile;
    if (!o.profile.empty() && o.profile != "-") {
        profileFile.open(o.profile);
        if (!profileFile) {
            std::fprintf(stderr, "takosim: cannot open '%s'\n",
                         o.profile.c_str());
            return 1;
        }
    }
    std::ofstream foldedFile;
    if (!o.folded.empty() && o.folded != "-") {
        foldedFile.open(o.folded);
        if (!foldedFile) {
            std::fprintf(stderr, "takosim: cannot open '%s'\n",
                         o.folded.c_str());
            return 1;
        }
    }

    // The span sink must be live before the workload constructs and runs
    // its System; it is closed (terminating the JSON array) after the run.
    std::ofstream traceFile;
    std::unique_ptr<trace::ChromeTraceWriter> traceWriter;
    if (!o.traceOut.empty()) {
        traceFile.open(o.traceOut);
        if (!traceFile) {
            std::fprintf(stderr, "takosim: cannot open '%s'\n",
                         o.traceOut.c_str());
            return 1;
        }
        traceWriter =
            std::make_unique<trace::ChromeTraceWriter>(traceFile);
        trace::setSpanSink(traceWriter.get(),
                           trace::parseSpec(o.traceMask.c_str()));
    }

    RunMetrics m;
    if (o.replicate == 1) {
        m = runOne(o, sys, o.seed);
        if (o.workload == "primeprobe") {
            std::printf("detected      : %s\n",
                        m.extra["primeprobe.detected"] != 0 ? "yes"
                                                            : "no");
            std::printf("bits recovered: %.0f\n",
                        m.extra["primeprobe.bits_recovered"]);
        }
    } else {
        // Seed-offset ensemble across host lanes. Each replica runs
        // monolithic (its own System, shards=1) — --shards spends the
        // host-parallelism budget on lanes here, and the job -> lane
        // map is index-pure, so the merged output is identical at any
        // lane count.
        SystemConfig repSys = sys;
        repSys.shards = 1;
        std::vector<RunMetrics> reps(o.replicate);
        std::vector<std::function<void()>> jobs;
        for (unsigned i = 0; i < o.replicate; ++i) {
            jobs.push_back([&o, &repSys, &reps, i] {
                reps[i] = runOne(o, repSys, o.seed + i);
            });
        }
        runLanes(std::min(o.shards, o.replicate), jobs);

        // Replica 0 is the reported run; fold the rest into ens.*
        // aggregates in replica order (determinism: pure reduction
        // over per-replica deterministic values).
        m = reps[0];
        double cycTotal = 0, cycMax = 0, energyTotal = 0, dramTotal = 0;
        for (const RunMetrics &r : reps) {
            cycTotal += static_cast<double>(r.cycles);
            cycMax = std::max(cycMax, static_cast<double>(r.cycles));
            energyTotal += r.energy;
            dramTotal += static_cast<double>(r.dramAccesses());
        }
        StatsRegistry &reg = *m.stats;
        reg.counter("ens.replicas", "runs", "replicas in this ensemble")
            .set(o.replicate);
        reg.counter("ens.cycles.total", "cycles",
                    "summed simulated cycles across replicas")
            .set(cycTotal);
        reg.counter("ens.cycles.max", "cycles",
                    "slowest replica's simulated cycles")
            .set(cycMax);
        reg.counter("ens.energy.total", "pJ",
                    "summed simulated energy across replicas")
            .set(energyTotal);
        reg.counter("ens.dram.total", "accesses",
                    "summed DRAM accesses across replicas")
            .set(dramTotal);
    }

    if (traceWriter) {
        trace::setSpanSink(nullptr);
        traceWriter->close();
        std::fprintf(stderr, "takosim: wrote %llu trace events to %s\n",
                     (unsigned long long)traceWriter->eventsWritten(),
                     o.traceOut.c_str());
    }

    // Keep stdout machine-readable when any JSON/folded output goes
    // there: the human report moves to stderr.
    const bool stdoutTaken = o.statsJson == "-" || o.profile == "-" ||
                             o.folded == "-";
    report(m, stdoutTaken ? stderr : stdout);
    if (o.dumpStats && m.stats) {
        std::ostream &os = stdoutTaken ? std::cerr : std::cout;
        os << "\n";
        m.stats->dump(os);
    }
    if (!o.statsJson.empty() && m.stats) {
        const std::vector<std::pair<std::string, std::string>> header{
            {"git_rev", TAKO_GIT_REV}};
        // Host throughput as first-class top-level fields so perf
        // tooling does not have to dig through the counters object.
        const std::vector<std::pair<std::string, double>> numericHeader{
            {"host_seconds", m.stats->get("host.seconds")},
            {"sim_events", m.stats->get("host.sim_events")},
            {"events_per_sec", m.stats->get("host.events_per_sec")}};
        if (o.statsJson == "-")
            m.stats->dumpJson(std::cout, header, numericHeader);
        else
            m.stats->dumpJson(statsJsonFile, header, numericHeader);
    }
    if (m.prof) {
        const std::vector<std::pair<std::string, std::string>> header{
            {"git_rev", TAKO_GIT_REV},
            {"workload", o.workload},
            {"variant", o.variant}};
        if (!o.profile.empty()) {
            m.prof->writeJson(o.profile == "-" ? std::cout : profileFile,
                              header);
        }
        if (!o.folded.empty())
            m.prof->writeFolded(o.folded == "-" ? std::cout : foldedFile);
    }
    if (jsonLogEnabled()) {
        jsonLogEvent(
            "done", {},
            {{"cycles", static_cast<double>(m.cycles)},
             {"energy", m.energy},
             {"host_seconds",
              m.stats ? m.stats->get("host.seconds") : 0.0}});
        setJsonLog("");
    }
    return 0;
}
