#!/usr/bin/env python3
"""Render bench results as quick matplotlib charts (optional).

Usage: tools/plot_results.py bench_output.txt [outdir]
       tools/plot_results.py BENCH_quick.json [outdir]
       tools/plot_results.py prof.json [outdir]
       tools/plot_results.py BENCH_perf_a.json BENCH_perf_b.json... [outdir]

Accepts the legacy text capture of the bench binaries' stdout (the
"=== Fig. N ===" tables), a takobench suite report (BENCH_<suite>.json,
schema "takobench-v1"), a takoprof profile (takosim --profile, schema
"takoprof-v1"), or one or more perf-smoke artifacts (tools/perf_smoke.py,
schema "takoperf-v1"); the format is sniffed from the file contents.
Bench inputs get one PNG per figure/run with the variants' leading
metric; takoprof inputs get a NoC link-utilization heatmap and a
per-engine occupancy chart; takoperf inputs get an events/sec trend
across the given files (in argument order, labelled by git rev — pass
the artifacts oldest-first). Requires matplotlib; degrades to printing
the parsed tables without it.
"""
import json
import re
import sys


def parse_text(path):
    sections = {}
    current, rows = None, []
    for line in open(path):
        m = re.match(r"=== (.*) ===", line)
        if m:
            if current:
                sections[current] = rows
            current, rows = m.group(1), []
        elif current and re.match(r"\S", line) and not line.startswith(
                ("paper:", "here :", "variant", "txBytes", "entries",
                 "engine ", "peLatency", "core ", "config")):
            rows.append(line.split())
    if current:
        sections[current] = rows
    return sections


def parse_suite(doc):
    """takobench-v1 report -> {section: [[label, value], ...]}.

    Each run's recorded rows become one section (grouped bars of the
    row's first numeric column, preferring speedup/cycles when present).
    Runs without rows (takosim runs) chart their raw metrics instead.
    """
    preferred = ("speedup", "cycles", "total", "mean")
    sections = {}
    for run in doc.get("runs", []):
        rows = run.get("rows") or []
        out = []
        for row in rows:
            numeric = {k: v for k, v in row.items()
                       if isinstance(v, (int, float))}
            if not numeric:
                continue
            key = next((p for p in preferred if p in numeric),
                       sorted(numeric)[0])
            label = row.get("variant") or row.get("label") or "?"
            out.append([str(label), str(numeric[key])])
        if not out:
            metrics = run.get("metrics") or {}
            out = [[k, str(v)] for k, v in sorted(metrics.items())
                   if isinstance(v, (int, float))]
        if out:
            status = "" if run.get("pass", True) else " [FAIL]"
            sections[run.get("name", "?") + status] = out
    return sections


def parse(path):
    text = open(path).read()
    if text.lstrip().startswith("{"):
        doc = json.loads(text)
        if doc.get("schema", "").startswith("takobench"):
            return parse_suite(doc)
        if doc.get("schema", "").startswith(("takoprof", "takoperf")):
            return doc
        raise SystemExit(f"{path}: JSON but not a takobench report, "
                         "takoprof profile, or takoperf artifact "
                         "(unrecognized \"schema\")")
    return parse_text(path)


def plot_takoprof(doc, outdir):
    """NoC link heatmap + per-engine occupancy from a takoprof-v1 doc."""
    noc = doc.get("noc", {})
    tile_busy = noc.get("tile_busy") or []
    engines = doc.get("engines") or []
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        for row in tile_busy:
            print(" ".join(f"{v:>10}" for v in row))
        for e in engines:
            print(f"tile {e.get('tile')}: peak occupancy "
                  f"{e.get('peak_occupancy')}")
        print("matplotlib not available; printed summaries only")
        return

    wrote = 0
    if tile_busy:
        fig, ax = plt.subplots(figsize=(5, 4))
        im = ax.imshow(tile_busy, cmap="inferno", origin="upper")
        ax.set_title("NoC outgoing-link busy cycles per tile")
        ax.set_xlabel("mesh x")
        ax.set_ylabel("mesh y")
        fig.colorbar(im, ax=ax, label="flit-cycles")
        plt.tight_layout()
        fig.savefig(f"{outdir}/takoprof_noc_heatmap.png", dpi=120)
        plt.close(fig)
        wrote += 1
    if engines:
        tiles = [e.get("tile", i) for i, e in enumerate(engines)]
        peaks = [e.get("peak_occupancy", 0) for e in engines]
        fig, ax = plt.subplots(figsize=(6, 3))
        ax.bar([str(t) for t in tiles], peaks)
        ax.set_title("Engine peak occupancy (concurrent callbacks)")
        ax.set_xlabel("tile")
        ax.set_ylabel("callbacks")
        plt.tight_layout()
        fig.savefig(f"{outdir}/takoprof_engine_occupancy.png", dpi=120)
        plt.close(fig)
        wrote += 1
    print(f"wrote {wrote} takoprof charts to {outdir}")


def plot_takoperf(docs, outdir):
    """Events/sec trend across one or more takoperf-v1 artifacts.

    Two series on one chart: end-to-end takosim events/sec (the number
    that bounds figure-bench scale) and the raw event-queue
    schedule/fire microbenchmark, each point one artifact in argument
    order labelled by its git rev.
    """
    revs = [str(d.get("git_rev", "?"))[:12] for d in docs]
    sim_eps = [d.get("takosim", {}).get("events_per_sec", 0) / 1e6
               for d in docs]
    ueq = [d.get("benchmarks", {}).get("BM_EventQueueSchedule", {})
            .get("items_per_second", 0) / 1e6 for d in docs]
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print(f"{'rev':>12} {'sim Mev/s':>10} {'uqueue M/s':>10}")
        for r, s, u in zip(revs, sim_eps, ueq):
            print(f"{r:>12} {s:>10.2f} {u:>10.1f}")
        print("matplotlib not available; printed summaries only")
        return

    fig, ax = plt.subplots(figsize=(max(6, len(revs) * 0.9), 3.5))
    ax.plot(revs, sim_eps, marker="o", label="takosim (end-to-end)")
    ax.set_ylabel("M events/s (takosim)")
    ax.set_ylim(bottom=0)
    ax2 = ax.twinx()
    ax2.plot(revs, ueq, marker="s", color="tab:orange",
             label="event queue (micro)")
    ax2.set_ylabel("M events/s (microbench)")
    ax2.set_ylim(bottom=0)
    ax.set_title("Simulation-kernel throughput trend")
    lines = ax.get_lines() + ax2.get_lines()
    ax.legend(lines, [ln.get_label() for ln in lines], loc="lower right")
    plt.xticks(rotation=30, ha="right")
    plt.tight_layout()
    fig.savefig(f"{outdir}/takoperf_trend.png", dpi=120)
    plt.close(fig)
    print(f"wrote takoperf trend ({len(revs)} points) to "
          f"{outdir}/takoperf_trend.png")


def main():
    args = sys.argv[1:] or ["bench_output.txt"]
    outdir = "."
    if len(args) > 1 and not args[-1].endswith((".json", ".txt")):
        outdir = args.pop()
    parsed = [parse(p) for p in args]
    if all(isinstance(d, dict) and
           str(d.get("schema", "")).startswith("takoperf")
           for d in parsed):
        plot_takoperf(parsed, outdir)
        return
    if len(parsed) > 1:
        raise SystemExit("multiple input files are only supported for "
                         "takoperf-v1 artifacts")
    sections = parsed[0]
    if isinstance(sections, dict) and \
            str(sections.get("schema", "")).startswith("takoprof"):
        plot_takoprof(sections, outdir)
        return
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        for name, rows in sections.items():
            print(f"{name}: {len(rows)} rows")
        print("matplotlib not available; printed summaries only")
        return
    for i, (name, rows) in enumerate(sections.items()):
        labels = [r[0] for r in rows if len(r) >= 2]
        try:
            values = [float(r[1]) for r in rows if len(r) >= 2]
        except ValueError:
            continue
        if not values:
            continue
        fig, ax = plt.subplots(figsize=(6, 3))
        ax.bar(labels, values)
        ax.set_title(name)
        ax.set_ylabel("cycles / value")
        plt.xticks(rotation=30, ha="right")
        plt.tight_layout()
        safe = re.sub(r"\W+", "_", name)[:50]
        fig.savefig(f"{outdir}/{i:02d}_{safe}.png", dpi=120)
        plt.close(fig)
    print(f"wrote {len(sections)} charts to {outdir}")


if __name__ == "__main__":
    main()
