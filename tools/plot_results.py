#!/usr/bin/env python3
"""Render bench results as quick matplotlib charts (optional).

Usage: tools/plot_results.py bench_output.txt [outdir]
       tools/plot_results.py BENCH_quick.json [outdir]
       tools/plot_results.py prof.json [outdir]

Accepts the legacy text capture of the bench binaries' stdout (the
"=== Fig. N ===" tables), a takobench suite report (BENCH_<suite>.json,
schema "takobench-v1"), or a takoprof profile (takosim --profile,
schema "takoprof-v1"); the format is sniffed from the file contents.
Bench inputs get one PNG per figure/run with the variants' leading
metric; takoprof inputs get a NoC link-utilization heatmap and a
per-engine occupancy chart. Requires matplotlib; degrades to printing
the parsed tables without it.
"""
import json
import re
import sys


def parse_text(path):
    sections = {}
    current, rows = None, []
    for line in open(path):
        m = re.match(r"=== (.*) ===", line)
        if m:
            if current:
                sections[current] = rows
            current, rows = m.group(1), []
        elif current and re.match(r"\S", line) and not line.startswith(
                ("paper:", "here :", "variant", "txBytes", "entries",
                 "engine ", "peLatency", "core ", "config")):
            rows.append(line.split())
    if current:
        sections[current] = rows
    return sections


def parse_suite(doc):
    """takobench-v1 report -> {section: [[label, value], ...]}.

    Each run's recorded rows become one section (grouped bars of the
    row's first numeric column, preferring speedup/cycles when present).
    Runs without rows (takosim runs) chart their raw metrics instead.
    """
    preferred = ("speedup", "cycles", "total", "mean")
    sections = {}
    for run in doc.get("runs", []):
        rows = run.get("rows") or []
        out = []
        for row in rows:
            numeric = {k: v for k, v in row.items()
                       if isinstance(v, (int, float))}
            if not numeric:
                continue
            key = next((p for p in preferred if p in numeric),
                       sorted(numeric)[0])
            label = row.get("variant") or row.get("label") or "?"
            out.append([str(label), str(numeric[key])])
        if not out:
            metrics = run.get("metrics") or {}
            out = [[k, str(v)] for k, v in sorted(metrics.items())
                   if isinstance(v, (int, float))]
        if out:
            status = "" if run.get("pass", True) else " [FAIL]"
            sections[run.get("name", "?") + status] = out
    return sections


def parse(path):
    text = open(path).read()
    if text.lstrip().startswith("{"):
        doc = json.loads(text)
        if doc.get("schema", "").startswith("takobench"):
            return parse_suite(doc)
        if doc.get("schema", "").startswith("takoprof"):
            return doc
        raise SystemExit(f"{path}: JSON but neither a takobench report "
                         "nor a takoprof profile (unrecognized "
                         "\"schema\")")
    return parse_text(path)


def plot_takoprof(doc, outdir):
    """NoC link heatmap + per-engine occupancy from a takoprof-v1 doc."""
    noc = doc.get("noc", {})
    tile_busy = noc.get("tile_busy") or []
    engines = doc.get("engines") or []
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        for row in tile_busy:
            print(" ".join(f"{v:>10}" for v in row))
        for e in engines:
            print(f"tile {e.get('tile')}: peak occupancy "
                  f"{e.get('peak_occupancy')}")
        print("matplotlib not available; printed summaries only")
        return

    wrote = 0
    if tile_busy:
        fig, ax = plt.subplots(figsize=(5, 4))
        im = ax.imshow(tile_busy, cmap="inferno", origin="upper")
        ax.set_title("NoC outgoing-link busy cycles per tile")
        ax.set_xlabel("mesh x")
        ax.set_ylabel("mesh y")
        fig.colorbar(im, ax=ax, label="flit-cycles")
        plt.tight_layout()
        fig.savefig(f"{outdir}/takoprof_noc_heatmap.png", dpi=120)
        plt.close(fig)
        wrote += 1
    if engines:
        tiles = [e.get("tile", i) for i, e in enumerate(engines)]
        peaks = [e.get("peak_occupancy", 0) for e in engines]
        fig, ax = plt.subplots(figsize=(6, 3))
        ax.bar([str(t) for t in tiles], peaks)
        ax.set_title("Engine peak occupancy (concurrent callbacks)")
        ax.set_xlabel("tile")
        ax.set_ylabel("callbacks")
        plt.tight_layout()
        fig.savefig(f"{outdir}/takoprof_engine_occupancy.png", dpi=120)
        plt.close(fig)
        wrote += 1
    print(f"wrote {wrote} takoprof charts to {outdir}")


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "bench_output.txt"
    outdir = sys.argv[2] if len(sys.argv) > 2 else "."
    sections = parse(path)
    if isinstance(sections, dict) and \
            str(sections.get("schema", "")).startswith("takoprof"):
        plot_takoprof(sections, outdir)
        return
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        for name, rows in sections.items():
            print(f"{name}: {len(rows)} rows")
        print("matplotlib not available; printed summaries only")
        return
    for i, (name, rows) in enumerate(sections.items()):
        labels = [r[0] for r in rows if len(r) >= 2]
        try:
            values = [float(r[1]) for r in rows if len(r) >= 2]
        except ValueError:
            continue
        if not values:
            continue
        fig, ax = plt.subplots(figsize=(6, 3))
        ax.bar(labels, values)
        ax.set_title(name)
        ax.set_ylabel("cycles / value")
        plt.xticks(rotation=30, ha="right")
        plt.tight_layout()
        safe = re.sub(r"\W+", "_", name)[:50]
        fig.savefig(f"{outdir}/{i:02d}_{safe}.png", dpi=120)
        plt.close(fig)
    print(f"wrote {len(sections)} charts to {outdir}")


if __name__ == "__main__":
    main()
