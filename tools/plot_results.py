#!/usr/bin/env python3
"""Render bench_output.txt tables as quick matplotlib charts (optional).

Usage: tools/plot_results.py bench_output.txt [outdir]

Parses the "=== Fig. N ===" sections produced by the bench binaries and
writes one PNG per figure with the variants' speedups. Requires
matplotlib; degrades to printing the parsed tables without it.
"""
import re
import sys


def parse(path):
    sections = {}
    current, rows = None, []
    for line in open(path):
        m = re.match(r"=== (.*) ===", line)
        if m:
            if current:
                sections[current] = rows
            current, rows = m.group(1), []
        elif current and re.match(r"\S", line) and not line.startswith(
                ("paper:", "here :", "variant", "txBytes", "entries",
                 "engine ", "peLatency", "core ", "config")):
            rows.append(line.split())
    if current:
        sections[current] = rows
    return sections


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "bench_output.txt"
    outdir = sys.argv[2] if len(sys.argv) > 2 else "."
    sections = parse(path)
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        for name, rows in sections.items():
            print(f"{name}: {len(rows)} rows")
        print("matplotlib not available; printed summaries only")
        return
    for i, (name, rows) in enumerate(sections.items()):
        labels = [r[0] for r in rows if len(r) >= 2]
        try:
            values = [float(r[1]) for r in rows if len(r) >= 2]
        except ValueError:
            continue
        if not values:
            continue
        fig, ax = plt.subplots(figsize=(6, 3))
        ax.bar(labels, values)
        ax.set_title(name)
        ax.set_ylabel("cycles / value")
        plt.xticks(rotation=30, ha="right")
        plt.tight_layout()
        safe = re.sub(r"\W+", "_", name)[:50]
        fig.savefig(f"{outdir}/{i:02d}_{safe}.png", dpi=120)
        plt.close(fig)
    print(f"wrote {len(sections)} charts to {outdir}")


if __name__ == "__main__":
    main()
