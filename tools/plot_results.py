#!/usr/bin/env python3
"""Render bench results as quick matplotlib charts (optional).

Usage: tools/plot_results.py bench_output.txt [outdir]
       tools/plot_results.py BENCH_quick.json [outdir]
       tools/plot_results.py prof.json [outdir]
       tools/plot_results.py run.takomon [outdir]
       tools/plot_results.py BENCH_perf_a.json BENCH_perf_b.json... [outdir]

Accepts the legacy text capture of the bench binaries' stdout (the
"=== Fig. N ===" tables), a takobench suite report (BENCH_<suite>.json,
schema "takobench-v1"), a takoprof profile (takosim --profile, schema
"takoprof-v1"), a takomon telemetry file (takosim --mon-out, format
takomon-v1), or one or more perf-smoke artifacts (tools/perf_smoke.py,
schema "takoperf-v1"); the format is sniffed from the file contents.
Bench inputs get one PNG per figure/run with the variants' leading
metric, plus a shard load-factor heatmap when any run carries the
shard.* observability counters; takoprof inputs get a NoC
link-utilization heatmap and a per-engine occupancy chart; takomon
inputs get a time-series chart of the most active counters; takoperf
inputs get an events/sec trend across the given files (in argument
order, labelled by git rev — pass the artifacts oldest-first).

Missing or empty input files are skipped with a warning rather than
aborting the batch — perf history directories legitimately start out
sparse. Requires matplotlib; degrades to printing the parsed tables
without it.
"""
import json
import math
import os
import re
import sys


def parse_text(path):
    sections = {}
    current, rows = None, []
    for line in open(path):
        m = re.match(r"=== (.*) ===", line)
        if m:
            if current:
                sections[current] = rows
            current, rows = m.group(1), []
        elif current and re.match(r"\S", line) and not line.startswith(
                ("paper:", "here :", "variant", "txBytes", "entries",
                 "engine ", "peLatency", "core ", "config")):
            rows.append(line.split())
    if current:
        sections[current] = rows
    return sections


def parse_suite(doc):
    """takobench-v1 report -> {section: [[label, value], ...]}.

    Each run's recorded rows become one section (grouped bars of the
    row's first numeric column, preferring speedup/cycles when present).
    Runs without rows (takosim runs) chart their raw metrics instead.
    """
    preferred = ("speedup", "cycles", "total", "mean")
    sections = {}
    for run in doc.get("runs", []):
        rows = run.get("rows") or []
        out = []
        for row in rows:
            numeric = {k: v for k, v in row.items()
                       if isinstance(v, (int, float))}
            if not numeric:
                continue
            key = next((p for p in preferred if p in numeric),
                       sorted(numeric)[0])
            label = row.get("variant") or row.get("label") or "?"
            out.append([str(label), str(numeric[key])])
        if not out:
            metrics = run.get("metrics") or {}
            out = [[k, str(v)] for k, v in sorted(metrics.items())
                   if isinstance(v, (int, float))]
        if out:
            status = "" if run.get("pass", True) else " [FAIL]"
            sections[run.get("name", "?") + status] = out
    return sections


def parse_takomon(path):
    """Decode a takomon-v1 file via the reference stdlib decoder."""
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from validate_takomon import decode
    series, ticks, columns, _ = decode(path)
    return {"schema": "takomon-v1", "path": path, "series": series,
            "ticks": ticks, "columns": columns}


def parse(path):
    """Sniff and parse one input; None = unusable (already warned)."""
    if os.path.exists(path) and os.path.getsize(path) == 0:
        print(f"warning: {path} is empty; skipping")
        return None
    with open(path, "rb") as f:
        if f.read(8) == b"takomon1":
            return parse_takomon(path)
    text = open(path).read()
    if text.lstrip().startswith("{"):
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as e:
            print(f"warning: {path}: malformed JSON ({e}); skipping")
            return None
        schema = str(doc.get("schema", ""))
        if schema.startswith(("takobench", "takoprof", "takoperf")):
            return doc
        raise SystemExit(f"{path}: JSON but not a takobench report, "
                         "takoprof profile, or takoperf artifact "
                         "(unrecognized \"schema\")")
    return parse_text(path)


def plot_takoprof(doc, outdir):
    """NoC link heatmap + per-engine occupancy from a takoprof-v1 doc."""
    noc = doc.get("noc", {})
    tile_busy = noc.get("tile_busy") or []
    engines = doc.get("engines") or []
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        for row in tile_busy:
            print(" ".join(f"{v:>10}" for v in row))
        for e in engines:
            print(f"tile {e.get('tile')}: peak occupancy "
                  f"{e.get('peak_occupancy')}")
        print("matplotlib not available; printed summaries only")
        return

    wrote = 0
    if tile_busy:
        fig, ax = plt.subplots(figsize=(5, 4))
        im = ax.imshow(tile_busy, cmap="inferno", origin="upper")
        ax.set_title("NoC outgoing-link busy cycles per tile")
        ax.set_xlabel("mesh x")
        ax.set_ylabel("mesh y")
        fig.colorbar(im, ax=ax, label="flit-cycles")
        plt.tight_layout()
        fig.savefig(f"{outdir}/takoprof_noc_heatmap.png", dpi=120)
        plt.close(fig)
        wrote += 1
    if engines:
        tiles = [e.get("tile", i) for i, e in enumerate(engines)]
        peaks = [e.get("peak_occupancy", 0) for e in engines]
        fig, ax = plt.subplots(figsize=(6, 3))
        ax.bar([str(t) for t in tiles], peaks)
        ax.set_title("Engine peak occupancy (concurrent callbacks)")
        ax.set_xlabel("tile")
        ax.set_ylabel("callbacks")
        plt.tight_layout()
        fig.savefig(f"{outdir}/takoprof_engine_occupancy.png", dpi=120)
        plt.close(fig)
        wrote += 1
    print(f"wrote {wrote} takoprof charts to {outdir}")


def plot_takomon(doc, outdir, top=8):
    """Time-series chart of a takomon file's most active counters.

    "Most active" = largest dynamic range over the run; flat series
    (registered but untouched counters) would only clutter the legend.
    """
    ticks = doc["ticks"]
    names = [n for n, _ in doc["series"]]
    ranked = sorted(range(len(names)),
                    key=lambda i: (max(doc["columns"][i]) -
                                   min(doc["columns"][i])
                                   if doc["columns"][i] else 0),
                    reverse=True)
    picked = [i for i in ranked[:top]
              if doc["columns"][i] and
              max(doc["columns"][i]) > min(doc["columns"][i])]
    stem = re.sub(r"\W+", "_",
                  os.path.splitext(os.path.basename(doc["path"]))[0])
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print(f"{doc['path']}: {len(names)} series, "
              f"{len(ticks)} samples")
        for i in picked:
            col = doc["columns"][i]
            print(f"  {names[i]}: first {col[0]:g} last {col[-1]:g}")
        print("matplotlib not available; printed summaries only")
        return

    fig, ax = plt.subplots(figsize=(8, 4))
    for i in picked:
        ax.plot(ticks, doc["columns"][i], label=names[i], linewidth=1)
    ax.set_title(f"takomon: {os.path.basename(doc['path'])} "
                 f"(top {len(picked)} of {len(names)} series)")
    ax.set_xlabel("sim tick")
    ax.set_ylabel("counter value")
    ax.legend(fontsize=7, loc="upper left")
    plt.tight_layout()
    fig.savefig(f"{outdir}/takomon_{stem}.png", dpi=120)
    plt.close(fig)
    print(f"wrote takomon series chart to {outdir}/takomon_{stem}.png")


def shard_load_factors(doc):
    """Per-run per-domain load factors from a takobench-v1 report.

    Reads the shard.d<i>.events observability counters out of each
    run's metrics; a domain's load factor is its executed events over
    the run's per-domain mean (1.0 = perfectly balanced). Returns
    (run names, rows); runs without at least two domains are skipped.
    """
    names, rows = [], []
    for run in doc.get("runs", []):
        m = run.get("metrics") or {}
        events = []
        while f"shard.d{len(events)}.events" in m:
            events.append(m[f"shard.d{len(events)}.events"])
        if len(events) < 2:
            continue
        mean = sum(events) / len(events)
        rows.append([e / mean if mean else 0.0 for e in events])
        names.append(run.get("name", "?"))
    return names, rows


def plot_suite(doc, outdir):
    """Bar chart per run + shard load heatmap from a takobench doc."""
    sections = parse_suite(doc)
    heat_names, heat_rows = shard_load_factors(doc)
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        for name, rows in sections.items():
            print(f"{name}: {len(rows)} rows")
        for name, row in zip(heat_names, heat_rows):
            worst = max(row)
            print(f"shard load {name}: {len(row)} domains, "
                  f"max/mean {worst:.2f}")
        print("matplotlib not available; printed summaries only")
        return

    wrote = plot_sections(sections, outdir, plt)
    if heat_rows:
        width = max(len(r) for r in heat_rows)
        grid = [r + [math.nan] * (width - len(r)) for r in heat_rows]
        fig, ax = plt.subplots(
            figsize=(max(5, width * 0.5), max(3, len(grid) * 0.4 + 1)))
        im = ax.imshow(grid, cmap="coolwarm", aspect="auto",
                       vmin=0.0, vmax=2.0)
        ax.set_title("Shard load factor (domain events / mean)")
        ax.set_xlabel("domain")
        ax.set_yticks(range(len(heat_names)))
        ax.set_yticklabels(heat_names, fontsize=7)
        fig.colorbar(im, ax=ax, label="load factor")
        plt.tight_layout()
        fig.savefig(f"{outdir}/shard_heatmap.png", dpi=120)
        plt.close(fig)
        wrote += 1
        print(f"wrote shard heatmap ({len(heat_names)} runs) to "
              f"{outdir}/shard_heatmap.png")
    print(f"wrote {wrote} charts to {outdir}")


def plot_takoperf(docs, outdir):
    """Throughput + shard-speedup trends across takoperf-v1 artifacts.

    Two charts: (1) end-to-end takosim events/sec (the number that
    bounds figure-bench scale) against the raw event-queue
    schedule/fire microbenchmark; (2) the decomposed-run payoff — the
    shard_single_run wall-clock speedup of one 16-tile simulation at
    --shards=4 over --shards=1, with the shard_ensemble (independent
    replica lanes) speedup alongside for contrast. Each point is one
    artifact in argument order labelled by its git rev; artifacts
    tagged "untrusted" (non-Release build or dirty tree — see
    perf_smoke.py) get a * on the label.
    """
    revs = [str(d.get("git_rev", "?"))[:12]
            + ("*" if d.get("untrusted") else "") for d in docs]
    sim_eps = [d.get("takosim", {}).get("events_per_sec", 0) / 1e6
               for d in docs]
    ueq = [d.get("benchmarks", {}).get("BM_EventQueueSchedule", {})
            .get("items_per_second", 0) / 1e6 for d in docs]
    single = [d.get("shard_single_run", {}).get("speedup") for d in docs]
    ensemble = [d.get("shard_ensemble", {}).get("speedup") for d in docs]
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print(f"{'rev':>13} {'sim Mev/s':>10} {'uqueue M/s':>10} "
              f"{'1-run spdup':>11}")
        for r, s, u, sp in zip(revs, sim_eps, ueq, single):
            sp_txt = f"{sp:.2f}x" if sp is not None else "-"
            print(f"{r:>13} {s:>10.2f} {u:>10.1f} {sp_txt:>11}")
        print("matplotlib not available; printed summaries only")
        return

    if any(sp is not None for sp in single + ensemble):
        fig, ax = plt.subplots(figsize=(max(6, len(revs) * 0.9), 3.5))
        if any(sp is not None for sp in single):
            ax.plot(revs, [sp if sp is not None else float("nan")
                           for sp in single],
                    marker="o", label="single run, 4 shard domains")
        if any(sp is not None for sp in ensemble):
            ax.plot(revs, [sp if sp is not None else float("nan")
                           for sp in ensemble],
                    marker="s", linestyle="--",
                    label="4-replica ensemble, 4 lanes")
        ax.axhline(1.0, color="gray", linewidth=0.8)
        ax.set_ylabel("wall-clock speedup vs --shards=1")
        ax.set_ylim(bottom=0)
        ax.set_title("Sharded-execution speedup trend "
                     "(* = untrusted artifact)")
        ax.legend(loc="lower right")
        plt.xticks(rotation=30, ha="right")
        plt.tight_layout()
        fig.savefig(f"{outdir}/takoperf_shard_speedup.png", dpi=120)
        plt.close(fig)
        print(f"wrote shard speedup trend to "
              f"{outdir}/takoperf_shard_speedup.png")

    fig, ax = plt.subplots(figsize=(max(6, len(revs) * 0.9), 3.5))
    ax.plot(revs, sim_eps, marker="o", label="takosim (end-to-end)")
    ax.set_ylabel("M events/s (takosim)")
    ax.set_ylim(bottom=0)
    ax2 = ax.twinx()
    ax2.plot(revs, ueq, marker="s", color="tab:orange",
             label="event queue (micro)")
    ax2.set_ylabel("M events/s (microbench)")
    ax2.set_ylim(bottom=0)
    ax.set_title("Simulation-kernel throughput trend")
    lines = ax.get_lines() + ax2.get_lines()
    ax.legend(lines, [ln.get_label() for ln in lines], loc="lower right")
    plt.xticks(rotation=30, ha="right")
    plt.tight_layout()
    fig.savefig(f"{outdir}/takoperf_trend.png", dpi=120)
    plt.close(fig)
    print(f"wrote takoperf trend ({len(revs)} points) to "
          f"{outdir}/takoperf_trend.png")


def plot_sections(sections, outdir, plt):
    """Generic grouped-bar charts; returns the number written."""
    wrote = 0
    for i, (name, rows) in enumerate(sections.items()):
        labels = [r[0] for r in rows if len(r) >= 2]
        try:
            values = [float(r[1]) for r in rows if len(r) >= 2]
        except ValueError:
            continue
        if not values:
            continue
        fig, ax = plt.subplots(figsize=(6, 3))
        ax.bar(labels, values)
        ax.set_title(name)
        ax.set_ylabel("cycles / value")
        plt.xticks(rotation=30, ha="right")
        plt.tight_layout()
        safe = re.sub(r"\W+", "_", name)[:50]
        fig.savefig(f"{outdir}/{i:02d}_{safe}.png", dpi=120)
        plt.close(fig)
        wrote += 1
    return wrote


def main():
    args = sys.argv[1:] or ["bench_output.txt"]
    outdir = "."
    if len(args) > 1 and not args[-1].endswith(
            (".json", ".txt", ".takomon")):
        outdir = args.pop()
    parsed = []
    for p in args:
        try:
            doc = parse(p)
        except OSError as e:
            print(f"warning: {p}: {e.strerror or e}; skipping")
            continue
        if doc is not None:
            parsed.append(doc)
    if not parsed:
        print("plot_results: no usable inputs (all missing or empty)")
        return
    if all(isinstance(d, dict) and
           str(d.get("schema", "")).startswith("takoperf")
           for d in parsed):
        plot_takoperf(parsed, outdir)
        return
    if len(parsed) > 1:
        raise SystemExit("multiple input files are only supported for "
                         "takoperf-v1 artifacts")
    sections = parsed[0]
    if isinstance(sections, dict):
        schema = str(sections.get("schema", ""))
        if schema.startswith("takoprof"):
            plot_takoprof(sections, outdir)
            return
        if schema.startswith("takomon"):
            plot_takomon(sections, outdir)
            return
        if schema.startswith("takobench"):
            plot_suite(sections, outdir)
            return
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        for name, rows in sections.items():
            print(f"{name}: {len(rows)} rows")
        print("matplotlib not available; printed summaries only")
        return
    wrote = plot_sections(sections, outdir, plt)
    print(f"wrote {wrote} charts to {outdir}")


if __name__ == "__main__":
    main()
