file(REMOVE_RECURSE
  "CMakeFiles/test_morph_units.dir/test_morph_units.cc.o"
  "CMakeFiles/test_morph_units.dir/test_morph_units.cc.o.d"
  "test_morph_units"
  "test_morph_units.pdb"
  "test_morph_units[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_morph_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
