# Empty dependencies file for test_morph_units.
# This may be replaced when dependencies are built.
