file(REMOVE_RECURSE
  "CMakeFiles/test_tako.dir/test_tako.cc.o"
  "CMakeFiles/test_tako.dir/test_tako.cc.o.d"
  "test_tako"
  "test_tako.pdb"
  "test_tako[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tako.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
