# Empty dependencies file for test_tako.
# This may be replaced when dependencies are built.
