file(REMOVE_RECURSE
  "CMakeFiles/test_mem2.dir/test_mem2.cc.o"
  "CMakeFiles/test_mem2.dir/test_mem2.cc.o.d"
  "test_mem2"
  "test_mem2.pdb"
  "test_mem2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mem2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
