# Empty dependencies file for test_mem2.
# This may be replaced when dependencies are built.
