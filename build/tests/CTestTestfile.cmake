# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_cache_array[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_noc[1]_include.cmake")
include("/root/repo/build/tests/test_engine[1]_include.cmake")
include("/root/repo/build/tests/test_tako[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_mem2[1]_include.cmake")
include("/root/repo/build/tests/test_morph_units[1]_include.cmake")
