file(REMOVE_RECURSE
  "CMakeFiles/takosim.dir/takosim.cc.o"
  "CMakeFiles/takosim.dir/takosim.cc.o.d"
  "takosim"
  "takosim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/takosim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
