# Empty dependencies file for takosim.
# This may be replaced when dependencies are built.
