# Empty compiler generated dependencies file for fig21_sidechannel.
# This may be replaced when dependencies are built.
