file(REMOVE_RECURSE
  "CMakeFiles/fig21_sidechannel.dir/fig21_sidechannel.cc.o"
  "CMakeFiles/fig21_sidechannel.dir/fig21_sidechannel.cc.o.d"
  "fig21_sidechannel"
  "fig21_sidechannel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_sidechannel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
