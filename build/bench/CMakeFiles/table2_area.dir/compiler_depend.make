# Empty compiler generated dependencies file for table2_area.
# This may be replaced when dependencies are built.
