# Empty dependencies file for fig07_decompressions.
# This may be replaced when dependencies are built.
