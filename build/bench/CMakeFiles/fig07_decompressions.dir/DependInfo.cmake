
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig07_decompressions.cc" "bench/CMakeFiles/fig07_decompressions.dir/fig07_decompressions.cc.o" "gcc" "bench/CMakeFiles/fig07_decompressions.dir/fig07_decompressions.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/tako_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/morphs/CMakeFiles/tako_morphs.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/tako_workloads_core.dir/DependInfo.cmake"
  "/root/repo/build/src/system/CMakeFiles/tako_system.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tako_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tako/CMakeFiles/tako_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/tako_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/tako_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tako_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
