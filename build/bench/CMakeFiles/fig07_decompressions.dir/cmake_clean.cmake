file(REMOVE_RECURSE
  "CMakeFiles/fig07_decompressions.dir/fig07_decompressions.cc.o"
  "CMakeFiles/fig07_decompressions.dir/fig07_decompressions.cc.o.d"
  "fig07_decompressions"
  "fig07_decompressions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_decompressions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
