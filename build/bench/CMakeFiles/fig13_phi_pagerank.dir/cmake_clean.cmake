file(REMOVE_RECURSE
  "CMakeFiles/fig13_phi_pagerank.dir/fig13_phi_pagerank.cc.o"
  "CMakeFiles/fig13_phi_pagerank.dir/fig13_phi_pagerank.cc.o.d"
  "fig13_phi_pagerank"
  "fig13_phi_pagerank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_phi_pagerank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
