# Empty compiler generated dependencies file for fig13_phi_pagerank.
# This may be replaced when dependencies are built.
