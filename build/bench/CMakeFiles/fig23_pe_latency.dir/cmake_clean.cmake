file(REMOVE_RECURSE
  "CMakeFiles/fig23_pe_latency.dir/fig23_pe_latency.cc.o"
  "CMakeFiles/fig23_pe_latency.dir/fig23_pe_latency.cc.o.d"
  "fig23_pe_latency"
  "fig23_pe_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig23_pe_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
