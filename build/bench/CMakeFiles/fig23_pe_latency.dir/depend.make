# Empty dependencies file for fig23_pe_latency.
# This may be replaced when dependencies are built.
