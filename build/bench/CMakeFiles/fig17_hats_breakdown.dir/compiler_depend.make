# Empty compiler generated dependencies file for fig17_hats_breakdown.
# This may be replaced when dependencies are built.
