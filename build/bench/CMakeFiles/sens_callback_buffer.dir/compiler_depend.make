# Empty compiler generated dependencies file for sens_callback_buffer.
# This may be replaced when dependencies are built.
