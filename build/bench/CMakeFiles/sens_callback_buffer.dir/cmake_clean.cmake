file(REMOVE_RECURSE
  "CMakeFiles/sens_callback_buffer.dir/sens_callback_buffer.cc.o"
  "CMakeFiles/sens_callback_buffer.dir/sens_callback_buffer.cc.o.d"
  "sens_callback_buffer"
  "sens_callback_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sens_callback_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
