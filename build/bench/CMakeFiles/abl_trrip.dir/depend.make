# Empty dependencies file for abl_trrip.
# This may be replaced when dependencies are built.
