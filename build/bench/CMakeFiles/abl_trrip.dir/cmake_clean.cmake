file(REMOVE_RECURSE
  "CMakeFiles/abl_trrip.dir/abl_trrip.cc.o"
  "CMakeFiles/abl_trrip.dir/abl_trrip.cc.o.d"
  "abl_trrip"
  "abl_trrip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_trrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
