# Empty dependencies file for fig19_nvm_tx.
# This may be replaced when dependencies are built.
