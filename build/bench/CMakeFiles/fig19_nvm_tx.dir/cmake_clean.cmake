file(REMOVE_RECURSE
  "CMakeFiles/fig19_nvm_tx.dir/fig19_nvm_tx.cc.o"
  "CMakeFiles/fig19_nvm_tx.dir/fig19_nvm_tx.cc.o.d"
  "fig19_nvm_tx"
  "fig19_nvm_tx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_nvm_tx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
