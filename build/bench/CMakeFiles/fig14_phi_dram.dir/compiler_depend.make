# Empty compiler generated dependencies file for fig14_phi_dram.
# This may be replaced when dependencies are built.
