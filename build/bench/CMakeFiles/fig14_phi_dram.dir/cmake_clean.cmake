file(REMOVE_RECURSE
  "CMakeFiles/fig14_phi_dram.dir/fig14_phi_dram.cc.o"
  "CMakeFiles/fig14_phi_dram.dir/fig14_phi_dram.cc.o.d"
  "fig14_phi_dram"
  "fig14_phi_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_phi_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
