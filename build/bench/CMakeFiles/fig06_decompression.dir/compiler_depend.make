# Empty compiler generated dependencies file for fig06_decompression.
# This may be replaced when dependencies are built.
