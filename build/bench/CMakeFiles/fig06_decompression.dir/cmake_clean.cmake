file(REMOVE_RECURSE
  "CMakeFiles/fig06_decompression.dir/fig06_decompression.cc.o"
  "CMakeFiles/fig06_decompression.dir/fig06_decompression.cc.o.d"
  "fig06_decompression"
  "fig06_decompression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_decompression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
