file(REMOVE_RECURSE
  "CMakeFiles/fig16_hats.dir/fig16_hats.cc.o"
  "CMakeFiles/fig16_hats.dir/fig16_hats.cc.o.d"
  "fig16_hats"
  "fig16_hats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_hats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
