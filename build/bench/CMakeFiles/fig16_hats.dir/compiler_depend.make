# Empty compiler generated dependencies file for fig16_hats.
# This may be replaced when dependencies are built.
