# Empty dependencies file for fig25_scalability.
# This may be replaced when dependencies are built.
