file(REMOVE_RECURSE
  "CMakeFiles/fig25_scalability.dir/fig25_scalability.cc.o"
  "CMakeFiles/fig25_scalability.dir/fig25_scalability.cc.o.d"
  "fig25_scalability"
  "fig25_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig25_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
