# Empty dependencies file for fig20_nvm_instructions.
# This may be replaced when dependencies are built.
