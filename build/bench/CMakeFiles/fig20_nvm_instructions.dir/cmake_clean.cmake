file(REMOVE_RECURSE
  "CMakeFiles/fig20_nvm_instructions.dir/fig20_nvm_instructions.cc.o"
  "CMakeFiles/fig20_nvm_instructions.dir/fig20_nvm_instructions.cc.o.d"
  "fig20_nvm_instructions"
  "fig20_nvm_instructions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_nvm_instructions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
