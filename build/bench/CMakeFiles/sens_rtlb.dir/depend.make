# Empty dependencies file for sens_rtlb.
# This may be replaced when dependencies are built.
