file(REMOVE_RECURSE
  "CMakeFiles/sens_rtlb.dir/sens_rtlb.cc.o"
  "CMakeFiles/sens_rtlb.dir/sens_rtlb.cc.o.d"
  "sens_rtlb"
  "sens_rtlb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sens_rtlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
