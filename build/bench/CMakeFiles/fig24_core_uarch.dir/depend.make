# Empty dependencies file for fig24_core_uarch.
# This may be replaced when dependencies are built.
