file(REMOVE_RECURSE
  "CMakeFiles/fig24_core_uarch.dir/fig24_core_uarch.cc.o"
  "CMakeFiles/fig24_core_uarch.dir/fig24_core_uarch.cc.o.d"
  "fig24_core_uarch"
  "fig24_core_uarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig24_core_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
