file(REMOVE_RECURSE
  "CMakeFiles/fig22_fabric_size.dir/fig22_fabric_size.cc.o"
  "CMakeFiles/fig22_fabric_size.dir/fig22_fabric_size.cc.o.d"
  "fig22_fabric_size"
  "fig22_fabric_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig22_fabric_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
