# Empty compiler generated dependencies file for fig22_fabric_size.
# This may be replaced when dependencies are built.
