file(REMOVE_RECURSE
  "CMakeFiles/sidechannel_monitor.dir/sidechannel_monitor.cc.o"
  "CMakeFiles/sidechannel_monitor.dir/sidechannel_monitor.cc.o.d"
  "sidechannel_monitor"
  "sidechannel_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sidechannel_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
