# Empty dependencies file for sidechannel_monitor.
# This may be replaced when dependencies are built.
