# Empty dependencies file for nvm_transactions.
# This may be replaced when dependencies are built.
