file(REMOVE_RECURSE
  "CMakeFiles/nvm_transactions.dir/nvm_transactions.cc.o"
  "CMakeFiles/nvm_transactions.dir/nvm_transactions.cc.o.d"
  "nvm_transactions"
  "nvm_transactions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvm_transactions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
