file(REMOVE_RECURSE
  "CMakeFiles/memoization.dir/memoization.cc.o"
  "CMakeFiles/memoization.dir/memoization.cc.o.d"
  "memoization"
  "memoization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memoization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
