# Empty dependencies file for memoization.
# This may be replaced when dependencies are built.
