file(REMOVE_RECURSE
  "libtako_mem.a"
)
