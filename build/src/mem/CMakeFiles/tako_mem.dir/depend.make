# Empty dependencies file for tako_mem.
# This may be replaced when dependencies are built.
