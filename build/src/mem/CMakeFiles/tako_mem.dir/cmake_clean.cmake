file(REMOVE_RECURSE
  "CMakeFiles/tako_mem.dir/memory_system.cc.o"
  "CMakeFiles/tako_mem.dir/memory_system.cc.o.d"
  "libtako_mem.a"
  "libtako_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tako_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
