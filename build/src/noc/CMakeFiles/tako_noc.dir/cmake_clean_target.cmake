file(REMOVE_RECURSE
  "libtako_noc.a"
)
