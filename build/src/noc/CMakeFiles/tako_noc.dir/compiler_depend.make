# Empty compiler generated dependencies file for tako_noc.
# This may be replaced when dependencies are built.
