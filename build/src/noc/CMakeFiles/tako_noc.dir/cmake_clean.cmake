file(REMOVE_RECURSE
  "CMakeFiles/tako_noc.dir/mesh.cc.o"
  "CMakeFiles/tako_noc.dir/mesh.cc.o.d"
  "libtako_noc.a"
  "libtako_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tako_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
