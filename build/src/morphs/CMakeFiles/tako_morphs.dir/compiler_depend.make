# Empty compiler generated dependencies file for tako_morphs.
# This may be replaced when dependencies are built.
