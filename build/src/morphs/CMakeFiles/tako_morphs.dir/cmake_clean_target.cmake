file(REMOVE_RECURSE
  "libtako_morphs.a"
)
