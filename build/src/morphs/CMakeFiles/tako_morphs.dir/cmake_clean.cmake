file(REMOVE_RECURSE
  "CMakeFiles/tako_morphs.dir/decompress_morph.cc.o"
  "CMakeFiles/tako_morphs.dir/decompress_morph.cc.o.d"
  "CMakeFiles/tako_morphs.dir/hats_morph.cc.o"
  "CMakeFiles/tako_morphs.dir/hats_morph.cc.o.d"
  "CMakeFiles/tako_morphs.dir/phi_morph.cc.o"
  "CMakeFiles/tako_morphs.dir/phi_morph.cc.o.d"
  "libtako_morphs.a"
  "libtako_morphs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tako_morphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
