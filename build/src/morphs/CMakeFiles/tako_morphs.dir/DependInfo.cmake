
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/morphs/decompress_morph.cc" "src/morphs/CMakeFiles/tako_morphs.dir/decompress_morph.cc.o" "gcc" "src/morphs/CMakeFiles/tako_morphs.dir/decompress_morph.cc.o.d"
  "/root/repo/src/morphs/hats_morph.cc" "src/morphs/CMakeFiles/tako_morphs.dir/hats_morph.cc.o" "gcc" "src/morphs/CMakeFiles/tako_morphs.dir/hats_morph.cc.o.d"
  "/root/repo/src/morphs/phi_morph.cc" "src/morphs/CMakeFiles/tako_morphs.dir/phi_morph.cc.o" "gcc" "src/morphs/CMakeFiles/tako_morphs.dir/phi_morph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tako/CMakeFiles/tako_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/tako_workloads_core.dir/DependInfo.cmake"
  "/root/repo/build/src/system/CMakeFiles/tako_system.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tako_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/tako_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/tako_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tako_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
