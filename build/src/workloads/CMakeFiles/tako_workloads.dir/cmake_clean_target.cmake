file(REMOVE_RECURSE
  "libtako_workloads.a"
)
