file(REMOVE_RECURSE
  "CMakeFiles/tako_workloads.dir/aos_soa.cc.o"
  "CMakeFiles/tako_workloads.dir/aos_soa.cc.o.d"
  "CMakeFiles/tako_workloads.dir/decompress.cc.o"
  "CMakeFiles/tako_workloads.dir/decompress.cc.o.d"
  "CMakeFiles/tako_workloads.dir/nvm_tx.cc.o"
  "CMakeFiles/tako_workloads.dir/nvm_tx.cc.o.d"
  "CMakeFiles/tako_workloads.dir/pagerank_pull.cc.o"
  "CMakeFiles/tako_workloads.dir/pagerank_pull.cc.o.d"
  "CMakeFiles/tako_workloads.dir/pagerank_push.cc.o"
  "CMakeFiles/tako_workloads.dir/pagerank_push.cc.o.d"
  "CMakeFiles/tako_workloads.dir/prime_probe.cc.o"
  "CMakeFiles/tako_workloads.dir/prime_probe.cc.o.d"
  "libtako_workloads.a"
  "libtako_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tako_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
