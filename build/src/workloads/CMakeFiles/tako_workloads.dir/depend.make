# Empty dependencies file for tako_workloads.
# This may be replaced when dependencies are built.
