file(REMOVE_RECURSE
  "libtako_workloads_core.a"
)
