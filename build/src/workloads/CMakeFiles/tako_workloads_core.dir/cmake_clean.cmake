file(REMOVE_RECURSE
  "CMakeFiles/tako_workloads_core.dir/graph.cc.o"
  "CMakeFiles/tako_workloads_core.dir/graph.cc.o.d"
  "libtako_workloads_core.a"
  "libtako_workloads_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tako_workloads_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
