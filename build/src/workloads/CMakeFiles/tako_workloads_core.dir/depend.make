# Empty dependencies file for tako_workloads_core.
# This may be replaced when dependencies are built.
