file(REMOVE_RECURSE
  "libtako_engine.a"
)
