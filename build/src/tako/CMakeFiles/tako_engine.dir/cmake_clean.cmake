file(REMOVE_RECURSE
  "CMakeFiles/tako_engine.dir/engine.cc.o"
  "CMakeFiles/tako_engine.dir/engine.cc.o.d"
  "CMakeFiles/tako_engine.dir/registry.cc.o"
  "CMakeFiles/tako_engine.dir/registry.cc.o.d"
  "libtako_engine.a"
  "libtako_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tako_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
