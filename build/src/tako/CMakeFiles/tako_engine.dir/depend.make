# Empty dependencies file for tako_engine.
# This may be replaced when dependencies are built.
