file(REMOVE_RECURSE
  "CMakeFiles/tako_core.dir/core.cc.o"
  "CMakeFiles/tako_core.dir/core.cc.o.d"
  "libtako_core.a"
  "libtako_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tako_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
