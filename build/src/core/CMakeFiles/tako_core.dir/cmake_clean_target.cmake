file(REMOVE_RECURSE
  "libtako_core.a"
)
