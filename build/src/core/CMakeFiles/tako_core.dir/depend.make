# Empty dependencies file for tako_core.
# This may be replaced when dependencies are built.
