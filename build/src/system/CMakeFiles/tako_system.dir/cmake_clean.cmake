file(REMOVE_RECURSE
  "CMakeFiles/tako_system.dir/system.cc.o"
  "CMakeFiles/tako_system.dir/system.cc.o.d"
  "libtako_system.a"
  "libtako_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tako_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
