file(REMOVE_RECURSE
  "libtako_system.a"
)
