# Empty dependencies file for tako_system.
# This may be replaced when dependencies are built.
