# Empty dependencies file for tako_sim.
# This may be replaced when dependencies are built.
