file(REMOVE_RECURSE
  "libtako_sim.a"
)
