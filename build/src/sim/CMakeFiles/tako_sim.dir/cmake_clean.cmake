file(REMOVE_RECURSE
  "CMakeFiles/tako_sim.dir/logging.cc.o"
  "CMakeFiles/tako_sim.dir/logging.cc.o.d"
  "CMakeFiles/tako_sim.dir/random.cc.o"
  "CMakeFiles/tako_sim.dir/random.cc.o.d"
  "CMakeFiles/tako_sim.dir/stats.cc.o"
  "CMakeFiles/tako_sim.dir/stats.cc.o.d"
  "CMakeFiles/tako_sim.dir/trace.cc.o"
  "CMakeFiles/tako_sim.dir/trace.cc.o.d"
  "libtako_sim.a"
  "libtako_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tako_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
