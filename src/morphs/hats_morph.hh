/**
 * @file
 * HATS (Sec. 8.2): decoupled graph traversal via a phantom edge stream.
 *
 * The phantom range acts as a stream of edges; the core reads it
 * sequentially while the engine's onMiss fills each line with the next
 * eight edges in bounded-depth-first (BDFS) order, improving the
 * locality of the core's vertex-data accesses. The core marks consumed
 * edges INVALID with an atomic exchange; onEviction/onWriteback log any
 * unprocessed edges so none are lost (Table 5), and the core drains the
 * log at the end of the iteration.
 *
 * As in the paper's implementation, onMiss calls are sequentialized:
 * lines must be filled in stream order, so out-of-order callbacks
 * (e.g., from the L2 prefetcher) wait for their turn on the fabric.
 */

#ifndef TAKO_MORPHS_HATS_MORPH_HH
#define TAKO_MORPHS_HATS_MORPH_HH

#include <map>
#include <memory>
#include <vector>

#include "tako/engine.hh"
#include "tako/morph.hh"
#include "workloads/graph.hh"

namespace tako
{

class HatsMorph : public Morph
{
  public:
    /** Edge encoding: (src << 32) | dst; sentinels below. */
    static constexpr std::uint64_t invalidEdge = ~std::uint64_t(0);
    static constexpr std::uint64_t doneEdge = ~std::uint64_t(0) - 1;

    static std::uint64_t
    packEdge(std::uint64_t u, std::uint64_t v)
    {
        return (u << 32) | v;
    }

    /**
     * @param graph        host view of the CSR structure (sizes/refs)
     * @param visited_addr bitmap, one bit per vertex, in real memory
     * @param log_addr     lost-edge log region
     * @param log_capacity log capacity in edges
     * @param bound        max stack entries (bounded DFS)
     */
    HatsMorph(const Graph &graph, Addr visited_addr, Addr log_addr,
              std::uint64_t log_capacity, unsigned bound = 512,
              unsigned depth_bound = 6);

    void bind(const MorphBinding *b) { base_ = b->base; }

    Task<> onMiss(EngineCtx &ctx) override;
    Task<> onEviction(EngineCtx &ctx) override;
    Task<> onWriteback(EngineCtx &ctx) override;

    std::uint64_t edgesEmitted() const { return edgesEmitted_; }
    std::uint64_t edgesLogged() const { return edgesLogged_; }
    Addr logAddr() const { return logAddr_; }

  private:
    /** Emit up to 8 edges of the BDFS traversal into `out`. */
    Task<> fillLine(EngineCtx &ctx);

    /** Log unprocessed words of an evicted line (shared by both). */
    Task<> logUnprocessed(EngineCtx &ctx);

    /** Visit vertex v: mark visited, push (timed ops through ctx). */
    Task<> visit(EngineCtx &ctx, std::uint64_t v);

    /** Visit several children with one overlapped memory round. */
    Task<> visitBatch(EngineCtx &ctx,
                      const std::vector<std::uint64_t> &children,
                      unsigned depth);

    const Graph &graph_;
    Addr visitedAddr_;
    Addr logAddr_;
    std::uint64_t logCapacity_;
    unsigned bound_;
    unsigned depthBound_;
    Addr base_ = 0;

    // BDFS state: the engine's small stack and cursors (Sec. 8.2).
    struct Frame
    {
        std::uint64_t vertex;
        std::uint64_t edgeCursor; ///< index into colIdx
        unsigned depth;           ///< BDFS depth bound (stay local)
    };
    std::vector<Frame> stack_;
    std::vector<bool> visited_;
    std::uint64_t seedCursor_ = 0;
    bool done_ = false;

    // Stream-order sequencing of onMiss.
    std::uint64_t nextFillLine_ = 0;
    std::map<std::uint64_t, std::unique_ptr<Completion<bool>>> waiting_;

    std::uint64_t edgesEmitted_ = 0;
    std::uint64_t edgesLogged_ = 0;
    std::uint64_t logCursor_ = 0;
};

} // namespace tako

#endif // TAKO_MORPHS_HATS_MORPH_HH
