/**
 * @file
 * PHI (Sec. 8.1): commutative scatter-updates buffered in-cache.
 *
 * The phantom range mirrors the vertex accumulator array; cores push
 * updates with relaxed remote atomic adds (RMOs). onMiss initializes a
 * line to the identity element without touching memory. onWriteback
 * inspects the evicted line: dense lines (many updates) are applied
 * in-place to the real accumulator array; sparse lines are logged to
 * per-(bank, region) bins for a later binning phase, exactly the
 * in-place-vs-log policy of Table 4.
 */

#ifndef TAKO_MORPHS_PHI_MORPH_HH
#define TAKO_MORPHS_PHI_MORPH_HH

#include <vector>

#include "tako/engine.hh"
#include "tako/morph.hh"

namespace tako
{

class PhiMorph : public Morph
{
  public:
    /**
     * @param real_next   real accumulator array (8B per vertex)
     * @param num_vertices vertices covered
     * @param bins_base   bin storage region
     * @param region_vertices vertices per bin region (locality unit)
     * @param num_banks   engine views (one bin set per bank)
     * @param bin_capacity_bytes per-(bank, region) bin capacity
     * @param threshold   min updates per line to apply in-place
     */
    PhiMorph(Addr real_next, std::uint64_t num_vertices, Addr bins_base,
             std::uint64_t region_vertices, unsigned num_banks,
             std::uint64_t bin_capacity_bytes, unsigned threshold = 4);

    void bind(const MorphBinding *b) { base_ = b->base; }

    Task<> onMiss(EngineCtx &ctx) override;
    Task<> onWriteback(EngineCtx &ctx) override;

    unsigned numRegions() const { return numRegions_; }

    /** Entries appended to bin (bank, region). */
    std::uint64_t
    binCount(unsigned bank, unsigned region) const
    {
        return binCursor_[bank * numRegions_ + region];
    }

    Addr
    binAddr(unsigned bank, unsigned region) const
    {
        return binsBase_ +
               (static_cast<std::uint64_t>(bank) * numRegions_ + region) *
                   binCapacityBytes_;
    }

    std::uint64_t inPlaceLines() const { return inPlaceLines_; }
    std::uint64_t binnedUpdates() const { return binnedUpdates_; }

    /**
     * Drain staged (not yet line-complete) bin entries after flushData.
     * Returns (vertex, delta) pairs; the caller applies them directly.
     */
    std::vector<std::pair<std::uint64_t, std::uint64_t>> takeStaged();

  private:
    Addr realNext_;
    std::uint64_t numVertices_;
    Addr binsBase_;
    std::uint64_t regionVertices_;
    unsigned numBanks_;
    std::uint64_t binCapacityBytes_;
    unsigned threshold_;
    unsigned numRegions_;
    Addr base_ = 0;

    /** Per-(bank, region) append cursors (entry counts). Each engine
     *  view owns its bank's cursors: thread-local Morph state. */
    std::vector<std::uint64_t> binCursor_;

    /**
     * Per-(bank, region) line-staging buffers (4 entries of 16B fill one
     * 64B bin line): the engine view's local state, resident in its L1d.
     * Bin lines reach memory exactly once, as full-line streaming
     * stores — this is what keeps PHI at a fraction of a memory access
     * per onWriteback (Sec. 8.1).
     */
    struct Staged
    {
        std::uint64_t vertex[4];
        std::uint64_t delta[4];
        unsigned count = 0;
    };
    std::vector<Staged> staging_;

    std::uint64_t inPlaceLines_ = 0;
    std::uint64_t binnedUpdates_ = 0;
};

} // namespace tako

#endif // TAKO_MORPHS_PHI_MORPH_HH
