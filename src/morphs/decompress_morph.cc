#include "morphs/decompress_morph.hh"

namespace tako
{

Task<>
DecompressMorph::onMiss(EngineCtx &ctx)
{
    panic_if(base_ == 0, "DecompressMorph used before bind()");
    const std::uint64_t first = (ctx.addr() - base_) / 8;
    if (first >= numValues_) {
        // Past the logical end: leave the zero fill.
        co_return;
    }
    // One line of decompressed values <-> one base + one packed delta
    // word. Both fetched in parallel through the engine L1d.
    std::vector<Addr> addrs{bases_ + (first / 8) * 8, deltas_ + first};
    std::vector<std::uint64_t> vals;
    co_await ctx.loadMulti(addrs, &vals);
    // SIMD byte-extract + add across the full line.
    co_await ctx.compute(14, 4);
    for (unsigned i = 0; i < wordsPerLine; ++i) {
        if (first + i < numValues_) {
            ctx.setLineWord(i, decompress(vals[0], vals[1], i));
            ++decompressions_;
        }
    }
}

} // namespace tako
