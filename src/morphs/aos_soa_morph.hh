/**
 * @file
 * Array-of-structs to struct-of-arrays layout transform, the Morph the
 * paper uses to motivate trrîp's low-priority insertion for engine
 * accesses (Sec. 5.2: "> 4x speedup"). The phantom range exposes one
 * field as a dense array; onMiss gathers the field from eight AoS
 * elements — eight *different* real cache lines that are dead after the
 * gather and would pollute the caches without trrîp.
 */

#ifndef TAKO_MORPHS_AOS_SOA_MORPH_HH
#define TAKO_MORPHS_AOS_SOA_MORPH_HH

#include "tako/engine.hh"
#include "tako/morph.hh"

namespace tako
{

class AosToSoaMorph : public Morph
{
  public:
    /**
     * @param aos_base    array of structs in real memory
     * @param struct_words struct size in 64-bit words (8 = one line)
     * @param field       field index within the struct
     * @param num_elems   number of elements
     */
    AosToSoaMorph(Addr aos_base, unsigned struct_words, unsigned field,
                  std::uint64_t num_elems)
        : Morph(MorphTraits{
              .name = "aos2soa",
              .hasMiss = true,
              .hasEviction = false,
              .hasWriteback = false,
              .missKernel = {18, 4},
          }),
          aosBase_(aos_base),
          structWords_(struct_words),
          field_(field),
          numElems_(num_elems)
    {
    }

    void bind(const MorphBinding *b) { base_ = b->base; }

    Task<>
    onMiss(EngineCtx &ctx) override
    {
        panic_if(base_ == 0, "AosToSoaMorph used before bind()");
        const std::uint64_t first = (ctx.addr() - base_) / 8;
        std::vector<Addr> addrs;
        for (unsigned i = 0; i < wordsPerLine; ++i) {
            if (first + i < numElems_) {
                addrs.push_back(aosBase_ +
                                (first + i) * structWords_ * 8 +
                                field_ * 8);
            }
        }
        std::vector<std::uint64_t> vals;
        co_await ctx.streamLoadMulti(addrs, &vals);
        co_await ctx.compute(18, 4);
        for (unsigned i = 0; i < vals.size(); ++i)
            ctx.setLineWord(i, vals[i]);
    }

  private:
    Addr aosBase_;
    unsigned structWords_;
    unsigned field_;
    std::uint64_t numElems_;
    Addr base_ = 0;
};

} // namespace tako

#endif // TAKO_MORPHS_AOS_SOA_MORPH_HH
