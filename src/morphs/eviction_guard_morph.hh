/**
 * @file
 * Side-channel detection (Sec. 8.4): a "real data" Morph over a secure
 * data structure (e.g., AES T-tables) at the SHARED cache. Its only
 * callback is onEviction, which interrupts the victim thread whenever a
 * table line is evicted — the signature of a prime+probe attack priming
 * the victim's sets (Table 7, Fig. 21).
 */

#ifndef TAKO_MORPHS_EVICTION_GUARD_MORPH_HH
#define TAKO_MORPHS_EVICTION_GUARD_MORPH_HH

#include <vector>

#include "tako/engine.hh"
#include "tako/morph.hh"

namespace tako
{

class EvictionGuardMorph : public Morph
{
  public:
    struct Event
    {
        Tick when;
        Addr line;
    };

    explicit EvictionGuardMorph(int victim_core)
        : Morph(MorphTraits{
              .name = "evictionGuard",
              .hasMiss = false,
              .hasEviction = true,
              .hasWriteback = true,
              .evictionKernel = {4, 2},
              .writebackKernel = {4, 2},
          }),
          victimCore_(victim_core)
    {
    }

    Task<>
    onEviction(EngineCtx &ctx) override
    {
        trace_.push_back(Event{ctx.eq().now(), ctx.addr()});
        co_await ctx.compute(4, 2);
        ctx.interrupt(victimCore_);
    }

    Task<>
    onWriteback(EngineCtx &ctx) override
    {
        co_await onEviction(ctx);
    }

    const std::vector<Event> &trace() const { return trace_; }

  private:
    int victimCore_;
    std::vector<Event> trace_;
};

} // namespace tako

#endif // TAKO_MORPHS_EVICTION_GUARD_MORPH_HH
