#include "morphs/hats_morph.hh"

namespace tako
{

HatsMorph::HatsMorph(const Graph &graph, Addr visited_addr, Addr log_addr,
                     std::uint64_t log_capacity, unsigned bound,
                     unsigned depth_bound)
    : Morph(MorphTraits{
          .name = "hats",
          .hasMiss = true,
          .hasEviction = true,
          .hasWriteback = true,
          // 94 static instructions across all callbacks (Sec. 5.3).
          .missKernel = {62, 12},
          .evictionKernel = {16, 4},
          .writebackKernel = {16, 4},
      }),
      graph_(graph),
      visitedAddr_(visited_addr),
      logAddr_(log_addr),
      logCapacity_(log_capacity),
      bound_(bound),
      depthBound_(depth_bound),
      visited_(graph.numVertices, false)
{
}

Task<>
HatsMorph::visit(EngineCtx &ctx, std::uint64_t v)
{
    std::vector<std::uint64_t> batch{v};
    co_await visitBatch(ctx, batch, 0);
}

Task<>
HatsMorph::visitBatch(EngineCtx &ctx,
                      const std::vector<std::uint64_t> &children,
                      unsigned depth)
{
    if (children.empty())
        co_return;
    // One overlapped round for all children: visited-bitmap words and
    // rowPtr bounds. With community-local ids both have short-term reuse
    // across nearby visits, so they stay cacheable; the fabric's memory
    // PEs issue the whole round concurrently (Sec. 9).
    std::vector<Addr> addrs;
    std::vector<std::pair<Addr, std::uint64_t>> marks;
    for (std::uint64_t v : children) {
        visited_[v] = true;
        addrs.push_back(visitedAddr_ + (v / 64) * 8);
        addrs.push_back(graph_.rowPtrAddr + v * 8);
        addrs.push_back(graph_.rowPtrAddr + (v + 1) * 8);
    }
    co_await ctx.loadMulti(addrs, nullptr);
    for (std::uint64_t v : children) {
        std::uint64_t word = 0;
        const std::uint64_t wbase = (v / 64) * 64;
        for (unsigned b = 0;
             b < 64 && wbase + b < graph_.numVertices; ++b) {
            if (visited_[wbase + b])
                word |= std::uint64_t(1) << b;
        }
        marks.emplace_back(visitedAddr_ + (v / 64) * 8, word);
        stack_.push_back(Frame{v, graph_.rowPtr[v], depth});
    }
    co_await ctx.storeMulti(marks);
    co_await ctx.compute(6 * static_cast<unsigned>(children.size()), 3);
}

Task<>
HatsMorph::fillLine(EngineCtx &ctx)
{
    unsigned slot = 0;
    while (slot < wordsPerLine) {
        if (done_) {
            ctx.setLineWord(slot++, doneEdge);
            continue;
        }
        if (stack_.empty()) {
            // Scan for the next unvisited seed, charging one bitmap load
            // per 64-vertex word crossed.
            std::uint64_t scanned_words = 0;
            while (seedCursor_ < graph_.numVertices &&
                   visited_[seedCursor_]) {
                if (seedCursor_ % 64 == 0)
                    ++scanned_words;
                ++seedCursor_;
            }
            if (scanned_words > 0) {
                std::vector<Addr> addrs;
                for (std::uint64_t w = 0;
                     w < std::min<std::uint64_t>(scanned_words, 8); ++w) {
                    addrs.push_back(visitedAddr_ +
                                    ((seedCursor_ / 64) - w) * 8);
                }
                co_await ctx.loadMulti(addrs, nullptr);
            }
            if (seedCursor_ >= graph_.numVertices) {
                done_ = true;
                continue;
            }
            co_await visit(ctx, seedCursor_);
            continue;
        }

        // Emit as many of the top frame's edges as fit in the line, with
        // one overlapped colIdx round per chunk.
        Frame f = stack_.back();
        const std::uint64_t row_end = graph_.rowPtr[f.vertex + 1];
        if (f.edgeCursor >= row_end) {
            stack_.pop_back();
            co_await ctx.compute(2, 1);
            continue;
        }
        const unsigned take = static_cast<unsigned>(
            std::min<std::uint64_t>(wordsPerLine - slot,
                                    row_end - f.edgeCursor));
        std::vector<Addr> eaddr;
        std::vector<std::uint64_t> children;
        for (unsigned k = 0; k < take; ++k) {
            eaddr.push_back(graph_.colIdxAddr + (f.edgeCursor + k) * 8);
            const std::uint64_t v = graph_.colIdx[f.edgeCursor + k];
            ctx.setLineWord(slot++, packEdge(f.vertex, v));
            ++edgesEmitted_;
            if (!visited_[v] && f.depth < depthBound_ &&
                stack_.size() + children.size() < bound_) {
                // Dedup within the chunk (visited_ set below).
                bool dup = false;
                for (std::uint64_t c : children)
                    dup |= c == v;
                if (!dup)
                    children.push_back(v);
            }
        }
        stack_.back().edgeCursor = f.edgeCursor + take;
        // The traversal pipelines across edges (HATS's engine overlaps
        // the visit of edge k with the fetch of edge k+1), so one chunk
        // costs one overlapped memory round: colIdx words plus the new
        // children's bitmap/rowPtr state, issued concurrently on the
        // fabric's memory PEs.
        for (std::uint64_t v : children) {
            eaddr.push_back(visitedAddr_ + (v / 64) * 8);
            eaddr.push_back(graph_.rowPtrAddr + v * 8);
            eaddr.push_back(graph_.rowPtrAddr + (v + 1) * 8);
        }
        co_await ctx.loadMulti(eaddr, nullptr);
        if (!children.empty()) {
            std::vector<std::pair<Addr, std::uint64_t>> marks;
            for (std::uint64_t v : children) {
                visited_[v] = true;
                stack_.push_back(Frame{v, graph_.rowPtr[v], f.depth + 1});
            }
            for (std::uint64_t v : children) {
                std::uint64_t word = 0;
                const std::uint64_t wbase = (v / 64) * 64;
                for (unsigned b = 0;
                     b < 64 && wbase + b < graph_.numVertices; ++b) {
                    if (visited_[wbase + b])
                        word |= std::uint64_t(1) << b;
                }
                marks.emplace_back(visitedAddr_ + (v / 64) * 8, word);
            }
            co_await ctx.storeMulti(marks);
            co_await ctx.compute(
                6 * static_cast<unsigned>(children.size()), 3);
        }
        co_await ctx.compute(4 * take, 3);
    }
}

Task<>
HatsMorph::onMiss(EngineCtx &ctx)
{
    panic_if(base_ == 0, "HatsMorph used before bind()");
    const std::uint64_t line_idx = (ctx.addr() - base_) / lineBytes;

    if (line_idx < nextFillLine_) {
        // Re-miss of an evicted, already-emitted line: its unprocessed
        // edges were logged at eviction; deliver skip markers.
        co_await ctx.compute(2, 1);
        for (unsigned i = 0; i < wordsPerLine; ++i)
            ctx.setLineWord(i, invalidEdge);
        co_return;
    }

    // Sequentialize fills in stream order (see file comment).
    while (line_idx != nextFillLine_) {
        auto &slot = waiting_[line_idx];
        if (!slot)
            slot = std::make_unique<Completion<bool>>(ctx.eq());
        co_await *slot;
        waiting_.erase(line_idx);
    }

    co_await fillLine(ctx);
    ++nextFillLine_;
    auto it = waiting_.find(nextFillLine_);
    if (it != waiting_.end() && it->second && !it->second->completed())
        it->second->complete(true);
}

Task<>
HatsMorph::logUnprocessed(EngineCtx &ctx)
{
    std::vector<std::pair<Addr, std::uint64_t>> writes;
    for (unsigned i = 0; i < wordsPerLine; ++i) {
        const std::uint64_t w = ctx.capturedLine()[i];
        if (w == invalidEdge || w == doneEdge)
            continue;
        panic_if(logCursor_ >= logCapacity_, "HATS edge log overflow");
        writes.emplace_back(logAddr_ + logCursor_ * 8, w);
        ++logCursor_;
        ++edgesLogged_;
    }
    co_await ctx.compute(16, 4);
    if (!writes.empty())
        co_await ctx.streamStoreMulti(writes);
}

Task<>
HatsMorph::onEviction(EngineCtx &ctx)
{
    co_await logUnprocessed(ctx);
}

Task<>
HatsMorph::onWriteback(EngineCtx &ctx)
{
    co_await logUnprocessed(ctx);
}

} // namespace tako
