#include "morphs/phi_morph.hh"

namespace tako
{

PhiMorph::PhiMorph(Addr real_next, std::uint64_t num_vertices,
                   Addr bins_base, std::uint64_t region_vertices,
                   unsigned num_banks, std::uint64_t bin_capacity_bytes,
                   unsigned threshold)
    : Morph(MorphTraits{
          .name = "phi",
          .hasMiss = true,
          .hasEviction = false,
          .hasWriteback = true,
          .missKernel = {4, 2},
          .writebackKernel = {21, 6},
      }),
      realNext_(real_next),
      numVertices_(num_vertices),
      binsBase_(bins_base),
      regionVertices_(region_vertices),
      numBanks_(num_banks),
      binCapacityBytes_(bin_capacity_bytes),
      threshold_(threshold),
      numRegions_(static_cast<unsigned>(
          divCeil(num_vertices, region_vertices))),
      binCursor_(static_cast<std::size_t>(num_banks) * numRegions_, 0),
      staging_(static_cast<std::size_t>(num_banks) * numRegions_)
{
}

Task<>
PhiMorph::onMiss(EngineCtx &ctx)
{
    // Initialize the line to the identity element (zero for addition)
    // without any request down the hierarchy. The controller zeroed the
    // phantom line already; this just charges the tiny kernel.
    co_await ctx.compute(4, 2);
    for (unsigned i = 0; i < wordsPerLine; ++i)
        ctx.setLineWord(i, 0);
}

Task<>
PhiMorph::onWriteback(EngineCtx &ctx)
{
    panic_if(base_ == 0, "PhiMorph used before bind()");
    const std::uint64_t vbase = (ctx.addr() - base_) / 8;

    // Scan the line for non-identity updates (SIMD compare).
    unsigned updates = 0;
    for (unsigned i = 0; i < wordsPerLine; ++i) {
        if (ctx.capturedLine()[i] != 0)
            ++updates;
    }
    co_await ctx.compute(8, 3);

    if (updates == 0)
        co_return;

    if (updates >= threshold_) {
        // Dense: apply in-place. All eight words share one real line, so
        // this costs one line of memory traffic.
        ++inPlaceLines_;
        Join join(ctx.eq());
        for (unsigned i = 0; i < wordsPerLine; ++i) {
            const std::uint64_t delta = ctx.capturedLine()[i];
            if (delta == 0 || vbase + i >= numVertices_)
                continue;
            join.add();
            spawn(
                [](EngineCtx *c, Addr a, std::uint64_t d) -> Task<> {
                    co_await c->atomicAdd(a, d);
                }(&ctx, realNext_ + (vbase + i) * 8, delta),
                join.completion());
        }
        co_await ctx.compute(13, 4);
        co_await join.wait();
    } else {
        // Sparse: stage (vertex, delta) pairs in this bank's view-local
        // buffer for the destination region; completed 64B lines go to
        // the bin with one full-line streaming store.
        const unsigned bank = static_cast<unsigned>(ctx.tile());
        const unsigned region =
            static_cast<unsigned>(vbase / regionVertices_);
        const std::size_t slot = bank * numRegions_ + region;
        std::uint64_t &cursor = binCursor_[slot];
        if ((cursor + 8) * 16 > binCapacityBytes_) {
            // Bin full: fall back to applying in place (PHI's policy
            // degrades gracefully instead of losing updates).
            ++inPlaceLines_;
            Join join(ctx.eq());
            for (unsigned i = 0; i < wordsPerLine; ++i) {
                const std::uint64_t delta = ctx.capturedLine()[i];
                if (delta == 0 || vbase + i >= numVertices_)
                    continue;
                join.add();
                spawn(
                    [](EngineCtx *c, Addr a, std::uint64_t d) -> Task<> {
                        co_await c->atomicAdd(a, d);
                    }(&ctx, realNext_ + (vbase + i) * 8, delta),
                    join.completion());
            }
            co_await ctx.compute(13, 4);
            co_await join.wait();
            co_return;
        }
        Staged &st = staging_[slot];
        std::vector<std::pair<Addr, std::uint64_t>> writes;
        for (unsigned i = 0; i < wordsPerLine; ++i) {
            const std::uint64_t delta = ctx.capturedLine()[i];
            if (delta == 0 || vbase + i >= numVertices_)
                continue;
            st.vertex[st.count] = vbase + i;
            st.delta[st.count] = delta;
            ++st.count;
            ++binnedUpdates_;
            if (st.count == 4) {
                const Addr entry = binAddr(bank, region) + cursor * 16;
                for (unsigned e = 0; e < 4; ++e) {
                    writes.emplace_back(entry + e * 16, st.vertex[e]);
                    writes.emplace_back(entry + e * 16 + 8, st.delta[e]);
                }
                cursor += 4;
                st.count = 0;
            }
        }
        co_await ctx.compute(13, 4);
        if (!writes.empty())
            co_await ctx.streamStoreMulti(writes);
    }
}

std::vector<std::pair<std::uint64_t, std::uint64_t>>
PhiMorph::takeStaged()
{
    std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
    for (Staged &st : staging_) {
        for (unsigned e = 0; e < st.count; ++e)
            out.emplace_back(st.vertex[e], st.delta[e]);
        st.count = 0;
    }
    return out;
}

} // namespace tako
