/**
 * @file
 * Transactions on direct-access NVM with battery-backed caches
 * (Sec. 8.3). The phantom range stages a transaction's writes in the
 * (persistent) cache. On commit, the application flushes the Morph's
 * data: onWriteback copies committed lines directly to their NVM home —
 * the cache itself served as the journal. If a line is evicted *before*
 * commit, onWriteback journals it instead (Table 6), and commit must
 * replay the journal.
 */

#ifndef TAKO_MORPHS_NVM_MORPH_HH
#define TAKO_MORPHS_NVM_MORPH_HH

#include "tako/engine.hh"
#include "tako/morph.hh"

namespace tako
{

class NvmTxMorph : public Morph
{
  public:
    /**
     * Words never written by the transaction carry this sentinel
     * (Table 6: "onMiss sets line with INVALID value"), so writebacks
     * of partially-written lines know which words are live — without
     * it, a line evicted, re-missed (zero-filled), and evicted again
     * would clobber its earlier journaled words at replay.
     */
    static constexpr std::uint64_t invalidWord = ~std::uint64_t(0) - 7;

    /**
     * @param home_base    NVM home region the staging range shadows
     * @param journal_base redo-journal region in NVM
     * @param journal_capacity_entries max journaled lines
     */
    NvmTxMorph(Addr home_base, Addr journal_base,
               std::uint64_t journal_capacity_entries)
        : Morph(MorphTraits{
              .name = "nvmtx",
              .hasMiss = true,
              .hasEviction = false,
              .hasWriteback = true,
              .missKernel = {3, 1},
              .writebackKernel = {12, 3},
          }),
          homeBase_(home_base),
          journalBase_(journal_base),
          journalCapacity_(journal_capacity_entries)
    {
    }

    void bind(const MorphBinding *b) { base_ = b->base; }

    /** Mark the in-flight transaction committed (just before flush). */
    void setCommitted(bool committed) { committed_ = committed; }

    /** Retarget the NVM home region (per transaction for append logs). */
    void setHomeBase(Addr home) { homeBase_ = home; }

    /** Journaled lines of the current transaction. */
    std::uint64_t journalEntries() const { return journalCursor_; }
    Addr journalBase() const { return journalBase_; }
    void resetJournal() { journalCursor_ = 0; }

    std::uint64_t directWrites() const { return directWrites_; }
    std::uint64_t journaledLines() const { return journaledLines_; }

    Task<>
    onMiss(EngineCtx &ctx) override
    {
        // Fresh staging line: INVALID fill, no memory request.
        co_await ctx.compute(3, 1);
        for (unsigned i = 0; i < wordsPerLine; ++i)
            ctx.setLineWord(i, invalidWord);
    }

    Task<>
    onWriteback(EngineCtx &ctx) override
    {
        const Addr off = ctx.addr() - base_;
        std::vector<std::pair<Addr, std::uint64_t>> writes;
        if (committed_) {
            // Commit flush: copy the live words straight to the NVM
            // home. The cache was the journal; no journaling work ever
            // happened.
            ++directWrites_;
            for (unsigned i = 0; i < wordsPerLine; ++i) {
                if (ctx.capturedLine()[i] != invalidWord) {
                    writes.emplace_back(homeBase_ + off + i * 8,
                                        ctx.capturedLine()[i]);
                }
            }
        } else {
            // Evicted before commit: journal (addr tag + data; INVALID
            // words keep their sentinel so replay skips them).
            panic_if(journalCursor_ >= journalCapacity_,
                     "NVM journal overflow");
            ++journaledLines_;
            const Addr entry =
                journalBase_ + journalCursor_ * (lineBytes + 8);
            writes.emplace_back(entry, off);
            for (unsigned i = 0; i < wordsPerLine; ++i)
                writes.emplace_back(entry + 8 + i * 8,
                                    ctx.capturedLine()[i]);
            ++journalCursor_;
        }
        co_await ctx.compute(12, 3);
        co_await ctx.streamStoreMulti(writes);
    }

  private:
    Addr homeBase_;
    Addr journalBase_;
    std::uint64_t journalCapacity_;
    Addr base_ = 0;
    bool committed_ = false;
    std::uint64_t journalCursor_ = 0;
    std::uint64_t directWrites_ = 0;
    std::uint64_t journaledLines_ = 0;
};

} // namespace tako

#endif // TAKO_MORPHS_NVM_MORPH_HH
