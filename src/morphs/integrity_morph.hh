/**
 * @file
 * Data-integrity morph: software-visible writebacks as a redundancy
 * hook (the Tvarak use case the paper points to in Sec. 8.3, [67]).
 *
 * Registered over real data at the private cache, the morph's
 * onWriteback computes a checksum of every line that leaves the cache
 * modified and stores it in a shadow region — off the critical path of
 * the writing thread, with no instrumentation in application code. A
 * verify pass recomputes checksums and flags silent corruption (e.g.,
 * of the in-memory copy on NVM).
 */

#ifndef TAKO_MORPHS_INTEGRITY_MORPH_HH
#define TAKO_MORPHS_INTEGRITY_MORPH_HH

#include "tako/engine.hh"
#include "tako/morph.hh"

namespace tako
{

class IntegrityMorph : public Morph
{
  public:
    /**
     * @param data_base    protected real range base (line aligned)
     * @param shadow_base  checksum array, one 8B word per data line
     */
    IntegrityMorph(Addr data_base, Addr shadow_base)
        : Morph(MorphTraits{
              .name = "integrity",
              .hasMiss = false,
              .hasEviction = false,
              .hasWriteback = true,
              .writebackKernel = {12, 4}, // SIMD reduce + mix
          }),
          dataBase_(data_base),
          shadowBase_(shadow_base)
    {
    }

    /** FNV-style line checksum (also used by the verify pass). */
    static std::uint64_t
    checksum(const LineData &line)
    {
        std::uint64_t h = 0xcbf29ce484222325ULL;
        for (unsigned i = 0; i < wordsPerLine; ++i) {
            h ^= line[i];
            h *= 0x100000001b3ULL;
        }
        return h;
    }

    Task<>
    onWriteback(EngineCtx &ctx) override
    {
        ++checksummedLines_;
        const std::uint64_t idx = (ctx.addr() - dataBase_) / lineBytes;
        co_await ctx.compute(12, 4);
        co_await ctx.store(shadowBase_ + idx * 8,
                           checksum(ctx.capturedLine()));
    }

    std::uint64_t checksummedLines() const { return checksummedLines_; }

    Addr shadowBase() const { return shadowBase_; }
    Addr dataBase() const { return dataBase_; }

  private:
    Addr dataBase_;
    Addr shadowBase_;
    std::uint64_t checksummedLines_ = 0;
};

} // namespace tako

#endif // TAKO_MORPHS_INTEGRITY_MORPH_HH
