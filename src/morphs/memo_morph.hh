/**
 * @file
 * Memoization morph: the caches as a software-managed memo table.
 *
 * Memoization is one of the transformation families the paper motivates
 * täkō with (Sec. 3.1, citing [8, 40, 153, 154]): a phantom array maps
 * key -> f(key) for an expensive pure function. onMiss evaluates f for
 * the eight keys of the requested line on the engine; hits are served at
 * cache speed, and cold entries simply age out — no invalidation or
 * table-management code in the application.
 *
 * The function itself is supplied by the instantiator as (a) a host
 * lambda for functional evaluation and (b) a KernelDesc-style cost and
 * optional per-key memory reads for timing.
 */

#ifndef TAKO_MORPHS_MEMO_MORPH_HH
#define TAKO_MORPHS_MEMO_MORPH_HH

#include <functional>

#include "tako/engine.hh"
#include "tako/morph.hh"

namespace tako
{

class MemoMorph : public Morph
{
  public:
    /** f(key) -> value; must be pure. */
    using Fn = std::function<std::uint64_t(std::uint64_t)>;

    /**
     * @param fn            the memoized function
     * @param num_keys      domain size (table length)
     * @param instrs_per_key engine cost of one evaluation
     * @param depth         dataflow critical path of one evaluation
     * @param operand_base  optional array read per key (0 = pure compute)
     */
    MemoMorph(Fn fn, std::uint64_t num_keys, unsigned instrs_per_key,
              unsigned depth, Addr operand_base = 0)
        : Morph(MorphTraits{
              .name = "memo",
              .hasMiss = true,
              .missKernel = {instrs_per_key, depth},
          }),
          fn_(std::move(fn)),
          numKeys_(num_keys),
          instrsPerKey_(instrs_per_key),
          depth_(depth),
          operandBase_(operand_base)
    {
    }

    void bind(const MorphBinding *b) { base_ = b->base; }

    /** Engine evaluations performed (memoization effectiveness). */
    std::uint64_t evaluations() const { return evaluations_; }

    Task<>
    onMiss(EngineCtx &ctx) override
    {
        panic_if(base_ == 0, "MemoMorph used before bind()");
        const std::uint64_t first = (ctx.addr() - base_) / 8;
        if (operandBase_ != 0) {
            std::vector<Addr> addrs;
            for (unsigned i = 0; i < wordsPerLine; ++i) {
                if (first + i < numKeys_)
                    addrs.push_back(operandBase_ + (first + i) * 8);
            }
            co_await ctx.loadMulti(addrs, nullptr);
        }
        // SIMD evaluation across the line.
        co_await ctx.compute(instrsPerKey_ * wordsPerLine, depth_);
        for (unsigned i = 0; i < wordsPerLine; ++i) {
            if (first + i < numKeys_) {
                ctx.setLineWord(i, fn_(first + i));
                ++evaluations_;
            }
        }
    }

  private:
    Fn fn_;
    std::uint64_t numKeys_;
    unsigned instrsPerKey_;
    unsigned depth_;
    Addr operandBase_;
    Addr base_ = 0;
    std::uint64_t evaluations_ = 0;
};

} // namespace tako

#endif // TAKO_MORPHS_MEMO_MORPH_HH
