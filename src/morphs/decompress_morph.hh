/**
 * @file
 * In-cache data transformation (Sec. 3): software-defined lossy
 * decompression. Values are stored compressed as a shared base per group
 * of eight plus one byte delta per value (similar to base-delta-immediate
 * [107]). The Morph exposes a phantom array of decompressed 64-bit
 * values; onMiss decompresses a full cache line (8 values), which is then
 * cached normally so locality eliminates redundant decompressions.
 */

#ifndef TAKO_MORPHS_DECOMPRESS_MORPH_HH
#define TAKO_MORPHS_DECOMPRESS_MORPH_HH

#include "tako/engine.hh"
#include "tako/morph.hh"

namespace tako
{

class DecompressMorph : public Morph
{
  public:
    /**
     * @param bases   address of the bases array (8B per 8 values)
     * @param deltas  address of the packed delta bytes (1B per value)
     * @param num_values  logical length of the decompressed array
     */
    DecompressMorph(Addr bases, Addr deltas, std::uint64_t num_values)
        : Morph(MorphTraits{
              .name = "decompress",
              .hasMiss = true,
              .hasEviction = false,
              .hasWriteback = false,
              .missKernel = {14, 4},
          }),
          bases_(bases),
          deltas_(deltas),
          numValues_(num_values)
    {
    }

    /** Attach the phantom range assigned at registration. */
    void bind(const MorphBinding *b) { base_ = b->base; }

    Task<> onMiss(EngineCtx &ctx) override;

    /** Values decompressed by the engine (Fig. 7). */
    std::uint64_t decompressions() const { return decompressions_; }

    /** Host-side expected value (for validation). */
    static std::uint64_t
    decompress(std::uint64_t base, std::uint64_t delta_word, unsigned i)
    {
        return base + ((delta_word >> (8 * i)) & 0xff);
    }

  private:
    Addr bases_;
    Addr deltas_;
    std::uint64_t numValues_;
    Addr base_ = 0;
    std::uint64_t decompressions_ = 0;
};

} // namespace tako

#endif // TAKO_MORPHS_DECOMPRESS_MORPH_HH
