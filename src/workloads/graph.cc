#include "workloads/graph.hh"

#include <algorithm>
#include <numeric>

namespace tako
{

void
Graph::materialize(BackingStore &store, Arena &arena)
{
    rowPtrAddr = arena.alloc(rowPtr.size() * 8);
    colIdxAddr = arena.alloc(colIdx.size() * 8);
    for (std::size_t i = 0; i < rowPtr.size(); ++i)
        store.write64(rowPtrAddr + i * 8, rowPtr[i]);
    for (std::size_t i = 0; i < colIdx.size(); ++i)
        store.write64(colIdxAddr + i * 8, colIdx[i]);
}

Graph
makeCommunityGraph(const GraphParams &params)
{
    Graph g;
    g.numVertices = params.numVertices;
    Rng rng(params.seed);

    // Community membership vs. the id space: mostly id-contiguous, with
    // an idScatter fraction displaced randomly (see GraphParams).
    const std::uint64_t n = params.numVertices;
    std::vector<std::uint32_t> perm(n);
    std::iota(perm.begin(), perm.end(), 0u);
    for (std::uint64_t i = 0; i < n; ++i) {
        if (rng.chance(params.idScatter))
            std::swap(perm[i], perm[rng.below(n)]);
    }
    // perm[v]: position of v in "community space"; community members of
    // community c are the vertices v with perm[v] / communitySize == c.
    std::vector<std::uint32_t> byCommunity(n);
    for (std::uint64_t v = 0; v < n; ++v)
        byCommunity[perm[v]] = static_cast<std::uint32_t>(v);

    const std::uint64_t csize = params.communitySize;
    const std::uint64_t numCommunities = divCeil(n, csize);

    // Degree: 1 + geometric-ish tail around avgDegree.
    auto draw_degree = [&]() -> unsigned {
        const unsigned base = params.avgDegree / 2;
        unsigned d = base + static_cast<unsigned>(
                                rng.below(params.avgDegree + 1));
        return std::max(1u, d);
    };

    g.rowPtr.resize(n + 1, 0);
    std::vector<unsigned> degrees(n);
    std::uint64_t total = 0;
    for (std::uint64_t v = 0; v < n; ++v) {
        degrees[v] = draw_degree();
        total += degrees[v];
    }
    g.numEdges = total;
    g.colIdx.reserve(total);

    for (std::uint64_t v = 0; v < n; ++v) {
        g.rowPtr[v] = g.colIdx.size();
        const std::uint64_t community = perm[v] / csize;
        const std::uint64_t cbase = community * csize;
        const std::uint64_t clen =
            std::min<std::uint64_t>(csize, n - cbase);
        for (unsigned e = 0; e < degrees[v]; ++e) {
            std::uint64_t dst;
            if (rng.chance(params.intraProb)) {
                dst = byCommunity[cbase + rng.below(clen)];
            } else {
                const std::uint64_t rc = rng.below(numCommunities);
                const std::uint64_t rbase = rc * csize;
                const std::uint64_t rlen =
                    std::min<std::uint64_t>(csize, n - rbase);
                dst = byCommunity[rbase + rng.below(rlen)];
            }
            g.colIdx.push_back(dst);
        }
    }
    g.rowPtr[n] = g.colIdx.size();
    return g;
}

std::vector<std::uint64_t>
pagerankPushReference(const Graph &g,
                      const std::vector<std::uint64_t> &rank)
{
    std::vector<std::uint64_t> next(g.numVertices, 0);
    for (std::uint64_t u = 0; u < g.numVertices; ++u) {
        const unsigned deg = g.degree(u);
        if (deg == 0)
            continue;
        const std::uint64_t contrib = rank[u] / deg;
        for (std::uint64_t e = g.rowPtr[u]; e < g.rowPtr[u + 1]; ++e)
            next[g.colIdx[e]] += contrib;
    }
    return next;
}

} // namespace tako
