#include "workloads/prime_probe.hh"

#include <algorithm>

#include "morphs/eviction_guard_morph.hh"

namespace tako
{

PrimeProbeResult
runPrimeProbe(bool with_tako, const PrimeProbeConfig &cfg,
              SystemConfig sys_cfg)
{
    // The attack needs deterministic set mapping; prefetching off keeps
    // the probe timing clean.
    sys_cfg.mem.prefetchEnable = false;
    System sys(sys_cfg);
    Arena arena;

    const Addr table = arena.alloc(cfg.tableLines * lineBytes);
    for (unsigned i = 0; i < cfg.tableLines * wordsPerLine; ++i)
        sys.mem().realStore().write64(table + i * 8, i);

    // Conflict set: lines mapping to the same L3 bank and set as table
    // line 0 (the monitored line). Stride = tiles * sets lines.
    const unsigned sets = static_cast<unsigned>(
        sys_cfg.mem.l3BankSize / lineBytes / sys_cfg.mem.l3Ways);
    const std::uint64_t period = std::uint64_t(sys_cfg.mem.tiles) * sets;
    const std::uint64_t stride_bytes = period * lineBytes;
    const unsigned w = sys_cfg.mem.l3Ways;
    const Addr probeBase = arena.alloc((w + 2) * stride_bytes);
    std::vector<Addr> probeAddrs;
    {
        Addr first = lineAlign(probeBase);
        while (lineNumber(first) % period != lineNumber(table) % period)
            first += lineBytes;
        for (unsigned k = 0; k < w; ++k)
            probeAddrs.push_back(first + k * stride_bytes);
    }

    // The victim's key-dependent secret: whether it touches the
    // monitored table line in each "encryption" round.
    Rng patternRng(cfg.seed);
    std::vector<bool> secret(cfg.rounds);
    for (unsigned r = 0; r < cfg.rounds; ++r)
        secret[r] = patternRng.chance(0.5);

    EvictionGuardMorph guard(/*victim_core=*/0);
    PrimeProbeResult res{};
    std::vector<bool> inferred(cfg.rounds, false);
    std::vector<bool> victimActive(cfg.rounds, true);
    bool defended = false;

    // Rounds are loosely synchronized in a real attack; we synchronize
    // them with a barrier so attack accuracy is exactly measurable.
    SimBarrier barrier(sys, 2);

    // ---------------- Victim (core 0) ----------------
    sys.addThread(0, [&](Guest &g) -> Task<> {
        const MorphBinding *binding = nullptr;
        if (with_tako) {
            binding = co_await g.registerReal(
                guard, MorphLevel::Shared, table,
                cfg.tableLines * lineBytes);
        }
        Rng rng(cfg.seed * 13 + 1);
        for (unsigned round = 0; round < cfg.rounds; ++round) {
            co_await barrier.arrive(); // attacker primed
            victimActive[round] = !defended;
            if (!defended) {
                for (unsigned a = 0; a < cfg.accessesPerRound; ++a) {
                    // Non-secret lookups spread over the other lines...
                    const unsigned line = 1 + static_cast<unsigned>(
                        rng.below(cfg.tableLines - 1));
                    co_await g.load(table + line * lineBytes);
                    co_await g.exec(20);
                }
                // ...plus the secret-dependent one.
                if (secret[round]) {
                    co_await g.load(table);
                    co_await g.exec(20);
                }
            }
            if (with_tako && !defended && g.takeInterrupts() > 0) {
                // Defend: stop using the vulnerable table (switch to a
                // masked implementation / re-key).
                res.detected = true;
                res.detectionTime = g.now();
                defended = true;
            }
            co_await barrier.arrive(); // attacker may probe
        }
        if (binding)
            co_await g.unregister(binding);
    });

    // ---------------- Attacker (core 1) ----------------
    sys.addThread(1, [&](Guest &g) -> Task<> {
        for (unsigned round = 0; round < cfg.rounds; ++round) {
            // Prime the target set.
            for (Addr a : probeAddrs)
                co_await g.load(a);
            co_await barrier.arrive(); // victim runs
            co_await barrier.arrive(); // victim done
            // Probe: long latency => the victim displaced one of ours.
            bool evicted = false;
            for (Addr a : probeAddrs) {
                const Tick t0 = g.now();
                co_await g.load(a);
                if (g.now() - t0 > cfg.probeThreshold)
                    evicted = true;
            }
            inferred[round] = evicted;
            ++res.roundsRun;
            if (evicted) {
                ++res.leakedRounds;
                if (!res.detected || g.now() <= res.detectionTime)
                    ++res.leaksBeforeDefense;
            }
        }
    });

    const Tick cycles = sys.run();
    res.metrics = collectMetrics(
        sys, with_tako ? "tako" : "baseline", cycles);

    unsigned correct = 0;
    for (unsigned r = 0; r < cfg.rounds; ++r) {
        // The attacker recovers the secret bit of every round the
        // victim was still active; after the defense kicks in, probes
        // reveal nothing and the attacker's inference is dead reckoning.
        const bool truth = secret[r] && victimActive[r];
        if (inferred[r] == truth && victimActive[r])
            ++correct;
        res.trueLeaks += (inferred[r] && truth) ? 1 : 0;
    }
    res.metrics.extra["attackAccuracy"] =
        static_cast<double>(correct) /
        std::max(1u, static_cast<unsigned>(
                         std::count(victimActive.begin(),
                                    victimActive.end(), true)));
    res.metrics.extra["secretBitsRecovered"] =
        static_cast<double>(res.trueLeaks);
    res.evictionTrace.reserve(guard.trace().size());
    for (const auto &e : guard.trace())
        res.evictionTrace.emplace_back(e.when, e.line);
    return res;
}

} // namespace tako
