/**
 * @file
 * Synthetic graph generation and CSR layout in simulated memory.
 *
 * The paper evaluates PHI on large synthetic graphs and HATS on uk-2002;
 * both are far beyond this harness's cycle-level budget, so we generate
 * smaller graphs with *planted community structure* — the property HATS
 * exploits (Sec. 8.2: "many graphs exhibit strong community structure")
 * — and scale cache sizes so the vertex data : LLC ratio matches the
 * paper's regime (see EXPERIMENTS.md).
 *
 * Generator: vertices are partitioned into communities; each edge is
 * intra-community with probability `intraProb`, else global-random.
 * Community membership is scattered over the vertex-id space by a
 * pseudorandom permutation, as in real graphs, so vertex-ordered
 * traversals get no community locality for free.
 */

#ifndef TAKO_WORKLOADS_GRAPH_HH
#define TAKO_WORKLOADS_GRAPH_HH

#include <cstdint>
#include <vector>

#include "mem/backing_store.hh"
#include "sim/random.hh"
#include "workloads/common.hh"

namespace tako
{

struct GraphParams
{
    std::uint64_t numVertices = 1 << 17;
    unsigned avgDegree = 10;
    unsigned communitySize = 512;
    double intraProb = 0.85;
    /**
     * Fraction of vertices whose id is scattered away from their
     * community's id range. Real web/social graphs keep most community
     * members adjacent in the id space (crawl order, user cohorts) with
     * a scattered minority; 1.0 reduces to a full random permutation.
     */
    double idScatter = 0.3;
    std::uint64_t seed = 12345;
};

struct Graph
{
    std::uint64_t numVertices = 0;
    std::uint64_t numEdges = 0;
    std::vector<std::uint64_t> rowPtr; ///< numVertices + 1
    std::vector<std::uint64_t> colIdx; ///< numEdges (destination ids)

    // Simulated-memory layout (after materialize()).
    Addr rowPtrAddr = 0;
    Addr colIdxAddr = 0;

    unsigned
    degree(std::uint64_t v) const
    {
        return static_cast<unsigned>(rowPtr[v + 1] - rowPtr[v]);
    }

    /** Write CSR arrays into the simulated functional memory. */
    void materialize(BackingStore &store, Arena &arena);
};

/** Generate a community-structured graph (see file comment). */
Graph makeCommunityGraph(const GraphParams &params);

/**
 * Host-side PageRank push reference, in the fixed-point integer
 * arithmetic the simulated kernels use: one iteration of
 * next[v] += rank[u] / deg(u) over all edges (u, v).
 */
std::vector<std::uint64_t>
pagerankPushReference(const Graph &g,
                      const std::vector<std::uint64_t> &rank);

} // namespace tako

#endif // TAKO_WORKLOADS_GRAPH_HH
