/**
 * @file
 * Append-only transactions on direct-access NVM with battery-backed
 * caches (Sec. 8.3, Figs. 19-20). A transaction appends txBytes to a
 * persistent log-structured region.
 *
 *  - Journaling: classic redo journaling — every word is written twice
 *    (journal, then home) plus journaling instructions.
 *  - Tako: writes stage in a phantom range (the persistent cache *is*
 *    the journal); commit flushes, and onWriteback copies committed
 *    lines straight to NVM. Lines evicted before commit fall back to
 *    the journal, which commit then replays.
 */

#ifndef TAKO_WORKLOADS_NVM_TX_HH
#define TAKO_WORKLOADS_NVM_TX_HH

#include "workloads/common.hh"

namespace tako
{

struct NvmTxConfig
{
    std::uint64_t txBytes = 16 * 1024;
    unsigned numTx = 32;
    /** Per-word journaling overhead instructions (headers, checksums). */
    unsigned journalInstrsPerWord = 3;
};

enum class NvmVariant
{
    Journaling,
    Tako,
    TakoIdeal,
};

const char *name(NvmVariant v);

/**
 * extra: "correct" (home region contents), "nvmWrites",
 * "coreInstrsPer8B"/"totalInstrsPer8B" (Fig. 20),
 * "journaledLines"/"directLines".
 */
RunMetrics runNvmTx(NvmVariant variant, const NvmTxConfig &cfg,
                    SystemConfig sys_cfg);

} // namespace tako

#endif // TAKO_WORKLOADS_NVM_TX_HH
