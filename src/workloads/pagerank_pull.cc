#include "workloads/pagerank_pull.hh"

#include <array>
#include <cstdlib>

#include "morphs/hats_morph.hh"

namespace tako
{

const char *
name(PullVariant v)
{
    switch (v) {
      case PullVariant::VertexOrdered:
        return "vertex-ordered";
      case PullVariant::SoftwareBdfs:
        return "sw-bdfs";
      case PullVariant::Hats:
        return "tako";
      case PullVariant::HatsIdeal:
        return "ideal";
    }
    return "?";
}

namespace
{

struct Layout
{
    Addr contrib;
    Addr next;
    Addr rank;
    Addr visited;
    Addr log;
    std::vector<std::uint64_t> contribHost;
    std::vector<std::uint64_t> reference;
};

Layout
setup(System &sys, Graph &g, const PagerankPullConfig &cfg, Arena &arena)
{
    Layout lay{};
    BackingStore &st = sys.mem().realStore();
    g.materialize(st, arena);
    const std::uint64_t n = g.numVertices;

    lay.contrib = arena.alloc(n * 8);
    lay.next = arena.alloc(n * 8);
    lay.rank = arena.alloc(n * 8);
    lay.visited = arena.alloc(divCeil(n, 64) * 8);
    lay.log = arena.alloc(g.numEdges * 8);

    lay.contribHost.resize(n);
    for (std::uint64_t v = 0; v < n; ++v) {
        const unsigned deg = g.degree(v);
        lay.contribHost[v] = deg ? cfg.rankScale / deg : 0;
        st.write64(lay.contrib + v * 8, lay.contribHost[v]);
        st.write64(lay.next + v * 8, 0);
        st.write64(lay.rank + v * 8, cfg.rankScale);
    }
    for (std::uint64_t w = 0; w < divCeil(n, 64); ++w)
        st.write64(lay.visited + w * 8, 0);

    lay.reference.assign(n, 0);
    for (std::uint64_t u = 0; u < n; ++u) {
        for (std::uint64_t e = g.rowPtr[u]; e < g.rowPtr[u + 1]; ++e)
            lay.reference[u] += lay.contribHost[g.colIdx[e]];
    }
    return lay;
}

} // namespace

RunMetrics
runPagerankPull(PullVariant variant, const PagerankPullConfig &cfg,
                SystemConfig sys_cfg)
{
    if (variant == PullVariant::HatsIdeal)
        sys_cfg.engine.kind = EngineKind::Ideal;
    System sys(sys_cfg);
    Graph g = makeCommunityGraph(cfg.graph);
    Arena arena;
    Layout lay = setup(sys, g, cfg, arena);
    const std::uint64_t n = g.numVertices;

    HatsMorph morph(g, lay.visited, lay.log, g.numEdges, cfg.bdfsBound,
                    cfg.bdfsDepth);

    std::array<std::uint64_t, 14> dtrace{};
    if (std::getenv("TAKO_DRAM_TRACE")) {
        sys.mem().setDramTracer([&](Addr a, bool w) {
            unsigned cls = 6; // other
            if (a >= g.rowPtrAddr && a < g.colIdxAddr)
                cls = 0;
            else if (a >= g.colIdxAddr && a < lay.contrib)
                cls = 1;
            else if (a >= lay.contrib && a < lay.next)
                cls = 2;
            else if (a >= lay.next && a < lay.rank)
                cls = 3;
            else if (a >= lay.rank && a < lay.visited)
                cls = 4;
            else if (a >= lay.visited)
                cls = 5;
            ++dtrace[cls * 2 + (w ? 1 : 0)];
        });
    }
    const MorphBinding *binding = nullptr;
    bool correct = false;

    sys.addThread(0, [&, variant](Guest &g2) -> Task<> {
        sys.mem().setPhase("edge");

        auto process_edge = [&](std::uint64_t u,
                                std::uint64_t v) -> Task<> {
            co_await g2.load(lay.contrib + v * 8);
            co_await g2.atomicAdd(lay.next + u * 8, lay.contribHost[v]);
            co_await g2.exec(2);
        };

        switch (variant) {
          case PullVariant::VertexOrdered: {
            for (std::uint64_t u = 0; u < n; ++u) {
                std::vector<Addr> raddr{g.rowPtrAddr + u * 8,
                                        g.rowPtrAddr + (u + 1) * 8};
                co_await g2.loadMulti(raddr, nullptr);
                co_await g2.exec(3);
                std::uint64_t acc = 0;
                for (std::uint64_t e = g.rowPtr[u]; e < g.rowPtr[u + 1];
                     e += 8) {
                    const unsigned batch = static_cast<unsigned>(
                        std::min<std::uint64_t>(8, g.rowPtr[u + 1] - e));
                    std::vector<Addr> eaddr;
                    for (unsigned k = 0; k < batch; ++k)
                        eaddr.push_back(g.colIdxAddr + (e + k) * 8);
                    co_await g2.loadMulti(eaddr, nullptr);
                    std::vector<Addr> caddr;
                    for (unsigned k = 0; k < batch; ++k)
                        caddr.push_back(lay.contrib +
                                        g.colIdx[e + k] * 8);
                    co_await g2.loadMulti(caddr, nullptr);
                    co_await g2.exec(2 * batch);
                    for (unsigned k = 0; k < batch; ++k) {
                        acc += lay.contribHost[g.colIdx[e + k]];
                        if (g2.rng().chance(cfg.mispredictVertexOrdered))
                            co_await g2.mispredict();
                    }
                }
                co_await g2.store(lay.next + u * 8, acc);
            }
            break;
          }

          case PullVariant::SoftwareBdfs: {
            // The core runs the same bounded DFS the engine would,
            // paying for stack management, visited-bitmap maintenance,
            // and unpredictable branches (Sec. 8.2). Independent loads
            // within a chunk still overlap in the OOO window.
            std::vector<bool> visited(n, false);
            struct SwFrame
            {
                std::uint64_t vertex;
                std::uint64_t cursor;
                unsigned depth;
            };
            std::vector<SwFrame> stack;
            std::uint64_t seed = 0;
            auto visit_batch =
                [&](const std::vector<std::uint64_t> &children,
                    unsigned depth) -> Task<> {
                if (children.empty())
                    co_return;
                std::vector<Addr> vaddr;
                std::vector<std::pair<Addr, std::uint64_t>> marks;
                for (std::uint64_t v : children) {
                    visited[v] = true;
                    vaddr.push_back(lay.visited + (v / 64) * 8);
                    vaddr.push_back(g.rowPtrAddr + v * 8);
                    vaddr.push_back(g.rowPtrAddr + (v + 1) * 8);
                    marks.emplace_back(lay.visited + (v / 64) * 8, 1);
                    stack.push_back(SwFrame{v, g.rowPtr[v], depth});
                }
                co_await g2.loadMulti(vaddr, nullptr);
                co_await g2.storeMulti(marks);
                co_await g2.exec(8 * children.size());
            };
            while (true) {
                if (stack.empty()) {
                    while (seed < n && visited[seed])
                        ++seed;
                    if (seed >= n)
                        break;
                    std::vector<std::uint64_t> seeds{seed};
                    co_await visit_batch(seeds, 0);
                    continue;
                }
                SwFrame f = stack.back();
                const std::uint64_t row_end = g.rowPtr[f.vertex + 1];
                if (f.cursor >= row_end) {
                    stack.pop_back();
                    co_await g2.exec(3);
                    if (g2.rng().chance(cfg.mispredictBdfs))
                        co_await g2.mispredict();
                    continue;
                }
                const unsigned take = static_cast<unsigned>(
                    std::min<std::uint64_t>(8, row_end - f.cursor));
                stack.back().cursor = f.cursor + take;
                std::vector<Addr> eaddr;
                for (unsigned k = 0; k < take; ++k)
                    eaddr.push_back(g.colIdxAddr + (f.cursor + k) * 8);
                co_await g2.loadMulti(eaddr, nullptr);
                std::vector<Addr> caddr;
                std::vector<std::uint64_t> children;
                std::uint64_t acc = 0;
                for (unsigned k = 0; k < take; ++k) {
                    const std::uint64_t v = g.colIdx[f.cursor + k];
                    caddr.push_back(lay.contrib + v * 8);
                    acc += lay.contribHost[v];
                    if (!visited[v] && f.depth < cfg.bdfsDepth &&
                        stack.size() + children.size() < cfg.bdfsBound) {
                        bool dup = false;
                        for (std::uint64_t c : children)
                            dup |= c == v;
                        if (!dup)
                            children.push_back(v);
                    }
                }
                co_await g2.loadMulti(caddr, nullptr);
                co_await g2.atomicAdd(lay.next + f.vertex * 8, acc);
                co_await g2.exec(10 * take); // stack + bounds management
                for (unsigned k = 0; k < take; ++k) {
                    if (g2.rng().chance(cfg.mispredictBdfs))
                        co_await g2.mispredict();
                }
                co_await visit_batch(children, f.depth + 1);
            }
            break;
          }

          case PullVariant::Hats:
          case PullVariant::HatsIdeal: {
            const std::uint64_t stream_words =
                divCeil(g.numEdges + wordsPerLine, wordsPerLine) *
                wordsPerLine;
            binding = co_await g2.registerPhantom(
                morph, MorphLevel::Private, stream_words * 8);
            morph.bind(binding);
            const Addr stream = binding->base;

            bool done = false;
            std::uint64_t ptr = 0;
            // Software-pipelined consume loop: the swap round for line
            // k+1 is issued while line k's edges are processed (the OOO
            // window spans loop iterations).
            std::vector<std::uint64_t> words;
            auto swap_line = [&](std::uint64_t p,
                                 std::vector<std::uint64_t> *out)
                -> Task<> {
                std::vector<Addr> saddr;
                for (unsigned k = 0; k < wordsPerLine; ++k)
                    saddr.push_back(stream + (p + k) * 8);
                co_await g2.atomicSwapMulti(
                    saddr, HatsMorph::invalidEdge, out);
            };
            co_await swap_line(ptr, &words);
            while (!done) {
                Join nextSwap(g2.eq());
                std::vector<std::uint64_t> nextWords;
                nextSwap.add();
                spawn(swap_line(ptr + wordsPerLine, &nextWords),
                      nextSwap.completion());

                std::vector<std::uint64_t> us, vs;
                for (std::uint64_t w : words) {
                    if (w == HatsMorph::doneEdge) {
                        done = true;
                        break;
                    }
                    if (w == HatsMorph::invalidEdge)
                        continue;
                    us.push_back(w >> 32);
                    vs.push_back(w & 0xffffffffu);
                }
                co_await g2.exec(3 * wordsPerLine);
                if (!vs.empty()) {
                    std::vector<Addr> caddr;
                    for (std::uint64_t v : vs)
                        caddr.push_back(lay.contrib + v * 8);
                    co_await g2.loadMulti(caddr, nullptr);
                    std::vector<std::pair<Addr, std::uint64_t>> adds;
                    for (std::size_t k = 0; k < us.size(); ++k) {
                        adds.emplace_back(lay.next + us[k] * 8,
                                          lay.contribHost[vs[k]]);
                    }
                    co_await g2.atomicAddMulti(adds);
                }
                for (std::size_t k = 0; k < us.size(); ++k) {
                    if (g2.rng().chance(cfg.mispredictStream))
                        co_await g2.mispredict();
                }
                co_await nextSwap.wait();
                words = std::move(nextWords);
                ptr += wordsPerLine;
            }

            // Recover edges evicted before consumption (Table 5).
            co_await g2.flushData(binding);
            const std::uint64_t logged = morph.edgesLogged();
            for (std::uint64_t i = 0; i < logged; i += 8) {
                const unsigned batch = static_cast<unsigned>(
                    std::min<std::uint64_t>(8, logged - i));
                std::vector<Addr> laddr;
                for (unsigned k = 0; k < batch; ++k)
                    laddr.push_back(morph.logAddr() + (i + k) * 8);
                std::vector<std::uint64_t> words;
                co_await g2.streamLoadMulti(laddr, &words);
                for (unsigned k = 0; k < batch; ++k) {
                    const std::uint64_t u = words[k] >> 32;
                    const std::uint64_t v = words[k] & 0xffffffffu;
                    co_await process_edge(u, v);
                }
            }
            co_await g2.unregister(binding);
            break;
          }
        }

        // Correctness gate before the vertex phase.
        correct = true;
        for (std::uint64_t v = 0; v < n; ++v) {
            if (sys.mem().realStore().read64(lay.next + v * 8) !=
                lay.reference[v]) {
                correct = false;
                break;
            }
        }

        // ---------------- Vertex phase ----------------
        sys.mem().setPhase("vertex");
        for (std::uint64_t v = 0; v < n; v += 8) {
            const unsigned batch = static_cast<unsigned>(
                std::min<std::uint64_t>(8, n - v));
            std::vector<Addr> addrs;
            for (unsigned k = 0; k < batch; ++k)
                addrs.push_back(lay.next + (v + k) * 8);
            std::vector<std::uint64_t> acc;
            co_await g2.loadMulti(addrs, &acc);
            co_await g2.exec(6 * batch);
            std::vector<std::pair<Addr, std::uint64_t>> writes;
            for (unsigned k = 0; k < batch; ++k) {
                writes.emplace_back(lay.rank + (v + k) * 8,
                                    cfg.rankScale * 15 / 100 +
                                        acc[k] * 85 / 100);
                writes.emplace_back(lay.next + (v + k) * 8, 0);
            }
            co_await g2.streamStoreMulti(writes);
        }
    });

    const Tick cycles = sys.run();
    if (std::getenv("TAKO_DRAM_TRACE")) {
        const char *names[] = {"rowPtr",  "colIdx", "contrib", "next",
                               "rank",    "vis/log", "other"};
        std::fprintf(stderr, "[dram %s]", name(variant));
        for (int c = 0; c < 7; ++c) {
            std::fprintf(stderr, " %s r=%llu w=%llu", names[c],
                         (unsigned long long)dtrace[c * 2],
                         (unsigned long long)dtrace[c * 2 + 1]);
        }
        std::fprintf(stderr, "\n");
    }
    RunMetrics m = collectMetrics(sys, name(variant), cycles);
    m.extra["correct"] = correct ? 1.0 : 0.0;
    m.extra["edges"] = static_cast<double>(g.numEdges);
    m.extra["dram.edge"] = sys.stats().get("dram.reads.edge") +
                           sys.stats().get("dram.writes.edge");
    m.extra["dram.vertex"] = sys.stats().get("dram.reads.vertex") +
                             sys.stats().get("dram.writes.vertex");
    m.extra["mispredictsPerEdge"] =
        sys.stats().get("core.mispredicts") /
        static_cast<double>(g.numEdges);
    m.extra["meanLoadLatency"] =
        sys.stats().histogram("core.loadLatency").mean();
    m.extra["edgesLogged"] = static_cast<double>(morph.edgesLogged());
    return m;
}

} // namespace tako
