/**
 * @file
 * Shared workload utilities: a simulated-memory arena allocator and the
 * metrics bundle every benchmark variant reports.
 */

#ifndef TAKO_WORKLOADS_COMMON_HH
#define TAKO_WORKLOADS_COMMON_HH

#include <map>
#include <memory>
#include <string>

#include "system/system.hh"

namespace tako
{

/**
 * Bump allocator for the simulated real address space. Workloads lay out
 * their arrays here before timing starts; values are written directly to
 * the functional store (program initialization is not part of the
 * measured region in the paper's experiments).
 */
class Arena
{
  public:
    explicit Arena(Addr base = 0x1000'0000) : next_(base) {}

    Addr
    alloc(std::uint64_t bytes, std::uint64_t align = lineBytes)
    {
        next_ = divCeil(next_, align) * align;
        const Addr p = next_;
        next_ += bytes;
        return p;
    }

    /** Allocate and zero-fill an array of @p n 64-bit words. */
    Addr
    allocWords(BackingStore &store, std::uint64_t n)
    {
        const Addr p = alloc(n * 8);
        for (std::uint64_t i = 0; i < n; ++i)
            store.write64(p + i * 8, 0);
        return p;
    }

  private:
    Addr next_;
};

/**
 * Reusable barrier for multi-threaded workload phases. All participants
 * must arrive before any proceeds; the barrier then resets itself.
 *
 * Partition-safe by construction: barrier state changes only inside
 * events at a fixed anchor tile. Each arriver posts an "arrived"
 * message to the anchor through the domain router (one quantum out, the
 * cross-domain minimum), where arrivals merge in the partition-invariant
 * (tick, priority, key) total order; the arrival that completes the
 * rendezvous releases every waiter by posting the resume back to its own
 * tile, another quantum out. Counting arrivals in the awaiter directly
 * would mutate shared host state from concurrently-executing domains —
 * a data race — and even run-to-run-stable arrival order is
 * domain-major, not the merged event order, so the release's key draws
 * (and with them every downstream tie-break) would depend on the
 * partition. The two-quantum round trip is a function of the NoC config
 * alone, so a sharded run times exactly like a monolithic one.
 */
class SimBarrier
{
  public:
    SimBarrier(System &sys, unsigned participants)
        : dom_(sys.domains()), participants_(participants)
    {
    }

    auto
    arrive()
    {
        struct Awaiter
        {
            SimBarrier &bar;

            bool await_ready() const noexcept { return false; }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                Domains &dom = bar.dom_;
                const int tile = dom.ctxTile();
                dom.post(kAnchorTile, dom.quantum(),
                         [b = &bar, tile, h]() { b->arrived(tile, h); });
            }

            void await_resume() const noexcept {}
        };
        return Awaiter{*this};
    }

  private:
    /** All barrier bookkeeping happens in this tile's events. */
    static constexpr int kAnchorTile = 0;

    void
    arrived(int tile, std::coroutine_handle<> h)
    {
        waiters_.emplace_back(tile, h);
        if (waiters_.size() < participants_)
            return;
        const auto batch = std::move(waiters_);
        waiters_.clear();
        for (const auto &[t, wh] : batch)
            dom_.post(t, dom_.quantum(), [wh]() { wh.resume(); });
    }

    Domains &dom_;
    unsigned participants_;
    std::vector<std::pair<int, std::coroutine_handle<>>> waiters_;
};

/** Metrics every variant of every case study reports. */
struct RunMetrics
{
    std::string label;
    Tick cycles = 0;
    double energy = 0;
    std::uint64_t coreInstrs = 0;
    std::uint64_t engineInstrs = 0;
    std::uint64_t dramReads = 0;
    std::uint64_t dramWrites = 0;
    std::uint64_t dramAccesses() const { return dramReads + dramWrites; }
    /** Case-study-specific outputs (decompressions, mispredicts, ...). */
    std::map<std::string, double> extra;

    /** Full stats snapshot from the run's System (counters, histograms,
     *  time series) for JSON export; shared because RunMetrics is
     *  copied around freely by the figure drivers. */
    std::shared_ptr<StatsRegistry> stats;

    /** takoprof profiler from the run's System; null unless the run was
     *  profiled. Already finalized (System::run does that), so it can
     *  outlive the System and be serialized at leisure. */
    std::shared_ptr<prof::Profiler> prof;

    double
    speedupOver(const RunMetrics &base) const
    {
        return static_cast<double>(base.cycles) /
               static_cast<double>(cycles);
    }

    double
    energyVs(const RunMetrics &base) const
    {
        return energy / base.energy;
    }
};

/** Snapshot system-wide metrics after run() completes. */
inline RunMetrics
collectMetrics(System &sys, std::string label, Tick cycles)
{
    RunMetrics m;
    m.label = std::move(label);
    m.cycles = cycles;
    m.energy = sys.totalEnergy();
    m.coreInstrs =
        static_cast<std::uint64_t>(sys.stats().get("core.instrs"));
    m.engineInstrs =
        static_cast<std::uint64_t>(sys.stats().get("engine.instrs"));
    m.dramReads = sys.mem().dramReads();
    m.dramWrites = sys.mem().dramWrites();
    m.stats = std::make_shared<StatsRegistry>(sys.stats());
    m.prof = sys.profilerShared();
    // Surface kernel throughput in bench tables / Reporter metrics
    // ("<label>.host.events_per_sec"). Host-side only — never gated.
    if (double eps = sys.stats().get("host.events_per_sec"); eps > 0) {
        m.extra["host.events_per_sec"] = eps;
        m.extra["host.seconds"] = sys.stats().get("host.seconds");
    }
    return m;
}

} // namespace tako

#endif // TAKO_WORKLOADS_COMMON_HH
