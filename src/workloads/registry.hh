/**
 * @file
 * Name-indexed registry of runnable workloads.
 *
 * One table maps every frontend a System can drive — the case-study
 * workloads and the takotrace replay — to its valid variants and a
 * uniform runner, so drivers (takosim, tests) dispatch by name instead
 * of growing per-workload if-chains.
 */

#ifndef TAKO_WORKLOADS_REGISTRY_HH
#define TAKO_WORKLOADS_REGISTRY_HH

#include <functional>
#include <string>
#include <vector>

#include "workloads/common.hh"

namespace tako
{

/** Superset of runner inputs; each workload reads what it needs. */
struct WorkloadRequest
{
    std::string variant;
    std::uint64_t seed = 1;
    unsigned cores = 16;
    std::uint64_t vertices = 1 << 14; ///< phi / hats graph size
    std::uint64_t txBytes = 16 * 1024; ///< nvm transaction size
    std::string tracePath;       ///< "trace" workload: file to replay
    std::string traceRecordPath; ///< "trace" workload: re-record output
};

struct WorkloadEntry
{
    std::string name;
    /** Valid --variant values; empty for variant-less workloads (the
     *  trace replay takes its behavior from the trace file). */
    std::vector<std::string> variants;

    /**
     * Run on a system built from @p sys (seed already applied by the
     * caller). A failed run sets @p err and returns a default-
     * constructed RunMetrics. The request's variant is pre-validated
     * against `variants` by callers using findWorkload().
     */
    std::function<RunMetrics(const WorkloadRequest &req, SystemConfig sys,
                             std::string &err)>
        run;

    /** Space-joined variants, for help/error text. */
    std::string variantHelp() const;
};

/** All registered workloads, in listing order. */
const std::vector<WorkloadEntry> &workloadRegistry();

/** Entry for @p name, or nullptr. */
const WorkloadEntry *findWorkload(const std::string &name);

} // namespace tako

#endif // TAKO_WORKLOADS_REGISTRY_HH
