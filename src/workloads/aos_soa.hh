/**
 * @file
 * trrîp ablation workload (Sec. 5.2): an AoS->SoA gather Morph streams
 * one field out of an array of structs while the core keeps a hot
 * working set live. The Morph's engine gathers touch eight dead real
 * lines per phantom line; without trrîp's low-priority insertion they
 * evict the hot set and the phantom stream ("> 4x" claim).
 */

#ifndef TAKO_WORKLOADS_AOS_SOA_HH
#define TAKO_WORKLOADS_AOS_SOA_HH

#include "workloads/common.hh"

namespace tako
{

struct AosSoaConfig
{
    std::uint64_t numElems = 16 * 1024;
    unsigned structWords = 8; ///< one line per element
    unsigned field = 3;
    std::uint64_t hotBytes = 16 * 1024;
    unsigned hotAccessesPerLine = 24;
    std::uint64_t seed = 7;
};

/** Run the gather workload; @p low_priority_insertion selects trrîp. */
RunMetrics runAosSoa(bool low_priority_insertion, const AosSoaConfig &cfg,
                     SystemConfig sys_cfg);

} // namespace tako

#endif // TAKO_WORKLOADS_AOS_SOA_HH
