#include "workloads/registry.hh"

#include <map>

#include "trace/replay.hh"
#include "workloads/aos_soa.hh"
#include "workloads/decompress.hh"
#include "workloads/nvm_tx.hh"
#include "workloads/pagerank_pull.hh"
#include "workloads/pagerank_push.hh"
#include "workloads/prime_probe.hh"

namespace tako
{

std::string
WorkloadEntry::variantHelp() const
{
    std::string s;
    for (const std::string &v : variants) {
        if (!s.empty())
            s += " ";
        s += v;
    }
    return s;
}

namespace
{

RunMetrics
runDecompressEntry(const WorkloadRequest &req, SystemConfig sys,
                   std::string &)
{
    DecompressConfig cfg;
    cfg.seed = req.seed;
    const std::map<std::string, DecompressVariant> v{
        {"baseline", DecompressVariant::Baseline},
        {"precompute", DecompressVariant::Precompute},
        {"ndc", DecompressVariant::Ndc},
        {"tako", DecompressVariant::Tako},
        {"ideal", DecompressVariant::TakoIdeal}};
    return runDecompress(v.at(req.variant), cfg, sys);
}

RunMetrics
runPhiEntry(const WorkloadRequest &req, SystemConfig sys, std::string &)
{
    PagerankPushConfig cfg;
    cfg.graph.numVertices = req.vertices;
    cfg.graph.seed = req.seed;
    cfg.threads = req.cores;
    cfg.regionVertices = 256;
    const std::map<std::string, PushVariant> v{
        {"baseline", PushVariant::Baseline},
        {"ub", PushVariant::UpdateBatching},
        {"tako", PushVariant::Phi},
        {"ideal", PushVariant::PhiIdeal}};
    return runPagerankPush(v.at(req.variant), cfg, sys);
}

RunMetrics
runHatsEntry(const WorkloadRequest &req, SystemConfig sys, std::string &)
{
    PagerankPullConfig cfg;
    cfg.graph.numVertices = req.vertices;
    cfg.graph.seed = req.seed;
    const std::map<std::string, PullVariant> v{
        {"baseline", PullVariant::VertexOrdered},
        {"sw-bdfs", PullVariant::SoftwareBdfs},
        {"tako", PullVariant::Hats},
        {"ideal", PullVariant::HatsIdeal}};
    return runPagerankPull(v.at(req.variant), cfg, sys);
}

RunMetrics
runNvmEntry(const WorkloadRequest &req, SystemConfig sys, std::string &)
{
    NvmTxConfig cfg;
    cfg.txBytes = req.txBytes;
    const std::map<std::string, NvmVariant> v{
        {"baseline", NvmVariant::Journaling},
        {"tako", NvmVariant::Tako},
        {"ideal", NvmVariant::TakoIdeal}};
    return runNvmTx(v.at(req.variant), cfg, sys);
}

RunMetrics
runPrimeProbeEntry(const WorkloadRequest &req, SystemConfig sys,
                   std::string &)
{
    PrimeProbeConfig cfg;
    cfg.seed = req.seed;
    PrimeProbeResult r =
        runPrimeProbe(req.variant == "tako", cfg, sys);
    r.metrics.extra["primeprobe.detected"] = r.detected ? 1 : 0;
    r.metrics.extra["primeprobe.bits_recovered"] = r.trueLeaks;
    return r.metrics;
}

RunMetrics
runAosSoaEntry(const WorkloadRequest &req, SystemConfig sys,
               std::string &)
{
    AosSoaConfig cfg;
    cfg.seed = req.seed;
    return runAosSoa(req.variant != "srrip", cfg, sys);
}

RunMetrics
runTraceEntry(const WorkloadRequest &req, SystemConfig sys,
              std::string &err)
{
    trace::TraceReplayConfig cfg;
    cfg.path = req.tracePath;
    cfg.recordPath = req.traceRecordPath;
    trace::TraceReplayResult res = trace::runTraceReplay(cfg, sys);
    if (!res.ok) {
        err = res.error;
        return RunMetrics{};
    }
    return res.metrics;
}

} // namespace

const std::vector<WorkloadEntry> &
workloadRegistry()
{
    static const std::vector<WorkloadEntry> table = {
        {"decompress",
         {"baseline", "precompute", "ndc", "tako", "ideal"},
         runDecompressEntry},
        {"phi", {"baseline", "ub", "tako", "ideal"}, runPhiEntry},
        {"hats", {"baseline", "sw-bdfs", "tako", "ideal"}, runHatsEntry},
        {"nvm", {"baseline", "tako", "ideal"}, runNvmEntry},
        {"primeprobe", {"baseline", "tako"}, runPrimeProbeEntry},
        {"aossoa", {"srrip", "tako"}, runAosSoaEntry},
        {"trace", {}, runTraceEntry},
    };
    return table;
}

const WorkloadEntry *
findWorkload(const std::string &name)
{
    for (const WorkloadEntry &e : workloadRegistry()) {
        if (e.name == name)
            return &e;
    }
    return nullptr;
}

} // namespace tako
