/**
 * @file
 * Prime+probe side-channel attack on shared-L3 AES table accesses
 * (Sec. 8.4, Fig. 21). The attacker primes one L3 set with its own
 * lines, lets the victim run, then probes: long reload latency reveals
 * that the victim touched that set, leaking its key-dependent access
 * pattern. With täkō, the victim registers an eviction-guard Morph over
 * the table; the attacker's priming evicts a table line, onEviction
 * interrupts the victim, and the victim defends itself before the probe
 * leaks anything.
 */

#ifndef TAKO_WORKLOADS_PRIME_PROBE_HH
#define TAKO_WORKLOADS_PRIME_PROBE_HH

#include "workloads/common.hh"

namespace tako
{

struct PrimeProbeConfig
{
    unsigned tableLines = 64;   ///< AES T-tables: 4KB
    unsigned rounds = 64;       ///< prime+probe rounds
    unsigned accessesPerRound = 16; ///< victim table accesses per round
    std::uint64_t seed = 99;
    /** Latency above which a probe counts as a miss (cycles). */
    Tick probeThreshold = 40;
};

struct PrimeProbeResult
{
    RunMetrics metrics;
    unsigned roundsRun = 0;
    /** Rounds in which the attacker observed an eviction (leak signal). */
    unsigned leakedRounds = 0;
    /** Of those, rounds where the victim really touched the target. */
    unsigned trueLeaks = 0;
    bool detected = false;       ///< victim saw the guard interrupt
    Tick detectionTime = 0;      ///< first interrupt
    unsigned leaksBeforeDefense = 0;
    /** Eviction trace (Fig. 21b). */
    std::vector<std::pair<Tick, Addr>> evictionTrace;
};

PrimeProbeResult runPrimeProbe(bool with_tako,
                               const PrimeProbeConfig &cfg,
                               SystemConfig sys_cfg);

} // namespace tako

#endif // TAKO_WORKLOADS_PRIME_PROBE_HH
