#include "workloads/aos_soa.hh"

#include "morphs/aos_soa_morph.hh"

namespace tako
{

RunMetrics
runAosSoa(bool low_priority_insertion, const AosSoaConfig &cfg,
          SystemConfig sys_cfg)
{
    // trrîp vs. plain SRRIP insertion for engine fills.
    sys_cfg.mem.l2Repl =
        low_priority_insertion ? ReplPolicy::Trrip : ReplPolicy::Srrip;
    sys_cfg.mem.l3Repl = sys_cfg.mem.l2Repl;
    System sys(sys_cfg);
    Arena arena;
    BackingStore &st = sys.mem().realStore();

    const Addr aos =
        arena.alloc(cfg.numElems * cfg.structWords * 8);
    for (std::uint64_t i = 0; i < cfg.numElems; ++i) {
        st.write64(aos + (i * cfg.structWords + cfg.field) * 8, i * 3 + 1);
    }
    const std::uint64_t hotWords = cfg.hotBytes / 8;
    const Addr hot = arena.allocWords(st, hotWords);

    AosToSoaMorph morph(aos, cfg.structWords, cfg.field, cfg.numElems);
    std::uint64_t sum = 0, hotSum = 0;
    std::uint64_t expected = 0;
    for (std::uint64_t i = 0; i < cfg.numElems; ++i)
        expected += i * 3 + 1;

    sys.addThread(0, [&](Guest &g) -> Task<> {
        const MorphBinding *binding = co_await g.registerPhantom(
            morph, MorphLevel::Private, cfg.numElems * 8);
        morph.bind(binding);
        Rng rng(cfg.seed);
        for (std::uint64_t i = 0; i < cfg.numElems; i += 8) {
            const unsigned batch = static_cast<unsigned>(
                std::min<std::uint64_t>(8, cfg.numElems - i));
            std::vector<Addr> addrs;
            for (unsigned k = 0; k < batch; ++k)
                addrs.push_back(binding->base + (i + k) * 8);
            std::vector<std::uint64_t> vals;
            co_await g.loadMulti(addrs, &vals);
            co_await g.exec(2 * batch);
            for (unsigned k = 0; k < batch; ++k)
                sum += vals[k];
            // Keep a hot working set live between stream lines.
            std::vector<Addr> haddr;
            for (unsigned k = 0; k < cfg.hotAccessesPerLine; ++k)
                haddr.push_back(hot + rng.below(hotWords) * 8);
            std::vector<std::uint64_t> hvals;
            co_await g.loadMulti(haddr, &hvals);
            co_await g.exec(2 * cfg.hotAccessesPerLine);
            for (std::uint64_t v : hvals)
                hotSum += v;
        }
        co_await g.unregister(binding);
    });

    const Tick cycles = sys.run();
    RunMetrics m = collectMetrics(
        sys, low_priority_insertion ? "trrip" : "srrip", cycles);
    m.extra["correct"] = sum == expected ? 1.0 : 0.0;
    m.extra["l2missRate"] =
        sys.stats().get("l2.misses") /
        (sys.stats().get("l2.hits") + sys.stats().get("l2.misses"));
    return m;
}

} // namespace tako
