#include "workloads/pagerank_push.hh"

#include <array>
#include <cstdlib>

#include "morphs/phi_morph.hh"

namespace tako
{

const char *
name(PushVariant v)
{
    switch (v) {
      case PushVariant::Baseline:
        return "baseline";
      case PushVariant::UpdateBatching:
        return "ub";
      case PushVariant::Phi:
        return "phi";
      case PushVariant::PhiIdeal:
        return "ideal";
    }
    return "?";
}

namespace
{

struct Layout
{
    Addr rank;
    Addr next;
    Addr bins; ///< UB: per (thread, region); PHI: per (bank, region)
    std::uint64_t binCapBytes;
    unsigned numRegions;
    std::vector<std::uint64_t> reference;
};

Layout
setup(System &sys, Graph &g, const PagerankPushConfig &cfg,
      unsigned threads, Arena &arena)
{
    Layout lay{};
    BackingStore &st = sys.mem().realStore();
    g.materialize(st, arena);

    const std::uint64_t n = g.numVertices;
    lay.rank = arena.alloc(n * 8);
    lay.next = arena.alloc(n * 8);
    for (std::uint64_t v = 0; v < n; ++v) {
        st.write64(lay.rank + v * 8, cfg.rankScale);
        st.write64(lay.next + v * 8, 0);
    }
    lay.numRegions = static_cast<unsigned>(
        divCeil(n, cfg.regionVertices));
    const unsigned lanes = std::max(threads, sys.numCores());
    // Size bins exactly: per-thread destination-region histograms give
    // the worst case (communities concentrate a thread's pushes into a
    // few regions). PHI's per-bank split cannot exceed the same bound.
    std::uint64_t worst = 0;
    {
        std::vector<std::uint64_t> hist(std::size_t(threads) *
                                        lay.numRegions);
        for (std::uint64_t u = 0; u < n; ++u) {
            const std::uint64_t tid =
                std::min<std::uint64_t>(threads - 1, u * threads / n);
            for (std::uint64_t e = g.rowPtr[u]; e < g.rowPtr[u + 1];
                 ++e) {
                const unsigned region = static_cast<unsigned>(
                    g.colIdx[e] / cfg.regionVertices);
                worst = std::max(
                    worst, ++hist[tid * lay.numRegions + region]);
            }
        }
    }
    lay.binCapBytes =
        divCeil((worst + 8) * 16 + 4096, lineBytes) * lineBytes;
    lay.bins = arena.alloc(std::uint64_t(lanes) * lay.numRegions *
                           lay.binCapBytes);

    std::vector<std::uint64_t> rank(n, cfg.rankScale);
    lay.reference = pagerankPushReference(g, rank);
    return lay;
}

} // namespace

RunMetrics
runPagerankPush(PushVariant variant, const PagerankPushConfig &cfg,
                SystemConfig sys_cfg)
{
    if (variant == PushVariant::PhiIdeal)
        sys_cfg.engine.kind = EngineKind::Ideal;
    System sys(sys_cfg);
    const unsigned threads =
        std::min(cfg.threads, sys.numCores());

    Graph g = makeCommunityGraph(cfg.graph);
    Arena arena;
    Layout lay = setup(sys, g, cfg, threads, arena);
    const std::uint64_t n = g.numVertices;

    const bool is_phi =
        variant == PushVariant::Phi || variant == PushVariant::PhiIdeal;

    PhiMorph morph(lay.next, n, lay.bins, cfg.regionVertices,
                   sys.numCores(), lay.binCapBytes, cfg.phiThreshold);
    const MorphBinding *binding = nullptr;

    // UB: per-thread bin cursors (host bookkeeping of simulated bins).
    std::vector<std::uint64_t> ubCursor(
        std::size_t(threads) * lay.numRegions, 0);
    auto ub_bin_addr = [&](unsigned tid, unsigned region) {
        return lay.bins + (std::uint64_t(tid) * lay.numRegions + region) *
                              lay.binCapBytes;
    };
    // Software propagation blocking stages 4 entries (one 64B line) per
    // bin in L1-resident buffers and flushes with full-line streaming
    // stores [14, 70]; leftovers are applied directly at phase end.
    struct UbStaged
    {
        std::uint64_t vertex[4];
        std::uint64_t delta[4];
        unsigned count = 0;
    };
    std::vector<UbStaged> ubStaging(std::size_t(threads) *
                                    lay.numRegions);

    SimBarrier barrier(sys, threads);
    bool correct = false;
    Tick edgeEnd = 0;

    // Optional DRAM traffic classification (TAKO_DRAM_TRACE=1).
    std::array<std::uint64_t, 12> trace{};
    if (std::getenv("TAKO_DRAM_TRACE")) {
        sys.mem().setDramTracer([&](Addr a, bool w) {
            if (sys.mem().phase() != "bin")
                return;
            unsigned cls = 5; // other
            if (a >= g.rowPtrAddr && a < g.colIdxAddr)
                cls = 0;
            else if (a >= g.colIdxAddr && a < lay.rank)
                cls = 1;
            else if (a >= lay.rank && a < lay.next)
                cls = 2;
            else if (a >= lay.next && a < lay.bins)
                cls = 3;
            else if (a >= lay.bins)
                cls = 4;
            ++trace[cls * 2 + (w ? 1 : 0)];
        });
    }

    for (unsigned tid = 0; tid < threads; ++tid) {
        sys.addThread(static_cast<int>(tid), [&, tid](Guest &g2) -> Task<> {
            const std::uint64_t ubegin = tid * n / threads;
            const std::uint64_t uend = (tid + 1) * n / threads;

            if (tid == 0) {
                if (is_phi) {
                    binding = co_await g2.registerPhantom(
                        morph, MorphLevel::Shared, n * 8);
                    morph.bind(binding);
                }
                sys.mem().setPhase("edge");
            }
            co_await barrier.arrive();

            // ---------------- Edge phase ----------------
            for (std::uint64_t u = ubegin; u < uend; ++u) {
                std::vector<std::uint64_t> meta;
                std::vector<Addr> maddr{lay.rank + u * 8,
                                        g.rowPtrAddr + u * 8,
                                        g.rowPtrAddr + (u + 1) * 8};
                co_await g2.loadMulti(maddr, &meta);
                const unsigned deg = g.degree(u);
                if (deg == 0)
                    continue;
                const std::uint64_t contrib = meta[0] / deg;
                co_await g2.exec(8); // divide + loop setup

                for (std::uint64_t e = g.rowPtr[u]; e < g.rowPtr[u + 1];
                     e += 8) {
                    const unsigned batch = static_cast<unsigned>(
                        std::min<std::uint64_t>(8, g.rowPtr[u + 1] - e));
                    std::vector<Addr> eaddr;
                    for (unsigned k = 0; k < batch; ++k)
                        eaddr.push_back(g.colIdxAddr + (e + k) * 8);
                    co_await g2.loadMulti(eaddr, nullptr);

                    switch (variant) {
                      case PushVariant::Baseline: {
                        std::vector<std::pair<Addr, std::uint64_t>> adds;
                        for (unsigned k = 0; k < batch; ++k) {
                            adds.emplace_back(
                                lay.next + g.colIdx[e + k] * 8, contrib);
                        }
                        co_await g2.exec(2 * batch);
                        co_await g2.atomicAddMulti(adds);
                        break;
                      }
                      case PushVariant::UpdateBatching: {
                        std::vector<std::pair<Addr, std::uint64_t>> writes;
                        for (unsigned k = 0; k < batch; ++k) {
                            const std::uint64_t dst = g.colIdx[e + k];
                            const unsigned region = static_cast<unsigned>(
                                dst / cfg.regionVertices);
                            const std::size_t slot =
                                std::size_t(tid) * lay.numRegions +
                                region;
                            UbStaged &st = ubStaging[slot];
                            st.vertex[st.count] = dst;
                            st.delta[st.count] = contrib;
                            if (++st.count < 4)
                                continue;
                            st.count = 0;
                            std::uint64_t &cur = ubCursor[slot];
                            panic_if((cur + 4) * 16 > lay.binCapBytes,
                                     "UB bin overflow");
                            const Addr entry =
                                ub_bin_addr(tid, region) + cur * 16;
                            for (unsigned x = 0; x < 4; ++x) {
                                writes.emplace_back(entry + x * 16,
                                                    st.vertex[x]);
                                writes.emplace_back(entry + x * 16 + 8,
                                                    st.delta[x]);
                            }
                            cur += 4;
                        }
                        co_await g2.exec(4 * batch);
                        if (!writes.empty())
                            co_await g2.streamStoreMulti(writes);
                        break;
                      }
                      case PushVariant::Phi:
                      case PushVariant::PhiIdeal: {
                        co_await g2.exec(2 * batch);
                        for (unsigned k = 0; k < batch; ++k) {
                            co_await g2.rmoAdd(
                                binding->base + g.colIdx[e + k] * 8,
                                contrib);
                        }
                        break;
                      }
                    }
                }
            }
            if (is_phi)
                co_await g2.rmoDrain();
            if (variant == PushVariant::UpdateBatching) {
                // Drain this thread's staged leftovers directly.
                std::vector<std::pair<Addr, std::uint64_t>> adds;
                for (unsigned r = 0; r < lay.numRegions; ++r) {
                    UbStaged &st =
                        ubStaging[std::size_t(tid) * lay.numRegions + r];
                    for (unsigned x = 0; x < st.count; ++x) {
                        adds.emplace_back(lay.next + st.vertex[x] * 8,
                                          st.delta[x]);
                    }
                    st.count = 0;
                }
                co_await g2.exec(2 * adds.size());
                co_await g2.atomicAddMulti(adds);
            }
            co_await barrier.arrive();

            // ---------------- Bin phase ----------------
            if (tid == 0) {
                sys.mem().setPhase("bin");
                edgeEnd = g2.now();
                if (is_phi) {
                    co_await g2.flushData(binding);
                    // Apply staged bin leftovers from the engine views.
                    auto staged = morph.takeStaged();
                    std::vector<std::pair<Addr, std::uint64_t>> adds;
                    adds.reserve(staged.size());
                    for (const auto &[v, d] : staged)
                        adds.emplace_back(lay.next + v * 8, d);
                    co_await g2.exec(2 * adds.size());
                    co_await g2.atomicAddMulti(adds);
                }
            }
            co_await barrier.arrive();

            if (variant == PushVariant::UpdateBatching) {
                for (unsigned r = tid; r < lay.numRegions; r += threads) {
                    for (unsigned t2 = 0; t2 < threads; ++t2) {
                        const std::uint64_t count =
                            ubCursor[std::size_t(t2) * lay.numRegions + r];
                        for (std::uint64_t i = 0; i < count; i += 8) {
                            const unsigned batch =
                                static_cast<unsigned>(
                                    std::min<std::uint64_t>(8, count - i));
                            std::vector<Addr> addrs;
                            for (unsigned k = 0; k < batch; ++k) {
                                const Addr entry = ub_bin_addr(t2, r) +
                                                   (i + k) * 16;
                                addrs.push_back(entry);
                                addrs.push_back(entry + 8);
                            }
                            std::vector<std::uint64_t> vals;
                            co_await g2.streamLoadMulti(addrs, &vals);
                            std::vector<std::pair<Addr, std::uint64_t>>
                                adds;
                            for (unsigned k = 0; k < batch; ++k) {
                                adds.emplace_back(
                                    lay.next + vals[2 * k] * 8,
                                    vals[2 * k + 1]);
                            }
                            co_await g2.exec(3 * batch);
                            co_await g2.atomicAddMulti(adds);
                        }
                    }
                }
            } else if (is_phi) {
                for (unsigned r = tid; r < lay.numRegions; r += threads) {
                    for (unsigned b = 0; b < sys.numCores(); ++b) {
                        const std::uint64_t count = morph.binCount(b, r);
                        for (std::uint64_t i = 0; i < count; i += 8) {
                            const unsigned batch =
                                static_cast<unsigned>(
                                    std::min<std::uint64_t>(8, count - i));
                            std::vector<Addr> addrs;
                            for (unsigned k = 0; k < batch; ++k) {
                                const Addr entry =
                                    morph.binAddr(b, r) + (i + k) * 16;
                                addrs.push_back(entry);
                                addrs.push_back(entry + 8);
                            }
                            std::vector<std::uint64_t> vals;
                            co_await g2.streamLoadMulti(addrs, &vals);
                            std::vector<std::pair<Addr, std::uint64_t>>
                                adds;
                            for (unsigned k = 0; k < batch; ++k) {
                                adds.emplace_back(
                                    lay.next + vals[2 * k] * 8,
                                    vals[2 * k + 1]);
                            }
                            co_await g2.exec(3 * batch);
                            co_await g2.atomicAddMulti(adds);
                        }
                    }
                }
            }
            co_await barrier.arrive();

            // Correctness gate: the accumulators must now match the
            // host-side reference.
            if (tid == 0) {
                correct = true;
                for (std::uint64_t v = 0; v < n; ++v) {
                    if (sys.mem().realStore().read64(lay.next + v * 8) !=
                        lay.reference[v]) {
                        correct = false;
                        break;
                    }
                }
                sys.mem().setPhase("vertex");
            }
            co_await barrier.arrive();

            // ---------------- Vertex phase ----------------
            for (std::uint64_t v = ubegin; v < uend; v += 8) {
                const unsigned batch = static_cast<unsigned>(
                    std::min<std::uint64_t>(8, uend - v));
                std::vector<Addr> addrs;
                for (unsigned k = 0; k < batch; ++k)
                    addrs.push_back(lay.next + (v + k) * 8);
                std::vector<std::uint64_t> acc;
                co_await g2.loadMulti(addrs, &acc);
                co_await g2.exec(6 * batch);
                std::vector<std::pair<Addr, std::uint64_t>> writes;
                for (unsigned k = 0; k < batch; ++k) {
                    const std::uint64_t newRank =
                        cfg.rankScale * 15 / 100 + acc[k] * 85 / 100;
                    writes.emplace_back(lay.rank + (v + k) * 8, newRank);
                    writes.emplace_back(lay.next + (v + k) * 8, 0);
                }
                co_await g2.streamStoreMulti(writes);
            }
            co_await barrier.arrive();
            if (tid == 0 && is_phi)
                co_await g2.unregister(binding);
        });
    }

    const Tick cycles = sys.run();
    RunMetrics m = collectMetrics(sys, name(variant), cycles);
    m.extra["correct"] = correct ? 1.0 : 0.0;
    m.extra["edgeCycles"] = static_cast<double>(edgeEnd);
    m.extra["dram.edge"] = sys.stats().get("dram.reads.edge") +
                           sys.stats().get("dram.writes.edge");
    m.extra["dram.bin"] = sys.stats().get("dram.reads.bin") +
                          sys.stats().get("dram.writes.bin");
    m.extra["dram.vertex"] = sys.stats().get("dram.reads.vertex") +
                             sys.stats().get("dram.writes.vertex");
    if (std::getenv("TAKO_DRAM_TRACE")) {
        const char *names[] = {"rowPtr", "colIdx", "rank",
                               "next",   "bins",   "other"};
        std::fprintf(stderr, "[dram trace %s]", name(variant));
        for (int c = 0; c < 6; ++c) {
            std::fprintf(stderr, " %s r=%llu w=%llu", names[c],
                         (unsigned long long)trace[c * 2],
                         (unsigned long long)trace[c * 2 + 1]);
        }
        std::fprintf(stderr, "\n");
    }
    m.extra["dram.readsTotal"] = sys.stats().get("dram.reads");
    m.extra["dram.writesTotal"] = sys.stats().get("dram.writes");
    m.extra["prefetches"] = sys.stats().get("prefetch.issued");
    m.extra["l3misses"] = sys.stats().get("l3.misses");
    m.extra["invalidations"] =
        sys.stats().get("coherence.invalidations");
    m.extra["l3evictions"] = sys.stats().get("l3.evictions");
    m.extra["inPlaceLines"] = static_cast<double>(morph.inPlaceLines());
    m.extra["binnedUpdates"] =
        static_cast<double>(morph.binnedUpdates());
    m.extra["edges"] = static_cast<double>(g.numEdges);
    return m;
}

} // namespace tako
