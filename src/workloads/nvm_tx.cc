#include "workloads/nvm_tx.hh"

#include "morphs/nvm_morph.hh"

namespace tako
{

const char *
name(NvmVariant v)
{
    switch (v) {
      case NvmVariant::Journaling:
        return "journaling";
      case NvmVariant::Tako:
        return "tako";
      case NvmVariant::TakoIdeal:
        return "ideal";
    }
    return "?";
}

RunMetrics
runNvmTx(NvmVariant variant, const NvmTxConfig &cfg, SystemConfig sys_cfg)
{
    if (variant == NvmVariant::TakoIdeal)
        sys_cfg.engine.kind = EngineKind::Ideal;
    System sys(sys_cfg);
    Arena arena;

    const std::uint64_t words_per_tx = cfg.txBytes / 8;
    const std::uint64_t total_bytes =
        std::uint64_t(cfg.numTx) * cfg.txBytes;
    const Addr home = arena.alloc(total_bytes);
    const Addr journal =
        arena.alloc(2 * (cfg.txBytes + 4096) * (lineBytes + 8) /
                    lineBytes);
    const Addr commitRec = arena.alloc(lineBytes);

    NvmTxMorph morph(home, journal,
                     2 * divCeil(cfg.txBytes, lineBytes) + 64);
    const MorphBinding *binding = nullptr;

    // Host copy of what every transaction writes.
    auto payload = [](unsigned tx, std::uint64_t w) -> std::uint64_t {
        return (std::uint64_t(tx) << 32) ^ (w * 0x9e3779b9u) ^ 0x5aa5;
    };

    std::uint64_t journalReplays = 0;

    sys.addThread(0, [&, variant](Guest &g) -> Task<> {
        if (variant != NvmVariant::Journaling) {
            binding = co_await g.registerPhantom(
                morph, MorphLevel::Private, cfg.txBytes);
            morph.bind(binding);
        }

        for (unsigned tx = 0; tx < cfg.numTx; ++tx) {
            const Addr tx_home = home + std::uint64_t(tx) * cfg.txBytes;
            if (variant == NvmVariant::Journaling) {
                // Write the redo journal (sequential), commit, then
                // apply in place.
                for (std::uint64_t w = 0; w < words_per_tx; w += 8) {
                    const unsigned batch = static_cast<unsigned>(
                        std::min<std::uint64_t>(8, words_per_tx - w));
                    std::vector<std::pair<Addr, std::uint64_t>> jw;
                    for (unsigned k = 0; k < batch; ++k) {
                        jw.emplace_back(journal + (w + k) * 8,
                                        payload(tx, w + k));
                    }
                    co_await g.exec(std::uint64_t(
                                        cfg.journalInstrsPerWord) *
                                    batch);
                    co_await g.streamStoreMulti(jw);
                }
                co_await g.store(commitRec, tx + 1);
                co_await g.exec(8);
                for (std::uint64_t w = 0; w < words_per_tx; w += 8) {
                    const unsigned batch = static_cast<unsigned>(
                        std::min<std::uint64_t>(8, words_per_tx - w));
                    std::vector<std::pair<Addr, std::uint64_t>> hw;
                    for (unsigned k = 0; k < batch; ++k) {
                        hw.emplace_back(tx_home + (w + k) * 8,
                                        payload(tx, w + k));
                    }
                    co_await g.exec(batch);
                    co_await g.streamStoreMulti(hw);
                }
            } else {
                // täkō: stage writes in the phantom range.
                morph.setCommitted(false);
                morph.setHomeBase(tx_home);
                morph.resetJournal();
                for (std::uint64_t w = 0; w < words_per_tx; w += 8) {
                    const unsigned batch = static_cast<unsigned>(
                        std::min<std::uint64_t>(8, words_per_tx - w));
                    std::vector<std::pair<Addr, std::uint64_t>> sw;
                    for (unsigned k = 0; k < batch; ++k) {
                        sw.emplace_back(binding->base + (w + k) * 8,
                                        payload(tx, w + k));
                    }
                    co_await g.exec(batch);
                    co_await g.storeMulti(sw);
                }
                // Commit: flush; onWriteback copies to NVM home.
                // Journaled lines (evicted pre-commit) must be replayed.
                morph.setCommitted(true);
                co_await g.flushData(binding);
                co_await g.store(commitRec, tx + 1);
                co_await g.exec(8);
                {
                    const std::uint64_t entries = morph.journalEntries();
                    journalReplays += entries;
                    for (std::uint64_t jline = 0; jline < entries;
                         ++jline) {
                        const Addr entry =
                            morph.journalBase() +
                            jline * (lineBytes + 8);
                        std::vector<Addr> la;
                        for (unsigned k = 0; k < wordsPerLine + 1; ++k)
                            la.push_back(entry + k * 8);
                        std::vector<std::uint64_t> vals;
                        co_await g.streamLoadMulti(la, &vals);
                        std::vector<std::pair<Addr, std::uint64_t>> hw;
                        for (unsigned k = 0; k < wordsPerLine; ++k) {
                            if (vals[1 + k] != NvmTxMorph::invalidWord) {
                                hw.emplace_back(tx_home + vals[0] + k * 8,
                                                vals[1 + k]);
                            }
                        }
                        co_await g.exec(8);
                        co_await g.streamStoreMulti(hw);
                    }
                }
            }
        }
        if (binding)
            co_await g.unregister(binding);
    });

    const Tick cycles = sys.run();
    RunMetrics m = collectMetrics(sys, name(variant), cycles);

    // Correctness: every committed transaction's payload is in place.
    // täkō home copies happen via the morph, which writes relative to
    // homeBase_; map them per tx below.
    bool correct = true;
    for (unsigned tx = 0; tx < cfg.numTx && correct; ++tx) {
        for (std::uint64_t w = 0; w < words_per_tx; ++w) {
            if (sys.mem().realStore().read64(
                    home + std::uint64_t(tx) * cfg.txBytes + w * 8) !=
                payload(tx, w)) {
                correct = false;
                break;
            }
        }
    }
    m.extra["correct"] = correct ? 1.0 : 0.0;
    m.extra["journaledLines"] =
        static_cast<double>(morph.journaledLines());
    m.extra["directLines"] = static_cast<double>(morph.directWrites());
    m.extra["journalReplays"] = static_cast<double>(journalReplays);
    const double words_total =
        static_cast<double>(words_per_tx) * cfg.numTx;
    m.extra["coreInstrsPer8B"] =
        static_cast<double>(m.coreInstrs) / words_total;
    m.extra["totalInstrsPer8B"] =
        static_cast<double>(m.coreInstrs + m.engineInstrs) / words_total;
    return m;
}

} // namespace tako
