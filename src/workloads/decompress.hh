/**
 * @file
 * The Sec. 3 example program: computing the average of a data set stored
 * in an approximate base+delta compressed format, over a Zipfian index
 * stream. Four implementations (Fig. 6):
 *
 *  - Baseline: the core decompresses on every access.
 *  - Precompute: decompress everything up-front into a real array
 *    (vectorized), then read it (extra memory + wasted decompressions).
 *  - NDC: every access offloads the decompression to the L2 engine,
 *    as in Livia-style near-data computing [83] — no result caching.
 *  - Tako: a phantom decompressed array; onMiss decompresses a line,
 *    which is then cached, memoizing hot lines (Fig. 7).
 */

#ifndef TAKO_WORKLOADS_DECOMPRESS_HH
#define TAKO_WORKLOADS_DECOMPRESS_HH

#include "workloads/common.hh"

namespace tako
{

struct DecompressConfig
{
    std::uint64_t numValues = 16 * 1024;
    std::uint64_t numIndices = 32 * 1024;
    double zipfTheta = 0.99;
    std::uint64_t seed = 42;
    /**
     * Per-value decompression cost on a core. Cores are inefficient at
     * data transformations (Sec. 3.1, [108, 146]): the scalar kernel
     * spends tens of instructions on byte extraction, bounds handling,
     * and format bookkeeping per value.
     */
    unsigned coreDecompressInstrs = 30;
    /** Vectorized per-line (8 values) cost in the precompute phase. */
    unsigned vectorDecompressInstrs = 14;
    /** NDC request dispatch/scheduling overhead at the engine [83]. */
    Tick ndcDispatchLat = 8;
    /** Concurrent NDC task slots at the engine. */
    unsigned ndcPorts = 1;
};

enum class DecompressVariant
{
    Baseline,
    Precompute,
    Ndc,
    Tako,
    TakoIdeal,
};

const char *name(DecompressVariant v);

/**
 * Run one variant on a fresh system. extra["checksum"] must agree across
 * variants; extra["decompressions"] reproduces Fig. 7.
 */
RunMetrics runDecompress(DecompressVariant variant,
                         const DecompressConfig &cfg,
                         SystemConfig sys_cfg);

} // namespace tako

#endif // TAKO_WORKLOADS_DECOMPRESS_HH
