#include "workloads/decompress.hh"

#include "morphs/decompress_morph.hh"

namespace tako
{

const char *
name(DecompressVariant v)
{
    switch (v) {
      case DecompressVariant::Baseline:
        return "baseline";
      case DecompressVariant::Precompute:
        return "precompute";
      case DecompressVariant::Ndc:
        return "ndc";
      case DecompressVariant::Tako:
        return "tako";
      case DecompressVariant::TakoIdeal:
        return "ideal";
    }
    return "?";
}

namespace
{

struct Layout
{
    Addr bases;   ///< 8B per group of 8 values
    Addr deltas;  ///< 1B per value, packed
    Addr indices; ///< 8B per index
    Addr decomp;  ///< Precompute variant's output array
    std::uint64_t expected; ///< host checksum
    std::vector<std::uint64_t> values;
};

Layout
setup(System &sys, const DecompressConfig &cfg)
{
    Layout lay{};
    Arena arena;
    BackingStore &st = sys.mem().realStore();
    Rng rng(cfg.seed);

    const std::uint64_t groups = divCeil(cfg.numValues, 8);
    lay.bases = arena.alloc(groups * 8);
    lay.deltas = arena.alloc(cfg.numValues);
    lay.indices = arena.alloc(cfg.numIndices * 8);
    lay.decomp = arena.alloc(cfg.numValues * 8);

    lay.values.resize(cfg.numValues);
    for (std::uint64_t g = 0; g < groups; ++g) {
        const std::uint64_t base = rng.below(1u << 20);
        st.write64(lay.bases + g * 8, base);
        std::uint64_t packed = 0;
        for (unsigned i = 0; i < 8; ++i) {
            const std::uint64_t idx = g * 8 + i;
            if (idx >= cfg.numValues)
                break;
            const std::uint64_t delta = rng.below(256);
            packed |= delta << (8 * i);
            lay.values[idx] = base + delta;
        }
        st.write64(lay.deltas + g * 8, packed);
    }

    ZipfianGenerator zipf(cfg.numValues, cfg.zipfTheta);
    lay.expected = 0;
    for (std::uint64_t j = 0; j < cfg.numIndices; ++j) {
        const std::uint64_t idx = zipf(rng);
        st.write64(lay.indices + j * 8, idx);
        lay.expected += lay.values[idx];
    }
    return lay;
}

/**
 * Model of an NDC offload to the tile's L2 engine (Livia-style [83]):
 * every access ships a task to the engine, which decompresses one value
 * and replies. Requests are dispatched through the engine's scheduler
 * one at a time (per-task invocation overhead), and nothing is cached —
 * offloading near data forfeits the L1's locality (Sec. 3.3).
 */
Task<>
ndcDecompress(System &sys, const DecompressConfig &cfg, const Layout &lay,
              Semaphore &port, std::uint64_t idx, std::uint64_t *out)
{
    Engine &eng = sys.engines().engine(0);
    // Request travels to the L2-side engine.
    co_await Delay{sys.eq(),
                   sys.config().mem.l2TagLat + sys.config().mem.l2DataLat};
    co_await port.acquire();
    co_await Delay{sys.eq(), cfg.ndcDispatchLat};
    const std::uint64_t base =
        co_await eng.memAccess(MemCmd::Load, lay.bases + (idx / 8) * 8, 0,
                               -1);
    const std::uint64_t deltas = co_await eng.memAccess(
        MemCmd::Load, lay.deltas + (idx / 8) * 8, 0, -1);
    eng.chargeCompute(cfg.vectorDecompressInstrs);
    co_await Delay{sys.eq(),
                   eng.computeLatency(cfg.vectorDecompressInstrs, 4)};
    port.release();
    // Response returns to the core.
    co_await Delay{sys.eq(), 2};
    *out = DecompressMorph::decompress(base, deltas,
                                       static_cast<unsigned>(idx % 8));
}

} // namespace

RunMetrics
runDecompress(DecompressVariant variant, const DecompressConfig &cfg,
              SystemConfig sys_cfg)
{
    if (variant == DecompressVariant::TakoIdeal)
        sys_cfg.engine.kind = EngineKind::Ideal;
    System sys(sys_cfg);
    Layout lay = setup(sys, cfg);

    std::uint64_t sum = 0;
    std::uint64_t decompressions = 0;
    DecompressMorph morph(lay.bases, lay.deltas, cfg.numValues);
    auto ndcPort = std::make_unique<Semaphore>(sys.eq(), cfg.ndcPorts);

    const bool is_tako = variant == DecompressVariant::Tako ||
                         variant == DecompressVariant::TakoIdeal;

    sys.addThread(0, [&, variant](Guest &g) -> Task<> {
        const MorphBinding *binding = nullptr;
        if (is_tako) {
            binding = co_await g.registerPhantom(
                morph, MorphLevel::Private, cfg.numValues * 8);
            morph.bind(binding);
        }
        if (variant == DecompressVariant::Precompute) {
            // Vectorized up-front decompression: one line (8 values) at
            // a time.
            const std::uint64_t groups = divCeil(cfg.numValues, 8);
            for (std::uint64_t grp = 0; grp < groups; ++grp) {
                std::vector<std::uint64_t> vals;
                std::vector<Addr> gaddr{lay.bases + grp * 8,
                                        lay.deltas + grp * 8};
                co_await g.loadMulti(gaddr, &vals);
                co_await g.exec(cfg.vectorDecompressInstrs);
                std::vector<std::pair<Addr, std::uint64_t>> writes;
                for (unsigned i = 0; i < 8; ++i) {
                    const std::uint64_t idx = grp * 8 + i;
                    if (idx >= cfg.numValues)
                        break;
                    writes.emplace_back(
                        lay.decomp + idx * 8,
                        DecompressMorph::decompress(vals[0], vals[1], i));
                    ++decompressions;
                }
                co_await g.streamStoreMulti(writes);
            }
        }

        // Main loop, batched by 8 indices to expose the OOO window's MLP
        // uniformly across variants.
        for (std::uint64_t j = 0; j < cfg.numIndices; j += 8) {
            const unsigned batch = static_cast<unsigned>(
                std::min<std::uint64_t>(8, cfg.numIndices - j));
            std::vector<Addr> idx_addrs;
            for (unsigned k = 0; k < batch; ++k)
                idx_addrs.push_back(lay.indices + (j + k) * 8);
            std::vector<std::uint64_t> idxs;
            co_await g.loadMulti(idx_addrs, &idxs);
            co_await g.exec(batch); // index bookkeeping

            switch (variant) {
              case DecompressVariant::Baseline: {
                std::vector<Addr> addrs;
                for (unsigned k = 0; k < batch; ++k) {
                    addrs.push_back(lay.bases + (idxs[k] / 8) * 8);
                    addrs.push_back(lay.deltas + (idxs[k] / 8) * 8);
                }
                std::vector<std::uint64_t> vals;
                co_await g.loadMulti(addrs, &vals);
                co_await g.exec(std::uint64_t(cfg.coreDecompressInstrs) *
                                batch);
                for (unsigned k = 0; k < batch; ++k) {
                    sum += DecompressMorph::decompress(
                        vals[2 * k], vals[2 * k + 1],
                        static_cast<unsigned>(idxs[k] % 8));
                    ++decompressions;
                }
                break;
              }
              case DecompressVariant::Precompute:
              case DecompressVariant::Tako:
              case DecompressVariant::TakoIdeal: {
                const Addr arr = variant == DecompressVariant::Precompute
                                     ? lay.decomp
                                     : binding->base;
                std::vector<Addr> addrs;
                for (unsigned k = 0; k < batch; ++k)
                    addrs.push_back(arr + idxs[k] * 8);
                std::vector<std::uint64_t> vals;
                co_await g.loadMulti(addrs, &vals);
                co_await g.exec(2 * batch);
                for (unsigned k = 0; k < batch; ++k)
                    sum += vals[k];
                break;
              }
              case DecompressVariant::Ndc: {
                Join join(g.eq());
                std::vector<std::uint64_t> vals(batch, 0);
                for (unsigned k = 0; k < batch; ++k) {
                    join.add();
                    spawn(ndcDecompress(sys, cfg, lay, *ndcPort, idxs[k],
                                        &vals[k]),
                          join.completion());
                }
                co_await g.exec(2 * batch); // issue + consume
                co_await join.wait();
                for (unsigned k = 0; k < batch; ++k)
                    sum += vals[k];
                decompressions += batch;
                break;
              }
            }
        }
        if (binding)
            co_await g.unregister(binding);
    });

    const Tick cycles = sys.run();
    RunMetrics m = collectMetrics(sys, name(variant), cycles);
    if (is_tako)
        decompressions = morph.decompressions();
    m.extra["decompressions"] = static_cast<double>(decompressions);
    m.extra["missLat"] =
        sys.stats().histogram("engine.missLatency").mean();
    m.extra["cbMiss"] = sys.stats().get("engine.cb.miss");
    m.extra["loadLat"] =
        sys.stats().histogram("core.loadLatency").mean();
    m.extra["l1h"] = sys.stats().get("l1.hits");
    m.extra["l1m"] = sys.stats().get("l1.misses");
    m.extra["l2h"] = sys.stats().get("l2.hits");
    m.extra["l2m"] = sys.stats().get("l2.misses");
    m.extra["pf"] = sys.stats().get("prefetch.issued");
    m.extra["checksum"] = static_cast<double>(sum);
    m.extra["expected"] = static_cast<double>(lay.expected);
    m.extra["correct"] = sum == lay.expected ? 1.0 : 0.0;
    return m;
}

} // namespace tako
