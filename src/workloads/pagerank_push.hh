/**
 * @file
 * PageRank with push-based commutative scatter-updates (Sec. 8.1).
 *
 * One iteration, three phases (Fig. 14): the *edge* phase pushes
 * rank[u]/deg(u) to every out-neighbor, the *bin* phase applies deferred
 * updates with good locality, and the *vertex* phase streams the
 * accumulators into the next rank vector.
 *
 * Variants (Fig. 13):
 *  - Baseline: atomic adds directly to the accumulator array.
 *  - UpdateBatching: software propagation blocking [14, 70] — updates
 *    binned by destination region, applied region-at-a-time.
 *  - Phi: the PHI Morph at SHARED; cores push RMOs to phantom
 *    accumulators, onWriteback applies dense lines in place and bins
 *    sparse ones.
 *  - PhiIdeal: Phi on the idealized engine.
 */

#ifndef TAKO_WORKLOADS_PAGERANK_PUSH_HH
#define TAKO_WORKLOADS_PAGERANK_PUSH_HH

#include "workloads/graph.hh"

namespace tako
{

struct PagerankPushConfig
{
    GraphParams graph;
    unsigned threads = 16;
    std::uint64_t regionVertices = 4096; ///< bin-region granularity
    unsigned phiThreshold = 4;           ///< PHI in-place threshold
    std::uint64_t rankScale = 1 << 20;   ///< fixed-point initial rank
};

enum class PushVariant
{
    Baseline,
    UpdateBatching,
    Phi,
    PhiIdeal,
};

const char *name(PushVariant v);

/**
 * Run one variant on a fresh system. extra["correct"] is 1 when the
 * accumulator array matches the host reference after edge+bin phases.
 * extra["dram.<phase>"] reproduces Fig. 14.
 */
RunMetrics runPagerankPush(PushVariant variant,
                           const PagerankPushConfig &cfg,
                           SystemConfig sys_cfg);

} // namespace tako

#endif // TAKO_WORKLOADS_PAGERANK_PUSH_HH
