/**
 * @file
 * Single-threaded PageRank edge processing under different traversal
 * schedules (Sec. 8.2, HATS). Processing edge (u, v) accumulates
 * contrib[v] into next[u]; the traversal order determines the locality
 * of the contrib[] accesses.
 *
 * Variants (Fig. 16):
 *  - VertexOrdered: edges in CSR layout order.
 *  - SoftwareBdfs: the core runs the bounded-DFS traversal itself
 *    (better locality, but stack management and unpredictable branches).
 *  - Hats: the HatsMorph fills a phantom edge stream in BDFS order on
 *    the engine; the core consumes a regular, prefetchable stream.
 *  - HatsIdeal: Hats on the idealized engine.
 */

#ifndef TAKO_WORKLOADS_PAGERANK_PULL_HH
#define TAKO_WORKLOADS_PAGERANK_PULL_HH

#include "workloads/graph.hh"

namespace tako
{

struct PagerankPullConfig
{
    GraphParams graph;
    std::uint64_t rankScale = 1 << 20;
    unsigned bdfsBound = 512; ///< BDFS stack bound (covers a community;
                              ///  see EXPERIMENTS.md on graph scaling)
    unsigned bdfsDepth = 6;   ///< BDFS depth bound (stay in-community)
    /** Branch mispredict probability per edge, by control-flow shape. */
    double mispredictVertexOrdered = 0.08;
    double mispredictBdfs = 0.35;
    double mispredictStream = 0.02;
};

enum class PullVariant
{
    VertexOrdered,
    SoftwareBdfs,
    Hats,
    HatsIdeal,
};

const char *name(PullVariant v);

/**
 * extra: "correct", "dram.edge"/"dram.vertex" and
 * "mispredictsPerEdge"/"meanLoadLatency" reproduce Fig. 17,
 * "edgesLogged" counts HATS's lost-edge recoveries.
 */
RunMetrics runPagerankPull(PullVariant variant,
                           const PagerankPullConfig &cfg,
                           SystemConfig sys_cfg);

} // namespace tako

#endif // TAKO_WORKLOADS_PAGERANK_PULL_HH
