/**
 * @file
 * Types shared between the memory hierarchy and the täkō layer.
 *
 * The memory hierarchy (src/mem) must trigger callbacks without depending
 * on the engine implementation (src/tako), so it talks through the
 * CallbackSink and MorphResolver interfaces defined here. MorphBinding is
 * the resolved registration record the hierarchy consults on every miss,
 * eviction, and writeback — the simulated equivalent of the TLB morph
 * bits plus per-line tag bit of Sec. 5.1/5.2.
 */

#ifndef TAKO_MEM_MORPH_TYPES_HH
#define TAKO_MEM_MORPH_TYPES_HH

#include <cstdint>
#include <functional>

#include "mem/backing_store.hh"
#include "sim/types.hh"

namespace tako
{

class Morph;

/** Where a Morph is registered (paper Sec. 4.1). */
enum class MorphLevel
{
    Private, ///< at the tile's L2
    Shared,  ///< at the L3 (one view per bank)
};

enum class CallbackKind
{
    Miss,
    Eviction,
    Writeback,
};

/** Resolved registration record for an address. */
struct MorphBinding
{
    Morph *morph = nullptr;
    std::uint32_t id = 0;
    MorphLevel level = MorphLevel::Private;
    /** Phantom range: no backing memory; callbacks define semantics. */
    bool phantom = false;
    /** Owning tile for Private registrations (engine + cache locality). */
    int tile = 0;
    bool hasMiss = false;
    bool hasEviction = false;
    bool hasWriteback = false;
    Addr base = 0;
    std::uint64_t length = 0;
};

/**
 * Interface to the engine layer. The memory hierarchy enqueues callback
 * requests here. `done` must be invoked through the event queue once the
 * callback retires.
 */
class CallbackSink
{
  public:
    virtual ~CallbackSink() = default;

    /**
     * onMiss for @p line_addr on tile @p tile's engine. The cache
     * controller has already allocated and zeroed the line; the miss
     * response is deferred until @p done runs.
     */
    virtual void triggerMiss(int tile, Addr line_addr,
                             const MorphBinding &binding,
                             std::function<void()> done) = 0;

    /**
     * onEviction (clean) or onWriteback (dirty) for @p line_addr. @p data
     * is the line's contents captured at eviction time; the line itself
     * has already left the cache (it occupies a writeback-buffer entry
     * until the callback retires, per Sec. 5.2).
     */
    virtual void triggerEviction(int tile, Addr line_addr,
                                 const MorphBinding &binding, bool dirty,
                                 LineData data,
                                 std::function<void()> done) = 0;
};

/** Interface to the morph registry (implemented in src/tako). */
class MorphResolver
{
  public:
    virtual ~MorphResolver() = default;

    /** Registration covering @p addr, or nullptr. */
    virtual const MorphBinding *resolve(Addr addr) const = 0;

    /** True if @p addr lies in the phantom region of the address space. */
    virtual bool isPhantomAddr(Addr addr) const = 0;

    /**
     * Monotonic count of registration-table mutations. Callers caching
     * resolve() results (the per-tile MRU in MemorySystem) compare this
     * to invalidate on any register/unregister.
     */
    virtual std::uint64_t generation() const { return 0; }
};

} // namespace tako

#endif // TAKO_MEM_MORPH_TYPES_HH
