#include "mem/memory_system.hh"

#include <algorithm>

#include "prof/profiler.hh"
#include "sim/domains.hh"
#include "sim/trace.hh"
#include "sim/tracesink.hh"

namespace tako
{

MemorySystem::MemorySystem(const MemParams &params, Domains &dom,
                           EventQueue &eq, StatsRegistry &stats,
                           EnergyModel &energy, Mesh &noc)
    : params_(params),
      dom_(dom),
      eq_(eq),
      stats_(stats),
      energy_(energy),
      noc_(noc),
      l1Hits_(stats.handle("l1.hits", "accesses",
                           "demand hits in a core/engine L1d")),
      l1Misses_(stats.handle("l1.misses", "accesses",
                             "demand misses in a core/engine L1d")),
      l2Hits_(stats.handle("l2.hits", "accesses",
                           "hits in a private L2")),
      l2Misses_(stats.handle("l2.misses", "accesses",
                             "misses in a private L2")),
      l3Hits_(stats.handle("l3.hits", "accesses",
                           "hits in the shared L3")),
      l3Misses_(stats.handle("l3.misses", "accesses",
                             "misses in the shared L3")),
      dramReads_(stats.handle("dram.reads", "accesses",
                              "64B reads at the memory controllers")),
      dramWrites_(stats.handle("dram.writes", "accesses",
                               "64B writebacks at the controllers")),
      invalidations_(stats.handle("coherence.invalidations", "events",
                                  "directory-inflicted invalidations")),
      downgrades_(stats.handle("coherence.downgrades", "events",
                               "exclusive-owner downgrades to Shared")),
      l2Evictions_(stats.handle("l2.evictions", "lines",
                                "capacity/conflict evictions from L2")),
      l3Evictions_(stats.handle("l3.evictions", "lines",
                                "capacity/conflict evictions from L3")),
      rmoOps_(stats.handle("rmo.ops")),
      prefetchesIssued_(stats.handle("prefetch.issued")),
      hBdCache_(stats.histogramHandle(
          "mem.breakdown.cache", 64, 8, "cycles",
          "per-access cycles in cache tag/data arrays (L1/L2/L3)")),
      hBdNoc_(stats.histogramHandle(
          "mem.breakdown.noc", 64, 8, "cycles",
          "per-access cycles on the mesh, incl. coherence round trips")),
      hBdLock_(stats.histogramHandle(
          "mem.breakdown.lock_wait", 64, 8, "cycles",
          "per-access cycles waiting on line locks, MSHRs, victim ways")),
      hBdDram_(stats.histogramHandle(
          "mem.breakdown.dram", 64, 8, "cycles",
          "per-access cycles in memory-controller queue + access")),
      hBdCbWait_(stats.histogramHandle(
          "mem.breakdown.callback_wait", 64, 8, "cycles",
          "per-access cycles blocked on a tako onMiss callback")),
      hBdTotal_(stats.histogramHandle(
          "mem.breakdown.total", 64, 8, "cycles",
          "end-to-end access latency (sum of breakdown components)"))
{
    panic_if(params_.tiles != noc_.numTiles(),
             "tile count (%u) != mesh size (%u)", params_.tiles,
             noc_.numTiles());
    panic_if(params_.tiles != dom_.tiles(),
             "tile count (%u) != domain plan (%u)", params_.tiles,
             dom_.tiles());
    tiles_.reserve(params_.tiles);
    for (unsigned t = 0; t < params_.tiles; ++t)
        tiles_.push_back(std::make_unique<TileState>(params_, eq_));

    ctrls_.reserve(params_.memCtrls);
    for (unsigned c = 0; c < params_.memCtrls; ++c)
        ctrls_.emplace_back(params_.memLat, params_.memBytesPerCycle);

    // Spread controllers across the diagonal of the mesh.
    ctrlTiles_.resize(params_.memCtrls);
    for (unsigned c = 0; c < params_.memCtrls; ++c) {
        ctrlTiles_[c] =
            params_.memCtrls > 1
                ? static_cast<int>(c * (params_.tiles - 1) /
                                   (params_.memCtrls - 1))
                : 0;
    }

    inflightLanes_.resize(dom_.domainCount());
    phaseLanes_.resize(params_.memCtrls);

    setPhase("default");
}

void
MemorySystem::setPhase(const std::string &phase)
{
    phase_ = phase;
    if (!detail::execCtx.queue) {
        // Pre-run (constructor, test setup): no events are in flight, so
        // the replicas can change in place.
        for (PhaseLane &pl : phaseLanes_) {
            pl.phase = phase;
            pl.reads = nullptr;
            pl.writes = nullptr;
        }
        return;
    }
    // Mid-run: the label is only ever consumed at the controllers'
    // tiles, so broadcast one message per controller — each updates its
    // own controller's replica, making the switch tick exact and
    // identical at every shard count. Handles re-resolve lazily (the
    // counter is only registered for phases that actually touch DRAM).
    for (unsigned c = 0; c < params_.memCtrls; ++c) {
        dom_.post(ctrlTile(c), dom_.quantum(), [this, c, phase]() {
            PhaseLane &pl = phaseLanes_[c];
            pl.phase = phase;
            pl.reads = nullptr;
            pl.writes = nullptr;
        });
    }
}

void
MemorySystem::setProfiler(prof::Profiler *p)
{
    prof_ = p;
    if (!p)
        return;
    for (auto &t : tiles_) {
        t->l1.enableSetHeat();
        t->engL1.enableSetHeat();
        t->l2.enableSetHeat();
        t->l3.enableSetHeat();
    }
}

std::vector<std::uint64_t>
MemorySystem::aggregateSetHeat(int level) const
{
    std::vector<std::uint64_t> out;
    auto accum = [&out](const CacheArray &arr) {
        const std::vector<std::uint64_t> &h = arr.setHeat();
        if (h.empty())
            return;
        if (out.size() < h.size())
            out.resize(h.size(), 0);
        for (std::size_t i = 0; i < h.size(); ++i)
            out[i] += h[i];
    };
    for (const auto &t : tiles_) {
        switch (level) {
          case 1:
            accum(t->l1);
            accum(t->engL1);
            break;
          case 2:
            accum(t->l2);
            break;
          case 3:
            accum(t->l3);
            break;
          default:
            panic("aggregateSetHeat: bad level %d", level);
        }
    }
    return out;
}

std::uint64_t
MemorySystem::dramReads() const
{
    return static_cast<std::uint64_t>(dramReads_->value());
}

std::uint64_t
MemorySystem::dramWrites() const
{
    return static_cast<std::uint64_t>(dramWrites_->value());
}

unsigned
MemorySystem::inflight() const
{
    std::uint64_t n = 0;
    for (const DomainCell &c : inflightLanes_)
        n += c.value;
    return static_cast<unsigned>(n);
}

// ---------------------------------------------------------------------
// Main access path
// ---------------------------------------------------------------------

Task<>
MemorySystem::hop(int src, int dst, unsigned bytes, LatBreakdown *bd)
{
    const Tick t0 = ctxNow(eq_);
    co_await noc_.walk(dom_, src, dst, bytes);
    if (bd)
        bd->noc += ctxNow(eq_) - t0;
}

Task<std::uint64_t>
MemorySystem::access(AccessReq req)
{
    // Demand accesses only: prefetches, engine traffic, and täkō
    // callbacks are simulator-generated, not part of the guest's own
    // reference stream, so a recorded trace replays 1:1.
    if (accessTracer_ && !req.prefetch && !req.fromEngine &&
        req.callbackLevel < 0)
        accessTracer_(ctxNow(eq_), req);

    const Addr line = lineAlign(req.addr);
    const bool need_m = req.cmd != MemCmd::Load;
    const MorphBinding *mb = resolve(req.tile, req.addr);

    // Sec. 4.3 restriction: callbacks may not access data with a Morph
    // registered at the same or a higher level of the hierarchy.
    if (req.callbackLevel >= 0 && mb) {
        const bool forbidden =
            req.callbackLevel == 1 ||
            (req.callbackLevel == 0 && mb->level == MorphLevel::Private);
        panic_if(forbidden,
                 "callback at level %d accesses morphed address %#llx "
                 "(registered %s)",
                 req.callbackLevel, (unsigned long long)req.addr,
                 mb->level == MorphLevel::Private ? "PRIVATE" : "SHARED");
    }
    panic_if(isPhantom(req.addr) && !mb,
             "access to unregistered phantom address %#llx",
             (unsigned long long)req.addr);
    if (mb && mb->phantom && mb->level == MorphLevel::Private) {
        panic_if(req.tile != mb->tile,
                 "PRIVATE phantom address %#llx accessed from tile %d "
                 "(registered on tile %d)",
                 (unsigned long long)req.addr, req.tile, mb->tile);
    }

    ++inflightLanes_[ctxDomain()].value;
    const Tick t_start = ctxNow(eq_);
    TileState &t = *tiles_[req.tile];
    CacheArray &l1 = req.fromEngine ? t.engL1 : t.l1;
    // Engine accesses carry trrîp's low-priority tag (Sec. 5.2):
    // engine-filled lines never promote past long re-reference priority,
    // so they age out before core-reused data. Use-once accesses
    // additionally demote to eviction-first after the fill.
    const bool engine_repl = req.fromEngine;

    const Tick l1_lat = req.fromEngine ? params_.engL1Lat : params_.l1Lat;
    co_await Delay{eq_, l1_lat};
    if (req.fromEngine)
        energy_.engineL1Access();
    else
        energy_.l1Access();

    auto l1_hit_ok = [&]() -> bool {
        CacheWay *w1 = l1.lookup(line);
        if (!w1)
            return false;
        if (!need_m)
            return true;
        CacheWay *w2 = t.l2.lookup(line);
        panic_if(!w2, "L1 line %#llx missing from L2 (inclusion)",
                 (unsigned long long)line);
        return w2->coh == Coh::E || w2->coh == Coh::M;
    };

    // takoprof: classify the demand L1 lookup once, at first probe, on
    // tag presence (a permission upgrade is not a content miss). Merged
    // hits after the tile lock re-probe but are not re-classified.
    if (prof_ && !req.prefetch) {
        l1.noteAccess(line);
        prof_->l1Access(req.tile, req.fromEngine, line,
                        l1.lookup(line) != nullptr);
    }

    if (!req.prefetch && l1_hit_ok()) {
        ++*l1Hits_;
        l1.touch(*l1.lookup(line), engine_repl);
        const std::uint64_t v = doFunctional(req);
        // Hit-path breakdowns are fully determined, so build them on the
        // spot only when someone is looking: keeping a LatBreakdown local
        // alive across the co_awaits above spills it into the coroutine
        // frame and costs ~4% on this fast path.
        if (observing()) {
            LatBreakdown bd;
            bd.cache = l1_lat;
            finishAccess(req, t_start, bd);
        }
        --inflightLanes_[ctxDomain()].value;
        co_return v;
    }
    ++*l1Misses_;

    // Serialize same-line transactions within the tile; this also merges
    // concurrent misses to the same line (MSHR-style).
    Tick t0 = ctxNow(eq_);
    co_await t.tileLocks.acquire(line);
    const Tick tile_lock_wait = ctxNow(eq_) - t0;

    if (!req.prefetch && l1_hit_ok()) {
        // A merged request filled the line while we waited.
        l1.touch(*l1.lookup(line), engine_repl);
        t.tileLocks.release(line);
        const std::uint64_t v = doFunctional(req);
        if (observing()) {
            LatBreakdown bd;
            bd.cache = l1_lat;
            bd.lockWait = tile_lock_wait;
            finishAccess(req, t_start, bd);
        }
        --inflightLanes_[ctxDomain()].value;
        co_return v;
    }

    // From here on the access is a real L2 lookup (and possibly a miss
    // walk); that is slow enough that unconditional attribution is noise.
    LatBreakdown bd;
    bd.cache = l1_lat;
    bd.lockWait = tile_lock_wait;

    co_await Delay{eq_, params_.l2TagLat};
    bd.cache += params_.l2TagLat;
    energy_.l2Access();

    CacheWay *w2 = t.l2.lookup(line);

    if (prof_) {
        t.l2.noteAccess(line);
        if (!req.prefetch)
            prof_->l2Access(req.tile, line, w2 != nullptr);
    }

    // Train the stream prefetcher on demand core accesses (loads,
    // stores, and atomics all advance streams — e.g., HATS consumes its
    // edge stream with atomic exchanges) that miss the L2 or take the
    // first demand hit on a prefetched line.
    bool was_prefetched = false;
    if (!req.fromEngine && !req.prefetch) {
        if (!w2) {
            maybePrefetch(req.tile, line);
        } else if (w2->prefetched) {
            w2->prefetched = false;
            was_prefetched = true;
            ++t.pfUsefulWindow;
            maybePrefetch(req.tile, line);
        }
    }
    const bool l2_ok =
        w2 && (!need_m || w2->coh == Coh::E || w2->coh == Coh::M);

    TRACE(Cache, ctxNow(eq_), "tile %d %s %#llx %s L2", req.tile,
          req.cmd == MemCmd::Load ? "ld" : "st/at",
          (unsigned long long)line, l2_ok ? "hits" : "misses");
    if (l2_ok) {
        ++*l2Hits_;
        co_await Delay{eq_, params_.l2DataLat};
        bd.cache += params_.l2DataLat;
        t.l2.touch(*w2, engine_repl);
        if (req.useOnce)
            t.l2.demote(*w2);
        // Streaming (prefetched) data is used once: keep it near
        // eviction rather than letting it displace the working set.
        if (was_prefetched)
            w2->rrpv = CacheArray::rrpvLong;
    } else {
        ++*l2Misses_;
        Semaphore &mshrs = req.fromEngine ? t.engineMshrs : t.coreMshrs;
        t0 = ctxNow(eq_);
        co_await mshrs.acquire();
        bd.lockWait += ctxNow(eq_) - t0;
        if (!w2 && mb && mb->level == MorphLevel::Private && mb->phantom) {
            // Private phantom miss: allocate at L2, zero the line, and
            // let onMiss generate the data (Table 1 semantics).
            co_await insertL2(req.tile, line, Coh::M, mb, engine_repl,
                              req.useOnce, &bd);
            phantomStore_.zeroLine(line);
            if (mb->hasMiss && sink_) {
                Completion<bool> done(eq_);
                sink_->triggerMiss(req.tile, line, *mb,
                                   [&done]() { done.complete(true); });
                t0 = ctxNow(eq_);
                co_await done;
                bd.callbackWait += ctxNow(eq_) - t0;
            }
        } else {
            co_await fetchIntoL2(req.tile, line, need_m, engine_repl,
                                 mb, req.noFetch, req.useOnce, bd);
        }
        mshrs.release();
    }

    if (req.prefetch) {
        if (CacheWay *w = t.l2.lookup(line))
            w->prefetched = true;
    } else {
        insertL1(req.tile, req.fromEngine, line, req.useOnce);
    }

    t.tileLocks.release(line);
    const std::uint64_t v = req.prefetch ? 0 : doFunctional(req);
    if (observing())
        finishAccess(req, t_start, bd);
    --inflightLanes_[ctxDomain()].value;
    co_return v;
}

void
MemorySystem::finishAccess(const AccessReq &req, Tick start,
                           const LatBreakdown &bd)
{
    if (params_.latBreakdown && !req.prefetch) {
        hBdCache_->sample(bd.cache);
        hBdNoc_->sample(bd.noc);
        hBdLock_->sample(bd.lockWait);
        hBdDram_->sample(bd.dram);
        hBdCbWait_->sample(bd.callbackWait);
        hBdTotal_->sample(ctxNow(eq_) - start);
    }
    if (trace::spanEnabled(trace::Flag::Mem)) {
        trace::ChromeTraceWriter &w = *trace::spanSink();
        w.ensureTrack(0, "memory", req.tile,
                      strprintf("tile%d", req.tile));
        const char *name = "load";
        if (req.prefetch)
            name = "prefetch";
        else if (req.cmd == MemCmd::Store)
            name = "store";
        else if (req.cmd != MemCmd::Load)
            name = "atomic";
        w.completeEvent(
            "mem", name, 0, req.tile, start, ctxNow(eq_) - start,
            strprintf("{\"addr\":\"%#llx\",\"engine\":%s,"
                      "\"cache\":%llu,\"noc\":%llu,\"lock_wait\":%llu,"
                      "\"dram\":%llu,\"callback_wait\":%llu}",
                      (unsigned long long)req.addr,
                      req.fromEngine ? "true" : "false",
                      (unsigned long long)bd.cache,
                      (unsigned long long)bd.noc,
                      (unsigned long long)bd.lockWait,
                      (unsigned long long)bd.dram,
                      (unsigned long long)bd.callbackWait));
    }
}

Task<>
MemorySystem::coherenceVisit(int bank, int tile, Addr line, bool downgrade,
                             bool *dirty_out)
{
    co_await hop(bank, tile, 8);
    bool dirty = false;
    if (downgrade) {
        co_await Delay{eq_, params_.l2TagLat + params_.l2DataLat};
        TileState &o = *tiles_[tile];
        if (CacheWay *ow = o.l2.lookup(line)) {
            if (ow->dirty) {
                dirty = true;
                ow->dirty = false;
            }
            ow->coh = Coh::S;
        }
        co_await hop(tile, bank, 72);
    } else {
        co_await Delay{eq_, params_.l2TagLat};
        dirty = invalidateTileCopies(tile, line, true);
        co_await hop(tile, bank, 8);
    }
    // Back at the bank: the flag lives in the bank-side caller's frame,
    // so every visit's merge executes in the bank's domain.
    *dirty_out |= dirty;
}

Task<>
MemorySystem::fetchIntoL2(int tile, Addr line, bool want_m, bool engine,
                          const MorphBinding *mb, bool no_fetch,
                          bool use_once, LatBreakdown &bd)
{
    const int bank = bankOf(line);
    const bool shared_morph = mb && mb->level == MorphLevel::Shared;

    panic_if(mb && mb->level == MorphLevel::Private && mb->phantom,
             "private phantom line %#llx reached the L3 path",
             (unsigned long long)line);

    co_await hop(tile, bank, 8, &bd);
    // Bank-side state is bound after the hop (H1): every access below
    // runs in the bank's domain.
    TileState &b = *tiles_[bank];
    Tick t0 = ctxNow(eq_);
    co_await b.bankLocks.acquire(line);
    bd.lockWait += ctxNow(eq_) - t0;
    co_await Delay{eq_, params_.l3TagLat};
    bd.cache += params_.l3TagLat;
    energy_.l3Access();

    CacheWay *w3 = b.l3.lookup(line);
    if (prof_) {
        b.l3.noteAccess(line);
        prof_->l3Access(line, w3 != nullptr);
    }
    if (!w3) {
        ++*l3Misses_;
        w3 = co_await allocL3Way(bank, line, mb, engine, &bd);
        if (use_once)
            b.l3.demote(*w3);

        if (shared_morph && mb->phantom) {
            phantomStore_.zeroLine(line);
            if (mb->hasMiss && sink_) {
                Completion<bool> done(eq_);
                sink_->triggerMiss(bank, line, *mb,
                                   [&done]() { done.complete(true); });
                t0 = ctxNow(eq_);
                co_await done;
                bd.callbackWait += ctxNow(eq_) - t0;
            }
        } else if (shared_morph && mb->hasMiss && sink_) {
            // Real shared morph: onMiss overlaps the memory fetch
            // (Sec. 4.3: "onMiss begins executing in parallel with
            // reading addr"); the overlapped wait is attributed to
            // the callback component.
            Join join(eq_);
            join.add(2);
            spawn(dramFetch(bank, line), join.completion());
            sink_->triggerMiss(bank, line, *mb,
                               join.completion());
            t0 = ctxNow(eq_);
            co_await join.wait();
            bd.callbackWait += ctxNow(eq_) - t0;
        } else if (no_fetch && want_m && !mb) {
            // Streaming store: write-combining allocation, no memory
            // read. The line becomes dirty and writes back as usual.
            w3->dirty = true;
        } else {
            co_await dramFetch(bank, line, &bd);
        }
    } else {
        ++*l3Hits_;
        if (want_m) {
            // Invalidate all other copies — each invalidation is a real
            // visit to the sharer's tile, executing the cache mutation
            // in the sharer's own domain; the directory waits here (with
            // the bank lock held) for every acknowledgment.
            std::uint32_t others =
                w3->sharers & ~(1u << static_cast<unsigned>(tile));
            if (w3->owner >= 0 && w3->owner != tile)
                others |= 1u << static_cast<unsigned>(w3->owner);
            if (others) {
                Join join(eq_);
                bool vdirty = false;
                for (unsigned s = 0; s < params_.tiles; ++s) {
                    if (!(others & (1u << s)))
                        continue;
                    ++*invalidations_;
                    TRACE(Coherence, ctxNow(eq_),
                          "bank %d invalidates tile %u for %#llx", bank,
                          s, (unsigned long long)line);
                    join.add(1);
                    spawn(coherenceVisit(bank, static_cast<int>(s), line,
                                         false, &vdirty),
                          join.completion());
                }
                t0 = ctxNow(eq_);
                co_await join.wait();
                bd.noc += ctxNow(eq_) - t0;
                if (vdirty)
                    w3->dirty = true;
            }
        } else if (w3->owner >= 0 && w3->owner != tile) {
            // Downgrade the exclusive owner to Shared (one visit).
            ++*downgrades_;
            bool vdirty = false;
            t0 = ctxNow(eq_);
            co_await coherenceVisit(bank, w3->owner, line, true, &vdirty);
            bd.noc += ctxNow(eq_) - t0;
            if (vdirty)
                w3->dirty = true;
            w3->owner = -1;
        }
        co_await Delay{eq_, params_.l3DataLat};
        bd.cache += params_.l3DataLat;
        b.l3.touch(*w3, engine);
    }

    // Directory update commits here, with the bank lock held; the lock
    // stays held across the response hop and the L2 install below, so
    // grant and install are atomic with respect to every other
    // transaction on this line (an invalidation can never slip between
    // the directory saying "tile has it" and the tile's L2 agreeing).
    Coh grant;
    if (want_m) {
        w3->sharers = 1u << static_cast<unsigned>(tile);
        w3->owner = static_cast<std::int8_t>(tile);
        grant = Coh::M;
    } else {
        const bool sole =
            (w3->sharers & ~(1u << static_cast<unsigned>(tile))) == 0 &&
            (w3->owner < 0 || w3->owner == tile);
        w3->sharers |= 1u << static_cast<unsigned>(tile);
        w3->owner = sole ? static_cast<std::int8_t>(tile)
                         : static_cast<std::int8_t>(-1);
        grant = sole ? Coh::E : Coh::S;
    }

    co_await hop(bank, tile, 72, &bd);
    // Back in the requesting tile's domain: bind its state here, not
    // before the hops (H1).
    TileState &t = *tiles_[tile];

    if (CacheWay *w2 = t.l2.lookup(line)) {
        // Upgrade in place.
        w2->coh = grant;
        t.l2.touch(*w2, engine);
        if (use_once)
            t.l2.demote(*w2);
    } else {
        co_await insertL2(tile, line, grant, mb, engine, use_once, &bd);
    }

    // Unlock message back to the bank's domain (one quantum, like any
    // other cross-domain signal — same delta at every shard count).
    dom_.post(bank, dom_.quantum(), [this, bank, line]() {
        tiles_[bank]->bankLocks.release(line);
    });
}

Task<>
MemorySystem::dramFetch(int bank_tile, Addr line, LatBreakdown *bd)
{
    const unsigned c = ctrlOf(line);
    co_await hop(bank_tile, ctrlTile(c), 8, bd);
    const Tick lat = ctrls_[c].access(ctxNow(eq_));
    TRACE(Dram, ctxNow(eq_), "read %#llx via ctrl %u",
          (unsigned long long)line, c);
    if (trace::spanEnabled(trace::Flag::Dram)) {
        trace::ChromeTraceWriter &w = *trace::spanSink();
        w.ensureTrack(2, "dram", static_cast<int>(c),
                      strprintf("ctrl%u", c));
        w.completeEvent("dram", "read", 2, static_cast<int>(c),
                        ctxNow(eq_), lat,
                        strprintf("{\"addr\":\"%#llx\"}",
                                  (unsigned long long)line));
    }
    ++*dramReads_;
    PhaseLane &pl = phaseLanes_[c];
    if (!pl.reads) [[unlikely]]
        // takolint: ok(S1, re-resolved once per phase change, then cached)
        pl.reads = stats_.handle("dram.reads." + pl.phase);
    ++*pl.reads;
    energy_.dramAccess();
    if (dramTracer_)
        dramTracer_(line, false);
    co_await Delay{eq_, lat};
    if (bd)
        bd->dram += lat;
    co_await hop(ctrlTile(c), bank_tile, 72, bd);
}

Task<>
MemorySystem::dramWritebackTask(int bank_tile, Addr line)
{
    const unsigned c = ctrlOf(line);
    co_await hop(bank_tile, ctrlTile(c), 72);
    const Tick lat = ctrls_[c].access(ctxNow(eq_));
    if (trace::spanEnabled(trace::Flag::Dram)) {
        trace::ChromeTraceWriter &w = *trace::spanSink();
        w.ensureTrack(2, "dram", static_cast<int>(c),
                      strprintf("ctrl%u", c));
        w.completeEvent("dram", "write", 2, static_cast<int>(c),
                        ctxNow(eq_), lat,
                        strprintf("{\"addr\":\"%#llx\"}",
                                  (unsigned long long)line));
    }
    ++*dramWrites_;
    PhaseLane &pl = phaseLanes_[c];
    if (!pl.writes) [[unlikely]]
        // takolint: ok(S1, re-resolved once per phase change, then cached)
        pl.writes = stats_.handle("dram.writes." + pl.phase);
    ++*pl.writes;
    energy_.dramAccess();
    if (dramTracer_)
        dramTracer_(line, true);
    co_await Delay{eq_, lat};
}

void
MemorySystem::dramWriteback(int bank_tile, Addr line)
{
    spawn(dramWritebackTask(bank_tile, line));
}

Task<>
MemorySystem::writebackToL3Task(int tile, Addr line)
{
    // Timing/traffic only: the directory dirty bit was merged at
    // eviction-commit time (functional data is always current).
    co_await hop(tile, bankOf(line), 72);
    energy_.l3Access();
}

// ---------------------------------------------------------------------
// Fills and evictions
// ---------------------------------------------------------------------

Task<CacheWay *>
MemorySystem::insertL2(int tile, Addr line, Coh state,
                       const MorphBinding *mb, bool engine_fill,
                       bool use_once, LatBreakdown *bd)
{
    TileState &t = *tiles_[tile];
    const bool morph_here = mb && mb->level == MorphLevel::Private;
    // Prefer victims that are not locked and not cached in an L1 above
    // (inclusive hierarchies avoid back-invalidating hot upper-level
    // lines); relax the L1-presence constraint if nothing qualifies.
    // When every way is held by an in-flight transaction, wait for one
    // to drain (hardware would stall the fill in an MSHR).
    CacheWay *victim = nullptr;
    for (;;) {
        victim =
            t.l2.findVictim(line, mb != nullptr, [&](const CacheWay &w) {
                return !t.tileLocks.held(w.lineAddr) &&
                       !t.l1.lookup(w.lineAddr) &&
                       !t.engL1.lookup(w.lineAddr);
            });
        if (!victim) {
            victim = t.l2.findVictim(
                line, mb != nullptr, [&](const CacheWay &w) {
                    return !t.tileLocks.held(w.lineAddr);
                });
        }
        if (victim)
            break;
        co_await Delay{eq_, 4};
        if (bd)
            bd->lockWait += 4;
    }
    if (victim->valid)
        evictL2Way(tile, *victim);
    t.l2.fill(*victim, line, morph_here, morph_here ? mb->id : 0,
              engine_fill);
    if (use_once)
        t.l2.demote(*victim);
    victim->coh = state;
    co_return victim;
}

Task<CacheWay *>
MemorySystem::allocL3Way(int bank_tile, Addr line, const MorphBinding *mb,
                         bool engine_fill, LatBreakdown *bd)
{
    TileState &b = *tiles_[bank_tile];
    CacheWay *victim = nullptr;
    for (;;) {
        victim = b.l3.findVictim(
            line, mb != nullptr, [&](const CacheWay &w) {
                return !b.bankLocks.held(w.lineAddr);
            });
        if (victim)
            break;
        co_await Delay{eq_, 4};
        if (bd)
            bd->lockWait += 4;
    }
    if (victim->valid) {
        // The victim's slow eviction tail (back-invalidation visits,
        // callbacks, writeback) detaches so this fill can proceed; the
        // detached task holds the victim line's bank lock from this very
        // event, so a refetch of the victim cannot start — let alone
        // observe a stale phantom line — before the eviction retires.
        spawn(evictL3Detached(bank_tile, snapL3Way(*victim)));
    }
    b.l3.fill(*victim, line, mb != nullptr, mb ? mb->id : 0, engine_fill);
    co_return victim;
}

MemorySystem::L3Evict
MemorySystem::snapL3Way(CacheWay &w)
{
    ++*l3Evictions_;
    L3Evict ev;
    ev.line = w.lineAddr;
    ev.dirty = w.dirty;
    ev.copies = w.sharers;
    if (w.owner >= 0)
        ev.copies |= 1u << static_cast<unsigned>(w.owner);
    TRACE(Cache, ctxNow(eq_), "bank evicts %#llx%s%s",
          (unsigned long long)ev.line, ev.dirty ? " dirty" : "",
          w.morph ? " morph" : "");
    w.invalidate();
    return ev;
}

Task<>
MemorySystem::evictL3Detached(int bank_tile, L3Evict ev)
{
    TileState &b = *tiles_[bank_tile];
    // Synchronous by construction: the victim scan only picks unlocked
    // lines, so this acquire cannot suspend, and the lock is in place
    // before any other event can run.
    co_await b.bankLocks.acquire(ev.line);
    co_await evictL3Core(bank_tile, ev);
    b.bankLocks.release(ev.line);
}

Task<>
MemorySystem::evictL3Core(int bank_tile, L3Evict ev)
{
    const Addr line = ev.line;
    bool dirty = ev.dirty;

    // Inclusive L3: back-invalidate every private copy, each in its
    // owner's domain, and wait for the acknowledgments.
    if (ev.copies) {
        Join join(eq_);
        bool vdirty = false;
        for (unsigned s = 0; s < params_.tiles; ++s) {
            if (!(ev.copies & (1u << s)))
                continue;
            join.add(1);
            spawn(coherenceVisit(bank_tile, static_cast<int>(s), line,
                                 false, &vdirty),
                  join.completion());
        }
        co_await join.wait();
        dirty |= vdirty;
    }

    // Capture strictly after the back-invalidations: until a remote M
    // owner has acknowledged, it can still be committing stores, and a
    // capture taken concurrently would not be partition-invariant.
    const MorphBinding *mb = resolve(bank_tile, line);
    const bool shared_morph = mb && mb->level == MorphLevel::Shared;

    if (shared_morph) {
        LineData data = storeFor(line).readLine(line);
        if (mb->phantom) {
            phantomStore_.zeroLine(line);
            launchEvictionCallback(bank_tile, line, *mb, dirty, data, {});
        } else {
            std::function<void()> after;
            if (dirty) {
                after = [this, bank_tile, line]() {
                    dramWriteback(bank_tile, line);
                };
            }
            launchEvictionCallback(bank_tile, line, *mb, dirty, data,
                                   std::move(after));
        }
    } else if (!isPhantom(line)) {
        if (dirty)
            dramWriteback(bank_tile, line);
    } else {
        phantomStore_.zeroLine(line);
    }
}

void
MemorySystem::insertL1(int tile, bool engine, Addr line, bool cold)
{
    TileState &t = *tiles_[tile];
    // The fill may have been squashed by a racing invalidation between
    // the directory grant and now; L1 must stay included in L2.
    if (!t.l2.lookup(line))
        return;
    CacheArray &l1 = engine ? t.engL1 : t.l1;
    if (l1.lookup(line))
        return;
    CacheWay *v = l1.findVictim(line, false);
    panic_if(!v, "no L1 victim");
    if (v->valid) {
        if (v->dirty) {
            if (CacheWay *w2 = t.l2.lookup(v->lineAddr))
                w2->dirty = true;
        }
        v->invalidate();
    }
    l1.fill(*v, line, false, 0, engine);
    // Use-once data inserts cold: it is the next victim unless touched.
    if (cold)
        l1.demote(*v);
}

void
MemorySystem::evictL2Way(int tile, CacheWay &w)
{
    TileState &t = *tiles_[tile];
    ++*l2Evictions_;
    const Addr line = w.lineAddr;
    TRACE(Cache, ctxNow(eq_), "tile %d evicts %#llx%s%s", tile,
          (unsigned long long)line, w.dirty ? " dirty" : "",
          w.morph ? " morph" : "");

    // Inclusion: pull back L1 copies, merging dirtiness.
    for (CacheArray *l1 : {&t.l1, &t.engL1}) {
        if (CacheWay *w1 = l1->lookup(line)) {
            if (w1->dirty)
                w.dirty = true;
            w1->invalidate();
        }
    }

    const MorphBinding *mb = resolve(tile, line);
    const bool dirty = w.dirty;
    const bool private_morph = mb && mb->level == MorphLevel::Private;

    if (private_morph) {
        // The line leaves the registered cache level: capture its data
        // and hand it to onEviction/onWriteback.
        LineData data = storeFor(line).readLine(line);
        if (mb->phantom) {
            phantomStore_.zeroLine(line);
            launchEvictionCallback(tile, line, *mb, dirty, data, {});
        } else {
            // Real line: callback first, then the writeback proceeds.
            updateDirectoryOnPrivateEvict(tile, line, dirty);
            std::function<void()> after;
            if (dirty) {
                after = [this, tile, line]() {
                    spawn(writebackToL3Task(tile, line));
                };
            }
            launchEvictionCallback(tile, line, *mb, dirty, data,
                                   std::move(after));
        }
    } else if (!isPhantom(line)) {
        updateDirectoryOnPrivateEvict(tile, line, dirty);
        if (dirty)
            spawn(writebackToL3Task(tile, line));
    } else {
        // Shared phantom line cached privately: its home is the L3, so
        // the private copy just folds back (dirty merge at directory).
        updateDirectoryOnPrivateEvict(tile, line, dirty);
    }

    w.invalidate();
}

void
MemorySystem::updateDirectoryOnPrivateEvict(int tile, Addr line,
                                            bool dirty)
{
    // The directory lives at the line's home bank; the clear travels as
    // a message and commits in the bank's domain. By the time it lands
    // the L3 copy may be gone (concurrent eviction) — tolerate that, as
    // the monolithic model always has.
    dom_.post(bankOf(line), dom_.quantum(), [this, tile, line, dirty]() {
        TileState &b = *tiles_[bankOf(line)];
        CacheWay *w3 = b.l3.lookup(line);
        if (!w3)
            return;
        w3->sharers &= ~(1u << static_cast<unsigned>(tile));
        if (w3->owner == tile)
            w3->owner = -1;
        if (dirty)
            w3->dirty = true;
    });
}

bool
MemorySystem::invalidateTileCopies(int tile, Addr line,
                                   bool trigger_callbacks)
{
    TileState &t = *tiles_[tile];
    bool dirty = false;
    for (CacheArray *l1 : {&t.l1, &t.engL1}) {
        if (CacheWay *w1 = l1->lookup(line)) {
            dirty |= w1->dirty;
            w1->invalidate();
        }
    }
    if (CacheWay *w2 = t.l2.lookup(line)) {
        dirty |= w2->dirty;
        const MorphBinding *mb = resolve(tile, line);
        if (trigger_callbacks && mb &&
            mb->level == MorphLevel::Private) {
            // Losing the line at the registered level triggers the
            // eviction callback even when the eviction is inflicted by
            // the directory (inclusion victim / invalidation).
            LineData data = storeFor(line).readLine(line);
            launchEvictionCallback(tile, line, *mb, w2->dirty, data, {});
        }
        w2->invalidate();
    }
    return dirty;
}

void
MemorySystem::launchEvictionCallback(int engine_tile, Addr line,
                                     const MorphBinding &mb, bool dirty,
                                     LineData data,
                                     std::function<void()> after)
{
    const bool has = dirty ? mb.hasWriteback : mb.hasEviction;
    // The +1 posts now, from this very event, so a flusher that evicts
    // this line and then hops to the accounting home (tile 0) draws a
    // later key on the same stream — its arrival can never overtake the
    // increment.
    dom_.post(0, dom_.quantum(),
              [this, id = mb.id]() { ++outstanding_[id].count; });
    auto retire = [this, id = mb.id, after = std::move(after)]() {
        if (after)
            after();
        evictionCallbackRetired(id);
    };
    if (has && sink_) {
        sink_->triggerEviction(engine_tile, line, mb, dirty,
                               std::move(data), std::move(retire));
    } else {
        dom_.post(engine_tile, 0, std::move(retire));
    }
}

void
MemorySystem::evictionCallbackRetired(std::uint32_t morph_id)
{
    // All accounting commits at tile 0's domain, one quantum out — the
    // same latency the matching increment paid, so a -1 can never land
    // before its +1.
    dom_.post(0, dom_.quantum(), [this, morph_id]() {
        auto it = outstanding_.find(morph_id);
        panic_if(it == outstanding_.end() || it->second.count == 0,
                 "eviction callback retired with no record (morph %u)",
                 morph_id);
        if (--it->second.count == 0) {
            for (auto h : it->second.waiters)
                dom_.post(0, 0, [h]() { h.resume(); });
            it->second.waiters.clear();
        }
    });
}

// ---------------------------------------------------------------------
// RMO, flush
// ---------------------------------------------------------------------

Task<>
MemorySystem::remoteAtomicAdd(int tile, Addr addr, std::uint64_t delta)
{
    const MorphBinding *mb = resolve(tile, addr);
    ++*rmoOps_;
    TRACE(Rmo, ctxNow(eq_), "tile %d rmoAdd %#llx += %llu", tile,
          (unsigned long long)addr, (unsigned long long)delta);
    if (!mb || mb->level != MorphLevel::Shared) {
        // No shared Morph: execute as a local atomic through the caches.
        AccessReq r;
        r.cmd = MemCmd::AtomicAdd;
        r.addr = addr;
        r.wdata = delta;
        r.tile = tile;
        co_await access(r);
        co_return;
    }

    const Addr line = lineAlign(addr);
    const int bank = bankOf(line);

    co_await hop(tile, bank, 16);
    // Bound after the hop (H1): the whole read-modify-write below runs
    // in the bank's domain.
    TileState &b = *tiles_[bank];
    co_await b.bankLocks.acquire(line);
    co_await Delay{eq_, params_.l3TagLat};
    energy_.l3Access();

    CacheWay *w3 = b.l3.lookup(line);
    if (prof_) {
        b.l3.noteAccess(line);
        prof_->l3Access(line, w3 != nullptr);
    }
    if (!w3) {
        ++*l3Misses_;
        w3 = co_await allocL3Way(bank, line, mb, false);
        if (mb->phantom) {
            // Phantom miss makes no request down the hierarchy: onMiss
            // initializes the line (e.g., PHI's identity element).
            phantomStore_.zeroLine(line);
            if (mb->hasMiss && sink_) {
                Completion<bool> done(eq_);
                sink_->triggerMiss(bank, line, *mb,
                                   [&done]() { done.complete(true); });
                co_await done;
            }
        } else {
            co_await dramFetch(bank, line);
        }
    } else {
        ++*l3Hits_;
        co_await Delay{eq_, params_.l3DataLat};
        b.l3.touch(*w3, false);
    }

    storeFor(addr).fetchAdd64(addr, delta);
    w3->dirty = true;
    b.bankLocks.release(line);
    // Completion ack travels back so the issuing core's store buffer
    // releases in its own domain.
    co_await hop(bank, tile, 8);
}

Task<>
MemorySystem::flushMorphData(const MorphBinding &binding)
{
    // The flush controller walks the hierarchy; remember where the
    // caller lives so the coroutine finishes back in its domain.
    const int home = dom_.ctxTile(0);
    const Addr base = binding.base;
    const std::uint64_t len = binding.length;
    auto in_range = [base, len](Addr a) {
        return a >= base && a < base + len;
    };

    if (binding.level == MorphLevel::Private) {
        co_await dom_.hopTo(binding.tile, dom_.quantum());
        TileState &t = *tiles_[binding.tile];
        // Tag-array walk cost (Sec. 4.4): the controller scans its sets.
        co_await Delay{eq_, t.l2.numSets() / 4 + 1};
        std::vector<Addr> lines;
        t.l2.forEachValid([&](CacheWay &w) {
            if (in_range(w.lineAddr))
                lines.push_back(w.lineAddr);
        });
        std::sort(lines.begin(), lines.end());
        for (Addr line : lines) {
            co_await t.tileLocks.acquire(line);
            if (CacheWay *w = t.l2.lookup(line))
                evictL2Way(binding.tile, *w);
            t.tileLocks.release(line);
        }
    } else {
        for (unsigned bank = 0; bank < params_.tiles; ++bank) {
            co_await dom_.hopTo(static_cast<int>(bank), dom_.quantum());
            TileState &b = *tiles_[bank];
            co_await Delay{eq_, b.l3.numSets() / 4 + 1};
            std::vector<Addr> lines;
            b.l3.forEachValid([&](CacheWay &w) {
                if (in_range(w.lineAddr))
                    lines.push_back(w.lineAddr);
            });
            std::sort(lines.begin(), lines.end());
            for (Addr line : lines) {
                co_await b.bankLocks.acquire(line);
                if (CacheWay *w = b.l3.lookup(line))
                    co_await evictL3Core(static_cast<int>(bank),
                                         snapL3Way(*w));
                b.bankLocks.release(line);
            }
        }
        // Private copies of shared-morph lines were back-invalidated by
        // the L3 evictions (inclusion); nothing else to do.
    }

    // Block until every outstanding callback of this Morph retires
    // (flushData blocks the software thread, Sec. 4.4). The accounting
    // is homed at tile 0, so the wait happens there; because this hop
    // draws a later key than every +1 the evictions above posted, the
    // check cannot run before their increments land.
    co_await dom_.hopTo(0, dom_.quantum());
    struct OutstandingAwaiter
    {
        MemorySystem &ms;
        std::uint32_t id;

        bool
        await_ready() const noexcept
        {
            auto it = ms.outstanding_.find(id);
            return it == ms.outstanding_.end() || it->second.count == 0;
        }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            ms.outstanding_[id].waiters.push_back(h);
        }

        void await_resume() const noexcept {}
    };
    co_await OutstandingAwaiter{*this, binding.id};
    co_await dom_.hopTo(home, dom_.quantum());
}

Task<>
MemorySystem::flushRangePlain(Addr base, std::uint64_t length)
{
    const int home = dom_.ctxTile(0);
    auto in_range = [&](Addr a) { return a >= base && a < base + length; };
    // Evict from every L3 bank (back-invalidating private copies) ...
    for (unsigned bank = 0; bank < params_.tiles; ++bank) {
        co_await dom_.hopTo(static_cast<int>(bank), dom_.quantum());
        TileState &b = *tiles_[bank];
        std::vector<Addr> lines;
        b.l3.forEachValid([&](CacheWay &w) {
            if (in_range(w.lineAddr))
                lines.push_back(w.lineAddr);
        });
        for (Addr line : lines) {
            co_await b.bankLocks.acquire(line);
            if (CacheWay *w = b.l3.lookup(line))
                co_await evictL3Core(static_cast<int>(bank),
                                     snapL3Way(*w));
            b.bankLocks.release(line);
        }
    }
    // ... and any private-only (phantom) lines.
    for (unsigned tile = 0; tile < params_.tiles; ++tile) {
        co_await dom_.hopTo(static_cast<int>(tile), dom_.quantum());
        TileState &t = *tiles_[tile];
        std::vector<Addr> lines;
        t.l2.forEachValid([&](CacheWay &w) {
            if (in_range(w.lineAddr))
                lines.push_back(w.lineAddr);
        });
        for (Addr line : lines) {
            co_await t.tileLocks.acquire(line);
            if (CacheWay *w = t.l2.lookup(line))
                evictL2Way(static_cast<int>(tile), *w);
            t.tileLocks.release(line);
        }
    }
    co_await dom_.hopTo(home, dom_.quantum());
}

// ---------------------------------------------------------------------
// Functional commit, prefetcher, invariants
// ---------------------------------------------------------------------

std::uint64_t
MemorySystem::doFunctional(const AccessReq &req)
{
    BackingStore &st = storeFor(req.addr);
    const bool is_write = req.cmd != MemCmd::Load;
    std::uint64_t result = 0;
    switch (req.cmd) {
      case MemCmd::Load:
        result = st.read64(req.addr);
        break;
      case MemCmd::Store:
        st.write64(req.addr, req.wdata);
        break;
      case MemCmd::AtomicAdd:
        result = st.fetchAdd64(req.addr, req.wdata);
        break;
      case MemCmd::AtomicSwap:
        result = st.swap64(req.addr, req.wdata);
        break;
    }
    if (is_write) {
        const Addr line = lineAlign(req.addr);
        TileState &t = *tiles_[req.tile];
        CacheArray &mine = req.fromEngine ? t.engL1 : t.l1;
        CacheArray &other = req.fromEngine ? t.l1 : t.engL1;
        if (CacheWay *w1 = mine.lookup(line))
            w1->dirty = true;
        if (CacheWay *w2 = t.l2.lookup(line))
            w2->dirty = true;
        // Intra-tile snoop: the sibling L1's copy is invalidated so it
        // cannot serve stale-timed hits (clustered coherence, Sec. 4.3).
        if (CacheWay *wo = other.lookup(line))
            wo->invalidate();
    }
    return result;
}

void
MemorySystem::maybePrefetch(int tile, Addr miss_line)
{
    if (!params_.prefetchEnable)
        return;
    TileState &t = *tiles_[tile];

    constexpr std::uint64_t regionBytes = 4096;
    const std::uint64_t region = miss_line / regionBytes;

    auto it = t.streams.find(region);
    if (it == t.streams.end()) {
        // A stream crossing into a fresh region continues its run.
        auto prev = t.streams.find((miss_line - lineBytes) / regionBytes);
        unsigned run = 0;
        Addr next_issue = 0;
        if (prev != t.streams.end() &&
            prev->second.lastLine == miss_line - lineBytes) {
            run = prev->second.run + 1;
            next_issue = prev->second.nextIssue;
            if (prev->first != region)
                t.streams.erase(prev);
        }
        if (t.streams.size() >= 16) {
            auto lru = std::min_element(
                t.streams.begin(), t.streams.end(),
                [](const auto &a, const auto &b) {
                    return a.second.lastUse < b.second.lastUse;
                });
            t.streams.erase(lru);
        }
        it = t.streams.emplace(region, TileState::Stream{}).first;
        it->second.run = run;
        it->second.nextIssue = next_issue;
    } else if (miss_line == it->second.lastLine + lineBytes) {
        ++it->second.run;
    } else if (miss_line != it->second.lastLine) {
        it->second.run = 0;
        it->second.nextIssue = 0;
    }
    it->second.lastLine = miss_line;
    it->second.lastUse = ++t.streamClock;
    if (it->second.run < 2)
        return;

    // Adaptive degree: throttle when prefetched lines die unused.
    if (t.pfDegree == 0)
        t.pfDegree = params_.prefetchDegree;
    if (t.pfIssuedWindow >= 256) {
        const double useful = static_cast<double>(t.pfUsefulWindow) /
                              static_cast<double>(t.pfIssuedWindow);
        if (useful < 0.5)
            t.pfDegree = std::max(1u, t.pfDegree / 2);
        else if (useful > 0.85)
            t.pfDegree =
                std::min(params_.prefetchDegree, t.pfDegree + 1);
        t.pfIssuedWindow = 0;
        t.pfUsefulWindow = 0;
    }

    // Issue only beyond the stream's high-water mark, so a demand miss
    // never re-requests lines the stream already prefetched (they may
    // have been evicted, but re-fetching them wholesale thrashes DRAM).
    const MorphBinding *mb = resolve(tile, miss_line);
    const Addr start =
        std::max(miss_line + lineBytes, it->second.nextIssue);
    const Addr end =
        miss_line + std::uint64_t(t.pfDegree) * lineBytes;
    for (Addr cand = start; cand <= end; cand += lineBytes) {
        if (resolve(tile, cand) != mb)
            break; // don't cross morph/range boundaries
        it->second.nextIssue = cand + lineBytes;
        if (t.inflightPrefetch.contains(cand) || t.l2.lookup(cand))
            continue;
        t.inflightPrefetch.insert(cand);
        ++*prefetchesIssued_;
        ++t.pfIssuedWindow;
        spawn(prefetchLine(tile, cand));
    }
}

Task<>
MemorySystem::prefetchLine(int tile, Addr line)
{
    AccessReq r;
    r.cmd = MemCmd::Load;
    r.addr = line;
    r.tile = tile;
    r.prefetch = true;
    co_await access(r);
    tiles_[tile]->inflightPrefetch.erase(line);
}

void
MemorySystem::checkInvariants() const
{
    for (unsigned tile = 0; tile < params_.tiles; ++tile) {
        const TileState &t = *tiles_[tile];
        for (const CacheArray *l1 : {&t.l1, &t.engL1}) {
            for (unsigned s = 0; s < l1->numSets(); ++s) {
                for (const CacheWay &w : l1->set(s)) {
                    if (!w.valid)
                        continue;
                    panic_if(!t.l2.lookup(w.lineAddr),
                             "inclusion violation: L1 line %#llx not in "
                             "tile %u L2",
                             (unsigned long long)w.lineAddr, tile);
                }
            }
        }
        // trrîp reserve rule: no set may be entirely morph lines.
        for (unsigned s = 0; s < t.l2.numSets(); ++s) {
            bool ok = false;
            for (const CacheWay &w : t.l2.set(s)) {
                if (!w.valid || !w.morph)
                    ok = true;
            }
            panic_if(!ok, "tile %u L2 set %u is all-morph", tile, s);
        }
        for (unsigned s = 0; s < t.l3.numSets(); ++s) {
            bool ok = false;
            for (const CacheWay &w : t.l3.set(s)) {
                if (!w.valid || !w.morph)
                    ok = true;
            }
            panic_if(!ok, "bank %u L3 set %u is all-morph", tile, s);
        }
    }
}

bool
MemorySystem::cachedInL2(int tile, Addr addr) const
{
    return tiles_[tile]->l2.lookup(lineAlign(addr)) != nullptr;
}

bool
MemorySystem::cachedInL3(Addr addr) const
{
    const Addr line = lineAlign(addr);
    return tiles_[bankOf(line)]->l3.lookup(line) != nullptr;
}

bool
MemorySystem::cachedAnywhere(Addr addr) const
{
    if (cachedInL3(addr))
        return true;
    for (unsigned t = 0; t < params_.tiles; ++t) {
        if (cachedInL2(static_cast<int>(t), addr))
            return true;
    }
    return false;
}

Coh
MemorySystem::l2State(int tile, Addr addr) const
{
    const CacheWay *w = tiles_[tile]->l2.lookup(lineAlign(addr));
    return w ? w->coh : Coh::I;
}

} // namespace tako
