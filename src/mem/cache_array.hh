/**
 * @file
 * Set-associative tag arrays and replacement policies.
 *
 * Timing-only: data values live in BackingStore (see DESIGN.md). A single
 * CacheWay struct serves every level: private caches use the coherence
 * state; the L3 additionally uses the directory fields (sharers/owner).
 *
 * Replacement policies:
 *  - Lru: classic least-recently-used (L1s).
 *  - Srrip: 3-bit re-reference interval prediction [Jaleel et al., 62].
 *  - Trrip: the paper's täkō-modified RRIP ("trrîp", Sec. 5.2):
 *      (a) engine-issued fills insert at distant RRPV to avoid cache
 *          pollution from callbacks, and
 *      (b) victim selection never evicts the last non-morph line of a
 *          set, guaranteeing deadlock-free forward progress (there is
 *          always a line that can be evicted without a callback).
 */

#ifndef TAKO_MEM_CACHE_ARRAY_HH
#define TAKO_MEM_CACHE_ARRAY_HH

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace tako
{

/** Tile-level coherence state kept in private (L2) tags. */
enum class Coh : std::uint8_t
{
    I = 0,
    S,
    E,
    M,
};

enum class ReplPolicy
{
    Lru,
    Srrip,
    Trrip,
};

struct CacheWay
{
    Addr lineAddr = invalidAddr;
    bool valid = false;
    bool dirty = false;
    /** A Morph is registered on this line (at this or a child level). */
    bool morph = false;
    /** Last fill/touch came from an engine (trrîp low priority). */
    bool engineTouched = false;
    /** Filled by a prefetch; cleared (and trains the prefetcher) on the
     *  first demand touch. */
    bool prefetched = false;
    Coh coh = Coh::I;
    std::uint8_t rrpv = 0;
    std::uint64_t lastUse = 0;
    /** Morph id for flush walks; 0 if none. */
    std::uint32_t morphId = 0;

    // L3-only directory state.
    std::uint32_t sharers = 0;
    std::int8_t owner = -1;

    void
    invalidate()
    {
        lineAddr = invalidAddr;
        valid = false;
        dirty = false;
        morph = false;
        engineTouched = false;
        prefetched = false;
        coh = Coh::I;
        morphId = 0;
        sharers = 0;
        owner = -1;
    }
};

class CacheArray
{
  public:
    /** Predicate restricting victim choice (e.g., skip locked lines). */
    using CanEvict = std::function<bool(const CacheWay &)>;

    CacheArray(std::uint64_t size_bytes, unsigned ways, ReplPolicy repl)
        : ways_(ways), repl_(repl)
    {
        panic_if(ways == 0, "cache with zero ways");
        const std::uint64_t lines = size_bytes / lineBytes;
        panic_if(lines % ways != 0, "cache size not divisible by ways");
        sets_ = static_cast<unsigned>(lines / ways);
        panic_if(!isPow2(sets_), "number of sets must be a power of two");
        ways_storage_.resize(lines);
    }

    unsigned numSets() const { return sets_; }
    unsigned numWays() const { return ways_; }
    std::uint64_t sizeBytes() const
    {
        return std::uint64_t(sets_) * ways_ * lineBytes;
    }

    unsigned
    setIndex(Addr line_addr) const
    {
        return static_cast<unsigned>(lineNumber(line_addr) & (sets_ - 1));
    }

    std::span<CacheWay>
    set(unsigned idx)
    {
        return {&ways_storage_[std::size_t(idx) * ways_], ways_};
    }

    std::span<const CacheWay>
    set(unsigned idx) const
    {
        return {&ways_storage_[std::size_t(idx) * ways_], ways_};
    }

    /** Find the way holding @p line_addr; no replacement update. */
    CacheWay *
    lookup(Addr line_addr)
    {
        for (CacheWay &w : set(setIndex(line_addr))) {
            if (w.valid && w.lineAddr == line_addr)
                return &w;
        }
        return nullptr;
    }

    const CacheWay *
    lookup(Addr line_addr) const
    {
        return const_cast<CacheArray *>(this)->lookup(line_addr);
    }

    /** Update replacement state on a hit. */
    void
    touch(CacheWay &w, bool engine_access = false)
    {
        switch (repl_) {
          case ReplPolicy::Lru:
            w.lastUse = ++useClock_;
            break;
          case ReplPolicy::Srrip:
            w.rrpv = 0;
            break;
          case ReplPolicy::Trrip:
            // Engine re-touches keep low priority; core touches promote.
            if (engine_access)
                w.rrpv = std::min<std::uint8_t>(w.rrpv, rrpvLong);
            else
                w.rrpv = 0;
            break;
        }
        if (!engine_access)
            w.engineTouched = false;
    }

    /**
     * Choose a victim way for inserting @p line_addr.
     *
     * @param inserting_morph the incoming line is morph-registered; under
     *        Trrip the last non-morph line of the set is protected.
     * @param can_evict additional constraint (locked lines, etc.).
     * @return the victim way, or nullptr if no way satisfies the
     *         constraints (caller must retry/wait).
     */
    CacheWay *
    findVictim(Addr line_addr, bool inserting_morph,
               const CanEvict &can_evict = {})
    {
        auto ways = set(setIndex(line_addr));

        auto allowed = [&](const CacheWay &w) {
            return !can_evict || can_evict(w);
        };

        // trrîp morph-reserve rule (Sec. 5.2): a set must always retain
        // one way with no Morph registered (invalid counts), so there is
        // always a line evictable without a callback. When inserting a
        // morph line, the last such "safe" way is protected.
        const CacheWay *protected_way = nullptr;
        if (repl_ == ReplPolicy::Trrip && inserting_morph) {
            unsigned safe = 0;
            const CacheWay *last = nullptr;
            for (const CacheWay &w : ways) {
                if (!w.valid || !w.morph) {
                    ++safe;
                    last = &w;
                }
            }
            if (safe == 1)
                protected_way = last;
        }

        // Invalid (non-protected) ways first: always free.
        for (CacheWay &w : ways) {
            if (!w.valid && &w != protected_way)
                return &w;
        }

        auto candidate_ok = [&](const CacheWay &w) {
            return &w != protected_way && allowed(w);
        };

        switch (repl_) {
          case ReplPolicy::Lru: {
            CacheWay *victim = nullptr;
            for (CacheWay &w : ways) {
                if (candidate_ok(w) &&
                    (!victim || w.lastUse < victim->lastUse)) {
                    victim = &w;
                }
            }
            return victim;
          }
          case ReplPolicy::Srrip:
          case ReplPolicy::Trrip: {
            // Find an allowed way at max RRPV; age until one appears.
            for (unsigned round = 0; round <= rrpvMax; ++round) {
                for (CacheWay &w : ways) {
                    if (w.rrpv >= rrpvMax && candidate_ok(w))
                        return &w;
                }
                bool any_aged = false;
                for (CacheWay &w : ways) {
                    if (w.rrpv < rrpvMax) {
                        ++w.rrpv;
                        any_aged = true;
                    }
                }
                if (!any_aged) {
                    // Everything is at max but excluded; give up.
                    break;
                }
            }
            // Constraints exclude all max-RRPV ways; pick any allowed way.
            for (CacheWay &w : ways) {
                if (candidate_ok(w))
                    return &w;
            }
            return nullptr;
          }
        }
        return nullptr;
    }

    /**
     * Initialize @p w for @p line_addr after the caller has handled the
     * previous occupant's eviction.
     */
    void
    fill(CacheWay &w, Addr line_addr, bool morph, std::uint32_t morph_id,
         bool engine_fill)
    {
        w.invalidate();
        w.lineAddr = line_addr;
        w.valid = true;
        w.morph = morph;
        w.morphId = morph_id;
        w.engineTouched = engine_fill;
        switch (repl_) {
          case ReplPolicy::Lru:
            w.lastUse = ++useClock_;
            break;
          case ReplPolicy::Srrip:
            w.rrpv = rrpvLong;
            break;
          case ReplPolicy::Trrip:
            // Engine fills insert at long re-reference priority and are
            // never promoted past it (see touch()): lower priority than
            // core-reused data, but still able to serve short-term reuse.
            w.rrpv = rrpvLong;
            break;
        }
    }

    /**
     * Demote a way to eviction-first priority (use-once hints). Part of
     * the trrîp mechanism: plain SRRIP ignores the hint (the ablation
     * baseline); LRU (L1s) honors it with a cold insert.
     */
    void
    demote(CacheWay &w)
    {
        switch (repl_) {
          case ReplPolicy::Lru:
            w.lastUse = 0;
            break;
          case ReplPolicy::Srrip:
            break;
          case ReplPolicy::Trrip:
            w.rrpv = rrpvMax;
            break;
        }
    }

    /** Visit every valid way (flush walks, invariant checks). */
    void
    forEachValid(const std::function<void(CacheWay &)> &fn)
    {
        for (CacheWay &w : ways_storage_) {
            if (w.valid)
                fn(w);
        }
    }

    /**
     * Per-set access heat (takoprof). Off — and free — until
     * enableSetHeat() allocates one counter per set; the memory system
     * calls noteAccess at each profiled lookup.
     */
    void enableSetHeat() { setHeat_.assign(sets_, 0); }

    void
    noteAccess(Addr line_addr)
    {
        if (!setHeat_.empty())
            ++setHeat_[setIndex(line_addr)];
    }

    /** Empty unless enableSetHeat() was called. */
    const std::vector<std::uint64_t> &setHeat() const { return setHeat_; }

    static constexpr std::uint8_t rrpvMax = 7;
    static constexpr std::uint8_t rrpvLong = 6;

  private:
    unsigned sets_;
    unsigned ways_;
    ReplPolicy repl_;
    std::uint64_t useClock_ = 0;
    std::vector<CacheWay> ways_storage_;
    std::vector<std::uint64_t> setHeat_;
};

} // namespace tako

#endif // TAKO_MEM_CACHE_ARRAY_HH
