/**
 * @file
 * Memory controller with fixed access latency plus a bandwidth model.
 *
 * Matches the paper's Table 3: 4 controllers, 100-cycle latency,
 * 11.8 GB/s per controller. Bandwidth is modeled with a next-free-time
 * per controller: each 64B access occupies the channel for
 * lineBytes / bytesPerCycle cycles; later accesses queue behind it.
 */

#ifndef TAKO_MEM_MEM_CTRL_HH
#define TAKO_MEM_MEM_CTRL_HH

#include <algorithm>
#include <cstdint>

#include "sim/types.hh"

namespace tako
{

class MemCtrl
{
  public:
    MemCtrl(Tick access_latency, double bytes_per_cycle)
        : latency_(access_latency),
          serviceCycles_(static_cast<Tick>(
              static_cast<double>(lineBytes) / bytes_per_cycle + 0.5))
    {
    }

    /**
     * Account one 64B access starting no earlier than @p now.
     * @return total latency from @p now until the data is available.
     */
    Tick
    access(Tick now)
    {
        const Tick start = std::max(now, nextFree_);
        nextFree_ = start + serviceCycles_;
        ++accesses_;
        return (start - now) + serviceCycles_ + latency_;
    }

    std::uint64_t accesses() const { return accesses_; }
    Tick serviceCycles() const { return serviceCycles_; }

    void
    reset()
    {
        nextFree_ = 0;
        accesses_ = 0;
    }

  private:
    Tick latency_;
    Tick serviceCycles_;
    Tick nextFree_ = 0;
    std::uint64_t accesses_ = 0;
};

} // namespace tako

#endif // TAKO_MEM_MEM_CTRL_HH
