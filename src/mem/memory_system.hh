/**
 * @file
 * The tiled-CMP memory hierarchy: per-tile L1d + engine L1d + private L2,
 * banked inclusive shared L3 with a MESI directory, memory controllers,
 * and the täkō trigger paths (onMiss / onEviction / onWriteback).
 *
 * Timing model
 * ------------
 * Each access is a transaction: a coroutine that walks the hierarchy,
 * charging array/NoC/DRAM latencies on the global event queue and holding
 * per-line locks to serialize same-line transactions (which also provides
 * MSHR-style merging and the paper's per-address callback locking).
 * Directory state changes commit atomically at event granularity; remote
 * invalidations/downgrades charge round-trip latencies. See DESIGN.md for
 * the full list of simplifications.
 *
 * Functional model
 * ----------------
 * Data values live in two BackingStores (real and phantom) and are
 * mutated at access-commit events; caches simulate tags/coherence/timing
 * only. Phantom lines exist in the store only while cached: they are
 * zeroed at fill (before onMiss) and cleared at final eviction (after
 * capture for the eviction callback), matching the paper's semantics.
 */

#ifndef TAKO_MEM_MEMORY_SYSTEM_HH
#define TAKO_MEM_MEMORY_SYSTEM_HH

#include <coroutine>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "energy/energy.hh"
#include "mem/backing_store.hh"
#include "mem/cache_array.hh"
#include "mem/lock_table.hh"
#include "mem/mem_ctrl.hh"
#include "mem/morph_types.hh"
#include "noc/mesh.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/task.hh"
#include "sim/tracesink.hh"

namespace tako
{

class Domains;

namespace prof
{
class Profiler;
} // namespace prof

struct MemParams
{
    unsigned tiles = 16;

    std::uint64_t l1Size = 32 * 1024;
    unsigned l1Ways = 8;
    Tick l1Lat = 3;

    std::uint64_t engL1Size = 8 * 1024;
    unsigned engL1Ways = 4;
    Tick engL1Lat = 1;

    std::uint64_t l2Size = 128 * 1024;
    unsigned l2Ways = 8;
    Tick l2TagLat = 2;
    Tick l2DataLat = 4;
    ReplPolicy l2Repl = ReplPolicy::Trrip;

    std::uint64_t l3BankSize = 512 * 1024;
    unsigned l3Ways = 16;
    Tick l3TagLat = 3;
    Tick l3DataLat = 5;
    ReplPolicy l3Repl = ReplPolicy::Trrip;

    unsigned memCtrls = 4;
    Tick memLat = 100;
    /** 11.8 GB/s per controller at 2.4 GHz. */
    double memBytesPerCycle = 11.8 / 2.4;

    unsigned coreMshrs = 16;
    unsigned engineMshrs = 8;

    bool prefetchEnable = true;
    unsigned prefetchDegree = 8;

    /**
     * Sample per-transaction latency breakdowns into mem.breakdown.*
     * histograms. Off by default: six histogram updates per demand
     * access are measurable on the L1-hit fast path, so — like
     * TAKO_TRACE and the time-series sampler — you pay only when you
     * ask. takosim and the observability tests turn it on.
     */
    bool latBreakdown = false;
};

enum class MemCmd
{
    Load,
    Store,
    AtomicAdd,  ///< local atomic fetch-and-add (needs M state)
    AtomicSwap, ///< local atomic exchange (needs M state)
};

struct AccessReq
{
    MemCmd cmd = MemCmd::Load;
    Addr addr = 0;
    std::uint64_t wdata = 0;
    int tile = 0;
    bool fromEngine = false;
    bool prefetch = false;
    /**
     * Streaming (non-temporal / write-combining) store: on a miss the
     * line is allocated in M state without fetching it from memory.
     * Used for sequential append buffers (bins, journals, logs).
     */
    bool noFetch = false;
    /**
     * Use-once (non-temporal) load hint: fills insert at distant
     * re-reference priority so streaming reads (bin drains, log
     * replays) do not displace the resident working set.
     */
    bool useOnce = false;
    /**
     * Level of the täkō callback issuing this access (-1: not a
     * callback). Used to enforce the Sec. 4.3 restriction that callbacks
     * may not access data with a Morph at the same or a higher level.
     */
    int callbackLevel = -1;
};

/**
 * Per-transaction latency attribution. Every co_await on an access's
 * critical path is charged to exactly one component, so the components
 * always sum to the transaction's end-to-end latency. Aggregated into
 * the mem.breakdown.* histograms.
 */
struct LatBreakdown
{
    Tick cache = 0;        ///< tag/data array latencies (L1/L2/L3)
    Tick noc = 0;          ///< mesh traversals incl. coherence round trips
    Tick lockWait = 0;     ///< line locks, MSHRs, victim-way stalls
    Tick dram = 0;         ///< memory-controller queue + access
    Tick callbackWait = 0; ///< blocked on a täkō onMiss callback

    Tick
    sum() const
    {
        return cache + noc + lockWait + dram + callbackWait;
    }
};

class MemorySystem
{
  public:
    /**
     * @p dom routes every inter-tile movement (NoC walks, directory
     * messages, DRAM pinning) so the hierarchy can be partitioned across
     * shard domains; a monolithic run passes a single-domain Domains and
     * executes the identical code on one queue.
     */
    MemorySystem(const MemParams &params, Domains &dom, EventQueue &eq,
                 StatsRegistry &stats, EnergyModel &energy, Mesh &noc);

    MemorySystem(const MemorySystem &) = delete;
    MemorySystem &operator=(const MemorySystem &) = delete;

    void setMorphResolver(const MorphResolver *resolver)
    {
        resolver_ = resolver;
    }

    void setCallbackSink(CallbackSink *sink) { sink_ = sink; }

    /**
     * Install the takoprof profiler (nullptr to detach). Enables per-set
     * heat tracking in every cache array and feeds each demand lookup
     * into the miss classifiers. Purely observational: no timing event
     * depends on it.
     */
    void setProfiler(prof::Profiler *p);

    /**
     * Sum per-set heat across the arrays of @p level (1: core+engine
     * L1s, 2: private L2s, 3: L3 banks, folded by set index). Empty when
     * no profiler ever enabled heat tracking.
     */
    std::vector<std::uint64_t> aggregateSetHeat(int level) const;

    const MemParams &params() const { return params_; }

    BackingStore &realStore() { return realStore_; }
    BackingStore &phantomStore() { return phantomStore_; }

    /** Store backing @p addr (phantom ranges vs. real memory). */
    BackingStore &
    storeFor(Addr addr)
    {
        return isPhantom(addr) ? phantomStore_ : realStore_;
    }

    /**
     * Full timing path for a core or engine access; resolves to the
     * loaded value (old value for atomics, 0 for stores/prefetches).
     */
    Task<std::uint64_t> access(AccessReq req);

    /**
     * Remote memory operation (relaxed atomic add, Sec. 8.1): executes
     * at the Morph's registered level without caching at the requester.
     * Falls back to a local atomic when no Morph covers the address.
     */
    Task<> remoteAtomicAdd(int tile, Addr addr, std::uint64_t delta);

    /**
     * flushData (Sec. 4.4): evict every cached line of the Morph's
     * range, triggering eviction callbacks, and wait for all of the
     * Morph's outstanding callbacks to retire.
     */
    Task<> flushMorphData(const MorphBinding &binding);

    /**
     * Flush an address range without triggering callbacks; used when
     * (un)registering Morphs over real addresses.
     */
    Task<> flushRangePlain(Addr base, std::uint64_t length);

    /** Label DRAM accesses by workload phase (Figs. 14/17). */
    void setPhase(const std::string &phase);

    /** Optional tracer invoked on every DRAM access (addr, is_write). */
    void
    setDramTracer(std::function<void(Addr, bool)> tracer)
    {
        dramTracer_ = std::move(tracer);
    }

    /**
     * Optional tracer invoked at the issue of every demand access from
     * a core (prefetches, engine traffic, and täkō callbacks excluded).
     * Observational only — feeds takotrace recording (--trace-record).
     */
    void
    setAccessTracer(std::function<void(Tick, const AccessReq &)> tracer)
    {
        accessTracer_ = std::move(tracer);
    }
    const std::string &phase() const { return phase_; }

    std::uint64_t dramReads() const;
    std::uint64_t dramWrites() const;

    /** Count of transactions currently in flight (deadlock checks).
     *  Sums per-domain cells; call only while no domain is executing. */
    unsigned inflight() const;

    /**
     * Notify that an eviction callback for @p morph_id retired
     * (invoked by the engine layer via the `done` continuation).
     */
    void evictionCallbackRetired(std::uint32_t morph_id);

    /** Sanity checks on tag/directory state (tests). */
    void checkInvariants() const;

    /** Tag-state introspection for tests. */
    bool cachedInL2(int tile, Addr addr) const;
    bool cachedInL3(Addr addr) const;
    bool cachedAnywhere(Addr addr) const;
    Coh l2State(int tile, Addr addr) const;

  private:
    /** Per-tile model state: caches, bank locks, MSHRs. Owned by the
     *  tile's domain; coroutines must hop() to the tile before binding
     *  a reference, and re-bind after every hop away and back. */
    // takolint: domain-local
    struct TileState
    {
        TileState(const MemParams &p, EventQueue &eq)
            : l1(p.l1Size, p.l1Ways, ReplPolicy::Lru),
              engL1(p.engL1Size, p.engL1Ways, ReplPolicy::Lru),
              l2(p.l2Size, p.l2Ways, p.l2Repl),
              l3(p.l3BankSize, p.l3Ways, p.l3Repl),
              tileLocks(eq), bankLocks(eq),
              coreMshrs(eq, p.coreMshrs), engineMshrs(eq, p.engineMshrs)
        {
        }

        CacheArray l1;    ///< core L1d
        CacheArray engL1; ///< engine L1d (tile-clustered coherence)
        CacheArray l2;    ///< private unified L2
        CacheArray l3;    ///< the L3 bank that lives on this tile
        LineLockTable tileLocks; ///< private-hierarchy transactions
        LineLockTable bankLocks; ///< L3-bank transactions
        Semaphore coreMshrs;
        Semaphore engineMshrs;

        // Multi-stream prefetcher state: one detector per 4KB region,
        // so interleaved random traffic does not break stream detection.
        struct Stream
        {
            Addr lastLine = invalidAddr;
            /** High-water mark of issued prefetches (no re-issue). */
            Addr nextIssue = 0;
            unsigned run = 0;
            std::uint64_t lastUse = 0;
        };
        // Ordered (takolint D1): the LRU victim scan below iterates, and
        // lastUse ties would otherwise break on hash order.
        std::map<std::uint64_t, Stream> streams;
        std::uint64_t streamClock = 0;
        std::set<Addr> inflightPrefetch;

        // Usefulness-based prefetch throttling: when prefetched lines
        // die unused (thrash), back the degree off; when they are
        // consumed, open it back up.
        unsigned pfDegree = 0; ///< 0 = initialize from params
        std::uint64_t pfIssuedWindow = 0;
        std::uint64_t pfUsefulWindow = 0;

        // rTLB-style one-entry MRU over the morph registry's interval
        // map: per-access resolve() hits here instead of walking the
        // std::map. Positive hits only; invalidated by comparing the
        // resolver's generation. Starts as an empty range.
        Addr morphMruBase = 1;
        Addr morphMruEnd = 0;
        const MorphBinding *morphMruMb = nullptr;
        std::uint64_t morphMruGen = ~std::uint64_t{0};
    };

    /** Outstanding eviction-callback tracking per morph (flushData). */
    struct Outstanding
    {
        std::uint64_t count = 0;
        std::vector<std::coroutine_handle<>> waiters;
    };

    bool isPhantom(Addr addr) const
    {
        return resolver_ && resolver_->isPhantomAddr(addr);
    }

    const MorphBinding *
    resolve(Addr addr) const
    {
        return resolver_ ? resolver_->resolve(addr) : nullptr;
    }

    /**
     * Tile-aware resolve: consults tile @p tile's one-entry MRU before
     * the registry's interval map. Register/unregister bumps the
     * resolver generation, which invalidates every tile's entry.
     */
    const MorphBinding *
    resolve(int tile, Addr addr) const
    {
        if (!resolver_)
            return nullptr;
        TileState &t = *tiles_[static_cast<std::size_t>(tile)];
        const std::uint64_t gen = resolver_->generation();
        if (gen == t.morphMruGen && addr >= t.morphMruBase &&
            addr < t.morphMruEnd)
            return t.morphMruMb;
        const MorphBinding *mb = resolver_->resolve(addr);
        if (mb) {
            t.morphMruBase = mb->base;
            t.morphMruEnd = mb->base + mb->length;
            t.morphMruMb = mb;
            t.morphMruGen = gen;
        }
        return mb;
    }

    int bankOf(Addr line) const
    {
        return static_cast<int>(lineNumber(line) % params_.tiles);
    }

    unsigned ctrlOf(Addr line) const
    {
        return static_cast<unsigned>(lineNumber(line) % params_.memCtrls);
    }

    int ctrlTile(unsigned ctrl) const { return ctrlTiles_[ctrl]; }

    /**
     * Walk the NoC from @p src to @p dst, migrating the transaction to
     * the destination tile's domain; everything after the co_await runs
     * there. Charges the walk to @p bd 's noc component when given.
     */
    Task<> hop(int src, int dst, unsigned bytes,
               LatBreakdown *bd = nullptr);

    /**
     * Directory-inflicted visit to @p tile on behalf of bank @p bank:
     * walks over, invalidates (or downgrades, @p downgrade) the tile's
     * copies of @p line in the tile's own domain, walks back, and merges
     * collected dirtiness into @p dirty_out at the bank. Spawned per
     * sharer with a Join at the bank, so remote cache mutations always
     * execute in their owner's domain while the bank waits the true
     * round-trip time.
     */
    Task<> coherenceVisit(int bank, int tile, Addr line, bool downgrade,
                          bool *dirty_out);

    /** Snapshot of an L3 way taken at eviction-decision time. */
    struct L3Evict
    {
        Addr line = 0;
        bool dirty = false;
        std::uint32_t copies = 0; ///< sharers | owner bit
    };

    /**
     * The slow tail of an L3 eviction: back-invalidation visits, data
     * capture (after the visits, so a remote M owner can no longer
     * write), morph callbacks, writeback/zero. Runs at the bank with the
     * victim line's bank lock held by the caller — any refetch of the
     * line blocks until this completes, which is what keeps phantom
     * zeroing ahead of the next fill.
     */
    Task<> evictL3Core(int bank_tile, L3Evict ev);

    /** Detached wrapper for the capacity-eviction path: takes the
     *  victim's bank lock (synchronously — the victim scan only picks
     *  unlocked lines) and releases it when the core task finishes. */
    Task<> evictL3Detached(int bank_tile, L3Evict ev);

    /**
     * Ensure @p line is present in tile @p tile's L2 with at least
     * Shared (or Exclusive if @p want_m) permission, via the L3
     * directory. Assumes the tile line lock is held.
     */
    Task<> fetchIntoL2(int tile, Addr line, bool want_m, bool engine,
                       const MorphBinding *mb, bool no_fetch,
                       bool use_once, LatBreakdown &bd);

    /** DRAM read on the critical path (charges NoC + controller). */
    Task<> dramFetch(int bank_tile, Addr line,
                     LatBreakdown *bd = nullptr);

    /** Detached DRAM write (writebacks). */
    void dramWriteback(int bank_tile, Addr line);
    Task<> dramWritebackTask(int bank_tile, Addr line);

    /** Detached L2->L3 writeback traffic (timing/energy only). */
    Task<> writebackToL3Task(int tile, Addr line);

    /** Clear tile presence in the directory on a private eviction:
     *  posted to the home bank's domain one quantum ahead, tolerant of
     *  the L3 copy being gone by the time the message lands. */
    void updateDirectoryOnPrivateEvict(int tile, Addr line, bool dirty);

    /**
     * Insert into L2, evicting as needed. Retries (with backoff) when
     * every way of the set is held by an in-flight transaction.
     */
    Task<CacheWay *> insertL2(int tile, Addr line, Coh state,
                              const MorphBinding *mb, bool engine_fill,
                              bool use_once = false,
                              LatBreakdown *bd = nullptr);

    /** Allocate an L3 way for @p line (same retry discipline). */
    Task<CacheWay *> allocL3Way(int bank_tile, Addr line,
                                const MorphBinding *mb, bool engine_fill,
                                LatBreakdown *bd = nullptr);

    /** Insert into an L1, evicting as needed. */
    void insertL1(int tile, bool engine, Addr line, bool cold = false);

    /**
     * Evict an L2 way: invalidate L1 copies, update directory, trigger
     * the eviction callback for Private morph lines, write back dirty
     * real lines, clear final phantom lines.
     */
    void evictL2Way(int tile, CacheWay &w);

    /** Count the eviction, snapshot @p w for evictL3Core, and
     *  invalidate the way. */
    L3Evict snapL3Way(CacheWay &w);

    /**
     * Remove @p line from tile @p tile's private caches (L3 eviction or
     * invalidation). Returns true if a dirty copy was merged.
     */
    bool invalidateTileCopies(int tile, Addr line, bool trigger_callbacks);

    /** Launch the eviction/writeback callback for a captured line. */
    void launchEvictionCallback(int engine_tile, Addr line,
                                const MorphBinding &mb, bool dirty,
                                LineData data,
                                std::function<void()> after = {});

    /** Apply the functional effect of a committed access. */
    std::uint64_t doFunctional(const AccessReq &req);

    /**
     * Per-access epilogue: fold @p bd into the mem.breakdown.*
     * histograms (demand accesses only) and emit the transaction span
     * when a trace sink is installed.
     */
    void finishAccess(const AccessReq &req, Tick start,
                      const LatBreakdown &bd);

    /**
     * True when some consumer wants per-access observability: either
     * breakdown histograms (MemParams::latBreakdown) or memory-
     * transaction spans (a trace sink with Flag::Mem enabled). The
     * L1-hit fast path skips all attribution work when this is false.
     */
    bool observing() const
    {
        return params_.latBreakdown ||
               trace::spanEnabled(trace::Flag::Mem);
    }

    /** Stream-prefetcher bookkeeping; spawns prefetch transactions. */
    void maybePrefetch(int tile, Addr miss_line);

    Task<> prefetchLine(int tile, Addr line);

    MemParams params_;
    Domains &dom_;
    EventQueue &eq_;
    StatsRegistry &stats_;
    EnergyModel &energy_;
    Mesh &noc_;

    const MorphResolver *resolver_ = nullptr;
    CallbackSink *sink_ = nullptr;
    prof::Profiler *prof_ = nullptr;

    BackingStore realStore_;
    BackingStore phantomStore_;

    std::vector<std::unique_ptr<TileState>> tiles_;
    std::vector<MemCtrl> ctrls_;
    std::vector<int> ctrlTiles_;

    /** Eviction-callback accounting, homed at tile 0's domain: every
     *  +1/-1 arrives as a posted message, so flushData's await and the
     *  retirements serialize on one stream regardless of partition. */
    std::map<std::uint32_t, Outstanding> outstanding_;

    std::string phase_ = "default";

    struct alignas(64) DomainCell
    {
        std::uint64_t value = 0;
    };

    /** In-flight transaction counts, one cell per domain: a transaction
     *  begins and ends at its requester tile, so the cells balance. */
    std::vector<DomainCell> inflightLanes_;

    /**
     * Per-domain phase replica: the phase label plus the lazily-resolved
     * "dram.reads.<phase>" handles. setPhase() broadcasts the new label
     * to every domain one quantum ahead; DRAM events read only their own
     * domain's replica.
     */
    struct alignas(64) PhaseLane
    {
        std::string phase = "default";
        Counter *reads = nullptr;
        Counter *writes = nullptr;
    };

    std::vector<PhaseLane> phaseLanes_;

    std::function<void(Addr, bool)> dramTracer_;
    std::function<void(Tick, const AccessReq &)> accessTracer_;

    // Stats, as stable StatsRegistry handles cached at construction so
    // hot-path increments never re-hash the name.
    Counter *l1Hits_;
    Counter *l1Misses_;
    Counter *l2Hits_;
    Counter *l2Misses_;
    Counter *l3Hits_;
    Counter *l3Misses_;
    Counter *dramReads_;
    Counter *dramWrites_;
    Counter *invalidations_;
    Counter *downgrades_;
    Counter *l2Evictions_;
    Counter *l3Evictions_;
    Counter *rmoOps_;
    Counter *prefetchesIssued_;

    // Per-transaction latency breakdown (demand accesses; cycles each).
    Histogram *hBdCache_;
    Histogram *hBdNoc_;
    Histogram *hBdLock_;
    Histogram *hBdDram_;
    Histogram *hBdCbWait_;
    Histogram *hBdTotal_;
};

} // namespace tako

#endif // TAKO_MEM_MEMORY_SYSTEM_HH
