/**
 * @file
 * Sparse functional memory.
 *
 * tako-sim splits functional state from timing state (see DESIGN.md):
 * caches simulate tags, coherence, and latency, while data values live in
 * BackingStore instances mutated at event-commit times. There are two
 * stores per system: one for real (memory-backed) addresses and one for
 * phantom ranges, whose lines semantically exist only while cached.
 */

#ifndef TAKO_MEM_BACKING_STORE_HH
#define TAKO_MEM_BACKING_STORE_HH

#include <array>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace tako
{

/** Data contents of one 64B cache line, as eight 64-bit words. */
struct LineData
{
    std::array<std::uint64_t, wordsPerLine> words{};

    std::uint64_t &operator[](std::size_t i) { return words[i]; }
    std::uint64_t operator[](std::size_t i) const { return words[i]; }

    bool
    operator==(const LineData &o) const
    {
        return words == o.words;
    }
};

class BackingStore
{
  public:
    static constexpr std::uint64_t pageBytes = 4096;

    /** Read the aligned 64-bit word containing @p addr. */
    std::uint64_t
    read64(Addr addr) const
    {
        const Page *page = findPage(addr);
        if (!page)
            return 0;
        return page->words[wordIndex(addr)];
    }

    /** Write the aligned 64-bit word containing @p addr. */
    void
    write64(Addr addr, std::uint64_t value)
    {
        getPage(addr).words[wordIndex(addr)] = value;
    }

    /** Atomic read-modify-write add; returns the previous value. */
    std::uint64_t
    fetchAdd64(Addr addr, std::uint64_t delta)
    {
        std::uint64_t &w = getPage(addr).words[wordIndex(addr)];
        const std::uint64_t old = w;
        w += delta;
        return old;
    }

    /** Atomic swap; returns the previous value. */
    std::uint64_t
    swap64(Addr addr, std::uint64_t value)
    {
        std::uint64_t &w = getPage(addr).words[wordIndex(addr)];
        const std::uint64_t old = w;
        w = value;
        return old;
    }

    /** Copy a full line out. @p addr must be line-aligned. */
    LineData
    readLine(Addr addr) const
    {
        panic_if(lineOffset(addr) != 0, "readLine: unaligned %#llx",
                 (unsigned long long)addr);
        LineData out;
        const Page *page = findPage(addr);
        if (page) {
            std::memcpy(out.words.data(), &page->words[wordIndex(addr)],
                        lineBytes);
        }
        return out;
    }

    /** Copy a full line in. @p addr must be line-aligned. */
    void
    writeLine(Addr addr, const LineData &data)
    {
        panic_if(lineOffset(addr) != 0, "writeLine: unaligned %#llx",
                 (unsigned long long)addr);
        Page &page = getPage(addr);
        std::memcpy(&page.words[wordIndex(addr)], data.words.data(),
                    lineBytes);
    }

    /** Zero a full line. */
    void
    zeroLine(Addr addr)
    {
        writeLine(addr, LineData{});
    }

    /** Number of allocated pages (for tests and footprint checks). */
    std::size_t
    allocatedPages() const
    {
        std::size_t n = 0;
        for (const Stripe &s : stripes_) {
            std::lock_guard<std::mutex> g(s.mu);
            n += s.pages.size();
        }
        return n;
    }

  private:
    struct Page
    {
        std::array<std::uint64_t, pageBytes / 8> words{};
    };

    /**
     * Pages shard across 64 stripes by page number so shard domains
     * committing functional data rarely contend on the same map. Only
     * the map structure is guarded: word accesses go through the
     * returned pointer unguarded, which is safe because coherence
     * serializes every same-line access (one M/E owner at a time) and
     * distinct words never alias. Pages are never freed, so pointers
     * obtained under the lock cannot dangle. (The previous single-entry
     * mutable MRU cache was dropped: it was a write on the read path,
     * a data race under decomposition.)
     */
    struct Stripe
    {
        mutable std::mutex mu;
        std::map<std::uint64_t, std::unique_ptr<Page>> pages;
    };

    static constexpr std::size_t numStripes = 64;

    static std::uint64_t pageNumber(Addr addr) { return addr / pageBytes; }

    static std::size_t
    wordIndex(Addr addr)
    {
        return (addr % pageBytes) / 8;
    }

    const Page *
    findPage(Addr addr) const
    {
        const std::uint64_t pn = pageNumber(addr);
        const Stripe &s = stripes_[pn % numStripes];
        std::lock_guard<std::mutex> g(s.mu);
        auto it = s.pages.find(pn);
        return it == s.pages.end() ? nullptr : it->second.get();
    }

    Page &
    getPage(Addr addr)
    {
        const std::uint64_t pn = pageNumber(addr);
        Stripe &s = stripes_[pn % numStripes];
        std::lock_guard<std::mutex> g(s.mu);
        auto &slot = s.pages[pn];
        if (!slot)
            slot = std::make_unique<Page>();
        return *slot;
    }

    std::array<Stripe, numStripes> stripes_;
};

} // namespace tako

#endif // TAKO_MEM_BACKING_STORE_HH
