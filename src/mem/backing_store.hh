/**
 * @file
 * Sparse functional memory.
 *
 * tako-sim splits functional state from timing state (see DESIGN.md):
 * caches simulate tags, coherence, and latency, while data values live in
 * BackingStore instances mutated at event-commit times. There are two
 * stores per system: one for real (memory-backed) addresses and one for
 * phantom ranges, whose lines semantically exist only while cached.
 */

#ifndef TAKO_MEM_BACKING_STORE_HH
#define TAKO_MEM_BACKING_STORE_HH

#include <array>
#include <cstring>
#include <map>
#include <memory>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace tako
{

/** Data contents of one 64B cache line, as eight 64-bit words. */
struct LineData
{
    std::array<std::uint64_t, wordsPerLine> words{};

    std::uint64_t &operator[](std::size_t i) { return words[i]; }
    std::uint64_t operator[](std::size_t i) const { return words[i]; }

    bool
    operator==(const LineData &o) const
    {
        return words == o.words;
    }
};

class BackingStore
{
  public:
    static constexpr std::uint64_t pageBytes = 4096;

    /** Read the aligned 64-bit word containing @p addr. */
    std::uint64_t
    read64(Addr addr) const
    {
        const Page *page = findPage(addr);
        if (!page)
            return 0;
        return page->words[wordIndex(addr)];
    }

    /** Write the aligned 64-bit word containing @p addr. */
    void
    write64(Addr addr, std::uint64_t value)
    {
        getPage(addr).words[wordIndex(addr)] = value;
    }

    /** Atomic read-modify-write add; returns the previous value. */
    std::uint64_t
    fetchAdd64(Addr addr, std::uint64_t delta)
    {
        std::uint64_t &w = getPage(addr).words[wordIndex(addr)];
        const std::uint64_t old = w;
        w += delta;
        return old;
    }

    /** Atomic swap; returns the previous value. */
    std::uint64_t
    swap64(Addr addr, std::uint64_t value)
    {
        std::uint64_t &w = getPage(addr).words[wordIndex(addr)];
        const std::uint64_t old = w;
        w = value;
        return old;
    }

    /** Copy a full line out. @p addr must be line-aligned. */
    LineData
    readLine(Addr addr) const
    {
        panic_if(lineOffset(addr) != 0, "readLine: unaligned %#llx",
                 (unsigned long long)addr);
        LineData out;
        const Page *page = findPage(addr);
        if (page) {
            std::memcpy(out.words.data(), &page->words[wordIndex(addr)],
                        lineBytes);
        }
        return out;
    }

    /** Copy a full line in. @p addr must be line-aligned. */
    void
    writeLine(Addr addr, const LineData &data)
    {
        panic_if(lineOffset(addr) != 0, "writeLine: unaligned %#llx",
                 (unsigned long long)addr);
        Page &page = getPage(addr);
        std::memcpy(&page.words[wordIndex(addr)], data.words.data(),
                    lineBytes);
    }

    /** Zero a full line. */
    void
    zeroLine(Addr addr)
    {
        writeLine(addr, LineData{});
    }

    /** Number of allocated pages (for tests and footprint checks). */
    std::size_t allocatedPages() const { return pages_.size(); }

  private:
    struct Page
    {
        std::array<std::uint64_t, pageBytes / 8> words{};
    };

    static std::uint64_t pageNumber(Addr addr) { return addr / pageBytes; }

    static std::size_t
    wordIndex(Addr addr)
    {
        return (addr % pageBytes) / 8;
    }

    const Page *
    findPage(Addr addr) const
    {
        const std::uint64_t pn = pageNumber(addr);
        if (pn == mruPage_)
            return mru_;
        auto it = pages_.find(pn);
        if (it == pages_.end())
            return nullptr;
        mruPage_ = pn;
        mru_ = it->second.get();
        return mru_;
    }

    Page &
    getPage(Addr addr)
    {
        const std::uint64_t pn = pageNumber(addr);
        if (pn == mruPage_)
            return *mru_;
        auto &slot = pages_[pn];
        if (!slot)
            slot = std::make_unique<Page>();
        mruPage_ = pn;
        mru_ = slot.get();
        return *slot;
    }

    /**
     * Ordered (takolint D1): never iterated today, and accesses cluster
     * within a page, so the one-entry MRU in front absorbs the tree
     * walk; pages are never freed, so the cached pointer cannot dangle.
     */
    std::map<std::uint64_t, std::unique_ptr<Page>> pages_;
    mutable std::uint64_t mruPage_ = ~std::uint64_t{0};
    mutable Page *mru_ = nullptr;
};

} // namespace tako

#endif // TAKO_MEM_BACKING_STORE_HH
