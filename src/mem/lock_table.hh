/**
 * @file
 * Per-line transaction locks with FIFO coroutine waiters.
 *
 * Cache controllers serialize transactions on the same line address by
 * acquiring the line's lock for the duration of the transaction. This is
 * also how the paper's per-address callback locking is realized: "the
 * address that triggered the callback is locked for the duration of
 * callback execution" (Sec. 4.3). Waiters resume through the event queue
 * in FIFO order, keeping the simulation deterministic.
 */

#ifndef TAKO_MEM_LOCK_TABLE_HH
#define TAKO_MEM_LOCK_TABLE_HH

#include <coroutine>
#include <deque>
#include <map>

#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace tako
{

class LineLockTable
{
  public:
    explicit LineLockTable(EventQueue &eq) : eq_(eq) {}

    LineLockTable(const LineLockTable &) = delete;
    LineLockTable &operator=(const LineLockTable &) = delete;

    bool held(Addr line) const { return locks_.contains(line); }

    /** Number of currently held locks (deadlock diagnostics). */
    std::size_t heldCount() const { return locks_.size(); }

    /** Awaitable: suspends until the line lock is acquired. */
    auto
    acquire(Addr line)
    {
        struct Awaiter
        {
            LineLockTable &table;
            Addr line;

            bool
            await_ready() const noexcept
            {
                auto [it, inserted] = table.locks_.try_emplace(line);
                (void)it;
                return inserted;
            }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                table.locks_[line].push_back(h);
            }

            void await_resume() const noexcept {}
        };
        return Awaiter{*this, line};
    }

    /** Release; hands the lock to the oldest waiter if any. */
    void
    release(Addr line)
    {
        auto it = locks_.find(line);
        panic_if(it == locks_.end(), "releasing unheld lock %#llx",
                 (unsigned long long)line);
        if (it->second.empty()) {
            locks_.erase(it);
        } else {
            auto h = it->second.front();
            it->second.pop_front();
            // Resume in the releasing context's domain: lock tables are
            // tile-affine under decomposition, so the waiter belongs to
            // the same domain the release executes in.
            homeQueue(eq_).schedule(0, [h]() { h.resume(); });
        }
    }

  private:
    EventQueue &eq_;
    /**
     * Present key == lock held; value == FIFO of waiters. Ordered
     * (takolint D1): never iterated today, but lock state is exactly the
     * kind of table a future diagnostic dump would walk.
     */
    std::map<Addr, std::deque<std::coroutine_handle<>>> locks_;
};

/** RAII-ish helper: released explicitly, asserts on leaks in debug. */
class LineLockGuard
{
  public:
    LineLockGuard(LineLockTable &table, Addr line)
        : table_(&table), line_(line)
    {
    }

    ~LineLockGuard() { panic_if(table_ != nullptr, "leaked line lock"); }

    LineLockGuard(const LineLockGuard &) = delete;
    LineLockGuard &operator=(const LineLockGuard &) = delete;

    void
    release()
    {
        table_->release(line_);
        table_ = nullptr;
    }

  private:
    LineLockTable *table_;
    Addr line_;
};

} // namespace tako

#endif // TAKO_MEM_LOCK_TABLE_HH
