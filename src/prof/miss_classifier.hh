/**
 * @file
 * Reuse-distance-based miss classification (the takoprof shadow tags).
 *
 * Each cache level keeps one or more shadow fully-associative LRU stacks
 * (one per private array, one for the shared L3). Every demand lookup
 * feeds its line address and hit/miss outcome in; the stack returns the
 * reuse distance — the number of *distinct* lines touched since the
 * previous access to this line — and the classifier buckets misses the
 * way Gysi et al.'s analytical cache model does:
 *
 *   compulsory : first touch, no finite reuse distance;
 *   capacity   : distance >= the level's total lines, so even a fully
 *                associative cache of this size would have missed;
 *   conflict   : distance < total lines — the line fit, but set-index
 *                collisions (or replacement-policy choices) evicted it.
 *
 * Distances come from a Fenwick tree over access slots (O(log n) per
 * access), not an O(distance) list walk, so profiling streaming
 * workloads stays cheap. Everything here is passive bookkeeping: no
 * event-queue interaction, so enabling it cannot change simulated time.
 */

#ifndef TAKO_PROF_MISS_CLASSIFIER_HH
#define TAKO_PROF_MISS_CLASSIFIER_HH

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace tako::prof
{

/**
 * LRU stack-distance oracle. access() returns the reuse distance of
 * @p line (0 = immediate re-reference) or kFirstTouch when the line has
 * never been seen.
 *
 * Implementation: each access occupies a monotonically increasing slot;
 * a Fenwick tree marks the *latest* slot of every live line. The reuse
 * distance is the count of marked slots after the line's previous slot.
 * When the slot space fills, live marks are compacted to the front.
 */
class ReuseStack
{
  public:
    static constexpr std::uint64_t kFirstTouch = ~0ull;

    ReuseStack();

    /** Record an access; returns the reuse distance (see above). */
    std::uint64_t access(Addr line);

    /** Number of distinct lines ever observed. */
    std::uint64_t distinctLines() const { return lastSlot_.size(); }

  private:
    void bitAdd(std::uint32_t slot, std::int64_t delta);
    std::uint64_t bitPrefix(std::uint32_t slot) const;
    void compact(std::size_t capacity);

    std::vector<std::int64_t> bit_; ///< Fenwick tree, 1-based slots
    /** Ordered (takolint D1): compact() iterates to collect live marks. */
    std::map<Addr, std::uint32_t> lastSlot_;
    std::uint32_t nextSlot_ = 1;
    std::uint64_t marks_ = 0; ///< live marks (== lastSlot_.size())
};

/**
 * Miss classification for one cache level, aggregated over any number of
 * shadow stacks (per-tile private arrays feed separate stacks; capacity
 * is judged per stack so asymmetric arrays — core vs engine L1 — work).
 */
class MissClassifier
{
  public:
    /** Reuse-distance histogram: bucket 0 holds distance 0, bucket k
     *  holds [2^(k-1), 2^k); the last bucket absorbs the tail. */
    static constexpr unsigned kReuseBuckets = 33;

    struct Counts
    {
        std::uint64_t accesses = 0;
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t compulsory = 0;
        std::uint64_t capacity = 0;
        std::uint64_t conflict = 0;
    };

    explicit MissClassifier(std::string level) : level_(std::move(level)) {}

    /** Register a shadow stack judging against @p capacity_lines. */
    unsigned addStack(std::uint64_t capacity_lines);

    /** Feed one lookup outcome through stack @p stack. */
    void access(unsigned stack, Addr line, bool hit);

    const std::string &level() const { return level_; }
    const Counts &counts() const { return counts_; }
    const std::array<std::uint64_t, kReuseBuckets> &reuseHist() const
    {
        return reuseHist_;
    }
    /** Accesses with no prior reference (excluded from reuseHist). */
    std::uint64_t firstTouches() const { return firstTouches_; }

  private:
    struct Stack
    {
        ReuseStack reuse;
        std::uint64_t capacityLines = 0;
    };

    std::string level_;
    std::vector<Stack> stacks_;
    Counts counts_;
    std::array<std::uint64_t, kReuseBuckets> reuseHist_{};
    std::uint64_t firstTouches_ = 0;
};

} // namespace tako::prof

#endif // TAKO_PROF_MISS_CLASSIFIER_HH
