/**
 * @file
 * takoprof: the profiling/attribution subsystem.
 *
 * One Profiler instance rides along a System when SystemConfig::profile
 * is set. It is wired by pointer into the layers it observes:
 *
 *   - MemorySystem feeds every demand cache lookup (level, line, hit)
 *     into the miss classifiers and bumps per-set heat in CacheArray;
 *   - each Engine reports callback enqueue/retire with the same phase
 *     cycles it samples into the engine.breakdown.* histograms, keyed by
 *     (Morph, callback kind, tile), and the enqueue/retire pair drives a
 *     per-engine occupancy timeline;
 *   - Mesh counts busy cycles per directed link (enableLinkProfiling),
 *     harvested at finalize into a 2D heatmap.
 *
 * Every hook is passive — counters and shadow tag state only, never an
 * event-queue interaction — so a profiled run is cycle-identical to an
 * unprofiled one (tests/test_prof.cc proves it). When no Profiler is
 * installed the hook sites are a single null-pointer test.
 *
 * Output: the versioned `takoprof-v1` JSON document (writeJson; consumed
 * by tools/plot_results.py and validated by tools/validate_takoprof.py),
 * folded-stack lines for flamegraph tooling (writeFolded), and scalar
 * `prof.*` counters injected into the run's StatsRegistry so profiles
 * flow through --stats-json into takobench reports and spec "extras".
 */

#ifndef TAKO_PROF_PROFILER_HH
#define TAKO_PROF_PROFILER_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "prof/miss_classifier.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace tako::prof
{

/** Geometry the Profiler needs up front (from SystemConfig). */
struct ProfilerConfig
{
    unsigned tiles = 1;
    std::uint64_t l1Lines = 1;    ///< per core L1d
    std::uint64_t engL1Lines = 1; ///< per engine L1d
    std::uint64_t l2Lines = 1;    ///< per private L2
    std::uint64_t l3Lines = 1;    ///< whole shared L3 (all banks)
    unsigned meshX = 1;
    unsigned meshY = 1;
};

/** One retired callback, as reported by Engine::runCallback. */
struct CallbackRecord
{
    int tile = 0;
    std::string morph;
    unsigned kind = 0; ///< CallbackKind cast: 0 Miss, 1 Evict, 2 WB
    Tick admissionWait = 0; ///< callback-buffer (admission queue) wait
    Tick addrWait = 0;      ///< same-address ordering wait
    Tick dispatch = 0;      ///< scheduler + fabric-slot cycles
    Tick xlate = 0;         ///< rTLB + bitstream cycles
    Tick body = 0;          ///< morph callback body
    Tick total = 0;         ///< trigger to retire
};

class Profiler
{
  public:
    static constexpr unsigned kKinds = 3;
    static const char *kindName(unsigned kind);

    explicit Profiler(const ProfilerConfig &cfg);

    // --- memory-system hooks (demand lookups) ------------------------
    void l1Access(int tile, bool engine, Addr line, bool hit);
    void l2Access(int tile, Addr line, bool hit);
    void l3Access(Addr line, bool hit);

    // --- engine hooks ------------------------------------------------
    void callbackEnqueued(int tile, Tick now);
    void callbackRetired(const CallbackRecord &rec, Tick now);

    // --- finalize inputs (System::run epilogue) ----------------------
    void setNocLinks(std::vector<std::uint64_t> busyCycles,
                     std::vector<std::uint64_t> messages);
    /** Whole-mesh totals (noc.messages / noc.localMessages), so the
     *  profile's per-link counts can be reconciled against them. */
    void setNocTotals(std::uint64_t messages, std::uint64_t localMessages);
    void setSetHeat(const std::string &level,
                    std::vector<std::uint64_t> heat);

    /**
     * Close occupancy intervals at @p end and inject the prof.* scalar
     * counters into @p stats. Idempotent: only the first call counts
     * (run()/runFor() both finalize; a second run would double-count).
     */
    void finalize(Tick end, StatsRegistry &stats);
    bool finalized() const { return finalized_; }

    // --- output ------------------------------------------------------
    /** Emit the takoprof-v1 JSON document. @p header pairs (git_rev,
     *  workload, ...) are written verbatim after the schema tag. */
    void writeJson(std::ostream &os,
                   const std::vector<std::pair<std::string, std::string>>
                       &header = {}) const;

    /** Folded-stack lines (tileN;morph;kind;phase cycles) for
     *  flamegraph-style tools. */
    void writeFolded(std::ostream &os) const;

    // --- introspection (tests) ---------------------------------------
    /** Per-(tile, morph, kind) aggregates. */
    struct CallbackAgg
    {
        std::uint64_t count = 0;
        Tick admissionWait = 0;
        Tick addrWait = 0;
        Tick dispatch = 0;
        Tick xlate = 0;
        Tick body = 0;
        Tick total = 0;
    };
    using CallbackKey = std::tuple<int, std::string, unsigned>;

    /** Per-engine occupancy: callbacks in flight, trigger to retire. */
    struct EngineOcc
    {
        unsigned cur = 0;
        unsigned peak = 0;
        Tick lastChange = 0;
        /** cycles spent with occupancy == index */
        std::vector<Tick> levelCycles;
        std::vector<Tick> timelineTicks;
        std::vector<unsigned> timelineOcc;
        std::uint64_t droppedTransitions = 0;
    };

    const std::map<CallbackKey, CallbackAgg> &callbacks() const
    {
        return callbacks_;
    }
    const EngineOcc &engineOcc(int tile) const { return occ_[tile]; }
    const MissClassifier &l1() const { return l1_; }
    const MissClassifier &l2() const { return l2_; }
    const MissClassifier &l3() const { return l3_; }
    const std::vector<std::uint64_t> &linkBusyCycles() const
    {
        return linkBusy_;
    }

  private:
    /** Cap on stored occupancy transitions per engine; beyond this the
     *  level-cycles histogram still accumulates, only the raw timeline
     *  stops growing (droppedTransitions counts the rest). */
    static constexpr std::size_t kTimelineCap = 4096;

    void occDelta(int tile, Tick now, int delta);
    void writeMissClass(std::ostream &os, const MissClassifier &mc) const;
    std::vector<std::string> foldedLines() const;

    ProfilerConfig cfg_;
    MissClassifier l1_;
    MissClassifier l2_;
    MissClassifier l3_;
    std::vector<unsigned> l1StackCore_; ///< per-tile stack ids
    std::vector<unsigned> l1StackEng_;
    std::vector<unsigned> l2Stack_;

    std::map<CallbackKey, CallbackAgg> callbacks_;
    std::vector<EngineOcc> occ_;

    std::vector<std::uint64_t> linkBusy_; ///< tiles*4, Mesh layout
    std::vector<std::uint64_t> linkMsgs_;
    std::uint64_t nocMessages_ = 0;      ///< all traverses
    std::uint64_t nocLocalMessages_ = 0; ///< src == dst subset
    std::map<std::string, std::vector<std::uint64_t>> setHeat_;

    Tick end_ = 0;
    bool finalized_ = false;
};

} // namespace tako::prof

#endif // TAKO_PROF_PROFILER_HH
