#include "prof/miss_classifier.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace tako::prof
{

namespace
{

/** Initial Fenwick slot capacity; grows by compaction/doubling. */
constexpr std::size_t kInitialSlots = 1024;

} // namespace

ReuseStack::ReuseStack() : bit_(kInitialSlots + 1, 0) {}

void
ReuseStack::bitAdd(std::uint32_t slot, std::int64_t delta)
{
    for (std::size_t i = slot; i < bit_.size(); i += i & (~i + 1))
        bit_[i] += delta;
}

std::uint64_t
ReuseStack::bitPrefix(std::uint32_t slot) const
{
    std::int64_t sum = 0;
    for (std::size_t i = slot; i > 0; i -= i & (~i + 1))
        sum += bit_[i];
    return static_cast<std::uint64_t>(sum);
}

void
ReuseStack::compact(std::size_t capacity)
{
    // Reassign live marks to slots 1..marks_, preserving their order, so
    // prefix counts (and thus distances) are unchanged.
    std::vector<std::pair<std::uint32_t, Addr>> live;
    live.reserve(lastSlot_.size());
    for (const auto &[line, slot] : lastSlot_)
        live.emplace_back(slot, line);
    std::sort(live.begin(), live.end());

    bit_.assign(capacity + 1, 0);
    nextSlot_ = 1;
    for (const auto &[slot, line] : live) {
        lastSlot_[line] = nextSlot_;
        bitAdd(nextSlot_, 1);
        ++nextSlot_;
    }
}

std::uint64_t
ReuseStack::access(Addr line)
{
    std::uint64_t dist = kFirstTouch;
    auto it = lastSlot_.find(line);
    if (it != lastSlot_.end()) {
        // Distinct lines referenced after this line's previous access.
        dist = marks_ - bitPrefix(it->second);
        bitAdd(it->second, -1);
        --marks_;
        lastSlot_.erase(it);
    }

    if (nextSlot_ >= bit_.size()) {
        // Half-empty slot space compacts in place; otherwise double.
        const std::size_t cap = bit_.size() - 1;
        compact(marks_ * 2 + 1 > cap ? cap * 2 : cap);
    }

    const std::uint32_t slot = nextSlot_++;
    lastSlot_.emplace(line, slot);
    bitAdd(slot, 1);
    ++marks_;
    return dist;
}

unsigned
MissClassifier::addStack(std::uint64_t capacity_lines)
{
    panic_if(capacity_lines == 0, "shadow stack for '%s' with 0 lines",
             level_.c_str());
    stacks_.push_back(Stack{});
    stacks_.back().capacityLines = capacity_lines;
    return static_cast<unsigned>(stacks_.size() - 1);
}

void
MissClassifier::access(unsigned stack, Addr line, bool hit)
{
    panic_if(stack >= stacks_.size(), "bad shadow stack %u for '%s'",
             stack, level_.c_str());
    Stack &s = stacks_[stack];
    const std::uint64_t dist = s.reuse.access(lineNumber(line));

    ++counts_.accesses;
    if (dist == ReuseStack::kFirstTouch) {
        ++firstTouches_;
    } else {
        unsigned b = 0;
        while (b + 1 < kReuseBuckets && dist >= (1ull << b))
            ++b;
        // b satisfies dist < 2^b (or the tail bucket); dist==0 -> 0.
        ++reuseHist_[b];
    }

    if (hit) {
        ++counts_.hits;
        return;
    }
    ++counts_.misses;
    if (dist == ReuseStack::kFirstTouch)
        ++counts_.compulsory;
    else if (dist >= s.capacityLines)
        ++counts_.capacity;
    else
        ++counts_.conflict;
}

} // namespace tako::prof
