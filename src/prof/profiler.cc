#include "prof/profiler.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace tako::prof
{

const char *
Profiler::kindName(unsigned kind)
{
    switch (kind) {
      case 0:
        return "onMiss";
      case 1:
        return "onEviction";
      case 2:
        return "onWriteback";
    }
    return "unknown";
}

Profiler::Profiler(const ProfilerConfig &cfg)
    : cfg_(cfg), l1_("l1"), l2_("l2"), l3_("l3"), occ_(cfg.tiles)
{
    panic_if(cfg.tiles == 0, "profiler over zero tiles");
    l1StackCore_.reserve(cfg.tiles);
    l1StackEng_.reserve(cfg.tiles);
    l2Stack_.reserve(cfg.tiles);
    for (unsigned t = 0; t < cfg.tiles; ++t) {
        l1StackCore_.push_back(l1_.addStack(cfg.l1Lines));
        l1StackEng_.push_back(l1_.addStack(cfg.engL1Lines));
        l2Stack_.push_back(l2_.addStack(cfg.l2Lines));
    }
    l3_.addStack(cfg.l3Lines); // banked but shared: one stack
}

void
Profiler::l1Access(int tile, bool engine, Addr line, bool hit)
{
    l1_.access(engine ? l1StackEng_[tile] : l1StackCore_[tile], line, hit);
}

void
Profiler::l2Access(int tile, Addr line, bool hit)
{
    l2_.access(l2Stack_[tile], line, hit);
}

void
Profiler::l3Access(Addr line, bool hit)
{
    l3_.access(0, line, hit);
}

void
Profiler::occDelta(int tile, Tick now, int delta)
{
    EngineOcc &o = occ_[tile];
    if (o.levelCycles.size() <= o.cur)
        o.levelCycles.resize(o.cur + 1, 0);
    o.levelCycles[o.cur] += now - o.lastChange;
    o.lastChange = now;
    o.cur = static_cast<unsigned>(static_cast<int>(o.cur) + delta);
    o.peak = std::max(o.peak, o.cur);
    if (o.timelineTicks.size() < kTimelineCap) {
        o.timelineTicks.push_back(now);
        o.timelineOcc.push_back(o.cur);
    } else {
        ++o.droppedTransitions;
    }
}

void
Profiler::callbackEnqueued(int tile, Tick now)
{
    occDelta(tile, now, +1);
}

void
Profiler::callbackRetired(const CallbackRecord &rec, Tick now)
{
    occDelta(rec.tile, now, -1);
    CallbackAgg &a = callbacks_[{rec.tile, rec.morph, rec.kind}];
    ++a.count;
    a.admissionWait += rec.admissionWait;
    a.addrWait += rec.addrWait;
    a.dispatch += rec.dispatch;
    a.xlate += rec.xlate;
    a.body += rec.body;
    a.total += rec.total;
}

void
Profiler::setNocLinks(std::vector<std::uint64_t> busyCycles,
                      std::vector<std::uint64_t> messages)
{
    linkBusy_ = std::move(busyCycles);
    linkMsgs_ = std::move(messages);
}

void
Profiler::setNocTotals(std::uint64_t messages, std::uint64_t localMessages)
{
    nocMessages_ = messages;
    nocLocalMessages_ = localMessages;
}

void
Profiler::setSetHeat(const std::string &level,
                     std::vector<std::uint64_t> heat)
{
    setHeat_[level] = std::move(heat);
}

void
Profiler::finalize(Tick end, StatsRegistry &stats)
{
    if (finalized_)
        return;
    finalized_ = true;
    end_ = end;
    for (EngineOcc &o : occ_) {
        if (o.levelCycles.size() <= o.cur)
            o.levelCycles.resize(o.cur + 1, 0);
        o.levelCycles[o.cur] += end - o.lastChange;
        o.lastChange = end;
    }

    std::uint64_t cbCount = 0;
    Tick cbBody = 0, cbTotal = 0, cbAdmission = 0;
    for (const auto &[key, a] : callbacks_) {
        cbCount += a.count;
        cbBody += a.body;
        cbTotal += a.total;
        cbAdmission += a.admissionWait;
    }
    unsigned occPeak = 0;
    for (const EngineOcc &o : occ_)
        occPeak = std::max(occPeak, o.peak);
    std::uint64_t busyTotal = 0, busyMax = 0;
    for (std::uint64_t b : linkBusy_) {
        busyTotal += b;
        busyMax = std::max(busyMax, b);
    }

    auto set = [&stats](const std::string &name, const char *unit,
                        const char *desc, double v) {
        stats.counter(name, unit, desc) += v;
    };
    set("prof.cb.count", "callbacks", "retired callbacks (all kinds)",
        static_cast<double>(cbCount));
    set("prof.cb.cycles.body", "cycles",
        "total cycles in callback bodies",
        static_cast<double>(cbBody));
    set("prof.cb.cycles.total", "cycles",
        "total trigger-to-retire callback cycles",
        static_cast<double>(cbTotal));
    set("prof.cb.cycles.admission_wait", "cycles",
        "total cycles callbacks waited for a buffer entry",
        static_cast<double>(cbAdmission));
    set("prof.engine.occupancy.peak", "callbacks",
        "max concurrent callbacks on any engine",
        static_cast<double>(occPeak));
    set("prof.noc.link.busy_total", "flit-cycles",
        "sum of busy cycles over all mesh links",
        static_cast<double>(busyTotal));
    set("prof.noc.link.busy_max", "flit-cycles",
        "busy cycles of the hottest mesh link",
        static_cast<double>(busyMax));
    for (const MissClassifier *mc : {&l1_, &l2_, &l3_}) {
        const std::string p = "prof.miss." + mc->level() + ".";
        set(p + "compulsory", "misses", "first-touch misses",
            static_cast<double>(mc->counts().compulsory));
        set(p + "capacity", "misses",
            "misses with reuse distance >= cache lines",
            static_cast<double>(mc->counts().capacity));
        set(p + "conflict", "misses",
            "misses with reuse distance < cache lines",
            static_cast<double>(mc->counts().conflict));
    }
}

void
Profiler::writeMissClass(std::ostream &os, const MissClassifier &mc) const
{
    const MissClassifier::Counts &c = mc.counts();
    os << "{\"accesses\": " << c.accesses << ", \"hits\": " << c.hits
       << ", \"misses\": " << c.misses
       << ", \"compulsory\": " << c.compulsory
       << ", \"capacity\": " << c.capacity
       << ", \"conflict\": " << c.conflict
       << ", \"reuse_hist\": {\"first_touch\": " << mc.firstTouches()
       << ", \"log2_buckets\": [";
    for (unsigned i = 0; i < MissClassifier::kReuseBuckets; ++i)
        os << (i ? ", " : "") << mc.reuseHist()[i];
    os << "]}}";
}

std::vector<std::string>
Profiler::foldedLines() const
{
    std::vector<std::string> lines;
    for (const auto &[key, a] : callbacks_) {
        const auto &[tile, morph, kind] = key;
        const std::string base = "tile" + std::to_string(tile) + ";" +
                                 morph + ";" + kindName(kind) + ";";
        const std::pair<const char *, Tick> phases[] = {
            {"admission_wait", a.admissionWait},
            {"addr_wait", a.addrWait},
            {"dispatch", a.dispatch},
            {"xlate", a.xlate},
            {"body", a.body},
        };
        for (const auto &[phase, cycles] : phases) {
            if (cycles > 0)
                lines.push_back(base + phase + " " +
                                std::to_string(cycles));
        }
    }
    return lines;
}

void
Profiler::writeJson(
    std::ostream &os,
    const std::vector<std::pair<std::string, std::string>> &header) const
{
    os << "{\n  \"schema\": \"takoprof-v1\"";
    for (const auto &[k, v] : header) {
        os << ",\n  ";
        json::writeString(os, k);
        os << ": ";
        json::writeString(os, v);
    }
    os << ",\n  \"end_cycle\": " << end_;

    os << ",\n  \"callbacks\": [";
    bool first = true;
    for (const auto &[key, a] : callbacks_) {
        const auto &[tile, morph, kind] = key;
        os << (first ? "\n" : ",\n") << "    {\"morph\": ";
        first = false;
        json::writeString(os, morph);
        os << ", \"kind\": \"" << kindName(kind) << "\", \"tile\": " << tile
           << ", \"count\": " << a.count
           << ", \"cycles\": {\"admission_wait\": " << a.admissionWait
           << ", \"addr_wait\": " << a.addrWait
           << ", \"dispatch\": " << a.dispatch
           << ", \"xlate\": " << a.xlate << ", \"body\": " << a.body
           << ", \"total\": " << a.total << "}}";
    }
    os << "\n  ]";

    os << ",\n  \"engines\": [";
    for (std::size_t t = 0; t < occ_.size(); ++t) {
        const EngineOcc &o = occ_[t];
        os << (t ? ",\n" : "\n") << "    {\"tile\": " << t
           << ", \"peak_occupancy\": " << o.peak
           << ", \"occupancy_cycles\": [";
        for (std::size_t i = 0; i < o.levelCycles.size(); ++i)
            os << (i ? ", " : "") << o.levelCycles[i];
        os << "], \"timeline\": {\"ticks\": [";
        for (std::size_t i = 0; i < o.timelineTicks.size(); ++i)
            os << (i ? ", " : "") << o.timelineTicks[i];
        os << "], \"occupancy\": [";
        for (std::size_t i = 0; i < o.timelineOcc.size(); ++i)
            os << (i ? ", " : "") << o.timelineOcc[i];
        os << "], \"dropped\": " << o.droppedTransitions << "}}";
    }
    os << "\n  ]";

    os << ",\n  \"miss_class\": {\n    \"l1\": ";
    writeMissClass(os, l1_);
    os << ",\n    \"l2\": ";
    writeMissClass(os, l2_);
    os << ",\n    \"l3\": ";
    writeMissClass(os, l3_);
    os << "\n  }";

    os << ",\n  \"set_heat\": {";
    first = true;
    for (const auto &[level, heat] : setHeat_) {
        os << (first ? "\n" : ",\n") << "    ";
        first = false;
        json::writeString(os, level);
        os << ": [";
        for (std::size_t i = 0; i < heat.size(); ++i)
            os << (i ? ", " : "") << heat[i];
        os << "]";
    }
    os << "\n  }";

    // Per-directed-link utilization plus the per-tile 2D heatmap
    // (row-major, dim_y rows of dim_x, summing each tile's 4 outgoing
    // links) that plot_results.py renders directly.
    static const char *dirs[4] = {"E", "W", "N", "S"};
    os << ",\n  \"noc\": {\"dim_x\": " << cfg_.meshX
       << ", \"dim_y\": " << cfg_.meshY
       << ", \"messages\": " << nocMessages_
       << ", \"local_messages\": " << nocLocalMessages_ << ", \"links\": [";
    first = true;
    for (std::size_t li = 0; li < linkBusy_.size(); ++li) {
        os << (first ? "\n" : ",\n") << "    {\"tile\": " << li / 4
           << ", \"dir\": \"" << dirs[li % 4]
           << "\", \"busy_cycles\": " << linkBusy_[li]
           << ", \"messages\": "
           << (li < linkMsgs_.size() ? linkMsgs_[li] : 0) << "}";
        first = false;
    }
    os << "\n  ], \"tile_busy\": [";
    for (unsigned y = 0; y < cfg_.meshY; ++y) {
        os << (y ? ",\n    " : "\n    ") << "[";
        for (unsigned x = 0; x < cfg_.meshX; ++x) {
            const std::size_t tile = std::size_t(y) * cfg_.meshX + x;
            std::uint64_t busy = 0;
            for (unsigned d = 0; d < 4; ++d) {
                if (tile * 4 + d < linkBusy_.size())
                    busy += linkBusy_[tile * 4 + d];
            }
            os << (x ? ", " : "") << busy;
        }
        os << "]";
    }
    os << "\n  ]}";

    os << ",\n  \"folded\": [";
    const std::vector<std::string> folded = foldedLines();
    for (std::size_t i = 0; i < folded.size(); ++i) {
        os << (i ? ",\n    " : "\n    ");
        json::writeString(os, folded[i]);
    }
    os << "\n  ]\n}\n";
}

void
Profiler::writeFolded(std::ostream &os) const
{
    for (const std::string &line : foldedLines())
        os << line << "\n";
}

} // namespace tako::prof
