#include "system/system.hh"

#include <cmath>

#include "sim/tracesink.hh"

namespace tako
{

SystemConfig
SystemConfig::forCores(unsigned cores)
{
    SystemConfig cfg;
    cfg.mem.tiles = cores;
    // Pick the most-square mesh whose area is `cores`.
    unsigned best_x = 1;
    for (unsigned x = 1; x * x <= cores; ++x) {
        if (cores % x == 0)
            best_x = x;
    }
    cfg.mesh.dimX = cores / best_x;
    cfg.mesh.dimY = best_x;
    // Memory bandwidth scales proportionally with cores (Sec. 9):
    // 4 controllers at 16 cores -> 1 controller per 4 tiles.
    cfg.mem.memCtrls = std::max(1u, cores / 4);
    return cfg;
}

System::System(const SystemConfig &config) : config_(config), rng_(config.seed)
{
    fatal_if(config_.mesh.dimX * config_.mesh.dimY != config_.mem.tiles,
             "mesh %ux%u does not cover %u tiles", config_.mesh.dimX,
             config_.mesh.dimY, config_.mem.tiles);

    // Stand up the shard-domain router before any component exists:
    // every run is decomposed over the plan's column partition (one
    // degenerate domain when shards == 1), so the exact same keyed
    // scheduling code executes at every shard count.
    plan_ = ShardPlan::build(config_.mesh.dimX, config_.mesh.dimY,
                             config_.mesh.routerDelay,
                             config_.mesh.linkDelay, config_.shards);
    config_.shards = plan_.shards; // reflect the [1, dimX] clamp
    std::vector<EventQueue *> queues{&eq_};
    for (unsigned s = 1; s < plan_.shards; ++s) {
        shardQueues_.push_back(std::make_unique<EventQueue>());
        queues.push_back(shardQueues_.back().get());
    }
    dom_.init(plan_, std::move(queues));
    // Per-domain stat lanes must exist before components cache handles.
    stats_.enableLanes(plan_.shards);

    energy_ = std::make_unique<EnergyModel>(stats_, config_.energy);
    noc_ = std::make_unique<Mesh>(config_.mesh, stats_, *energy_);
    mem_ = std::make_unique<MemorySystem>(config_.mem, dom_, eq_, stats_,
                                          *energy_, *noc_);
    registry_ = std::make_unique<MorphRegistry>(*mem_, dom_, eq_);
    engines_ = std::make_unique<EngineCluster>(config_.mem.tiles,
                                               config_.engine, *mem_, dom_,
                                               eq_, stats_, *energy_);
    mem_->setCallbackSink(engines_.get());
    if (config_.accessTracer) {
        // The tracer is one host-side consumer fed from every tile; with
        // the model decomposed over worker threads it would race.
        fatal_if(plan_.shards > 1,
                 "access tracing requires a monolithic run (--shards=1)");
        mem_->setAccessTracer(config_.accessTracer);
    }

    if (config_.profile) {
        fatal_if(plan_.shards > 1,
                 "takoprof requires a monolithic run (--shards=1): the "
                 "profiler aggregates into shared tables");
        prof::ProfilerConfig pc;
        pc.tiles = config_.mem.tiles;
        pc.l1Lines = config_.mem.l1Size / lineBytes;
        pc.engL1Lines = config_.mem.engL1Size / lineBytes;
        pc.l2Lines = config_.mem.l2Size / lineBytes;
        // The L3 is one shared cache banked across tiles: reuse
        // distances classify against the aggregate capacity.
        pc.l3Lines =
            std::uint64_t(config_.mem.tiles) *
            (config_.mem.l3BankSize / lineBytes);
        pc.meshX = config_.mesh.dimX;
        pc.meshY = config_.mesh.dimY;
        prof_ = std::make_shared<prof::Profiler>(pc);
        mem_->setProfiler(prof_.get());
        engines_->setProfiler(prof_.get());
        noc_->enableLinkProfiling();
    }

    cores_.reserve(config_.mem.tiles);
    for (unsigned c = 0; c < config_.mem.tiles; ++c) {
        cores_.push_back(std::make_unique<Core>(
            static_cast<int>(c), config_.core, *mem_, *registry_, eq_,
            stats_, *energy_, config_.seed * 7919 + c));
    }

    engines_->setInterruptHandler([this](int core, Addr line) {
        cores_[core]->postInterrupt(line);
    });

    // Last: every component above has registered its counters, so an
    // empty pattern list ("sample everything") sees all of them. The
    // post-run namespaces (host.*, shard.*) are not registered yet and
    // so can never enter the sampled series.
    if (config_.sampleInterval > 0 || config_.progressEvery > 0) {
        mon::TimeSeriesSink::Options mo;
        mo.sampleEvery = config_.sampleInterval;
        mo.patterns = config_.samplePatterns;
        mo.monPath = config_.monPath;
        mo.progressEvery = config_.progressEvery;
        mo.onBeat = config_.onBeat;
        monitor_ = std::make_unique<mon::TimeSeriesSink>(eq_, stats_,
                                                         std::move(mo));
        if (plan_.shards > 1)
            monitor_->shardAcross(dom_.queues());
    } else {
        fatal_if(!config_.monPath.empty(),
                 "a takomon output file needs a sampling interval");
    }
}

void
System::addThread(int core, std::function<Task<>(Guest &)> fn)
{
    pending_.emplace_back(core, std::move(fn));
}

void
System::bootGuests()
{
    // One keyed post per queued guest, in addThread order, onto the
    // owning core's tile. The posts draw system-stream (0) keys before
    // any event has run, so the bootstrap order is identical at every
    // shard count — and each coroutine frame is created, driven, and
    // destroyed in the domain that owns its core.
    for (auto &[core, fn] : pending_) {
        dom_.post(
            core, 0,
            [this, c = core, f = std::move(fn)]() mutable {
                cores_[c]->run(std::move(f));
            },
            EventPriority::High);
    }
    pending_.clear();
}

void
System::postRunChecks() const
{
    unsigned blocked = 0;
    for (const auto &core : cores_)
        blocked += core->running();
    panic_if(blocked != 0,
             "event queue drained with %u guest thread(s) blocked "
             "(deadlock); %u memory transactions in flight",
             blocked, mem_->inflight());
    panic_if(mem_->inflight() != 0,
             "event queue drained with %u memory transactions in flight",
             mem_->inflight());
}

Tick
System::runFor(Tick limit)
{
    fatal_if(plan_.shards > 1,
             "runFor (crash injection) requires a monolithic run "
             "(--shards=1): a bounded window cannot cut a multi-domain "
             "run at one consistent tick");
    const Tick start = eq_.now();
    const auto host_start = std::chrono::steady_clock::now();
    bootGuests();
    eq_.runUntil(start + limit);
    finishMonitor();
    stampShardStats(nullptr, nullptr);
    stampHostStats(host_start);
    finalizeProfiler();
    return eq_.now() - start;
}

void
System::finishMonitor()
{
    fatal_if(monitor_ && !monitor_->finish(), "%s",
             monitor_->error().c_str());
}

void
System::stampShardStats(const ShardPlan *plan,
                        const ShardedExecutor *exec)
{
    // Deterministic sharded-execution observability. Everything under
    // shard.* is a pure function of simulation state — CI diffs these
    // counters between host thread counts at a fixed shard count. Only
    // the barrier-stall gauge is host-timing-dependent, and it lives
    // under host.* accordingly. Monolithic runs stamp the degenerate
    // single-domain shape so benches always find the same extras.
    const unsigned n = plan ? plan->shards : 1;
    stats_
        .counter("shard.domains", "",
                 "event-queue domains in the sharded run (1 = monolithic)")
        .set(n);
    stats_
        .counter("shard.quantum", "cycles",
                 "conservative lookahead window between quantum barriers")
        .set(plan ? static_cast<double>(plan->quantum) : 0.0);
    stats_
        .counter("shard.boundary_links", "",
                 "directed mesh links crossing a shard cut")
        .set(plan ? plan->boundaryLinks : 0.0);
    stats_
        .counter("shard.rounds", "",
                 "quantum rounds completed by the sharded executor")
        .set(exec ? static_cast<double>(exec->rounds()) : 0.0);
    stats_
        .counter("shard.solo_rounds", "",
                 "rounds where one busy domain ran free (skip-ahead)")
        .set(exec ? static_cast<double>(exec->soloRounds()) : 0.0);
    stats_
        .counter("shard.cross_msgs", "events",
                 "cross-shard events delivered through mailboxes")
        .set(exec ? static_cast<double>(exec->crossShardEvents()) : 0.0);

    std::uint64_t maxEvents = 0;
    std::uint64_t totalEvents = 0;
    for (unsigned s = 0; s < n; ++s) {
        ShardedExecutor::DomainProfile prof;
        std::uint64_t sent = 0;
        if (exec) {
            prof = exec->domainProfiles()[s];
            sent = exec->eventsSent(s);
        } else {
            prof.executed = eq_.eventsFired();
            prof.maxRoundEvents = eq_.eventsFired();
        }
        const std::string d = "shard.d" + std::to_string(s);
        stats_
            .counter(d + ".events", "events",
                     "events this domain executed across all rounds")
            .set(static_cast<double>(prof.executed));
        stats_
            .counter(d + ".max_round_events", "events",
                     "events this domain executed in its busiest round")
            .set(static_cast<double>(prof.maxRoundEvents));
        stats_
            .counter(d + ".idle_rounds", "",
                     "lockstep rounds where this domain had no events")
            .set(static_cast<double>(prof.idleRounds));
        stats_
            .counter(d + ".sent", "events",
                     "cross-shard events this domain sent")
            .set(static_cast<double>(sent));
        stats_
            .counter(d + ".received", "events",
                     "cross-shard events delivered to this domain")
            .set(static_cast<double>(prof.received));
        stats_
            .counter(d + ".max_inbox_depth", "events",
                     "deepest single-mailbox drain this domain saw")
            .set(static_cast<double>(prof.maxInboxDepth));
        maxEvents = std::max(maxEvents, prof.executed);
        totalEvents += prof.executed;
    }

    // Load-imbalance report: how unevenly the executed events spread
    // over domains. 1.0 = perfectly balanced; N = one domain did all
    // the work of N.
    const double mean = static_cast<double>(totalEvents) / n;
    stats_
        .counter("shard.events_max", "events",
                 "events executed by the busiest domain")
        .set(static_cast<double>(maxEvents));
    stats_
        .counter("shard.events_mean", "events",
                 "mean events executed per domain")
        .set(mean);
    stats_
        .counter("shard.load_imbalance", "",
                 "busiest domain / mean events per domain")
        .set(mean > 0 ? static_cast<double>(maxEvents) / mean : 0.0);

    stats_
        .counter("host.shard.barrier_wait_seconds", "s",
                 "host time workers spent parked at quantum barriers "
                 "(host-timing-dependent; determinism-exempt)")
        .set(exec ? exec->barrierWaitSeconds() : 0.0);
}

void
System::stampHostStats(
    std::chrono::steady_clock::time_point host_start)
{
    // Host-side throughput gauges. These are the only stats allowed to
    // differ between two otherwise-identical runs; consumers diffing for
    // determinism must skip the host.* namespace. Registered after the
    // run so the sampler's time series (fixed at construction) never
    // sees them.
    hostSeconds_ +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      host_start)
            .count();
    double events = 0;
    for (const EventQueue *q : dom_.queues())
        events += static_cast<double>(q->eventsFired());
    stats_
        .counter("host.seconds", "s",
                 "host wall-clock time spent inside run()/runFor()")
        .set(hostSeconds_);
    stats_
        .counter("host.sim_events", "events",
                 "events executed by the kernel event queue")
        .set(events);
    stats_
        .counter("host.events_per_sec", "events/s",
                 "kernel event throughput (sim_events / seconds)")
        .set(hostSeconds_ > 0 ? events / hostSeconds_ : 0.0);
}

void
System::finalizeProfiler()
{
    if (!prof_ || prof_->finalized())
        return;
    prof_->setNocLinks(noc_->linkBusyCycles(), noc_->linkMessages());
    prof_->setNocTotals(
        static_cast<std::uint64_t>(stats_.get("noc.messages")),
        static_cast<std::uint64_t>(stats_.get("noc.localMessages")));
    prof_->setSetHeat("l1", mem_->aggregateSetHeat(1));
    prof_->setSetHeat("l2", mem_->aggregateSetHeat(2));
    prof_->setSetHeat("l3", mem_->aggregateSetHeat(3));
    prof_->finalize(eq_.now(), stats_);
}

Tick
System::run()
{
    if (plan_.shards > 1)
        return runSharded();
    const Tick start = eq_.now();
    const auto host_start = std::chrono::steady_clock::now();
    bootGuests();
    eq_.run();
    finishMonitor();
    stampShardStats(nullptr, nullptr);
    stampHostStats(host_start);
    postRunChecks();
    finalizeProfiler();
    return eq_.now() - start;
}

Tick
System::runSharded()
{
    fatal_if(trace::spanSink() != nullptr,
             "span tracing writes one shared trace file; record spans "
             "with --shards=1");
    const Tick start = eq_.now();
    const auto host_start = std::chrono::steady_clock::now();

    bootGuests();

    // Each domain drains its own queue under quantum barriers; the
    // Domains router carries every cross-domain edge through the
    // executor's keyed mailboxes while it is installed.
    ShardedExecutor exec(dom_.queues(), plan_.quantum);
    dom_.setExecutor(&exec);
    exec.run();
    dom_.setExecutor(nullptr);

    // Merge order matters: the monitor's tail rows read live lane
    // partials, so fold the stat lanes only after the series merge.
    if (monitor_)
        monitor_->mergeShardSamples();
    stats_.mergeLanes();

    finishMonitor();
    stampShardStats(&plan_, &exec);
    stampHostStats(host_start);
    postRunChecks();
    finalizeProfiler();

    // The run ends at the globally-last event, wherever it executed —
    // the same tick a monolithic run's clock stops at.
    Tick end = start;
    for (const EventQueue *q : dom_.queues())
        end = std::max(end, q->now());
    return end - start;
}

} // namespace tako
