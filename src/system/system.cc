#include "system/system.hh"

#include <cmath>

#include "sim/shard.hh"

namespace tako
{

SystemConfig
SystemConfig::forCores(unsigned cores)
{
    SystemConfig cfg;
    cfg.mem.tiles = cores;
    // Pick the most-square mesh whose area is `cores`.
    unsigned best_x = 1;
    for (unsigned x = 1; x * x <= cores; ++x) {
        if (cores % x == 0)
            best_x = x;
    }
    cfg.mesh.dimX = cores / best_x;
    cfg.mesh.dimY = best_x;
    // Memory bandwidth scales proportionally with cores (Sec. 9):
    // 4 controllers at 16 cores -> 1 controller per 4 tiles.
    cfg.mem.memCtrls = std::max(1u, cores / 4);
    return cfg;
}

System::System(const SystemConfig &config) : config_(config), rng_(config.seed)
{
    fatal_if(config_.mesh.dimX * config_.mesh.dimY != config_.mem.tiles,
             "mesh %ux%u does not cover %u tiles", config_.mesh.dimX,
             config_.mesh.dimY, config_.mem.tiles);
    energy_ = std::make_unique<EnergyModel>(stats_, config_.energy);
    noc_ = std::make_unique<Mesh>(config_.mesh, stats_, *energy_);
    mem_ = std::make_unique<MemorySystem>(config_.mem, eq_, stats_,
                                          *energy_, *noc_);
    registry_ = std::make_unique<MorphRegistry>(*mem_, eq_);
    engines_ = std::make_unique<EngineCluster>(
        config_.mem.tiles, config_.engine, *mem_, eq_, stats_, *energy_);
    mem_->setCallbackSink(engines_.get());
    if (config_.accessTracer)
        mem_->setAccessTracer(config_.accessTracer);

    if (config_.profile) {
        prof::ProfilerConfig pc;
        pc.tiles = config_.mem.tiles;
        pc.l1Lines = config_.mem.l1Size / lineBytes;
        pc.engL1Lines = config_.mem.engL1Size / lineBytes;
        pc.l2Lines = config_.mem.l2Size / lineBytes;
        // The L3 is one shared cache banked across tiles: reuse
        // distances classify against the aggregate capacity.
        pc.l3Lines =
            std::uint64_t(config_.mem.tiles) *
            (config_.mem.l3BankSize / lineBytes);
        pc.meshX = config_.mesh.dimX;
        pc.meshY = config_.mesh.dimY;
        prof_ = std::make_shared<prof::Profiler>(pc);
        mem_->setProfiler(prof_.get());
        engines_->setProfiler(prof_.get());
        noc_->enableLinkProfiling();
    }

    cores_.reserve(config_.mem.tiles);
    for (unsigned c = 0; c < config_.mem.tiles; ++c) {
        cores_.push_back(std::make_unique<Core>(
            static_cast<int>(c), config_.core, *mem_, *registry_, eq_,
            stats_, *energy_, config_.seed * 7919 + c));
    }

    engines_->setInterruptHandler([this](int core, Addr line) {
        cores_[core]->postInterrupt(line);
    });

    // Last: every component above has registered its counters, so an
    // empty pattern list ("sample everything") sees all of them. The
    // post-run namespaces (host.*, shard.*) are not registered yet and
    // so can never enter the sampled series.
    if (config_.sampleInterval > 0 || config_.progressEvery > 0) {
        mon::TimeSeriesSink::Options mo;
        mo.sampleEvery = config_.sampleInterval;
        mo.patterns = config_.samplePatterns;
        mo.monPath = config_.monPath;
        mo.progressEvery = config_.progressEvery;
        mo.onBeat = config_.onBeat;
        monitor_ = std::make_unique<mon::TimeSeriesSink>(eq_, stats_,
                                                         std::move(mo));
    } else {
        fatal_if(!config_.monPath.empty(),
                 "a takomon output file needs a sampling interval");
    }
}

void
System::addThread(int core, std::function<Task<>(Guest &)> fn)
{
    pending_.emplace_back(core, std::move(fn));
}

Tick
System::runFor(Tick limit)
{
    const Tick start = eq_.now();
    const auto host_start = std::chrono::steady_clock::now();
    for (auto &[core, fn] : pending_)
        cores_[core]->run(std::move(fn));
    pending_.clear();
    eq_.runUntil(start + limit);
    finishMonitor();
    stampShardStats(nullptr, nullptr);
    stampHostStats(host_start);
    finalizeProfiler();
    return eq_.now() - start;
}

void
System::finishMonitor()
{
    fatal_if(monitor_ && !monitor_->finish(), "%s",
             monitor_->error().c_str());
}

void
System::stampShardStats(const ShardPlan *plan,
                        const ShardedExecutor *exec)
{
    // Deterministic sharded-execution observability. Everything under
    // shard.* is a pure function of simulation state — CI diffs these
    // counters between host thread counts at a fixed shard count. Only
    // the barrier-stall gauge is host-timing-dependent, and it lives
    // under host.* accordingly. Monolithic runs stamp the degenerate
    // single-domain shape so benches always find the same extras.
    const unsigned n = plan ? plan->shards : 1;
    stats_
        .counter("shard.domains", "",
                 "event-queue domains in the sharded run (1 = monolithic)")
        .set(n);
    stats_
        .counter("shard.quantum", "cycles",
                 "conservative lookahead window between quantum barriers")
        .set(plan ? static_cast<double>(plan->quantum) : 0.0);
    stats_
        .counter("shard.boundary_links", "",
                 "directed mesh links crossing a shard cut")
        .set(plan ? plan->boundaryLinks : 0.0);
    stats_
        .counter("shard.rounds", "",
                 "quantum rounds completed by the sharded executor")
        .set(exec ? static_cast<double>(exec->rounds()) : 0.0);
    stats_
        .counter("shard.solo_rounds", "",
                 "rounds where one busy domain ran free (skip-ahead)")
        .set(exec ? static_cast<double>(exec->soloRounds()) : 0.0);
    stats_
        .counter("shard.cross_msgs", "events",
                 "cross-shard events delivered through mailboxes")
        .set(exec ? static_cast<double>(exec->crossShardEvents()) : 0.0);

    std::uint64_t maxEvents = 0;
    std::uint64_t totalEvents = 0;
    for (unsigned s = 0; s < n; ++s) {
        ShardedExecutor::DomainProfile prof;
        std::uint64_t sent = 0;
        if (exec) {
            prof = exec->domainProfiles()[s];
            sent = exec->eventsSent(s);
        } else {
            prof.executed = eq_.eventsFired();
            prof.maxRoundEvents = eq_.eventsFired();
        }
        const std::string d = "shard.d" + std::to_string(s);
        stats_
            .counter(d + ".events", "events",
                     "events this domain executed across all rounds")
            .set(static_cast<double>(prof.executed));
        stats_
            .counter(d + ".max_round_events", "events",
                     "events this domain executed in its busiest round")
            .set(static_cast<double>(prof.maxRoundEvents));
        stats_
            .counter(d + ".idle_rounds", "",
                     "lockstep rounds where this domain had no events")
            .set(static_cast<double>(prof.idleRounds));
        stats_
            .counter(d + ".sent", "events",
                     "cross-shard events this domain sent")
            .set(static_cast<double>(sent));
        stats_
            .counter(d + ".received", "events",
                     "cross-shard events delivered to this domain")
            .set(static_cast<double>(prof.received));
        stats_
            .counter(d + ".max_inbox_depth", "events",
                     "deepest single-mailbox drain this domain saw")
            .set(static_cast<double>(prof.maxInboxDepth));
        maxEvents = std::max(maxEvents, prof.executed);
        totalEvents += prof.executed;
    }

    // Load-imbalance report: how unevenly the executed events spread
    // over domains. 1.0 = perfectly balanced; N = one domain did all
    // the work of N.
    const double mean = static_cast<double>(totalEvents) / n;
    stats_
        .counter("shard.events_max", "events",
                 "events executed by the busiest domain")
        .set(static_cast<double>(maxEvents));
    stats_
        .counter("shard.events_mean", "events",
                 "mean events executed per domain")
        .set(mean);
    stats_
        .counter("shard.load_imbalance", "",
                 "busiest domain / mean events per domain")
        .set(mean > 0 ? static_cast<double>(maxEvents) / mean : 0.0);

    stats_
        .counter("host.shard.barrier_wait_seconds", "s",
                 "host time workers spent parked at quantum barriers "
                 "(host-timing-dependent; determinism-exempt)")
        .set(exec ? exec->barrierWaitSeconds() : 0.0);
}

void
System::stampHostStats(
    std::chrono::steady_clock::time_point host_start)
{
    // Host-side throughput gauges. These are the only stats allowed to
    // differ between two otherwise-identical runs; consumers diffing for
    // determinism must skip the host.* namespace. Registered after the
    // run so the sampler's time series (fixed at construction) never
    // sees them.
    hostSeconds_ +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      host_start)
            .count();
    const double events = static_cast<double>(eq_.eventsFired());
    stats_
        .counter("host.seconds", "s",
                 "host wall-clock time spent inside run()/runFor()")
        .set(hostSeconds_);
    stats_
        .counter("host.sim_events", "events",
                 "events executed by the kernel event queue")
        .set(events);
    stats_
        .counter("host.events_per_sec", "events/s",
                 "kernel event throughput (sim_events / seconds)")
        .set(hostSeconds_ > 0 ? events / hostSeconds_ : 0.0);
}

void
System::finalizeProfiler()
{
    if (!prof_ || prof_->finalized())
        return;
    prof_->setNocLinks(noc_->linkBusyCycles(), noc_->linkMessages());
    prof_->setNocTotals(
        static_cast<std::uint64_t>(stats_.get("noc.messages")),
        static_cast<std::uint64_t>(stats_.get("noc.localMessages")));
    prof_->setSetHeat("l1", mem_->aggregateSetHeat(1));
    prof_->setSetHeat("l2", mem_->aggregateSetHeat(2));
    prof_->setSetHeat("l3", mem_->aggregateSetHeat(3));
    prof_->finalize(eq_.now(), stats_);
}

Tick
System::run()
{
    if (config_.shards > 1)
        return runSharded();
    const Tick start = eq_.now();
    const auto host_start = std::chrono::steady_clock::now();
    for (auto &[core, fn] : pending_)
        cores_[core]->run(std::move(fn));
    pending_.clear();

    eq_.run();
    finishMonitor();
    stampShardStats(nullptr, nullptr);
    stampHostStats(host_start);

    unsigned blocked = 0;
    for (const auto &core : cores_)
        blocked += core->running();
    panic_if(blocked != 0,
             "event queue drained with %u guest thread(s) blocked "
             "(deadlock); %u memory transactions in flight",
             blocked, mem_->inflight());
    panic_if(mem_->inflight() != 0,
             "event queue drained with %u memory transactions in flight",
             mem_->inflight());
    finalizeProfiler();
    return eq_.now() - start;
}

Tick
System::runSharded()
{
    const Tick start = eq_.now();
    const auto host_start = std::chrono::steady_clock::now();

    const ShardPlan plan = ShardPlan::build(
        config_.mesh.dimX, config_.mesh.dimY, config_.mesh.routerDelay,
        config_.mesh.linkDelay, config_.shards);

    // Stage the guest-thread starts as the first event so every
    // coroutine frame is created, driven, and destroyed on the owning
    // shard's worker thread (frame arenas are per-thread). The
    // bootstrap shifts every event seq by one uniformly, which
    // preserves the (tick, priority, seq) relative order exactly.
    eq_.schedule(
        0,
        [this]() {
            for (auto &[core, fn] : pending_)
                cores_[core]->run(std::move(fn));
            pending_.clear();
        },
        EventPriority::High);

    // Domain 0 carries the whole model today; the remaining shard
    // domains are stood up from the plan and drained in lockstep, so
    // the quantum-barrier protocol (and its determinism guarantee) is
    // exercised on every sharded run while the mesh decomposition
    // lands tile by tile (DESIGN.md §4.6).
    std::vector<std::unique_ptr<EventQueue>> extras;
    std::vector<EventQueue *> domains{&eq_};
    for (unsigned s = 1; s < plan.shards; ++s) {
        extras.push_back(std::make_unique<EventQueue>());
        domains.push_back(extras.back().get());
    }
    ShardedExecutor exec(domains, plan.quantum);
    exec.run();

    finishMonitor();
    stampShardStats(&plan, &exec);
    stampHostStats(host_start);

    unsigned blocked = 0;
    for (const auto &core : cores_)
        blocked += core->running();
    panic_if(blocked != 0,
             "event queue drained with %u guest thread(s) blocked "
             "(deadlock); %u memory transactions in flight",
             blocked, mem_->inflight());
    panic_if(mem_->inflight() != 0,
             "event queue drained with %u memory transactions in flight",
             mem_->inflight());
    finalizeProfiler();
    return eq_.now() - start;
}

} // namespace tako
