/**
 * @file
 * System builder: constructs the full tiled CMP of Table 3 (cores, NoC,
 * caches, memory controllers, engines, morph registry) from one config,
 * runs guest threads to completion, and reports results.
 */

#ifndef TAKO_SYSTEM_SYSTEM_HH
#define TAKO_SYSTEM_SYSTEM_HH

#include <chrono>
#include <functional>
#include <memory>
#include <vector>

#include "core/core.hh"
#include "energy/energy.hh"
#include "mem/memory_system.hh"
#include "mon/sink.hh"
#include "noc/mesh.hh"
#include "prof/profiler.hh"
#include "sim/domains.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "sim/shard.hh"
#include "sim/stats.hh"
#include "tako/engine.hh"
#include "tako/registry.hh"

namespace tako
{

struct SystemConfig
{
    MemParams mem;
    EngineParams engine;
    CoreParams core;
    MeshParams mesh;
    EnergyParams energy;
    std::uint64_t seed = 1;

    /** takoprof: build a Profiler and hook it into the memory system,
     *  engines, and NoC. Purely observational — enabling it changes no
     *  simulated timing or stat (the determinism test holds it to that). */
    bool profile = false;

    /** takotrace recording: invoked at the issue of every core demand
     *  access (see MemorySystem::setAccessTracer). Observational only:
     *  installing it changes no simulated timing or stat. */
    std::function<void(Tick, const AccessReq &)> accessTracer;

    /** Periodic counter sampling: snapshot every @c sampleInterval
     *  cycles into StatsRegistry::timeSeries() (0 disables). Patterns
     *  select which counters (wildcards allowed; empty = all). */
    Tick sampleInterval = 0;
    std::vector<std::string> samplePatterns;

    /** takomon-v1 binary telemetry output path (empty disables).
     *  Requires sampleInterval > 0; the file holds the same rows as the
     *  in-memory time series and is bit-identical across host thread
     *  counts and shard counts (CI gates on it). */
    std::string monPath;

    /** Progress heartbeat cadence in cycles (0 disables). Beats fire at
     *  deterministic sim ticks but carry host-side throughput; they go
     *  to @c onBeat (or one stderr line each), never into stats. */
    Tick progressEvery = 0;
    std::function<void(const mon::ProgressBeat &)> onBeat;

    /**
     * Shard the run across a ShardPlan partition (1 = monolithic,
     * today's behavior). run() then executes on a sharded conservative
     * executor whose quantum derives from the mesh's minimum cross-
     * shard latency; every non-host.* stat is bit-identical to the
     * monolithic run (CI gates on it). Clamped to the mesh's columns.
     */
    unsigned shards = 1;

    /** Table 3 configuration scaled to @p cores (8 -> 4x2, 16 -> 4x4,
     *  36 -> 6x6; memory bandwidth scales with cores, Sec. 9). */
    static SystemConfig forCores(unsigned cores);
};

class System
{
  public:
    explicit System(const SystemConfig &config);

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    const SystemConfig &config() const { return config_; }
    EventQueue &eq() { return eq_; }
    Domains &domains() { return dom_; }
    const ShardPlan &shardPlan() const { return plan_; }
    StatsRegistry &stats() { return stats_; }
    EnergyModel &energy() { return *energy_; }
    Mesh &noc() { return *noc_; }
    MemorySystem &mem() { return *mem_; }
    MorphRegistry &registry() { return *registry_; }
    EngineCluster &engines() { return *engines_; }
    Core &core(int i) { return *cores_[i]; }
    unsigned numCores() const { return static_cast<unsigned>(cores_.size()); }
    Rng &rng() { return rng_; }

    /** Queue a guest thread on @p core (runs when run() is called). */
    void addThread(int core, std::function<Task<>(Guest &)> fn);

    /**
     * Run to completion (event queue drains). Panics with diagnostics if
     * guests are still blocked when no events remain (deadlock).
     * @return simulated cycles elapsed.
     */
    Tick run();

    /**
     * Run for at most @p limit cycles (crash-injection experiments):
     * execution simply stops mid-flight, leaving caches and stores in
     * their at-crash state for inspection. The system cannot be resumed.
     */
    Tick runFor(Tick limit);

    double totalEnergy() const { return energy_->total(); }

    /** Null unless config.profile; finalized when run()/runFor() returns. */
    prof::Profiler *profiler() { return prof_.get(); }
    std::shared_ptr<prof::Profiler> profilerShared() const { return prof_; }

    /** The takomon sink (null unless sampling or progress beats are
     *  configured). Callers may install a done-fraction provider for
     *  heartbeat ETAs (see mon::TimeSeriesSink::setFractionDone). */
    mon::TimeSeriesSink *monitor() { return monitor_.get(); }

  private:
    /** run() body for config.shards > 1: every shard domain owns its
     *  tiles' model state (cores, engines, caches, directory slices,
     *  routers) and drains its own EventQueue on a ShardedExecutor
     *  worker under quantum barriers; cross-domain edges travel through
     *  Domains::post keyed mailboxes, so the merged order — and every
     *  non-host.* stat — is bit-identical to the monolithic run
     *  (DESIGN.md §4.6). */
    Tick runSharded();

    /** Stage the queued guest threads as per-tile bootstrap events (the
     *  same keyed posts at every shard count, so coroutine frames are
     *  created, driven, and destroyed in the owning domain). */
    void bootGuests();

    /** Post-run deadlock/leak checks shared by run() and runSharded(). */
    void postRunChecks() const;

    /** Harvest NoC/set-heat counters into the profiler and finalize it. */
    void finalizeProfiler();

    /** Set the host.* wall-clock/throughput gauges after a run. */
    void stampHostStats(std::chrono::steady_clock::time_point host_start);

    /**
     * Register the deterministic shard.* execution/load-imbalance
     * counters after a run. Registered post-run (like host.*) so the
     * takomon series set — fixed at construction — never depends on the
     * shard topology; the values themselves are deterministic and CI
     * diffs them across host thread counts. @p exec is null for
     * monolithic runs, which stamp the degenerate single-domain shape.
     */
    void stampShardStats(const ShardPlan *plan,
                         const ShardedExecutor *exec);

    /** Close the takomon file (if any); write errors are fatal. */
    void finishMonitor();

    SystemConfig config_;
    EventQueue eq_;
    /** Column partition of the mesh; degenerate (1 shard) when
     *  config.shards == 1 — the same decomposed code runs either way. */
    ShardPlan plan_;
    /** Queues for shard domains 1..N-1 (domain 0 runs on eq_). */
    std::vector<std::unique_ptr<EventQueue>> shardQueues_;
    /** Tile-to-domain router; every component schedules through it. */
    Domains dom_;
    StatsRegistry stats_;
    Rng rng_;
    std::unique_ptr<EnergyModel> energy_;
    std::unique_ptr<Mesh> noc_;
    std::unique_ptr<MemorySystem> mem_;
    std::unique_ptr<MorphRegistry> registry_;
    std::unique_ptr<EngineCluster> engines_;
    std::shared_ptr<prof::Profiler> prof_;
    std::vector<std::unique_ptr<Core>> cores_;
    std::unique_ptr<mon::TimeSeriesSink> monitor_;
    std::vector<std::pair<int, std::function<Task<>(Guest &)>>> pending_;
    double hostSeconds_ = 0.0;
};

} // namespace tako

#endif // TAKO_SYSTEM_SYSTEM_HH
