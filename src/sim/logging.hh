/**
 * @file
 * Error and status reporting, in the spirit of gem5's logging.hh.
 *
 * panic()  - internal simulator invariant violated; aborts.
 * fatal()  - user/configuration error; exits with status 1.
 * warn()   - something questionable but survivable.
 * inform() - status messages.
 */

#ifndef TAKO_SIM_LOGGING_HH
#define TAKO_SIM_LOGGING_HH

#include <cstdarg>
#include <string>

namespace tako
{

/** Printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Enable/disable inform() output (benches silence it). */
void setVerbose(bool verbose);
bool verbose();

} // namespace tako

#define panic(...) \
    ::tako::panicImpl(__FILE__, __LINE__, ::tako::strprintf(__VA_ARGS__))
#define fatal(...) \
    ::tako::fatalImpl(__FILE__, __LINE__, ::tako::strprintf(__VA_ARGS__))
#define warn(...) ::tako::warnImpl(::tako::strprintf(__VA_ARGS__))
#define inform(...) ::tako::informImpl(::tako::strprintf(__VA_ARGS__))

#define panic_if(cond, ...)                  \
    do {                                     \
        if (cond) { panic(__VA_ARGS__); }    \
    } while (0)

#define fatal_if(cond, ...)                  \
    do {                                     \
        if (cond) { fatal(__VA_ARGS__); }    \
    } while (0)

#endif // TAKO_SIM_LOGGING_HH
