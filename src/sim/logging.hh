/**
 * @file
 * Error and status reporting, in the spirit of gem5's logging.hh.
 *
 * panic()  - internal simulator invariant violated; aborts.
 * fatal()  - user/configuration error; exits with status 1.
 * warn()   - something questionable but survivable.
 * inform() - status messages.
 *
 * Every call can additionally be mirrored as one severity-tagged JSON
 * line to a structured run log (setJsonLog): {"event":"log","sev":...,
 * "msg":...}, plus "file"/"line" for panic/fatal. Tools append their
 * own structured events (progress beats, run markers) through
 * jsonLogEvent(). The log is host-side observability — it never feeds
 * back into simulation state.
 */

#ifndef TAKO_SIM_LOGGING_HH
#define TAKO_SIM_LOGGING_HH

#include <cstdarg>
#include <string>
#include <utility>
#include <vector>

namespace tako
{

/** Printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Enable/disable inform() output (benches silence it). */
void setVerbose(bool verbose);
bool verbose();

/**
 * Mirror panic/fatal/warn/inform to @p path as JSON lines (truncates;
 * empty path closes the log). Returns false if the file cannot be
 * created. Thread-safe: each line is written whole under one lock.
 */
bool setJsonLog(const std::string &path);
bool jsonLogEnabled();

/**
 * Append one structured event: {"event":@p event, ...string fields,
 * ...number fields} as a single JSON line. No-op when no log is set.
 */
void jsonLogEvent(
    const std::string &event,
    const std::vector<std::pair<std::string, std::string>> &strFields,
    const std::vector<std::pair<std::string, double>> &numFields = {});

} // namespace tako

#define panic(...) \
    ::tako::panicImpl(__FILE__, __LINE__, ::tako::strprintf(__VA_ARGS__))
#define fatal(...) \
    ::tako::fatalImpl(__FILE__, __LINE__, ::tako::strprintf(__VA_ARGS__))
#define warn(...) ::tako::warnImpl(::tako::strprintf(__VA_ARGS__))
#define inform(...) ::tako::informImpl(::tako::strprintf(__VA_ARGS__))

#define panic_if(cond, ...)                  \
    do {                                     \
        if (cond) { panic(__VA_ARGS__); }    \
    } while (0)

#define fatal_if(cond, ...)                  \
    do {                                     \
        if (cond) { fatal(__VA_ARGS__); }    \
    } while (0)

#endif // TAKO_SIM_LOGGING_HH
