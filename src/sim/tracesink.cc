#include "sim/tracesink.hh"

#include <sstream>

#include "sim/stats.hh" // json::writeString

namespace tako::trace
{

namespace detail
{
ChromeTraceWriter *g_spanSink = nullptr;
std::uint32_t g_spanMask = 0;
} // namespace detail

void
setSpanSink(ChromeTraceWriter *sink, std::uint32_t mask)
{
    detail::g_spanSink = sink;
    detail::g_spanMask = sink ? (mask & allFlagsMask()) : 0;
}

ChromeTraceWriter::ChromeTraceWriter(std::ostream &os) : os_(os)
{
    os_ << "[";
}

ChromeTraceWriter::~ChromeTraceWriter()
{
    if (detail::g_spanSink == this)
        setSpanSink(nullptr);
    close();
}

void
ChromeTraceWriter::close()
{
    if (closed_)
        return;
    closed_ = true;
    os_ << "\n]\n";
    os_.flush();
}

void
ChromeTraceWriter::event(const char *ph, const char *cat, const char *name,
                         int pid, int tid, Tick ts, Tick dur, bool has_dur,
                         const std::string &args_json)
{
    panic_if(closed_, "trace event after close()");
    os_ << (first_ ? "\n" : ",\n");
    first_ = false;
    os_ << "{\"ph\":\"" << ph << "\",\"pid\":" << pid
        << ",\"tid\":" << tid << ",\"ts\":" << ts;
    if (has_dur)
        os_ << ",\"dur\":" << dur;
    if (cat)
        os_ << ",\"cat\":\"" << cat << "\"";
    os_ << ",\"name\":";
    json::writeString(os_, name);
    if (!args_json.empty())
        os_ << ",\"args\":" << args_json;
    os_ << "}";
    ++events_;
}

void
ChromeTraceWriter::completeEvent(const char *cat, const char *name,
                                 int pid, int tid, Tick ts, Tick dur,
                                 const std::string &args_json)
{
    event("X", cat, name, pid, tid, ts, dur, true, args_json);
}

void
ChromeTraceWriter::instantEvent(const char *cat, const char *name, int pid,
                                int tid, Tick ts,
                                const std::string &args_json)
{
    event("i", cat, name, pid, tid, ts, 0, false, args_json);
}

void
ChromeTraceWriter::ensureTrack(int pid, const char *process, int tid,
                               const std::string &thread)
{
    if (processes_.insert(pid).second) {
        event("M", nullptr, "process_name", pid, 0, 0, 0, false,
              std::string("{\"name\":\"") + process + "\"}");
    }
    const std::uint64_t key =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(pid))
         << 32) |
        static_cast<std::uint32_t>(tid);
    if (tracks_.insert(key).second) {
        std::ostringstream args;
        args << "{\"name\":";
        json::writeString(args, thread);
        args << "}";
        event("M", nullptr, "thread_name", pid, tid, 0, 0, false,
              args.str());
    }
}

} // namespace tako::trace
