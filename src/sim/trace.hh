/**
 * @file
 * Category-based debug tracing, in the spirit of gem5's DPRINTF.
 *
 * Enable categories with the TAKO_TRACE environment variable, e.g.:
 *
 *   TAKO_TRACE=cache,engine ./build/examples/quickstart
 *   TAKO_TRACE=all          ./build/tests/test_mem
 *
 * Each line carries the simulated tick and the category. Tracing is
 * compiled in (the enabled() check is one branch on a cached bitmask)
 * so any binary can be traced without rebuilding.
 *
 * The same categories also gate the structured span sink (tracesink.hh):
 * when a ChromeTraceWriter is installed, transaction/callback/DRAM spans
 * are recorded as Chrome trace events loadable in Perfetto. With no sink
 * installed, span emission is a single branch on a null pointer.
 */

#ifndef TAKO_SIM_TRACE_HH
#define TAKO_SIM_TRACE_HH

#include <cstdint>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace tako::trace
{

enum class Flag : std::uint32_t
{
    Cache = 1u << 0,     ///< hits/misses/evictions at L1/L2
    Coherence = 1u << 1, ///< directory actions, invalidations
    Engine = 1u << 2,    ///< callback scheduling and retirement
    Morph = 1u << 3,     ///< registration / flush / unregister
    Noc = 1u << 4,       ///< message traversals
    Dram = 1u << 5,      ///< memory-controller accesses
    Rmo = 1u << 6,       ///< remote memory operations
    Mem = 1u << 7,       ///< end-to-end memory transactions (spans)

    /** Count of defined flags; must be last. parseSpec() and "all"
     *  derive the set of valid bits from this sentinel, so adding a
     *  flag above (and a name in trace.cc) is all it takes. */
    NumFlags = 8,
};

/** Mask with every defined flag set ("all"). */
constexpr std::uint32_t
allFlagsMask()
{
    return (1u << static_cast<std::uint32_t>(Flag::NumFlags)) - 1;
}

/** Parse a comma-separated category spec ("cache,engine" / "all"). */
std::uint32_t parseSpec(const char *spec);

/** Bitmask of enabled flags, parsed once from TAKO_TRACE. */
std::uint32_t enabledMask();

inline bool
enabled(Flag f)
{
    return (enabledMask() & static_cast<std::uint32_t>(f)) != 0;
}

/** Emit one trace line: "<tick>: <category>: <message>". */
void emit(Flag f, Tick now, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

} // namespace tako::trace

/** Guarded trace macro: evaluates arguments only when enabled. */
#define TRACE(flag, now, ...)                                           \
    do {                                                                \
        if (::tako::trace::enabled(::tako::trace::Flag::flag))          \
            ::tako::trace::emit(::tako::trace::Flag::flag, (now),       \
                                __VA_ARGS__);                           \
    } while (0)

#endif // TAKO_SIM_TRACE_HH
