#include "sim/stats.hh"

#include <iomanip>

namespace tako
{

namespace
{

/** Match @p name against a pattern with at most one '*' wildcard. */
bool
matches(const std::string &name, const std::string &pattern)
{
    auto star = pattern.find('*');
    if (star == std::string::npos)
        return name == pattern;
    const std::string prefix = pattern.substr(0, star);
    const std::string suffix = pattern.substr(star + 1);
    if (name.size() < prefix.size() + suffix.size())
        return false;
    return name.compare(0, prefix.size(), prefix) == 0 &&
           name.compare(name.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

} // namespace

double
StatsRegistry::sumMatching(const std::string &pattern) const
{
    double sum = 0;
    for (const auto &kv : counters_) {
        if (matches(kv.first, pattern))
            sum += kv.second.value();
    }
    return sum;
}

void
StatsRegistry::dump(std::ostream &os) const
{
    os << std::left;
    for (const auto &kv : counters_) {
        os << std::setw(48) << kv.first << " "
           << std::setprecision(12) << kv.second.value() << "\n";
    }
    for (const auto &kv : histograms_) {
        const Histogram &h = kv.second;
        os << std::setw(48) << (kv.first + ".count") << " " << h.count()
           << "\n";
        os << std::setw(48) << (kv.first + ".mean") << " " << h.mean()
           << "\n";
        os << std::setw(48) << (kv.first + ".max") << " " << h.max() << "\n";
    }
}

} // namespace tako
