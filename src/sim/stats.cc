#include "sim/stats.hh"

#include <cmath>
#include <cstdio>
#include <iomanip>

namespace tako
{

namespace
{

/** Match @p name against a pattern with at most one '*' wildcard. */
bool
matches(const std::string &name, const std::string &pattern)
{
    auto star = pattern.find('*');
    if (star == std::string::npos)
        return name == pattern;
    const std::string prefix = pattern.substr(0, star);
    const std::string suffix = pattern.substr(star + 1);
    if (name.size() < prefix.size() + suffix.size())
        return false;
    return name.compare(0, prefix.size(), prefix) == 0 &&
           name.compare(name.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

} // namespace

namespace json
{

void
writeString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"':
            os << "\\\"";
            break;
          case '\\':
            os << "\\\\";
            break;
          case '\n':
            os << "\\n";
            break;
          case '\r':
            os << "\\r";
            break;
          case '\t':
            os << "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c) & 0xff);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

void
writeNumber(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        // JSON has no NaN/Inf; null keeps the document parseable.
        os << "null";
        return;
    }
    if (v == std::floor(v) && std::abs(v) < 1e15) {
        os << static_cast<long long>(v);
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os << buf;
}

} // namespace json

double
StatsRegistry::sumMatching(const std::string &pattern) const
{
    double sum = 0;
    for (const auto &kv : counters_) {
        if (matches(kv.first, pattern))
            sum += kv.second.value();
    }
    return sum;
}

std::vector<std::string>
StatsRegistry::counterNamesMatching(const std::string &pattern) const
{
    std::vector<std::string> names;
    for (const auto &kv : counters_) {
        if (matches(kv.first, pattern))
            names.push_back(kv.first);
    }
    return names;
}

std::vector<std::string>
StatsRegistry::histogramNamesMatching(const std::string &pattern) const
{
    std::vector<std::string> names;
    for (const auto &kv : histograms_) {
        if (matches(kv.first, pattern))
            names.push_back(kv.first);
    }
    return names;
}

void
StatsRegistry::recordSample(Tick tick)
{
    timeseries_.ticks.push_back(tick);
    std::vector<double> row;
    row.reserve(timeseries_.names.size());
    for (const std::string &name : timeseries_.names)
        row.push_back(get(name));
    timeseries_.samples.push_back(std::move(row));
}

void
StatsRegistry::dump(std::ostream &os) const
{
    os << std::left;
    for (const auto &kv : counters_) {
        os << std::setw(48) << kv.first << " "
           << std::setprecision(12) << kv.second.value() << "\n";
    }
    for (const auto &kv : histograms_) {
        const Histogram &h = kv.second;
        os << std::setw(48) << (kv.first + ".count") << " " << h.count()
           << "\n";
        os << std::setw(48) << (kv.first + ".mean") << " " << h.mean()
           << "\n";
        os << std::setw(48) << (kv.first + ".max") << " " << h.max() << "\n";
    }
}

void
StatsRegistry::dumpJson(
    std::ostream &os,
    const std::vector<std::pair<std::string, std::string>> &header,
    const std::vector<std::pair<std::string, double>> &numericHeader) const
{
    auto write_meta = [&](const std::string &name) {
        if (const StatMeta *m = meta(name)) {
            if (!m->unit.empty()) {
                os << ", \"unit\": ";
                json::writeString(os, m->unit);
            }
            if (!m->desc.empty()) {
                os << ", \"desc\": ";
                json::writeString(os, m->desc);
            }
        }
    };

    os << "{\n";
    for (const auto &[key, value] : header) {
        os << "  ";
        json::writeString(os, key);
        os << ": ";
        json::writeString(os, value);
        os << ",\n";
    }
    for (const auto &[key, value] : numericHeader) {
        os << "  ";
        json::writeString(os, key);
        os << ": ";
        json::writeNumber(os, value);
        os << ",\n";
    }
    os << "  \"counters\": {";
    bool first = true;
    for (const auto &kv : counters_) {
        os << (first ? "\n" : ",\n") << "    ";
        first = false;
        json::writeString(os, kv.first);
        os << ": {\"value\": ";
        json::writeNumber(os, kv.second.value());
        write_meta(kv.first);
        os << "}";
    }
    os << "\n  },\n  \"histograms\": {";

    first = true;
    for (const auto &kv : histograms_) {
        const Histogram &h = kv.second;
        os << (first ? "\n" : ",\n") << "    ";
        first = false;
        json::writeString(os, kv.first);
        os << ": {\"count\": " << h.count() << ", \"sum\": ";
        json::writeNumber(os, h.sum());
        os << ", \"mean\": ";
        json::writeNumber(os, h.mean());
        os << ", \"max\": " << h.max()
           << ", \"bucket_width\": " << h.bucketWidth() << ", \"buckets\": [";
        for (std::size_t i = 0; i < h.buckets().size(); ++i)
            os << (i ? ", " : "") << h.buckets()[i];
        os << "]";
        write_meta(kv.first);
        os << "}";
    }
    os << "\n  }";

    if (timeseries_.enabled()) {
        os << ",\n  \"timeseries\": {\n    \"interval\": "
           << timeseries_.interval << ",\n    \"names\": [";
        for (std::size_t i = 0; i < timeseries_.names.size(); ++i) {
            os << (i ? ", " : "");
            json::writeString(os, timeseries_.names[i]);
        }
        os << "],\n    \"ticks\": [";
        for (std::size_t i = 0; i < timeseries_.ticks.size(); ++i)
            os << (i ? ", " : "") << timeseries_.ticks[i];
        os << "],\n    \"samples\": [";
        for (std::size_t i = 0; i < timeseries_.samples.size(); ++i) {
            os << (i ? ",\n      " : "\n      ") << "[";
            const auto &row = timeseries_.samples[i];
            for (std::size_t j = 0; j < row.size(); ++j) {
                os << (j ? ", " : "");
                json::writeNumber(os, row[j]);
            }
            os << "]";
        }
        os << "\n    ]\n  }";
    }
    os << "\n}\n";
}

} // namespace tako
