#include "sim/logging.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

namespace tako
{

namespace
{

bool verboseFlag = true;

// Structured run log. One global sink mirrors every logging call site
// without threading a handle through the simulator; a mutex keeps lines
// whole when worker threads warn concurrently.
std::mutex jsonLogMutex;
std::FILE *jsonLogFile = nullptr;

/** Append a JSON string literal (quoted, escaped) to @p out. */
void
appendJsonString(std::string &out, const std::string &s)
{
    out += '"';
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
jsonLogLine(const char *sev, const std::string &msg, const char *file,
            int line)
{
    std::vector<std::pair<std::string, std::string>> str = {
        {"sev", sev}, {"msg", msg}};
    std::vector<std::pair<std::string, double>> num;
    if (file) {
        str.emplace_back("file", file);
        num.emplace_back("line", line);
    }
    jsonLogEvent("log", str, num);
}

} // namespace

bool
setJsonLog(const std::string &path)
{
    std::lock_guard<std::mutex> lk(jsonLogMutex);
    if (jsonLogFile) {
        std::fclose(jsonLogFile);
        jsonLogFile = nullptr;
    }
    if (path.empty())
        return true;
    jsonLogFile = std::fopen(path.c_str(), "wb");
    return jsonLogFile != nullptr;
}

bool
jsonLogEnabled()
{
    std::lock_guard<std::mutex> lk(jsonLogMutex);
    return jsonLogFile != nullptr;
}

void
jsonLogEvent(
    const std::string &event,
    const std::vector<std::pair<std::string, std::string>> &strFields,
    const std::vector<std::pair<std::string, double>> &numFields)
{
    std::lock_guard<std::mutex> lk(jsonLogMutex);
    if (!jsonLogFile)
        return;
    std::string out = "{\"event\":";
    appendJsonString(out, event);
    for (const auto &[k, v] : strFields) {
        out += ',';
        appendJsonString(out, k);
        out += ':';
        appendJsonString(out, v);
    }
    for (const auto &[k, v] : numFields) {
        out += ',';
        appendJsonString(out, k);
        out += ':';
        char buf[40];
        if (std::nearbyint(v) == v && std::fabs(v) < 1e15)
            std::snprintf(buf, sizeof(buf), "%lld",
                          static_cast<long long>(v));
        else
            std::snprintf(buf, sizeof(buf), "%.17g", v);
        out += buf;
    }
    out += "}\n";
    std::fwrite(out.data(), 1, out.size(), jsonLogFile);
    // Line-buffered on purpose: the run log is the thing humans tail
    // while a long simulation spins, and the crash lines (panic/fatal)
    // must already be on disk when the process dies.
    std::fflush(jsonLogFile);
}

void
setVerbose(bool verbose)
{
    verboseFlag = verbose;
}

bool
verbose()
{
    return verboseFlag;
}

std::string
strprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    std::string out;
    if (len > 0) {
        std::vector<char> buf(static_cast<size_t>(len) + 1);
        std::vsnprintf(buf.data(), buf.size(), fmt, args);
        out.assign(buf.data(), static_cast<size_t>(len));
    }
    va_end(args);
    return out;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    jsonLogLine("panic", msg, file, line);
    std::fprintf(stderr, "panic: %s\n  @ %s:%d\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    jsonLogLine("fatal", msg, file, line);
    std::fprintf(stderr, "fatal: %s\n  @ %s:%d\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    jsonLogLine("warn", msg, nullptr, 0);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    jsonLogLine("info", msg, nullptr, 0);
    if (verboseFlag)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace tako
