#include "sim/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace tako
{

namespace
{
bool verboseFlag = true;
} // namespace

void
setVerbose(bool verbose)
{
    verboseFlag = verbose;
}

bool
verbose()
{
    return verboseFlag;
}

std::string
strprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    std::string out;
    if (len > 0) {
        std::vector<char> buf(static_cast<size_t>(len) + 1);
        std::vsnprintf(buf.data(), buf.size(), fmt, args);
        out.assign(buf.data(), static_cast<size_t>(len));
    }
    va_end(args);
    return out;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n  @ %s:%d\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n  @ %s:%d\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (verboseFlag)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace tako
