#include "sim/random.hh"

#include "sim/logging.hh"

namespace tako
{

namespace
{

double
zeta(std::uint64_t n, double theta)
{
    double sum = 0;
    for (std::uint64_t i = 1; i <= n; ++i)
        sum += 1.0 / std::pow(static_cast<double>(i), theta);
    return sum;
}

} // namespace

ZipfianGenerator::ZipfianGenerator(std::uint64_t n, double theta)
    : n_(n), theta_(theta)
{
    panic_if(n == 0, "Zipfian over empty domain");
    zetan_ = zeta(n, theta);
    const double zeta2 = zeta(2, theta);
    alpha_ = 1.0 / (1.0 - theta);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
           (1.0 - zeta2 / zetan_);
}

std::uint64_t
ZipfianGenerator::operator()(Rng &rng) const
{
    const double u = rng.real();
    const double uz = u * zetan_;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, theta_))
        return 1;
    auto rank = static_cast<std::uint64_t>(
        static_cast<double>(n_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_));
    if (rank >= n_)
        rank = n_ - 1;
    return rank;
}

} // namespace tako
