/**
 * @file
 * Deterministic discrete-event queue.
 *
 * Events are totally ordered by (tick, priority, insertion sequence), so a
 * simulation with the same inputs and seeds always replays identically.
 * Everything that takes simulated time in tako-sim — cache lookups, NoC
 * hops, DRAM accesses, engine callbacks, core compute — is an event chain
 * on one global queue.
 *
 * Internally this is a two-level calendar queue over pooled EventNodes
 * (see event_pool.hh) rather than a binary heap of std::function entries:
 *
 *  - A wheel of kWheelSlots power-of-two buckets covers the near window
 *    [base_, base_ + kWheelSlots). An event at tick T lives in slot
 *    (T & kWheelMask); within a slot, one FIFO lane per EventPriority.
 *    Schedule and pop are O(1) — no sift, no per-event allocation.
 *  - Events beyond the window go to a small overflow min-heap ordered by
 *    (tick, priority, seq). Whenever base_ advances, every overflow event
 *    that now falls inside the window migrates into the wheel *before*
 *    any callback at the new time runs.
 *
 * Why that preserves the exact total order: (1) wheel events are always
 * < base_ + kWheelSlots and overflow events >= base_ + kWheelSlots, so
 * the global minimum is in the wheel whenever the wheel is non-empty;
 * (2) the heap pops in (tick, priority, seq) order, so migration appends
 * to each lane in seq order; (3) a callback scheduling directly into the
 * wheel at tick T can only run after every overflow event at T has
 * already migrated (eager migration), and its seq is larger than theirs —
 * so lane FIFO order is seq order; (4) two different ticks in the window
 * cannot collide in a slot because the window spans exactly one wheel
 * period. See DESIGN.md "Simulation kernel internals".
 */

#ifndef TAKO_SIM_EVENT_QUEUE_HH
#define TAKO_SIM_EVENT_QUEUE_HH

#include <array>
#include <bit>
#include <cstdint>
#ifdef TAKO_EVENT_TRACE
#include <cstdio>
#include <cstdlib>
#endif
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "sim/event_pool.hh"
#include "sim/exec_ctx.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace tako
{

/** Scheduling priority for events at the same tick (lower runs first). */
enum class EventPriority : int
{
    High = -1,
    Default = 0,
    Low = 1,
};

/**
 * Partition-invariant tie-break keys for domain-decomposed runs.
 *
 * A monolithic queue breaks (tick, priority) ties with one insertion
 * counter — an order that depends on which other streams' events
 * interleave with the scheduler's, and therefore on how the model is
 * partitioned. Decomposed runs instead key every event by
 * (source stream, per-stream sequence): each logical stream (tile) hands
 * out its own sequence numbers in its own execution order, which is a
 * pure function of simulation state. Sorting same-tick events by that
 * packed key yields the identical total order at every shard count
 * (DESIGN.md §4.6).
 *
 * Each stream's cell is only ever touched by the one domain that owns
 * the stream's tile, so the shared table needs no atomics — just cache-
 * line padding so neighboring owners don't false-share.
 */
class StreamKeySource
{
  public:
    /** Low bits hold the per-stream sequence; high bits the stream. */
    static constexpr unsigned kSeqBits = 44;

    explicit StreamKeySource(std::size_t streams) : cells_(streams) {}

    std::uint64_t
    next(std::uint32_t stream)
    {
        // 2^44 events per stream outlasts any realistic run; the pack
        // would need a widening long before the counter wraps.
        return (std::uint64_t{stream} << kSeqBits) |
               cells_[stream].seq++;
    }

    std::size_t streams() const { return cells_.size(); }

  private:
    struct alignas(64) Cell
    {
        std::uint64_t seq = 0;
    };

    std::vector<Cell> cells_;
};

class EventQueue
{
  public:
    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    ~EventQueue() { dropAll(); }

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedule @p fn to run @p delta ticks from now. */
    template <typename F>
    void
    schedule(Tick delta, F &&fn, EventPriority prio = EventPriority::Default)
    {
        scheduleAbs(now_ + delta, std::forward<F>(fn), prio);
    }

    /** Schedule @p fn at absolute tick @p when (must not be in the past). */
    template <typename F>
    void
    scheduleAbs(Tick when, F &&fn,
                EventPriority prio = EventPriority::Default)
    {
        panic_if(when < now_, "scheduling event in the past (%llu < %llu)",
                 (unsigned long long)when, (unsigned long long)now_);
        EventNode *n = pool_.alloc();
        n->when = when;
        if (streams_) {
            // Decomposed mode: key by the scheduling context's stream;
            // the continuation keeps executing at the same place.
            const std::uint32_t s = detail::execCtx.stream;
            n->seq = streams_->next(s);
            n->execStream = s;
        } else {
            n->seq = nextSeq_++;
            n->execStream = 0;
        }
        n->priority = static_cast<std::int8_t>(prio);
        n->emplace(std::forward<F>(fn));
        insert(n);
    }

    /**
     * Schedule with an explicit, already-assigned tie-break key and
     * execution stream. Used by the shard router: cross-domain events
     * are keyed at the *sender* (whose stream counter is race-free
     * there) and delivered here at a barrier, and tile-to-tile posts
     * set the destination tile's stream as the execution context.
     */
    template <typename F>
    void
    scheduleKeyed(Tick when, F &&fn, EventPriority prio,
                  std::uint64_t key, std::uint32_t execStream)
    {
        panic_if(when < now_, "scheduling event in the past (%llu < %llu)",
                 (unsigned long long)when, (unsigned long long)now_);
        EventNode *n = pool_.alloc();
        n->when = when;
        n->seq = key;
        n->execStream = execStream;
        n->priority = static_cast<std::int8_t>(prio);
        n->emplace(std::forward<F>(fn));
        insert(n);
    }

    /**
     * Install the shared per-stream key source (null reverts to the
     * insertion-counter order). All events scheduled afterwards are
     * keyed (stream, per-stream seq), making the same-tick order a pure
     * function of simulation state at any shard count.
     */
    void setStreamKeys(StreamKeySource *streams) { streams_ = streams; }

    /** True when this queue orders ties by partition-invariant keys. */
    bool keyed() const { return streams_ != nullptr; }

    /** Shard-domain index published in ExecCtx while events run. */
    void setDomainIndex(std::uint32_t d) { domainIndex_ = d; }
    std::uint32_t domainIndex() const { return domainIndex_; }

    /** Number of pending events. */
    std::size_t pending() const { return wheelCount_ + overflow_.size(); }

    bool empty() const { return wheelCount_ == 0 && overflow_.empty(); }

    /**
     * Pop and run the next event. Returns false if the queue was empty.
     */
    bool
    step()
    {
        EventNode *e = popNext();
        if (!e)
            return false;
        if (e->when >= hookWatermark_) [[unlikely]]
            fireAdvanceHook(e->when);
        now_ = e->when;
        // Migrate overflow events into the wheel *before* the callback
        // runs: anything it schedules at a near tick must land behind
        // every already-pending event at that tick.
        if (now_ > base_)
            advanceBase(now_);
        ++fired_;
#ifdef TAKO_EVENT_TRACE
        if (FILE *f = eventTraceFile())
            std::fprintf(f, "%llu %d %u %llu\n",
                         (unsigned long long)e->when, (int)e->priority,
                         e->execStream, (unsigned long long)e->seq);
#endif
        // Publish where this event executes so model code that migrates
        // between tiles can find its current queue/stream/domain.
        detail::execCtx.queue = this;
        detail::execCtx.domain = domainIndex_;
        detail::execCtx.stream = e->execStream;
        e->run();
        pool_.release(e);
        return true;
    }

    /** Run until the queue drains. */
    void
    run()
    {
        while (step()) {}
        clearExecCtx();
    }

    /**
     * Run until the queue drains or simulated time would exceed @p limit.
     * Events at exactly @p limit still run. Time always advances to
     * @p limit: the full interval was simulated even when events remain
     * pending past it (the next one is strictly later than @p limit).
     */
    void
    runUntil(Tick limit)
    {
        Tick next;
        while (peekWhen(next) && next <= limit)
            step();
        if (now_ < limit) {
            if (limit >= hookWatermark_) [[unlikely]]
                fireAdvanceHook(limit);
            now_ = limit;
            if (limit > base_)
                advanceBase(limit);
        }
    }

    /**
     * Run every event with when <= @p limit, leaving time at the last
     * executed event instead of forcing it to @p limit. This is the
     * window primitive for sharded execution: a shard simulates its
     * quantum without disturbing final-time-derived statistics, so a
     * sharded run's clock matches a monolithic run's bit for bit.
     */
    void
    runThrough(Tick limit)
    {
        Tick next;
        while (peekWhen(next) && next <= limit)
            step();
    }

    /** Earliest pending event time, if any (sharded-run scheduling). */
    bool
    nextEventTime(Tick &out) const
    {
        return peekWhen(out);
    }

    /**
     * Observer invoked when simulated time is about to advance to or past
     * @p watermark, with the tick being advanced to (events at that tick
     * have not yet run). The hook returns the next tick it wants to see;
     * the queue stays silent until time crosses it. Used by the stats
     * sampler to snapshot counters at fixed intervals without injecting
     * events that would keep the queue from draining. Costs one integer
     * compare per event when unset (or between watermarks) — never a
     * std::function touch.
     */
    void
    setAdvanceHook(std::function<Tick(Tick)> hook, Tick watermark)
    {
        advanceHook_ = std::move(hook);
        hookWatermark_ = advanceHook_ ? watermark : kNoWatermark;
    }

    void
    clearAdvanceHook()
    {
        advanceHook_ = nullptr;
        hookWatermark_ = kNoWatermark;
    }

    /**
     * Reset time and drop all pending events. Only valid between
     * independent simulations.
     */
    void
    reset()
    {
        dropAll();
        now_ = 0;
        base_ = 0;
        nextSeq_ = 0;
        fired_ = 0;
    }

    /** Events executed since construction (or the last reset()). */
    std::uint64_t eventsFired() const { return fired_; }

    /**
     * Leaving an execution loop invalidates the published context: the
     * next consumer may be a different queue's loop (replica lanes, the
     * sharded executor's drain phase) or plain test code completing
     * primitives inline, which must fall back to their stored queue.
     */
    static void
    clearExecCtx()
    {
        detail::execCtx = ExecCtx{};
    }

    /** Pending events currently parked in the far-future overflow heap. */
    std::size_t overflowPending() const { return overflow_.size(); }

    /** Node pool introspection (tests, perf tooling). */
    const EventPool &pool() const { return pool_; }

  private:
    static constexpr Tick kNoWatermark = ~Tick{0};

    static constexpr unsigned kWheelBits = 8;
    static constexpr std::size_t kWheelSlots = std::size_t{1} << kWheelBits;
    static constexpr Tick kWheelMask = Tick{kWheelSlots - 1};
    static constexpr std::size_t kLanes = 3; // High / Default / Low
    static constexpr std::size_t kBitmapWords = kWheelSlots / 64;

    struct Lane
    {
        EventNode *head = nullptr;
        EventNode *tail = nullptr;
    };

    struct Slot
    {
        Lane lanes[kLanes];
    };

    /** Min-heap order for the overflow heap: full (tick, prio, seq). */
    struct FarGreater
    {
        bool
        operator()(const EventNode *a, const EventNode *b) const
        {
            if (a->when != b->when)
                return a->when > b->when;
            if (a->priority != b->priority)
                return a->priority > b->priority;
            return a->seq > b->seq;
        }
    };

    /**
     * Out-of-line on purpose: keeps the call (which clobbers caller-saved
     * registers) off step()'s hot path, so the watermark miss costs one
     * predictable compare.
     */
    [[gnu::noinline, gnu::cold]] void
    fireAdvanceHook(Tick to)
    {
        hookWatermark_ = advanceHook_(to);
    }

    void
    insert(EventNode *n)
    {
        // Unsigned wrap makes this also reject when < base_, which
        // cannot happen: base_ <= now_ whenever callers can schedule.
        if (n->when - base_ < kWheelSlots)
            wheelAppend(n);
        else
            overflow_.push(n);
    }

    void
    wheelAppend(EventNode *n)
    {
        const std::size_t idx = static_cast<std::size_t>(n->when & kWheelMask);
        Lane &lane = wheel_[idx].lanes[n->priority + 1];
        // A lane holds one (tick, priority) class, so FIFO position must
        // equal key order. Monolithic keys are the insertion counter and
        // always append; decomposed keys (stream, seq) usually ascend
        // too — bursts come from one stream — so the tail compare stays
        // the hot path and the walk only runs on genuine cross-stream
        // collisions (a handful of nodes at most).
        n->next = nullptr;
        if (!lane.tail || lane.tail->seq <= n->seq) {
            if (lane.tail)
                lane.tail->next = n;
            else
                lane.head = n;
            lane.tail = n;
        } else if (n->seq < lane.head->seq) {
            n->next = lane.head;
            lane.head = n;
        } else {
            EventNode *prev = lane.head;
            while (prev->next && prev->next->seq <= n->seq)
                prev = prev->next;
            n->next = prev->next;
            prev->next = n;
        }
        occupied_[idx >> 6] |= std::uint64_t{1} << (idx & 63);
        ++wheelCount_;
    }

    /**
     * Advance the window start to @p to (<= the minimum pending tick) and
     * eagerly migrate every overflow event that now fits the window. The
     * heap pops in total order, so lanes fill in seq order.
     */
    void
    advanceBase(Tick to)
    {
        base_ = to;
        while (!overflow_.empty() &&
               overflow_.top()->when - base_ < kWheelSlots) {
            EventNode *n = overflow_.top();
            overflow_.pop();
            wheelAppend(n);
        }
    }

    /** Tick a wheel slot maps to under the current window. */
    Tick
    slotTick(std::size_t idx) const
    {
        return base_ +
               ((Tick{idx} - (base_ & kWheelMask)) & kWheelMask);
    }

    /**
     * First occupied slot in circular order from base_ — which is
     * minimum-tick order, since the window spans one wheel period.
     * Only valid when wheelCount_ > 0.
     */
    std::size_t
    firstOccupied() const
    {
        const std::size_t start = static_cast<std::size_t>(base_ & kWheelMask);
        const std::size_t sw = start >> 6;
        std::uint64_t word = occupied_[sw] & (~std::uint64_t{0} << (start & 63));
        if (word)
            return (sw << 6) + std::countr_zero(word);
        for (std::size_t w = sw + 1; w < kBitmapWords; ++w)
            if (occupied_[w])
                return (w << 6) + std::countr_zero(occupied_[w]);
        for (std::size_t w = 0; w < sw; ++w)
            if (occupied_[w])
                return (w << 6) + std::countr_zero(occupied_[w]);
        word = occupied_[sw] & ~(~std::uint64_t{0} << (start & 63));
        panic_if(!word, "event wheel bitmap out of sync");
        return (sw << 6) + std::countr_zero(word);
    }

    EventNode *
    popNext()
    {
        if (wheelCount_ == 0) {
            if (overflow_.empty())
                return nullptr;
            // Wheel drained: rebase straight to the heap minimum. This
            // migrates at least the top, in total order.
            advanceBase(overflow_.top()->when);
        }
        const std::size_t idx = firstOccupied();
        Slot &slot = wheel_[idx];
        for (Lane &lane : slot.lanes) {
            if (!lane.head)
                continue;
            EventNode *n = lane.head;
            lane.head = n->next;
            if (!lane.head)
                lane.tail = nullptr;
            --wheelCount_;
            if (!slot.lanes[0].head && !slot.lanes[1].head &&
                !slot.lanes[2].head)
                occupied_[idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
            return n;
        }
        panic("occupied wheel slot with empty lanes");
    }

    /** Minimum pending tick, if any. */
    bool
    peekWhen(Tick &out) const
    {
        if (wheelCount_ > 0) {
            out = slotTick(firstOccupied());
            return true;
        }
        if (!overflow_.empty()) {
            out = overflow_.top()->when;
            return true;
        }
        return false;
    }

    /** Destroy every pending callable and recycle the nodes. */
    void
    dropAll()
    {
        for (Slot &slot : wheel_) {
            for (Lane &lane : slot.lanes) {
                for (EventNode *n = lane.head; n;) {
                    EventNode *next = n->next;
                    n->drop();
                    pool_.release(n);
                    n = next;
                }
                lane.head = lane.tail = nullptr;
            }
        }
        occupied_.fill(0);
        wheelCount_ = 0;
        while (!overflow_.empty()) {
            EventNode *n = overflow_.top();
            overflow_.pop();
            n->drop();
            pool_.release(n);
        }
    }

    std::array<Slot, kWheelSlots> wheel_{};
    std::array<std::uint64_t, kBitmapWords> occupied_{};
    std::size_t wheelCount_ = 0;
    std::priority_queue<EventNode *, std::vector<EventNode *>, FarGreater>
        overflow_;
    EventPool pool_;

    /** Window start: wheel covers [base_, base_ + kWheelSlots). */
    Tick base_ = 0;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t fired_ = 0;
    /** Shared per-stream key source (null = insertion-counter order). */
    StreamKeySource *streams_ = nullptr;
    /** Shard domain this queue belongs to (ExecCtx, stats lanes). */
    std::uint32_t domainIndex_ = 0;
    /** Next tick the advance hook wants; kNoWatermark = hook off. */
    Tick hookWatermark_ = kNoWatermark;
    std::function<Tick(Tick)> advanceHook_;

#ifdef TAKO_EVENT_TRACE
    FILE *traceFile_ = nullptr;
    FILE *
    eventTraceFile()
    {
        if (!traceFile_) {
            // takolint: ok(D2, debug-only: trace never feeds sim state)
            const char *prefix = std::getenv("TAKO_EVENT_TRACE");
            if (!prefix)
                return nullptr;
            char path[512];
            std::snprintf(path, sizeof path, "%s.d%u", prefix,
                          domainIndex_);
            traceFile_ = std::fopen(path, "a");
        }
        return traceFile_;
    }
#endif
};

/**
 * Queue to schedule follow-up work on from model code that may be
 * executing away from home. In a decomposed (keyed) run, transactions
 * migrate across tiles, so the right queue is wherever the current event
 * is executing; outside keyed mode — standalone components, unit tests,
 * calls made before or after the run — it is the component's own stored
 * queue. Monolithic keyed runs have one queue, so both answers coincide.
 */
inline EventQueue &
homeQueue(EventQueue &fallback)
{
    EventQueue *q = detail::execCtx.queue;
    return (q && q->keyed()) ? *q : fallback;
}

/** Simulated time at the current execution context (see homeQueue). */
inline Tick
ctxNow(const EventQueue &fallback)
{
    const EventQueue *q = detail::execCtx.queue;
    return (q && q->keyed()) ? q->now() : fallback.now();
}

} // namespace tako

#endif // TAKO_SIM_EVENT_QUEUE_HH
