/**
 * @file
 * Deterministic discrete-event queue.
 *
 * Events are totally ordered by (tick, priority, insertion sequence), so a
 * simulation with the same inputs and seeds always replays identically.
 * Everything that takes simulated time in tako-sim — cache lookups, NoC
 * hops, DRAM accesses, engine callbacks, core compute — is an event chain
 * on one global queue.
 */

#ifndef TAKO_SIM_EVENT_QUEUE_HH
#define TAKO_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace tako
{

/** Scheduling priority for events at the same tick (lower runs first). */
enum class EventPriority : int
{
    High = -1,
    Default = 0,
    Low = 1,
};

class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedule @p fn to run @p delta ticks from now. */
    void
    schedule(Tick delta, Callback fn,
             EventPriority prio = EventPriority::Default)
    {
        scheduleAbs(now_ + delta, std::move(fn), prio);
    }

    /** Schedule @p fn at absolute tick @p when (must not be in the past). */
    void
    scheduleAbs(Tick when, Callback fn,
                EventPriority prio = EventPriority::Default)
    {
        panic_if(when < now_, "scheduling event in the past (%llu < %llu)",
                 (unsigned long long)when, (unsigned long long)now_);
        events_.push(Entry{when, static_cast<int>(prio), nextSeq_++,
                           std::move(fn)});
    }

    /** Number of pending events. */
    std::size_t pending() const { return events_.size(); }

    bool empty() const { return events_.empty(); }

    /**
     * Pop and run the next event. Returns false if the queue was empty.
     */
    bool
    step()
    {
        if (events_.empty())
            return false;
        // Copy out before pop: the callback may schedule new events.
        Entry e = std::move(const_cast<Entry &>(events_.top()));
        events_.pop();
        if (e.when >= hookWatermark_) [[unlikely]]
            fireAdvanceHook(e.when);
        now_ = e.when;
        e.fn();
        return true;
    }

    /** Run until the queue drains. */
    void
    run()
    {
        while (step()) {}
    }

    /**
     * Run until the queue drains or simulated time would exceed @p limit.
     * Events at exactly @p limit still run. Time always advances to
     * @p limit: the full interval was simulated even when events remain
     * pending past it (the next one is strictly later than @p limit).
     */
    void
    runUntil(Tick limit)
    {
        while (!events_.empty() && events_.top().when <= limit)
            step();
        if (now_ < limit) {
            if (limit >= hookWatermark_) [[unlikely]]
                fireAdvanceHook(limit);
            now_ = limit;
        }
    }

    /**
     * Observer invoked when simulated time is about to advance to or past
     * @p watermark, with the tick being advanced to (events at that tick
     * have not yet run). The hook returns the next tick it wants to see;
     * the queue stays silent until time crosses it. Used by the stats
     * sampler to snapshot counters at fixed intervals without injecting
     * events that would keep the queue from draining. Costs one integer
     * compare per event when unset (or between watermarks) — never a
     * std::function touch.
     */
    void
    setAdvanceHook(std::function<Tick(Tick)> hook, Tick watermark)
    {
        advanceHook_ = std::move(hook);
        hookWatermark_ = advanceHook_ ? watermark : kNoWatermark;
    }

    void
    clearAdvanceHook()
    {
        advanceHook_ = nullptr;
        hookWatermark_ = kNoWatermark;
    }

    /**
     * Reset time and drop all pending events. Only valid between
     * independent simulations.
     */
    void
    reset()
    {
        events_ = {};
        now_ = 0;
        nextSeq_ = 0;
    }

  private:
    static constexpr Tick kNoWatermark = ~Tick{0};

    /**
     * Out-of-line on purpose: keeps the call (which clobbers caller-saved
     * registers) off step()'s hot path, so the watermark miss costs one
     * predictable compare.
     */
    [[gnu::noinline, gnu::cold]] void
    fireAdvanceHook(Tick to)
    {
        hookWatermark_ = advanceHook_(to);
    }

    struct Entry
    {
        Tick when;
        int priority;
        std::uint64_t seq;
        Callback fn;

        bool
        operator>(const Entry &o) const
        {
            if (when != o.when)
                return when > o.when;
            if (priority != o.priority)
                return priority > o.priority;
            return seq > o.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>>
        events_;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    /** Next tick the advance hook wants; kNoWatermark = hook off. */
    Tick hookWatermark_ = kNoWatermark;
    std::function<Tick(Tick)> advanceHook_;
};

} // namespace tako

#endif // TAKO_SIM_EVENT_QUEUE_HH
