/**
 * @file
 * Structured event-trace sink: Chrome trace-event format (JSON), one
 * event per line, directly loadable in Perfetto / chrome://tracing.
 *
 * Spans (memory transactions, callback dispatch/retire, DRAM bursts) are
 * recorded as "complete" (ph:"X") events with the simulated tick as the
 * timestamp; ticks render as microseconds in the viewer. Tracks are
 * organized as pid/tid pairs: pid 0 = per-tile memory transactions,
 * pid 1 = per-tile engines, pid 2 = memory controllers.
 *
 * A writer is installed process-wide with setSpanSink(); emission sites
 * gate on spanEnabled(flag), which is a single branch on a cached mask
 * (zero when no sink is installed), mirroring the TAKO_TRACE printf
 * path's disabled-mode cost.
 */

#ifndef TAKO_SIM_TRACESINK_HH
#define TAKO_SIM_TRACESINK_HH

#include <cstdint>
#include <ostream>
#include <set>
#include <string>

#include "sim/trace.hh"
#include "sim/types.hh"

namespace tako::trace
{

class ChromeTraceWriter
{
  public:
    /** Starts the JSON array; @p os must outlive the writer. */
    explicit ChromeTraceWriter(std::ostream &os);

    /** Closes the array (idempotent; also runs at destruction). */
    ~ChromeTraceWriter();

    ChromeTraceWriter(const ChromeTraceWriter &) = delete;
    ChromeTraceWriter &operator=(const ChromeTraceWriter &) = delete;

    /**
     * One complete-span event: [ts, ts+dur) on track (pid, tid).
     * @p args_json, if nonempty, must be a serialized JSON object.
     */
    void completeEvent(const char *cat, const char *name, int pid,
                       int tid, Tick ts, Tick dur,
                       const std::string &args_json = "");

    /** One instant event at @p ts on track (pid, tid). */
    void instantEvent(const char *cat, const char *name, int pid, int tid,
                      Tick ts, const std::string &args_json = "");

    /**
     * Name a track the first time it is seen (emits thread_name /
     * process_name metadata events); later calls are no-ops.
     */
    void ensureTrack(int pid, const char *process, int tid,
                     const std::string &thread);

    void close();

    std::uint64_t eventsWritten() const { return events_; }

  private:
    void event(const char *ph, const char *cat, const char *name, int pid,
               int tid, Tick ts, Tick dur, bool has_dur,
               const std::string &args_json);

    std::ostream &os_;
    bool closed_ = false;
    bool first_ = true;
    std::uint64_t events_ = 0;
    // Ordered (takolint D1): dedup-only today, but metadata tables are
    // natural candidates for an on-close iteration pass.
    std::set<std::uint64_t> tracks_;
    std::set<int> processes_;
};

namespace detail
{
extern ChromeTraceWriter *g_spanSink;
extern std::uint32_t g_spanMask;
} // namespace detail

/**
 * Install @p sink as the process-wide span sink for the categories in
 * @p mask (default: every category). Pass nullptr to uninstall. The
 * caller keeps ownership and must uninstall before destroying the sink.
 */
void setSpanSink(ChromeTraceWriter *sink,
                 std::uint32_t mask = allFlagsMask());

inline ChromeTraceWriter *spanSink() { return detail::g_spanSink; }

/** One-branch gate: true iff a sink is installed and @p f is enabled. */
inline bool
spanEnabled(Flag f)
{
    return (detail::g_spanMask & static_cast<std::uint32_t>(f)) != 0;
}

} // namespace tako::trace

#endif // TAKO_SIM_TRACESINK_HH
