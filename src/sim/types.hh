/**
 * @file
 * Fundamental simulator types and address helpers.
 *
 * Addresses are 64-bit. The simulated machine uses a single flat address
 * space; phantom ranges (täkō address ranges with no backing memory) are
 * carved out of the top of the space by the morph registry.
 */

#ifndef TAKO_SIM_TYPES_HH
#define TAKO_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace tako
{

/** Simulated time, in core clock cycles (2.4 GHz by default). */
using Tick = std::uint64_t;

/** A simulated (virtual == physical, see DESIGN.md) byte address. */
using Addr = std::uint64_t;

/** Invalid/sentinel values. */
constexpr Tick maxTick = std::numeric_limits<Tick>::max();
constexpr Addr invalidAddr = std::numeric_limits<Addr>::max();

/** Cache line size used throughout the hierarchy. */
constexpr unsigned lineBytes = 64;
constexpr unsigned lineShift = 6;

/** 64-bit words per cache line. */
constexpr unsigned wordsPerLine = lineBytes / 8;

/** Align @p addr down to its containing line. */
constexpr Addr
lineAlign(Addr addr)
{
    return addr & ~static_cast<Addr>(lineBytes - 1);
}

/** Byte offset of @p addr within its line. */
constexpr unsigned
lineOffset(Addr addr)
{
    return static_cast<unsigned>(addr & (lineBytes - 1));
}

/** Line number (address >> lineShift). */
constexpr Addr
lineNumber(Addr addr)
{
    return addr >> lineShift;
}

/** True if [a, a+aLen) and [b, b+bLen) overlap. */
constexpr bool
rangesOverlap(Addr a, std::uint64_t a_len, Addr b, std::uint64_t b_len)
{
    return a < b + b_len && b < a + a_len;
}

/** Integer ceiling division. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/** True if @p v is a power of two (and nonzero). */
constexpr bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** log2 of a power of two. */
constexpr unsigned
log2Floor(std::uint64_t v)
{
    unsigned r = 0;
    while (v > 1) { v >>= 1; ++r; }
    return r;
}

} // namespace tako

#endif // TAKO_SIM_TYPES_HH
