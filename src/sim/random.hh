/**
 * @file
 * Deterministic random number generation: xoshiro256** plus the usual
 * distributions and a Zipfian sampler (Gray et al., "Quickly generating
 * billion-record synthetic databases"), as used for the paper's Zipfian
 * index streams (Sec. 3.3, citing [21]).
 */

#ifndef TAKO_SIM_RANDOM_HH
#define TAKO_SIM_RANDOM_HH

#include <cmath>
#include <cstdint>
#include <vector>

namespace tako
{

/** xoshiro256** 1.0 by Blackman & Vigna (public domain algorithm). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x1234abcdULL) { reseed(seed); }

    void
    reseed(std::uint64_t seed)
    {
        // splitmix64 to fill state from a single seed.
        std::uint64_t x = seed;
        for (auto &word : s_) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const std::uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire-style multiply-shift; bias is negligible for our bounds.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    inRange(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    real()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial. */
    bool chance(double p) { return real() < p; }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s_[4];
};

/**
 * Zipfian distribution over [0, n) with skew @p theta (default 0.99, the
 * YCSB convention). Items are ranked by index: 0 is hottest.
 */
class ZipfianGenerator
{
  public:
    ZipfianGenerator(std::uint64_t n, double theta = 0.99);

    std::uint64_t operator()(Rng &rng) const;

    std::uint64_t numItems() const { return n_; }

  private:
    std::uint64_t n_;
    double theta_;
    double alpha_;
    double zetan_;
    double eta_;
};

} // namespace tako

#endif // TAKO_SIM_RANDOM_HH
