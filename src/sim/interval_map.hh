/**
 * @file
 * A simple non-overlapping interval map keyed by address ranges.
 * Used by the morph registry to map address ranges to registered Morphs
 * (at most one Morph per address, paper Sec. 4.1).
 */

#ifndef TAKO_SIM_INTERVAL_MAP_HH
#define TAKO_SIM_INTERVAL_MAP_HH

#include <map>
#include <optional>

#include "sim/types.hh"

namespace tako
{

template <typename T>
class IntervalMap
{
  public:
    struct Entry
    {
        Addr base;
        std::uint64_t length;
        T value;
    };

    /**
     * Insert [base, base+length) -> value.
     * @return false if the range overlaps an existing entry.
     */
    bool
    insert(Addr base, std::uint64_t length, T value)
    {
        if (length == 0 || overlaps(base, length))
            return false;
        map_.emplace(base, Entry{base, length, std::move(value)});
        return true;
    }

    /** True if [base, base+length) intersects any entry. */
    bool
    overlaps(Addr base, std::uint64_t length) const
    {
        auto it = map_.upper_bound(base);
        if (it != map_.begin()) {
            auto prev = std::prev(it);
            if (prev->second.base + prev->second.length > base)
                return true;
        }
        return it != map_.end() && it->second.base < base + length;
    }

    /** Entry containing @p addr, or nullptr. */
    const Entry *
    find(Addr addr) const
    {
        auto it = map_.upper_bound(addr);
        if (it == map_.begin())
            return nullptr;
        --it;
        const Entry &e = it->second;
        return (addr >= e.base && addr < e.base + e.length) ? &e : nullptr;
    }

    Entry *
    find(Addr addr)
    {
        return const_cast<Entry *>(
            static_cast<const IntervalMap *>(this)->find(addr));
    }

    /** Remove the entry whose base is exactly @p base. */
    bool erase(Addr base) { return map_.erase(base) > 0; }

    std::size_t size() const { return map_.size(); }
    bool empty() const { return map_.empty(); }

    auto begin() const { return map_.begin(); }
    auto end() const { return map_.end(); }

  private:
    std::map<Addr, Entry> map_;
};

} // namespace tako

#endif // TAKO_SIM_INTERVAL_MAP_HH
