#include "sim/arena.hh"

#include <memory>
#include <new>
#include <vector>

namespace tako
{

namespace
{

struct ArenaState
{
    // Free blocks chained through their first pointer-sized word.
    void *freelist[FrameArena::kNumClasses] = {};
    std::vector<std::unique_ptr<std::byte[]>> slabs;
    FrameArena::Stats stats;
};

ArenaState &
state()
{
    // One arena per host thread: shard workers and ensemble lanes each
    // allocate frames without locks, and two threads never share a free
    // list. Function-local so the arena is usable from any static-init
    // context. The state is intentionally leaked rather than destroyed
    // at thread exit: a frame allocated on a worker thread may be freed
    // later from another thread (e.g. the owner destroys a drained
    // System after the lane joined), and the slab backing that frame
    // must outlive the thread that carved it. A freed block always
    // joins the freeing thread's free list, so cross-thread frees are
    // safe — blocks just migrate between per-thread lists.
    static thread_local ArenaState *s = new ArenaState;
    return *s;
}

constexpr std::size_t
classIndex(std::size_t bytes)
{
    // Round up to the granule; class i serves (i + 1) * kGranule bytes.
    if (bytes <= FrameArena::kGranule)
        return 0;
    return (bytes + FrameArena::kGranule - 1) / FrameArena::kGranule - 1;
}

/// Blocks carved per slab refill: enough to amortize, small enough that
/// unused classes don't bloat the footprint.
constexpr std::size_t kBlocksPerSlab = 64;

} // namespace

void *
FrameArena::allocate(std::size_t bytes)
{
    if (bytes > kMaxBlock) [[unlikely]] {
        ++state().stats.oversize;
        return ::operator new(bytes);
    }
    ArenaState &s = state();
    const std::size_t cls = classIndex(bytes);
    ++s.stats.allocs;
    ++s.stats.live;
    if (void *p = s.freelist[cls]) {
        s.freelist[cls] = *static_cast<void **>(p);
        ++s.stats.reuses;
        return p;
    }
    const std::size_t block = (cls + 1) * kGranule;
    s.slabs.push_back(std::make_unique<std::byte[]>(block * kBlocksPerSlab));
    std::byte *base = s.slabs.back().get();
    s.stats.slabBytes += block * kBlocksPerSlab;
    // Hand out the first block; chain the rest onto the free list in
    // address order.
    for (std::size_t i = kBlocksPerSlab; i-- > 1;) {
        void *p = base + i * block;
        *static_cast<void **>(p) = s.freelist[cls];
        s.freelist[cls] = p;
    }
    return base;
}

void
FrameArena::deallocate(void *p, std::size_t bytes) noexcept
{
    if (bytes > kMaxBlock) [[unlikely]] {
        ::operator delete(p);
        return;
    }
    ArenaState &s = state();
    const std::size_t cls = classIndex(bytes);
    *static_cast<void **>(p) = s.freelist[cls];
    s.freelist[cls] = p;
    --s.stats.live;
}

const FrameArena::Stats &
FrameArena::stats()
{
    return state().stats;
}

} // namespace tako
