#include "sim/shard.hh"

#include <algorithm>
#include <chrono>
#include <thread>

#include "sim/logging.hh"

namespace tako
{

ShardPlan
ShardPlan::build(unsigned dimX, unsigned dimY, Tick routerDelay,
                 Tick linkDelay, unsigned shards)
{
    ShardPlan plan;
    plan.dimX = dimX ? dimX : 1;
    plan.dimY = dimY ? dimY : 1;
    plan.shards = std::clamp(shards, 1u, plan.dimX);
    // One boundary crossing costs at least one router and one link
    // traversal; that floor is the window inside which no shard can
    // observe another shard's same-window events.
    plan.quantum = std::max<Tick>(1, routerDelay + linkDelay);
    plan.columnShard.resize(plan.dimX);
    for (unsigned c = 0; c < plan.dimX; ++c)
        plan.columnShard[c] = static_cast<unsigned>(
            std::uint64_t{c} * plan.shards / plan.dimX);
    for (unsigned c = 0; c + 1 < plan.dimX; ++c) {
        if (plan.columnShard[c] != plan.columnShard[c + 1])
            plan.boundaryLinks += 2 * plan.dimY; // E + W directed links
    }
    return plan;
}

ShardedExecutor::ShardedExecutor(std::vector<EventQueue *> domains,
                                 Tick quantum, unsigned threads)
    : domains_(std::move(domains)), quantum_(std::max<Tick>(1, quantum))
{
    panic_if(domains_.empty(),
             "sharded executor needs at least one domain");
    for (const EventQueue *q : domains_)
        panic_if(q == nullptr, "sharded executor given a null domain");
    const unsigned n = static_cast<unsigned>(domains_.size());
    threads_ = threads == 0 ? n : std::clamp(threads, 1u, n);
    mail_.reserve(std::size_t{n} * n);
    for (std::size_t i = 0; i < std::size_t{n} * n; ++i)
        mail_.push_back(std::make_unique<SpscMailbox<ShardEvent>>());
    sendSeq_.resize(n);
    profiles_.resize(n);
    barrierWait_.resize(threads_);
}

double
ShardedExecutor::barrierWaitSeconds() const
{
    double total = 0;
    for (const PaddedSeconds &w : barrierWait_)
        total += w.value;
    return total;
}

void
ShardedExecutor::send(unsigned src, unsigned dst, Tick when,
                      EventPriority prio, std::function<void()> fn)
{
    const unsigned n = static_cast<unsigned>(domains_.size());
    panic_if(src >= n || dst >= n, "shard send %u -> %u outside 0..%u",
             src, dst, n - 1);
    if (src == dst) {
        domains_[src]->scheduleAbs(when, std::move(fn), prio);
        return;
    }
    ShardEvent ev;
    ev.when = when;
    ev.priority = prio;
    ev.srcSeq = sendSeq_[src].value++;
    ev.fn = std::move(fn);
    const bool pushed = mail_[std::size_t{src} * n + dst]->tryPush(
        std::move(ev));
    panic_if(!pushed,
             "shard %u -> %u mailbox full (%zu events in one window); "
             "the quantum produced more cross-shard traffic than the "
             "ring holds",
             src, dst, mail_[0]->capacity());
}

void
ShardedExecutor::drainInbox(unsigned shard, Tick windowStart)
{
    const unsigned n = static_cast<unsigned>(domains_.size());
    struct Incoming
    {
        Tick when;
        int prio;
        unsigned src;
        std::uint64_t seq;
        std::function<void()> fn;
    };
    std::vector<Incoming> batch;
    ShardEvent ev;
    DomainProfile &prof = profiles_[shard];
    for (unsigned src = 0; src < n; ++src) {
        SpscMailbox<ShardEvent> &mb = *mail_[std::size_t{src} * n + shard];
        std::uint64_t depth = 0;
        while (mb.tryPop(ev)) {
            ++depth;
            panic_if(ev.when < windowStart,
                     "cross-shard event for shard %u at tick %llu "
                     "arrived in the window starting at %llu: the "
                     "sender violated the lookahead quantum (%llu)",
                     shard, (unsigned long long)ev.when,
                     (unsigned long long)windowStart,
                     (unsigned long long)quantum_);
            batch.push_back({ev.when, static_cast<int>(ev.priority), src,
                             ev.srcSeq, std::move(ev.fn)});
        }
        // Drains empty the ring, so the pop count IS the depth this
        // mailbox reached during the finished window.
        if (depth > prof.maxInboxDepth)
            prof.maxInboxDepth = depth;
    }
    if (batch.empty())
        return;
    // Insert in the global merge order: the receiving queue assigns its
    // tie-break seqs in insertion order, so sorting here by
    // (tick, priority, source shard, source seq) reproduces the
    // monolithic total order for same-tick arrivals.
    std::stable_sort(batch.begin(), batch.end(),
                     [](const Incoming &a, const Incoming &b) {
                         if (a.when != b.when)
                             return a.when < b.when;
                         if (a.prio != b.prio)
                             return a.prio < b.prio;
                         if (a.src != b.src)
                             return a.src < b.src;
                         return a.seq < b.seq;
                     });
    for (Incoming &in : batch) {
        domains_[shard]->scheduleAbs(in.when, std::move(in.fn),
                                     static_cast<EventPriority>(in.prio));
    }
    prof.received += batch.size();
    delivered_.fetch_add(batch.size(), std::memory_order_relaxed);
}

void
ShardedExecutor::runSolo(unsigned shard)
{
    EventQueue &q = *domains_[shard];
    // A solo domain may run unboundedly: every other domain is idle and
    // nothing can reach this one's inbox until it sends. The first
    // outbound send ends the free run — from then on another domain has
    // future work, and lockstep windows resume from this domain's
    // current position.
    const std::uint64_t sentBefore = sendSeq_[shard].value;
    const std::uint64_t firedBefore = q.eventsFired();
    while (sendSeq_[shard].value == sentBefore && q.step()) {}
    const std::uint64_t fired = q.eventsFired() - firedBefore;
    DomainProfile &prof = profiles_[shard];
    prof.executed += fired;
    if (fired > prof.maxRoundEvents)
        prof.maxRoundEvents = fired;
}

ShardedExecutor::RoundState
ShardedExecutor::barrierSync(unsigned worker, bool completion)
{
    std::unique_lock<std::mutex> lk(barrierMutex_);
    if (++waiting_ == threads_) {
        if (completion)
            advanceRound();
        waiting_ = 0;
        ++generation_;
        barrierCv_.notify_all();
    } else {
        const std::uint64_t g = generation_;
        // Host stall accounting: how long this worker sat parked while
        // the round's stragglers finished. Feeds the load-imbalance
        // report's host.* side only — simulation state never sees it.
        // takolint: ok(D2, barrier stall time feeds only host.* gauges)
        const auto t0 = std::chrono::steady_clock::now();
        barrierCv_.wait(lk, [&] { return generation_ != g; });
        // takolint: ok(D2, barrier stall time feeds only host.* gauges)
        const auto t1 = std::chrono::steady_clock::now();
        barrierWait_[worker].value +=
            std::chrono::duration<double>(t1 - t0).count();
    }
    return RoundState{windowStart_, soloDomain_, done_};
}

void
ShardedExecutor::advanceRound()
{
    ++rounds_;
    const unsigned prevSolo = soloDomain_;
    soloDomain_ = kNoSolo;

    bool anyMail = false;
    for (const auto &mb : mail_) {
        if (!mb->empty()) {
            anyMail = true;
            break;
        }
    }
    unsigned pendingDomains = 0;
    unsigned pendingIdx = 0;
    Tick minNext = 0;
    for (unsigned i = 0; i < domains_.size(); ++i) {
        Tick t = 0;
        if (domains_[i]->nextEventTime(t)) {
            if (pendingDomains == 0 || t < minNext)
                minNext = t;
            pendingIdx = i;
            ++pendingDomains;
        }
    }

    if (!anyMail && pendingDomains == 0) {
        done_ = true;
        return;
    }
    if (anyMail) {
        // In-flight mail was sent no earlier than the finished window
        // (or the solo domain's final position), and every send is
        // timestamped at least one quantum ahead — so the next lockstep
        // window starts safely below every undelivered timestamp.
        windowStart_ = prevSolo != kNoSolo ? domains_[prevSolo]->now() + 1
                                           : windowStart_ + quantum_;
        return;
    }
    // No mail in flight: jump straight to the earliest pending event.
    // With a single busy domain there is nothing to synchronize against
    // until it sends, so let it run free.
    windowStart_ = minNext;
    if (pendingDomains == 1) {
        soloDomain_ = pendingIdx;
        ++soloRounds_;
    }
}

void
ShardedExecutor::workerLoop(unsigned worker)
{
    const unsigned n = static_cast<unsigned>(domains_.size());
    Tick start = 0;
    unsigned solo = kNoSolo;
    while (true) {
        // Execute phase: run this round's windows. All mailbox pushes
        // happen here, never concurrently with a drain.
        if (solo != kNoSolo) {
            if (solo % threads_ == worker)
                runSolo(solo);
        } else {
            for (unsigned s = worker; s < n; s += threads_) {
                EventQueue &q = *domains_[s];
                const std::uint64_t before = q.eventsFired();
                q.runThrough(start + quantum_ - 1);
                const std::uint64_t fired = q.eventsFired() - before;
                DomainProfile &prof = profiles_[s];
                prof.executed += fired;
                if (fired > prof.maxRoundEvents)
                    prof.maxRoundEvents = fired;
                if (fired == 0)
                    ++prof.idleRounds;
            }
        }
        const RoundState rs = barrierSync(worker, true);
        if (rs.done)
            return;
        // Drain phase: deliver the barrier snapshot of every inbox for
        // the next round. The trailing barrier keeps these pops
        // disjoint from the next execute phase's pushes, so the
        // delivered set is a function of simulation state alone.
        if (rs.solo == kNoSolo) {
            for (unsigned s = worker; s < n; s += threads_)
                drainInbox(s, rs.start);
        }
        barrierSync(worker, false);
        start = rs.start;
        solo = rs.solo;
    }
}

void
ShardedExecutor::run()
{
    {
        std::unique_lock<std::mutex> lk(barrierMutex_);
        windowStart_ = 0;
        soloDomain_ = kNoSolo;
        done_ = false;
        waiting_ = 0;
        generation_ = 0;
    }
    std::vector<std::thread> workers;
    workers.reserve(threads_);
    for (unsigned w = 0; w < threads_; ++w)
        workers.emplace_back([this, w] { workerLoop(w); });
    for (std::thread &t : workers)
        t.join();
}

void
runLanes(unsigned lanes, const std::vector<std::function<void()>> &jobs)
{
    if (jobs.empty())
        return;
    const unsigned n = std::clamp<unsigned>(
        lanes, 1, static_cast<unsigned>(jobs.size()));
    if (n == 1) {
        for (const std::function<void()> &job : jobs)
            job();
        return;
    }
    std::vector<std::thread> pool;
    pool.reserve(n);
    for (unsigned w = 0; w < n; ++w) {
        pool.emplace_back([w, n, &jobs] {
            for (std::size_t i = w; i < jobs.size(); i += n)
                jobs[i]();
        });
    }
    for (std::thread &t : pool)
        t.join();
}

} // namespace tako
